(* Benchmark and reproduction harness.

   Usage:
     dune exec bench/main.exe              # all artifacts + all timings
     dune exec bench/main.exe ARTIFACT     # one artifact, no timings
     dune exec bench/main.exe bench        # timings only
     dune exec bench/main.exe bench json   # timings -> BENCH_PR10.json

   Artifacts (the paper's figures/tables, regenerated from scratch; see
   EXPERIMENTS.md for the mapping): fig1 fig2 rem ctl rabin
   lattice-theorems gumm

   The timing section reports one Bechamel series per experiment: the
   paper itself contains no performance numbers, so these series document
   the cost of each reproduction algorithm (closure, decomposition,
   complementation, translation, model checking) and of the two ablations
   called out in DESIGN.md §5. The PARALLEL group times the four
   Pool-parallelized paths (engine, registry compilation, rank-based
   complementation, theorem sweep) at 1/2/4 domains on identical inputs;
   the CACHE group times the 100-property fleet compile cold (empty
   cache, every probe misses and stores) vs warm (prewarmed cache, every
   probe hits and deserializes); the SESSION group times snapshot
   write, restore, and resuming the stream from its midpoint snapshot
   vs replaying it cold; the SERVE group times the daemon's connection
   path (parse + intern + feed + render, no sockets) at 1 and 4
   multiplexed clients and both hot-reload commit paths; the INGEST
   group times the parse stage alone — the zero-copy scanner against
   the retained reference parser on the same 10k-line stream.

   [bench json] additionally writes the estimates to BENCH_PR10.json
   together with automaton-size counters, speedups against the seed,
   ratios against the most recent tracked BENCH_PR*.json for every bench
   name the two runs share, the parallel scaling curves, the cold/warm
   cache comparison, and per-group
   Sl_obs span summaries from one instrumented pass over representative
   inputs: this is the perf trajectory future PRs regress against (see
   DESIGN.md "Performance architecture"). *)

module Lattice = Sl_lattice.Lattice
module Named = Sl_lattice.Named
module Lclosure = Sl_lattice.Closure
module Finite_check = Sl_core.Finite_check
module Theory = Sl_core.Theory
module Lasso = Sl_word.Lasso
module Buchi = Sl_buchi.Buchi
module Bclosure = Sl_buchi.Closure
module Ops = Sl_buchi.Ops
module Complement = Sl_buchi.Complement
module Lang = Sl_buchi.Lang
module Bdecompose = Sl_buchi.Decompose
module Bpatterns = Sl_buchi.Patterns
module Formula = Sl_ltl.Formula
module Translate = Sl_ltl.Translate
module Semantics = Sl_ltl.Semantics
module Lexamples = Sl_ltl.Examples
module Kripke = Sl_kripke.Kripke
module Ctl = Sl_ctl.Ctl
module Cexamples = Sl_ctl.Examples
module Digraph = Sl_core.Digraph
module Gnba = Sl_buchi.Gnba
module Rabin = Sl_rabin.Rabin
module Rclosure = Sl_rabin.Closure
module Rdecompose = Sl_rabin.Decompose
module Rpatterns = Sl_rabin.Patterns

let section title = Format.printf "@.=== %s ===@." title

(* ------------------------------------------------------------------ *)
(* Artifacts                                                           *)
(* ------------------------------------------------------------------ *)

let artifact_fig1 () =
  section "Figure 1 — pentagon N5 (non-modular)";
  Format.printf "%s" (Lattice.to_dot ~label:Named.n5_label Named.n5);
  Format.printf "modular: %b  complemented: %b@."
    (Lattice.is_modular Named.n5)
    (Lattice.is_complemented Named.n5);
  (match Lattice.modularity_violation Named.n5 with
  | Some (a, b, c) ->
      Format.printf "modularity violation at (%s, %s, %s)@."
        (Named.n5_label a) (Named.n5_label b) (Named.n5_label c)
  | None -> ());
  Format.printf "Lemma 6 (a has no decomposition under cl a = b): %s@."
    (match Finite_check.lemma6_fig1 () with
    | Ok () -> "verified by exhaustion"
    | Error e -> "FAILED: " ^ e)

let artifact_fig2 () =
  section "Figure 2 — diamond M3 (modular, not distributive)";
  Format.printf "%s" (Lattice.to_dot ~label:Named.m3_label Named.m3);
  Format.printf "modular: %b  distributive: %b@."
    (Lattice.is_modular Named.m3)
    (Lattice.is_distributive Named.m3);
  Format.printf "Theorem 7 fails for every closure with cl a = s: %s@."
    (match Finite_check.fig2_theorem7_failure () with
    | Ok () -> "verified (all candidate closures)"
    | Error e -> "FAILED: " ^ e)

let artifact_rem () =
  section "Table (Section 2.3) — Rem's examples";
  Lexamples.pp_table Format.std_formatter (Lexamples.table ())

let artifact_ctl () =
  section "Table (Section 4.3) — branching-time examples";
  Cexamples.pp_table Format.std_formatter (Cexamples.table ())

let artifact_rabin () =
  section "Theorem 9 — Rabin tree automata decomposition";
  List.iter
    (fun (name, b) ->
      let d = Rdecompose.decompose b in
      let fails =
        Rdecompose.verify_sampled ~max_depth:2
          ~trees:Rpatterns.sample_trees d
      in
      Format.printf "%-6s safe:%b live:%b decomposition:%s@." name
        (Rdecompose.is_safe_language ~trees:Rpatterns.sample_trees b)
        (Rdecompose.is_live_language ~max_depth:2 b)
        (if fails = [] then "verified" else "FAILED");
      if fails <> [] then
        List.iter (fun (c, diag) -> Format.printf "  %s: %s@." c diag) fails)
    Rpatterns.all

let artifact_lattice_theorems () =
  section "Theorems 2/3/5/6/7 — exhaustive over the lattice corpus";
  List.iter
    (fun (name, l) ->
      if
        Lattice.size l <= 8 && Lattice.is_complemented l
        && Lattice.is_modular l
      then begin
        let reports = Finite_check.check_all_closures l in
        let failed = List.filter (fun (_, r) -> r <> Ok ()) reports in
        Format.printf "%-8s (%d elements, %d closures): %s@." name
          (Lattice.size l)
          (List.length (Lclosure.all l))
          (if failed = [] then "all theorems hold" else "FAILURES")
      end)
    Named.all_small

let artifact_gumm () =
  section "Gumm gap — closures outside the topological framework";
  let l = Named.boolean 3 in
  let cl = Lclosure.of_closed_set l [ 0b000; 0b001; 0b010 ] in
  let module L = (val Finite_check.as_complemented l) in
  let module T = Theory.Make (L) in
  (match
     T.gumm_join_preservation_violation (Lclosure.apply cl)
       ~sample:(Lattice.elements l)
   with
  | Some (a, b) ->
      Format.printf
        "on 2^3, cl with closed sets {0,001,010,111}: cl(%d v %d) <> cl %d \
         v cl %d@."
        a b a b
  | None -> Format.printf "unexpectedly topological@.");
  Format.printf "yet Theorem 2 holds for it: %s@."
    (match Finite_check.check_theorem2 l cl with
    | Ok () -> "verified"
    | Error e -> "FAILED: " ^ e)

let artifacts =
  [ ("fig1", artifact_fig1); ("fig2", artifact_fig2);
    ("rem", artifact_rem); ("ctl", artifact_ctl);
    ("rabin", artifact_rabin);
    ("lattice-theorems", artifact_lattice_theorems);
    ("gumm", artifact_gumm) ]

(* ------------------------------------------------------------------ *)
(* Timings                                                             *)
(* ------------------------------------------------------------------ *)

open Bechamel
open Toolkit

let random_automaton n =
  Buchi.random ~seed:(97 + n) ~alphabet:2 ~nstates:n ~density:0.15
    ~accepting_fraction:0.3 ()

let big_formula = Formula.parse_exn "G (a -> X (!a U (a & X !a)))"

(* PERF-KERNEL microbench inputs (shared with the JSON counters below).
   The dense NFA is sized so the subset construction visits hundreds of
   subset states — enough for the seed's quadratic frontier bookkeeping to
   show. The lockstep pair models two components driven by a shared clock
   (each a deterministic 48-state cycle): only the diagonal of the
   [na*nb*2] product space is reachable, which is exactly what the
   on-the-fly product exploits. Random sparse pairs do not exhibit this —
   reachability percolates and the full product is the honest baseline. *)
let dense_nfa =
  let b =
    Buchi.random ~seed:7 ~alphabet:2 ~nstates:14 ~density:0.12
      ~accepting_fraction:0.3 ()
  in
  Sl_nfa.Nfa.make ~alphabet:2 ~nstates:b.Buchi.nstates ~starts:[ 0 ]
    ~delta:b.Buchi.delta ~accepting:b.Buchi.accepting

let lockstep_pair =
  let cycle n =
    Buchi.make ~alphabet:2 ~nstates:n ~start:0
      ~delta:(Array.init n (fun i -> Array.make 2 [ (i + 1) mod n ]))
      ~accepting:(Array.init n (fun i -> i = 0))
  in
  (cycle 48, cycle 48)

(* MONITOR fleet: 100 properties over 'a' from two parameterized safety
   families, G (a -> X^k !a) (odd k) and !a | X^k a (even k), k in 1..6.
   Only 6 are distinct, which is the realistic shape hash-consing
   exploits; on the alternating trace below the B-family monitors become
   admissible-forever within the first few events and the A-family stays
   live to the end, so the engine's steady state exercises the
   retirement machinery without going idle. *)
let monitor_fleet_props =
  let rec xk n f = if n = 0 then f else xk (n - 1) (Sl_ltl.Formula.x f) in
  List.init 100 (fun i ->
      let k = 1 + (i mod 6) in
      let open Sl_ltl.Formula in
      if i mod 2 = 0 then g (prop "a" ==> xk k (neg (prop "a")))
      else neg (prop "a") ||| xk k (prop "a"))

let monitor_registry =
  let r = Sl_runtime.Registry.create ~alphabet:2 () in
  List.iter
    (fun f -> ignore (Sl_runtime.Registry.add_formula r f))
    monitor_fleet_props;
  r

let monitor_trace_syms = Array.init 10_000 (fun i -> i land 1)
let monitor_trace_ids = Array.make 10_000 0

let monitor_engine =
  Sl_runtime.Engine.create
    ~monitors:(Sl_runtime.Registry.monitors monitor_registry)
    ()

(* PARALLEL fixtures: the same 100-monitor fleet fed 10k events spread
   round-robin over 16 concurrent traces (single-trace feeds cannot
   shard — trace id is the unit of parallelism), one pre-built engine
   per pool width so the series time stepping, not engine setup. The
   jobs ladder is shared by all four parallelized paths. *)
let parallel_jobs_ladder = [ 1; 2; 4 ]

let multi_trace_ids = Array.init 10_000 (fun i -> i mod 16)

let monitor_engines_by_jobs =
  List.map
    (fun jobs ->
      ( jobs,
        Sl_runtime.Engine.create ~jobs
          ~monitors:(Sl_runtime.Registry.monitors monitor_registry)
          () ))
    parallel_jobs_ladder

let fleet_named_props = List.map (fun f -> (None, f)) monitor_fleet_props
let complement_input = Lexamples.automaton (Formula.parse_exn "F a")

(* Disabled-kernel probes for the OBS overhead budget (DESIGN.md §6.8):
   these time the dark-mode cost of an instrumented call site — one
   global flag check — which must stay within noise of a bare loop. *)
let obs_probe_counter = Sl_obs.Obs.Metrics.counter "bench_obs_probe_total"

(* OBS-LABELS fixtures: a labeled family next to the flat probe — a
   child handle is supposed to cost exactly a flat record, and the
   bench pair pins that — plus the interning lookup the chunk epilogues
   pay once per child, not per event. *)
let obs_probe_vec =
  Sl_obs.Obs.Metrics.counter_vec "bench_obs_probe_labeled_total"
    ~labels:[ "monitor" ]

let obs_probe_child = Sl_obs.Obs.Metrics.counter_child obs_probe_vec [ "m0" ]

(* CACHE fixtures: the same 100-property fleet compiled through the
   warm-start cache. The cold series empties its directory before every
   run, so each run pays full translate + minimize + pack + store; the
   warm series compiles once into its directory at fixture setup, so
   each run is 100 probe hits + artifact decodes. Both live under one
   bench-local root (gitignored) rather than a temp dir, so the fixture
   is inspectable after a run. *)
let bench_cache_root = ".slc-bench-cache"
let bench_cache_cold_dir = Filename.concat bench_cache_root "cold"
let bench_cache_warm_dir = Filename.concat bench_cache_root "warm"

let clear_cache_dir dir =
  if Sys.file_exists dir then
    Array.iter
      (fun f ->
        try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
      (Sys.readdir dir)

let compile_fleet_cached ~dir =
  let r =
    Sl_runtime.Registry.create ~alphabet:2
      ~cache:(Sl_runtime.Cache.create ~dir)
      ()
  in
  Sl_runtime.Registry.compile_all ~jobs:1 r fleet_named_props

let prewarm_bench_cache =
  lazy
    (clear_cache_dir bench_cache_warm_dir;
     ignore (compile_fleet_cached ~dir:bench_cache_warm_dir))

(* SESSION fixtures: the fleet engine's run state snapshotted at the
   10k-event stream's midpoint. The write series times serializing +
   atomically publishing the snapshot; the restore series times decode +
   validation + engine rebuild from the prebuilt blob; the resume/cold
   pair compares finishing the stream from the snapshot against
   replaying it from scratch — the recovery-time story. *)
let bench_session_dir = Filename.concat bench_cache_root "session"

let ensure_dir dir =
  if not (Sys.file_exists dir) then begin
    (try Sys.mkdir bench_cache_root 0o755 with Sys_error _ -> ());
    try Sys.mkdir dir 0o755 with Sys_error _ -> ()
  end

let session_fresh () =
  let s = Sl_runtime.Session.create ~jobs:1 ~registry:monitor_registry () in
  (* the 16 concurrent trace ids of the PARALLEL fixture, interned in
     the order the stream first sees them *)
  for i = 0 to 15 do
    ignore
      (Sl_runtime.Ingest.intern
         (Sl_runtime.Session.ingest s)
         (Printf.sprintf "t%d" i))
  done;
  s

let session_at_midpoint =
  lazy
    (let s = session_fresh () in
     Sl_runtime.Engine.feed (Sl_runtime.Session.engine s) ~n:5_000
       ~traces:multi_trace_ids ~symbols:monitor_trace_syms ();
     s)

let session_snapshot_blob =
  lazy (Sl_runtime.Session.to_artifact (Lazy.force session_at_midpoint))

(* SERVE fixtures: the PARALLEL stream (10k events round-robin over 16
   traces) pre-rendered to Ingest line-protocol bytes — once as a single
   client's stream, and once split by trace across 4 clients with each
   client's bytes cut into 8 slices, so the 4-conn series interleaves
   reads the way the select loop does. Each run builds its own
   session/daemon/connections (like session/cold-feed-10k, setup is part
   of the story) and drains the NDJSON records inside the timed body:
   rendering verdicts is part of the serving cost. *)
let serve_lines =
  lazy
    (Array.init 10_000 (fun i ->
         Printf.sprintf "t%d %d\n" multi_trace_ids.(i)
           monitor_trace_syms.(i)))

let serve_blob_all =
  lazy (String.concat "" (Array.to_list (Lazy.force serve_lines)))

let serve_slices_by_conn =
  lazy
    (let lines = Lazy.force serve_lines in
     Array.init 4 (fun k ->
         let mine = ref [] in
         Array.iteri
           (fun i line ->
             if multi_trace_ids.(i) mod 4 = k then mine := line :: !mine)
           lines;
         let mine = Array.of_list (List.rev !mine) in
         let per = (Array.length mine + 7) / 8 in
         Array.init 8 (fun s ->
             let lo = s * per in
             let hi = min (Array.length mine) (lo + per) in
             String.concat ""
               (Array.to_list (Array.sub mine lo (max 0 (hi - lo)))))))

let serve_daemon_fresh () = Sl_serve.Daemon.make (session_fresh ())

(* INTROSPECT fixture: a daemon that has digested the whole 10k-event
   stream through one connection, wired to an introspection instance —
   what a /status or /monitors scrape renders mid-soak. *)
let serve_introspect_fixture =
  lazy
    (let d = serve_daemon_fresh () in
     let c = Sl_serve.Conn.create d in
     Sl_serve.Conn.on_bytes c (Lazy.force serve_blob_all);
     ignore (Sl_serve.Conn.drain_output c);
     let intro = Sl_serve.Introspect.create ~version:"bench" d in
     Sl_serve.Introspect.set_conns intro (fun () ->
         [ Sl_serve.Introspect.conn_info_of_conn c ]);
     intro)

(* A registry one property richer than the fleet (same alphabet): the
   keyed carry-over path of a hot reload, as opposed to the
   identical-fingerprint snapshot round-trip. *)
let serve_reload_registry =
  lazy
    (let r = Sl_runtime.Registry.create ~alphabet:2 () in
     List.iter
       (fun f -> ignore (Sl_runtime.Registry.add_formula r f))
       (monitor_fleet_props @ [ Sl_ltl.Formula.(g (prop "a")) ]);
     r)

let monitor_naive_fleet =
  List.map
    (fun f -> Sl_buchi.Monitor.create (Lexamples.automaton f))
    monitor_fleet_props

(* Steady-state allocation of the packed engine's event loop: feed 10k
   events to settle retirement and allocate the trace block, then count
   minor words over the next 10k. Integer-divided per event this must be
   0 — the acceptance criterion "per-event stepping is allocation-free"
   made measurable. *)
let monitor_steady_minor_words_per_event () =
  let eng =
    Sl_runtime.Engine.create
      ~monitors:(Sl_runtime.Registry.monitors monitor_registry)
      ()
  in
  let feed () =
    Sl_runtime.Engine.feed eng ~n:10_000 ~traces:monitor_trace_ids
      ~symbols:monitor_trace_syms ()
  in
  feed ();
  let before = Gc.minor_words () in
  feed ();
  let words = Gc.minor_words () -. before in
  int_of_float words / 10_000

let make_tests () =
  let t name f = Test.make ~name (Staged.stage f) in
  let scaling name make_input f sizes =
    List.map
      (fun n ->
        let input = make_input n in
        t (Printf.sprintf "%s/%d" name n) (fun () -> f input))
      sizes
  in
  List.concat
    [ (* FIG1 / FIG2: the exhaustive counterexample checks. *)
      [ t "fig1/lemma6" (fun () -> Finite_check.lemma6_fig1 ());
        t "fig2/theorem7-failure" (fun () ->
            Finite_check.fig2_theorem7_failure ()) ];
      (* THM2-3: exhaustive decomposition checks per lattice. *)
      [ t "thm2/bool3" (fun () ->
            Finite_check.check_theorem2 (Named.boolean 3)
              (Lclosure.of_closed_set (Named.boolean 3) [ 0b001 ]));
        t "thm3/all-closures-bool2" (fun () ->
            Finite_check.check_all_closures (Named.boolean 2)) ];
      (* TAB-REM: the Section 2.3 table end to end. *)
      [ t "rem/table" (fun () -> Lexamples.table ());
        t "rem/classify-p3" (fun () -> Lexamples.classify Lexamples.p3) ];
      (* BA-DEC: closure and decomposition scaling on random automata. *)
      scaling "buchi/bcl" random_automaton Bclosure.bcl [ 8; 32; 128 ];
      scaling "buchi/decompose" random_automaton Bdecompose.decompose
        [ 8; 32; 128 ];
      scaling "buchi/safety-complement"
        (fun n -> Bclosure.bcl (random_automaton n))
        Complement.complement_closed [ 8; 32 ];
      [ t "buchi/rank-complement-3" (fun () ->
            Complement.rank_based (random_automaton 3)) ];
      (* Ablation: bcl vs the naive pruning (DESIGN.md §5.3). *)
      [ t "ablation/bcl-128" (fun () ->
            Bclosure.bcl (random_automaton 128));
        t "ablation/naive-prune-128" (fun () ->
            Bclosure.naive_prune (random_automaton 128)) ];
      (* Ablation: exact vs sampled equality (DESIGN.md §5.2). *)
      [ t "equality/exact-p3-vs-p1" (fun () ->
            Lang.equal (Bclosure.bcl Bpatterns.p3) Bpatterns.p1);
        t "equality/sampled-p3-vs-p1" (fun () ->
            Lang.sampled_equal ~max_prefix:3 ~max_cycle:3
              (Bclosure.bcl Bpatterns.p3) Bpatterns.p1) ];
      (* LTL machinery. *)
      [ t "ltl/translate-p5" (fun () ->
            Translate.translate ~alphabet:2 ~valuation:Lexamples.valuation
              Lexamples.p5);
        t "ltl/translate-nested" (fun () ->
            Translate.translate ~alphabet:2 ~valuation:Lexamples.valuation
              big_formula);
        t "ltl/eval-lasso" (fun () ->
            Semantics.eval Lexamples.valuation big_formula
              (Lasso.make ~prefix:[ 0; 1; 0 ] ~cycle:[ 1; 0; 0; 1 ])) ];
      (* CTL model checking. *)
      [ t "ctl/mutex" (fun () ->
            Ctl.holds (Kripke.mutex ()) (Ctl.parse_exn "AG (t1 -> AF c1)"));
        t "ctl/philosophers-4" (fun () ->
            Ctl.holds
              (Kripke.dining_philosophers 4)
              (Ctl.parse_exn "AG (hungry0 -> EF eat0)")) ];
      (* TAB-CTL: closure membership on trees. *)
      [ t "ctl/q-table-row" (fun () ->
            Sl_tree.Tclosure.classify Cexamples.q3a
              ~sample:(List.filteri (fun i _ -> i < 40) Cexamples.sample)
              ~max_depth:2) ];
      (* THM9: Rabin machinery. *)
      [ t "rabin/rfcl-q3a" (fun () -> Rclosure.rfcl Rpatterns.q3a);
        t "rabin/membership" (fun () ->
            List.iter
              (fun tr -> ignore (Rabin.accepts Rpatterns.af_b tr))
              (List.filteri (fun i _ -> i < 16) Rpatterns.sample_trees));
        t "rabin/decompose-verify" (fun () ->
            Rdecompose.verify_sampled ~max_depth:1
              ~trees:(List.filteri (fun i _ -> i < 16)
                        Rpatterns.sample_trees)
              (Rdecompose.decompose Rpatterns.q3a)) ];
      (* Simulation-reduction ablation: size/time of the liveness part. *)
      [ t "ablation/liveness-raw-p3" (fun () ->
            (Bdecompose.decompose Bpatterns.p3).Bdecompose.liveness);
        t "ablation/liveness-reduced-p3" (fun () ->
            Sl_buchi.Simulation.reduce
              (Bdecompose.decompose Bpatterns.p3).Bdecompose.liveness) ];
      (* Monitoring throughput (Schneider connection). *)
      [ t "monitor/feed-1k" (fun () ->
            let m =
              Sl_buchi.Monitor.create Bpatterns.no_grant_without_request
            in
            Sl_buchi.Monitor.feed m
              (List.init 1000 (fun i -> if i mod 7 = 0 then 1 else 0))) ];
      (* MONITOR: the streaming runtime engine (batched, packed,
         hash-consed, early retirement) vs a loop of naive per-event
         Monitor.step calls over the same 100-property fleet and 10k-event
         trace. Both reset their pre-built monitors per run, so the pair
         times pure steady-state stepping, not compilation. *)
      [ t "monitor/engine-100x10k" (fun () ->
            Sl_runtime.Engine.reset monitor_engine;
            Sl_runtime.Engine.feed monitor_engine ~n:10_000
              ~traces:monitor_trace_ids ~symbols:monitor_trace_syms ());
        (* The same feed with the observability kernel collecting: the
           per-chunk telemetry epilogue plus one span, so the gap to the
           dark-mode series above is the enabled-mode overhead. *)
        t "monitor/engine-100x10k-obs" (fun () ->
            Sl_obs.Obs.enable ();
            Sl_runtime.Engine.reset monitor_engine;
            Sl_runtime.Engine.feed monitor_engine ~n:10_000
              ~traces:monitor_trace_ids ~symbols:monitor_trace_syms ();
            Sl_obs.Obs.disable ());
        (* OBS dark-mode probes: an instrumented counter bump and a full
           span enter/exit pair while the kernel is off. *)
        t "obs/counter-incr-disabled" (fun () ->
            Sl_obs.Obs.Metrics.incr obs_probe_counter);
        t "obs/span-disabled" (fun () ->
            Sl_obs.Obs.Span.exit (Sl_obs.Obs.Span.enter "bench.disabled"));
        t "monitor/naive-100x10k" (fun () ->
            List.iter Sl_buchi.Monitor.reset monitor_naive_fleet;
            Array.iter
              (fun s ->
                List.iter
                  (fun m -> ignore (Sl_buchi.Monitor.step m s))
                  monitor_naive_fleet)
              monitor_trace_syms) ];
      (* Automata-theoretic model checking. *)
      [ t "modelcheck/ring-GF" (fun () ->
            Sl_ltl.Modelcheck.check (Kripke.token_ring 3) ~alphabet:8
              ~valuation:(Semantics.subset_valuation
                            [ "tok0"; "tok1"; "tok2" ])
              (Formula.parse_exn "G F tok0"));
        t "modelcheck/ring-split" (fun () ->
            Sl_ltl.Modelcheck.check_split (Kripke.token_ring 3) ~alphabet:8
              ~valuation:(Semantics.subset_valuation
                            [ "tok0"; "tok1"; "tok2" ])
              (Formula.parse_exn "F G tok0")) ];
      (* Fair CTL. *)
      [ t "ctl/fair-mutex" (fun () ->
            let k = Kripke.mutex () in
            let c =
              [ Array.init k.Kripke.nstates (fun q ->
                    Kripke.holds k q "t1" || Kripke.holds k q "c1") ]
            in
            Sl_ctl.Fair.holds k c (Ctl.parse_exn "AF c1")) ];
      (* DFA minimization: Moore vs Brzozowski (substrate ablation). *)
      (let nfa =
         Sl_nfa.Nfa.make ~alphabet:2 ~nstates:6 ~starts:[ 0 ]
           ~delta:
             [| [| [ 0; 1 ]; [ 0 ] |]; [| []; [ 2 ] |]; [| [ 3 ]; [ 2 ] |];
                [| [ 3 ]; [ 4 ] |]; [| [ 5 ]; [] |]; [| [ 5 ]; [ 5 ] |] |]
           ~accepting:[| false; false; false; false; false; true |]
       in
       [ t "nfa/moore" (fun () ->
             Sl_nfa.Nfa.reverse_determinize_minimize nfa);
         t "nfa/brzozowski" (fun () ->
             Sl_nfa.Nfa.brzozowski_minimize nfa) ]);
      (* Galois-induced closure. *)
      [ t "galois/lcl-closure" (fun () ->
            let c =
              Sl_lattice.Galois.lcl_connection ~max_len:2 ~alphabet:2
            in
            List.init 16 (Sl_lattice.Galois.closure_of c)) ];
      (* µ-calculus vs direct CTL. *)
      [ t "mu/ctl-embedding-mutex" (fun () ->
            Sl_mu.Mu.holds (Kripke.mutex ())
              (Sl_mu.Mu.of_ctl (Ctl.parse_exn "AG (t1 -> AF c1)")));
        t "mu/alternation-egf" (fun () ->
            Sl_mu.Mu.sat (Kripke.mutex ())
              (Sl_mu.Mu.parse_exn "nu X . mu Y . (c1 & <> X) | <> Y")) ];
      (* ω-regex pipeline. *)
      [ t "regex/compile-p4" (fun () ->
            Sl_regex.Omega.to_buchi ~alphabet:2
              (List.assoc "p4" Sl_regex.Omega.rem_examples));
        t "regex/classify-p4" (fun () ->
            (* ¬(FG b) = GF a: the p5 regex automaton is the negation. *)
            Bdecompose.classify_via_negation
              (Sl_regex.Omega.to_buchi ~alphabet:2
                 (List.assoc "p4" Sl_regex.Omega.rem_examples))
              ~negation:
                (Sl_regex.Omega.to_buchi ~alphabet:2
                   (List.assoc "p5" Sl_regex.Omega.rem_examples))) ];
      (* Acceptance-condition translations. *)
      [ t "acceptance/rabin-to-buchi" (fun () ->
            Sl_buchi.Acceptance.rabin_to_buchi
              (Sl_buchi.Acceptance.of_buchi (random_automaton 8))) ];
      (* PERF-KERNEL: optimized hot paths vs the retained seed
         references (same inputs, so the pairs are directly
         comparable). *)
      [ t "nfa/determinize-dense" (fun () -> Sl_nfa.Nfa.determinize dense_nfa);
        t "nfa/determinize-dense-seedref" (fun () ->
            Sl_nfa.Nfa.determinize_ref dense_nfa) ];
      [ t "ops/intersect-reachable" (fun () ->
            Ops.intersect (fst lockstep_pair) (snd lockstep_pair));
        t "ops/intersect-full-seedref" (fun () ->
            Ops.intersect_full (fst lockstep_pair) (snd lockstep_pair)) ];
      [ t "buchi/rank-complement-3-seedref" (fun () ->
            Complement.rank_based_ref (random_automaton 3)) ];
      (* PARALLEL: the four Pool-parallelized hot paths at every rung of
         the jobs ladder, identical inputs per rung — the scaling curves
         the JSON trajectory records. On a 1-core container the curves
         are flat-to-inverted (domains time-slice one CPU); the series
         still pin the parallel paths' overhead and feed the
         byte-identity cross-checks in CI. *)
      List.concat_map
        (fun jobs ->
          let eng = List.assoc jobs monitor_engines_by_jobs in
          [ t (Printf.sprintf "parallel/engine-100x10k-16tr/j%d" jobs)
              (fun () ->
                Sl_runtime.Engine.reset eng;
                Sl_runtime.Engine.feed eng ~n:10_000
                  ~traces:multi_trace_ids ~symbols:monitor_trace_syms ());
            t (Printf.sprintf "parallel/registry-compile-100/j%d" jobs)
              (fun () ->
                let r = Sl_runtime.Registry.create ~alphabet:2 () in
                Sl_runtime.Registry.compile_all ~jobs r fleet_named_props);
            t (Printf.sprintf "parallel/rank-complement-Fa/j%d" jobs)
              (fun () -> Complement.rank_based ~jobs complement_input);
            t (Printf.sprintf "parallel/theorems-bool3/j%d" jobs)
              (fun () ->
                Finite_check.check_all_closures ~jobs (Named.boolean 3)) ])
        parallel_jobs_ladder;
      (* CACHE: the 100-property fleet compile with an empty vs a
         prewarmed compile cache — the PR 6 acceptance pair (warm must
         be an order of magnitude under cold, DESIGN.md §6.10). *)
      [ t "cache/registry-compile-100-cold" (fun () ->
            clear_cache_dir bench_cache_cold_dir;
            compile_fleet_cached ~dir:bench_cache_cold_dir);
        (Lazy.force prewarm_bench_cache;
         t "cache/registry-compile-100-warm" (fun () ->
             compile_fleet_cached ~dir:bench_cache_warm_dir)) ];
      (* SESSION: snapshot write, restore, and resume-vs-replay on the
         fleet engine at the stream midpoint. *)
      [ (ensure_dir bench_session_dir;
         let snap_path = Filename.concat bench_session_dir "mid.slsession" in
         t "session/snapshot-write" (fun () ->
             Sl_runtime.Session.save
               (Lazy.force session_at_midpoint)
               ~path:snap_path));
        t "session/restore" (fun () ->
            match
              Sl_runtime.Session.of_artifact ~jobs:1
                ~registry:monitor_registry
                (Lazy.force session_snapshot_blob)
            with
            | Ok s -> s
            | Error _ -> failwith "bench snapshot failed to restore");
        t "session/resume-feed-5k" (fun () ->
            match
              Sl_runtime.Session.of_artifact ~jobs:1
                ~registry:monitor_registry
                (Lazy.force session_snapshot_blob)
            with
            | Ok s ->
                Sl_runtime.Engine.feed (Sl_runtime.Session.engine s)
                  ~off:5_000 ~n:5_000 ~traces:multi_trace_ids
                  ~symbols:monitor_trace_syms ()
            | Error _ -> failwith "bench snapshot failed to restore");
        t "session/cold-feed-10k" (fun () ->
            let s = session_fresh () in
            Sl_runtime.Engine.feed (Sl_runtime.Session.engine s) ~n:10_000
              ~traces:multi_trace_ids ~symbols:monitor_trace_syms ()) ];
      (* SERVE: the daemon's connection path in-process — line parsing,
         trace interning, engine feed, and NDJSON verdict rendering,
         without socket syscalls — at 1 client and at 4 multiplexed
         clients on one shared engine, plus the two hot-reload commit
         paths on the midpoint session. *)
      (* Fixtures are forced at group construction (the blob render and
         the 101-prop registry compile must not leak into the first
         timed run, which dominates a 0.25s quota). *)
      (let blob = Lazy.force serve_blob_all in
       let slices = Lazy.force serve_slices_by_conn in
       let mid_session = Lazy.force session_at_midpoint in
       let reload_registry = Lazy.force serve_reload_registry in
       [ t "serve/conn-feed-10k-1conn" (fun () ->
             let d = serve_daemon_fresh () in
             let c = Sl_serve.Conn.create d in
             Sl_serve.Conn.on_bytes c blob;
             Sl_serve.Conn.on_eof c;
             ignore (Sl_serve.Conn.drain_output c));
         t "serve/conn-feed-10k-4conn" (fun () ->
             let d = serve_daemon_fresh () in
             let conns = Array.init 4 (fun _ -> Sl_serve.Conn.create d) in
             for s = 0 to 7 do
               for k = 0 to 3 do
                 Sl_serve.Conn.on_bytes conns.(k) slices.(k).(s)
               done
             done;
             Array.iter
               (fun c ->
                 Sl_serve.Conn.on_eof c;
                 ignore (Sl_serve.Conn.drain_output c))
               conns);
         t "serve/reload-identical-100p" (fun () ->
             match
               Sl_serve.Reload.carry_over ~old_session:mid_session
                 ~registry:monitor_registry ()
             with
             | Ok (_, carried) -> carried
             | Error e -> failwith ("bench reload refused: " ^ e));
         t "serve/reload-carryover-101p" (fun () ->
             match
               Sl_serve.Reload.carry_over ~old_session:mid_session
                 ~registry:reload_registry ()
             with
             | Ok (_, carried) -> carried
             | Error e -> failwith ("bench reload refused: " ^ e));
         (* The obs-enabled counterpart of conn-feed-10k-1conn: the same
            stream with the kernel collecting, so the gap to the dark
            series is the full serving-path telemetry overhead (chunk
            epilogues, stage histograms, labeled flushes). *)
         t "serve/conn-feed-10k-1conn-obs" (fun () ->
             Sl_obs.Obs.enable ();
             let d = serve_daemon_fresh () in
             let c = Sl_serve.Conn.create d in
             Sl_serve.Conn.on_bytes c blob;
             Sl_serve.Conn.on_eof c;
             ignore (Sl_serve.Conn.drain_output c);
             Sl_obs.Obs.disable ()) ]);
      (* INGEST: the parse stage in isolation on the same pre-rendered
         10k-line stream the SERVE group feeds — the zero-copy scanner
         (in-place line walk, slice-hash interning, strict decimal digit
         loop) against the retained reference parser (a string per line
         and per field, the seed's ingest shape). The reference pulls
         lines out of the blob with index/sub, an honest stand-in for
         [input_line]'s allocation profile without channel syscalls. *)
      (let blob = Lazy.force serve_blob_all in
       let sink = ref 0 in
       [ t "ingest/scan-10k" (fun () ->
             let ing = Sl_runtime.Ingest.create () in
             let sc =
               Sl_runtime.Ingest.scanner ~alphabet:2 ing
                 ~on_chunk:(fun c -> sink := !sink + c.Sl_runtime.Ingest.len)
                 ~on_error:(fun _ -> ())
             in
             Sl_runtime.Ingest.scan_string sc blob 0 (String.length blob);
             Sl_runtime.Ingest.scan_eof sc);
         t "ingest/parse-ref-10k" (fun () ->
             let ing = Sl_runtime.Ingest.create () in
             let pos = ref 0 in
             let next_line () =
               if !pos >= String.length blob then None
               else begin
                 let j =
                   try String.index_from blob !pos '\n'
                   with Not_found -> String.length blob
                 in
                 let line = String.sub blob !pos (j - !pos) in
                 pos := j + 1;
                 Some line
               end
             in
             Sl_runtime.Ingest.read ~alphabet:2 ing ~next_line
               ~on_chunk:(fun c -> sink := !sink + c.Sl_runtime.Ingest.len)
               ~on_error:(fun _ -> ())) ]);
      (* OBS-LABELS: enabled-mode recording cost, flat vs labeled child
         (amortized over 1k bumps so the enable/disable bracket is
         noise); the interning lookup the epilogues pay per child; and
         what one introspection scrape renders against the digested
         10k-event daemon. *)
      (let intro = Lazy.force serve_introspect_fixture in
       [ t "obs/counter-incr-enabled-x1k" (fun () ->
             Sl_obs.Obs.enable ();
             for _ = 1 to 1000 do
               Sl_obs.Obs.Metrics.incr obs_probe_counter
             done;
             Sl_obs.Obs.disable ());
         t "obs/labeled-incr-enabled-x1k" (fun () ->
             Sl_obs.Obs.enable ();
             for _ = 1 to 1000 do
               Sl_obs.Obs.Metrics.incr obs_probe_child
             done;
             Sl_obs.Obs.disable ());
         t "obs/vec-child-lookup" (fun () ->
             Sl_obs.Obs.Metrics.counter_child obs_probe_vec [ "m0" ]);
         t "obs/status-render" (fun () ->
             Sl_serve.Introspect.handler intro "/status");
         t "obs/monitors-render" (fun () ->
             Sl_serve.Introspect.handler intro "/monitors") ]);
      (* Structural hierarchy classification. *)
      [ t "hierarchy/classify-128" (fun () ->
            Sl_buchi.Hierarchy.classify_structural (random_automaton 128)) ];
      (* Lattice substrate. *)
      [ t "lattice/width-part4" (fun () ->
            Sl_order.Poset.width (Lattice.poset (Named.partition 4)));
        t "lattice/birkhoff-div30" (fun () ->
            Sl_lattice.Birkhoff.check_representation (fst (Named.divisor 30)))
      ];
      (* GRAPH-KERNEL: the shared CSR digraph kernel in isolation, on the
         transition graph every layer now routes through. *)
      (let b128 = random_automaton 128 in
       let g128 = Buchi.graph b128 in
       let scc128 = Digraph.sccs g128 in
       let acc128 =
         Array.init (Digraph.nodes g128) (fun q -> b128.Buchi.accepting.(q))
       in
       let gnba128 =
         Gnba.make ~alphabet:2 ~nstates:b128.Buchi.nstates ~start:0
           ~delta:b128.Buchi.delta
           ~acceptance:
             [ Array.copy b128.Buchi.accepting;
               Array.init b128.Buchi.nstates (fun q -> q mod 3 = 0) ]
       in
       [ t "digraph/of-delta/128" (fun () -> Buchi.graph b128);
         t "digraph/sccs/128" (fun () -> Digraph.sccs g128);
         t "digraph/condense/128" (fun () -> Digraph.condense g128 scc128);
         t "digraph/reverse-reach/128" (fun () ->
             Digraph.reachable_from (Digraph.reverse g128) acc128);
         t "buchi/live-states/128" (fun () -> Buchi.live_states b128);
         t "gnba/is-empty/128" (fun () -> Gnba.is_empty gnba128) ]) ]

let bench_estimates () =
  let tests = make_tests () in
  let instance = Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.25) ~kde:(Some 500) ()
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  List.concat_map
    (fun test ->
      let results = Benchmark.all cfg [ instance ] test in
      let analyzed = Analyze.all ols instance results in
      Hashtbl.fold
        (fun name ols_result acc ->
          let estimate =
            match Analyze.OLS.estimates ols_result with
            | Some (x :: _) -> Some x
            | _ -> None
          in
          (name, estimate) :: acc)
        analyzed [])
    tests

let run_benchmarks () =
  section "Timings (Bechamel; ns per run, OLS on monotonic clock)";
  List.iter
    (fun (name, estimate) ->
      let estimate =
        match estimate with
        | Some x -> Printf.sprintf "%12.1f ns/run" x
        | None -> "            n/a"
      in
      Format.printf "%-34s %s@." name estimate)
    (bench_estimates ())

(* ------------------------------------------------------------------ *)
(* JSON perf trajectory                                                *)
(* ------------------------------------------------------------------ *)

(* Seed timings of the benches PR 1 optimized, measured at the seed
   commit (e31e302) on the CI container with the same Bechamel
   configuration. They anchor the speedup entries of the trajectory file
   for benches whose seed implementation no longer exists under its
   original name; the *-seedref benches re-measure the retained
   reference implementations live on every run. *)
let seed_baselines =
  [ ("hierarchy/classify-128", 1_605_277.9);
    ("acceptance/rabin-to-buchi", 3_731.5);
    ("buchi/bcl/128", 1_166_310.9);
    ("buchi/decompose/128", 3_372_902.3);
    ("buchi/rank-complement-3", 2_657.4);
    ("buchi/safety-complement/32", 174_874.4) ]

(* Pairs (optimized bench, live seed-reference bench): the baseline is
   re-measured in the same run, on the same machine and inputs. *)
let seedref_pairs =
  [ ("nfa/determinize-dense", "nfa/determinize-dense-seedref");
    ("ops/intersect-reachable", "ops/intersect-full-seedref");
    ("buchi/rank-complement-3", "buchi/rank-complement-3-seedref");
    (* The naive fleet loop is the seed-style per-event monitoring the
       streaming engine replaces, re-measured live on the same inputs. *)
    ("monitor/engine-100x10k", "monitor/naive-100x10k");
    (* The reference line parser is the ingest shape every PR before 10
       ran, re-measured live on the same 10k-line stream. *)
    ("ingest/scan-10k", "ingest/parse-ref-10k") ]

(* Automaton-size counters for the microbench inputs: they document what
   the timings mean (how many states each construction materializes) and
   guard against silently benchmarking trivial inputs. *)
let bench_counters () =
  let dfa = Sl_nfa.Nfa.determinize dense_nfa in
  let a, b = lockstep_pair in
  let product = Ops.intersect a b in
  let full = Ops.intersect_full a b in
  [ ("nfa/determinize-dense/nfa-states", dense_nfa.Sl_nfa.Nfa.nstates);
    ("nfa/determinize-dense/dfa-states", dfa.Sl_nfa.Dfa.nstates);
    ("ops/intersect-reachable/product-states-allocated",
     product.Buchi.nstates);
    ("ops/intersect-full/product-states-allocated", full.Buchi.nstates);
    ("hierarchy/classify-128/states", (random_automaton 128).Buchi.nstates);
    ("buchi/rank-complement-3/complement-states",
     (Complement.rank_based (random_automaton 3)).Buchi.nstates);
    ("monitor/fleet-props", Sl_runtime.Registry.nprops monitor_registry);
    ("monitor/fleet-distinct-monitors",
     Sl_runtime.Registry.nmonitors monitor_registry);
    ("monitor/steady-minor-words-per-event",
     monitor_steady_minor_words_per_event ()) ]

(* Per-group span summaries: one pass over a representative input per
   instrumented bench group with the observability kernel collecting,
   aggregated by span name. They document where the decision pipeline
   and the engine spend their time, in the same trajectory file the
   timings live in. *)
let span_summaries () =
  let module Obs = Sl_obs.Obs in
  Obs.reset ();
  Obs.enable ();
  ignore
    (Translate.translate ~alphabet:2 ~valuation:Lexamples.valuation
       big_formula);
  ignore (Sl_nfa.Nfa.determinize dense_nfa);
  ignore (Complement.rank_based (random_automaton 3));
  let r = Sl_runtime.Registry.create ~alphabet:2 () in
  List.iter
    (fun f -> ignore (Sl_runtime.Registry.add_formula r f))
    monitor_fleet_props;
  let eng =
    Sl_runtime.Engine.create ~monitors:(Sl_runtime.Registry.monitors r) ()
  in
  Sl_runtime.Engine.feed eng ~n:10_000 ~traces:monitor_trace_ids
    ~symbols:monitor_trace_syms ();
  Obs.disable ();
  let aggs = Obs.Span.aggregates () in
  Obs.reset ();
  aggs

(* The trajectory files are hand-rolled line-per-record JSON (written by
   [run_benchmarks_json] below, in PR 1 and now); read a previous file's
   "results" section back the same way, one line at a time, without
   taking on a JSON dependency. Returns [None] when the file is absent
   (e.g. running from a bare checkout). *)
let read_prev_results path =
  if not (Sys.file_exists path) then None
  else begin
    let ic = open_in path in
    let acc = ref [] in
    let in_results = ref false in
    (try
       while true do
         let line = String.trim (input_line ic) in
         if line = "\"results\": [" then in_results := true
         else if !in_results && (line = "]," || line = "]") then
           in_results := false
         else if !in_results then
           try
             Scanf.sscanf line "{\"name\": %S, \"ns_per_run\": %f"
               (fun name ns -> acc := (name, ns) :: !acc)
           with Scanf.Scan_failure _ | Failure _ | End_of_file ->
             (* null estimates and malformed lines carry no baseline *)
             ()
       done
     with End_of_file -> ());
    close_in ic;
    Some (List.rev !acc)
  end

(* Baseline chaining (the perf trajectory): prefer the previous PR's
   tracked file, fall back through the older ones so a pruned checkout
   still gets a baseline instead of an empty section. The chosen file is
   recorded in the output as "baseline_file" (null when none found). *)
let baseline_chain =
  [ "BENCH_PR9.json"; "BENCH_PR8.json"; "BENCH_PR7.json"; "BENCH_PR6.json"; "BENCH_PR5.json";
    "BENCH_PR4.json"; "BENCH_PR3.json"; "BENCH_PR2.json"; "BENCH_PR1.json" ]

let read_baseline () =
  List.find_map
    (fun path ->
      match read_prev_results path with
      | Some results -> Some (path, results)
      | None -> None)
    baseline_chain

(* Every bench record carries the pool width it ran at: the PARALLEL
   series encode it in their (.../jN) names; everything else runs at the
   process default of 1. *)
let jobs_of_bench_name name =
  match String.rindex_opt name '/' with
  | Some i
    when i + 2 <= String.length name - 1
         && name.[i + 1] = 'j' ->
      (match
         int_of_string_opt
           (String.sub name (i + 2) (String.length name - i - 2))
       with
      | Some j when j >= 1 -> j
      | _ -> 1)
  | _ -> 1

let json_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let run_benchmarks_json ~path =
  (* Open the output first: an unwritable path should fail before the
     multi-minute measurement run, not after it. *)
  let oc = open_out path in
  let estimates = bench_estimates () in
  let counters = bench_counters () in
  let lookup name =
    match List.assoc_opt name estimates with Some (Some x) -> Some x | _ -> None
  in
  let speedups =
    List.filter_map
      (fun (name, ns) ->
        match ns with
        | None -> None
        | Some ns ->
            let baseline =
              match List.assoc_opt name seedref_pairs with
              | Some ref_name -> (
                  match lookup ref_name with
                  | Some b -> Some (b, "seedref-bench:" ^ ref_name)
                  | None -> None)
              | None -> (
                  match List.assoc_opt name seed_baselines with
                  | Some b -> Some (b, "seed-commit-timing")
                  | None -> None)
            in
            Option.map
              (fun (b, source) -> (name, ns, b, source, b /. ns))
              baseline)
      estimates
  in
  let baseline = read_baseline () in
  let vs_prev =
    match baseline with
    | None -> []
    | Some (_, prev) ->
        List.filter_map
          (fun (name, est) ->
            match (est, List.assoc_opt name prev) with
            | Some ns, Some base -> Some (name, ns, base, base /. ns)
            | _ -> None)
          estimates
  in
  (* Parallel scaling curves: for every PARALLEL base name, the ns at
     each rung of the jobs ladder plus the j1-relative speedups. *)
  let scaling =
    let bases =
      [ "parallel/engine-100x10k-16tr"; "parallel/registry-compile-100";
        "parallel/rank-complement-Fa"; "parallel/theorems-bool3" ]
    in
    List.filter_map
      (fun base ->
        let at j = lookup (Printf.sprintf "%s/j%d" base j) in
        match at 1 with
        | None -> None
        | Some ns1 ->
            Some
              ( base,
                ns1,
                List.filter_map
                  (fun j ->
                    Option.map (fun ns -> (j, ns, ns1 /. ns)) (at j))
                  (List.filter (fun j -> j > 1) parallel_jobs_ladder) ))
      bases
  in
  let p fmt = Printf.fprintf oc fmt in
  p "{\n";
  p "  \"schema\": \"sl-bench-trajectory/1\",\n";
  p "  \"pr\": \"PR10\",\n";
  p "  \"config\": {\"quota_s\": 0.25, \"limit\": 1000, \"estimator\": \"ols\"},\n";
  p "  \"cores\": %d,\n" (Domain.recommended_domain_count ());
  p "  \"results\": [\n";
  let sorted = List.sort (fun (a, _) (b, _) -> compare a b) estimates in
  List.iteri
    (fun i (name, est) ->
      p "    {\"name\": \"%s\", \"ns_per_run\": %s, \"jobs\": %d}%s\n"
        (json_escape name)
        (match est with Some x -> Printf.sprintf "%.1f" x | None -> "null")
        (jobs_of_bench_name name)
        (if i = List.length sorted - 1 then "" else ","))
    sorted;
  p "  ],\n";
  p "  \"counters\": [\n";
  List.iteri
    (fun i (name, v) ->
      p "    {\"name\": \"%s\", \"value\": %d}%s\n" (json_escape name) v
        (if i = List.length counters - 1 then "" else ","))
    counters;
  p "  ],\n";
  p "  \"speedups_vs_seed\": [\n";
  List.iteri
    (fun i (name, ns, base, source, speedup) ->
      p
        "    {\"name\": \"%s\", \"ns_per_run\": %.1f, \"seed_ns_per_run\": \
         %.1f, \"baseline_source\": \"%s\", \"speedup\": %.2f}%s\n"
        (json_escape name) ns base (json_escape source) speedup
        (if i = List.length speedups - 1 then "" else ","))
    speedups;
  p "  ],\n";
  p "  \"baseline_file\": %s,\n"
    (match baseline with
    | Some (path, _) -> Printf.sprintf "\"%s\"" (json_escape path)
    | None -> "null");
  p "  \"speedups_vs_pr9\": [\n";
  List.iteri
    (fun i (name, ns, base, ratio) ->
      p
        "    {\"name\": \"%s\", \"ns_per_run\": %.1f, \"prev_ns_per_run\": \
         %.1f, \"speedup\": %.2f}%s\n"
        (json_escape name) ns base ratio
        (if i = List.length vs_prev - 1 then "" else ","))
    vs_prev;
  p "  ],\n";
  p "  \"parallel_scaling\": [\n";
  List.iteri
    (fun i (base, ns1, rungs) ->
      let rung_fields =
        String.concat ""
          (List.map
             (fun (j, ns, sp) ->
               Printf.sprintf
                 ", \"ns_j%d\": %.1f, \"speedup_j%d\": %.2f" j ns j sp)
             rungs)
      in
      p "    {\"name\": \"%s\", \"ns_j1\": %.1f%s}%s\n" (json_escape base)
        ns1 rung_fields
        (if i = List.length scaling - 1 then "" else ","))
    scaling;
  p "  ],\n";
  (* The cold/warm cache pair, with the warm speedup the acceptance
     criterion reads off directly. *)
  let num = function
    | Some x -> Printf.sprintf "%.1f" x
    | None -> "null"
  in
  let cache_cold = lookup "cache/registry-compile-100-cold" in
  let cache_warm = lookup "cache/registry-compile-100-warm" in
  p "  \"cache\": {\"cold_ns_per_run\": %s, \"warm_ns_per_run\": %s, \
     \"warm_speedup\": %s},\n"
    (num cache_cold) (num cache_warm)
    (match (cache_cold, cache_warm) with
    | Some c, Some w when w > 0.0 -> Printf.sprintf "%.2f" (c /. w)
    | _ -> "null");
  (* The snapshot/restore/resume quartet: resume_speedup is replaying
     the full stream over finishing it from the midpoint snapshot. *)
  let snap_write = lookup "session/snapshot-write" in
  let snap_restore = lookup "session/restore" in
  let resume = lookup "session/resume-feed-5k" in
  let cold = lookup "session/cold-feed-10k" in
  p "  \"session\": {\"snapshot_write_ns\": %s, \"restore_ns\": %s, \
     \"resume_feed_5k_ns\": %s, \"cold_feed_10k_ns\": %s, \
     \"resume_speedup\": %s},\n"
    (num snap_write) (num snap_restore) (num resume) (num cold)
    (match (resume, cold) with
    | Some r, Some c when r > 0.0 -> Printf.sprintf "%.2f" (c /. r)
    | _ -> "null");
  (* The ingest parse stage: the zero-copy scanner against the retained
     reference parser on the same 10k-line stream — the PR 10 acceptance
     pair (the scanner must be >= 2x the reference). *)
  let ingest_scan = lookup "ingest/scan-10k" in
  let ingest_ref = lookup "ingest/parse-ref-10k" in
  let events_per_s = function
    | Some ns when ns > 0.0 -> Printf.sprintf "%.0f" (1e9 *. 10_000.0 /. ns)
    | _ -> "null"
  in
  p "  \"ingest\": {\"scan_10k_ns\": %s, \"parse_ref_10k_ns\": %s, \
     \"parse_speedup\": %s, \"events_per_s_scan\": %s},\n"
    (num ingest_scan) (num ingest_ref)
    (match (ingest_scan, ingest_ref) with
    | Some s, Some r when s > 0.0 -> Printf.sprintf "%.2f" (r /. s)
    | _ -> "null")
    (events_per_s ingest_scan);
  (* The serving path: events/s through the connection state machine at
     1 and 4 multiplexed clients, and the latency of committing a hot
     reload on the midpoint session (identical registry = snapshot
     round-trip; 101p = keyed per-monitor carry-over). *)
  let serve1 = lookup "serve/conn-feed-10k-1conn" in
  let serve4 = lookup "serve/conn-feed-10k-4conn" in
  let reload_id = lookup "serve/reload-identical-100p" in
  let reload_co = lookup "serve/reload-carryover-101p" in
  p "  \"serve\": {\"feed_10k_1conn_ns\": %s, \"feed_10k_4conn_ns\": %s, \
     \"events_per_s_1conn\": %s, \"events_per_s_4conn\": %s, \
     \"reload_identical_ns\": %s, \"reload_carryover_ns\": %s},\n"
    (num serve1) (num serve4) (events_per_s serve1) (events_per_s serve4)
    (num reload_id) (num reload_co);
  (* The introspection layer: labeled-vs-flat recording (the child
     handle is supposed to be free), the per-child interning lookup,
     what a scrape renders, and the full obs-on serving overhead as a
     ratio over the dark 1-conn feed. *)
  let flat1k = lookup "obs/counter-incr-enabled-x1k" in
  let labeled1k = lookup "obs/labeled-incr-enabled-x1k" in
  let child_lookup = lookup "obs/vec-child-lookup" in
  let status_render = lookup "obs/status-render" in
  let monitors_render = lookup "obs/monitors-render" in
  let serve1_obs = lookup "serve/conn-feed-10k-1conn-obs" in
  let ratio a b =
    match (a, b) with
    | Some x, Some y when y > 0.0 -> Printf.sprintf "%.3f" (x /. y)
    | _ -> "null"
  in
  p "  \"obs_labels\": {\"flat_incr_x1k_ns\": %s, \
     \"labeled_incr_x1k_ns\": %s, \"labeled_over_flat\": %s, \
     \"child_lookup_ns\": %s, \"status_render_ns\": %s, \
     \"monitors_render_ns\": %s, \"conn_feed_10k_obs_ns\": %s, \
     \"obs_on_over_dark\": %s},\n"
    (num flat1k) (num labeled1k)
    (ratio labeled1k flat1k)
    (num child_lookup) (num status_render) (num monitors_render)
    (num serve1_obs)
    (ratio serve1_obs serve1);
  let spans = span_summaries () in
  p "  \"span_summaries\": [\n";
  List.iteri
    (fun i (name, count, total_us) ->
      p "    {\"name\": \"%s\", \"count\": %d, \"total_us\": %.1f}%s\n"
        (json_escape name) count total_us
        (if i = List.length spans - 1 then "" else ","))
    spans;
  p "  ]\n";
  p "}\n";
  close_out oc;
  Format.printf
    "wrote %s (%d results, %d counters, %d speedups vs seed, %d vs %s, \
     %d scaling curves, %d span groups)@."
    path (List.length estimates) (List.length counters)
    (List.length speedups) (List.length vs_prev)
    (match baseline with Some (p, _) -> p | None -> "none")
    (List.length scaling) (List.length spans)

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  match args with
  | [] ->
      List.iter (fun (_, f) -> f ()) artifacts;
      run_benchmarks ()
  | [ "bench" ] -> run_benchmarks ()
  | [ "bench"; "json" ] -> run_benchmarks_json ~path:"BENCH_PR10.json"
  | [ "bench"; "json"; path ] -> run_benchmarks_json ~path
  | names ->
      List.iter
        (fun name ->
          match List.assoc_opt name artifacts with
          | Some f -> f ()
          | None ->
              Format.eprintf
                "unknown artifact %s (available: %s, bench, bench json)@."
                name
                (String.concat ", " (List.map fst artifacts));
              exit 1)
        names
