(* The observability kernel: bucket arithmetic, span nesting, the
   disabled-mode no-op contract, and the pin that turning telemetry on
   cannot change what the decision pipeline or the engine computes. *)

module Obs = Sl_obs.Obs
module Buchi = Sl_buchi.Buchi
module Lexamples = Sl_ltl.Examples
module Registry = Sl_runtime.Registry
module Engine = Sl_runtime.Engine

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

(* Every test leaves the kernel dark and on the wall clock, whatever
   happened inside. *)
let fresh f () =
  Obs.reset ();
  Fun.protect
    ~finally:(fun () ->
      Obs.disable ();
      Obs.Clock.reset_source ();
      Obs.reset ())
    f

(* --- Metrics --- *)

let test_histogram_buckets () =
  Obs.enable ();
  let h = Obs.Metrics.histogram "test_hist_boundaries" in
  (* Log-2 buckets: 0 -> le"0"; 1 -> le"1"; 2,3 -> le"3"; 4 -> le"7". *)
  List.iter (Obs.Metrics.observe h) [ 0; 1; 2; 3; 4 ];
  check_int "count" 5 (Obs.Metrics.histogram_count h);
  check_int "sum" 10 (Obs.Metrics.histogram_sum h);
  Alcotest.(check (list (pair (option int) int)))
    "cumulative buckets"
    [ (Some 0, 1); (Some 1, 2); (Some 3, 4); (Some 7, 5); (None, 5) ]
    (Obs.Metrics.histogram_buckets h);
  (* Power-of-two edges land in the bucket they open, not the one they
     close: 8 is the first sample of [8, 15]. *)
  Obs.Metrics.observe h 8;
  check "8 lands in le=15" true
    (List.mem (Some 15, 6) (Obs.Metrics.histogram_buckets h));
  (* Non-positive samples all fall into bucket 0 and the sum is signed. *)
  Obs.Metrics.observe h (-3);
  check "negative lands in le=0" true
    (List.mem (Some 0, 2) (Obs.Metrics.histogram_buckets h));
  check_int "signed sum" 15 (Obs.Metrics.histogram_sum h)

let test_metrics_counters_gauges () =
  Obs.enable ();
  let c = Obs.Metrics.counter "test_counter_total" in
  let g = Obs.Metrics.gauge "test_gauge" in
  Obs.Metrics.incr c;
  Obs.Metrics.add c 4;
  Obs.Metrics.set g 7;
  Obs.Metrics.set g 3;
  check_int "counter accumulates" 5 (Obs.Metrics.counter_value c);
  check_int "gauge keeps last" 3 (Obs.Metrics.gauge_value g);
  (* Registration is idempotent by name: the second handle is the same
     cell... *)
  let c' = Obs.Metrics.counter "test_counter_total" in
  Obs.Metrics.incr c';
  check_int "same cell through both handles" 6 (Obs.Metrics.counter_value c);
  check "lookup by name" true (Obs.Metrics.value "test_counter_total" = Some 6);
  (* ...but re-registering under another kind is a hard error. *)
  check "kind mismatch rejected" true
    (match Obs.Metrics.gauge "test_counter_total" with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_prometheus_exposition () =
  Obs.enable ();
  let c = Obs.Metrics.counter "test_expo_total" in
  let h = Obs.Metrics.histogram "test_expo_hist" in
  Obs.Metrics.add c 3;
  Obs.Metrics.observe h 2;
  let text = Obs.Metrics.to_prometheus () in
  let has needle =
    let n = String.length needle and m = String.length text in
    let rec scan i =
      i + n <= m && (String.sub text i n = needle || scan (i + 1))
    in
    scan 0
  in
  List.iter
    (fun line -> check ("exposition has " ^ line) true (has line))
    [ "# TYPE test_expo_total counter"; "# HELP test_expo_total";
      "test_expo_total 3"; "# TYPE test_expo_hist histogram";
      "test_expo_hist_bucket{le=\"3\"} 1";
      "test_expo_hist_bucket{le=\"+Inf\"} 1"; "test_expo_hist_sum 2";
      "test_expo_hist_count 1" ]

(* --- Labeled families --- *)

let has_sub text needle =
  let n = String.length needle and m = String.length text in
  let rec scan i = i + n <= m && (String.sub text i n = needle || scan (i + 1)) in
  scan 0

let test_labeled_families () =
  Obs.enable ();
  let v = Obs.Metrics.counter_vec "test_vec_total" ~labels:[ "monitor" ] in
  let a = Obs.Metrics.counter_child v [ "m0" ] in
  let b = Obs.Metrics.counter_child v [ "m1" ] in
  Obs.Metrics.add a 3;
  Obs.Metrics.incr b;
  (* Children are interned by label values: a second lookup is the same
     series, and recording through either handle hits the same cell. *)
  let a' = Obs.Metrics.counter_child v [ "m0" ] in
  Obs.Metrics.incr a';
  check_int "interned child shares the cell" 4 (Obs.Metrics.counter_value a);
  check_int "sibling isolated" 1 (Obs.Metrics.counter_value b);
  (* Arity and registration clashes are hard errors. *)
  check "value-count mismatch rejected" true
    (match Obs.Metrics.counter_child v [ "m0"; "extra" ] with
    | exception Invalid_argument _ -> true
    | _ -> false);
  check "label-list clash rejected" true
    (match Obs.Metrics.counter_vec "test_vec_total" ~labels:[ "other" ] with
    | exception Invalid_argument _ -> true
    | _ -> false);
  check "empty label list rejected" true
    (match Obs.Metrics.counter_vec "test_vec_empty_total" ~labels:[] with
    | exception Invalid_argument _ -> true
    | _ -> false);
  (* One family header, one sample line per child, labels rendered. *)
  let text = Obs.Metrics.to_prometheus () in
  List.iter
    (fun line -> check ("vec exposition has " ^ line) true (has_sub text line))
    [ "# TYPE test_vec_total counter"; "test_vec_total{monitor=\"m0\"} 4";
      "test_vec_total{monitor=\"m1\"} 1" ];
  (* Labeled histograms put [le] after the family labels. *)
  let hv = Obs.Metrics.histogram_vec "test_vec_hist" ~labels:[ "shard" ] in
  let h0 = Obs.Metrics.histogram_child hv [ "0" ] in
  Obs.Metrics.observe h0 2;
  let text = Obs.Metrics.to_prometheus () in
  List.iter
    (fun line -> check ("vec histogram has " ^ line) true (has_sub text line))
    [ "test_vec_hist_bucket{shard=\"0\",le=\"3\"} 1";
      "test_vec_hist_bucket{shard=\"0\",le=\"+Inf\"} 1";
      "test_vec_hist_sum{shard=\"0\"} 2"; "test_vec_hist_count{shard=\"0\"} 1" ]

let test_exposition_escaping () =
  Obs.enable ();
  let v =
    Obs.Metrics.counter_vec "test_escape_total"
      ~help:"line one\nline two \\ backslash" ~labels:[ "path" ]
  in
  let c = Obs.Metrics.counter_child v [ "a\\b\"c\nd" ] in
  Obs.Metrics.incr c;
  let text = Obs.Metrics.to_prometheus () in
  (* Per the text-format spec: labels escape backslash, double quote and
     newline; help escapes backslash and newline. *)
  check "label value escaped" true
    (has_sub text "test_escape_total{path=\"a\\\\b\\\"c\\nd\"} 1");
  check "help escaped" true
    (has_sub text
       "# HELP test_escape_total line one\\nline two \\\\ backslash")

let test_always_on_counters () =
  (* spans_dropped_total-style counters record even while dark, so the
     loss of telemetry is itself observable. *)
  Obs.disable ();
  let c = Obs.Metrics.counter "test_always_total" in
  Obs.Metrics.incr_always c;
  Obs.Metrics.add_always c 2;
  check_int "always-on records while dark" 3 (Obs.Metrics.counter_value c);
  Obs.Metrics.incr c;
  check_int "plain incr still gated" 3 (Obs.Metrics.counter_value c)

(* --- Spans --- *)

let test_span_nesting_and_ordering () =
  (* Deterministic microsecond-resolution clock under test control. *)
  let now = ref 0. in
  let at us f =
    now := us *. 1e-6;
    f ()
  in
  Obs.Clock.set_source (fun () -> !now);
  (* The seconds->microseconds round trip is not exact in floating
     point (15e-6 *. 1e6 <> 15.), so timing checks use a tolerance. *)
  let near a b = Float.abs (a -. b) < 1e-6 in
  Obs.enable ();
  let outer = at 0. (fun () -> Obs.Span.enter "outer") in
  let inner = at 5. (fun () -> Obs.Span.enter "inner") in
  Obs.Span.attr inner "k" 42;
  at 10. (fun () -> Obs.Span.exit inner);
  at 15. (fun () -> Obs.Span.exit outer);
  (match Obs.Span.events () with
  | [ i; o ] ->
      check_str "inner completes first" "inner" i.Obs.Span.name;
      check_int "inner depth" 1 i.Obs.Span.depth;
      check "inner timing" true
        (near i.Obs.Span.ts_us 5. && near i.Obs.Span.dur_us 5.);
      check "inner attrs" true (i.Obs.Span.attrs = [ ("k", 42) ]);
      check_str "outer completes second" "outer" o.Obs.Span.name;
      check_int "outer depth" 0 o.Obs.Span.depth;
      check "outer timing" true
        (near o.Obs.Span.ts_us 0. && near o.Obs.Span.dur_us 15.)
  | evs -> Alcotest.failf "expected 2 events, got %d" (List.length evs));
  (* Exiting a parent closes open children innermost-first, at one
     timestamp; the children's stale tokens become no-ops. *)
  Obs.reset ();
  let a = at 20. (fun () -> Obs.Span.enter "a") in
  let b = at 21. (fun () -> Obs.Span.enter "b") in
  at 30. (fun () -> Obs.Span.exit a);
  at 40. (fun () -> Obs.Span.exit b);
  (match Obs.Span.events () with
  | [ eb; ea ] ->
      check_str "child closed first" "b" eb.Obs.Span.name;
      check "child closed at parent's exit" true (near eb.Obs.Span.dur_us 9.);
      check "parent duration" true (near ea.Obs.Span.dur_us 10.);
      check_int "stale exit recorded nothing" 2
        (List.length (Obs.Span.events ()))
  | evs -> Alcotest.failf "expected 2 events, got %d" (List.length evs))

let test_span_ring_and_aggregates () =
  Obs.Clock.set_source (fun () -> 0.);
  Obs.enable ();
  let cap0 = Obs.Span.ring_capacity () in
  Obs.Span.set_ring_capacity 4;
  for _ = 1 to 10 do
    Obs.Span.exit (Obs.Span.enter "ringed")
  done;
  check_int "ring keeps most recent" 4 (List.length (Obs.Span.events ()));
  check_int "older spans counted as dropped" 6 (Obs.Span.dropped ());
  (* Aggregates see every completed span, ring overflow included. *)
  (match Obs.Span.aggregates () with
  | [ ("ringed", count, _) ] -> check_int "aggregate count" 10 count
  | _ -> Alcotest.fail "expected a single aggregate");
  (* JSONL export: one object per line, one line per buffered event. *)
  let jsonl = Obs.Span.to_jsonl () in
  let lines =
    List.filter (fun l -> String.trim l <> "") (String.split_on_char '\n' jsonl)
  in
  check_int "one JSONL line per buffered event" 4 (List.length lines);
  List.iter
    (fun l ->
      check "line is a trace event" true
        (String.length l >= 2
        && l.[0] = '{'
        && l.[String.length l - 1] = '}'))
    lines;
  Obs.Span.set_ring_capacity cap0

(* --- Disabled-mode no-op contract --- *)

let test_disabled_noop () =
  check "kernel starts dark" false (Obs.is_enabled ());
  let c = Obs.Metrics.counter "test_dark_total" in
  let h = Obs.Metrics.histogram "test_dark_hist" in
  Obs.Metrics.incr c;
  Obs.Metrics.add c 10;
  Obs.Metrics.observe h 5;
  check_int "counter untouched" 0 (Obs.Metrics.counter_value c);
  check_int "histogram untouched" 0 (Obs.Metrics.histogram_count h);
  let tok = Obs.Span.enter "dark" in
  check "enter returns the inert token" true (tok = Obs.Span.none);
  Obs.Span.attr tok "k" 1;
  Obs.Span.exit tok;
  check_int "no events recorded" 0 (List.length (Obs.Span.events ()));
  (* Registration still works while dark: the handle records normally
     once the kernel is enabled. *)
  Obs.enable ();
  Obs.Metrics.incr c;
  check_int "handle registered while dark is live" 1
    (Obs.Metrics.counter_value c)

let test_disabled_identical_artifacts () =
  (* The Section 2.3 table rendered with the kernel dark and with it
     collecting must be byte-identical: telemetry is write-only. *)
  let render () =
    Format.asprintf "%a" (fun fmt t -> Lexamples.pp_table fmt t)
      (Lexamples.table ())
  in
  Obs.disable ();
  let dark = render () in
  Obs.enable ();
  let lit = render () in
  Obs.disable ();
  check_str "rem table identical dark vs collecting" dark lit

(* --- Registry stats --- *)

let test_registry_stats () =
  let r = Registry.create ~alphabet:2 () in
  (* p1 and p3 have language-equal safety parts (lcl p3 = p1 is the
     paper's example), so they hash-cons to one monitor; p4 is pure
     liveness and compiles to its own (vacuous) monitor. *)
  ignore (Registry.add_formula r Lexamples.p1);
  ignore (Registry.add_formula r Lexamples.p3);
  ignore (Registry.add_formula r Lexamples.p4);
  let s = Registry.stats r in
  check_int "props" 3 s.Registry.props;
  check_int "distinct monitors" 2 s.Registry.distinct_monitors;
  check_int "hash-cons hits" 1 s.Registry.hashcons_hits;
  check_int "stats agree with nprops" (Registry.nprops r) s.Registry.props;
  check_int "stats agree with nmonitors" (Registry.nmonitors r)
    s.Registry.distinct_monitors;
  check_int "stats agree with hits" (Registry.hits r) s.Registry.hashcons_hits

(* --- Telemetry cannot change results --- *)

(* Compile a random automaton plus two formulas (p1/p3 hash-cons onto
   one monitor and drive the instrumented translate/determinize/digraph
   paths), stream 200 random events, and snapshot everything observable:
   registry stats, every per-property verdict, retirement counters. *)
let run_pipeline ~enabled seed =
  if enabled then Obs.enable () else Obs.disable ();
  Fun.protect
    ~finally:(fun () -> Obs.disable ())
    (fun () ->
      let b =
        Buchi.random ~seed ~alphabet:2 ~nstates:(3 + (seed mod 6))
          ~density:0.2 ~accepting_fraction:0.4 ()
      in
      let r = Registry.create ~alphabet:2 () in
      ignore (Registry.add_buchi r ~name:"b" b);
      ignore (Registry.add_formula r Lexamples.p1);
      ignore (Registry.add_formula r Lexamples.p3);
      let eng = Engine.create ~monitors:(Registry.monitors r) () in
      let st = Random.State.make [| seed + 1 |] in
      for _ = 1 to 200 do
        Engine.step eng ~trace:0 ~symbol:(Random.State.int st 2)
      done;
      let verdicts =
        List.map
          (fun p ->
            Engine.verdict eng ~trace:0 ~monitor:(Registry.monitor_of_prop r p))
          [ 0; 1; 2 ]
      in
      (Registry.stats r, verdicts, Engine.tripped eng,
       Engine.retired_admissible eng))

let prop_obs_does_not_change_results =
  QCheck.Test.make
    ~name:"enabling metrics changes no verdict or registry stat" ~count:40
    QCheck.(int_range 0 10_000)
    (fun seed ->
      Obs.reset ();
      let dark = run_pipeline ~enabled:false seed in
      let lit = run_pipeline ~enabled:true seed in
      Obs.reset ();
      dark = lit)

let tests =
  [ Alcotest.test_case "histogram bucket boundaries" `Quick
      (fresh test_histogram_buckets);
    Alcotest.test_case "counters and gauges" `Quick
      (fresh test_metrics_counters_gauges);
    Alcotest.test_case "prometheus exposition" `Quick
      (fresh test_prometheus_exposition);
    Alcotest.test_case "labeled families" `Quick (fresh test_labeled_families);
    Alcotest.test_case "exposition escaping" `Quick
      (fresh test_exposition_escaping);
    Alcotest.test_case "always-on counters" `Quick
      (fresh test_always_on_counters);
    Alcotest.test_case "span nesting and ordering" `Quick
      (fresh test_span_nesting_and_ordering);
    Alcotest.test_case "span ring, aggregates, JSONL" `Quick
      (fresh test_span_ring_and_aggregates);
    Alcotest.test_case "disabled kernel is a no-op" `Quick
      (fresh test_disabled_noop);
    Alcotest.test_case "disabled-mode artifacts identical" `Quick
      (fresh test_disabled_identical_artifacts);
    Alcotest.test_case "registry stats" `Quick (fresh test_registry_stats);
    QCheck_alcotest.to_alcotest prop_obs_does_not_change_results ]
