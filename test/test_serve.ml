(* The serving layer: the daemon's NDJSON stream must agree with the
   offline report, under any framing and any parallelism.

   The central pin: drive a connection's state machine with the same
   event lines the offline pipeline reads — at every byte-split of the
   input and at jobs 1 and 4 (threshold 1, so the sharded parallel feed
   really runs) — and the set of (trace, prop, verdict, position)
   tuples served (incremental trip/retire records plus the EOF dump)
   equals the offline verdict table exactly. The adversarial half:
   garbage bytes, oversized lines and half-closed streams produce
   structured error records and never a raise, and a back-pressured
   connection stops asking for reads instead of growing its queue. *)

module Formula = Sl_ltl.Formula
module Packed_dfa = Sl_runtime.Packed_dfa
module Registry = Sl_runtime.Registry
module Engine = Sl_runtime.Engine
module Ingest = Sl_runtime.Ingest
module Session = Sl_runtime.Session
module Records = Sl_serve.Records
module Daemon = Sl_serve.Daemon
module Conn = Sl_serve.Conn
module Reload = Sl_serve.Reload

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

let props_src =
  [ "G a"; "F !a"; "a & F !a"; "G (a -> F !a)"; "!a"; "G (a -> X !a)" ]

let mk_registry ?(props = props_src) () =
  let r = Registry.create ~alphabet:2 () in
  ignore
    (Registry.compile_all ~jobs:1 r
       (List.map (fun s -> (Some s, Formula.parse_exn s)) props));
  r

let mk_daemon ?props ?(jobs = 1) () =
  let registry = mk_registry ?props () in
  Daemon.make (Session.create ~jobs ~threshold:1 ~registry ())

(* {2 A minimal NDJSON field scraper}

   The records under test are flat objects with known keys and no
   escapes in the values the tests generate, so substring extraction is
   an honest parser for them. *)

let find_sub hay pat =
  let n = String.length hay and m = String.length pat in
  let rec go i =
    if i + m > n then None
    else if String.sub hay i m = pat then Some i
    else go (i + 1)
  in
  go 0

let get_str line key =
  let pat = Printf.sprintf "\"%s\": \"" key in
  match find_sub line pat with
  | None -> None
  | Some i ->
      let start = i + String.length pat in
      let j = String.index_from line start '"' in
      Some (String.sub line start (j - start))

let get_int line key =
  let pat = Printf.sprintf "\"%s\": " key in
  match find_sub line pat with
  | None -> None
  | Some i ->
      let start = i + String.length pat in
      let j = ref start in
      while
        !j < String.length line
        && (match line.[!j] with '0' .. '9' | '-' -> true | _ -> false)
      do
        incr j
      done;
      if !j = start then None
      else Some (int_of_string (String.sub line start (!j - start)))

let lines_of s = String.split_on_char '\n' s |> List.filter (fun l -> l <> "")
let records_of_type ty out =
  List.filter (fun l -> get_str l "type" = Some ty) (lines_of out)

module SS = Set.Make (String)

(* Normalized verdict tuple of a served record line. *)
let tuple_of_line l =
  Printf.sprintf "%s|%s|%s|%d"
    (Option.get (get_str l "trace"))
    (Option.get (get_str l "prop"))
    (Option.get (get_str l "verdict"))
    (Option.value ~default:(-1) (get_int l "position"))

let served_tuples out =
  List.fold_left
    (fun acc l -> SS.add (tuple_of_line l) acc)
    SS.empty
    (records_of_type "verdict" out)

(* The offline truth: a fresh engine over the same registry source fed
   the same events, every (trace, prop) verdict rendered in the same
   normal form. *)
let offline_tuples ?props ~jobs events =
  let registry = mk_registry ?props () in
  let session = Session.create ~jobs ~threshold:1 ~registry () in
  let ingest = Session.ingest session in
  let engine = Session.engine session in
  List.iter
    (fun (name, sym) ->
      Engine.step engine ~trace:(Ingest.intern ingest name) ~symbol:sym)
    events;
  let acc = ref SS.empty in
  for id = 0 to Engine.ntraces engine - 1 do
    let tname = Ingest.name ingest id in
    List.iter
      (fun (p : Registry.prop) ->
        let tup =
          match Engine.verdict engine ~trace:id ~monitor:p.monitor with
          | Engine.Vacuous -> Printf.sprintf "%s|%s|vacuous|-1" tname p.name
          | Engine.Admissible ->
              Printf.sprintf "%s|%s|admissible|-1" tname p.name
          | Engine.Violation { position } ->
              Printf.sprintf "%s|%s|violation|%d" tname p.name position
        in
        acc := SS.add tup !acc)
      (Registry.props registry)
  done;
  !acc

let render_lines events =
  String.concat ""
    (List.map (fun (t, s) -> Printf.sprintf "%s %d\n" t s) events)

(* Feed [bytes] to a fresh connection cut at [splits] (ascending byte
   offsets), half-close, and return everything it wrote. *)
let serve_split ?props ?(jobs = 1) ~splits bytes =
  let daemon = mk_daemon ?props ~jobs () in
  let conn = Conn.create daemon in
  let n = String.length bytes in
  let cuts = List.sort_uniq compare (List.filter (fun c -> c > 0 && c < n) splits) in
  let rec feed off = function
    | [] -> if off < n then Conn.on_bytes conn (String.sub bytes off (n - off))
    | c :: rest ->
        Conn.on_bytes conn (String.sub bytes off (c - off));
        feed c rest
  in
  feed 0 cuts;
  Conn.on_eof conn;
  (conn, Conn.drain_output conn)

(* {2 Equivalence with the offline report} *)

let test_served_equals_offline () =
  let events =
    [ ("t1", 0); ("t1", 0); ("t2", 1); ("t1", 1); ("t2", 0); ("t2", 1);
      ("t1", 0) ]
  in
  let bytes = render_lines events in
  List.iter
    (fun jobs ->
      let offline = offline_tuples ~jobs events in
      (* every single-byte framing of the stream *)
      let splits = List.init (String.length bytes) (fun i -> i) in
      let _, out = serve_split ~jobs ~splits bytes in
      check "byte-split serve = offline" true (SS.equal offline (served_tuples out));
      let _, out2 = serve_split ~jobs ~splits:[] bytes in
      check "one-shot serve = offline" true
        (SS.equal offline (served_tuples out2)))
    [ 1; 4 ]

let test_summary_counters () =
  let events = [ ("a", 0); ("b", 1); ("a", 1); ("b", 0) ] in
  let _, out = serve_split ~splits:[ 3; 9 ] (render_lines events) in
  match records_of_type "summary" out with
  | [ s ] ->
      check_int "traces" 2 (Option.get (get_int s "traces"));
      check_int "events" 4 (Option.get (get_int s "events"));
      check_int "conn_events" 4 (Option.get (get_int s "conn_events"));
      check_int "conn_errors" 0 (Option.get (get_int s "conn_errors"))
  | l -> Alcotest.failf "expected one summary, got %d" (List.length l)

let test_hello_first () =
  let _, out = serve_split ~splits:[] "t 0\n" in
  match lines_of out with
  | first :: _ -> check_str "hello opens the stream" "hello"
      (Option.get (get_str first "type"))
  | [] -> Alcotest.fail "no output"

(* Pre-tripped properties (the empty property: safety part rejects the
   empty prefix) must be announced for every trace at position 0. *)
let test_pretripped_announced () =
  let props = [ "a & !a"; "G a" ] in
  let _, out =
    serve_split ~props ~splits:[] (render_lines [ ("x", 1); ("y", 0) ])
  in
  let viols =
    List.filter
      (fun l ->
        get_str l "prop" = Some "a & !a"
        && get_int l "position" = Some 0
        && get_str l "cause" = Some "pretripped")
      (records_of_type "verdict" out)
  in
  check_int "one pretripped announcement per trace" 2 (List.length viols);
  let offline = offline_tuples ~props ~jobs:1 [ ("x", 1); ("y", 0) ] in
  check "still equal to offline" true (SS.equal offline (served_tuples out))

(* {2 QCheck: equivalence at random streams, random framings, jobs 1/4} *)

let qcheck_served_equals_offline =
  let gen =
    QCheck.Gen.(
      let event = pair (oneofl [ "a"; "b"; "c"; "d" ]) (int_bound 1) in
      triple (list_size (int_bound 60) event)
        (list_size (int_bound 8) (int_bound 400))
        (oneofl [ 1; 4 ]))
  in
  QCheck.Test.make ~count:60 ~name:"served NDJSON = offline report"
    (QCheck.make gen) (fun (events, rawsplits, jobs) ->
      let bytes = render_lines events in
      let splits =
        List.filter (fun c -> c < String.length bytes) rawsplits
      in
      let offline = offline_tuples ~jobs events in
      let _, out = serve_split ~jobs ~splits bytes in
      SS.equal offline (served_tuples out))

(* {2 Hostile clients} *)

let test_garbage_bytes () =
  let daemon = mk_daemon () in
  let conn = Conn.create daemon in
  Conn.on_bytes conn "\x00\xff\x7fgarbage\n";
  Conn.on_bytes conn "t1 0\n";
  Conn.on_bytes conn "t1 not-a-symbol\nt1 7\nt1\n";
  Conn.on_bytes conn "t1 1\n";
  Conn.on_eof conn;
  let out = Conn.drain_output conn in
  let errors = records_of_type "error" out in
  check_int "four error records" 4 (List.length errors);
  check "error lines are 1,3,4,5" true
    (List.map (fun l -> Option.get (get_int l "line")) errors = [ 1; 3; 4; 5 ]);
  (* the valid events still monitored *)
  check_int "valid events" 2 (Conn.events conn);
  check "offline equivalence survives the garbage" true
    (SS.equal
       (offline_tuples ~jobs:1 [ ("t1", 0); ("t1", 1) ])
       (served_tuples out))

let test_oversized_line () =
  let daemon = mk_daemon () in
  let conn = Conn.create ~max_line:32 daemon in
  Conn.on_bytes conn ("x " ^ String.make 100 '0');
  Conn.on_bytes conn (String.make 50 '1');
  Conn.on_bytes conn "\nt2 1\n";
  Conn.on_eof conn;
  let out = Conn.drain_output conn in
  let errors = records_of_type "error" out in
  check_int "one error for the oversized line" 1 (List.length errors);
  check "reason names the cap" true
    (match errors with
    | [ e ] -> find_sub (Option.get (get_str e "reason")) "exceeds 32" <> None
    | _ -> false);
  check_int "the next line still monitors" 1 (Conn.events conn);
  check "t2 served" true
    (SS.equal (offline_tuples ~jobs:1 [ ("t2", 1) ]) (served_tuples out))

let test_half_close_dump () =
  (* a client that writes nothing and half-closes still gets hello,
     no verdicts, and a summary *)
  let daemon = mk_daemon () in
  let conn = Conn.create daemon in
  Conn.on_eof conn;
  let out = Conn.drain_output conn in
  check_int "hello" 1 (List.length (records_of_type "hello" out));
  check_int "no verdicts" 0 (List.length (records_of_type "verdict" out));
  check_int "summary" 1 (List.length (records_of_type "summary" out));
  check "drained conn closes" true (Conn.should_close conn)

let test_bytes_after_eof_ignored () =
  let daemon = mk_daemon () in
  let conn = Conn.create daemon in
  Conn.on_bytes conn "t 0\n";
  Conn.on_eof conn;
  let before = Conn.events conn in
  Conn.on_bytes conn "t 1\nt 1\n";
  check_int "events frozen after eof" before (Conn.events conn)

let test_http_metrics () =
  let daemon = mk_daemon () in
  let conn = Conn.create daemon in
  Conn.on_bytes conn "GET /metrics HTTP/1.0\r\n\r\n";
  let out = Conn.drain_output conn in
  check "status line first (no hello)" true
    (String.length out > 15 && String.sub out 0 15 = "HTTP/1.0 200 OK");
  check "prometheus content type" true
    (find_sub out "Content-Type: text/plain" <> None);
  check "closes after response" true (Conn.should_close conn);
  let conn2 = Conn.create daemon in
  Conn.on_bytes conn2 "GET /nope HTTP/1.0\r\n";
  let out2 = Conn.drain_output conn2 in
  check "404 elsewhere" true (String.sub out2 0 12 = "HTTP/1.0 404")

let test_backpressure () =
  let daemon = mk_daemon () in
  let conn = Conn.create ~hwm:256 daemon in
  check "fresh conn reads" true (Conn.wants_read conn);
  (* burst enough retirements to cross the mark in one read *)
  let events =
    List.init 40 (fun i -> (Printf.sprintf "t%d" i, 1)) |> render_lines
  in
  Conn.on_bytes conn events;
  check "over hwm: stop reading" true (not (Conn.wants_read conn));
  check "queue is bounded-ish, not runaway" true
    (Conn.pending_output conn < 256 + 65536);
  let _ = Conn.drain_output conn in
  check "drained: reads again" true (Conn.wants_read conn)

(* {2 Hot reload} *)

let test_reload_identical () =
  let registry = mk_registry () in
  let session = Session.create ~jobs:1 ~threshold:1 ~registry () in
  let daemon = Daemon.make session in
  let conn = Conn.create daemon in
  Conn.on_bytes conn "t1 0\nt1 0\n";
  (match
     Reload.carry_over ~old_session:(Daemon.session daemon)
       ~registry:(mk_registry ()) ()
   with
  | Error e -> Alcotest.failf "identical reload refused: %s" e
  | Ok (s, carried) ->
      check_int "all monitors carried" (Registry.nmonitors registry) carried;
      Daemon.swap_session daemon s);
  (* the in-flight trace trips at position 3 across the swap *)
  Conn.on_bytes conn "t1 1\n";
  Conn.on_eof conn;
  let out = Conn.drain_output conn in
  check "verdicts as if never reloaded" true
    (SS.equal
       (offline_tuples ~jobs:1 [ ("t1", 0); ("t1", 0); ("t1", 1) ])
       (served_tuples out));
  check "G a tripped at 3 across the reload" true
    (SS.mem "t1|G a|violation|3" (served_tuples out))

let test_reload_carry_over () =
  (* old registry [G a]; new adds [!a] and drops nothing: the G a
     monitor state must carry, !a starts fresh at the reload point *)
  let old_registry = mk_registry ~props:[ "G a" ] () in
  let session = Session.create ~jobs:1 ~threshold:1 ~registry:old_registry () in
  let daemon = Daemon.make session in
  let conn = Conn.create daemon in
  Conn.on_bytes conn "x 0\n";
  (match
     Reload.carry_over ~old_session:(Daemon.session daemon)
       ~registry:(mk_registry ~props:[ "G a"; "!a" ] ())
       ()
   with
  | Error e -> Alcotest.failf "compatible reload refused: %s" e
  | Ok (s, carried) ->
      check_int "G a carried" 1 carried;
      Daemon.swap_session daemon s);
  Conn.on_bytes conn "x 1\n";
  Conn.on_eof conn;
  let tuples = served_tuples (Conn.drain_output conn) in
  check "carried G a trips at its true position 2" true
    (SS.mem "x|G a|violation|2" tuples);
  (* the fresh !a monitor saw only the post-reload suffix, whose first
     event is !a: admissible forever *)
  check "fresh prop judges only the suffix" true
    (SS.mem "x|!a|admissible|-1" tuples);
  let eng = Daemon.engine daemon in
  check_int "no live monitors left" 0 (Engine.live eng);
  check_int "one trip counted" 1 (Engine.tripped eng);
  check_int "one admissible retirement counted" 1
    (Engine.retired_admissible eng)

let test_reload_alphabet_refused () =
  let registry = mk_registry () in
  let session = Session.create ~jobs:1 ~threshold:1 ~registry () in
  let wide = Registry.create ~alphabet:3 () in
  ignore (Registry.add_formula wide (Formula.parse_exn "G a"));
  match Reload.carry_over ~old_session:session ~registry:wide () with
  | Ok _ -> Alcotest.fail "alphabet change must refuse"
  | Error e -> check "refusal names the alphabet" true
      (find_sub e "alphabet" <> None)

let test_reload_from_props_file () =
  let dir = Filename.temp_file "slc-serve-test" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o700;
  let props = Filename.concat dir "props.txt" in
  let write s =
    let oc = open_out props in
    output_string oc s;
    close_out oc
  in
  write "G a\nF !a\n";
  let registry = Registry.create ~alphabet:2 () in
  let ic = open_in props in
  ignore (Registry.load_channel registry ~path:props ic);
  close_in ic;
  let session = Session.create ~jobs:1 ~threshold:1 ~registry () in
  let daemon = Daemon.make session in
  let conn = Conn.create daemon in
  Conn.on_bytes conn "t 0\n";
  write "G a\n!a\nnot a formula ((\n";
  (match
     Reload.from_props_file ~old_session:(Daemon.session daemon)
       ~props_file:props ()
   with
  | Error e -> Alcotest.failf "reload failed: %s" e
  | Ok (s, carried, errs) ->
      check_int "G a carried" 1 carried;
      check_int "the bad line reported, not fatal" 1 (List.length errs);
      Daemon.swap_session daemon s);
  Conn.on_bytes conn "t 1\n";
  Conn.on_eof conn;
  let tuples = served_tuples (Conn.drain_output conn) in
  check "carried monitor remembers the prefix" true
    (SS.mem "t|G a|violation|2" tuples);
  write "";
  (match
     Reload.from_props_file ~old_session:(Daemon.session daemon)
       ~props_file:props ()
   with
  | Ok _ -> Alcotest.fail "empty props file must refuse"
  | Error e -> check "refusal mentions the file" true
      (find_sub e "no well-formed" <> None));
  Sys.remove props;
  Sys.rmdir dir

(* Reload mid-stream at every split point: equivalence with the
   never-reloaded run must hold wherever the SIGHUP lands. *)
let test_reload_at_every_chunk () =
  let events =
    [ ("t1", 0); ("t2", 1); ("t1", 0); ("t2", 0); ("t1", 1); ("t2", 1) ]
  in
  let offline = offline_tuples ~jobs:1 events in
  let n = List.length events in
  for k = 0 to n do
    let registry = mk_registry () in
    let daemon = Daemon.make (Session.create ~jobs:1 ~threshold:1 ~registry ()) in
    let conn = Conn.create daemon in
    let before, after =
      (List.filteri (fun i _ -> i < k) events,
       List.filteri (fun i _ -> i >= k) events)
    in
    Conn.on_bytes conn (render_lines before);
    (match
       Reload.carry_over ~old_session:(Daemon.session daemon)
         ~registry:(mk_registry ()) ()
     with
    | Ok (s, _) -> Daemon.swap_session daemon s
    | Error e -> Alcotest.failf "reload at %d refused: %s" k e);
    Conn.on_bytes conn (render_lines after);
    Conn.on_eof conn;
    check
      (Printf.sprintf "reload after %d events = uninterrupted" k)
      true
      (SS.equal offline (served_tuples (Conn.drain_output conn)))
  done

(* {2 Introspection: /status, /monitors, /traces, /healthz} *)

module Introspect = Sl_serve.Introspect
module Jsonv = Sl_serve.Jsonv
module Obs = Sl_obs.Obs

let parse_json body =
  match Jsonv.parse body with
  | Ok v -> v
  | Error e -> Alcotest.failf "invalid JSON (%s): %s" e body

let jmem k v = Option.get (Jsonv.member k v)
let jint k v = Option.get (Jsonv.int_ (jmem k v))
let jstr k v = Option.get (Jsonv.str (jmem k v))
let jbool k v = Option.get (Jsonv.bool_ (jmem k v))
let jarr k v = Option.get (Jsonv.arr (jmem k v))

(* One-shot HTTP scrape through a fresh connection wired to the
   introspection handler, returning the parsed body. *)
let scrape daemon intro path =
  let conn = Conn.create ~http:(Introspect.handler intro) daemon in
  Conn.on_bytes conn (Printf.sprintf "GET %s HTTP/1.0\r\n\r\n" path);
  let out = Conn.drain_output conn in
  check (path ^ " answers 200") true
    (String.length out > 15 && String.sub out 0 15 = "HTTP/1.0 200 OK");
  check (path ^ " is JSON") true
    (find_sub out "Content-Type: application/json" <> None);
  match find_sub out "\r\n\r\n" with
  | None -> Alcotest.fail "no header/body separator"
  | Some i -> parse_json (String.sub out (i + 4) (String.length out - i - 4))

let test_status_schema () =
  let daemon = mk_daemon () in
  let intro = Introspect.create ~version:"test" daemon in
  let stream = Conn.create ~listener:"unix" daemon in
  Conn.on_bytes stream "t1 0\nt1 1\nt2 1\n";
  Introspect.set_conns intro (fun () ->
      [ Introspect.conn_info_of_conn stream ]);
  let eng = Daemon.engine daemon in
  (* /status *)
  let v = scrape daemon intro "/status" in
  check_str "schema" "sl-status/1" (jstr "schema" v);
  check_str "type" "status" (jstr "type" v);
  check_str "version" "test" (jstr "version" v);
  check "uptime non-negative" true
    (Option.get (Jsonv.num (jmem "uptime_s" v)) >= 0.);
  check_int "traces" 2 (jint "traces" v);
  check_int "events" 3 (jint "events" v);
  check_int "live" (Engine.live eng) (jint "live" v);
  check_int "tripped" (Engine.tripped eng) (jint "tripped" v);
  check_int "retired" (Engine.retired_admissible eng)
    (jint "retired_admissible" v);
  (match jarr "connections" v with
  | [ c ] ->
      check_str "conn listener" "unix" (jstr "listener" c);
      check_str "conn mode" "lines" (jstr "mode" c);
      check_int "conn events" 3 (jint "events" c);
      check "conn not stalled" false (jbool "stalled" c)
  | l -> Alcotest.failf "expected one connection row, got %d" (List.length l));
  check_int "no reloads yet" 0 (jint "count" (jmem "reloads" v));
  Introspect.note_reload intro ~ok:true ~detail:"test \"reload\"";
  let v = scrape daemon intro "/status" in
  check_int "reload counted" 1 (jint "count" (jmem "reloads" v));
  (* /healthz *)
  let h = scrape daemon intro "/healthz" in
  check_str "healthz schema" "sl-status/1" (jstr "schema" h);
  check_str "healthz ok" "ok" (jstr "status" h);
  (* /traces *)
  let t = scrape daemon intro "/traces" in
  check_int "traces total" 2 (jint "total" t);
  check "not truncated" false (jbool "truncated" t);
  (match jarr "traces" t with
  | [ t1; t2 ] ->
      check_str "first trace name" "t1" (jstr "name" t1);
      check_int "first trace events" 2 (jint "events" t1);
      check_str "second trace name" "t2" (jstr "name" t2);
      check_int "second trace events" 1 (jint "events" t2)
  | l -> Alcotest.failf "expected two trace rows, got %d" (List.length l))

(* /monitors gives the exact per-monitor verdict census: summed over
   monitors it must reproduce the engine's global counters, and every
   row carries the stable canonical-key hash. *)
let test_monitors_census () =
  let daemon = mk_daemon () in
  let intro = Introspect.create ~version:"test" daemon in
  let stream = Conn.create daemon in
  Conn.on_bytes stream "a 0\nb 1\na 1\nb 0\na 0\n";
  let eng = Daemon.engine daemon in
  let v = scrape daemon intro "/monitors" in
  check_str "schema" "sl-status/1" (jstr "schema" v);
  check_str "type" "monitors" (jstr "type" v);
  let rows = jarr "monitors" v in
  check_int "one row per distinct monitor"
    (Registry.nmonitors (Daemon.registry daemon))
    (List.length rows);
  let sum f = List.fold_left (fun acc r -> acc + f r) 0 rows in
  check_int "live sums to the engine counter" (Engine.live eng)
    (sum (jint "live"));
  check_int "tripped sums to the engine counter" (Engine.tripped eng)
    (sum (jint "tripped"));
  check_int "retired sums to the engine counter"
    (Engine.retired_admissible eng)
    (sum (jint "retired_admissible"));
  List.iter
    (fun r ->
      check "key is a 16-hex-digit hash" true
        (String.length (jstr "key" r) = 16);
      check "row names at least one prop" true (jarr "props" r <> []))
    rows;
  (* the census is the trace table, so it tracks later events *)
  Conn.on_bytes stream "c 1\n";
  let v2 = scrape daemon intro "/monitors" in
  check_int "census follows the stream" (Engine.tripped eng)
    (List.fold_left
       (fun acc r -> acc + jint "tripped" r)
       0 (jarr "monitors" v2))

(* Scraping /metrics and /status mid-stream — including against a
   back-pressured connection — must succeed and must not disturb the
   served verdicts. *)
let test_concurrent_scrape_backpressure () =
  let events =
    List.init 40 (fun i -> (Printf.sprintf "t%d" i, 1))
  in
  let daemon = mk_daemon () in
  let intro = Introspect.create ~version:"test" daemon in
  let stream = Conn.create ~hwm:256 daemon in
  Introspect.set_conns intro (fun () ->
      [ Introspect.conn_info_of_conn stream ]);
  Conn.on_bytes stream (render_lines events);
  check "stream is back-pressured" true (not (Conn.wants_read stream));
  (* both scrape paths answer while the stream is stalled *)
  let m = Conn.create ~http:(Introspect.handler intro) daemon in
  Conn.on_bytes m "GET /metrics HTTP/1.0\r\n\r\n";
  let mout = Conn.drain_output m in
  check "metrics 200 under back-pressure" true
    (String.sub mout 0 15 = "HTTP/1.0 200 OK");
  let v = scrape daemon intro "/status" in
  (match jarr "connections" v with
  | [ c ] ->
      check "status reports the stall" true (jbool "stalled" c);
      check "pending output visible" true (jint "pending_out" c > 0)
  | l -> Alcotest.failf "expected one connection row, got %d" (List.length l));
  (* drain and finish: verdicts as if nobody ever scraped *)
  ignore (Conn.drain_output stream);
  check "drained stream reads again" true (Conn.wants_read stream);
  Conn.on_eof stream;
  let out = Conn.drain_output stream in
  check "verdicts unchanged by scraping" true
    (SS.equal (offline_tuples ~jobs:1 events) (served_tuples out))

(* Telemetry on, jobs 1 and 4: the served byte stream is identical to
   the dark-kernel stream, and both equal the offline report. *)
let test_obs_enabled_serve_identical () =
  let events =
    [ ("t1", 0); ("t2", 1); ("t1", 1); ("t3", 0); ("t2", 0); ("t3", 1) ]
  in
  let bytes = render_lines events in
  Fun.protect
    ~finally:(fun () ->
      Obs.disable ();
      Obs.reset ())
    (fun () ->
      List.iter
        (fun jobs ->
          Obs.disable ();
          let _, dark = serve_split ~jobs ~splits:[ 7; 13 ] bytes in
          Obs.enable ();
          let _, lit = serve_split ~jobs ~splits:[ 7; 13 ] bytes in
          Obs.disable ();
          check_str
            (Printf.sprintf "obs-on output byte-identical at jobs %d" jobs)
            dark lit;
          check "and equal to offline" true
            (SS.equal (offline_tuples ~jobs events) (served_tuples lit)))
        [ 1; 4 ])

(* {2 Jsonv} *)

let test_jsonv () =
  (match Jsonv.parse "{\"a\": [1, -2.5e1, true, null, \"x\\u00e9\\n\"], \"b\": {\"c\": \"\"}}" with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok v ->
      (match Option.get (Jsonv.arr (jmem "a" v)) with
      | [ one; neg; t; nul; s ] ->
          check_int "int" 1 (Option.get (Jsonv.int_ one));
          check "exponent" true (Jsonv.num neg = Some (-25.));
          check "bool" true (Jsonv.bool_ t = Some true);
          check "null" true (nul = Jsonv.Null);
          (* é is é = 0xC3 0xA9 in UTF-8 *)
          check_str "string escapes" "x\xc3\xa9\n" (Option.get (Jsonv.str s))
      | _ -> Alcotest.fail "wrong array shape");
      check_str "nested member" ""
        (Option.get (Jsonv.str (jmem "c" (jmem "b" v)))));
  check "trailing bytes rejected" true
    (match Jsonv.parse "{} x" with Error _ -> true | Ok _ -> false);
  check "truncated input rejected" true
    (match Jsonv.parse "{\"a\": [1," with Error _ -> true | Ok _ -> false);
  (* every endpoint body round-trips through the parser *)
  let daemon = mk_daemon () in
  let intro = Introspect.create ~version:"test" daemon in
  List.iter
    (fun path -> ignore (scrape daemon intro path))
    [ "/status"; "/monitors"; "/traces"; "/healthz" ]

(* {2 Records} *)

let test_record_escaping () =
  let r = Records.error ~line:1 ~trace:(Some "a\"b\\c") ~reason:"tab\there" in
  check "quotes and backslashes escaped" true
    (find_sub r "a\\\"b\\\\c" <> None);
  check "control bytes escaped" true (find_sub r "tab\\u0009here" <> None);
  check "one line" true
    (String.index r '\n' = String.length r - 1)

let tests =
  [
    Alcotest.test_case "served = offline at byte splits and jobs"
      `Quick test_served_equals_offline;
    Alcotest.test_case "summary counters" `Quick test_summary_counters;
    Alcotest.test_case "hello opens the stream" `Quick test_hello_first;
    Alcotest.test_case "pre-tripped announced per trace" `Quick
      test_pretripped_announced;
    QCheck_alcotest.to_alcotest qcheck_served_equals_offline;
    Alcotest.test_case "hostile: garbage bytes" `Quick test_garbage_bytes;
    Alcotest.test_case "hostile: oversized line" `Quick test_oversized_line;
    Alcotest.test_case "hostile: silent half-close" `Quick
      test_half_close_dump;
    Alcotest.test_case "bytes after EOF ignored" `Quick
      test_bytes_after_eof_ignored;
    Alcotest.test_case "GET /metrics on the stream socket" `Quick
      test_http_metrics;
    Alcotest.test_case "back-pressure via wants_read" `Quick test_backpressure;
    Alcotest.test_case "reload: identical registry" `Quick
      test_reload_identical;
    Alcotest.test_case "reload: monitor carry-over" `Quick
      test_reload_carry_over;
    Alcotest.test_case "reload: alphabet change refused" `Quick
      test_reload_alphabet_refused;
    Alcotest.test_case "reload: from props file" `Quick
      test_reload_from_props_file;
    Alcotest.test_case "reload at every chunk boundary" `Quick
      test_reload_at_every_chunk;
    Alcotest.test_case "/status and /healthz schema" `Quick
      test_status_schema;
    Alcotest.test_case "/monitors exact census" `Quick test_monitors_census;
    Alcotest.test_case "concurrent scrape under back-pressure" `Quick
      test_concurrent_scrape_backpressure;
    Alcotest.test_case "obs-enabled serving byte-identical" `Quick
      test_obs_enabled_serve_identical;
    Alcotest.test_case "jsonv parser" `Quick test_jsonv;
    Alcotest.test_case "record escaping" `Quick test_record_escaping;
  ]
