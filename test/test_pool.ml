(* The domain pool and the determinism contract of every parallel call
   site: jobs must never be observable. The unit tests pin the pool's
   edge semantics (empty ranges, oversized chunks, exception and
   nested-region behaviour); the QCheck pins run the engine, the
   registry compiler and the rank-based complementation at jobs = 1 and
   jobs = 4 on the same random inputs and require identical results —
   the executable form of DESIGN.md §6.9's determinism argument. *)

module Pool = Sl_core.Pool
module Buchi = Sl_buchi.Buchi
module Complement = Sl_buchi.Complement
module Formula = Sl_ltl.Formula
module Lexamples = Sl_ltl.Examples
module Packed_dfa = Sl_runtime.Packed_dfa
module Registry = Sl_runtime.Registry
module Engine = Sl_runtime.Engine

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- Pool unit semantics --- *)

let test_create_validation () =
  check_int "jobs recorded" 3 (Pool.jobs (Pool.create ~jobs:3 ()));
  check "jobs 0 rejected" true
    (match Pool.create ~jobs:0 () with
    | exception Invalid_argument _ -> true
    | _ -> false);
  (* the process-wide default is what create () picks up *)
  let saved = Pool.default_jobs () in
  Pool.set_default_jobs 2;
  check_int "create () takes the default" 2 (Pool.jobs (Pool.create ()));
  Pool.set_default_jobs saved;
  check "set_default_jobs 0 rejected" true
    (match Pool.set_default_jobs 0 with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_empty_range () =
  let pool = Pool.create ~jobs:4 () in
  let hits = ref 0 in
  Pool.parallel_for pool ~n:0 (fun _ -> incr hits);
  check_int "parallel_for n=0 never calls the body" 0 !hits;
  check_int "map_reduce n=0 is init" 42
    (Pool.map_reduce pool ~n:0 ~map:(fun i -> i) ~reduce:( + ) 42)

let test_each_index_once () =
  (* chunk larger than the range, chunk 1, and the default chunk all
     visit every index exactly once (atomic slots catch double visits
     from any domain). *)
  List.iter
    (fun chunk ->
      let pool = Pool.create ~jobs:4 () in
      let n = 23 in
      let seen = Array.init n (fun _ -> Atomic.make 0) in
      Pool.parallel_for ?chunk pool ~n (fun i -> Atomic.incr seen.(i));
      Array.iteri
        (fun i c ->
          check_int (Printf.sprintf "index %d visited once" i) 1
            (Atomic.get c))
        seen)
    [ Some 64; Some 1; None ]

let test_chunk_validation () =
  let pool = Pool.create ~jobs:2 () in
  check "chunk 0 rejected" true
    (match Pool.parallel_for ~chunk:0 pool ~n:4 (fun _ -> ()) with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_exception_propagates () =
  let pool = Pool.create ~jobs:4 () in
  check "worker exception re-raised on the caller" true
    (match
       Pool.parallel_for ~chunk:1 pool ~n:16 (fun i ->
           if i = 11 then failwith "boom")
     with
    | exception Failure msg -> msg = "boom"
    | _ -> false);
  (* the pool is reusable after a failed region *)
  let hits = Atomic.make 0 in
  Pool.parallel_for pool ~n:8 (fun _ -> Atomic.incr hits);
  check_int "region usable after failure" 8 (Atomic.get hits)

let test_nested_region_rejected () =
  let outer = Pool.create ~jobs:2 () in
  let inner = Pool.create ~jobs:2 () in
  check "nested parallel region rejected" true
    (match
       Pool.parallel_for ~chunk:1 outer ~n:4 (fun _ ->
           Pool.parallel_for ~chunk:1 inner ~n:4 (fun _ -> ()))
     with
    | exception Invalid_argument _ -> true
    | _ -> false);
  (* a sequential combinator inside a worker body is fine: jobs = 1
     regions never touch the nesting flag *)
  let seq = Pool.create ~jobs:1 () in
  let total = Atomic.make 0 in
  Pool.parallel_for ~chunk:1 outer ~n:4 (fun _ ->
      Pool.parallel_for seq ~n:4 (fun _ -> Atomic.incr total));
  check_int "sequential pool nests freely" 16 (Atomic.get total)

let test_map_reduce_order () =
  (* a non-commutative reduce: parallel result must equal the
     left-to-right fold *)
  let pool = Pool.create ~jobs:4 () in
  let n = 17 in
  let got =
    Pool.map_reduce ~chunk:2 pool ~n ~map:string_of_int ~reduce:( ^ ) ""
  in
  let expected =
    String.concat "" (List.init n string_of_int)
  in
  Alcotest.(check string) "index-order fold" expected got

(* --- Determinism pins: jobs = 1 vs jobs = 4 --- *)

let engine_fingerprint eng ~ntraces ~nmonitors =
  let verdicts = ref [] in
  for tr = ntraces - 1 downto 0 do
    for m = nmonitors - 1 downto 0 do
      verdicts := Engine.verdict eng ~trace:tr ~monitor:m :: !verdicts
    done
  done;
  ( Engine.events eng, Engine.live eng, Engine.tripped eng,
    Engine.retired_admissible eng, !verdicts )

let prop_engine_jobs_invariant =
  QCheck.Test.make ~name:"engine: jobs=4 = jobs=1 (verdicts and counters)"
    ~count:30
    QCheck.(int_range 0 5000)
    (fun seed ->
      let st = Random.State.make [| seed |] in
      let monitors =
        Array.init 5 (fun i ->
            Packed_dfa.of_buchi
              (Buchi.random ~seed:(seed + (17 * i)) ~alphabet:2
                 ~nstates:(3 + ((seed + i) mod 6)) ~density:0.2
                 ~accepting_fraction:0.4 ()))
      in
      let n = 96 and ntraces = 7 in
      let traces = Array.init n (fun _ -> Random.State.int st ntraces) in
      let symbols = Array.init n (fun _ -> Random.State.int st 2) in
      (* threshold 1 forces the sharded parallel path at this chunk size
         (the default cutoff would route 96 events sequentially);
         running the default-threshold engine too pins that the cutoff
         fallback itself changes nothing. *)
      let run jobs threshold =
        let eng = Engine.create ~jobs ~threshold ~monitors () in
        Engine.feed eng ~n ~traces ~symbols ();
        engine_fingerprint eng ~ntraces ~nmonitors:(Array.length monitors)
      in
      let reference = run 1 1 in
      reference = run 4 1 && reference = run 4 65536)

(* A pool of properties with deliberate hash-cons collisions (language-
   equal safety parts) so the parallel merge's interning order is
   actually exercised. *)
let registry_prop_pool =
  [| "a"; "a & F !a"; "G F a"; "F G !a"; "G (a -> X !a)"; "!a | X a";
     "G a"; "F a"; "a | X X a"; "G (a -> X (X !a))" |]

let registry_fingerprint r prop_ids =
  ( Registry.nprops r, Registry.nmonitors r, Registry.hits r,
    List.map (fun p -> Registry.monitor_of_prop r p) prop_ids,
    Array.to_list (Array.map Packed_dfa.key (Registry.monitors r)) )

let prop_registry_jobs_invariant =
  QCheck.Test.make
    ~name:"registry: compile_all jobs=4 = jobs=1 (hash-cons structure)"
    ~count:25
    QCheck.(int_range 0 5000)
    (fun seed ->
      let st = Random.State.make [| seed |] in
      let nprops = 1 + Random.State.int st 24 in
      let named =
        List.init nprops (fun i ->
            let s =
              registry_prop_pool.(Random.State.int st
                                    (Array.length registry_prop_pool))
            in
            let name = if i mod 2 = 0 then Some (Printf.sprintf "p%d" i)
              else None
            in
            (name, Formula.parse_exn s))
      in
      (* threshold 1: even 1-3 property batches take the parallel
         fan-out + merge, so the interning order is always exercised;
         the default-threshold run pins the cutoff fallback. *)
      let run jobs threshold =
        let r = Registry.create ~alphabet:2 () in
        let ids = Registry.compile_all ~jobs ~threshold r named in
        registry_fingerprint r ids
      in
      let reference = run 1 1 in
      reference = run 4 1 && reference = run 4 1024)

let prop_complement_jobs_invariant =
  QCheck.Test.make
    ~name:"complement: rank_based jobs=4 = jobs=1 (whole automaton)"
    ~count:20
    QCheck.(int_range 0 5000)
    (fun seed ->
      let b =
        Buchi.random ~seed ~alphabet:2 ~nstates:(3 + (seed mod 2))
          ~density:0.25 ~accepting_fraction:0.4 ()
      in
      (* The cap is part of the contract: a blow-up must raise at the
         same point whatever the pool width, so Too_large outcomes must
         match too. *)
      (* threshold 1: every BFS level expands through the pool (the
         default cutoff would run narrow levels sequentially); the
         default-threshold run pins the per-level fallback. *)
      let run jobs threshold =
        match
          Complement.rank_based ~max_states:10_000 ~jobs ~threshold b
        with
        | c ->
            Ok
              ( c.Buchi.nstates, c.Buchi.start, c.Buchi.delta,
                c.Buchi.accepting )
        | exception Complement.Too_large msg -> Error msg
      in
      let reference = run 1 1 in
      reference = run 4 1 && reference = run 4 16)

let tests =
  [ Alcotest.test_case "create validation and default" `Quick
      test_create_validation;
    Alcotest.test_case "empty range" `Quick test_empty_range;
    Alcotest.test_case "each index exactly once" `Quick
      test_each_index_once;
    Alcotest.test_case "chunk validation" `Quick test_chunk_validation;
    Alcotest.test_case "exceptions propagate" `Quick
      test_exception_propagates;
    Alcotest.test_case "nested region rejected" `Quick
      test_nested_region_rejected;
    Alcotest.test_case "map_reduce preserves order" `Quick
      test_map_reduce_order;
    QCheck_alcotest.to_alcotest prop_engine_jobs_invariant;
    QCheck_alcotest.to_alcotest prop_registry_jobs_invariant;
    QCheck_alcotest.to_alcotest prop_complement_jobs_invariant ]
