let () =
  Alcotest.run "safety_liveness"
    [ ("order", Test_order.tests);
      ("lattice", Test_lattice.tests);
      ("core", Test_core.tests);
      ("pool", Test_pool.tests);
      ("bitset", Test_bitset.tests);
      ("digraph", Test_digraph.tests);
      ("word", Test_word.tests);
      ("nfa", Test_nfa.tests);
      ("buchi", Test_buchi.tests);
      ("ltl", Test_ltl.tests);
      ("kripke", Test_kripke.tests);
      ("ctl", Test_ctl.tests);
      ("tree", Test_tree.tests);
      ("rabin", Test_rabin.tests);
      ("topology", Test_topology.tests);
      ("mu", Test_mu.tests);
      ("regex", Test_regex.tests);
      ("runtime", Test_runtime.tests);
      ("cache", Test_cache.tests);
      ("session", Test_session.tests);
      ("serve", Test_serve.tests);
      ("obs", Test_obs.tests);
      ("acceptance", Test_acceptance.tests);
      ("properties", Test_properties.tests);
      ("integration", Test_integration.tests) ]
