(* The bitset state-set kernel, and agreement of the optimized hot paths
   (subset construction, on-the-fly product, hash-interned rank-based
   complementation) with the seed's naive reference implementations, on
   seeded random automata. *)

module Bitset = Sl_core.Bitset
module Nfa = Sl_nfa.Nfa
module Dfa = Sl_nfa.Dfa
module Lasso = Sl_word.Lasso
module Buchi = Sl_buchi.Buchi
module Ops = Sl_buchi.Ops
module Complement = Sl_buchi.Complement

let check = Alcotest.(check bool)

(* --- Bitset kernel unit tests --- *)

let test_bitset_basics () =
  let s = Bitset.create 200 in
  check "fresh set empty" true (Bitset.is_empty s);
  Bitset.add s 0;
  Bitset.add s 63;
  Bitset.add s 64;
  Bitset.add s 199;
  check "mem 0" true (Bitset.mem s 0);
  check "mem 63 (word boundary)" true (Bitset.mem s 63);
  check "mem 64" true (Bitset.mem s 64);
  check "mem 199" true (Bitset.mem s 199);
  check "not mem 100" false (Bitset.mem s 100);
  Alcotest.(check int) "cardinal" 4 (Bitset.cardinal s);
  Alcotest.(check (list int)) "to_list sorted" [ 0; 63; 64; 199 ]
    (Bitset.to_list s);
  Bitset.remove s 63;
  check "removed" false (Bitset.mem s 63);
  Alcotest.check_raises "out of range" (Invalid_argument
                                          "Bitset: element out of range")
    (fun () -> Bitset.add s 200)

let test_bitset_algebra () =
  let a = Bitset.of_list 130 [ 1; 5; 64; 129 ] in
  let b = Bitset.of_list 130 [ 5; 7; 129 ] in
  Alcotest.(check (list int)) "union" [ 1; 5; 7; 64; 129 ]
    (Bitset.to_list (Bitset.union a b));
  Alcotest.(check (list int)) "inter" [ 5; 129 ]
    (Bitset.to_list (Bitset.inter a b));
  Alcotest.(check (list int)) "diff" [ 1; 64 ]
    (Bitset.to_list (Bitset.diff a b));
  check "subset of union" true (Bitset.subset a (Bitset.union a b));
  check "not subset" false (Bitset.subset a b);
  check "equal reflexive" true (Bitset.equal a (Bitset.copy a));
  check "hash agrees on equal sets" true
    (Bitset.hash a = Bitset.hash (Bitset.of_list 130 [ 129; 64; 5; 1 ]))

let test_bitset_fold_iter () =
  let a = Bitset.of_list 70 [ 2; 3; 68 ] in
  Alcotest.(check int) "fold sum" 73 (Bitset.fold ( + ) a 0);
  let seen = ref [] in
  Bitset.iter (fun i -> seen := i :: !seen) a;
  Alcotest.(check (list int)) "iter ascending" [ 68; 3; 2 ] !seen;
  check "exists" true (Bitset.exists (fun i -> i > 67) a);
  check "exists false" false (Bitset.exists (fun i -> i > 68) a)

let test_interner () =
  let module I = Bitset.Interner in
  let t = I.create () in
  let a = Bitset.of_list 100 [ 1; 99 ] in
  let b = Bitset.of_list 100 [ 2 ] in
  Alcotest.(check int) "first id" 0 (I.intern t a);
  Alcotest.(check int) "second id" 1 (I.intern t b);
  Alcotest.(check int) "re-intern equal set" 0
    (I.intern t (Bitset.of_list 100 [ 99; 1 ]));
  Alcotest.(check int) "count" 2 (I.count t);
  check "get returns the set" true (Bitset.equal a (I.get t 0));
  Alcotest.(check (option int)) "find_opt hit" (Some 1) (I.find_opt t b);
  Alcotest.(check (option int)) "find_opt miss" None
    (I.find_opt t (Bitset.of_list 100 [ 3 ]))

(* --- Optimized vs reference agreement, on seeded random automata --- *)

let random_nfa seed n density =
  let b =
    Buchi.random ~seed ~alphabet:2 ~nstates:n ~density ~accepting_fraction:0.4
      ()
  in
  (* Reuse the Büchi random graph as an NFA with its accepting set. *)
  Nfa.make ~alphabet:2 ~nstates:n ~starts:[ 0 ] ~delta:b.Buchi.delta
    ~accepting:b.Buchi.accepting

let prop_determinize_agrees_with_ref =
  QCheck.Test.make ~name:"determinize = determinize_ref (language)" ~count:60
    QCheck.(pair (int_bound 100_000) (int_range 1 10))
    (fun (seed, n) ->
      let nfa = random_nfa seed n 0.25 in
      Dfa.equivalent (Nfa.determinize nfa) (Nfa.determinize_ref nfa))

let prop_determinize_same_size =
  (* Both constructions reach exactly the same subset states, so the DFAs
     have the same state count even before minimization. *)
  QCheck.Test.make ~name:"determinize reaches the same subset states"
    ~count:60
    QCheck.(pair (int_bound 100_000) (int_range 1 10))
    (fun (seed, n) ->
      let nfa = random_nfa seed n 0.25 in
      (Nfa.determinize nfa).Dfa.nstates
      = (Nfa.determinize_ref nfa).Dfa.nstates)

let small_lassos = Lasso.enumerate ~alphabet:2 ~max_prefix:2 ~max_cycle:2

let random_buchi seed n =
  Buchi.random ~seed ~alphabet:2 ~nstates:n ~density:0.3
    ~accepting_fraction:0.4 ()

let prop_intersect_agrees_with_full =
  QCheck.Test.make ~name:"intersect = intersect_full (per lasso)" ~count:40
    QCheck.(pair (int_bound 100_000) (int_bound 100_000))
    (fun (s1, s2) ->
      let a = random_buchi s1 4 and b = random_buchi s2 5 in
      let on_the_fly = Ops.intersect a b in
      let full = Ops.intersect_full a b in
      List.for_all
        (fun w ->
          Buchi.accepts_lasso on_the_fly w = Buchi.accepts_lasso full w)
        small_lassos)

let prop_intersect_reachable_only =
  QCheck.Test.make ~name:"intersect allocates only reachable states"
    ~count:40
    QCheck.(pair (int_bound 100_000) (int_bound 100_000))
    (fun (s1, s2) ->
      let a = random_buchi s1 4 and b = random_buchi s2 5 in
      let on_the_fly = Ops.intersect a b in
      let reach = Buchi.reachable on_the_fly in
      on_the_fly.Buchi.nstates <= a.Buchi.nstates * b.Buchi.nstates * 2
      && Array.for_all Fun.id reach)

let prop_rank_based_agrees_with_ref =
  QCheck.Test.make ~name:"rank_based = rank_based_ref (exact automaton)"
    ~count:25
    QCheck.(int_bound 100_000)
    (fun seed ->
      let b = random_buchi seed 3 in
      let opt = Complement.rank_based b in
      let reference = Complement.rank_based_ref b in
      (* Identical breadth-first exploration: the automata are equal
         structurally, not just language-equal. *)
      opt.Buchi.nstates = reference.Buchi.nstates
      && opt.Buchi.start = reference.Buchi.start
      && opt.Buchi.delta = reference.Buchi.delta
      && opt.Buchi.accepting = reference.Buchi.accepting)

let prop_rank_based_is_complement =
  QCheck.Test.make ~name:"rank_based complements membership (per lasso)"
    ~count:15
    QCheck.(int_bound 100_000)
    (fun seed ->
      let b = random_buchi seed 3 in
      let c = Complement.rank_based b in
      List.for_all
        (fun w -> Buchi.accepts_lasso c w = not (Buchi.accepts_lasso b w))
        small_lassos)

let tests =
  [ Alcotest.test_case "bitset basics" `Quick test_bitset_basics;
    Alcotest.test_case "bitset algebra" `Quick test_bitset_algebra;
    Alcotest.test_case "bitset fold/iter" `Quick test_bitset_fold_iter;
    Alcotest.test_case "interner" `Quick test_interner;
    QCheck_alcotest.to_alcotest prop_determinize_agrees_with_ref;
    QCheck_alcotest.to_alcotest prop_determinize_same_size;
    QCheck_alcotest.to_alcotest prop_intersect_agrees_with_full;
    QCheck_alcotest.to_alcotest prop_intersect_reachable_only;
    QCheck_alcotest.to_alcotest prop_rank_based_agrees_with_ref;
    QCheck_alcotest.to_alcotest prop_rank_based_is_complement ]
