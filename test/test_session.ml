(* The session layer: snapshot/restore of the runtime's mutable state.

   The contract under test is byte-identical continuation — feed k
   events, snapshot, restore in a fresh session (any jobs, warm or cold
   registry), feed the rest, and the verdict report is the same string
   the uninterrupted run renders, for every k. The adversarial half is
   the codec: hostile bytes against every sl-artifact decoder in the
   tree may only read as Corrupt/None/Error, never escape as an
   Invalid_argument or out-of-bounds crash, and a snapshot from a
   structurally different registry must refuse to restore. *)

module Wire = Sl_core.Wire
module Digraph = Sl_core.Digraph
module Buchi = Sl_buchi.Buchi
module Formula = Sl_ltl.Formula
module Packed_dfa = Sl_runtime.Packed_dfa
module Registry = Sl_runtime.Registry
module Cache = Sl_runtime.Cache
module Pack = Sl_runtime.Pack
module Engine = Sl_runtime.Engine
module Ingest = Sl_runtime.Ingest
module Session = Sl_runtime.Session
module Verdict = Sl_runtime.Verdict

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let fresh_dir () =
  let f = Filename.temp_file "slc-session-test" "" in
  Sys.remove f;
  Sys.mkdir f 0o700;
  f

let props_src = [ "G a"; "a & F !a"; "G (a -> X !a)"; "G F a"; "G a" ]
let named = List.map (fun s -> (Some s, Formula.parse_exn s)) props_src

let mk_registry ?cache () =
  let r = Registry.create ~alphabet:2 ?cache () in
  ignore (Registry.compile_all ~jobs:1 r named);
  r

(* One registry for the whole module: it is immutable once compiled and
   every test only reads it. *)
let registry = lazy (mk_registry ())

(* Feed (trace name, symbol) events one by one through the session's
   own interner — the ingestion path minus the line protocol. *)
let feed_events session events =
  let ingest = Session.ingest session in
  let engine = Session.engine session in
  List.iter
    (fun (name, sym) ->
      Engine.step engine ~trace:(Ingest.intern ingest name) ~symbol:sym)
    events

(* The same events as one batched chunk, to reach the sharded parallel
   feed on engines with jobs > 1 and a low threshold. *)
let feed_events_chunk session events =
  let ingest = Session.ingest session in
  let engine = Session.engine session in
  let arr = Array.of_list events in
  let traces = Array.map (fun (n, _) -> Ingest.intern ingest n) arr in
  let symbols = Array.map snd arr in
  Engine.feed engine ~n:(Array.length arr) ~traces ~symbols ()

let report session = Verdict.to_json (Verdict.of_session session ())

let counters session =
  let e = Session.engine session in
  (Engine.events e, Engine.tripped e, Engine.retired_admissible e,
   Engine.ntraces e, Engine.live e)

let random_events st n =
  List.init n (fun _ ->
      (Printf.sprintf "t%d" (Random.State.int st 3), Random.State.int st 2))

let rec take k = function
  | x :: tl when k > 0 -> x :: take (k - 1) tl
  | _ -> []

let rec drop k = function
  | _ :: tl when k > 0 -> drop (k - 1) tl
  | l -> l

(* --- Registry fingerprint --- *)

let test_fingerprint_stability () =
  let fp1 = Registry.fingerprint (mk_registry ()) in
  let fp2 = Registry.fingerprint (mk_registry ()) in
  check "recompiling the same props reproduces the fingerprint" true
    (String.equal fp1 fp2);
  (* Cold-with-cache and warm-from-cache registries must agree too:
     resuming under --cache is the main production path. *)
  let dir = fresh_dir () in
  let cold = Registry.fingerprint (mk_registry ~cache:(Cache.create ~dir) ()) in
  let warm = Registry.fingerprint (mk_registry ~cache:(Cache.create ~dir) ()) in
  check "cold-cache fingerprint = uncached" true (String.equal fp1 cold);
  check "warm-cache fingerprint = cold" true (String.equal cold warm)

let test_fingerprint_sensitivity () =
  let fp_of srcs =
    let r = Registry.create ~alphabet:2 () in
    ignore
      (Registry.compile_all ~jobs:1 r
         (List.map (fun s -> (Some s, Formula.parse_exn s)) srcs));
    Registry.fingerprint r
  in
  let base = fp_of [ "G a"; "G F a" ] in
  check "dropping a property changes the fingerprint" true
    (base <> fp_of [ "G a" ]);
  check "reordering properties changes the fingerprint" true
    (base <> fp_of [ "G F a"; "G a" ]);
  check "renaming a property changes the fingerprint" true
    (base <> fp_of [ "G (a)"; "G F a" ]);
  let r3 = Registry.create ~alphabet:3 () in
  ignore
    (Registry.compile_all ~jobs:1 r3
       (List.map (fun s -> (Some s, Formula.parse_exn s)) [ "G a"; "G F a" ]));
  check "alphabet changes the fingerprint" true
    (base <> Registry.fingerprint r3)

(* --- Round trip --- *)

let test_roundtrip () =
  let registry = Lazy.force registry in
  let s = Session.create ~jobs:1 ~registry () in
  feed_events s
    [ ("t1", 0); ("t2", 0); ("t1", 1); ("t2", 0); ("t1", 0); ("t2", 1) ];
  let blob = Session.to_artifact s in
  match Session.of_artifact ~jobs:1 ~registry blob with
  | Error e -> Alcotest.fail (Session.restore_error_to_string e)
  | Ok s' ->
      check "counters survive" true (counters s = counters s');
      check "interner survives" true
        (Ingest.names (Session.ingest s) = Ingest.names (Session.ingest s'));
      check "report identical" true (String.equal (report s) (report s'));
      (* a fresh name interns after the restored ones, densely *)
      check_int "new trace id continues the dense sequence" 2
        (Ingest.intern (Session.ingest s') "t9")

let test_empty_roundtrip () =
  let registry = Lazy.force registry in
  let s = Session.create ~jobs:1 ~registry () in
  match Session.of_artifact ~jobs:1 ~registry (Session.to_artifact s) with
  | Error e -> Alcotest.fail (Session.restore_error_to_string e)
  | Ok s' -> check "empty session round-trips" true
      (String.equal (report s) (report s'))

let test_file_roundtrip () =
  let registry = Lazy.force registry in
  let s = Session.create ~jobs:1 ~registry () in
  feed_events s [ ("x", 0); ("y", 1); ("x", 1) ];
  let path = Filename.concat (fresh_dir ()) "run.slsession" in
  Session.save s ~path;
  (match Session.load ~jobs:1 ~registry ~path () with
  | Error e -> Alcotest.fail (Session.restore_error_to_string e)
  | Ok s' -> check "file round trip" true (String.equal (report s) (report s')));
  (* stomped file loads as Corrupt, not an exception *)
  let oc = open_out_bin path in
  output_string oc "not an sl-artifact";
  close_out oc;
  (match Session.load ~jobs:1 ~registry ~path () with
  | Error (Session.Corrupt _) -> ()
  | Error (Session.Fingerprint_mismatch _) ->
      Alcotest.fail "garbage misread as fingerprint mismatch"
  | Ok _ -> Alcotest.fail "garbage file restored");
  (* missing file too *)
  match Session.load ~jobs:1 ~registry ~path:(path ^ ".missing") () with
  | Error (Session.Corrupt _) -> ()
  | _ -> Alcotest.fail "missing file did not load as Corrupt"

(* --- Split-feed equivalence: the PR's acceptance property --- *)

let prop_split_feed_equivalence =
  QCheck.Test.make
    ~name:
      "session: feed k, snapshot, restore (jobs 1 and 4), feed rest = \
       uninterrupted run"
    ~count:25
    QCheck.(pair (int_range 0 5000) (int_range 0 10_000))
    (fun (seed, kpick) ->
      let registry = Lazy.force registry in
      let st = Random.State.make [| seed |] in
      let n = 1 + Random.State.int st 60 in
      let events = random_events st n in
      let k = kpick mod (n + 1) in
      let full =
        let s = Session.create ~jobs:1 ~registry () in
        feed_events s events;
        report s
      in
      let s1 = Session.create ~jobs:1 ~registry () in
      feed_events s1 (take k events);
      let blob = Session.to_artifact s1 in
      List.for_all
        (fun jobs ->
          match Session.of_artifact ~jobs ~threshold:1 ~registry blob with
          | Error _ -> false
          | Ok s2 ->
              feed_events_chunk s2 (drop k events);
              String.equal (report s2) full)
        [ 1; 4 ])

(* --- Refusal paths --- *)

let test_fingerprint_mismatch_refuses () =
  let registry = Lazy.force registry in
  let s = Session.create ~jobs:1 ~registry () in
  feed_events s [ ("t1", 0); ("t1", 1) ];
  let blob = Session.to_artifact s in
  let other = Registry.create ~alphabet:2 () in
  ignore
    (Registry.compile_all ~jobs:1 other [ (Some "G a", Formula.parse_exn "G a") ]);
  match Session.of_artifact ~jobs:1 ~registry:other blob with
  | Error (Session.Fingerprint_mismatch { snapshot; registry = reg }) ->
      check "mismatch reports both fingerprints" true (snapshot <> reg);
      check "snapshot side is the saving registry's" true
        (String.equal snapshot (Registry.fingerprint registry))
  | Error (Session.Corrupt m) -> Alcotest.fail ("misread as corrupt: " ^ m)
  | Ok _ -> Alcotest.fail "restored against a different registry"

let reseal s =
  let b = Bytes.of_string s in
  let body_len = Bytes.length b - 8 in
  Bytes.set_int64_le b body_len (Wire.fnv64 (Bytes.sub_string b 0 body_len));
  Bytes.to_string b

let prop_session_corruption_refused =
  QCheck.Test.make
    ~name:"session artifact truncated/flipped: restore = Error, no crash"
    ~count:60
    QCheck.(pair (int_range 0 5000) (int_range 0 100_000))
    (fun (seed, pos) ->
      let registry = Lazy.force registry in
      let st = Random.State.make [| seed |] in
      let s = Session.create ~jobs:1 ~registry () in
      feed_events s (random_events st (1 + Random.State.int st 20));
      let blob = Session.to_artifact s in
      let cut = String.sub blob 0 (pos mod String.length blob) in
      let flipped =
        let b = Bytes.of_string blob in
        let i = pos mod Bytes.length b in
        Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x11));
        Bytes.to_string b
      in
      List.for_all
        (fun bad ->
          match Session.of_artifact ~jobs:1 ~registry bad with
          | Error _ -> true
          | Ok _ -> String.equal bad blob (* flip could be a no-op only never *)
          | exception _ -> false)
        [ cut; flipped ])

(* Flip one payload byte and re-seal the checksum, so the blob passes
   framing and exercises the interior validators — forged counts,
   out-of-range states, inconsistent counters must all surface as
   Error Corrupt, never as an escaped exception or an Ok session. *)
let prop_session_reseal_validated =
  QCheck.Test.make
    ~name:"session payload flipped under a valid checksum: Error or \
           equal-report Ok"
    ~count:120
    QCheck.(pair (int_range 0 5000) (int_range 0 100_000))
    (fun (seed, pos) ->
      let registry = Lazy.force registry in
      let st = Random.State.make [| seed |] in
      let s = Session.create ~jobs:1 ~registry () in
      feed_events s (random_events st (1 + Random.State.int st 20));
      let blob = Session.to_artifact s in
      let body_len = String.length blob - 8 in
      let b = Bytes.of_string blob in
      let i = 13 + (pos mod (body_len - 13)) in
      Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl (seed mod 8))));
      let bad = reseal (Bytes.to_string b) in
      match Session.of_artifact ~jobs:1 ~registry bad with
      | Error _ -> true
      | exception _ -> false
      | Ok s' ->
          (* Some payload bytes are genuinely don't-care for the report
             (e.g. high bytes of a small state that stays valid) — but a
             flip that decodes must still decode to a *valid* session
             whose report renders without crashing. *)
          String.length (report s') > 0)

(* --- Satellite: hostile bytes against every decoder in the tree --- *)

let all_decoders registry : (string * (string -> bool)) list =
  let benign f = match f () with _ -> true | exception Wire.Corrupt _ -> true in
  [ ("packed_dfa", fun s -> benign (fun () -> Packed_dfa.of_artifact s));
    ("buchi", fun s -> benign (fun () -> Buchi.of_artifact s));
    ("digraph", fun s -> benign (fun () -> Digraph.of_artifact s));
    ("pack", fun s -> benign (fun () -> Pack.of_artifact s));
    ("session",
     fun s -> benign (fun () -> Session.of_artifact ~jobs:1 ~registry s)) ]

let prop_hostile_bytes_all_decoders =
  QCheck.Test.make
    ~name:
      "every sl-artifact decoder survives hostile bytes (random, \
       truncated, flipped, resealed) with at worst Wire.Corrupt"
    ~count:150
    QCheck.(triple (int_range 0 5000) (int_range 0 100_000) (int_range 0 3))
    (fun (seed, pos, mode) ->
      let registry = Lazy.force registry in
      let st = Random.State.make [| seed |] in
      (* a pool of valid artifacts of every kind, plus pure noise *)
      let session_blob =
        let s = Session.create ~jobs:1 ~registry () in
        feed_events s (random_events st (1 + Random.State.int st 10));
        Session.to_artifact s
      in
      let b = Buchi.random ~seed ~alphabet:2 ~nstates:(2 + (seed mod 5))
          ~density:0.3 ~accepting_fraction:0.4 () in
      let bases =
        [| session_blob; Buchi.to_artifact b;
           Packed_dfa.to_artifact (Packed_dfa.of_buchi b);
           Digraph.to_artifact (Buchi.graph b);
           Pack.to_artifact (Pack.of_registry registry) |]
      in
      let base = bases.(Random.State.int st (Array.length bases)) in
      let victim =
        match mode with
        | 0 ->
            String.init (Random.State.int st 200) (fun _ ->
                Char.chr (Random.State.int st 256))
        | 1 -> String.sub base 0 (pos mod String.length base)
        | 2 ->
            let by = Bytes.of_string base in
            let i = pos mod Bytes.length by in
            Bytes.set by i
              (Char.chr (Char.code (Bytes.get by i) lxor (1 lsl (pos mod 8))));
            Bytes.to_string by
        | _ ->
            if String.length base < 22 then base
            else begin
              let by = Bytes.of_string base in
              let body_len = Bytes.length by - 8 in
              let i = 13 + (pos mod (body_len - 13)) in
              Bytes.set by i
                (Char.chr
                   (Char.code (Bytes.get by i) lxor (1 lsl (seed mod 8))));
              reseal (Bytes.to_string by)
            end
      in
      List.for_all (fun (_, dec) -> dec victim) (all_decoders registry))

(* --- Engine externalization invariants --- *)

let test_restore_trace_validates () =
  let registry = Lazy.force registry in
  let s = Session.create ~jobs:1 ~registry () in
  (* "G a" trips on symbol 1; t1 ends with live and tripped monitors *)
  feed_events s [ ("t1", 0); ("t1", 1); ("t1", 0) ];
  let engine = Session.engine s in
  let ts = Option.get (Engine.export_trace engine 0) in
  let target = Session.create ~jobs:1 ~registry () in
  let te = Session.engine target in
  let rejects what ts' =
    match Engine.restore_trace te 0 ts' with
    | () -> Alcotest.fail (what ^ ": accepted")
    | exception Invalid_argument _ -> ()
  in
  (* the unmodified export restores fine *)
  Engine.restore_trace te 0 ts;
  check "restored trace exports back identically" true
    (Engine.export_trace te 0 = Some ts);
  rejects "short states array"
    { ts with Engine.ts_states = Array.sub ts.Engine.ts_states 0 1 };
  rejects "state out of the monitor's range"
    { ts with
      Engine.ts_states =
        Array.map (fun _ -> max_int) ts.Engine.ts_states };
  rejects "negative event count" { ts with Engine.ts_events = -1 };
  rejects "trip position beyond the event count"
    { ts with
      Engine.ts_tripped_at =
        Array.map (fun p -> if p >= 0 then ts.Engine.ts_events + 1 else p)
          ts.Engine.ts_tripped_at };
  rejects "duplicate live entry"
    (let l = ts.Engine.ts_live in
     if Array.length l = 0 then { ts with Engine.ts_events = -1 }
     else { ts with Engine.ts_live = Array.append l [| l.(0) |] });
  rejects "monitor both live and tripped"
    (let tripped_m =
       let found = ref (-1) in
       Array.iteri
         (fun m p -> if p >= 0 && !found < 0 then found := m)
         ts.Engine.ts_tripped_at;
       !found
     in
     if tripped_m < 0 then { ts with Engine.ts_events = -1 }
     else
       { ts with
         Engine.ts_live = Array.append ts.Engine.ts_live [| tripped_m |] });
  check "export of an unseen trace is None" true
    (Engine.export_trace engine 99 = None)

let test_set_counters_after_restore () =
  let registry = Lazy.force registry in
  let s = Session.create ~jobs:1 ~registry () in
  feed_events s [ ("t1", 1); ("t2", 0) ];
  let c = counters s in
  match Session.of_artifact ~jobs:1 ~registry (Session.to_artifact s) with
  | Error e -> Alcotest.fail (Session.restore_error_to_string e)
  | Ok s' ->
      check "counters exact after restore (pre-tripped not double-counted)"
        true
        (counters s' = c)

(* --- Satellite: ingest chunk-boundary and interner pins --- *)

let test_ingest_chunk_boundary () =
  let total = 9000 in
  (* 4096 is the default chunk size; malformed lines sit exactly at the
     first chunk edge (4096, 4097) and just past the second (8193), so
     line accounting must survive flushes. *)
  let malformed = [ 4096; 4097; 8193 ] in
  let line i =
    if i = 4096 then "oops-one-field"
    else if i = 4097 then "t0 -1"
    else if i = 8193 then "t1 notanint"
    else Printf.sprintf "t%d %d" (i mod 5) (i mod 2)
  in
  let next =
    let i = ref 0 in
    fun () ->
      incr i;
      if !i > total then None else Some (line !i)
  in
  let ingest = Ingest.create () in
  let errors = ref [] in
  let chunk_sizes = ref [] in
  let events = ref 0 in
  Ingest.read ~alphabet:2 ingest ~next_line:next
    ~on_chunk:(fun c ->
      chunk_sizes := c.Ingest.len :: !chunk_sizes;
      events := !events + c.Ingest.len)
    ~on_error:(fun e -> errors := e.Ingest.e_line :: !errors);
  check "malformed lines reported with exact line numbers" true
    (List.rev !errors = malformed);
  check_int "every well-formed line became an event" (total - 3) !events;
  check "chunks flush at exactly the chunk size" true
    (List.rev !chunk_sizes = [ 4096; 4096; total - 3 - 8192 ]);
  check_int "trace ids interned densely" 5 (Ingest.ntraces ingest);
  (* first-seen order: line 1 is "t1 1", line 2 "t2 0", ... line 5 "t0 1" *)
  check "first-seen order" true
    (Ingest.names ingest = [| "t1"; "t2"; "t3"; "t4"; "t0" |])

let test_interner_roundtrip_through_codec () =
  let registry = Lazy.force registry in
  let s = Session.create ~jobs:1 ~registry () in
  let lines = [ "zeta 0"; "alpha 1"; "zeta 1"; "mid 0"; "alpha 0" ] in
  let next =
    let rest = ref lines in
    fun () ->
      match !rest with [] -> None | l :: tl -> rest := tl; Some l
  in
  Ingest.read ~alphabet:2 (Session.ingest s) ~next_line:next
    ~on_chunk:(fun c ->
      Engine.feed (Session.engine s) ~n:c.Ingest.len ~traces:c.Ingest.trace_ids
        ~symbols:c.Ingest.symbols ())
    ~on_error:(fun _ -> Alcotest.fail "unexpected ingest error");
  match Session.of_artifact ~jobs:1 ~registry (Session.to_artifact s) with
  | Error e -> Alcotest.fail (Session.restore_error_to_string e)
  | Ok s' ->
      let i' = Session.ingest s' in
      check "names survive in first-seen order" true
        (Ingest.names i' = [| "zeta"; "alpha"; "mid" |]);
      check_int "re-interning an old name keeps its id" 1
        (Ingest.intern i' "alpha");
      check_int "a new name takes the next dense id" 3
        (Ingest.intern i' "omega")

let tests =
  [ Alcotest.test_case "fingerprint is stable across recompiles and caches"
      `Quick test_fingerprint_stability;
    Alcotest.test_case "fingerprint is structure-sensitive" `Quick
      test_fingerprint_sensitivity;
    Alcotest.test_case "session round trip" `Quick test_roundtrip;
    Alcotest.test_case "empty session round trip" `Quick test_empty_roundtrip;
    Alcotest.test_case "session file round trip (corrupt/missing = Error)"
      `Quick test_file_roundtrip;
    QCheck_alcotest.to_alcotest prop_split_feed_equivalence;
    Alcotest.test_case "restore refuses a different registry" `Quick
      test_fingerprint_mismatch_refuses;
    QCheck_alcotest.to_alcotest prop_session_corruption_refused;
    QCheck_alcotest.to_alcotest prop_session_reseal_validated;
    QCheck_alcotest.to_alcotest prop_hostile_bytes_all_decoders;
    Alcotest.test_case "restore_trace validates every field" `Quick
      test_restore_trace_validates;
    Alcotest.test_case "counters exact after restore" `Quick
      test_set_counters_after_restore;
    Alcotest.test_case "ingest pins: chunk-boundary lines and dense interning"
      `Quick test_ingest_chunk_boundary;
    Alcotest.test_case "interner round-trips through the session codec"
      `Quick test_interner_roundtrip_through_codec ]
