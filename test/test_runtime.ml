(* The streaming runtime subsystem, pinned against the one-trace
   one-property reference monitor it industrializes: the packed engine
   must produce the same verdicts at the same positions as per-event
   Sl_buchi.Monitor.step, on random automata and seeded random traces. *)

module Buchi = Sl_buchi.Buchi
module Monitor = Sl_buchi.Monitor
module Formula = Sl_ltl.Formula
module Lexamples = Sl_ltl.Examples
module Packed_dfa = Sl_runtime.Packed_dfa
module Registry = Sl_runtime.Registry
module Engine = Sl_runtime.Engine
module Ingest = Sl_runtime.Ingest
module Verdict = Sl_runtime.Verdict

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* Engine verdicts vs the reference monitor: engine [Vacuous] means the
   reference never trips, so it reads as Admissible there. *)
let agree (reference : Monitor.verdict) (packed : Engine.verdict) =
  match (reference, packed) with
  | Monitor.Admissible, (Engine.Admissible | Engine.Vacuous) -> true
  | Monitor.Violation bad, Engine.Violation { position } ->
      List.length bad = position
  | _ -> false

(* --- Packed compilation --- *)

let test_packed_shape () =
  let pd = Packed_dfa.of_buchi (Lexamples.automaton Lexamples.p1) in
  check_int "flat table size" (pd.Packed_dfa.nstates * pd.Packed_dfa.alphabet)
    (Array.length pd.Packed_dfa.trans);
  check "p1 not vacuous" false pd.Packed_dfa.vacuous;
  check "p1 not pre-tripped" false pd.Packed_dfa.pre_tripped;
  (* 'a' observed: admissible forever; the packed table knows it. *)
  let q = Packed_dfa.step pd Packed_dfa.start 0 in
  check "after a: cannot trip anymore" false (Packed_dfa.can_trip pd q);
  (* language-equal properties pack to identical keys (hash-consing):
     lcl p3 = p1 is the paper's Section 2.3 example *)
  let pd3 = Packed_dfa.of_buchi (Lexamples.automaton Lexamples.p3) in
  check "safety parts of p1 and p3 share a key" true
    (String.equal (Packed_dfa.key pd) (Packed_dfa.key pd3))

let test_vacuity_rem_examples () =
  (* is_vacuous over the Rem table: exactly the pure-liveness rows (and
     p6, whose safety part is the universal property). *)
  List.iter
    (fun (name, f, expected) ->
      let m = Monitor.create (Lexamples.automaton f) in
      check ("Monitor.is_vacuous " ^ name) expected (Monitor.is_vacuous m);
      let pd = Packed_dfa.of_buchi (Lexamples.automaton f) in
      check ("packed vacuous " ^ name) expected pd.Packed_dfa.vacuous)
    [ ("p0", Lexamples.p0, false); ("p1", Lexamples.p1, false);
      ("p2", Lexamples.p2, false); ("p3", Lexamples.p3, false);
      ("p4", Lexamples.p4, true); ("p5", Lexamples.p5, true);
      ("p6", Lexamples.p6, true) ]

(* --- Monitor satellite fixes --- *)

let test_monitor_feed_short_circuit () =
  let m = Monitor.create (Lexamples.automaton Lexamples.p1) in
  (* p1 = 'a': the shortest bad prefix is [1]; feed must stop there and
     report it unchanged no matter what follows in the batch. *)
  (match Monitor.feed m [ 1; 0; 1; 0; 0 ] with
  | Monitor.Violation bad ->
      Alcotest.(check (list int)) "bad prefix unaffected by batch tail"
        [ 1 ] bad
  | Monitor.Admissible -> Alcotest.fail "expected violation");
  (* and the verdict is sticky across further feeds *)
  check "sticky" true
    (match Monitor.feed m [ 0; 0 ] with
    | Monitor.Violation [ 1 ] -> true
    | _ -> false)

let test_monitor_reset () =
  let m = Monitor.create (Lexamples.automaton Lexamples.p1) in
  check "trips" true
    (match Monitor.feed m [ 1 ] with Monitor.Violation _ -> true | _ -> false);
  Monitor.reset m;
  check "fresh after reset" true (Monitor.verdict m = Monitor.Admissible);
  check "good trace admissible after reset" true
    (Monitor.feed m [ 0; 0; 1 ] = Monitor.Admissible);
  (* the degenerate empty property stays tripped across resets *)
  let m0 = Monitor.create (Lexamples.automaton Lexamples.p0) in
  Monitor.reset m0;
  check "empty property re-trips on reset" true
    (match Monitor.verdict m0 with Monitor.Violation [] -> true | _ -> false)

(* --- Engine vs reference monitor, property-based --- *)

let prop_engine_agrees_with_monitor =
  QCheck.Test.make ~name:"packed engine = per-event Monitor.step" ~count:80
    QCheck.(pair (int_range 0 5000) (int_range 0 5000))
    (fun (s1, s2) ->
      let b =
        Buchi.random ~seed:s1 ~alphabet:2 ~nstates:(3 + (s1 mod 6))
          ~density:0.2 ~accepting_fraction:0.4 ()
      in
      let m = Monitor.create b in
      let eng = Engine.create ~monitors:[| Packed_dfa.of_buchi b |] () in
      let st = Random.State.make [| s2 |] in
      let ok = ref true in
      for _ = 1 to 32 do
        let sym = Random.State.int st 2 in
        let reference = Monitor.step m sym in
        Engine.step eng ~trace:0 ~symbol:sym;
        if not (agree reference (Engine.verdict eng ~trace:0 ~monitor:0))
        then ok := false
      done;
      !ok)

let prop_engine_batched_equals_stepwise =
  QCheck.Test.make ~name:"batched feed = stepwise feed" ~count:40
    QCheck.(int_range 0 5000)
    (fun seed ->
      let st = Random.State.make [| seed |] in
      let monitors =
        Array.init 4 (fun i ->
            Packed_dfa.of_buchi
              (Buchi.random ~seed:(seed + (31 * i)) ~alphabet:2
                 ~nstates:(3 + ((seed + i) mod 5)) ~density:0.2
                 ~accepting_fraction:0.4 ()))
      in
      let n = 64 in
      let traces = Array.init n (fun _ -> Random.State.int st 3) in
      let symbols = Array.init n (fun _ -> Random.State.int st 2) in
      let batched = Engine.create ~monitors () in
      Engine.feed batched ~n ~traces ~symbols ();
      let stepwise = Engine.create ~monitors () in
      for k = 0 to n - 1 do
        Engine.step stepwise ~trace:traces.(k) ~symbol:symbols.(k)
      done;
      let same = ref (Engine.events batched = Engine.events stepwise) in
      for tr = 0 to 2 do
        for m = 0 to Array.length monitors - 1 do
          if
            Engine.verdict batched ~trace:tr ~monitor:m
            <> Engine.verdict stepwise ~trace:tr ~monitor:m
          then same := false
        done
      done;
      !same)

let test_engine_interleaved_traces () =
  (* Positions are per trace, not global: interleave two traces and
     check each sees its own event numbering. p1 = 'a' trips on the
     first symbol 1 of the respective trace. *)
  let monitors = [| Packed_dfa.of_buchi (Lexamples.automaton Lexamples.p1) |] in
  let eng = Engine.create ~monitors () in
  Engine.step eng ~trace:0 ~symbol:0;
  (* t0: a *)
  Engine.step eng ~trace:1 ~symbol:1;
  (* t1: !a -> trip at its event 1 *)
  Engine.step eng ~trace:0 ~symbol:0;
  Engine.step eng ~trace:1 ~symbol:0;
  check "t0 admissible" true
    (Engine.verdict eng ~trace:0 ~monitor:0 = Engine.Admissible);
  check "t1 tripped at its own position 1" true
    (Engine.verdict eng ~trace:1 ~monitor:0
    = Engine.Violation { position = 1 });
  check_int "t0 events" 2 (Engine.trace_events eng 0);
  check_int "t1 events" 2 (Engine.trace_events eng 1)

let test_engine_reset_and_retirement () =
  let reg = Registry.create () in
  ignore (Registry.add_formula reg (Formula.parse_exn "a"));
  ignore (Registry.add_formula reg (Formula.parse_exn "G F a"));
  let eng = Engine.create ~monitors:(Registry.monitors reg) () in
  Engine.step eng ~trace:0 ~symbol:0;
  (* 'a' monitor is admissible-forever after seeing a; vacuous monitor
     was never live: the trace has no live monitors left. *)
  check_int "all monitors retired" 0 (Engine.live eng);
  check_int "retired admissible" 1 (Engine.retired_admissible eng);
  Engine.reset eng;
  check_int "reset clears events" 0 (Engine.events eng);
  Engine.step eng ~trace:0 ~symbol:1;
  check "after reset the monitor trips" true
    (Engine.verdict eng ~trace:0 ~monitor:0
    = Engine.Violation { position = 1 })

(* --- Registry --- *)

let test_registry_hash_consing () =
  let reg = Registry.create () in
  ignore (Registry.add_formula reg (Formula.parse_exn "a"));
  ignore (Registry.add_formula reg (Formula.parse_exn "a & F !a"));
  ignore (Registry.add_formula reg (Formula.parse_exn "G F a"));
  ignore (Registry.add_formula reg (Formula.parse_exn "F G !a"));
  check_int "4 props" 4 (Registry.nprops reg);
  (* lcl(a & F !a) = L(a); both liveness props share the universal
     (vacuous) monitor *)
  check_int "2 distinct monitors" 2 (Registry.nmonitors reg);
  check_int "2 hash-cons hits" 2 (Registry.hits reg);
  check_int "p3 shares p1's monitor" (Registry.monitor_of_prop reg 0)
    (Registry.monitor_of_prop reg 1)

let test_registry_malformed_lines () =
  let reg = Registry.create () in
  let errors =
    Registry.load_lines reg ~path:"props.txt"
      [ "a"; ""; "# comment"; "G (a -> & X"; "G (a -> X !a)"; ")(" ]
  in
  check_int "two malformed lines" 2 (List.length errors);
  check_int "well-formed lines all loaded" 2 (Registry.nprops reg);
  check "errors cite file and line" true
    (match errors with
    | e1 :: e2 :: [] ->
        String.length e1 >= 12
        && String.sub e1 0 12 = "props.txt:4:"
        && String.sub e2 0 12 = "props.txt:6:"
    | _ -> false)

(* --- Trace-line parser and chunked ingestion --- *)

let test_parse_line () =
  check "valid" true (Ingest.parse_line "t1 3" = `Event ("t1", 3));
  check "whitespace tolerated" true
    (Ingest.parse_line "  t1 \t 0  " = `Event ("t1", 0));
  check "blank skipped" true (Ingest.parse_line "   " = `Skip);
  check "comment skipped" true (Ingest.parse_line "# hello" = `Skip);
  check "missing symbol" true
    (match Ingest.parse_line "t1" with `Malformed _ -> true | _ -> false);
  check "non-integer symbol" true
    (match Ingest.parse_line "t1 x" with `Malformed _ -> true | _ -> false);
  check "extra fields" true
    (match Ingest.parse_line "t1 1 2" with `Malformed _ -> true | _ -> false);
  check "negative symbol" true
    (match Ingest.parse_line "t1 -1" with `Malformed _ -> true | _ -> false);
  (* symbols are strict decimal: everything int_of_string_opt would
     additionally accept is a protocol error, with a structured reason *)
  check "hex radix prefix rejected" true
    (Ingest.parse_line "t1 0x10"
    = `Malformed (Some "t1", "symbol \"0x10\" is not an integer"));
  check "binary radix prefix rejected" true
    (Ingest.parse_line "t1 0b1"
    = `Malformed (Some "t1", "symbol \"0b1\" is not an integer"));
  check "underscore separator rejected" true
    (Ingest.parse_line "t1 1_000"
    = `Malformed (Some "t1", "symbol \"1_000\" is not an integer"));
  check "leading plus rejected" true
    (Ingest.parse_line "t1 +5"
    = `Malformed (Some "t1", "symbol \"+5\" is not an integer"));
  check "overflow is garbage, not wraparound" true
    (match Ingest.parse_line "t1 99999999999999999999" with
    | `Malformed (Some "t1", _) -> true
    | _ -> false);
  check "leading zeros are plain decimal" true
    (Ingest.parse_line "t1 007" = `Event ("t1", 7))

let drive_ingest ?(chunk_size = 3) ~alphabet lines =
  let ing = Ingest.create () in
  let remaining = ref lines in
  let events = ref [] in
  let errors = ref [] in
  Ingest.read ~chunk_size ~alphabet ing
    ~next_line:(fun () ->
      match !remaining with
      | [] -> None
      | l :: rest ->
          remaining := rest;
          Some l)
    ~on_chunk:(fun c ->
      for k = 0 to c.Ingest.len - 1 do
        events := (c.Ingest.trace_ids.(k), c.Ingest.symbols.(k)) :: !events
      done)
    ~on_error:(fun e ->
      errors := (e.Ingest.e_line, e.Ingest.e_trace, e.Ingest.e_reason)
                :: !errors);
  (ing, List.rev !events, List.rev !errors)

let test_ingest_chunks () =
  let ing, events, errors =
    drive_ingest ~alphabet:2
      [ "a 0"; "b 1"; "a 1"; "# note"; "b 0"; "bad"; "a 9"; "a 0" ]
  in
  (* chunk_size 3 forces mid-stream flushes plus a final partial one *)
  check_int "two trace ids interned" 2 (Ingest.ntraces ing);
  check "names in first-seen order" true
    (Ingest.name ing 0 = "a" && Ingest.name ing 1 = "b");
  Alcotest.(check (list (pair int int)))
    "events in order, ids dense"
    [ (0, 0); (1, 1); (0, 1); (1, 0); (0, 0) ]
    events;
  Alcotest.(check (list int)) "error lines" [ 6; 7 ]
    (List.map (fun (l, _, _) -> l) errors);
  (* structured records carry the trace id where one was recognizable:
     "bad" is a lone field (its token is the would-be trace id), "a 9"
     is an out-of-alphabet symbol on trace a *)
  Alcotest.(check (list (option string)))
    "error trace ids" [ Some "bad"; Some "a" ]
    (List.map (fun (_, t, _) -> t) errors)

(* --- Zero-copy scanner vs the reference parser ---

   The scanner must be byte-for-byte the reference reader: same events
   in order, same interner contents, same structured errors with the
   same 1-based line numbers — no matter where the read-block
   boundaries fall. *)

(* [input_line] semantics over a raw byte stream: segments between
   newlines, plus an unterminated final segment. *)
let lines_of_stream s =
  let n = String.length s in
  let lines = ref [] in
  let i = ref 0 in
  while !i < n do
    let j = try String.index_from s !i '\n' with Not_found -> n in
    lines := String.sub s !i (j - !i) :: !lines;
    i := j + 1
  done;
  List.rev !lines

let drive_reference ~alphabet s =
  let ing, events, errors =
    drive_ingest ~chunk_size:3 ~alphabet (lines_of_stream s)
  in
  (Array.to_list (Ingest.names ing), events, errors)

(* Scan [s] as two blocks split at byte [k] (the straddled line, if
   any, takes the carry path). *)
let drive_scanner ~alphabet s k =
  let ing = Ingest.create () in
  let events = ref [] in
  let errors = ref [] in
  let sc =
    Ingest.scanner ~chunk_size:3 ~alphabet ing
      ~on_chunk:(fun c ->
        for j = 0 to c.Ingest.len - 1 do
          events := (c.Ingest.trace_ids.(j), c.Ingest.symbols.(j)) :: !events
        done)
      ~on_error:(fun e ->
        errors := (e.Ingest.e_line, e.Ingest.e_trace, e.Ingest.e_reason)
                  :: !errors)
  in
  Ingest.scan_string sc s 0 k;
  Ingest.scan_string sc s k (String.length s - k);
  Ingest.scan_eof sc;
  (Array.to_list (Ingest.names ing), List.rev !events, List.rev !errors)

(* A deterministic pin first (easier to debug than the QCheck shrink):
   the test_ingest_chunks fixture as one byte stream, split mid-line. *)
let test_scanner_boundaries () =
  let s = "a 0\nb 1\na 1\n# note\nb 0\nbad\na 9\na 0" in
  let reference = drive_reference ~alphabet:2 s in
  for k = 0 to String.length s do
    let scanned = drive_scanner ~alphabet:2 s k in
    check (Printf.sprintf "split at %d" k) true (scanned = reference)
  done;
  (* the pinned expectations themselves, via the scanner *)
  let names, events, errors = drive_scanner ~alphabet:2 s 5 in
  Alcotest.(check (list string)) "names first-seen" [ "a"; "b" ] names;
  Alcotest.(check (list (pair int int)))
    "events" [ (0, 0); (1, 1); (0, 1); (1, 0); (0, 0) ] events;
  Alcotest.(check (list int)) "error lines" [ 6; 7 ]
    (List.map (fun (l, _, _) -> l) errors);
  Alcotest.(check (list (option string)))
    "error traces" [ Some "bad"; Some "a" ]
    (List.map (fun (_, t, _) -> t) errors)

(* Hostile line pool: blank, comments, \r line endings, radix prefixes,
   negatives, out-of-alphabet, overflow, extra fields, long tokens. *)
let hostile_pool =
  [| "a 0"; "b 1"; "a 1"; "  b \t 0 "; ""; "   "; "\t"; "# comment";
     "#a 1"; "bad"; "t 0x10"; "t 0b1"; "t 1_000"; "t +5"; "t -1"; "t 9";
     "t 99999999999999999999"; "a 0 1"; "long-trace-id-0123456789 1";
     "a 0\r"; "c\r"; "new-trace-every-time 1" |]

let prop_scanner_equals_reference =
  QCheck.Test.make
    ~name:"zero-copy scanner = reference parser (every split, jobs 1 = 4)"
    ~count:30
    QCheck.(
      pair (list_of_size Gen.(0 -- 12) (int_range 0 (Array.length hostile_pool - 1)))
        bool)
    (fun (picks, trailing_nl) ->
      let lines = List.map (fun i -> hostile_pool.(i)) picks in
      let s = String.concat "\n" lines ^ if trailing_nl then "\n" else "" in
      let reference = drive_reference ~alphabet:2 s in
      let ok = ref true in
      for k = 0 to String.length s do
        if drive_scanner ~alphabet:2 s k <> reference then ok := false
      done;
      (* the same stream through the full pipeline at jobs 1 and 4:
         engine verdicts must not depend on the pool width *)
      let monitors =
        [| Packed_dfa.of_buchi (Lexamples.automaton Lexamples.p1);
           Packed_dfa.of_buchi (Lexamples.automaton Lexamples.p2) |]
      in
      let run_engine jobs =
        let eng = Engine.create ~jobs ~threshold:1 ~monitors () in
        let ing = Ingest.create () in
        let sc =
          Ingest.scanner ~chunk_size:3 ~alphabet:2 ing
            ~on_chunk:(fun c ->
              Engine.feed eng ~n:c.Ingest.len ~traces:c.Ingest.trace_ids
                ~symbols:c.Ingest.symbols ())
            ~on_error:(fun _ -> ())
        in
        Ingest.scan_string sc s 0 (String.length s);
        Ingest.scan_eof sc;
        (eng, Ingest.ntraces ing)
      in
      let eng1, nt1 = run_engine 1 in
      let eng4, nt4 = run_engine 4 in
      if nt1 <> nt4 then ok := false;
      for tr = 0 to nt1 - 1 do
        for m = 0 to Array.length monitors - 1 do
          if
            Engine.verdict eng1 ~trace:tr ~monitor:m
            <> Engine.verdict eng4 ~trace:tr ~monitor:m
          then ok := false
        done
      done;
      !ok)

(* --- Fused transition megatable --- *)

(* [Packed_dfa.fuse] is pure layout: every entry must decode to exactly
   the per-monitor [step]/[can_trip]/[is_accepting] triple the engine's
   inner loop previously read separately. *)
let test_fuse_megatable () =
  let monitors =
    Array.append
      (Array.map
         (fun f -> Packed_dfa.of_buchi (Lexamples.automaton f))
         [| Lexamples.p0; Lexamples.p1; Lexamples.p2; Lexamples.p4 |])
      (Array.init 4 (fun i ->
           Packed_dfa.of_buchi
             (Buchi.random ~seed:(1000 + i) ~alphabet:2 ~nstates:(3 + i)
                ~density:0.2 ~accepting_fraction:0.4 ())))
  in
  let mega, base = Packed_dfa.fuse monitors in
  let total =
    Array.fold_left (fun acc pd -> acc + Array.length pd.Packed_dfa.trans) 0
      monitors
  in
  check_int "megatable size" total (Array.length mega);
  Array.iteri
    (fun m pd ->
      let alphabet = pd.Packed_dfa.alphabet in
      for q = 0 to pd.Packed_dfa.nstates - 1 do
        for s = 0 to alphabet - 1 do
          let e = mega.(base.(m) + (q * alphabet) + s) in
          let s' = Packed_dfa.step pd q s in
          check_int (Printf.sprintf "m%d q%d s%d successor" m q s) s'
            (e lsr 2);
          check (Printf.sprintf "m%d q%d s%d can_trip bit" m q s)
            (Packed_dfa.can_trip pd s')
            (e land 2 <> 0);
          check (Printf.sprintf "m%d q%d s%d accepting bit" m q s)
            (Packed_dfa.is_accepting pd s')
            (e land 1 <> 0)
        done
      done)
    monitors;
  (* degenerate shapes: no monitors at all *)
  let mega0, base0 = Packed_dfa.fuse [||] in
  check_int "empty fuse mega" 1 (Array.length mega0);
  check_int "empty fuse base" 1 (Array.length base0)

(* --- End to end: ingestion -> engine -> verdict report --- *)

let test_end_to_end_report () =
  let reg = Registry.create () in
  let errors =
    Registry.load_lines reg [ "a"; "G (a -> X !a)"; "G F a" ]
  in
  check_int "props load clean" 0 (List.length errors);
  let eng = Engine.create ~monitors:(Registry.monitors reg) () in
  let ing, _, ingest_errors =
    let ing = Ingest.create () in
    let remaining =
      ref [ "t1 0"; "t2 1"; "t1 1"; "t2 0"; "t1 0"; "t1 0" ]
    in
    let errors = ref [] in
    Ingest.read ~chunk_size:2 ~alphabet:2 ing
      ~next_line:(fun () ->
        match !remaining with
        | [] -> None
        | l :: rest ->
            remaining := rest;
            Some l)
      ~on_chunk:(fun c ->
        Engine.feed eng ~n:c.Ingest.len ~traces:c.Ingest.trace_ids
          ~symbols:c.Ingest.symbols ())
      ~on_error:(fun e -> errors := (e.Ingest.e_line, e.Ingest.e_reason)
                                    :: !errors);
    (ing, (), !errors)
  in
  check_int "no trace errors" 0 (List.length ingest_errors);
  let report =
    Verdict.make ~registry:reg ~engine:eng ~trace_name:(Ingest.name ing) ()
  in
  let c = report.Verdict.counters in
  check_int "traces" 2 c.Verdict.traces;
  check_int "events" 6 c.Verdict.events;
  check_int "violations" 2 c.Verdict.violations;
  check_int "vacuous props" 1 c.Verdict.vacuous_props;
  (* t1 = 0 1 0 0: G (a -> X !a) trips at event 4; t2 = 1 0: 'a' trips
     at event 1 — the engine-reported positions are the shortest bad
     prefix lengths *)
  let find trace name =
    let row = List.find (fun r -> r.Verdict.trace = trace) report.Verdict.rows in
    let _, v =
      List.find (fun (p, _) -> p.Registry.name = name) row.Verdict.verdicts
    in
    v
  in
  check "t1 violates G (a -> X !a) at 4" true
    (find "t1" "G (a -> X !a)" = Engine.Violation { position = 4 });
  check "t2 violates a at 1" true
    (find "t2" "a" = Engine.Violation { position = 1 });
  check "t1 admissible for a" true (find "t1" "a" = Engine.Admissible);
  check "liveness prop vacuous" true (find "t1" "G F a" = Engine.Vacuous);
  (* the JSON rendering stays parseable by eye and carries the schema *)
  let json = Verdict.to_json report in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let found = ref false in
    for i = 0 to nh - nn do
      if (not !found) && String.sub hay i nn = needle then found := true
    done;
    !found
  in
  check "json schema tag" true (contains json "sl-monitor-report/1");
  check "json violation position" true
    (contains json {|"verdict": "violation", "position": 4|})

let tests =
  [ Alcotest.test_case "packed compilation" `Quick test_packed_shape;
    Alcotest.test_case "vacuity on Rem p0-p6" `Quick
      test_vacuity_rem_examples;
    Alcotest.test_case "Monitor.feed short-circuits" `Quick
      test_monitor_feed_short_circuit;
    Alcotest.test_case "Monitor.reset" `Quick test_monitor_reset;
    QCheck_alcotest.to_alcotest prop_engine_agrees_with_monitor;
    QCheck_alcotest.to_alcotest prop_engine_batched_equals_stepwise;
    Alcotest.test_case "interleaved traces" `Quick
      test_engine_interleaved_traces;
    Alcotest.test_case "reset and retirement" `Quick
      test_engine_reset_and_retirement;
    Alcotest.test_case "registry hash-consing" `Quick
      test_registry_hash_consing;
    Alcotest.test_case "registry skips malformed lines" `Quick
      test_registry_malformed_lines;
    Alcotest.test_case "trace-line parser" `Quick test_parse_line;
    Alcotest.test_case "chunked ingestion" `Quick test_ingest_chunks;
    Alcotest.test_case "zero-copy scanner boundaries" `Quick
      test_scanner_boundaries;
    QCheck_alcotest.to_alcotest prop_scanner_equals_reference;
    Alcotest.test_case "fused megatable layout" `Quick test_fuse_megatable;
    Alcotest.test_case "end-to-end report" `Quick test_end_to_end_report ]
