(* The sl-artifact/1 codec and the warm-start compile cache.

   The QCheck pins are the PR's round-trip contract: decode(encode x)
   must be structurally identical to the freshly compiled value — for
   packed monitors including every *derived* field (can_trip,
   pre_tripped, vacuous), since those are recomputed on decode. The
   corruption pins are the invalidation contract: truncation, bit
   flips, stale format versions and kind confusion must all read as
   "absent" (a cache miss), never as an exception or a wrong value. *)

module Wire = Sl_core.Wire
module Digraph = Sl_core.Digraph
module Buchi = Sl_buchi.Buchi
module Formula = Sl_ltl.Formula
module Packed_dfa = Sl_runtime.Packed_dfa
module Registry = Sl_runtime.Registry
module Cache = Sl_runtime.Cache
module Pack = Sl_runtime.Pack

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let fresh_dir () =
  let f = Filename.temp_file "slc-cache-test" "" in
  Sys.remove f;
  Sys.mkdir f 0o700;
  f

let random_buchi seed =
  Buchi.random ~seed ~alphabet:2
    ~nstates:(2 + (seed mod 7))
    ~density:0.3 ~accepting_fraction:0.4 ()

let random_packed seed = Packed_dfa.of_buchi (random_buchi seed)

let packed_equal (a : Packed_dfa.t) (b : Packed_dfa.t) =
  a.Packed_dfa.alphabet = b.Packed_dfa.alphabet
  && a.Packed_dfa.nstates = b.Packed_dfa.nstates
  && a.Packed_dfa.trans = b.Packed_dfa.trans
  && a.Packed_dfa.accepting = b.Packed_dfa.accepting
  && a.Packed_dfa.can_trip = b.Packed_dfa.can_trip
  && a.Packed_dfa.pre_tripped = b.Packed_dfa.pre_tripped
  && a.Packed_dfa.vacuous = b.Packed_dfa.vacuous
  && String.equal a.Packed_dfa.key b.Packed_dfa.key

let digraph_equal g h =
  Digraph.nodes g = Digraph.nodes h
  && Digraph.nsyms g = Digraph.nsyms h
  && Digraph.nedges g = Digraph.nedges h
  &&
  let ok = ref true in
  for v = 0 to Digraph.nodes g - 1 do
    for s = 0 to Digraph.nsyms g - 1 do
      if Digraph.succs_sym g v s <> Digraph.succs_sym h v s then ok := false
    done
  done;
  !ok

(* --- Round trips --- *)

let prop_packed_roundtrip =
  QCheck.Test.make
    ~name:"packed_dfa: decode(encode x) = x (derived fields included)"
    ~count:50
    QCheck.(int_range 0 5000)
    (fun seed ->
      let pd = random_packed seed in
      match Packed_dfa.of_artifact (Packed_dfa.to_artifact pd) with
      | Some pd' -> packed_equal pd pd'
      | None -> false)

let prop_buchi_roundtrip =
  QCheck.Test.make ~name:"buchi: decode(encode x) = x" ~count:50
    QCheck.(int_range 0 5000)
    (fun seed ->
      let b = random_buchi seed in
      match Buchi.of_artifact (Buchi.to_artifact b) with
      | Some b' ->
          b.Buchi.alphabet = b'.Buchi.alphabet
          && b.Buchi.nstates = b'.Buchi.nstates
          && b.Buchi.start = b'.Buchi.start
          && b.Buchi.delta = b'.Buchi.delta
          && b.Buchi.accepting = b'.Buchi.accepting
      | None -> false)

let prop_digraph_roundtrip =
  QCheck.Test.make ~name:"digraph: decode(encode x) = x" ~count:50
    QCheck.(int_range 0 5000)
    (fun seed ->
      let st = Random.State.make [| seed |] in
      let nodes = 1 + Random.State.int st 10 in
      let nsyms = 1 + Random.State.int st 3 in
      let delta =
        Array.init nodes (fun _ ->
            Array.init nsyms (fun _ ->
                List.init (Random.State.int st 4) (fun _ ->
                    Random.State.int st nodes)))
      in
      let g = Digraph.of_delta delta in
      match Digraph.of_artifact (Digraph.to_artifact g) with
      | Some h -> digraph_equal g h
      | None -> false)

(* --- Corruption: every defect decodes as a miss, never a crash --- *)

let prop_truncation_is_miss =
  QCheck.Test.make
    ~name:"artifact truncated at any byte: decode = None" ~count:60
    QCheck.(pair (int_range 0 500) (int_range 0 10_000))
    (fun (seed, cut) ->
      let s = Packed_dfa.to_artifact (random_packed seed) in
      let s' = String.sub s 0 (cut mod String.length s) in
      Packed_dfa.of_artifact s' = None)

let prop_bitflip_is_miss =
  QCheck.Test.make ~name:"artifact with one flipped byte: decode = None"
    ~count:60
    QCheck.(pair (int_range 0 500) (int_range 0 10_000))
    (fun (seed, pos) ->
      let s = Packed_dfa.to_artifact (random_packed seed) in
      let b = Bytes.of_string s in
      let i = pos mod Bytes.length b in
      Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x20));
      (* Every FNV-1a step is a bijection of the running hash, so any
         single-byte change is guaranteed (not just likely) to fail the
         checksum — or, for a trailer byte, to disagree with it. *)
      Packed_dfa.of_artifact (Bytes.to_string b) = None)

(* Rewrite an artifact's version byte and re-seal the checksum: the
   decoder must reject it on the version field itself, which is the
   upgrade story — old caches full of version-k artifacts read as all
   misses under a version-k+1 build and get overwritten. *)
let reversion s version =
  let b = Bytes.of_string s in
  Bytes.set b 11 (Char.chr version);
  let body_len = Bytes.length b - 8 in
  let h = Wire.fnv64 (Bytes.sub_string b 0 body_len) in
  Bytes.set_int64_le b body_len h;
  Bytes.to_string b

let test_stale_version_is_miss () =
  let pd = random_packed 7 in
  let s = Packed_dfa.to_artifact pd in
  check "self-check: unmodified artifact decodes" true
    (Packed_dfa.of_artifact s <> None);
  check "version+1 with a valid checksum is rejected" true
    (Packed_dfa.of_artifact (reversion s (Wire.format_version + 1)) = None);
  check "version 0 with a valid checksum is rejected" true
    (Packed_dfa.of_artifact (reversion s 0) = None)

let test_kind_confusion_is_miss () =
  let g = Digraph.of_delta [| [| [ 0 ] |] |] in
  let s = Digraph.to_artifact g in
  check "digraph artifact is not a packed monitor" true
    (Packed_dfa.of_artifact s = None);
  check "digraph artifact is not a buchi automaton" true
    (Buchi.of_artifact s = None);
  check "digraph artifact still decodes as itself" true
    (Digraph.of_artifact s <> None)

(* --- The cache itself --- *)

let compile_fingerprint r ids =
  ( Registry.nprops r, Registry.nmonitors r, Registry.hits r,
    List.map (fun p -> Registry.monitor_of_prop r p) ids,
    Array.to_list (Array.map Packed_dfa.key (Registry.monitors r)) )

let props_src =
  [ "a"; "a & F !a"; "G F a"; "G (a -> X !a)"; "F G !a"; "G a"; "a" ]

let named_props =
  List.map (fun s -> (Some s, Formula.parse_exn s)) props_src

let test_cache_find_store_roundtrip () =
  let c = Cache.create ~dir:(fresh_dir ()) in
  let f = Formula.parse_exn "G (a -> X !a)" in
  let valuation s p = String.equal p "a" && s = 0 in
  let key = Cache.probe_key ~alphabet:2 ~valuation f in
  check "empty cache misses" true (Cache.find c ~key = None);
  let pd =
    Packed_dfa.of_buchi
      (Sl_ltl.Translate.translate ~alphabet:2 ~valuation f)
  in
  Cache.store c ~key pd;
  (match Cache.find c ~key with
  | None -> Alcotest.fail "stored entry not found"
  | Some pd' -> check "cached monitor identical to compiled" true
      (packed_equal pd pd'));
  check "other keys still miss" true (Cache.find c ~key:(key ^ "x") = None)

let test_cold_warm_identical () =
  let dir = fresh_dir () in
  let run () =
    let r = Registry.create ~alphabet:2 ~cache:(Cache.create ~dir) () in
    let ids = Registry.compile_all ~jobs:1 r named_props in
    compile_fingerprint r ids
  in
  let uncached =
    let r = Registry.create ~alphabet:2 () in
    let ids = Registry.compile_all ~jobs:1 r named_props in
    compile_fingerprint r ids
  in
  Cache.reset_counters ();
  let cold = run () in
  (* 7 properties, 6 distinct source texts: the cold run stores each
     distinct source once (the duplicate probe hits its twin's fresh
     entry), and the warm run hits all 7 probes. *)
  check_int "cold run stores every distinct source" 6
    (Cache.store_count ());
  let hits_before = Cache.hit_count () in
  let warm = run () in
  check "cold run = uncached run" true (cold = uncached);
  check "warm run = cold run" true (warm = cold);
  check_int "warm run hits every probe" 7
    (Cache.hit_count () - hits_before);
  (* ... and at jobs = 4 the warm cache must change nothing either. *)
  let warm_j4 =
    let r = Registry.create ~alphabet:2 ~cache:(Cache.create ~dir) () in
    let ids = Registry.compile_all ~jobs:4 ~threshold:1 r named_props in
    compile_fingerprint r ids
  in
  check "warm jobs=4 run = cold run" true (warm_j4 = cold)

let test_corrupt_entry_heals () =
  let dir = fresh_dir () in
  let c = Cache.create ~dir in
  let f = Formula.parse_exn "G a" in
  let valuation s p = String.equal p "a" && s = 0 in
  let key = Cache.probe_key ~alphabet:2 ~valuation f in
  let pd =
    Packed_dfa.of_buchi
      (Sl_ltl.Translate.translate ~alphabet:2 ~valuation f)
  in
  Cache.store c ~key pd;
  let entry =
    match Sys.readdir dir with
    | [| e |] -> Filename.concat dir e
    | _ -> Alcotest.fail "expected exactly one cache entry"
  in
  (* Stomp the entry with garbage: find must miss, not raise. *)
  let oc = open_out_bin entry in
  output_string oc "definitely not an sl-artifact";
  close_out oc;
  check "corrupt entry is a miss" true (Cache.find c ~key = None);
  (* A store overwrites the corpse and the cache works again. *)
  Cache.store c ~key pd;
  check "store heals the corrupt entry" true
    (match Cache.find c ~key with
    | Some pd' -> packed_equal pd pd'
    | None -> false)

let test_probe_key_valuation_sensitivity () =
  let f = Formula.parse_exn "G (a -> X !a)" in
  let v1 s p = String.equal p "a" && s = 0 in
  let v2 s p = String.equal p "a" && s = 1 in
  (* differs only on a proposition the formula never mentions *)
  let v3 s p = v1 s p || (String.equal p "zz" && s = 1) in
  let k ~valuation = Cache.probe_key ~alphabet:2 ~valuation f in
  check "valuations differing on a mentioned prop get distinct keys" true
    (k ~valuation:v1 <> k ~valuation:v2);
  check "valuations differing off the formula share a key" true
    (k ~valuation:v1 = k ~valuation:v3);
  check "alphabet is part of the key" true
    (Cache.probe_key ~alphabet:2 ~valuation:v1 f
    <> Cache.probe_key ~alphabet:3 ~valuation:v1 f)

(* --- Monitor packs --- *)

let test_pack_roundtrip () =
  let r = Registry.create ~alphabet:2 () in
  ignore (Registry.compile_all ~jobs:1 r named_props);
  let pk = Pack.of_registry r in
  check_int "pack keeps every property" (Registry.nprops r)
    (Array.length pk.Pack.props);
  check_int "pack keeps the distinct monitors" (Registry.nmonitors r)
    (Array.length pk.Pack.monitors);
  (match Pack.of_artifact (Pack.to_artifact pk) with
  | Error e -> Alcotest.fail ("pack round trip: " ^ e)
  | Ok pk' ->
      check "alphabet survives" true (pk.Pack.alphabet = pk'.Pack.alphabet);
      check "props survive" true (pk.Pack.props = pk'.Pack.props);
      check "monitors survive" true
        (Array.for_all2 packed_equal pk.Pack.monitors pk'.Pack.monitors));
  (* file round trip through the atomic writer *)
  let path = Filename.concat (fresh_dir ()) "m.slpack" in
  Pack.write pk ~path;
  (match Pack.read ~path with
  | Error e -> Alcotest.fail ("pack file round trip: " ^ e)
  | Ok pk' -> check "file round trip" true (pk.Pack.props = pk'.Pack.props));
  (* corrupt pack file reads as Error, not an exception *)
  let oc = open_out_bin path in
  output_string oc "still not an sl-artifact";
  close_out oc;
  check "corrupt pack is an Error" true
    (match Pack.read ~path with Error _ -> true | Ok _ -> false)

let test_pack_rejects_dangling_monitor () =
  let r = Registry.create ~alphabet:2 () in
  ignore (Registry.compile_all ~jobs:1 r named_props);
  let pk = Pack.of_registry r in
  (* splice in a property pointing past the monitor table *)
  let w = Wire.writer () in
  Pack.encode w
    { pk with
      Pack.props =
        Array.append pk.Pack.props
          [| ("phantom", Array.length pk.Pack.monitors) |] };
  check "dangling monitor index rejected" true
    (match Pack.of_artifact (Wire.to_artifact ~kind:Wire.kind_pack w) with
    | Error _ -> true
    | Ok _ -> false)

let tests =
  [ QCheck_alcotest.to_alcotest prop_packed_roundtrip;
    QCheck_alcotest.to_alcotest prop_buchi_roundtrip;
    QCheck_alcotest.to_alcotest prop_digraph_roundtrip;
    QCheck_alcotest.to_alcotest prop_truncation_is_miss;
    QCheck_alcotest.to_alcotest prop_bitflip_is_miss;
    Alcotest.test_case "stale format version is a miss" `Quick
      test_stale_version_is_miss;
    Alcotest.test_case "kind confusion is a miss" `Quick
      test_kind_confusion_is_miss;
    Alcotest.test_case "cache find/store round trip" `Quick
      test_cache_find_store_roundtrip;
    Alcotest.test_case "cold = warm = uncached (jobs 1 and 4)" `Quick
      test_cold_warm_identical;
    Alcotest.test_case "corrupt entry misses, store heals" `Quick
      test_corrupt_entry_heals;
    Alcotest.test_case "probe key valuation sensitivity" `Quick
      test_probe_key_valuation_sensitivity;
    Alcotest.test_case "monitor pack round trip" `Quick test_pack_roundtrip;
    Alcotest.test_case "pack rejects dangling monitor index" `Quick
      test_pack_rejects_dangling_monitor ]
