(* The packed CSR digraph kernel, pinned against straightforward
   reference implementations kept here in the test suite: a recursive
   textbook Tarjan, naive reachability, and a quadratic condensation.
   The kernel must agree not just on the partition but on the exact
   orders the automaton layers rely on for byte-identical output:
   component ids in completion order, members ascending in
   DFS-discovery order, successor storage order preserved. *)

module Digraph = Sl_core.Digraph
module Buchi = Sl_buchi.Buchi

let check = Alcotest.(check bool)

(* --- Reference implementations (live here on purpose: the library
   keeps exactly one Tarjan, in Sl_core.Digraph) --- *)

(* Recursive Tarjan over successor lists, restricted to [keep]. *)
let ref_sccs ~n ~succs ~keep =
  let index = Array.make n (-1) in
  let lowlink = Array.make n 0 in
  let on_stack = Array.make n false in
  let stack = ref [] in
  let counter = ref 0 in
  let comp = Array.make n (-1) in
  let comps = ref [] in
  let nontrivial = ref [] in
  let ncomp = ref 0 in
  let rec strongconnect v =
    index.(v) <- !counter;
    lowlink.(v) <- !counter;
    incr counter;
    stack := v :: !stack;
    on_stack.(v) <- true;
    List.iter
      (fun w ->
        if keep w then
          if index.(w) = -1 then begin
            strongconnect w;
            lowlink.(v) <- min lowlink.(v) lowlink.(w)
          end
          else if on_stack.(w) then lowlink.(v) <- min lowlink.(v) index.(w))
      (succs v);
    if lowlink.(v) = index.(v) then begin
      let members = ref [] in
      let brk = ref false in
      while not !brk do
        match !stack with
        | [] -> brk := true
        | w :: rest ->
            stack := rest;
            on_stack.(w) <- false;
            comp.(w) <- !ncomp;
            members := w :: !members;
            if w = v then brk := true
      done;
      let ms = !members in
      let nt =
        match ms with
        | [ single ] ->
            List.exists (fun w -> w = single && keep w) (succs single)
        | _ -> List.length ms > 1
      in
      comps := ms :: !comps;
      nontrivial := nt :: !nontrivial;
      incr ncomp
    end
  in
  for v = 0 to n - 1 do
    if keep v && index.(v) = -1 then strongconnect v
  done;
  (comp, !ncomp, !comps, Array.of_list (List.rev !nontrivial))

(* Naive worklist reachability to a fixpoint. *)
let ref_reachable ~n ~succs ~keep sources =
  let seen = Array.make n false in
  List.iter (fun v -> if keep v then seen.(v) <- true) sources;
  let changed = ref true in
  while !changed do
    changed := false;
    for v = 0 to n - 1 do
      if seen.(v) then
        List.iter
          (fun w ->
            if keep w && not seen.(w) then begin
              seen.(w) <- true;
              changed := true
            end)
          (succs v)
    done
  done;
  seen

(* --- Random graphs via the Büchi generator (already deterministic in
   the seed), read back as plain successor lists. --- *)

let random_graph seed n density =
  let b = Buchi.random ~seed ~alphabet:2 ~nstates:n ~density
      ~accepting_fraction:0.3 () in
  let succs =
    Array.init n (fun q -> b.Buchi.delta.(q).(0) @ b.Buchi.delta.(q).(1))
  in
  (b, succs)

let sorted l = List.sort compare l

(* --- Agreement of the CSR kernel with the references --- *)

let test_sccs_agree () =
  for seed = 0 to 24 do
    let n = 3 + (seed mod 12) in
    let density = 0.05 +. (0.04 *. float_of_int (seed mod 8)) in
    let b, succs = random_graph seed n density in
    let g = Buchi.graph b in
    let keep v = v mod 3 <> seed mod 3 || seed mod 2 = 0 in
    let all _ = true in
    List.iter
      (fun keep ->
        let r = Digraph.sccs ~filter:keep g in
        let comp, count, comps, nontrivial =
          ref_sccs ~n ~succs:(fun v -> succs.(v)) ~keep
        in
        check "comp ids" true (r.Digraph.comp = comp);
        check "comp count" true (r.Digraph.count = count);
        check "comps lists" true (r.Digraph.comps = comps);
        check "nontrivial flags" true (r.Digraph.nontrivial = nontrivial))
      [ all; keep ]
  done

let test_reachable_agree () =
  for seed = 0 to 24 do
    let n = 2 + (seed mod 14) in
    let b, succs = random_graph seed n 0.15 in
    let g = Buchi.graph b in
    let keep v = (v + seed) mod 4 <> 0 in
    let all _ = true in
    List.iter
      (fun keep ->
        let fwd = Digraph.reachable ~filter:keep g [ 0 ] in
        let fwd_ref =
          ref_reachable ~n ~succs:(fun v -> succs.(v)) ~keep [ 0 ]
        in
        check "forward reach" true (fwd = fwd_ref);
        (* Backward reachability = forward on the reversed edges. *)
        let seeds = Array.init n (fun v -> b.Buchi.accepting.(v)) in
        let bwd =
          Digraph.reachable_from ~filter:keep (Digraph.reverse g) seeds
        in
        let preds = Array.make n [] in
        Array.iteri
          (fun v ws -> List.iter (fun w -> preds.(w) <- v :: preds.(w)) ws)
          succs;
        let bwd_ref =
          ref_reachable ~n ~succs:(fun v -> preds.(v)) ~keep
            (List.filter (fun v -> seeds.(v)) (List.init n Fun.id))
        in
        check "backward reach" true (bwd = bwd_ref))
      [ all; keep ]
  done

let test_reverse_edge_set () =
  for seed = 0 to 9 do
    let n = 2 + (seed mod 10) in
    let _, succs = random_graph seed n 0.2 in
    let g = Digraph.of_successors succs in
    let rg = Digraph.reverse g in
    let edges h =
      let acc = ref [] in
      for v = 0 to Digraph.nodes h - 1 do
        Digraph.iter_succ h v (fun w -> acc := (v, w) :: !acc)
      done;
      sorted !acc
    in
    let flipped = sorted (List.map (fun (v, w) -> (w, v)) (edges g)) in
    check "reverse has the transposed edge multiset" true
      (edges rg = flipped);
    check "double reverse restores the edge multiset" true
      (edges (Digraph.reverse rg) = edges g)
  done

let test_condense_sound () =
  for seed = 0 to 9 do
    let n = 3 + seed in
    let _, succs = random_graph seed n 0.25 in
    let g = Digraph.of_successors succs in
    let r = Digraph.sccs g in
    let dag = Digraph.condense g r in
    Alcotest.(check int) "one node per component" r.Digraph.count
      (Digraph.nodes dag);
    (* Sound: every edge of the DAG comes from some graph edge crossing
       components, and vice versa; no self edges; and it is acyclic. *)
    let cross = Hashtbl.create 16 in
    for v = 0 to n - 1 do
      Digraph.iter_succ g v (fun w ->
          if r.Digraph.comp.(v) <> r.Digraph.comp.(w) then
            Hashtbl.replace cross (r.Digraph.comp.(v), r.Digraph.comp.(w)) ())
    done;
    let dag_edges = ref 0 in
    for c = 0 to Digraph.nodes dag - 1 do
      Digraph.iter_succ dag c (fun c' ->
          incr dag_edges;
          check "no self edges" true (c <> c');
          check "edge crosses components" true (Hashtbl.mem cross (c, c')))
    done;
    Alcotest.(check int) "deduplicated" (Hashtbl.length cross) !dag_edges;
    let rdag = Digraph.sccs dag in
    check "condensation is acyclic" true
      (Array.for_all not rdag.Digraph.nontrivial)
  done

let test_good_scc_consistent () =
  (* has_good_scc / good_scc_members against Büchi emptiness, which the
     suite validates independently (witness round-trips, complement). *)
  for seed = 0 to 19 do
    let b =
      Buchi.random ~seed ~alphabet:2 ~nstates:(4 + (seed mod 8))
        ~density:0.2 ~accepting_fraction:0.3 ()
    in
    let g = Buchi.graph b in
    let reach = Buchi.reachable b in
    let nonempty =
      Digraph.has_good_scc g
        ~filter:(fun q -> reach.(q))
        ~predicates:[ (fun q -> b.Buchi.accepting.(q)) ]
    in
    check "good SCC iff language nonempty" true
      (nonempty = not (Buchi.is_empty b));
    let members =
      Digraph.good_scc_members g
        ~predicates:[ (fun q -> b.Buchi.accepting.(q)) ]
    in
    check "members consistent with existence" true
      (Digraph.has_good_scc g
         ~predicates:[ (fun q -> b.Buchi.accepting.(q)) ]
      = Array.exists Fun.id members)
  done

(* --- Unit tests: shapes the property loop misses --- *)

let test_empty_graph () =
  let g = Digraph.of_successors [||] in
  Alcotest.(check int) "no nodes" 0 (Digraph.nodes g);
  Alcotest.(check int) "no edges" 0 (Digraph.nedges g);
  let r = Digraph.sccs g in
  Alcotest.(check int) "no components" 0 r.Digraph.count;
  check "no good SCC" false (Digraph.has_good_scc g ~predicates:[])

let test_self_loop_singleton () =
  (* 0 -> 0, 0 -> 1; node 1 has no loop. *)
  let g = Digraph.of_successors [| [ 0; 1 ]; [] |] in
  let r = Digraph.sccs g in
  Alcotest.(check int) "two components" 2 r.Digraph.count;
  check "loop state nontrivial" true
    r.Digraph.nontrivial.(r.Digraph.comp.(0));
  check "loopless state trivial" false
    r.Digraph.nontrivial.(r.Digraph.comp.(1));
  check "self loop seen" true (Digraph.has_self_loop g 0);
  check "no self loop" false (Digraph.has_self_loop g 1);
  (* Filtering out the loop target does not erase the self loop, but
     filtering out the node itself does. *)
  let r' = Digraph.sccs ~filter:(fun v -> v = 0) g in
  check "self loop survives filter" true
    r'.Digraph.nontrivial.(r'.Digraph.comp.(0));
  let r'' = Digraph.sccs ~filter:(fun v -> v = 1) g in
  Alcotest.(check int) "filtered-out node has no component" (-1)
    r''.Digraph.comp.(0)

let test_single_scc () =
  (* A 4-cycle: one component, everything nontrivial, condensation is a
     single node with no edges. *)
  let n = 4 in
  let g = Digraph.of_fn ~nodes:n (fun v -> [ (v + 1) mod n ]) in
  let r = Digraph.sccs g in
  Alcotest.(check int) "one component" 1 r.Digraph.count;
  check "nontrivial" true r.Digraph.nontrivial.(0);
  Alcotest.(check (list (list int))) "members ascending" [ [ 0; 1; 2; 3 ] ]
    r.Digraph.comps;
  let dag = Digraph.condense g r in
  Alcotest.(check int) "condensed to a point" 1 (Digraph.nodes dag);
  Alcotest.(check int) "no DAG edges" 0 (Digraph.nedges dag)

let test_no_edges () =
  let g = Digraph.of_successors [| []; []; [] |] in
  let r = Digraph.sccs g in
  Alcotest.(check int) "one component per node" 3 r.Digraph.count;
  check "all trivial" true (Array.for_all not r.Digraph.nontrivial);
  check "nothing reachable from 0 but 0" true
    (Digraph.reachable g [ 0 ] = [| true; false; false |])

let test_labeled_access () =
  (* of_delta keeps per-symbol extents, storage order, and duplicates. *)
  let delta = [| [| [ 1; 1 ]; [ 0 ] |]; [| []; [ 1; 0 ] |] |] in
  let g = Digraph.of_delta delta in
  Alcotest.(check int) "symbols" 2 (Digraph.nsyms g);
  Alcotest.(check int) "edges counted with duplicates" 5 (Digraph.nedges g);
  Alcotest.(check (list int)) "succs (0, a)" [ 1; 1 ] (Digraph.succs_sym g 0 0);
  Alcotest.(check (list int)) "succs (1, b) keeps order" [ 1; 0 ]
    (Digraph.succs_sym g 1 1);
  Alcotest.(check int) "sym_degree" 2 (Digraph.sym_degree g 0 0);
  Alcotest.(check int) "sym_degree empty" 0 (Digraph.sym_degree g 1 0);
  let order = ref [] in
  Digraph.iter_succ g 0 (fun w -> order := w :: !order);
  Alcotest.(check (list int)) "iter_succ is storage order" [ 1; 1; 0 ]
    (List.rev !order)

let test_builder_validation () =
  Alcotest.check_raises "ragged rows"
    (Invalid_argument "Digraph.of_delta: ragged rows") (fun () ->
      ignore (Digraph.of_delta [| [| [] |]; [| []; [] |] |]));
  Alcotest.check_raises "target out of range"
    (Invalid_argument "Digraph.of_delta: target out of range") (fun () ->
      ignore (Digraph.of_successors [| [ 1 ] |]))

let test_deep_path_no_overflow () =
  (* A path of 200k nodes ending in a 2-cycle: the recursive reference
     would overflow the OCaml stack; the kernel must not. *)
  let n = 200_000 in
  let g =
    Digraph.of_fn ~nodes:n (fun v ->
        if v + 1 < n then [ v + 1 ] else [ n - 2 ])
  in
  let r = Digraph.sccs g in
  Alcotest.(check int) "components" (n - 1) r.Digraph.count;
  check "cycle at the end is nontrivial" true
    r.Digraph.nontrivial.(r.Digraph.comp.(n - 1));
  check "path states trivial" false r.Digraph.nontrivial.(r.Digraph.comp.(0))

let tests =
  [ Alcotest.test_case "sccs agree with recursive reference" `Quick
      test_sccs_agree;
    Alcotest.test_case "reachability agrees with naive fixpoint" `Quick
      test_reachable_agree;
    Alcotest.test_case "reverse transposes the edge multiset" `Quick
      test_reverse_edge_set;
    Alcotest.test_case "condensation is a sound acyclic DAG" `Quick
      test_condense_sound;
    Alcotest.test_case "good-SCC queries match Buchi emptiness" `Quick
      test_good_scc_consistent;
    Alcotest.test_case "empty graph" `Quick test_empty_graph;
    Alcotest.test_case "self-loop singleton is nontrivial" `Quick
      test_self_loop_singleton;
    Alcotest.test_case "single SCC and its condensation" `Quick
      test_single_scc;
    Alcotest.test_case "edgeless graph" `Quick test_no_edges;
    Alcotest.test_case "labeled access and storage order" `Quick
      test_labeled_access;
    Alcotest.test_case "builder validation" `Quick test_builder_validation;
    Alcotest.test_case "deep path does not overflow the stack" `Quick
      test_deep_path_no_overflow ]
