#!/usr/bin/env python3
"""Validate the daemon's sl-status/1 introspection bodies, for CI.

  status_check.py status FILE             GET /status body
  status_check.py healthz FILE            GET /healthz body
  status_check.py traces FILE             GET /traces body
  status_check.py monitors FILE OFFLINE   GET /monitors body, cross-checked
                                          against the offline
                                          `slc monitor --json` report

FILE may be the raw JSON body or a full HTTP/1.0 response (headers are
stripped). Each mode checks the schema tag and the field shape; the
monitors mode additionally requires every monitor row's verdict census
(tripped / live+retired_admissible) to equal the per-prop verdict
counts of the offline report exactly.
"""

import json
import sys

SCHEMA = "sl-status/1"


def body_of(path):
    with open(path, "rb") as f:
        raw = f.read()
    if raw.startswith(b"HTTP/"):
        head, _, rest = raw.partition(b"\r\n\r\n")
        first = head.split(b"\r\n", 1)[0].decode()
        assert " 200 " in first + " ", f"non-200 response: {first}"
        raw = rest
    return json.loads(raw)


def expect(doc, fields):
    for name, ty in fields.items():
        assert name in doc, f"missing field {name!r}"
        assert isinstance(doc[name], ty), \
            f"field {name!r}: expected {ty}, got {type(doc[name])}"


def check_common(doc, typ):
    expect(doc, {"schema": str, "type": str})
    assert doc["schema"] == SCHEMA, f"schema {doc['schema']!r} != {SCHEMA!r}"
    assert doc["type"] == typ, f"type {doc['type']!r} != {typ!r}"


def check_status(doc):
    check_common(doc, "status")
    expect(doc, {
        "version": str, "uptime_s": (int, float), "fingerprint": str,
        "props": int, "monitors": int, "jobs": int, "traces": int,
        "events": int, "live": int, "tripped": int,
        "retired_admissible": int, "connections": list, "reloads": dict,
        "cache": dict, "obs": dict,
    })
    for c in doc["connections"]:
        expect(c, {"id": int, "listener": str, "mode": str, "lines": int,
                   "events": int, "errors": int, "pending_out": int,
                   "stalled": bool})
    expect(doc["reloads"], {"count": int, "failures": int, "history": list})
    expect(doc["cache"], {"hits": int, "misses": int, "stores": int,
                          "hit_ratio": (int, float)})
    expect(doc["obs"], {"enabled": bool, "spans_dropped": int})
    assert doc["uptime_s"] >= 0
    return (f"status ok: {doc['events']} events, {doc['traces']} traces, "
            f"{len(doc['connections'])} connections")


def check_healthz(doc):
    check_common(doc, "healthz")
    expect(doc, {"status": str, "uptime_s": (int, float)})
    assert doc["status"] == "ok"
    return f"healthz ok: uptime {doc['uptime_s']:.1f}s"


def check_traces(doc):
    check_common(doc, "traces")
    expect(doc, {"total": int, "truncated": bool, "traces": list})
    for row in doc["traces"]:
        expect(row, {"id": int, "name": str, "events": int, "live": int,
                     "tripped": int})
    return f"traces ok: {len(doc['traces'])} of {doc['total']} rows"


def offline_verdicts(path):
    """prop name -> (violations, admissibles) over the offline report."""
    with open(path) as f:
        rep = json.load(f)
    counts = {}
    for tr in rep["traces"]:
        for v in tr["verdicts"]:
            viol, adm = counts.get(v["prop"], (0, 0))
            if v["verdict"] == "violation":
                viol += 1
            elif v["verdict"] == "admissible":
                adm += 1
            counts[v["prop"]] = (viol, adm)
    return counts


def check_monitors(doc, offline_path):
    check_common(doc, "monitors")
    expect(doc, {"fingerprint": str, "traces": int, "monitors": list})
    offline = offline_verdicts(offline_path)
    for row in doc["monitors"]:
        expect(row, {"index": int, "key": str, "props": list,
                     "vacuous": bool, "pre_tripped": bool, "live": int,
                     "tripped": int, "retired_admissible": int})
        assert len(row["key"]) == 16, f"key {row['key']!r} not a 64-bit hash"
        assert row["props"], f"monitor {row['index']} names no props"
        if row["vacuous"]:
            assert (row["live"], row["tripped"], row["retired_admissible"]) \
                == (0, 0, 0), f"vacuous monitor {row['index']} has counts"
            continue
        for prop in row["props"]:
            assert prop in offline, f"prop {prop!r} absent offline"
            viol, adm = offline[prop]
            assert row["tripped"] == viol, (
                f"monitor {row['index']} ({prop}): tripped "
                f"{row['tripped']} != offline violations {viol}")
            assert row["live"] + row["retired_admissible"] == adm, (
                f"monitor {row['index']} ({prop}): live+retired "
                f"{row['live'] + row['retired_admissible']} != offline "
                f"admissible {adm}")
    return f"monitors ok: {len(doc['monitors'])} rows match offline report"


def main():
    mode, path = sys.argv[1], sys.argv[2]
    doc = body_of(path)
    if mode == "status":
        msg = check_status(doc)
    elif mode == "healthz":
        msg = check_healthz(doc)
    elif mode == "traces":
        msg = check_traces(doc)
    elif mode == "monitors":
        msg = check_monitors(doc, sys.argv[3])
    else:
        print(f"unknown mode {mode}", file=sys.stderr)
        return 2
    print(msg)
    return 0


if __name__ == "__main__":
    sys.exit(main())
