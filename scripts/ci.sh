#!/bin/sh
# CI smoke: build everything (library, CLI, examples, bench harness),
# run the full test suite, run every example program, exercise the CLI,
# then regenerate the benchmark trajectory JSON (writes BENCH_PR3.json
# at the repo root, with ratios against the tracked BENCH_PR2.json).
# Run from the repository root.
set -eu

dune build @runtest
dune build bin examples bench

# Examples are documentation that must keep executing.
for ex in quickstart ltl_classification buchi_decomposition \
          ctl_classification security_monitor model_checking; do
  echo "--- examples/$ex"
  dune exec "examples/$ex.exe" > /dev/null
done

# CLI smoke: one subcommand of each flavour.
dune exec bin/slc.exe -- classify "a & F !a" > /dev/null
dune exec bin/slc.exe -- stats "G (a -> F !a)" > /dev/null
dune exec bin/slc.exe -- theorems > /dev/null

# Runtime-monitoring smoke: the checked-in example props/trace pair must
# produce exactly this verdict summary, with exit code 1 (violations
# found, inputs well-formed).
echo "--- slc monitor smoke"
status=0
out=$(dune exec bin/slc.exe -- monitor --props examples/monitor.props \
        --trace examples/monitor.events) || status=$?
[ "$status" -eq 1 ]
echo "$out" | grep -q \
  "summary: traces=2 events=7 props=5 monitors=3 violations=3 vacuous=2 live=1 tripped=2 retired_admissible=1"
echo "$out" | grep -q "VIOLATION G (a -> X !a) at event 4"
echo "$out" | grep -Fq 'props: 5 loaded, 3 distinct monitor(s), 2 vacuous'

# Bench smoke + perf trajectory.
dune exec bench/main.exe -- bench json
