#!/bin/sh
# CI smoke: build + full test suite, then regenerate the benchmark
# trajectory JSON (writes BENCH_PR1.json at the repo root). Run from the
# repository root.
set -eu

dune build @runtest
dune exec bench/main.exe -- bench json
