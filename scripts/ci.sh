#!/bin/sh
# CI smoke: build everything (library, CLI, examples, bench harness),
# run the full test suite, run every example program, exercise the CLI,
# then regenerate the benchmark trajectory JSON (writes BENCH_PR2.json
# at the repo root, with ratios against the tracked BENCH_PR1.json).
# Run from the repository root.
set -eu

dune build @runtest
dune build bin examples bench

# Examples are documentation that must keep executing.
for ex in quickstart ltl_classification buchi_decomposition \
          ctl_classification security_monitor model_checking; do
  echo "--- examples/$ex"
  dune exec "examples/$ex.exe" > /dev/null
done

# CLI smoke: one subcommand of each flavour.
dune exec bin/slc.exe -- classify "a & F !a" > /dev/null
dune exec bin/slc.exe -- stats "G (a -> F !a)" > /dev/null
dune exec bin/slc.exe -- theorems > /dev/null

# Bench smoke + perf trajectory.
dune exec bench/main.exe -- bench json
