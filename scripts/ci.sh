#!/bin/sh
# CI smoke: build everything (library, CLI, examples, bench harness),
# run the full test suite (once at the default pool width and once with
# SLC_JOBS=4 so every parallel path runs sharded), run every example
# program, exercise the CLI (including the observability surface:
# --metrics / --trace-out, the -j byte-identity cross-checks, and the
# daemon's /status introspection endpoints + slc top), then regenerate
# the benchmark trajectory JSON (writes BENCH_PR9.json at the
# repo root, with ratios against the most recent tracked BENCH_PR*.json).
# Run from the repository root.
set -eu

dune build @runtest
dune build bin examples bench

# The whole suite again with the process-default pool width forced to 4:
# every ?jobs-defaulted path (engine, registry, complementation, theorem
# sweeps) now runs its parallel code under the existing pins.
echo "--- dune runtest with SLC_JOBS=4"
SLC_JOBS=4 dune runtest --force

# Examples are documentation that must keep executing.
for ex in quickstart ltl_classification buchi_decomposition \
          ctl_classification security_monitor model_checking; do
  echo "--- examples/$ex"
  dune exec "examples/$ex.exe" > /dev/null
done

# CLI smoke: one subcommand of each flavour.
dune exec bin/slc.exe -- classify "a & F !a" > /dev/null
dune exec bin/slc.exe -- stats "G (a -> F !a)" > /dev/null
dune exec bin/slc.exe -- theorems > /dev/null

# Runtime-monitoring smoke: the checked-in example props/trace pair must
# produce exactly this verdict summary, with exit code 1 (violations
# found, inputs well-formed).
echo "--- slc monitor smoke"
status=0
out=$(dune exec bin/slc.exe -- monitor --props examples/monitor.props \
        --trace examples/monitor.events) || status=$?
[ "$status" -eq 1 ]
echo "$out" | grep -q \
  "summary: traces=2 events=7 props=5 monitors=3 violations=3 vacuous=2 live=1 tripped=2 retired_admissible=1"
echo "$out" | grep -q "VIOLATION G (a -> X !a) at event 4"
echo "$out" | grep -Fq 'props: 5 loaded, 3 distinct monitor(s), 2 vacuous'

# Parallel byte-identity: the same monitor run at -j 1 and -j 4 must
# produce byte-for-byte identical reports (modulo the wall-clock
# events_per_s rate, which differs between any two runs), and the
# rank-based complement must print the identical automaton. These are
# the end-to-end form of the jobs-invariance QCheck pins.
echo "--- slc -j byte-identity smoke"
j1=$(mktemp /tmp/slc-ci.XXXXXX.j1) ; j4=$(mktemp /tmp/slc-ci.XXXXXX.j4)
for j in 1 4; do
  status=0
  dune exec bin/slc.exe -- monitor -j "$j" --props examples/monitor.props \
    --trace examples/monitor.events --json > "$j1.raw" || status=$?
  [ "$status" -eq 1 ]
  sed 's/"events_per_s": [0-9.]*/"events_per_s": X/' "$j1.raw" \
    > "$([ "$j" -eq 1 ] && echo "$j1" || echo "$j4")"
done
rm -f "$j1.raw"
diff "$j1" "$j4" || { echo "monitor -j 1 vs -j 4 reports differ"; exit 1; }
dune exec bin/slc.exe -- complement -j 1 "F a" > "$j1"
dune exec bin/slc.exe -- complement -j 4 "F a" > "$j4"
diff "$j1" "$j4" || { echo "complement -j 1 vs -j 4 differ"; exit 1; }
rm -f "$j1" "$j4"

# Observability smoke: the same run with metrics collection on must keep
# the same exit code and verdict summary, print the engine/registry
# metric families in the Prometheus exposition, and emit well-formed
# trace-event JSONL (one JSON object per line).
echo "--- slc monitor --metrics smoke"
trace_out=$(mktemp /tmp/slc-ci.XXXXXX.trace.jsonl)
status=0
mout=$(dune exec bin/slc.exe -- monitor --props examples/monitor.props \
         --trace examples/monitor.events --metrics - \
         --trace-out "$trace_out") || status=$?
[ "$status" -eq 1 ]
echo "$mout" | grep -q \
  "summary: traces=2 events=7 props=5 monitors=3 violations=3 vacuous=2 live=1 tripped=2 retired_admissible=1"
for metric in engine_events_total engine_chunks_total \
              engine_retired_tripped_total engine_retired_admissible_total \
              engine_live_monitors engine_chunk_latency_ns_count \
              engine_minor_words_total registry_props_total \
              registry_monitors_total registry_hashcons_hits_total \
              registry_compile_ns_count ltl_translate_runs_total \
              nfa_determinize_runs_total digraph_scc_runs_total; do
  echo "$mout" | grep -q "^$metric" \
    || { echo "missing metric: $metric"; exit 1; }
done
echo "$mout" | grep -q "^engine_events_total 7$"
echo "$mout" | grep -q "^registry_hashcons_hits_total 2$"
python3 -c '
import json, sys
lines = [l for l in open(sys.argv[1]) if l.strip()]
assert lines, "trace JSONL is empty"
for l in lines:
    ev = json.loads(l)
    assert ev["ph"] == "X" and "name" in ev and "dur" in ev, ev
print(f"trace JSONL ok: {len(lines)} events")
' "$trace_out"
rm -f "$trace_out"

# Compile-cache smoke: a cold run against an empty cache directory must
# store entries and change nothing about the report; the warm rerun must
# serve every probe from the cache (cache_hits_total = distinct sources,
# cache_misses_total = 0); and the cached reports — cold, warm, warm at
# -j 4 — must be byte-identical to the uncached report (modulo the
# wall-clock events_per_s rate). This is the end-to-end form of the
# cold = warm = uncached test pin.
echo "--- slc --cache cold/warm smoke"
cache_dir=$(mktemp -d /tmp/slc-ci-cache.XXXXXX)
nocache=$(mktemp /tmp/slc-ci.XXXXXX.nocache)
cached=$(mktemp /tmp/slc-ci.XXXXXX.cached)
run_monitor_on() { # run_monitor_on OUT TRACE [extra flags...]
  _out=$1; _trace=$2; shift 2
  status=0
  dune exec bin/slc.exe -- monitor --props examples/monitor.props \
    --trace "$_trace" --json "$@" > "$_out.raw" || status=$?
  [ "$status" -eq 1 ]
  sed 's/"events_per_s": [0-9.]*/"events_per_s": X/' "$_out.raw" > "$_out"
  rm -f "$_out.raw"
}
run_monitor() { # run_monitor OUT [extra flags...]
  _o=$1; shift
  run_monitor_on "$_o" examples/monitor.events "$@"
}
run_monitor "$nocache"
run_monitor "$cached" --cache "$cache_dir"   # cold: misses, stores
diff "$nocache" "$cached" || { echo "cold cached report differs"; exit 1; }
[ "$(ls "$cache_dir" | wc -l)" -gt 0 ] || { echo "cold run stored nothing"; exit 1; }
run_monitor "$cached" --cache "$cache_dir"   # warm: every probe hits
diff "$nocache" "$cached" || { echo "warm cached report differs"; exit 1; }
run_monitor "$cached" --cache "$cache_dir" -j 4
diff "$nocache" "$cached" || { echo "warm -j 4 cached report differs"; exit 1; }
status=0
wout=$(dune exec bin/slc.exe -- monitor --props examples/monitor.props \
         --trace examples/monitor.events --cache "$cache_dir" \
         --metrics -) || status=$?
[ "$status" -eq 1 ]
echo "$wout" | grep -q "^cache_hits_total 5$" \
  || { echo "warm run did not hit the cache"; exit 1; }
echo "$wout" | grep -q "^cache_misses_total 0$" \
  || { echo "warm run missed the cache"; exit 1; }
# SLC_CACHE is the env-default spelling of --cache.
status=0
SLC_CACHE="$cache_dir" dune exec bin/slc.exe -- monitor \
  --props examples/monitor.props --trace examples/monitor.events --json \
  > "$cached.raw" || status=$?
[ "$status" -eq 1 ]
sed 's/"events_per_s": [0-9.]*/"events_per_s": X/' "$cached.raw" > "$cached"
rm -f "$cached.raw"
diff "$nocache" "$cached" || { echo "SLC_CACHE report differs"; exit 1; }
rm -f "$nocache" "$cached"

# Session snapshot/resume smoke: feed the first half of the stream and
# snapshot, resume in a fresh process on the second half, and the final
# report must be byte-identical to the uninterrupted run (modulo the
# wall-clock events_per_s rate) — at -j 1, at -j 4, and resuming with a
# warm --cache (the registry is recompiled from the cache and must
# fingerprint identically). A corrupted snapshot must refuse to resume
# with exit 2, never a wrong-but-running session.
echo "--- slc monitor --snapshot/--resume smoke"
snap=$(mktemp /tmp/slc-ci.XXXXXX.slsession)
half1=$(mktemp /tmp/slc-ci.XXXXXX.half1)
half2=$(mktemp /tmp/slc-ci.XXXXXX.half2)
resumed=$(mktemp /tmp/slc-ci.XXXXXX.resumed)
full=$(mktemp /tmp/slc-ci.XXXXXX.full)
nlines=$(wc -l < examples/monitor.events)
mid=$((nlines / 2))
head -n "$mid" examples/monitor.events > "$half1"
tail -n +"$((mid + 1))" examples/monitor.events > "$half2"
for j in 1 4; do
  run_monitor "$full" -j "$j"
  status=0
  dune exec bin/slc.exe -- monitor -j "$j" --props examples/monitor.props \
    --trace "$half1" --snapshot "$snap" > /dev/null || status=$?
  [ "$status" -le 1 ] || { echo "snapshot run failed"; exit 1; }
  run_monitor_on "$resumed" "$half2" -j "$j" --resume "$snap"
  diff "$full" "$resumed" \
    || { echo "resumed -j $j report differs from uninterrupted"; exit 1; }
done
# Resume with a warm compile cache: recompiled-from-cache registry must
# accept the snapshot and reproduce the same report.
sess_cache_dir=$(mktemp -d /tmp/slc-ci-cache.XXXXXX)
run_monitor "$full"
status=0
dune exec bin/slc.exe -- monitor --props examples/monitor.props \
  --trace "$half1" --cache "$sess_cache_dir" --snapshot "$snap" > /dev/null \
  || status=$?
[ "$status" -le 1 ] || { echo "cached snapshot run failed"; exit 1; }
run_monitor_on "$resumed" "$half2" --resume "$snap" --cache "$sess_cache_dir"
diff "$full" "$resumed" \
  || { echo "cache-warmed resume report differs"; exit 1; }
# Periodic snapshots leave a valid final snapshot behind.
status=0
dune exec bin/slc.exe -- monitor --props examples/monitor.props \
  --trace examples/monitor.events --snapshot "$snap" --snapshot-every 2 \
  > /dev/null || status=$?
[ "$status" -eq 1 ] || { echo "--snapshot-every run failed"; exit 1; }
# A corrupted snapshot must exit 2.
printf garbage > "$snap"
status=0
dune exec bin/slc.exe -- monitor --props examples/monitor.props \
  --trace "$half2" --resume "$snap" > /dev/null 2>&1 || status=$?
[ "$status" -eq 2 ] || { echo "corrupt snapshot not rejected"; exit 1; }
# ... and a snapshot from a different registry must exit 2 too.
dune exec bin/slc.exe -- monitor --props examples/monitor.props \
  --trace "$half1" --snapshot "$snap" > /dev/null || true
otherprops=$(mktemp /tmp/slc-ci.XXXXXX.props)
printf 'G a\n' > "$otherprops"
status=0
dune exec bin/slc.exe -- monitor --props "$otherprops" \
  --trace "$half2" --resume "$snap" > /dev/null 2>&1 || status=$?
[ "$status" -eq 2 ] || { echo "foreign snapshot not rejected"; exit 1; }
rm -f "$snap" "$half1" "$half2" "$resumed" "$full" "$otherprops"
rm -rf "$sess_cache_dir"

# Pack smoke: compile the example props into one artifact, list it back.
echo "--- slc pack/unpack smoke"
pack=$(mktemp /tmp/slc-ci.XXXXXX.slpack)
dune exec bin/slc.exe -- pack --props examples/monitor.props -o "$pack" \
  | grep -q "packed 5 props (3 distinct monitors)"
dune exec bin/slc.exe -- unpack "$pack" | grep -q "alphabet: 2"
# Corruption must read as a clean CLI error, not a crash.
printf garbage > "$pack"
status=0
dune exec bin/slc.exe -- unpack "$pack" > /dev/null 2>&1 || status=$?
[ "$status" -eq 2 ] || { echo "corrupt pack not rejected"; exit 1; }
rm -f "$pack"
rm -rf "$cache_dir"

# Version smoke: the CLI must advertise the artifact kinds it reads.
echo "--- slc version smoke"
vout=$(dune exec bin/slc.exe -- version)
echo "$vout" | grep -q "^slc 1.0.0$"
echo "$vout" | grep -q "artifact format: sl-artifact/1"
echo "$vout" | grep -q "dfa(1), buchi(2), digraph(3), pack(4), session(5)"
echo "$vout" | grep -q "sl-monitor-report/1"
echo "$vout" | grep -q "sl-status/1"

# Serving smoke: the daemon must agree with the offline pipeline.
# Two concurrent clients split the example stream by trace (per-trace
# event order is the only order that matters); client A fires SIGHUP
# mid-stream, so the hot reload lands with traces in flight. The union
# of the served verdict records, order-normalized, must byte-diff clean
# against the offline `slc monitor --json` report — at -j 1 and -j 4.
# The daemon binary is invoked directly (everything is already built;
# `dune exec` would contend on the build lock with the daemon running).
echo "--- slc serve smoke"
SLC=_build/default/bin/slc.exe
servedir=$(mktemp -d /tmp/slc-ci-serve.XXXXXX)
sock="$servedir/sl.sock"
wait_sock() {
  i=0
  while [ ! -S "$sock" ]; do
    i=$((i + 1))
    [ "$i" -le 100 ] || { echo "daemon never bound $sock"; exit 1; }
    sleep 0.1
  done
}
scrape() { # scrape PATH OUT  — one-shot HTTP GET over the stream socket
  printf 'GET %s HTTP/1.0\r\n\r\n' "$1" \
    | python3 -c '
import socket, sys
s = socket.socket(socket.AF_UNIX); s.settimeout(30)
s.connect(sys.argv[1]); s.sendall(sys.stdin.buffer.read())
s.shutdown(socket.SHUT_WR)
buf = b""
while True:
    d = s.recv(1 << 16)
    if not d: break
    buf += d
sys.stdout.buffer.write(buf)
' "$sock" > "$2"
}
# Split the example stream by trace id (per-trace event order is all
# that matters; the two clients interleave freely).
awk '$1 == "req-1"' examples/monitor.events > "$servedir/a.events"
awk '$1 == "req-2"' examples/monitor.events > "$servedir/b.events"
for j in 1 4; do
  status=0
  dune exec bin/slc.exe -- monitor -j "$j" --props examples/monitor.props \
    --trace examples/monitor.events --json > "$servedir/offline.json" \
    || status=$?
  [ "$status" -eq 1 ]
  python3 scripts/serve_norm.py offline "$servedir/offline.json" \
    > "$servedir/offline.norm"
  "$SLC" serve -j "$j" --props examples/monitor.props --socket "$sock" \
    --quiet 2> "$servedir/serve.log" &
  daemon=$!
  wait_sock
  python3 scripts/serve_client.py "$sock" "$servedir/a.events" \
    "$servedir/a.out" --hup "$daemon" --at-line 2 &
  clienta=$!
  python3 scripts/serve_client.py "$sock" "$servedir/b.events" \
    "$servedir/b.out" &
  clientb=$!
  wait "$clienta"; wait "$clientb"
  kill -TERM "$daemon"; wait "$daemon" \
    || { echo "serve -j $j did not shut down cleanly"; exit 1; }
  python3 scripts/serve_norm.py served "$servedir/a.out" "$servedir/b.out" \
    > "$servedir/served.norm"
  diff "$servedir/offline.norm" "$servedir/served.norm" \
    || { echo "served verdicts differ from offline at -j $j"; exit 1; }
done
[ ! -S "$sock" ] || { echo "stale socket left behind"; exit 1; }

# Snapshot-then-restart: SIGTERM writes the session snapshot; a fresh
# daemon --resume's it, takes the second half of the stream, and its
# summary counters must equal the uninterrupted run's.
echo "--- slc serve snapshot/restart smoke"
nlines=$(wc -l < examples/monitor.events)
mid=$((nlines / 2))
head -n "$mid" examples/monitor.events > "$servedir/half1"
tail -n +"$((mid + 1))" examples/monitor.events > "$servedir/half2"
"$SLC" serve --props examples/monitor.props --socket "$sock" \
  --snapshot "$servedir/snap" --quiet 2>> "$servedir/serve.log" &
daemon=$!
wait_sock
python3 scripts/serve_client.py "$sock" "$servedir/half1" "$servedir/h1.out"
kill -TERM "$daemon"; wait "$daemon" \
  || { echo "snapshot shutdown failed"; exit 1; }
[ -s "$servedir/snap" ] || { echo "no snapshot written"; exit 1; }
"$SLC" serve --props examples/monitor.props --socket "$sock" \
  --resume "$servedir/snap" --quiet 2>> "$servedir/serve.log" &
daemon=$!
wait_sock
python3 scripts/serve_client.py "$sock" "$servedir/half2" "$servedir/h2.out"
# Scrape /metrics over the same socket while the daemon is still up.
scrape /metrics "$servedir/metrics.out"
# The introspection endpoints, on the same one-shot HTTP path: every
# body must be valid sl-status/1 JSON, and /monitors' per-monitor
# census must equal the uninterrupted offline report's verdict counts
# even though this daemon only stepped the second half itself (the
# census reads the resumed trace table, not process-local counters).
echo "--- slc serve /status introspection smoke"
scrape /status "$servedir/status.out"
python3 scripts/status_check.py status "$servedir/status.out"
scrape /healthz "$servedir/healthz.out"
python3 scripts/status_check.py healthz "$servedir/healthz.out"
scrape /traces "$servedir/traces.out"
python3 scripts/status_check.py traces "$servedir/traces.out"
scrape /monitors "$servedir/monitors.out"
python3 scripts/status_check.py monitors "$servedir/monitors.out" \
  "$servedir/offline.json"
# slc top: --once --json emits the raw /status body; the dashboard
# renders without a terminal.
echo "--- slc top smoke"
"$SLC" top --socket "$sock" --once --json > "$servedir/top.json"
python3 scripts/status_check.py status "$servedir/top.json"
"$SLC" top --socket "$sock" --once | grep -q "slc top" \
  || { echo "slc top dashboard missing header"; exit 1; }
kill -TERM "$daemon"; wait "$daemon" \
  || { echo "resumed daemon shutdown failed"; exit 1; }
grep -q "HTTP/1.0 200 OK" "$servedir/metrics.out"
# engine_events_total counts events fed in THIS process: the resumed
# daemon stepped only the second half (4 of the 7 events) itself.
grep -q "^engine_events_total 4$" "$servedir/metrics.out"
grep -q "^serve_connections_total 2$" "$servedir/metrics.out"
grep -q "^serve_bytes_in_total" "$servedir/metrics.out"
# The resumed run's final summary must carry the uninterrupted totals
# (2 traces, 7 events, 2 tripped / 1 admissible / 1 live monitors).
grep -q '"type": "summary", "traces": 2, "events": 7, "props": 5, "monitors": 3, "tripped": 2, "retired_admissible": 1, "live": 1' \
  "$servedir/h2.out" \
  || { echo "resumed serve summary differs from uninterrupted"; exit 1; }

# Soak: a million events through the socket, byte-equivalent
# (order-normalized) to the offline monitor — at -j 1 and -j 4.
echo "--- slc serve soak (1M events)"
python3 -c '
import random, sys
rng = random.Random(20260808)
with open(sys.argv[1], "w") as f:
    for _ in range(1_000_000):
        f.write(f"s{rng.randrange(16)} {rng.randrange(2)}\n")
' "$servedir/soak.events"
for j in 1 4; do
  status=0
  "$SLC" monitor -j "$j" --props examples/monitor.props \
    --trace "$servedir/soak.events" --json > "$servedir/soak.json" \
    || status=$?
  [ "$status" -le 1 ] || { echo "offline soak run failed"; exit 1; }
  python3 scripts/serve_norm.py offline "$servedir/soak.json" \
    > "$servedir/soak-offline.norm"
  "$SLC" serve -j "$j" --props examples/monitor.props --socket "$sock" \
    --quiet 2>> "$servedir/serve.log" &
  daemon=$!
  wait_sock
  # Stream the million events in the background and scrape the
  # introspection endpoints mid-soak: every body must parse as valid
  # sl-status/1 JSON while the engine is under load.
  python3 scripts/serve_client.py "$sock" "$servedir/soak.events" \
    "$servedir/soak.out" &
  soaker=$!
  for probe in 1 2 3; do
    scrape /status "$servedir/soak-status.out"
    python3 scripts/status_check.py status "$servedir/soak-status.out" \
      > /dev/null
    scrape /healthz "$servedir/soak-healthz.out"
    python3 scripts/status_check.py healthz "$servedir/soak-healthz.out" \
      > /dev/null
    sleep 0.2
  done
  echo "mid-soak /status scrapes ok"
  wait "$soaker" || { echo "soak client failed"; exit 1; }
  # Stream fully fed: the per-monitor census must now equal the offline
  # report's verdict counts exactly.
  scrape /monitors "$servedir/soak-monitors.out"
  python3 scripts/status_check.py monitors "$servedir/soak-monitors.out" \
    "$servedir/soak.json"
  kill -TERM "$daemon"; wait "$daemon" \
    || { echo "soak daemon shutdown failed"; exit 1; }
  python3 scripts/serve_norm.py served "$servedir/soak.out" \
    > "$servedir/soak-served.norm"
  diff "$servedir/soak-offline.norm" "$servedir/soak-served.norm" \
    || { echo "soak: served verdicts differ from offline at -j $j"; exit 1; }
done
rm -rf "$servedir"

# Bench smoke + perf trajectory, then the warn-only regression report
# against the previous PR's tracked trajectory (microbench noise on a
# shared container makes a hard gate flaky; the byte-identity checks
# above are the gates).
dune exec bench/main.exe -- bench json
if [ -f BENCH_PR9.json ] && [ -f BENCH_PR10.json ]; then
  python3 scripts/bench_diff.py BENCH_PR9.json BENCH_PR10.json || true
fi
