#!/usr/bin/env python3
"""Compare two BENCH_PR*.json trajectory files bench by bench.

Usage: bench_diff.py BASELINE.json CURRENT.json [--threshold PCT]

Reads the "results" arrays of both files (the line-per-record JSON the
bench harness writes), matches benches by name, and flags every bench
whose ns/run regressed by more than the threshold (default 10%).

Warn-only by design: microbench noise on a shared CI container would
make a hard gate flaky, so the exit code is always 0 — the report is
for the human reading the CI log, the byte-identity checks above it
are the gates.
"""

import json
import sys


def read_results(path):
    with open(path) as f:
        doc = json.load(f)
    out = {}
    for rec in doc.get("results", []):
        name, ns = rec.get("name"), rec.get("ns_per_run")
        if isinstance(name, str) and isinstance(ns, (int, float)):
            out[name] = float(ns)
    return out


def main():
    args = [a for a in sys.argv[1:] if not a.startswith("--")]
    threshold = 10.0
    for a in sys.argv[1:]:
        if a.startswith("--threshold"):
            threshold = float(a.split("=", 1)[1] if "=" in a else args.pop())
    if len(args) != 2:
        print(__doc__.strip(), file=sys.stderr)
        return 0  # warn-only: never fail the pipeline, even on misuse
    base_path, cur_path = args
    try:
        base, cur = read_results(base_path), read_results(cur_path)
    except (OSError, json.JSONDecodeError) as e:
        print(f"bench-diff: cannot read inputs: {e} (skipping)")
        return 0
    shared = sorted(set(base) & set(cur))
    if not shared:
        print(f"bench-diff: no shared benches between {base_path} and {cur_path}")
        return 0
    regressions, improvements = [], []
    for name in shared:
        if base[name] <= 0.0:
            continue
        delta = (cur[name] - base[name]) / base[name] * 100.0
        if delta > threshold:
            regressions.append((delta, name))
        elif delta < -threshold:
            improvements.append((delta, name))
    print(
        f"bench-diff: {cur_path} vs {base_path}: {len(shared)} shared benches, "
        f"{len(regressions)} regressed >{threshold:.0f}%, "
        f"{len(improvements)} improved >{threshold:.0f}%"
    )
    for delta, name in sorted(regressions, reverse=True):
        print(f"  REGRESSION {name}: {base[name]:.1f} -> {cur[name]:.1f} ns/run (+{delta:.1f}%)")
    for delta, name in sorted(improvements):
        print(f"  improved   {name}: {base[name]:.1f} -> {cur[name]:.1f} ns/run ({delta:.1f}%)")
    if regressions:
        print("bench-diff: warn-only — regressions above are not a CI failure")
    return 0


if __name__ == "__main__":
    sys.exit(main())
