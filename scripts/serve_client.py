#!/usr/bin/env python3
"""Line-protocol client for the `slc serve` CI smoke.

Streams an event file into the daemon's Unix socket, half-closes, and
writes everything the daemon sends back (NDJSON records) to a file.
With --hup PID --at-line N it pauses after N lines, sends SIGHUP to the
daemon, and resumes — the mid-stream hot-reload drill.
"""

import argparse
import os
import signal
import socket
import sys
import time


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("sock")
    ap.add_argument("events")
    ap.add_argument("out")
    ap.add_argument("--hup", type=int, default=0, metavar="PID")
    ap.add_argument("--at-line", type=int, default=0, metavar="N")
    args = ap.parse_args()

    with open(args.events, "rb") as f:
        lines = f.readlines()

    s = socket.socket(socket.AF_UNIX)
    s.settimeout(120)
    s.connect(args.sock)

    if args.hup:
        cut = min(args.at_line, len(lines))
        s.sendall(b"".join(lines[:cut]))
        time.sleep(0.3)  # let the daemon drain the first half
        os.kill(args.hup, signal.SIGHUP)
        time.sleep(0.5)  # and commit the reload between loop rounds
        s.sendall(b"".join(lines[cut:]))
    else:
        s.sendall(b"".join(lines))
    s.shutdown(socket.SHUT_WR)

    buf = b""
    while True:
        d = s.recv(1 << 16)
        if not d:
            break
        buf += d
    s.close()

    with open(args.out, "wb") as f:
        f.write(buf)
    return 0


if __name__ == "__main__":
    sys.exit(main())
