#!/usr/bin/env python3
"""Normalize verdicts to a canonical line set, for byte-diffing the
served NDJSON stream against the offline `slc monitor --json` report.

  serve_norm.py served FILE...   union of the NDJSON streams' verdict
                                 records as sorted `trace|prop|verdict|pos`
                                 lines (incremental records and the EOF
                                 dump collapse into one tuple each)
  serve_norm.py offline FILE     the JSON report's verdict table in the
                                 same normal form

Two runs are verdict-equivalent iff the outputs are byte-identical.
"""

import json
import sys


def tup(trace, prop, verdict, position):
    return f"{trace}|{prop}|{verdict}|{position}"


def served(paths):
    out = set()
    for path in paths:
        with open(path) as f:
            for line in f:
                line = line.strip()
                if not line or not line.startswith("{"):
                    continue
                rec = json.loads(line)
                if rec.get("type") != "verdict":
                    continue
                out.add(
                    tup(rec["trace"], rec["prop"], rec["verdict"],
                        rec.get("position", -1))
                )
    return out


def offline(path):
    with open(path) as f:
        rep = json.loads(f.read())
    out = set()
    for tr in rep["traces"]:
        for v in tr["verdicts"]:
            out.add(
                tup(tr["name"], v["prop"], v["verdict"],
                    v.get("position", -1))
            )
    return out


def main():
    mode = sys.argv[1]
    if mode == "served":
        tuples = served(sys.argv[2:])
    elif mode == "offline":
        tuples = offline(sys.argv[2])
    else:
        print(f"unknown mode {mode}", file=sys.stderr)
        return 2
    for t in sorted(tuples):
        print(t)
    return 0


if __name__ == "__main__":
    sys.exit(main())
