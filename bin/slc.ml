(* slc — safety/liveness classifier.

   Command-line front end for the library: classify and decompose LTL
   properties (Section 2 of the paper), regenerate the example tables
   (Sections 2.3 and 4.3), run the exhaustive lattice theorem checks
   (Section 3), and export the paper's Hasse diagrams. *)

open Cmdliner

module Formula = Sl_ltl.Formula
module Examples = Sl_ltl.Examples
module Translate = Sl_ltl.Translate
module Buchi = Sl_buchi.Buchi
module Decompose = Sl_buchi.Decompose
module Lattice = Sl_lattice.Lattice
module Named = Sl_lattice.Named
module Closure = Sl_lattice.Closure
module Finite_check = Sl_core.Finite_check

let formula_arg =
  let doc = "LTL formula over the proposition 'a' (e.g. \"a & F !a\")." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"FORMULA" ~doc)

let parse_formula s =
  match Formula.parse s with
  | Ok f -> Ok f
  | Error e -> Error (`Msg ("parse error: " ^ e))

(* Observability plumbing, shared by every subcommand: [--metrics DEST]
   turns the Sl_obs kernel on for the run and writes the Prometheus text
   exposition after the subcommand's own output; [--trace-out FILE]
   dumps the buffered spans as trace-event JSON lines. With neither flag
   the kernel stays dark and subcommands behave exactly as before. *)
module Obs = Sl_obs.Obs
module Pool = Sl_core.Pool

let jobs_arg =
  let doc =
    "Domains for the parallel execution kernel: the engine, registry \
     compilation, complementation and the theorem sweeps fan out over \
     $(docv) domains. Output is byte-identical at every value. Defaults \
     to the $(b,SLC_JOBS) environment variable, else 1."
  in
  Arg.(
    value
    & opt int (Pool.default_jobs ())
    & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let cache_arg =
  let doc =
    "Warm-start compile cache: probe $(docv) for previously compiled \
     monitors before translating a property, and store fresh compiles \
     there as versioned sl-artifact blobs (created if missing; corrupt \
     or stale entries are recompiled and healed, never an error). \
     Defaults to the $(b,SLC_CACHE) environment variable, else no \
     caching."
  in
  Arg.(value & opt (some string) None & info [ "cache" ] ~docv:"DIR" ~doc)

let metrics_arg =
  let doc =
    "Enable the observability kernel for this run and, after the \
     subcommand finishes, write every collected metric in the Prometheus \
     text exposition format to $(docv) ('-' for stdout)."
  in
  Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"DEST" ~doc)

let trace_out_arg =
  let doc =
    "Enable the observability kernel for this run and write the collected \
     spans as trace-event JSON lines (one chrome://tracing complete event \
     per line) to $(docv)."
  in
  Arg.(value & opt (some string) None & info [ "trace-out" ] ~docv:"FILE" ~doc)

let dump_metrics dest =
  match dest with
  | "-" -> print_string (Obs.Metrics.to_prometheus ()); flush stdout
  | file ->
      let oc = open_out file in
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () -> output_string oc (Obs.Metrics.to_prometheus ()))

let dump_trace file =
  let oc = open_out file in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> Obs.Span.write_jsonl oc)

let with_obs jobs cache metrics trace_out run =
  if jobs < 1 then begin
    Format.eprintf "slc: --jobs must be >= 1@.";
    124
  end
  else begin
    Pool.set_default_jobs jobs;
    (* [--cache DIR] overrides the [SLC_CACHE]-seeded process default;
       every registry the subcommand creates picks it up. *)
    Option.iter
      (fun d -> Sl_runtime.Cache.set_default_dir (Some d))
      cache;
    match (metrics, trace_out) with
    | None, None -> run ()
    | _ ->
        Obs.enable ();
        let code =
          match run () with
          | code -> code
          | exception e ->
              Obs.disable ();
              raise e
        in
        flush stdout;
        Option.iter dump_metrics metrics;
        Option.iter dump_trace trace_out;
        Obs.disable ();
        code
  end

(* Lift a [unit -> int] subcommand term into one that honours the
   shared flags: [-j] sets the process-wide default pool width before
   the subcommand runs, [--metrics]/[--trace-out] wrap it in the
   observability kernel. *)
let obs_term term =
  Term.(
    const with_obs $ jobs_arg $ cache_arg $ metrics_arg $ trace_out_arg $ term)

let classify_cmd =
  let run s =
    match parse_formula s with
    | Error (`Msg m) -> prerr_endline m; 1
    | Ok f ->
        let cls = Examples.classify f in
        Format.printf "%s: %s@." (Formula.to_string f)
          (Decompose.classification_to_string cls);
        0
  in
  Cmd.v
    (Cmd.info "classify" ~doc:"Classify an LTL property as safety/liveness")
    (obs_term Term.(const (fun s () -> run s) $ formula_arg))

let decompose_cmd =
  let run s =
    match parse_formula s with
    | Error (`Msg m) -> prerr_endline m; 1
    | Ok f ->
        let b = Examples.automaton f in
        let d = Decompose.decompose b in
        Format.printf "property: %s@." (Formula.to_string f);
        Format.printf "@.B (translated): %s@.%a@." (Buchi.size_info b)
          Buchi.pp b;
        Format.printf "@.B_S = bcl B (safety): %s@.%a@."
          (Buchi.size_info d.Decompose.safety) Buchi.pp d.Decompose.safety;
        Format.printf "@.B_L = B ∪ ¬B_S (liveness): %s@.%a@."
          (Buchi.size_info d.Decompose.liveness)
          Buchi.pp d.Decompose.liveness;
        (match Decompose.verify_exact d with
        | [] -> Format.printf "@.L(B) = L(B_S) ∩ L(B_L): verified@."; 0
        | fails ->
            List.iter
              (fun (c, diag) -> Format.printf "FAILED %s (%s)@." c diag)
              fails;
            1)
  in
  Cmd.v
    (Cmd.info "decompose"
       ~doc:"Decompose an LTL property into safety and liveness automata")
    (obs_term Term.(const (fun s () -> run s) $ formula_arg))

let stats_cmd =
  let run s =
    match parse_formula s with
    | Error (`Msg m) -> prerr_endline m; 1
    | Ok f ->
        let b = Examples.automaton f in
        let g = Buchi.graph b in
        let r = Sl_core.Digraph.sccs g in
        let nontrivial =
          Array.fold_left
            (fun acc nt -> if nt then acc + 1 else acc)
            0 r.Sl_core.Digraph.nontrivial
        in
        let reach = Buchi.reachable b in
        let live = Buchi.live_states b in
        let count a = Array.fold_left (fun acc x ->
            if x then acc + 1 else acc) 0 a in
        Format.printf "property:        %s@." (Formula.to_string f);
        Format.printf "states:          %d@." b.Buchi.nstates;
        Format.printf "transitions:     %d@." (Sl_core.Digraph.nedges g);
        Format.printf "reachable:       %d@." (count reach);
        Format.printf "live:            %d@." (count live);
        Format.printf "sccs:            %d (%d nontrivial)@."
          r.Sl_core.Digraph.count nontrivial;
        Format.printf "classification:  %s@."
          (Decompose.classification_to_string (Decompose.classify b));
        0
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "Print transition-graph statistics (states, edges, SCCs) and the \
          classification of an LTL property's automaton")
    (obs_term Term.(const (fun s () -> run s) $ formula_arg))

let rem_cmd =
  let run () =
    Examples.pp_table Format.std_formatter (Examples.table ());
    0
  in
  Cmd.v
    (Cmd.info "rem-table" ~doc:"Regenerate the Section 2.3 example table")
    (obs_term (Term.const run))

let ctl_cmd =
  let run () =
    Sl_ctl.Examples.pp_table Format.std_formatter
      (Sl_ctl.Examples.table ());
    0
  in
  Cmd.v
    (Cmd.info "ctl-table" ~doc:"Regenerate the Section 4.3 example table")
    (obs_term (Term.const run))

let lattice_names =
  [ ("n5", (Named.n5, Named.n5_label)); ("m3", (Named.m3, Named.m3_label));
    ("bool3", (Named.boolean 3, string_of_int));
    ("div30", (fst (Named.divisor 30), string_of_int)) ]

let dot_cmd =
  let name_arg =
    let doc = "Lattice name: n5, m3, bool3, div30." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"LATTICE" ~doc)
  in
  let run name =
    match List.assoc_opt name lattice_names with
    | None ->
        Format.eprintf "unknown lattice %s (try: %s)@." name
          (String.concat ", " (List.map fst lattice_names));
        1
    | Some (l, label) ->
        print_string (Lattice.to_dot ~label l);
        0
  in
  Cmd.v
    (Cmd.info "dot" ~doc:"Print a lattice's Hasse diagram in GraphViz form")
    (obs_term Term.(const (fun name () -> run name) $ name_arg))

let theorems_cmd =
  let run () =
    let ok = ref 0 and failed = ref 0 and skipped = ref [] in
    List.iter
      (fun (name, l) ->
        (* The theorems assume modular complemented lattices; lattices
           outside the hypotheses are reported as skipped, not failed. *)
        if Lattice.size l > 8 then skipped := (name ^ " (size)") :: !skipped
        else if not (Lattice.is_complemented l) then
          skipped := (name ^ " (not complemented)") :: !skipped
        else if not (Lattice.is_modular l) then
          skipped := (name ^ " (not modular)") :: !skipped
        else begin
          let reports = Finite_check.check_all_closures l in
          List.iter
            (fun (label, r) ->
              match r with
              | Ok () -> incr ok
              | Error e ->
                  incr failed;
                  Format.printf "%s/%s: %s@." name label e)
            reports
        end)
      Named.all_small;
    Format.printf
      "theorem checks across the lattice corpus: %d groups ok, %d failed@."
      !ok !failed;
    Format.printf "outside the hypotheses (skipped): %s@."
      (String.concat ", " (List.rev !skipped));
    (* Counterexample lattices behave as the paper says. *)
    List.iter
      (fun (what, r) ->
        Format.printf "%s: %s@." what
          (match r with Ok () -> "as the paper claims" | Error e -> e))
      [ ("Figure 1 / Lemma 6", Finite_check.lemma6_fig1 ());
        ("Figure 2 / Theorem 7", Finite_check.fig2_theorem7_failure ());
        ("modularity necessity", Finite_check.modularity_is_needed ()) ];
    if !failed = 0 then 0 else 1
  in
  Cmd.v
    (Cmd.info "theorems"
       ~doc:"Exhaustively check Theorems 2/3/5/6/7 on the lattice corpus")
    (obs_term (Term.const run))

(* One-shot mode, kept from the original CLI: one formula, the trace
   inline on the command line. *)
let monitor_oneshot s trace =
  match parse_formula s with
  | Error (`Msg m) -> prerr_endline m; 1
  | Ok f ->
      let b = Examples.automaton f in
      let m = Sl_buchi.Monitor.create b in
      (match Sl_buchi.Monitor.shortest_bad_prefix b with
      | None ->
          Format.printf
            "property is liveness-only: the monitor is vacuous@."
      | Some bad ->
          Format.printf "shortest bad prefix: [%s]@."
            (String.concat "; " (List.map string_of_int bad)));
      (match Sl_buchi.Monitor.feed m trace with
      | Sl_buchi.Monitor.Admissible ->
          Format.printf "trace admissible@.";
          0
      | Sl_buchi.Monitor.Violation bad ->
          Format.printf "VIOLATION at prefix [%s]@."
            (String.concat "; " (List.map string_of_int bad));
          1)

(* Streaming mode: compile a property file once into the registry
   (malformed lines are reported with file/line and skipped, turning the
   final exit code nonzero), then pump the trace file or stdin through
   the batched packed engine and render the verdict report.

   The run lives in a [Session] (engine state + trace-id interner), so
   it can be snapshotted to disk ([--snapshot], periodically with
   [--snapshot-every]) and resumed in a fresh process ([--resume]) with
   byte-identical verdicts. A snapshot that doesn't match this
   registry, or is corrupt, refuses to restore — exit 2, never a
   wrong-but-running session. *)
let monitor_stream ~props_file ~trace_file ~json ~snapshot ~snapshot_every
    ~resume =
  let module Registry = Sl_runtime.Registry in
  let module Engine = Sl_runtime.Engine in
  let module Ingest = Sl_runtime.Ingest in
  let module Session = Sl_runtime.Session in
  let module Verdict = Sl_runtime.Verdict in
  let alphabet = 2 in
  let flags_ok =
    match snapshot_every with
    | Some n when n <= 0 ->
        Format.eprintf "monitor: --snapshot-every must be positive@.";
        false
    | Some _ when snapshot = None ->
        Format.eprintf "monitor: --snapshot-every needs --snapshot FILE@.";
        false
    | _ -> true
  in
  if not flags_ok then 2
  else begin
  let registry = Registry.create ~alphabet () in
  let prop_errors =
    let ic = open_in props_file in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> Registry.load_channel registry ~path:props_file ic)
  in
  List.iter prerr_endline prop_errors;
  if Registry.nprops registry = 0 then begin
    Format.eprintf "%s: no well-formed properties@." props_file;
    2
  end
  else begin
    match
      match resume with
      | None -> Ok (Session.create ~registry ())
      | Some path -> Session.load ~registry ~path ()
    with
    | Error e ->
        Format.eprintf "%s: cannot resume: %s@."
          (Option.value ~default:"" resume)
          (Session.restore_error_to_string e);
        2
    | Ok session ->
    let engine = Session.engine session in
    let ingest = Session.ingest session in
    let trace_errors = ref 0 in
    let source, ic, close =
      match trace_file with
      | "-" -> ("<stdin>", stdin, fun () -> ())
      | f ->
          let ic = open_in f in
          (f, ic, fun () -> close_in_noerr ic)
    in
    let last_snap = ref (Engine.events engine) in
    let t0 = Sys.time () in
    match
      Fun.protect ~finally:close (fun () ->
          (* block reads + the zero-copy scanner; byte-identical
             events/errors/interning to [read_channel] *)
          Ingest.scan_channel ~alphabet ingest ic
            ~on_chunk:(fun c ->
              Engine.feed engine ~n:c.Ingest.len ~traces:c.Ingest.trace_ids
                ~symbols:c.Ingest.symbols ();
              match (snapshot, snapshot_every) with
              | Some path, Some every
                when Engine.events engine - !last_snap >= every ->
                  Session.save session ~path;
                  last_snap := Engine.events engine
              | _ -> ())
            ~on_error:(fun e ->
              incr trace_errors;
              Format.eprintf "%s: %s (line skipped)@." source
                (Ingest.error_to_string e)));
      Option.iter (fun path -> Session.save session ~path) snapshot
    with
    | exception Sys_error msg ->
        Format.eprintf "monitor: cannot write snapshot: %s@." msg;
        2
    | () ->
    let elapsed_s = Sys.time () -. t0 in
    let report = Verdict.of_session ~elapsed_s session () in
    (* Single exit path: render the whole report first (JSON or text),
       then one [finish] prints it, flushes stdout, and returns the
       code — so a partially written [--json] document can't be left
       unflushed behind a later metrics dump or an exit. *)
    let finish rendered code =
      print_string rendered;
      flush stdout;
      code
    in
    let rendered =
      if json then Verdict.to_json report
      else Format.asprintf "%a" Verdict.pp_text report
    in
    finish rendered
      (if prop_errors <> [] || !trace_errors > 0 then 2
       else if report.Verdict.counters.Verdict.violations > 0 then 1
       else 0)
  end
  end

let monitor_cmd =
  let formula_opt_arg =
    let doc =
      "LTL formula to monitor (one-shot mode; ignored with $(b,--props))."
    in
    Arg.(value & pos 0 (some string) None & info [] ~docv:"FORMULA" ~doc)
  in
  let trace_pos_arg =
    let doc =
      "Space-separated symbols (letter indices) of the observed prefix \
       (one-shot mode)."
    in
    Arg.(value & pos_right 0 int [] & info [] ~docv:"SYMBOLS" ~doc)
  in
  let props_arg =
    let doc =
      "Property file: one LTL formula per line ('#' comments); each is \
       compiled once and hash-consed into the monitor registry."
    in
    Arg.(value & opt (some file) None & info [ "props" ] ~docv:"FILE" ~doc)
  in
  let trace_file_arg =
    let doc =
      "Event log in the line protocol 'trace-id symbol', or '-' for \
       stdin. Events of different traces may interleave."
    in
    Arg.(value & opt string "-" & info [ "trace" ] ~docv:"FILE" ~doc)
  in
  let json_arg =
    let doc = "Emit the verdict report as JSON instead of text." in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let snapshot_arg =
    let doc =
      "Write the session state (engine state, trace-id table, counters) \
       to $(docv) as a sl-artifact blob when the stream ends, atomically. \
       A later run can $(b,--resume) it against the same property file."
    in
    Arg.(value & opt (some string) None & info [ "snapshot" ] ~docv:"FILE" ~doc)
  in
  let snapshot_every_arg =
    let doc =
      "Also rewrite the $(b,--snapshot) file during the run, after each \
       ingested chunk that crosses an $(docv)-event interval — bounds the \
       events lost to a crash."
    in
    Arg.(
      value & opt (some int) None & info [ "snapshot-every" ] ~docv:"N" ~doc)
  in
  let resume_arg =
    let doc =
      "Resume from a session snapshot before reading the trace. The \
       snapshot must have been taken against a structurally identical \
       registry (same properties, same order); a mismatched or corrupt \
       snapshot refuses to load (exit 2)."
    in
    Arg.(value & opt (some file) None & info [ "resume" ] ~docv:"FILE" ~doc)
  in
  let run props trace_file json snapshot snapshot_every resume formula trace =
    match (props, formula) with
    | Some props_file, _ ->
        monitor_stream ~props_file ~trace_file ~json ~snapshot
          ~snapshot_every ~resume
    | None, Some s -> monitor_oneshot s trace
    | None, None ->
        Format.eprintf
          "monitor: need either --props FILE or a positional FORMULA@.";
        2
  in
  Cmd.v
    (Cmd.info "monitor"
       ~doc:
         "Run runtime monitors of properties' safety parts over traces \
          (streaming with --props/--trace, or one-shot on a formula)")
    (obs_term
       Term.(
         const (fun props tf json snap every resume f tr () ->
             run props tf json snap every resume f tr)
         $ props_arg $ trace_file_arg $ json_arg $ snapshot_arg
         $ snapshot_every_arg $ resume_arg $ formula_opt_arg
         $ trace_pos_arg))

(* Offline compile phase: property file -> one monitor-pack artifact.
   The hot serve phase (unpack today, the monitoring daemon tomorrow)
   then loads compiled tables without an LTL pipeline in sight. *)
let pack_cmd =
  let props_arg =
    let doc =
      "Property file to compile: one LTL formula per line ('#' comments)."
    in
    Arg.(
      required & opt (some file) None & info [ "props" ] ~docv:"FILE" ~doc)
  in
  let out_arg =
    let doc = "Output pack file (written atomically)." in
    Arg.(
      value & opt string "monitors.slpack"
      & info [ "o"; "output" ] ~docv:"FILE" ~doc)
  in
  let run props_file out =
    let module Registry = Sl_runtime.Registry in
    let registry = Registry.create ~alphabet:2 () in
    let prop_errors =
      let ic = open_in props_file in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> Registry.load_channel registry ~path:props_file ic)
    in
    List.iter prerr_endline prop_errors;
    if Registry.nprops registry = 0 then begin
      Format.eprintf "%s: no well-formed properties@." props_file;
      2
    end
    else begin
      let pk = Sl_runtime.Pack.of_registry registry in
      match Sl_runtime.Pack.write pk ~path:out with
      | () ->
          Format.printf
            "packed %d props (%d distinct monitors) into %s (%d bytes)@."
            (Registry.nprops registry)
            (Registry.nmonitors registry)
            out
            (String.length (Sl_runtime.Pack.to_artifact pk));
          if prop_errors <> [] then 2 else 0
      | exception Sys_error msg ->
          Format.eprintf "%s: %s@." out msg;
          2
    end
  in
  Cmd.v
    (Cmd.info "pack"
       ~doc:
         "Compile a property file into a single binary monitor-pack \
          artifact (the offline half of a compile-once/serve-hot split)")
    (obs_term Term.(const (fun p o () -> run p o) $ props_arg $ out_arg))

let unpack_cmd =
  let pack_arg =
    let doc = "Monitor pack written by $(b,slc pack)." in
    Arg.(required & pos 0 (some file) None & info [] ~docv:"PACK" ~doc)
  in
  let run path =
    match Sl_runtime.Pack.read ~path with
    | Error msg ->
        Format.eprintf "%s: not a loadable monitor pack: %s@." path msg;
        2
    | Ok pk ->
        Format.printf "pack: %s@." path;
        Format.printf "alphabet: %d@." pk.Sl_runtime.Pack.alphabet;
        Format.printf "props: %d, distinct monitors: %d@."
          (Array.length pk.Sl_runtime.Pack.props)
          (Array.length pk.Sl_runtime.Pack.monitors);
        Array.iter
          (fun (name, monitor) ->
            Format.printf "  %s -> monitor %d@." name monitor)
          pk.Sl_runtime.Pack.props;
        Array.iteri
          (fun i pd ->
            Format.printf "monitor %d: %a (key %s)@." i
              Sl_runtime.Packed_dfa.pp pd
              (Sl_core.Wire.fnv64_hex (Sl_runtime.Packed_dfa.key pd)))
          pk.Sl_runtime.Pack.monitors;
        0
  in
  Cmd.v
    (Cmd.info "unpack"
       ~doc:
         "Load a monitor pack and print its properties and compiled \
          monitors (validates the whole artifact)")
    (obs_term Term.(const (fun p () -> run p) $ pack_arg))

let complement_cmd =
  let max_states_arg =
    let doc = "Abort if the complement's construction exceeds $(docv) \
               ranking states." in
    Arg.(value & opt int 200_000 & info [ "max-states" ] ~docv:"N" ~doc)
  in
  let run s max_states =
    match parse_formula s with
    | Error (`Msg m) -> prerr_endline m; 1
    | Ok f -> (
        let b = Examples.automaton f in
        match Sl_buchi.Complement.rank_based ~max_states b with
        | c ->
            let count a =
              Array.fold_left (fun n x -> if x then n + 1 else n) 0 a
            in
            Format.printf "property: %s@." (Formula.to_string f);
            Format.printf "B: %s@." (Buchi.size_info b);
            Format.printf "complement (rank-based): %s@.%a@."
              (Buchi.size_info c) Buchi.pp c;
            Format.printf "complement reachable: %d, live: %d@."
              (count (Buchi.reachable c))
              (count (Buchi.live_states c));
            0
        | exception Invalid_argument m -> prerr_endline m; 1)
  in
  Cmd.v
    (Cmd.info "complement"
       ~doc:
         "Complement an LTL property's Büchi automaton via the rank-based \
          construction and print the result")
    (obs_term
       Term.(const (fun s m () -> run s m) $ formula_arg $ max_states_arg))

let regex_cmd =
  let regex_arg =
    let doc = "An omega-regular expression, e.g. \"(a|b)*(b)^w\"." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"OMEGA" ~doc)
  in
  let run s =
    match Sl_regex.Omega.parse s with
    | Error e -> prerr_endline ("parse error: " ^ e); 1
    | Ok o ->
        let b = Sl_regex.Omega.to_buchi ~alphabet:2 o in
        Format.printf "omega-regex: %s@." (Sl_regex.Omega.to_string o);
        Format.printf "buchi automaton: %s@." (Buchi.size_info b);
        Format.printf "classification: %s@."
          (Decompose.classification_to_string (Decompose.classify b));
        0
  in
  Cmd.v
    (Cmd.info "regex"
       ~doc:"Classify an omega-regular expression over {a, b}")
    (obs_term Term.(const (fun s () -> run s) $ regex_arg))

let modelcheck_cmd =
  let system_arg =
    let doc = "System: ring3, mutex, peterson, buffer3, philosophers3." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"SYSTEM" ~doc)
  in
  let spec_arg =
    let doc = "LTL specification over the system's propositions." in
    Arg.(required & pos 1 (some string) None & info [] ~docv:"LTL" ~doc)
  in
  let systems =
    [ ("ring3", fun () -> Sl_kripke.Kripke.token_ring 3);
      ("mutex", Sl_kripke.Kripke.mutex);
      ("peterson", Sl_kripke.Kripke.peterson);
      ("buffer3", fun () -> Sl_kripke.Kripke.bounded_buffer ~capacity:3);
      ("philosophers3", fun () -> Sl_kripke.Kripke.dining_philosophers 3) ]
  in
  let run system spec =
    match List.assoc_opt system systems with
    | None ->
        Format.eprintf "unknown system %s (try: %s)@." system
          (String.concat ", " (List.map fst systems));
        1
    | Some mk -> (
        match parse_formula spec with
        | Error (`Msg m) -> prerr_endline m; 1
        | Ok f ->
            let k = mk () in
            let props = Array.to_list k.Sl_kripke.Kripke.ap in
            let v = Sl_ltl.Semantics.subset_valuation props in
            let alphabet = 1 lsl List.length props in
            if alphabet > 1024 then begin
              Format.eprintf "system alphabet too large@.";
              1
            end
            else begin
              match Sl_ltl.Modelcheck.check k ~alphabet ~valuation:v f with
              | Sl_ltl.Modelcheck.Holds ->
                  Format.printf "HOLDS@.";
                  0
              | Sl_ltl.Modelcheck.Fails w ->
                  Format.printf "FAILS; counterexample %s@."
                    (Sl_word.Lasso.to_string w);
                  1
            end)
  in
  Cmd.v
    (Cmd.info "modelcheck"
       ~doc:"Check an LTL specification against a built-in system")
    (obs_term
       Term.(const (fun sys spec () -> run sys spec) $ system_arg $ spec_arg))

(* Monitoring as a service: the slc monitor pipeline behind sockets.
   All daemon logic lives in Sl_serve; this is flag plumbing. *)
let serve_cmd =
  let props_arg =
    let doc =
      "Property file: one LTL formula per line ('#' comments). SIGHUP \
       re-reads it and hot-swaps the registry without dropping in-flight \
       traces (refused if the carried traces cannot survive the change)."
    in
    Arg.(
      required & opt (some file) None & info [ "props" ] ~docv:"FILE" ~doc)
  in
  let socket_arg =
    let doc =
      "Listen on a Unix-domain socket at $(docv) (stale socket files are \
       replaced). Clients speak the 'trace-id symbol' line protocol and \
       receive NDJSON verdict records; a first line starting with \
       $(b,GET /metrics) gets the Prometheus exposition instead."
    in
    Arg.(value & opt (some string) None & info [ "socket" ] ~docv:"PATH" ~doc)
  in
  let port_arg =
    let doc = "Also listen on TCP 127.0.0.1:$(docv) (same protocol)." in
    Arg.(value & opt (some int) None & info [ "port" ] ~docv:"PORT" ~doc)
  in
  let snapshot_arg =
    let doc =
      "On graceful shutdown (SIGTERM/SIGINT), write the session state to \
       $(docv) as a sl-artifact blob; a later $(b,--resume) on it \
       continues the run byte-identically."
    in
    Arg.(value & opt (some string) None & info [ "snapshot" ] ~docv:"FILE" ~doc)
  in
  let resume_arg =
    let doc =
      "Restore the session from a snapshot before serving (must match the \
       property file's registry fingerprint; refused otherwise, exit 2)."
    in
    Arg.(value & opt (some file) None & info [ "resume" ] ~docv:"FILE" ~doc)
  in
  let max_line_arg =
    let doc =
      "Per-connection input line cap in bytes; longer lines are reported \
       as error records and skipped, never buffered."
    in
    Arg.(value & opt int 65536 & info [ "max-line" ] ~docv:"BYTES" ~doc)
  in
  let hwm_arg =
    let doc =
      "Per-connection output high-water mark in bytes: a connection whose \
       unsent verdict queue exceeds this stops being read until the \
       client drains it (back-pressure instead of unbounded memory)."
    in
    Arg.(value & opt int 262144 & info [ "hwm" ] ~docv:"BYTES" ~doc)
  in
  let quiet_arg =
    let doc = "Suppress lifecycle notes on stderr." in
    Arg.(value & flag & info [ "q"; "quiet" ] ~doc)
  in
  let run props socket port snapshot resume max_line hwm quiet =
    Sl_serve.Loop.run
      {
        Sl_serve.Loop.props_file = props;
        unix_socket = socket;
        tcp_port = port;
        jobs = None (* the -j obs wrapper already set the pool default *);
        threshold = None;
        snapshot;
        resume;
        max_line;
        hwm;
        quiet;
      }
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the monitoring daemon: many concurrent client streams \
          multiplexed onto one sharded engine, incremental NDJSON \
          verdicts, SIGHUP hot reload, snapshot/resume lifecycle")
    (obs_term
       Term.(
         const (fun p s pt sn r ml hw q () -> run p s pt sn r ml hw q)
         $ props_arg $ socket_arg $ port_arg $ snapshot_arg $ resume_arg
         $ max_line_arg $ hwm_arg $ quiet_arg))

(* slc top: poll the daemon's /status endpoint over the same socket the
   clients stream on and render a refreshing dashboard (or emit the raw
   sl-status/1 JSON with --once --json for scripting). *)
let top_cmd =
  let module J = Sl_serve.Jsonv in
  let http_get ~socket ~port path =
    let fd, addr =
      match (socket, port) with
      | Some p, _ ->
          (Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0, Unix.ADDR_UNIX p)
      | None, Some p ->
          ( Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0,
            Unix.ADDR_INET (Unix.inet_addr_loopback, p) )
      | None, None -> failwith "need --socket or --port"
    in
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () ->
        Unix.connect fd addr;
        let req = "GET " ^ path ^ " HTTP/1.0\r\n\r\n" in
        ignore (Unix.write_substring fd req 0 (String.length req));
        let buf = Buffer.create 4096 in
        let bytes = Bytes.create 65536 in
        let rec drain () =
          match Unix.read fd bytes 0 (Bytes.length bytes) with
          | 0 -> ()
          | n ->
              Buffer.add_subbytes buf bytes 0 n;
              drain ()
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> drain ()
        in
        drain ();
        let reply = Buffer.contents buf in
        (* split header/body at the first blank line *)
        let sep = "\r\n\r\n" in
        let rec find i =
          if i + String.length sep > String.length reply then
            failwith "malformed HTTP reply"
          else if String.sub reply i (String.length sep) = sep then i
          else find (i + 1)
        in
        let i = find 0 in
        let header = String.sub reply 0 i in
        let body =
          String.sub reply
            (i + String.length sep)
            (String.length reply - i - String.length sep)
        in
        match String.split_on_char ' ' header with
        | _ :: "200" :: _ -> body
        | _ :: code :: _ -> failwith ("HTTP " ^ code)
        | _ -> failwith "malformed HTTP status line")
  in
  let mem path v = J.member path v in
  let jint k v = Option.bind (mem k v) J.int_ |> Option.value ~default:0 in
  let jnum k v = Option.bind (mem k v) J.num |> Option.value ~default:0. in
  let jstr k v = Option.bind (mem k v) J.str |> Option.value ~default:"" in
  let jbool k v = Option.bind (mem k v) J.bool_ |> Option.value ~default:false in
  let jarr k v = Option.bind (mem k v) J.arr |> Option.value ~default:[] in
  let render ~target status monitors ~rate =
    let b = Buffer.create 2048 in
    let p fmt = Printf.ksprintf (Buffer.add_string b) fmt in
    p "slc top — %s    uptime %.1fs    fingerprint %s\n" target
      (jnum "uptime_s" status)
      (jstr "fingerprint" status);
    let cache = Option.value ~default:J.Null (mem "cache" status) in
    p "props %d   monitors %d   jobs %d   cache hit %.1f%% (%d/%d)\n"
      (jint "props" status) (jint "monitors" status) (jint "jobs" status)
      (100. *. jnum "hit_ratio" cache)
      (jint "hits" cache)
      (jint "hits" cache + jint "misses" cache);
    p "events %d (%+.0f/s)   traces %d   live %d   tripped %d   retired %d\n"
      (jint "events" status) rate (jint "traces" status) (jint "live" status)
      (jint "tripped" status)
      (jint "retired_admissible" status);
    let reloads = Option.value ~default:J.Null (mem "reloads" status) in
    p "reloads %d (%d failed)   spans dropped %d\n" (jint "count" reloads)
      (jint "failures" reloads)
      (jint "spans_dropped" (Option.value ~default:J.Null (mem "obs" status)));
    let conns = jarr "connections" status in
    p "\nconnections (%d):\n" (List.length conns);
    p "  %4s %-8s %-5s %9s %9s %6s %9s %s\n" "ID" "LISTENER" "MODE" "LINES"
      "EVENTS" "ERRORS" "PENDING" "STALL";
    List.iteri
      (fun i c ->
        if i < 20 then
          p "  %4d %-8s %-5s %9d %9d %6d %9d %s\n" (jint "id" c)
            (jstr "listener" c) (jstr "mode" c) (jint "lines" c)
            (jint "events" c) (jint "errors" c) (jint "pending_out" c)
            (if jbool "stalled" c then "yes" else "-"))
      conns;
    (match monitors with
    | None -> ()
    | Some mons ->
        let rows = jarr "monitors" mons in
        let rows =
          List.sort
            (fun a b -> compare (jint "tripped" b) (jint "tripped" a))
            rows
        in
        p "\nmonitors (%d, by tripped):\n" (List.length rows);
        p "  %5s %-16s %6s %7s %7s %-9s %s\n" "INDEX" "KEY" "LIVE" "TRIP"
          "RETIRE" "KIND" "PROPS";
        List.iteri
          (fun i m ->
            if i < 20 then begin
              let props =
                jarr "props" m |> List.filter_map J.str |> String.concat ","
              in
              let kind =
                if jbool "vacuous" m then "vacuous"
                else if jbool "pre_tripped" m then "pretripped"
                else "monitored"
              in
              p "  %5d %-16s %6d %7d %7d %-9s %s\n" (jint "index" m)
                (jstr "key" m) (jint "live" m) (jint "tripped" m)
                (jint "retired_admissible" m) kind props
            end)
          rows);
    Buffer.contents b
  in
  let socket_arg =
    let doc = "Poll the daemon over the Unix-domain socket at $(docv)." in
    Arg.(value & opt (some string) None & info [ "socket" ] ~docv:"PATH" ~doc)
  in
  let port_arg =
    let doc = "Poll the daemon over TCP 127.0.0.1:$(docv)." in
    Arg.(value & opt (some int) None & info [ "port" ] ~docv:"PORT" ~doc)
  in
  let interval_arg =
    let doc = "Refresh interval in seconds." in
    Arg.(value & opt float 2.0 & info [ "i"; "interval" ] ~docv:"SECONDS" ~doc)
  in
  let once_arg =
    let doc = "Render a single snapshot and exit (no screen clearing)." in
    Arg.(value & flag & info [ "once" ] ~doc)
  in
  let json_arg =
    let doc =
      "With $(b,--once): print the raw sl-status/1 JSON of /status instead \
       of the dashboard."
    in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let run socket port interval once json =
    if socket = None && port = None then begin
      prerr_endline "slc top: need --socket PATH or --port PORT";
      2
    end
    else begin
      let target =
        match (socket, port) with
        | Some p, _ -> p
        | None, Some p -> Printf.sprintf "127.0.0.1:%d" p
        | None, None -> assert false
      in
      let fetch path = http_get ~socket ~port path in
      let parse body =
        match J.parse body with
        | Ok v -> v
        | Error e -> failwith ("bad JSON from daemon: " ^ e)
      in
      try
        if once && json then begin
          print_string (fetch "/status");
          0
        end
        else if once then begin
          let status = parse (fetch "/status") in
          let monitors = parse (fetch "/monitors") in
          print_string (render ~target status (Some monitors) ~rate:0.);
          0
        end
        else begin
          let last = ref None in
          while true do
            let status = parse (fetch "/status") in
            let monitors = parse (fetch "/monitors") in
            let events = jint "events" status in
            let rate =
              match !last with
              | Some prev when interval > 0. ->
                  float_of_int (events - prev) /. interval
              | _ -> 0.
            in
            last := Some events;
            (* clear screen, home cursor *)
            print_string "\027[2J\027[H";
            print_string (render ~target status (Some monitors) ~rate);
            flush stdout;
            Unix.sleepf interval
          done;
          0
        end
      with
      | Failure msg ->
          prerr_endline ("slc top: " ^ msg);
          1
      | Unix.Unix_error (e, _, _) ->
          prerr_endline
            (Printf.sprintf "slc top: cannot reach %s: %s" target
               (Unix.error_message e));
          1
    end
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:
         "Live dashboard over a running slc serve: polls GET /status and \
          GET /monitors (sl-status/1) and renders uptime, throughput, the \
          connection table and per-monitor verdict counts")
    Term.(
      const run $ socket_arg $ port_arg $ interval_arg $ once_arg $ json_arg)

let version_cmd =
  let module Wire = Sl_core.Wire in
  let run () =
    Format.printf "slc 1.0.0@.";
    Format.printf "artifact format: sl-artifact/%d@." Wire.format_version;
    Format.printf "artifact kinds: %s@."
      (String.concat ", "
         (List.map
            (fun (name, kind) -> Printf.sprintf "%s(%d)" name kind)
            [ ("dfa", Wire.kind_packed_dfa); ("buchi", Wire.kind_buchi);
              ("digraph", Wire.kind_digraph); ("pack", Wire.kind_pack);
              ("session", Wire.kind_session) ]));
    Format.printf "report schema: sl-monitor-report/1@.";
    Format.printf "status schema: sl-status/1@.";
    0
  in
  Cmd.v
    (Cmd.info "version"
       ~doc:
         "Print the CLI version and the supported artifact kinds and \
          report schemas")
    Term.(const run $ const ())

let () =
  let doc = "the lattice-theoretic safety/liveness toolbox (PODC 2003)" in
  let info = Cmd.info "slc" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval'
       (Cmd.group info
          [ classify_cmd; decompose_cmd; stats_cmd; rem_cmd; ctl_cmd;
            dot_cmd; theorems_cmd; monitor_cmd; serve_cmd; top_cmd;
            pack_cmd; unpack_cmd; complement_cmd; regex_cmd;
            modelcheck_cmd; version_cmd ]))
