module Buchi = Sl_buchi.Buchi
module Obs = Sl_obs.Obs

(* Tableau-translation telemetry (recorded only while Sl_obs is
   enabled): closure size, elementary-set count (GNBA states),
   degeneralization width, and the resulting NBA size per phase. *)
let m_translate_runs = Obs.Metrics.counter "ltl_translate_runs_total"
let h_closure_size = Obs.Metrics.histogram "ltl_closure_size"
let h_gnba_states = Obs.Metrics.histogram "ltl_gnba_states"
let h_nba_states = Obs.Metrics.histogram "ltl_nba_states"

(* The positive closure: all non-negation core subformulas. Membership of a
   negation ¬ψ in an elementary set is represented as absence of ψ. *)
let positive_closure core =
  List.filter
    (fun (f : Formula.core) -> match f with CNot _ -> false | _ -> true)
    (Formula.core_subformulas core)

type tableau = {
  pos : Formula.core array;
  index : (Formula.core, int) Hashtbl.t;
  untils : (int * Formula.core * Formula.core) list;
      (* (index of the Until in pos, left operand, right operand) *)
}

let build_tableau core =
  let pos = Array.of_list (positive_closure core) in
  let index = Hashtbl.create 16 in
  Array.iteri (fun i f -> Hashtbl.replace index f i) pos;
  let untils =
    Array.to_list pos
    |> List.filter_map (fun f ->
           match (f : Formula.core) with
           | CUntil (a, b) -> Some (Hashtbl.find index f, a, b)
           | _ -> None)
  in
  { pos; index; untils }

(* Membership of an arbitrary closure formula in the set encoded by bits. *)
let rec mem t bits (f : Formula.core) =
  match f with
  | CNot g -> not (mem t bits g)
  | _ -> bits land (1 lsl Hashtbl.find t.index f) <> 0

let is_elementary t bits =
  Array.for_all Fun.id
    (Array.mapi
       (fun i (f : Formula.core) ->
         let here = bits land (1 lsl i) <> 0 in
         match f with
         | CTrue -> here
         | CProp _ | CNext _ -> true
         | CNot _ -> assert false
         | CAnd (a, b) -> here = (mem t bits a && mem t bits b)
         | CUntil (a, b) ->
             (* Local expansion constraints: b forces the until; a pending
                until without b needs a. *)
             ((not (mem t bits b)) || here)
             && ((not here) || mem t bits b || mem t bits a))
       t.pos)

let compatible t ~valuation bits symbol =
  Array.for_all Fun.id
    (Array.mapi
       (fun i (f : Formula.core) ->
         match f with
         | CProp p -> (bits land (1 lsl i) <> 0) = valuation symbol p
         | _ -> true)
       t.pos)

(* The step relation between consecutive elementary sets: X-obligations and
   the temporal half of the Until expansion. *)
let linked t bits bits' =
  Array.for_all Fun.id
    (Array.mapi
       (fun i (f : Formula.core) ->
         let here = bits land (1 lsl i) <> 0 in
         let there = bits' land (1 lsl i) <> 0 in
         match f with
         | CNext g -> here = mem t bits' g
         | CUntil (a, b) -> here = (mem t bits b || (mem t bits a && there))
         | CTrue | CProp _ | CAnd _ -> true
         | CNot _ -> assert false)
       t.pos)

let build formula =
  let core = Formula.to_core formula in
  let t = build_tableau core in
  let n = Array.length t.pos in
  if n > 20 then invalid_arg "Translate: formula closure too large";
  let elementary =
    List.filter (is_elementary t) (List.init (1 lsl n) Fun.id)
  in
  let elementary = Array.of_list elementary in
  let ne = Array.length elementary in
  let eindex = Hashtbl.create 64 in
  Array.iteri (fun i bits -> Hashtbl.replace eindex bits i) elementary;
  (* Acceptance sets, one per Until: sets where the until is not pending. *)
  let untils = t.untils in
  let k = max 1 (List.length untils) in
  let in_accept_set j bits =
    match List.nth_opt untils j with
    | None -> true (* no untils: the single set accepts everywhere *)
    | Some (ui, _, b) ->
        bits land (1 lsl ui) = 0 || mem t bits b
  in
  let initial_sets =
    List.filter (fun bits -> mem t bits core) (Array.to_list elementary)
  in
  (t, elementary, ne, eindex, k, in_accept_set, initial_sets)

let translate ~alphabet ~valuation formula =
  let sp = Obs.Span.enter "ltl.translate" in
  let t, elementary, ne, eindex, k, in_accept_set, initial_sets =
    match build formula with
    | built -> built
    | exception e ->
        Obs.Span.exit sp;
        raise e
  in
  (* Degeneralized state encoding: 0 is the fresh start; state
     1 + (e * k + counter) is (elementary set e, counter). *)
  let nstates = 1 + (ne * k) in
  let encode e counter = 1 + (e * k) + counter in
  let delta = Array.make_matrix nstates alphabet [] in
  let bump e counter =
    if in_accept_set counter elementary.(e) then (counter + 1) mod k
    else counter
  in
  for e = 0 to ne - 1 do
    let bits = elementary.(e) in
    for s = 0 to alphabet - 1 do
      if compatible t ~valuation bits s then
        for e' = 0 to ne - 1 do
          if linked t bits elementary.(e') then
            for counter = 0 to k - 1 do
              delta.(encode e counter).(s) <-
                encode e' (bump e counter) :: delta.(encode e counter).(s)
            done
        done
    done
  done;
  (* Start transitions: guess the elementary set of time 0 among initial
     sets compatible with the first letter, then move as that set would. *)
  List.iter
    (fun bits ->
      let e = Hashtbl.find eindex bits in
      for s = 0 to alphabet - 1 do
        if compatible t ~valuation bits s then
          for e' = 0 to ne - 1 do
            if linked t bits elementary.(e') then
              delta.(0).(s) <- encode e' (bump e 0) :: delta.(0).(s)
          done
      done)
    initial_sets;
  Array.iter
    (fun row ->
      Array.iteri (fun s l -> row.(s) <- List.sort_uniq compare l) row)
    delta;
  let accepting =
    Array.init nstates (fun q ->
        if q = 0 then false
        else begin
          let e = (q - 1) / k and counter = (q - 1) mod k in
          counter = 0 && in_accept_set 0 elementary.(e)
        end)
  in
  let b = Buchi.make ~alphabet ~nstates ~start:0 ~delta ~accepting in
  Obs.Metrics.incr m_translate_runs;
  Obs.Metrics.observe h_closure_size (Array.length t.pos);
  Obs.Metrics.observe h_gnba_states ne;
  Obs.Metrics.observe h_nba_states nstates;
  Obs.Span.attr sp "closure_size" (Array.length t.pos);
  Obs.Span.attr sp "elementary_sets" ne;
  Obs.Span.attr sp "acceptance_sets" k;
  Obs.Span.attr sp "nba_states" nstates;
  Obs.Span.exit sp;
  b

let gnba_stats ~alphabet ~valuation formula =
  ignore alphabet;
  ignore valuation;
  let _, _, ne, _, k, _, _ = build formula in
  (ne, k, 1 + (ne * k))
