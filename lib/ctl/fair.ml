module Kripke = Sl_kripke.Kripke
module Digraph = Sl_core.Digraph

type constraints = bool array list

(* E_fair G f: f-states that reach (within f) a nontrivial f-SCC meeting
   every fairness set — the kernel's good-SCC query followed by backward
   reachability on the transposed graph, both restricted to f. *)
let eg (k : Kripke.t) constraints f =
  let g = Digraph.of_successors k.successors in
  let keep q = f.(q) in
  let seeds =
    Digraph.good_scc_members g ~filter:keep
      ~predicates:(List.map (fun set q -> set.(q)) constraints)
  in
  Digraph.reachable_from ~filter:keep (Digraph.reverse g) seeds

let fair_states k constraints =
  eg k constraints (Array.make k.Kripke.nstates true)

let sat (k : Kripke.t) constraints formula =
  let n = k.nstates in
  let fair = fair_states k constraints in
  let ex set =
    Array.init n (fun q -> List.exists (fun q' -> set.(q')) k.successors.(q))
  in
  let conj a b = Array.init n (fun q -> a.(q) && b.(q)) in
  let nota = Array.map not in
  let eu a b =
    let v = Array.copy b in
    let changed = ref true in
    while !changed do
      changed := false;
      for q = 0 to n - 1 do
        if
          (not v.(q)) && a.(q)
          && List.exists (fun q' -> v.(q')) k.successors.(q)
        then begin
          v.(q) <- true;
          changed := true
        end
      done
    done;
    v
  in
  let fair_ex set = ex (conj set fair) in
  let fair_eu a b = eu a (conj b fair) in
  let fair_eg = eg k constraints in
  let rec go : Ctl.t -> bool array = function
    | True -> Array.make n true
    | False -> Array.make n false
    | Prop p -> Array.init n (fun q -> Kripke.holds k q p)
    | Not f -> nota (go f)
    | And (a, b) -> conj (go a) (go b)
    | Or (a, b) ->
        let va = go a and vb = go b in
        Array.init n (fun q -> va.(q) || vb.(q))
    | Implies (a, b) ->
        let va = go a and vb = go b in
        Array.init n (fun q -> (not va.(q)) || vb.(q))
    | EX f -> fair_ex (go f)
    | AX f -> nota (fair_ex (nota (go f)))
    | EF f -> fair_eu (Array.make n true) (go f)
    | AF f -> nota (fair_eg (nota (go f)))
    | EG f -> fair_eg (go f)
    | AG f -> nota (fair_eu (Array.make n true) (nota (go f)))
    | EU (a, b) -> fair_eu (go a) (go b)
    | AU (a, b) ->
        let va = go a and vb = go b in
        let nb = nota vb in
        let bad = fair_eu nb (conj (nota va) nb) in
        let eg_nb = fair_eg nb in
        Array.init n (fun q -> (not bad.(q)) && not eg_nb.(q))
  in
  go formula

let holds (k : Kripke.t) constraints formula =
  (sat k constraints formula).(k.initial)

let constraint_of_prop (k : Kripke.t) p =
  Array.init k.nstates (fun q -> Kripke.holds k q p)
