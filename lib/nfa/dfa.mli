(** Deterministic finite automata over finite words.

    DFAs here are {e complete}: every state has exactly one successor per
    symbol. They arise from NFAs by subset construction ({!Nfa.determinize})
    and support the boolean operations needed to complement safety
    languages: a closed ω-language is determined by its set of finite
    prefixes, so complementing the Büchi closure automaton reduces to
    complementing a DFA over finite words (see [Sl_buchi.Complement]). *)

type t = {
  alphabet : int;  (** number of symbols *)
  nstates : int;
  start : int;
  delta : int array array;  (** [delta.(q).(s)] is the unique successor *)
  accepting : bool array;
}

val make :
  alphabet:int -> nstates:int -> start:int -> delta:int array array ->
  accepting:bool array -> t
(** Validates shapes and ranges. @raise Invalid_argument on malformed
    input. *)

val accepts : t -> int list -> bool
val step : t -> int -> int -> int
val run : t -> int list -> int
(** State reached from the start on the given word. *)

val complement : t -> t
(** Flips acceptance; correct because DFAs are complete. *)

val product : bool_op:(bool -> bool -> bool) -> t -> t -> t
(** Pairing construction with pointwise acceptance combination:
    intersection with [( && )], union with [( || )], symmetric difference
    with [( <> )]. Alphabets must agree. *)

val intersect : t -> t -> t
val union : t -> t -> t

val graph : t -> Sl_core.Digraph.t
(** The transition graph as a CSR kernel graph (one successor per
    (state, symbol)). *)

val reachable : t -> bool array
val is_empty : t -> bool
(** No reachable accepting state. *)

val some_accepted_word : t -> int list option
(** A shortest accepted word, if any (BFS). *)

val equivalent : t -> t -> bool
(** Language equality via emptiness of the symmetric difference. *)

val subset : t -> t -> bool
(** [subset a b] iff [L(a) ⊆ L(b)]. *)

val minimize : t -> t
(** Moore partition refinement on the reachable part. The result is the
    canonical minimal complete DFA of the language. *)

val is_prefix_closed : t -> bool
(** The language is prefix-closed: every prefix of an accepted word is
    accepted. This is the finite-word shadow of ω-safety. *)

val is_total_language : t -> bool
(** Accepts every word. *)

val pp : Format.formatter -> t -> unit
