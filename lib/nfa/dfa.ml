module Digraph = Sl_core.Digraph
module Asig = Sl_core.Automaton_sig

type t = {
  alphabet : int;
  nstates : int;
  start : int;
  delta : int array array;
  accepting : bool array;
}

let make ~alphabet ~nstates ~start ~delta ~accepting =
  let name = "Dfa.make" in
  Asig.check_alphabet ~name alphabet;
  Asig.check_nstates ~name nstates;
  Asig.check_state ~name ~nstates start;
  Asig.check_flags ~name ~nstates accepting;
  Asig.check_delta ~name ~alphabet ~nstates
    (Array.map (Array.map (fun q -> [ q ])) delta);
  { alphabet; nstates; start; delta; accepting }

let step d q s = d.delta.(q).(s)
let run d word = List.fold_left (step d) d.start word
let accepts d word = d.accepting.(run d word)

let complement d =
  { d with accepting = Array.map not d.accepting }

let product ~bool_op a b =
  if a.alphabet <> b.alphabet then invalid_arg "Dfa.product: alphabets differ";
  let n = a.nstates * b.nstates in
  let encode qa qb = (qa * b.nstates) + qb in
  let delta =
    Array.init n (fun q ->
        let qa = q / b.nstates and qb = q mod b.nstates in
        Array.init a.alphabet (fun s ->
            encode a.delta.(qa).(s) b.delta.(qb).(s)))
  in
  let accepting =
    Array.init n (fun q ->
        bool_op a.accepting.(q / b.nstates) b.accepting.(q mod b.nstates))
  in
  make ~alphabet:a.alphabet ~nstates:n ~start:(encode a.start b.start) ~delta
    ~accepting

let intersect = product ~bool_op:( && )
let union = product ~bool_op:( || )

let graph d = Digraph.of_array_delta d.delta

(* Compile-time witness: this module has the shared automaton shape. *)
module _ : Asig.S with type t = t = struct
  type nonrec t = t

  let alphabet d = d.alphabet
  let nstates d = d.nstates
  let graph = graph
end

let reachable d = Digraph.reachable (graph d) [ d.start ]

let some_accepted_word d =
  (* BFS from the start recording a parent edge per state. *)
  let parent = Array.make d.nstates None in
  let seen = Array.make d.nstates false in
  let queue = Queue.create () in
  seen.(d.start) <- true;
  Queue.push d.start queue;
  let found = ref None in
  while !found = None && not (Queue.is_empty queue) do
    let q = Queue.pop queue in
    if d.accepting.(q) then found := Some q
    else
      Array.iteri
        (fun s q' ->
          if not seen.(q') then begin
            seen.(q') <- true;
            parent.(q') <- Some (q, s);
            Queue.push q' queue
          end)
        d.delta.(q)
  done;
  Option.map
    (fun target ->
      let rec unwind q acc =
        match parent.(q) with
        | None -> acc
        | Some (p, s) -> unwind p (s :: acc)
      in
      unwind target [])
    !found

let is_empty d = some_accepted_word d = None

let equivalent a b =
  is_empty (product ~bool_op:( <> ) a b)

let subset a b = is_empty (intersect a (complement b))

let minimize d =
  let reach = reachable d in
  (* Moore refinement over reachable states; unreachable states are
     dropped. *)
  let cls = Array.make d.nstates (-1) in
  Array.iteri
    (fun q r -> if r then cls.(q) <- (if d.accepting.(q) then 1 else 0))
    reach;
  let stable = ref false in
  while not !stable do
    stable := true;
    (* Signature of q: its class plus classes of its successors. *)
    let signature q = (cls.(q), Array.map (fun q' -> cls.(q')) d.delta.(q)) in
    let table = Hashtbl.create 16 in
    let next = ref 0 in
    let new_cls = Array.make d.nstates (-1) in
    Array.iteri
      (fun q r ->
        if r then begin
          let s = signature q in
          match Hashtbl.find_opt table s with
          | Some c -> new_cls.(q) <- c
          | None ->
              Hashtbl.add table s !next;
              new_cls.(q) <- !next;
              incr next
        end)
      reach;
    if new_cls <> cls then begin
      Array.blit new_cls 0 cls 0 d.nstates;
      stable := false
    end
  done;
  let nclasses = 1 + Array.fold_left max (-1) cls in
  let repr = Array.make nclasses (-1) in
  Array.iteri (fun q c -> if c >= 0 && repr.(c) = -1 then repr.(c) <- q) cls;
  let delta =
    Array.init nclasses (fun c ->
        Array.init d.alphabet (fun s -> cls.(d.delta.(repr.(c)).(s))))
  in
  let accepting = Array.init nclasses (fun c -> d.accepting.(repr.(c))) in
  make ~alphabet:d.alphabet ~nstates:nclasses ~start:cls.(d.start) ~delta
    ~accepting

let is_prefix_closed d =
  (* Prefix-closed iff no reachable non-accepting state can reach an
     accepting state. Backwards reachability runs on the transposed CSR
     graph (the seed iterated a quadratic fixpoint sweep). *)
  let g = graph d in
  let reach = Digraph.reachable g [ d.start ] in
  let can_accept = Digraph.reachable_from (Digraph.reverse g) d.accepting in
  let ok = ref true in
  for q = 0 to d.nstates - 1 do
    if reach.(q) && (not d.accepting.(q)) && can_accept.(q) then ok := false
  done;
  !ok

let is_total_language d = is_empty (complement d)

let pp fmt d =
  Format.fprintf fmt "@[<v>dfa(%d states, start %d)@," d.nstates d.start;
  for q = 0 to d.nstates - 1 do
    Format.fprintf fmt "  %d%s:" q (if d.accepting.(q) then "*" else "");
    Array.iteri (fun s q' -> Format.fprintf fmt " %d->%d" s q') d.delta.(q);
    Format.fprintf fmt "@,"
  done;
  Format.fprintf fmt "@]"
