(** Nondeterministic finite automata over finite words.

    The prefix behaviour of a Büchi automaton is an NFA (same graph, finite
    semantics); the closure constructions of the paper move back and forth
    between the two views, so this module mirrors the Büchi representation:
    integer states, integer symbols, a list-valued transition function. *)

type t = {
  alphabet : int;
  nstates : int;
  starts : int list;
  delta : int list array array;  (** [delta.(q).(s)] lists successors. *)
  accepting : bool array;
}

val make :
  alphabet:int -> nstates:int -> starts:int list ->
  delta:int list array array -> accepting:bool array -> t
(** Validates shapes and ranges. [nstates = 0] with no starts denotes the
    empty language. *)

val empty : alphabet:int -> t
(** The automaton of the empty language. *)

val accepts : t -> int list -> bool
(** Membership by running the subset frontier as a packed bitset — one
    bit per state, no per-step sorting. *)

val successors : t -> int list -> int -> int list
(** Set image of a state set under one symbol (sorted, deduplicated). *)

val graph : t -> Sl_core.Digraph.t
(** The symbol-labeled transition graph as a CSR kernel graph. *)

val reachable : t -> bool array

val trim : t -> t
(** Restrict to states both reachable and co-reachable (can reach an
    accepting state). The language is unchanged; on a trimmed automaton
    every run prefix extends to an accepted word. *)

val determinize : t -> Dfa.t
(** Subset construction; the result is complete (includes the sink for the
    empty set). State sets are interned through the
    {!Sl_core.Bitset} kernel with an explicit worklist, so each subset
    state is expanded exactly once. *)

val determinize_ref : t -> Dfa.t
(** The seed's quadratic subset construction, kept verbatim as the
    reference implementation for property tests and bench baselines.
    Language-equivalent to {!determinize} (state numbering may differ). *)

val union : t -> t -> t
val is_empty : t -> bool
val language_equal : t -> t -> bool
(** Via determinization. *)

val is_prefix_closed : t -> bool

val prefix_closure : t -> t
(** The automaton of the prefix closure of the language: trim, then accept
    everywhere. *)

val reverse : t -> t
(** The mirror-language automaton: edges flipped, start and accepting
    roles exchanged. *)

val reverse_determinize_minimize : t -> Dfa.t
(** Canonical minimal DFA of the language (determinize then Moore-minimize;
    the name records that this is the test oracle for language
    equality). *)

val brzozowski_minimize : t -> Dfa.t
(** Brzozowski's double-reversal minimization:
    [determinize ∘ reverse ∘ determinize ∘ reverse]. Produces the minimal
    DFA directly — checked against the Moore route in the tests. *)

val pp : Format.formatter -> t -> unit
