module B = Sl_core.Bitset
module Digraph = Sl_core.Digraph
module Asig = Sl_core.Automaton_sig
module Obs = Sl_obs.Obs

(* Subset-construction telemetry (recorded only while Sl_obs is
   enabled): how many determinizations ran, how big the resulting DFAs
   were, how deep the BFS frontier got, and how often the bitset
   interner was hit with an already-known subset. *)
let m_det_runs = Obs.Metrics.counter "nfa_determinize_runs_total"
let h_det_dfa_states = Obs.Metrics.histogram "nfa_determinize_dfa_states"
let h_det_frontier_peak = Obs.Metrics.histogram "nfa_subset_frontier_peak"
let m_det_interner_hits = Obs.Metrics.counter "nfa_interner_hits_total"

type t = {
  alphabet : int;
  nstates : int;
  starts : int list;
  delta : int list array array;
  accepting : bool array;
}

let make ~alphabet ~nstates ~starts ~delta ~accepting =
  let name = "Nfa.make" in
  Asig.check_alphabet ~name alphabet;
  Asig.check_nstates ~name ~min:0 nstates;
  List.iter (Asig.check_state ~name ~nstates) starts;
  Asig.check_flags ~name ~nstates accepting;
  Asig.check_delta ~name ~alphabet ~nstates delta;
  { alphabet; nstates; starts; delta; accepting }

let empty ~alphabet =
  make ~alphabet ~nstates:0 ~starts:[] ~delta:[||] ~accepting:[||]

let graph n = Digraph.of_delta n.delta

(* Compile-time witness: this module has the shared automaton shape. *)
module _ : Asig.S with type t = t = struct
  type nonrec t = t

  let alphabet n = n.alphabet
  let nstates n = n.nstates
  let graph = graph
end

(* Successor set of a state set: one bitset pass instead of the seed's
   concat-then-[sort_uniq] (which allocated and sorted a list with one
   entry per transition, quadratic on dense frontiers). The result is
   still an ascending duplicate-free list. *)
let successor_set n set s =
  let succ = B.create n.nstates in
  B.iter
    (fun q -> List.iter (fun q' -> B.unsafe_add succ q') n.delta.(q).(s))
    set;
  succ

let successors n set s = B.to_list (successor_set n (B.of_list n.nstates set) s)

let accepts n word =
  let final =
    List.fold_left
      (fun set s -> successor_set n set s)
      (B.of_list n.nstates n.starts)
      word
  in
  B.exists (fun q -> n.accepting.(q)) final

let reachable n = Digraph.reachable (graph n) n.starts

let co_reachable n =
  (* Backwards reachability from the accepting states, on the transposed
     CSR graph. *)
  Digraph.reachable_from (Digraph.reverse (graph n)) n.accepting

let restrict n keep =
  let remap = Array.make n.nstates (-1) in
  let count = ref 0 in
  Array.iteri
    (fun q k ->
      if k then begin
        remap.(q) <- !count;
        incr count
      end)
    keep;
  let nstates = !count in
  let delta = Array.make_matrix nstates n.alphabet [] in
  Array.iteri
    (fun q k ->
      if k then
        Array.iteri
          (fun s succs ->
            delta.(remap.(q)).(s) <-
              List.filter_map
                (fun q' -> if keep.(q') then Some remap.(q') else None)
                succs)
          n.delta.(q))
    keep;
  let accepting = Array.make nstates false in
  Array.iteri (fun q k -> if k then accepting.(remap.(q)) <- n.accepting.(q))
    keep;
  let starts = List.filter_map (fun q ->
      if keep.(q) then Some remap.(q) else None) n.starts in
  make ~alphabet:n.alphabet ~nstates ~starts ~delta ~accepting

let trim n =
  let reach = reachable n and co = co_reachable n in
  restrict n (Array.init n.nstates (fun q -> reach.(q) && co.(q)))

(* Subset construction on the bitset kernel: state sets are interned
   through {!Sl_core.Bitset.Interner} (O(1) membership and hashing) and the
   frontier is an explicit worklist, so each subset state is expanded
   exactly once — the seed's assoc-list bookkeeping was quadratic in the
   number of DFA states. *)
let determinize n =
  let module B = Sl_core.Bitset in
  let sp = Obs.Span.enter "nfa.determinize" in
  let interner = B.Interner.create () in
  let start_set = B.of_list n.nstates n.starts in
  let start = B.Interner.intern interner start_set in
  let rows = ref [||] in
  let ensure_row i row =
    let cap = Array.length !rows in
    if i >= cap then begin
      let fresh = Array.make (max 8 (2 * max cap (i + 1))) [||] in
      Array.blit !rows 0 fresh 0 cap;
      rows := fresh
    end;
    !rows.(i) <- row
  in
  (* Frontier-depth tracking: plain int arithmetic per push/pop, kept
     unconditional so enabling metrics cannot perturb the traversal. *)
  let qlen = ref 1 and qpeak = ref 1 in
  let queue = Queue.create () in
  Queue.push (start, start_set) queue;
  while not (Queue.is_empty queue) do
    let i, set = Queue.pop queue in
    decr qlen;
    let row =
      Array.init n.alphabet (fun s ->
          let succ = B.create n.nstates in
          B.iter
            (fun q -> List.iter (fun q' -> B.unsafe_add succ q') n.delta.(q).(s))
            set;
          let before = B.Interner.count interner in
          let j = B.Interner.intern interner succ in
          if j = before then begin
            Queue.push (j, succ) queue;
            incr qlen;
            if !qlen > !qpeak then qpeak := !qlen
          end;
          j)
    in
    ensure_row i row
  done;
  let nstates = B.Interner.count interner in
  let delta = Array.init nstates (fun i -> !rows.(i)) in
  let accepting = Array.make nstates false in
  B.Interner.iteri
    (fun i set -> accepting.(i) <- B.exists (fun q -> n.accepting.(q)) set)
    interner;
  (* Every subset state is expanded exactly once, so the interner saw
     [nstates * alphabet] lookups of which [nstates - 1] were fresh. *)
  let interner_hits = (nstates * n.alphabet) - (nstates - 1) in
  Obs.Metrics.incr m_det_runs;
  Obs.Metrics.observe h_det_dfa_states nstates;
  Obs.Metrics.observe h_det_frontier_peak !qpeak;
  Obs.Metrics.add m_det_interner_hits interner_hits;
  Obs.Span.attr sp "nfa_states" n.nstates;
  Obs.Span.attr sp "dfa_states" nstates;
  Obs.Span.attr sp "frontier_peak" !qpeak;
  Obs.Span.attr sp "interner_hits" interner_hits;
  Obs.Span.exit sp;
  Dfa.make ~alphabet:n.alphabet ~nstates ~start ~delta ~accepting

(* The seed's subset construction, kept verbatim as the reference
   implementation: the property tests check the optimized [determinize]
   against it, and the bench harness times it as the seed baseline. Its
   [List.mem_assoc] frontier test is quadratic in the number of DFA
   states — that is the point of keeping it. *)
let determinize_ref n =
  let table = Hashtbl.create 64 in
  let states = ref [] in
  let count = ref 0 in
  let intern set =
    match Hashtbl.find_opt table set with
    | Some i -> i
    | None ->
        let i = !count in
        incr count;
        Hashtbl.add table set i;
        states := set :: !states;
        i
  in
  let start_set = List.sort_uniq compare n.starts in
  let start = intern start_set in
  let transitions = ref [] in
  let rec explore set =
    let i = Hashtbl.find table set in
    if not (List.mem_assoc i !transitions) then begin
      let row =
        Array.init n.alphabet (fun s ->
            let succ = successors n set s in
            let fresh = not (Hashtbl.mem table succ) in
            let j = intern succ in
            if fresh then explore succ;
            j)
      in
      transitions := (i, (set, row)) :: !transitions
    end
  in
  explore start_set;
  let nstates = !count in
  let delta = Array.make nstates [||] in
  let accepting = Array.make nstates false in
  List.iter
    (fun (i, (set, row)) ->
      delta.(i) <- row;
      accepting.(i) <- List.exists (fun q -> n.accepting.(q)) set)
    !transitions;
  Dfa.make ~alphabet:n.alphabet ~nstates ~start ~delta ~accepting

let union a b =
  if a.alphabet <> b.alphabet then invalid_arg "Nfa.union: alphabets differ";
  let shift = a.nstates in
  let nstates = a.nstates + b.nstates in
  let delta = Array.make_matrix nstates a.alphabet [] in
  Array.iteri (fun q row -> Array.iteri (fun s l -> delta.(q).(s) <- l) row)
    a.delta;
  Array.iteri
    (fun q row ->
      Array.iteri
        (fun s l -> delta.(q + shift).(s) <- List.map (( + ) shift) l)
        row)
    b.delta;
  let accepting = Array.make nstates false in
  Array.iteri (fun q acc -> accepting.(q) <- acc) a.accepting;
  Array.iteri (fun q acc -> accepting.(q + shift) <- acc) b.accepting;
  make ~alphabet:a.alphabet ~nstates
    ~starts:(a.starts @ List.map (( + ) shift) b.starts)
    ~delta ~accepting

let is_empty n =
  let reach = reachable n in
  let found = ref false in
  Array.iteri (fun q r -> if r && n.accepting.(q) then found := true) reach;
  not !found

let language_equal a b = Dfa.equivalent (determinize a) (determinize b)
let is_prefix_closed n = Dfa.is_prefix_closed (determinize n)

let prefix_closure n =
  let t = trim n in
  { t with accepting = Array.make t.nstates true }

let reverse n =
  let delta = Array.make_matrix n.nstates n.alphabet [] in
  Array.iteri
    (fun q row ->
      Array.iteri
        (fun s succs ->
          List.iter (fun q' -> delta.(q').(s) <- q :: delta.(q').(s)) succs)
        row)
    n.delta;
  Array.iter
    (fun row -> Array.iteri (fun s l -> row.(s) <- List.sort_uniq compare l) row)
    delta;
  let starts =
    List.filter (fun q -> n.accepting.(q)) (List.init n.nstates Fun.id)
  in
  let accepting = Array.make n.nstates false in
  List.iter (fun q -> accepting.(q) <- true) n.starts;
  make ~alphabet:n.alphabet ~nstates:n.nstates ~starts ~delta ~accepting

let reverse_determinize_minimize n = Dfa.minimize (determinize n)

(* Brzozowski: the determinization of a co-deterministic automaton is
   minimal; reversing twice restores the language. *)
let brzozowski_minimize n =
  let of_dfa (d : Dfa.t) =
    make ~alphabet:d.Dfa.alphabet ~nstates:d.Dfa.nstates
      ~starts:[ d.Dfa.start ]
      ~delta:(Array.map (Array.map (fun q -> [ q ])) d.Dfa.delta)
      ~accepting:(Array.copy d.Dfa.accepting)
  in
  determinize (of_dfa (determinize (reverse n)) |> reverse)

let pp fmt n =
  Format.fprintf fmt "@[<v>nfa(%d states, starts %s)@," n.nstates
    (String.concat "," (List.map string_of_int n.starts));
  for q = 0 to n.nstates - 1 do
    Format.fprintf fmt "  %d%s:" q (if n.accepting.(q) then "*" else "");
    Array.iteri
      (fun s succs ->
        List.iter (fun q' -> Format.fprintf fmt " %d->%d" s q') succs)
      n.delta.(q);
    Format.fprintf fmt "@,"
  done;
  Format.fprintf fmt "@]"
