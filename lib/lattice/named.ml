module Poset = Sl_order.Poset
(* Figure 1 (N5): 0 = bot, 1 = a, 2 = b, 3 = c, 4 = top. *)
let n5_bot = 0
let n5_a = 1
let n5_b = 2
let n5_c = 3
let n5_top = 4

let n5 =
  Lattice.of_covers ~size:5
    ~covers:[ (n5_bot, n5_a); (n5_a, n5_b); (n5_b, n5_top);
              (n5_bot, n5_c); (n5_c, n5_top) ]

let n5_label = function
  | 0 -> "0"
  | 1 -> "a"
  | 2 -> "b"
  | 3 -> "c"
  | 4 -> "1"
  | x -> string_of_int x

(* Figure 2 (M3): 0 = a (bottom), 1 = s, 2 = b, 3 = z, 4 = top. *)
let m3_a = 0
let m3_s = 1
let m3_b = 2
let m3_z = 3
let m3_top = 4

let m3 =
  Lattice.of_covers ~size:5
    ~covers:[ (m3_a, m3_s); (m3_a, m3_b); (m3_a, m3_z);
              (m3_s, m3_top); (m3_b, m3_top); (m3_z, m3_top) ]

let m3_label = function
  | 0 -> "a"
  | 1 -> "s"
  | 2 -> "b"
  | 3 -> "z"
  | 4 -> "1"
  | x -> string_of_int x

let chain n = Lattice.of_poset (Poset.chain n)

(* Boolean lattices are fixed objects like [n5] and [m3]; the small ones
   are built once at module init so repeated [boolean n] calls (sweeps,
   benches, property tests) share one immutable instance instead of
   rebuilding the 2^n x 2^n meet/join tables every time. *)
let boolean_fresh n = Lattice.of_poset (Poset.powerset n)
let boolean_small = Array.init 6 boolean_fresh

let boolean n =
  if n >= 0 && n < Array.length boolean_small then boolean_small.(n)
  else boolean_fresh n

let diamond k =
  if k = 0 then chain 2
  else begin
    (* 0 = bottom, 1..k = atoms, k+1 = top. *)
    let covers =
      List.concat_map (fun i -> [ (0, i); (i, k + 1) ])
        (List.init k (fun i -> i + 1))
    in
    Lattice.of_covers ~size:(k + 2) ~covers
  end

let divisor n =
  let p, ds = Poset.divisors n in
  (Lattice.of_poset p, ds)

let subgroup_z n = divisor n

(* Partitions of {0..n-1} as canonical block-id arrays: cell i holds the
   index of the block containing i, blocks numbered by first occurrence. *)
let partitions_of n =
  let canonize a =
    let map = Hashtbl.create 8 in
    let next = ref 0 in
    Array.map
      (fun b ->
        match Hashtbl.find_opt map b with
        | Some c -> c
        | None ->
            let c = !next in
            incr next;
            Hashtbl.add map b c;
            c)
      a
  in
  let rec build i acc =
    if i = n then [ canonize (Array.of_list (List.rev acc)) ]
    else begin
      let max_block = List.fold_left max (-1) acc in
      List.concat_map
        (fun b -> build (i + 1) (b :: acc))
        (List.init (max_block + 2) Fun.id)
    end
  in
  build 0 []

(* p refines q: every block of p is inside a block of q. *)
let refines p q =
  let n = Array.length p in
  let ok = ref true in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if p.(i) = p.(j) && q.(i) <> q.(j) then ok := false
    done
  done;
  !ok

let partition n =
  if n < 1 then invalid_arg "Named.partition: n must be >= 1";
  let parts = Array.of_list (partitions_of n) in
  let poset =
    Poset.make ~size:(Array.length parts) ~leq:(fun i j ->
        refines parts.(i) parts.(j))
  in
  Lattice.of_poset poset

let all_small =
  [ ("chain2", chain 2); ("chain3", chain 3); ("chain4", chain 4);
    ("chain5", chain 5);
    ("bool1", boolean 1); ("bool2", boolean 2); ("bool3", boolean 3);
    ("n5", n5); ("m3", m3); ("m4", diamond 4);
    ("div12", fst (divisor 12)); ("div30", fst (divisor 30));
    ("div36", fst (divisor 36));
    ("part3", partition 3); ("part4", partition 4);
    ("chain3xchain3", Lattice.product (chain 3) (chain 3));
    ("n5xchain2", Lattice.product n5 (chain 2)) ]
