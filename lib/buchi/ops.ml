let union (a : Buchi.t) (b : Buchi.t) =
  if a.alphabet <> b.alphabet then invalid_arg "Ops.union: alphabets differ";
  (* New state 0 is the fresh start; a's states shift by 1, b's by
     1 + a.nstates. *)
  let shift_a = 1 and shift_b = 1 + a.nstates in
  let nstates = 1 + a.nstates + b.nstates in
  let delta = Array.make_matrix nstates a.alphabet [] in
  for s = 0 to a.alphabet - 1 do
    delta.(0).(s) <-
      List.map (( + ) shift_a) a.delta.(a.start).(s)
      @ List.map (( + ) shift_b) b.delta.(b.start).(s)
  done;
  Array.iteri
    (fun q row ->
      Array.iteri
        (fun s l -> delta.(q + shift_a).(s) <- List.map (( + ) shift_a) l)
        row)
    a.delta;
  Array.iteri
    (fun q row ->
      Array.iteri
        (fun s l -> delta.(q + shift_b).(s) <- List.map (( + ) shift_b) l)
        row)
    b.delta;
  let accepting = Array.make nstates false in
  Array.iteri (fun q acc -> accepting.(q + shift_a) <- acc) a.accepting;
  Array.iteri (fun q acc -> accepting.(q + shift_b) <- acc) b.accepting;
  (* The fresh start is never revisited, so its acceptance is irrelevant;
     leave it rejecting. Every successor is a shifted state of a validated
     automaton, so skip the [Buchi.make] re-validation pass. *)
  { Buchi.alphabet = a.alphabet; nstates; start = 0; delta; accepting }

(* State (qa, qb, phase): phase 0 waits for an accepting state of [a],
   phase 1 for one of [b]; acceptance on the 0->1 switch points. *)

(* The seed's materialized product, kept verbatim as the reference
   implementation: it allocates all [na * nb * 2] states whether or not
   they are reachable. Property tests check [intersect] against it and the
   bench harness times it as the seed baseline. *)
let intersect_full (a : Buchi.t) (b : Buchi.t) =
  if a.alphabet <> b.alphabet then
    invalid_arg "Ops.intersect: alphabets differ";
  let na = a.nstates and nb = b.nstates in
  let encode qa qb ph = (((qa * nb) + qb) * 2) + ph in
  let nstates = na * nb * 2 in
  let delta = Array.make_matrix nstates a.alphabet [] in
  for qa = 0 to na - 1 do
    for qb = 0 to nb - 1 do
      for ph = 0 to 1 do
        let next_phase =
          if ph = 0 && a.accepting.(qa) then 1
          else if ph = 1 && b.accepting.(qb) then 0
          else ph
        in
        for s = 0 to a.alphabet - 1 do
          delta.(encode qa qb ph).(s) <-
            List.concat_map
              (fun qa' ->
                List.map (fun qb' -> encode qa' qb' next_phase)
                  b.delta.(qb).(s))
              a.delta.(qa).(s)
        done
      done
    done
  done;
  let accepting =
    Array.init nstates (fun code ->
        let ph = code land 1 in
        let qa = code / 2 / nb in
        ph = 0 && a.accepting.(qa))
  in
  Buchi.make ~alphabet:a.alphabet ~nstates
    ~start:(encode a.start b.start 0)
    ~delta ~accepting

(* On-the-fly product: breadth-first exploration from the start state, so
   only reachable product states are numbered and given transition rows.
   The scratch id table costs one word per *potential* state; the seed
   paid a full transition row (an [alphabet]-array of successor lists) for
   each of them. *)
let intersect (a : Buchi.t) (b : Buchi.t) =
  if a.alphabet <> b.alphabet then
    invalid_arg "Ops.intersect: alphabets differ";
  let na = a.nstates and nb = b.nstates in
  let encode qa qb ph = ((((qa * nb) + qb) * 2) + ph : int) in
  let id = Array.make (na * nb * 2) (-1) in
  let count = ref 0 in
  let rev_order = ref [] in
  let queue = Queue.create () in
  let visit c =
    if id.(c) = -1 then begin
      id.(c) <- !count;
      incr count;
      rev_order := c :: !rev_order;
      Queue.push c queue
    end
  in
  let next_phase qa qb ph =
    if ph = 0 && a.accepting.(qa) then 1
    else if ph = 1 && b.accepting.(qb) then 0
    else ph
  in
  visit (encode a.start b.start 0);
  while not (Queue.is_empty queue) do
    let c = Queue.pop queue in
    let ph = c land 1 in
    let qa = c / 2 / nb and qb = c / 2 mod nb in
    let ph' = next_phase qa qb ph in
    for s = 0 to a.alphabet - 1 do
      List.iter
        (fun qa' ->
          List.iter (fun qb' -> visit (encode qa' qb' ph')) b.delta.(qb).(s))
        a.delta.(qa).(s)
    done
  done;
  let nstates = !count in
  let codes = Array.make nstates 0 in
  List.iter (fun c -> codes.(id.(c)) <- c) !rev_order;
  let delta =
    Array.init nstates (fun i ->
        let c = codes.(i) in
        let ph = c land 1 in
        let qa = c / 2 / nb and qb = c / 2 mod nb in
        let ph' = next_phase qa qb ph in
        Array.init a.alphabet (fun s ->
            List.concat_map
              (fun qa' ->
                List.map (fun qb' -> id.(encode qa' qb' ph')) b.delta.(qb).(s))
              a.delta.(qa).(s)))
  in
  let accepting =
    Array.init nstates (fun i ->
        let c = codes.(i) in
        c land 1 = 0 && a.accepting.(c / 2 / nb))
  in
  Buchi.make ~alphabet:a.alphabet ~nstates ~start:0 ~delta ~accepting

let intersect_list ~alphabet = function
  | [] -> Buchi.universal ~alphabet
  | x :: rest -> List.fold_left intersect x rest

let union_list ~alphabet = function
  | [] -> Buchi.empty_language ~alphabet
  | x :: rest -> List.fold_left union x rest
