module Lasso = Sl_word.Lasso

(** ω-word automata under the classical acceptance conditions beyond
    Büchi: Rabin, Streett, parity, and Muller.

    The paper's Section 4.4 uses the Rabin condition on trees; on words
    the same conditions form the standard expressiveness ladder, and all
    of them define exactly the ω-regular languages. This module provides:

    - direct lasso membership for each condition, by cycle analysis of the
      automaton × lasso product (a run's infinity set is the support of a
      closed walk, so each condition reduces to a polynomial search —
      Streett through the same SCC-peeling recursion as the tree case);
    - the textbook translations [rabin_to_buchi] and [parity_to_buchi],
      validated per-lasso against the direct semantics.

    The transition structure is shared with {!Buchi.t}. *)

type condition =
  | Rabin of (bool array * bool array) list
      (** some pair: green infinitely often ∧ red finitely often *)
  | Streett of (bool array * bool array) list
      (** every pair: green infinitely often → red infinitely often *)
  | Parity of int array
      (** the least priority seen infinitely often is even *)
  | Muller of bool array list
      (** the infinity set is exactly one of the listed sets *)

type t = {
  alphabet : int;
  nstates : int;
  start : int;
  delta : int list array array;
  condition : condition;
}

val make :
  alphabet:int -> nstates:int -> start:int -> delta:int list array array ->
  condition:condition -> t

val of_buchi : Buchi.t -> t
(** As a one-pair Rabin automaton. *)

val graph : t -> Sl_core.Digraph.t
(** The symbol-labeled transition graph as a CSR kernel graph. *)

val accepts_lasso : t -> Lasso.t -> bool

val rabin_to_buchi : t -> Buchi.t
(** For each pair [(G, R)], a copy of the automaton restricted to
    [Q \ R] with acceptance [G], entered by a nondeterministic jump
    (guessing the point after which red states never recur); the results
    are unioned. Language-preserving. @raise Invalid_argument on other
    conditions. *)

val parity_to_buchi : t -> Buchi.t
(** Via the standard parity→Rabin chain. *)

val pp : Format.formatter -> t -> unit
