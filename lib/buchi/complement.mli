(** Complementation of Büchi automata.

    Two constructions:

    - {!complement_closed} — for closure automata (safety languages) only.
      A closed language is determined by its prefix set; since that set is
      prefix-closed, the subset construction over the prefix NFA has a
      single rejecting sink, and the complement is the co-safety language
      "some prefix leaves the prefix set", recognized deterministically by
      accepting exactly at that sink. Cheap (one determinization), and the
      only complementation the paper's decomposition (Theorem 1 / Section
      2.4) actually needs: [B_L = B ∪ ¬(bcl B)].

    - {!rank_based} — full Kupferman–Vardi rank-based complementation for
      arbitrary Büchi automata, used to decide language containment
      ({!Lang}) and to close the Boolean algebra of ω-regular languages
      that instantiates [Sl_core.Theory]. Exponential: guarded by a
      state-budget. *)

exception Too_large of string
(** Raised by {!rank_based} when the construction would exceed the given
    state budget. *)

val complement_closed : Buchi.t -> Buchi.t
(** Complement of the language of a closure-shaped automaton (see
    {!Closure.is_closure_shaped}); also accepts an automaton with the
    empty language (complement = universal).
    @raise Invalid_argument if the automaton is neither. *)

val rank_based :
  ?max_states:int -> ?jobs:int -> ?threshold:int -> Buchi.t -> Buchi.t
(** Full complementation; the result accepts exactly [Σ^ω \ L(B)].
    Rank bound [2 (n - |F ∩ reachable|) ] with the even-rank restriction on
    accepting states. Ranking states are interned through a hashtable with
    a whole-structure hash. [max_states] (default [200_000]) bounds the
    explored complement automaton. @raise Too_large when exceeded.

    With [jobs > 1] (default {!Sl_core.Pool.default_jobs}) the frontier's
    ranking-successor enumeration is partitioned across a domain pool
    level by level, with a sequential deterministic interning merge
    between levels: the resulting automaton is byte-identical at every
    [jobs]. [threshold] (default [16]) is the per-level work-size
    cutoff: a BFS level narrower than that many frontier states expands
    sequentially even on a wide pool, since the domain spawn would cost
    more than the split saves. Never changes the automaton. *)

val rank_based_ref : ?max_states:int -> Buchi.t -> Buchi.t
(** The seed's [Map.Make]-interned construction, kept as the reference
    implementation for property tests and bench baselines. Explores in the
    same breadth-first order as {!rank_based} and produces the identical
    automaton. *)
