module Lasso = Sl_word.Lasso

type t = {
  alphabet : int;
  nstates : int;
  start : int;
  delta : int list array array;
  acceptance : bool array list;
}

let make ~alphabet ~nstates ~start ~delta ~acceptance =
  (* Reuse the Büchi validator for the shared shape. *)
  let shape =
    Buchi.make ~alphabet ~nstates ~start ~delta
      ~accepting:(Array.make nstates false)
  in
  ignore shape;
  let acceptance =
    match acceptance with
    | [] -> [ Array.make nstates true ]
    | sets ->
        List.iter
          (fun set ->
            if Array.length set <> nstates then
              invalid_arg "Gnba.make: acceptance set shape")
          sets;
        sets
  in
  { alphabet; nstates; start; delta; acceptance }

let of_buchi (b : Buchi.t) =
  make ~alphabet:b.alphabet ~nstates:b.nstates ~start:b.start ~delta:b.delta
    ~acceptance:[ Array.copy b.accepting ]

let degeneralize g =
  let k = List.length g.acceptance in
  let sets = Array.of_list g.acceptance in
  let nstates = g.nstates * k in
  let encode q i = (q * k) + i in
  let bump q i = if sets.(i).(q) then (i + 1) mod k else i in
  let delta =
    Array.init nstates (fun code ->
        let q = code / k and i = code mod k in
        Array.map (List.map (fun q' -> encode q' (bump q i))) g.delta.(q))
  in
  let accepting =
    Array.init nstates (fun code ->
        let q = code / k and i = code mod k in
        i = 0 && sets.(0).(q))
  in
  Buchi.make ~alphabet:g.alphabet ~nstates ~start:(encode g.start 0) ~delta
    ~accepting

(* Generic search for a reachable nontrivial SCC meeting every acceptance
   predicate, over an explicit successor function. *)
let good_scc ~nnodes ~succs ~start ~predicates =
  let seen = Array.make nnodes false in
  let rec visit v =
    if not seen.(v) then begin
      seen.(v) <- true;
      List.iter visit (succs v)
    end
  in
  visit start;
  let index = Array.make nnodes (-1) in
  let lowlink = Array.make nnodes 0 in
  let on_stack = Array.make nnodes false in
  let stack = ref [] in
  let counter = ref 0 in
  let found = ref false in
  let rec strongconnect v =
    index.(v) <- !counter;
    lowlink.(v) <- !counter;
    incr counter;
    stack := v :: !stack;
    on_stack.(v) <- true;
    List.iter
      (fun w ->
        if seen.(w) then
          if index.(w) = -1 then begin
            strongconnect w;
            lowlink.(v) <- min lowlink.(v) lowlink.(w)
          end
          else if on_stack.(w) then lowlink.(v) <- min lowlink.(v) index.(w))
      (succs v);
    if lowlink.(v) = index.(v) then begin
      let members = ref [] in
      let brk = ref false in
      while not !brk do
        match !stack with
        | [] -> brk := true
        | w :: rest ->
            stack := rest;
            on_stack.(w) <- false;
            members := w :: !members;
            if w = v then brk := true
      done;
      let ms = !members in
      let nontrivial =
        match ms with
        | [ single ] -> List.exists (Int.equal single) (succs single)
        | _ -> List.length ms > 1
      in
      if
        nontrivial
        && List.for_all (fun pred -> List.exists pred ms) predicates
      then found := true
    end
  in
  for v = 0 to nnodes - 1 do
    if seen.(v) && index.(v) = -1 then strongconnect v
  done;
  !found

let accepts_lasso g w =
  let sp = Lasso.spoke w and pe = Lasso.period w in
  let total = sp + pe in
  let next p = if p + 1 < total then p + 1 else sp in
  let node q p = (q * total) + p in
  let succs v =
    let q = v / total and p = v mod total in
    List.map (fun q' -> node q' (next p)) g.delta.(q).(Lasso.at w p)
  in
  good_scc ~nnodes:(g.nstates * total) ~succs ~start:(node g.start 0)
    ~predicates:
      (List.map (fun set v -> set.(v / total)) g.acceptance)

let is_empty g =
  let succs q =
    Array.fold_left (fun acc l -> List.rev_append l acc) [] g.delta.(q)
    |> List.sort_uniq compare
  in
  not
    (good_scc ~nnodes:g.nstates ~succs ~start:g.start
       ~predicates:(List.map (fun set q -> set.(q)) g.acceptance))

let pp fmt g =
  Format.fprintf fmt "@[<v>gnba(%d states, %d sets, start %d)@," g.nstates
    (List.length g.acceptance) g.start;
  for q = 0 to g.nstates - 1 do
    let marks =
      String.concat ""
        (List.mapi
           (fun i set -> if set.(q) then string_of_int i else "")
           g.acceptance)
    in
    Format.fprintf fmt "  %d{%s}:" q marks;
    Array.iteri
      (fun s succs ->
        List.iter (fun q' -> Format.fprintf fmt " %d->%d" s q') succs)
      g.delta.(q);
    Format.fprintf fmt "@,"
  done;
  Format.fprintf fmt "@]"
