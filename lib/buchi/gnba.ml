module Lasso = Sl_word.Lasso
module Digraph = Sl_core.Digraph

type t = {
  alphabet : int;
  nstates : int;
  start : int;
  delta : int list array array;
  acceptance : bool array list;
}

let make ~alphabet ~nstates ~start ~delta ~acceptance =
  (* Reuse the Büchi validator for the shared shape. *)
  let shape =
    Buchi.make ~alphabet ~nstates ~start ~delta
      ~accepting:(Array.make nstates false)
  in
  ignore shape;
  let acceptance =
    match acceptance with
    | [] -> [ Array.make nstates true ]
    | sets ->
        List.iter
          (fun set ->
            if Array.length set <> nstates then
              invalid_arg "Gnba.make: acceptance set shape")
          sets;
        sets
  in
  { alphabet; nstates; start; delta; acceptance }

let of_buchi (b : Buchi.t) =
  make ~alphabet:b.alphabet ~nstates:b.nstates ~start:b.start ~delta:b.delta
    ~acceptance:[ Array.copy b.accepting ]

let degeneralize g =
  let k = List.length g.acceptance in
  let sets = Array.of_list g.acceptance in
  let nstates = g.nstates * k in
  let encode q i = (q * k) + i in
  let bump q i = if sets.(i).(q) then (i + 1) mod k else i in
  let delta =
    Array.init nstates (fun code ->
        let q = code / k and i = code mod k in
        Array.map (List.map (fun q' -> encode q' (bump q i))) g.delta.(q))
  in
  let accepting =
    Array.init nstates (fun code ->
        let q = code / k and i = code mod k in
        i = 0 && sets.(0).(q))
  in
  Buchi.make ~alphabet:g.alphabet ~nstates ~start:(encode g.start 0) ~delta
    ~accepting

let graph g = Digraph.of_delta g.delta

(* Compile-time witness: this module has the shared automaton shape. *)
module _ : Sl_core.Automaton_sig.S with type t = t = struct
  type nonrec t = t

  let alphabet g = g.alphabet
  let nstates g = g.nstates
  let graph = graph
end

(* Both emptiness and lasso membership are the kernel's generalized
   good-SCC query: a reachable nontrivial SCC meeting every acceptance
   predicate. *)

let accepts_lasso g w =
  let sp = Lasso.spoke w and pe = Lasso.period w in
  let total = sp + pe in
  let next p = if p + 1 < total then p + 1 else sp in
  let node q p = (q * total) + p in
  let succs =
    Array.init (g.nstates * total) (fun v ->
        let q = v / total and p = v mod total in
        List.map (fun q' -> node q' (next p)) g.delta.(q).(Lasso.at w p))
  in
  let dg = Digraph.of_successors succs in
  let reach = Digraph.reachable dg [ node g.start 0 ] in
  Digraph.has_good_scc dg
    ~filter:(fun v -> reach.(v))
    ~predicates:(List.map (fun set v -> set.(v / total)) g.acceptance)

let is_empty g =
  let dg = graph g in
  let reach = Digraph.reachable dg [ g.start ] in
  not
    (Digraph.has_good_scc dg
       ~filter:(fun q -> reach.(q))
       ~predicates:(List.map (fun set q -> set.(q)) g.acceptance))

let pp fmt g =
  Format.fprintf fmt "@[<v>gnba(%d states, %d sets, start %d)@," g.nstates
    (List.length g.acceptance) g.start;
  for q = 0 to g.nstates - 1 do
    let marks =
      String.concat ""
        (List.mapi
           (fun i set -> if set.(q) then string_of_int i else "")
           g.acceptance)
    in
    Format.fprintf fmt "  %d{%s}:" q marks;
    Array.iteri
      (fun s succs ->
        List.iter (fun q' -> Format.fprintf fmt " %d->%d" s q') succs)
      g.delta.(q);
    Format.fprintf fmt "@,"
  done;
  Format.fprintf fmt "@]"
