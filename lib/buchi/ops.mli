(** Boolean-style operations on Büchi automata.

    The paper uses closure of Büchi-definable languages under union,
    intersection and complementation to build the Boolean algebra that
    Theorem 3 is instantiated at; [union] and [intersect] live here,
    complementation in {!Complement}. *)

val union : Buchi.t -> Buchi.t -> Buchi.t
(** Disjoint union behind a fresh start state:
    [L (union a b) = L a ∪ L b]. Alphabets must agree. *)

val intersect : Buchi.t -> Buchi.t -> Buchi.t
(** Degeneralized product (two-track construction with a phase flag):
    [L (intersect a b) = L a ∩ L b]. Explored on the fly from the start
    state, so only reachable product states are allocated. *)

val intersect_full : Buchi.t -> Buchi.t -> Buchi.t
(** The seed's materialized product — all [na * nb * 2] states, reachable
    or not — kept verbatim as the reference implementation for property
    tests and bench baselines. Language-equal to {!intersect}. *)

val intersect_list : alphabet:int -> Buchi.t list -> Buchi.t
(** Fold of {!intersect}; the empty intersection is {!Buchi.universal}. *)

val union_list : alphabet:int -> Buchi.t list -> Buchi.t
