module Dfa = Sl_nfa.Dfa
module Nfa = Sl_nfa.Nfa

type verdict =
  | Admissible
  | Violation of int list

type t = {
  dfa : Dfa.t;
  empty_property : bool;  (** degenerate: even the empty prefix is bad *)
  mutable state : int;
  mutable seen : int list;  (** reversed prefix *)
  mutable tripped : int list option;  (** the bad prefix once found *)
}

let create b =
  let safety = Closure.bcl b in
  let dfa = Nfa.determinize (Buchi.to_prefix_nfa safety) in
  (* Degenerate corner: the empty property has no admissible prefix at
     all — even the empty one is bad. *)
  let empty_property = Buchi.is_empty safety in
  let tripped = if empty_property then Some [] else None in
  { dfa; empty_property; state = dfa.Dfa.start; seen = []; tripped }

let verdict m =
  match m.tripped with
  | Some bad -> Violation bad
  | None -> Admissible

let step m symbol =
  (match m.tripped with
  | Some _ -> ()
  | None ->
      m.seen <- symbol :: m.seen;
      m.state <- Dfa.step m.dfa m.state symbol;
      (* The prefix language is prefix-closed, so acceptance is lost at
         most once — at the end of the shortest bad prefix. *)
      if not m.dfa.Dfa.accepting.(m.state) then
        m.tripped <- Some (List.rev m.seen));
  verdict m

(* Short-circuit on the first violation: the verdict is irrevocable, so
   stepping the tripped automaton through the rest of the batch is pure
   waste. *)
let rec feed m word =
  match word with
  | [] -> verdict m
  | s :: rest -> (
      match step m s with
      | Violation _ as v -> v
      | Admissible -> feed m rest)

let dfa m = m.dfa
let empty_property m = m.empty_property

let reset m =
  m.state <- m.dfa.Dfa.start;
  m.seen <- [];
  m.tripped <- (if m.empty_property then Some [] else None)

let is_vacuous m = Dfa.is_empty (Dfa.complement m.dfa)

let shortest_bad_prefix b =
  let m = create b in
  Dfa.some_accepted_word (Dfa.complement m.dfa)
