exception Too_large of string

module Obs = Sl_obs.Obs

(* Rank-based complementation telemetry (recorded only while Sl_obs is
   enabled): constructed state counts and ranking-interner hit rate. *)
let m_rank_runs = Obs.Metrics.counter "buchi_rank_complement_runs_total"
let h_rank_states = Obs.Metrics.histogram "buchi_rank_complement_states"
let m_rank_interner_hits = Obs.Metrics.counter "buchi_rank_interner_hits_total"

let complement_closed (b : Buchi.t) =
  if Buchi.is_empty b then Buchi.universal ~alphabet:b.alphabet
  else if not (Closure.is_closure_shaped b) then
    invalid_arg "Complement.complement_closed: automaton is not closure-shaped"
  else begin
    (* The prefix language P of a closure automaton is prefix-closed and
       its complement is extension-closed, so in the subset DFA the empty
       set is the unique rejecting sink: a word is outside the closed
       ω-language iff its run eventually falls into that sink. *)
    let dfa = Sl_nfa.Nfa.determinize (Buchi.to_prefix_nfa b) in
    let delta = Array.map (fun row -> Array.map (fun q -> [ q ]) row)
        dfa.Sl_nfa.Dfa.delta in
    let accepting = Array.map not dfa.Sl_nfa.Dfa.accepting in
    if not (Array.exists Fun.id accepting) then
      Buchi.empty_language ~alphabet:b.alphabet
    else
      Buchi.make ~alphabet:b.alphabet ~nstates:dfa.Sl_nfa.Dfa.nstates
        ~start:dfa.Sl_nfa.Dfa.start ~delta ~accepting
  end

(* Kupferman–Vardi rank-based complementation. Complement states are pairs
   (g, O): g a level ranking (rank per tracked state of B, -1 for absent;
   accepting states even) and O the subset of even-ranked states currently
   "owing" a rank decrease. Acceptance: O = empty. *)
module Ranking = struct
  type t = { g : int array; o : int list }

  let compare = Stdlib.compare
  let equal a b = a.g = b.g && a.o = b.o

  (* Whole-structure FNV-style mix: [Hashtbl.hash] truncates after a
     bounded number of nodes, which collapses large rankings into
     collision chains. *)
  let hash { g; o } =
    let h = ref 0x811c9dc5 in
    Array.iter (fun r -> h := (!h lxor (r + 2)) * 0x01000193) g;
    List.iter (fun q -> h := (!h lxor (q * 31)) * 0x01000193) o;
    !h land max_int
end

module Rtable = Hashtbl.Make (Ranking)

let max_rank_of (b : Buchi.t) =
  let reach = Buchi.reachable b in
  let reachable_non_accepting = ref 0 in
  Array.iteri
    (fun q r -> if r && not b.accepting.(q) then incr reachable_non_accepting)
    reach;
  max 2 (2 * !reachable_non_accepting)

let initial_ranking (b : Buchi.t) ~max_rank =
  let g = Array.make b.nstates (-1) in
  g.(b.start) <- max_rank;
  { Ranking.g; o = [] }

(* Legal ranking successors of [st] on symbol [s]; shared by the
   hash-interned construction and the seed reference below. *)
let ranking_successors (b : Buchi.t) (st : Ranking.t) s =
    let n = b.nstates in
    let dom = ref [] in
    Array.iteri (fun q r -> if r >= 0 then dom := q :: !dom) st.g;
    let dom = !dom in
    (* Upper bound on each successor's rank: min over predecessors. *)
    let bound = Array.make n max_int in
    List.iter
      (fun q ->
        List.iter
          (fun q' -> bound.(q') <- min bound.(q') st.g.(q))
          b.delta.(q).(s))
      dom;
    let succ_states =
      List.filter (fun q' -> bound.(q') < max_int) (List.init n Fun.id)
    in
    (* Enumerate all legal rankings g' over succ_states. *)
    let rec assign acc = function
      | [] -> [ List.rev acc ]
      | q' :: rest ->
          let ranks =
            List.filter
              (fun r -> (not b.accepting.(q')) || r mod 2 = 0)
              (List.init (bound.(q') + 1) Fun.id)
          in
          List.concat_map (fun r -> assign ((q', r) :: acc) rest) ranks
    in
    let rankings = assign [] succ_states in
    List.map
      (fun assoc ->
        let g' = Array.make n (-1) in
        List.iter (fun (q', r) -> g'.(q') <- r) assoc;
        let even q' = g'.(q') >= 0 && g'.(q') mod 2 = 0 in
        let o' =
          if st.o = [] then List.filter even succ_states
          else begin
            let o_succ =
              List.concat_map (fun q -> b.delta.(q).(s)) st.o
              |> List.sort_uniq Stdlib.compare
            in
            List.filter even o_succ
          end
        in
        { Ranking.g = g'; o = o' })
      rankings

(* Hash-interned construction: ranking states get dense ids through an
   [Rtable] (constant-time amortized lookup with a whole-structure hash)
   where the seed threaded every lookup through a [Map.Make] balanced tree
   keyed by [Stdlib.compare]. Breadth-first, so state numbering matches
   the seed reference exactly.

   With [jobs > 1] the construction is level-synchronized: the frontier
   (all interned-but-unexpanded states, in id order) has its
   [ranking_successors] — the combinatorial enumeration that dominates
   the cost — computed across the pool's domains into per-state slots,
   then one sequential merge pass walks the slots in frontier order,
   interning successors and emitting transition rows. Sequential FIFO
   BFS processes states in exactly id order too, so the merge interns
   every ranking at the same ordinal as the sequential loop and the
   resulting automaton (numbering, rows, acceptance) is byte-identical
   at every [jobs]. *)
let rank_based ?(max_states = 200_000) ?jobs ?(threshold = 16) (b : Buchi.t) =
  if threshold < 0 then
    invalid_arg "Complement.rank_based: threshold must be >= 0";
  let pool = Sl_core.Pool.create ?jobs () in
  let sp = Obs.Span.enter "buchi.rank_complement" in
  let max_rank = max_rank_of b in
  let interned = Rtable.create 256 in
  let states = ref [] in
  let count = ref 0 in
  let intern_calls = ref 0 in
  let intern st =
    incr intern_calls;
    match Rtable.find_opt interned st with
    | Some i -> i
    | None ->
        let i = !count in
        if i >= max_states then
          raise
            (Too_large
               (Printf.sprintf "rank-based complement exceeds %d states"
                  max_states));
        incr count;
        Rtable.add interned st i;
        states := st :: !states;
        i
  in
  let initial = initial_ranking b ~max_rank in
  let transitions = Hashtbl.create 256 in
  let finish ~start =
    let nstates = !count in
    let all_states = Array.make nstates initial in
    List.iter (fun st -> all_states.(Rtable.find interned st) <- st) !states;
    let delta =
      Array.init nstates (fun i ->
          match Hashtbl.find_opt transitions i with
          | Some row -> row
          | None -> Array.make b.alphabet [])
    in
    let accepting =
      Array.init nstates (fun i -> all_states.(i).Ranking.o = [])
    in
    Buchi.make ~alphabet:b.alphabet ~nstates ~start ~delta ~accepting
  in
  let build_seq () =
    (* Breadth-first construction. *)
    let queue = Queue.create () in
    let start = intern initial in
    Queue.push initial queue;
    while not (Queue.is_empty queue) do
      let st = Queue.pop queue in
      let i = Rtable.find interned st in
      if not (Hashtbl.mem transitions i) then begin
        let row =
          Array.init b.alphabet (fun s ->
              List.map
                (fun st' ->
                  let fresh = not (Rtable.mem interned st') in
                  let j = intern st' in
                  if fresh then Queue.push st' queue;
                  j)
                (ranking_successors b st s)
              |> List.sort_uniq Stdlib.compare)
        in
        Hashtbl.replace transitions i row
      end
    done;
    finish ~start
  in
  let build_par () =
    let start = intern initial in
    let frontier = ref [ initial ] in
    while !frontier <> [] do
      let fr = Array.of_list !frontier in
      let nf = Array.length fr in
      let succs = Array.make nf [||] in
      let expand i =
        succs.(i) <-
          Array.init b.alphabet (fun s -> ranking_successors b fr.(i) s)
      in
      (* Per-level work-size cutoff: a narrow frontier (BFS start-up and
         tail levels) expands sequentially — the domain spawn costs more
         than the few enumerations it would split. Either way the merge
         below sees the same slots, so the automaton is unchanged. *)
      if nf < threshold then
        for i = 0 to nf - 1 do
          expand i
        done
      else Sl_core.Pool.parallel_for pool ~n:nf expand;
      (* Deterministic merge: intern in frontier order, symbol order,
         successor-list order — the sequential loop's intern order. *)
      let next = ref [] in
      for i = 0 to nf - 1 do
        let idx = Rtable.find interned fr.(i) in
        let row =
          Array.map
            (fun sts ->
              List.map
                (fun st' ->
                  let fresh = not (Rtable.mem interned st') in
                  let j = intern st' in
                  if fresh then next := st' :: !next;
                  j)
                sts
              |> List.sort_uniq Stdlib.compare)
            succs.(i)
        in
        Hashtbl.replace transitions idx row
      done;
      frontier := List.rev !next
    done;
    finish ~start
  in
  let build () =
    if Sl_core.Pool.jobs pool = 1 then build_seq () else build_par ()
  in
  match build () with
  | exception e ->
      Obs.Span.exit sp;
      raise e
  | result ->
      let hits = !intern_calls - !count in
      Obs.Metrics.incr m_rank_runs;
      Obs.Metrics.observe h_rank_states !count;
      Obs.Metrics.add m_rank_interner_hits hits;
      Obs.Span.attr sp "input_states" b.Buchi.nstates;
      Obs.Span.attr sp "max_rank" max_rank;
      Obs.Span.attr sp "states" !count;
      Obs.Span.attr sp "interner_hits" hits;
      Obs.Span.exit sp;
      result

(* The seed's Map-interned construction, kept as the reference
   implementation for property tests and bench baselines. Identical
   exploration order, so it produces the same automaton as {!rank_based}. *)
let rank_based_ref ?(max_states = 200_000) (b : Buchi.t) =
  let max_rank = max_rank_of b in
  let module S = Map.Make (Ranking) in
  let interned = ref S.empty in
  let states = ref [] in
  let count = ref 0 in
  let intern st =
    match S.find_opt st !interned with
    | Some i -> i
    | None ->
        let i = !count in
        if i >= max_states then
          raise
            (Too_large
               (Printf.sprintf "rank-based complement exceeds %d states"
                  max_states));
        incr count;
        interned := S.add st i !interned;
        states := st :: !states;
        i
  in
  let initial = initial_ranking b ~max_rank in
  let transitions = Hashtbl.create 256 in
  let queue = Queue.create () in
  let start = intern initial in
  Queue.push initial queue;
  while not (Queue.is_empty queue) do
    let st = Queue.pop queue in
    let i = S.find st !interned in
    if not (Hashtbl.mem transitions i) then begin
      let row =
        Array.init b.alphabet (fun s ->
            List.map
              (fun st' ->
                let fresh = not (S.mem st' !interned) in
                let j = intern st' in
                if fresh then Queue.push st' queue;
                j)
              (ranking_successors b st s)
            |> List.sort_uniq Stdlib.compare)
      in
      Hashtbl.replace transitions i row
    end
  done;
  let nstates = !count in
  let all_states = Array.make nstates initial in
  List.iter (fun st -> all_states.(S.find st !interned) <- st) !states;
  let delta =
    Array.init nstates (fun i ->
        match Hashtbl.find_opt transitions i with
        | Some row -> row
        | None -> Array.make b.alphabet [])
  in
  let accepting = Array.init nstates (fun i -> all_states.(i).Ranking.o = []) in
  Buchi.make ~alphabet:b.alphabet ~nstates ~start ~delta ~accepting
