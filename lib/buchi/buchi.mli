module Lasso = Sl_word.Lasso

(** Büchi automata on infinite words (Section 2.4 of the paper).

    A Büchi automaton is a 5-tuple [(Σ, Q, q0, δ, F)]; a run on
    [t ∈ Σ^ω] is an infinite state sequence following [δ], accepting iff it
    visits [F] infinitely often. States and symbols are integers; the
    transition relation is a list-valued table, so the same graph doubles as
    the prefix NFA ({!to_prefix_nfa}) used by the closure and complement
    constructions. *)

type t = {
  alphabet : int;
  nstates : int;
  start : int;
  delta : int list array array;
  accepting : bool array;
}

val make :
  alphabet:int -> nstates:int -> start:int -> delta:int list array array ->
  accepting:bool array -> t
(** Validates shapes and state ranges.
    @raise Invalid_argument on malformed input. *)

val of_edges :
  alphabet:int -> nstates:int -> start:int -> edges:(int * int * int) list ->
  accepting:int list -> t
(** Convenience constructor from [(source, symbol, target)] triples. *)

val empty_language : alphabet:int -> t
(** A one-state automaton with no accepting states: [L = ∅]. *)

val universal : alphabet:int -> t
(** A one-state all-accepting automaton with every self-loop:
    [L = Σ^ω]. *)

(** {1 Graph analysis}

    All analyses run on the shared packed-CSR kernel
    {!Sl_core.Digraph}; {!graph} exposes the handle. *)

val graph : t -> Sl_core.Digraph.t
(** The symbol-labeled transition graph as a CSR kernel graph (built on
    demand; successor order and duplicates preserved). *)

val reachable : t -> bool array

val sccs : t -> int array * int list list
(** Tarjan strongly connected components on the (symbol-erased) transition
    graph. Returns the component id of each state and the components in
    reverse topological order. *)

val on_cycle : t -> bool array
(** [on_cycle b q] iff [q] lies on some cycle ([q] reaches itself in one or
    more steps): a nontrivial SCC, or a self loop. *)

val live_states : t -> bool array
(** States [q] with [L(B(q)) ≠ ∅]: those reaching an accepting state that
    lies on a cycle. These are the states the paper's closure operator
    keeps ("removes states that cannot reach an accepting state" — read as
    accepting states occurring infinitely often). *)

val restrict : t -> bool array -> t
(** Keep exactly the marked states (renumbered). If the start is dropped,
    the result is an [empty_language] automaton. *)

val trim_live : t -> t
(** Restrict to reachable live states. The language is unchanged. *)

(** {1 Language probes} *)

val is_empty : t -> bool
(** [L(B) = ∅], via accepting-cycle reachability. *)

val nonempty_witness : t -> Lasso.t option
(** A lasso in the language, if nonempty (shortest-path BFS for both the
    spoke and the cycle). *)

val accepts_lasso : t -> Lasso.t -> bool
(** Membership of an ultimately periodic word: search for an accepting
    cycle in the product of the automaton with the lasso's positions. *)

val to_prefix_nfa : t -> Sl_nfa.Nfa.t
(** The same graph read as an NFA on finite words, all states accepting:
    its language is the set of finite runs' labels from the start (the
    prefix language of [B]'s run tree). *)

val rename_start : t -> int -> t
(** The automaton [B(q)] of Section 4.4's notation: same structure, start
    moved to [q]. *)

val size_info : t -> string
(** Human-readable "n states, m transitions". *)

val pp : Format.formatter -> t -> unit

(** {1 Serialization}

    Büchi automata round-trip through the [sl-artifact/1] format (see
    {!Sl_core.Wire}). Decoding funnels through {!make}, so a decoded
    automaton satisfies every invariant a constructed one does. *)

val encode : Sl_core.Wire.writer -> t -> unit
(** Append the automaton's payload (no framing) to a writer. *)

val decode : Sl_core.Wire.reader -> t
(** Inverse of {!encode}.
    @raise Sl_core.Wire.Corrupt on any malformed bytes. *)

val to_artifact : t -> string
(** The automaton framed as a standalone [sl-artifact/1] blob
    (kind {!Sl_core.Wire.kind_buchi}). *)

val of_artifact : string -> t option
(** Decode a standalone artifact; [None] on {e any} corruption — cache
    layers treat that as a miss, never an error. *)

val random : ?seed:int -> alphabet:int -> nstates:int -> density:float ->
  accepting_fraction:float -> unit -> t
(** Random automaton for property tests and benches: each [(q, s, q')]
    transition is present with probability [density]; each state accepting
    with probability [accepting_fraction]. Deterministic in [seed]. *)
