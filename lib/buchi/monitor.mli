(** Execution monitors for safety properties — the paper's Schneider
    connection made executable.

    A monitor observes a finite, growing prefix and must reject exactly
    the executions with a {e bad prefix}: one no member of the property
    extends. Such monitors exist precisely for safety properties, since
    only there does every violation have a finite witness; for any other
    property the monitor built here is the monitor of its safety part
    ([bcl B]) — the strongest enforceable approximation (Theorem 6 is why
    it is the strongest). *)

type t
(** A deterministic monitor (the subset DFA of the safety part's prefix
    language) plus its current state. Mutable. *)

type verdict =
  | Admissible  (** the prefix extends to some member of the property *)
  | Violation of int list
      (** the shortest bad prefix seen, ending at the first offending
          symbol; irrevocable *)

val create : Buchi.t -> t
(** Monitor for the safety part of an arbitrary property automaton. *)

val step : t -> int -> verdict
(** Feed one symbol. After a [Violation] the monitor stays tripped. *)

val feed : t -> int list -> verdict
(** Feed many symbols; stops at the first [Violation] (the verdict is
    irrevocable, so the rest of the batch is not stepped). *)

val verdict : t -> verdict
val reset : t -> unit

val dfa : t -> Sl_nfa.Dfa.t
(** The compiled monitor automaton: the subset DFA of the safety part's
    prefix language. Exposed so the runtime registry ([Sl_runtime]) can
    pack it into flat transition tables without recompiling. *)

val empty_property : t -> bool
(** The degenerate corner: the property's safety part is empty, so even
    the empty prefix is bad and {!dfa} is not meaningful. *)

val is_vacuous : t -> bool
(** The monitor can never trip: the property's safety part is the
    universal language — i.e. the property is liveness. Schneider's
    theorem in one boolean: enforceable content = none. *)

val shortest_bad_prefix : Buchi.t -> int list option
(** The shortest finite word no member of the property's safety part
    extends ([None] for liveness properties). This is the certificate a
    security auditor would ship with a rejected policy. *)
