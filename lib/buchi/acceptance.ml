module Lasso = Sl_word.Lasso
module Digraph = Sl_core.Digraph

type condition =
  | Rabin of (bool array * bool array) list
  | Streett of (bool array * bool array) list
  | Parity of int array
  | Muller of bool array list

type t = {
  alphabet : int;
  nstates : int;
  start : int;
  delta : int list array array;
  condition : condition;
}

let make ~alphabet ~nstates ~start ~delta ~condition =
  (* Shape-check through the Büchi validator. *)
  ignore
    (Buchi.make ~alphabet ~nstates ~start ~delta
       ~accepting:(Array.make nstates false));
  (match condition with
  | Rabin pairs | Streett pairs ->
      List.iter
        (fun (g, r) ->
          if Array.length g <> nstates || Array.length r <> nstates then
            invalid_arg "Acceptance.make: pair shape")
        pairs
  | Parity priorities ->
      if Array.length priorities <> nstates then
        invalid_arg "Acceptance.make: priority shape";
      Array.iter
        (fun p -> if p < 0 then invalid_arg "Acceptance.make: priority < 0")
        priorities
  | Muller sets ->
      List.iter
        (fun set ->
          if Array.length set <> nstates then
            invalid_arg "Acceptance.make: Muller set shape")
        sets);
  { alphabet; nstates; start; delta; condition }

let of_buchi (b : Buchi.t) =
  (* [b] was validated by [Buchi.make]; no need to re-check its shape. *)
  { alphabet = b.alphabet; nstates = b.nstates; start = b.start;
    delta = b.delta;
    condition = Rabin [ (Array.copy b.accepting, Array.make b.nstates false) ]
  }

let graph a = Digraph.of_delta a.delta

(* Compile-time witness: this module has the shared automaton shape. *)
module _ : Sl_core.Automaton_sig.S with type t = t = struct
  type nonrec t = t

  let alphabet a = a.alphabet
  let nstates a = a.nstates
  let graph = graph
end

(* --- The automaton × lasso product as a kernel graph. --- *)

type product = {
  nnodes : int;
  graph : Digraph.t;
  node_state : int -> int;  (** automaton state of a product node *)
  reach : bool array;  (** reachable from (start, 0) *)
}

let product a w =
  let sp = Lasso.spoke w and pe = Lasso.period w in
  let total = sp + pe in
  let next p = if p + 1 < total then p + 1 else sp in
  let node q p = (q * total) + p in
  let nnodes = a.nstates * total in
  let succs =
    Array.init nnodes (fun v ->
        let q = v / total and p = v mod total in
        List.map (fun q' -> node q' (next p)) a.delta.(q).(Lasso.at w p))
  in
  let graph = Digraph.of_successors succs in
  let reach = Digraph.reachable graph [ node a.start 0 ] in
  { nnodes; graph; node_state = (fun v -> v / total); reach }

(* Reachable nontrivial SCCs of the product restricted to [keep]-nodes. *)
let sccs_within pr keep =
  let r = Digraph.sccs ~filter:(fun v -> pr.reach.(v) && keep v) pr.graph in
  List.filter
    (function
      | [] -> false
      | hd :: _ -> r.Digraph.nontrivial.(r.Digraph.comp.(hd)))
    r.Digraph.comps

let projection pr nodes =
  List.sort_uniq compare (List.map pr.node_state nodes)

let accepts_rabin pr pairs =
  List.exists
    (fun (green, red) ->
      (* A reachable cycle avoiding red and meeting green. *)
      List.exists
        (fun comp -> List.exists (fun v -> green.(pr.node_state v)) comp)
        (sccs_within pr (fun v -> not red.(pr.node_state v))))
    pairs

(* Streett: SCC peeling — remove the greens of pairs whose reds are absent
   and recurse; a surviving nontrivial component satisfies all pairs. *)
let accepts_streett pr pairs =
  let rec satisfiable nodes =
    (* Sub-SCCs of the induced subgraph. *)
    let keep = Array.make pr.nnodes false in
    List.iter (fun v -> keep.(v) <- true) nodes;
    let comps = sccs_within pr (fun v -> keep.(v)) in
    List.exists
      (fun comp ->
        let states = projection pr comp in
        let offending =
          List.filter
            (fun (green, red) ->
              List.exists (fun q -> green.(q)) states
              && not (List.exists (fun q -> red.(q)) states))
            pairs
        in
        if offending = [] then true
        else begin
          let shrunk =
            List.filter
              (fun v ->
                not
                  (List.exists
                     (fun (green, _) -> green.(pr.node_state v))
                     offending))
              comp
          in
          if List.length shrunk = List.length comp then false
          else satisfiable shrunk
        end)
      comps
  in
  satisfiable
    (List.filter (fun v -> pr.reach.(v))
       (List.init pr.nnodes (fun v -> v)))

let accepts_parity pr priorities =
  let evens =
    List.sort_uniq compare
      (List.filter (fun p -> p mod 2 = 0) (Array.to_list priorities))
  in
  List.exists
    (fun d ->
      List.exists
        (fun comp ->
          List.exists (fun v -> priorities.(pr.node_state v) = d) comp)
        (sccs_within pr (fun v -> priorities.(pr.node_state v) >= d)))
    evens

let accepts_muller pr sets =
  List.exists
    (fun set ->
      let target =
        List.sort_uniq compare
          (List.filteri (fun _ _ -> true)
             (List.init (Array.length set) Fun.id))
        |> List.filter (fun q -> set.(q))
      in
      target <> []
      && List.exists
           (fun comp ->
             (* The SCC lies inside the set; it must cover it. *)
             projection pr comp = target)
           (sccs_within pr (fun v -> set.(pr.node_state v))))
    sets

let accepts_lasso a w =
  let pr = product a w in
  match a.condition with
  | Rabin pairs -> accepts_rabin pr pairs
  | Streett pairs -> accepts_streett pr pairs
  | Parity priorities -> accepts_parity pr priorities
  | Muller sets -> accepts_muller pr sets

(* --- Translations --- *)

let rabin_pair_to_buchi a (green, red) =
  (* Original copy (never accepting) + a red-free copy entered by a
     nondeterministic jump; acceptance is green inside the copy. *)
  let n = a.nstates in
  let copy q = n + q in
  let nstates = 2 * n in
  let delta = Array.make_matrix nstates a.alphabet [] in
  for q = 0 to n - 1 do
    for s = 0 to a.alphabet - 1 do
      let succs = a.delta.(q).(s) in
      let red_free = List.filter (fun q' -> not red.(q')) succs in
      delta.(q).(s) <- succs @ List.map copy red_free;
      if not red.(q) then delta.(copy q).(s) <- List.map copy red_free
    done
  done;
  let accepting =
    Array.init nstates (fun v -> v >= n && green.(v - n))
  in
  (* Successors are copies of in-range states of a validated automaton;
     skip the [Buchi.make] re-validation pass. *)
  { Buchi.alphabet = a.alphabet; nstates; start = a.start; delta; accepting }

let rabin_to_buchi a =
  match a.condition with
  | Rabin pairs ->
      Ops.union_list ~alphabet:a.alphabet
        (List.map (rabin_pair_to_buchi a) pairs)
  | _ -> invalid_arg "Acceptance.rabin_to_buchi: not a Rabin condition"

let parity_to_buchi a =
  match a.condition with
  | Parity priorities ->
      let evens =
        List.sort_uniq compare
          (List.filter (fun p -> p mod 2 = 0) (Array.to_list priorities))
      in
      let pairs =
        List.map
          (fun d ->
            ( Array.map (fun p -> p = d) priorities,
              Array.map (fun p -> p < d) priorities ))
          evens
      in
      rabin_to_buchi { a with condition = Rabin pairs }
  | _ -> invalid_arg "Acceptance.parity_to_buchi: not a parity condition"

let pp fmt a =
  let kind =
    match a.condition with
    | Rabin ps -> Printf.sprintf "rabin(%d pairs)" (List.length ps)
    | Streett ps -> Printf.sprintf "streett(%d pairs)" (List.length ps)
    | Parity _ -> "parity"
    | Muller sets -> Printf.sprintf "muller(%d sets)" (List.length sets)
  in
  Format.fprintf fmt "omega-word automaton [%s], %d states, start %d" kind
    a.nstates a.start
