module Lasso = Sl_word.Lasso

type condition =
  | Rabin of (bool array * bool array) list
  | Streett of (bool array * bool array) list
  | Parity of int array
  | Muller of bool array list

type t = {
  alphabet : int;
  nstates : int;
  start : int;
  delta : int list array array;
  condition : condition;
}

let make ~alphabet ~nstates ~start ~delta ~condition =
  (* Shape-check through the Büchi validator. *)
  ignore
    (Buchi.make ~alphabet ~nstates ~start ~delta
       ~accepting:(Array.make nstates false));
  (match condition with
  | Rabin pairs | Streett pairs ->
      List.iter
        (fun (g, r) ->
          if Array.length g <> nstates || Array.length r <> nstates then
            invalid_arg "Acceptance.make: pair shape")
        pairs
  | Parity priorities ->
      if Array.length priorities <> nstates then
        invalid_arg "Acceptance.make: priority shape";
      Array.iter
        (fun p -> if p < 0 then invalid_arg "Acceptance.make: priority < 0")
        priorities
  | Muller sets ->
      List.iter
        (fun set ->
          if Array.length set <> nstates then
            invalid_arg "Acceptance.make: Muller set shape")
        sets);
  { alphabet; nstates; start; delta; condition }

let of_buchi (b : Buchi.t) =
  (* [b] was validated by [Buchi.make]; no need to re-check its shape. *)
  { alphabet = b.alphabet; nstates = b.nstates; start = b.start;
    delta = b.delta;
    condition = Rabin [ (Array.copy b.accepting, Array.make b.nstates false) ]
  }

(* --- The automaton × lasso product as an explicit graph. --- *)

type product = {
  nnodes : int;
  succs : int -> int list;
  node_state : int -> int;  (** automaton state of a product node *)
  reach : bool array;  (** reachable from (start, 0) *)
}

let product a w =
  let sp = Lasso.spoke w and pe = Lasso.period w in
  let total = sp + pe in
  let next p = if p + 1 < total then p + 1 else sp in
  let node q p = (q * total) + p in
  let succs v =
    let q = v / total and p = v mod total in
    List.map (fun q' -> node q' (next p)) a.delta.(q).(Lasso.at w p)
  in
  let nnodes = a.nstates * total in
  let reach = Array.make nnodes false in
  let rec visit v =
    if not reach.(v) then begin
      reach.(v) <- true;
      List.iter visit (succs v)
    end
  in
  visit (node a.start 0);
  { nnodes; succs; node_state = (fun v -> v / total); reach }

(* Reachable nontrivial SCCs of the product restricted to [keep]-nodes. *)
let sccs_within pr keep =
  let index = Array.make pr.nnodes (-1) in
  let lowlink = Array.make pr.nnodes 0 in
  let on_stack = Array.make pr.nnodes false in
  let stack = ref [] in
  let counter = ref 0 in
  let comps = ref [] in
  let ok v = pr.reach.(v) && keep v in
  let succs v = List.filter ok (pr.succs v) in
  let rec strongconnect v =
    index.(v) <- !counter;
    lowlink.(v) <- !counter;
    incr counter;
    stack := v :: !stack;
    on_stack.(v) <- true;
    List.iter
      (fun w ->
        if index.(w) = -1 then begin
          strongconnect w;
          lowlink.(v) <- min lowlink.(v) lowlink.(w)
        end
        else if on_stack.(w) then lowlink.(v) <- min lowlink.(v) index.(w))
      (succs v);
    if lowlink.(v) = index.(v) then begin
      let members = ref [] in
      let brk = ref false in
      while not !brk do
        match !stack with
        | [] -> brk := true
        | w :: rest ->
            stack := rest;
            on_stack.(w) <- false;
            members := w :: !members;
            if w = v then brk := true
      done;
      let ms = !members in
      let nontrivial =
        match ms with
        | [ single ] -> List.exists (Int.equal single) (succs single)
        | _ -> List.length ms > 1
      in
      if nontrivial then comps := ms :: !comps
    end
  in
  for v = 0 to pr.nnodes - 1 do
    if ok v && index.(v) = -1 then strongconnect v
  done;
  !comps

let projection pr nodes =
  List.sort_uniq compare (List.map pr.node_state nodes)

let accepts_rabin pr pairs =
  List.exists
    (fun (green, red) ->
      (* A reachable cycle avoiding red and meeting green. *)
      List.exists
        (fun comp -> List.exists (fun v -> green.(pr.node_state v)) comp)
        (sccs_within pr (fun v -> not red.(pr.node_state v))))
    pairs

(* Streett: SCC peeling — remove the greens of pairs whose reds are absent
   and recurse; a surviving nontrivial component satisfies all pairs. *)
let accepts_streett pr pairs =
  let rec satisfiable nodes =
    (* Sub-SCCs of the induced subgraph. *)
    let keep = Array.make pr.nnodes false in
    List.iter (fun v -> keep.(v) <- true) nodes;
    let comps = sccs_within pr (fun v -> keep.(v)) in
    List.exists
      (fun comp ->
        let states = projection pr comp in
        let offending =
          List.filter
            (fun (green, red) ->
              List.exists (fun q -> green.(q)) states
              && not (List.exists (fun q -> red.(q)) states))
            pairs
        in
        if offending = [] then true
        else begin
          let shrunk =
            List.filter
              (fun v ->
                not
                  (List.exists
                     (fun (green, _) -> green.(pr.node_state v))
                     offending))
              comp
          in
          if List.length shrunk = List.length comp then false
          else satisfiable shrunk
        end)
      comps
  in
  satisfiable
    (List.filter (fun v -> pr.reach.(v))
       (List.init pr.nnodes (fun v -> v)))

let accepts_parity pr priorities =
  let evens =
    List.sort_uniq compare
      (List.filter (fun p -> p mod 2 = 0) (Array.to_list priorities))
  in
  List.exists
    (fun d ->
      List.exists
        (fun comp ->
          List.exists (fun v -> priorities.(pr.node_state v) = d) comp)
        (sccs_within pr (fun v -> priorities.(pr.node_state v) >= d)))
    evens

let accepts_muller pr sets =
  List.exists
    (fun set ->
      let target =
        List.sort_uniq compare
          (List.filteri (fun _ _ -> true)
             (List.init (Array.length set) Fun.id))
        |> List.filter (fun q -> set.(q))
      in
      target <> []
      && List.exists
           (fun comp ->
             (* The SCC lies inside the set; it must cover it. *)
             projection pr comp = target)
           (sccs_within pr (fun v -> set.(pr.node_state v))))
    sets

let accepts_lasso a w =
  let pr = product a w in
  match a.condition with
  | Rabin pairs -> accepts_rabin pr pairs
  | Streett pairs -> accepts_streett pr pairs
  | Parity priorities -> accepts_parity pr priorities
  | Muller sets -> accepts_muller pr sets

(* --- Translations --- *)

let rabin_pair_to_buchi a (green, red) =
  (* Original copy (never accepting) + a red-free copy entered by a
     nondeterministic jump; acceptance is green inside the copy. *)
  let n = a.nstates in
  let copy q = n + q in
  let nstates = 2 * n in
  let delta = Array.make_matrix nstates a.alphabet [] in
  for q = 0 to n - 1 do
    for s = 0 to a.alphabet - 1 do
      let succs = a.delta.(q).(s) in
      let red_free = List.filter (fun q' -> not red.(q')) succs in
      delta.(q).(s) <- succs @ List.map copy red_free;
      if not red.(q) then delta.(copy q).(s) <- List.map copy red_free
    done
  done;
  let accepting =
    Array.init nstates (fun v -> v >= n && green.(v - n))
  in
  (* Successors are copies of in-range states of a validated automaton;
     skip the [Buchi.make] re-validation pass. *)
  { Buchi.alphabet = a.alphabet; nstates; start = a.start; delta; accepting }

let rabin_to_buchi a =
  match a.condition with
  | Rabin pairs ->
      Ops.union_list ~alphabet:a.alphabet
        (List.map (rabin_pair_to_buchi a) pairs)
  | _ -> invalid_arg "Acceptance.rabin_to_buchi: not a Rabin condition"

let parity_to_buchi a =
  match a.condition with
  | Parity priorities ->
      let evens =
        List.sort_uniq compare
          (List.filter (fun p -> p mod 2 = 0) (Array.to_list priorities))
      in
      let pairs =
        List.map
          (fun d ->
            ( Array.map (fun p -> p = d) priorities,
              Array.map (fun p -> p < d) priorities ))
          evens
      in
      rabin_to_buchi { a with condition = Rabin pairs }
  | _ -> invalid_arg "Acceptance.parity_to_buchi: not a parity condition"

let pp fmt a =
  let kind =
    match a.condition with
    | Rabin ps -> Printf.sprintf "rabin(%d pairs)" (List.length ps)
    | Streett ps -> Printf.sprintf "streett(%d pairs)" (List.length ps)
    | Parity _ -> "parity"
    | Muller sets -> Printf.sprintf "muller(%d sets)" (List.length sets)
  in
  Format.fprintf fmt "omega-word automaton [%s], %d states, start %d" kind
    a.nstates a.start
