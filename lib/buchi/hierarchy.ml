module Digraph = Sl_core.Digraph

let is_terminal (b : Buchi.t) =
  let g = Buchi.graph b in
  let reach = Buchi.reachable b in
  let ok = ref true in
  for q = 0 to b.nstates - 1 do
    if reach.(q) && b.accepting.(q) then
      for s = 0 to b.alphabet - 1 do
        (* Complete within acceptance: a run that has reached the
           accepting region can neither die nor leave it, so reaching
           it IS a good prefix. *)
        if Digraph.sym_degree g q s = 0 then ok := false;
        Digraph.iter_succ_sym g q s (fun q' ->
            if not b.accepting.(q') then ok := false)
      done
  done;
  !ok

let is_weak (b : Buchi.t) =
  let reach = Buchi.reachable b in
  let comp, comps = Buchi.sccs b in
  ignore comp;
  List.for_all
    (fun members ->
      let reachable_members = List.filter (fun q -> reach.(q)) members in
      match reachable_members with
      | [] -> true
      | q0 :: rest ->
          List.for_all (fun q -> b.accepting.(q) = b.accepting.(q0)) rest)
    comps

let is_safety_shaped = Closure.is_closure_shaped

let classify_structural b =
  if is_safety_shaped b then "safety-shaped"
  else if is_terminal b then "terminal"
  else if is_weak b then "weak"
  else "general"
