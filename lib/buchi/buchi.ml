module Lasso = Sl_word.Lasso

type t = {
  alphabet : int;
  nstates : int;
  start : int;
  delta : int list array array;
  accepting : bool array;
}

let make ~alphabet ~nstates ~start ~delta ~accepting =
  if alphabet < 1 then invalid_arg "Buchi.make: empty alphabet";
  if nstates < 1 then invalid_arg "Buchi.make: need at least one state";
  if start < 0 || start >= nstates then invalid_arg "Buchi.make: bad start";
  if Array.length delta <> nstates || Array.length accepting <> nstates then
    invalid_arg "Buchi.make: shape mismatch";
  Array.iter
    (fun row ->
      if Array.length row <> alphabet then invalid_arg "Buchi.make: row shape";
      Array.iter
        (List.iter (fun q ->
             if q < 0 || q >= nstates then
               invalid_arg "Buchi.make: successor out of range"))
        row)
    delta;
  { alphabet; nstates; start; delta; accepting }

let of_edges ~alphabet ~nstates ~start ~edges ~accepting =
  let delta = Array.make_matrix nstates alphabet [] in
  List.iter
    (fun (q, s, q') ->
      if q < 0 || q >= nstates || s < 0 || s >= alphabet then
        invalid_arg "Buchi.of_edges: edge out of range";
      delta.(q).(s) <- q' :: delta.(q).(s))
    edges;
  Array.iter
    (fun row -> Array.iteri (fun s l -> row.(s) <- List.sort_uniq compare l) row)
    delta;
  let acc = Array.make nstates false in
  List.iter (fun q -> acc.(q) <- true) accepting;
  make ~alphabet ~nstates ~start ~delta ~accepting:acc

let empty_language ~alphabet =
  make ~alphabet ~nstates:1 ~start:0
    ~delta:(Array.make_matrix 1 alphabet [])
    ~accepting:[| false |]

let universal ~alphabet =
  make ~alphabet ~nstates:1 ~start:0
    ~delta:(Array.init 1 (fun _ -> Array.make alphabet [ 0 ]))
    ~accepting:[| true |]

(* The graph routines below iterate the transition table directly: the
   seed funnelled every edge scan through a sorted-deduplicated successor
   list per state, which dominated the structural-classification profile.
   Duplicate edges are harmless to DFS, Tarjan and BFS. *)

let reachable b =
  let seen = Array.make b.nstates false in
  let rec visit q =
    if not seen.(q) then begin
      seen.(q) <- true;
      Array.iter (List.iter visit) b.delta.(q)
    end
  in
  visit b.start;
  seen

let has_self_loop b q = Array.exists (List.exists (Int.equal q)) b.delta.(q)

let sccs b =
  let n = b.nstates in
  let index = Array.make n (-1) in
  let lowlink = Array.make n 0 in
  let on_stack = Array.make n false in
  let stack = ref [] in
  let counter = ref 0 in
  let comp = Array.make n (-1) in
  let comps = ref [] in
  let ncomp = ref 0 in
  let rec strongconnect v =
    index.(v) <- !counter;
    lowlink.(v) <- !counter;
    incr counter;
    stack := v :: !stack;
    on_stack.(v) <- true;
    Array.iter
      (List.iter (fun w ->
           if index.(w) = -1 then begin
             strongconnect w;
             lowlink.(v) <- min lowlink.(v) lowlink.(w)
           end
           else if on_stack.(w) then lowlink.(v) <- min lowlink.(v) index.(w)))
      b.delta.(v);
    if lowlink.(v) = index.(v) then begin
      let members = ref [] in
      let continue_ = ref true in
      while !continue_ do
        match !stack with
        | [] -> continue_ := false
        | w :: rest ->
            stack := rest;
            on_stack.(w) <- false;
            comp.(w) <- !ncomp;
            members := w :: !members;
            if w = v then continue_ := false
      done;
      comps := !members :: !comps;
      incr ncomp
    end
  in
  for v = 0 to n - 1 do
    if index.(v) = -1 then strongconnect v
  done;
  (comp, !comps)

let on_cycle b =
  let comp, comps = sccs b in
  let comp_size = Array.make (List.length comps) 0 in
  Array.iter (fun c -> comp_size.(c) <- comp_size.(c) + 1) comp;
  Array.init b.nstates (fun q -> comp_size.(comp.(q)) > 1 || has_self_loop b q)

let live_states b =
  let cyc = on_cycle b in
  (* Live: can reach an accepting state on a cycle. Backwards BFS over the
     reversed edges — O(states + transitions), where the seed re-scanned
     every state's successors until stable. *)
  let live = Array.init b.nstates (fun q -> b.accepting.(q) && cyc.(q)) in
  let preds = Array.make b.nstates [] in
  Array.iteri
    (fun q row ->
      Array.iter (List.iter (fun q' -> preds.(q') <- q :: preds.(q'))) row)
    b.delta;
  let queue = Queue.create () in
  Array.iteri (fun q l -> if l then Queue.push q queue) live;
  while not (Queue.is_empty queue) do
    let q = Queue.pop queue in
    List.iter
      (fun p ->
        if not live.(p) then begin
          live.(p) <- true;
          Queue.push p queue
        end)
      preds.(q)
  done;
  live

let restrict b keep =
  if not keep.(b.start) then empty_language ~alphabet:b.alphabet
  else begin
    let remap = Array.make b.nstates (-1) in
    let count = ref 0 in
    Array.iteri
      (fun q k ->
        if k then begin
          remap.(q) <- !count;
          incr count
        end)
      keep;
    let nstates = !count in
    let delta = Array.make_matrix nstates b.alphabet [] in
    let accepting = Array.make nstates false in
    Array.iteri
      (fun q k ->
        if k then begin
          accepting.(remap.(q)) <- b.accepting.(q);
          Array.iteri
            (fun s succs ->
              delta.(remap.(q)).(s) <-
                List.filter_map
                  (fun q' -> if keep.(q') then Some remap.(q') else None)
                  succs)
            b.delta.(q)
        end)
      keep;
    make ~alphabet:b.alphabet ~nstates ~start:remap.(b.start) ~delta
      ~accepting
  end

let trim_live b =
  let reach = reachable b and live = live_states b in
  restrict b (Array.init b.nstates (fun q -> reach.(q) && live.(q)))

let is_empty b =
  let reach = reachable b and live = live_states b in
  not (reach.(b.start) && live.(b.start))

(* BFS shortest path in the labeled graph from [src] to any state in
   [targets]; returns the word and the state reached. [min_steps] forces at
   least that many transitions (used to find nonempty cycles). *)
let bfs_word b ~src ~targets ~min_steps =
  let n = b.nstates in
  (* Layer 0 is src with 0 steps; track (state, steps>=min as flag). *)
  let seen = Array.make_matrix n 2 false in
  let parent = Hashtbl.create 16 in
  let queue = Queue.create () in
  let flag0 = if min_steps = 0 then 1 else 0 in
  seen.(src).(flag0) <- true;
  Queue.push (src, flag0) queue;
  let result = ref None in
  while !result = None && not (Queue.is_empty queue) do
    let q, f = Queue.pop queue in
    if f = 1 && targets q then result := Some q
    else
      (* After one or more steps the min-step obligation (0 or 1 here) is
         met, so successors always carry flag 1. *)
      Array.iteri
        (fun s succs ->
          List.iter
            (fun q' ->
              if not seen.(q').(1) then begin
                seen.(q').(1) <- true;
                Hashtbl.replace parent (q', 1) (q, f, s);
                Queue.push (q', 1) queue
              end)
            succs)
        b.delta.(q)
  done;
  Option.map
    (fun target ->
      let rec unwind node acc =
        match Hashtbl.find_opt parent node with
        | None -> acc
        | Some (p, pf, s) -> unwind (p, pf) (s :: acc)
      in
      (unwind (target, 1) [], target))
    !result

let nonempty_witness b =
  let reach = reachable b in
  let cyc = on_cycle b in
  let good q = reach.(q) && b.accepting.(q) && cyc.(q) in
  match bfs_word b ~src:b.start ~targets:good ~min_steps:0 with
  | None -> None
  | Some (spoke_word, f) -> (
      match bfs_word b ~src:f ~targets:(fun q -> q = f) ~min_steps:1 with
      | None -> None (* impossible: f is on a cycle *)
      | Some (cycle_word, _) ->
          Some (Lasso.make ~prefix:spoke_word ~cycle:cycle_word))

let accepts_lasso b w =
  let sp = Lasso.spoke w and pe = Lasso.period w in
  let total = sp + pe in
  let next p = if p + 1 < total then p + 1 else sp in
  (* Product graph over (state, position); find a reachable accepting
     product-cycle. A cycle in the product necessarily lives in the
     periodic positions, so detect: reachable (q, p) with q accepting that
     can return to itself. *)
  let n = b.nstates in
  let node q p = (q * total) + p in
  let nn = n * total in
  let succs = Array.make nn [] in
  for q = 0 to n - 1 do
    for p = 0 to total - 1 do
      let letter = Lasso.at w p in
      succs.(node q p) <-
        List.map (fun q' -> node q' (next p)) b.delta.(q).(letter)
    done
  done;
  (* Reachability from (start, 0). *)
  let seen = Array.make nn false in
  let rec visit v =
    if not seen.(v) then begin
      seen.(v) <- true;
      List.iter visit succs.(v)
    end
  in
  visit (node b.start 0);
  (* SCCs of the product restricted to reachable nodes. *)
  let index = Array.make nn (-1) in
  let lowlink = Array.make nn 0 in
  let on_stack = Array.make nn false in
  let stack = ref [] in
  let counter = ref 0 in
  let found = ref false in
  let rec strongconnect v =
    index.(v) <- !counter;
    lowlink.(v) <- !counter;
    incr counter;
    stack := v :: !stack;
    on_stack.(v) <- true;
    List.iter
      (fun w' ->
        if seen.(w') then
          if index.(w') = -1 then begin
            strongconnect w';
            lowlink.(v) <- min lowlink.(v) lowlink.(w')
          end
          else if on_stack.(w') then lowlink.(v) <- min lowlink.(v) index.(w'))
      succs.(v);
    if lowlink.(v) = index.(v) then begin
      let members = ref [] in
      let continue_ = ref true in
      while !continue_ do
        match !stack with
        | [] -> continue_ := false
        | w' :: rest ->
            stack := rest;
            on_stack.(w') <- false;
            members := w' :: !members;
            if w' = v then continue_ := false
      done;
      let ms = !members in
      let nontrivial =
        match ms with
        | [ single ] -> List.exists (Int.equal single) succs.(single)
        | _ -> List.length ms > 1
      in
      if nontrivial && List.exists (fun v' -> b.accepting.(v' / total)) ms
      then found := true
    end
  in
  for v = 0 to nn - 1 do
    if seen.(v) && index.(v) = -1 then strongconnect v
  done;
  !found

let to_prefix_nfa b =
  Sl_nfa.Nfa.make ~alphabet:b.alphabet ~nstates:b.nstates ~starts:[ b.start ]
    ~delta:(Array.map Array.copy b.delta)
    ~accepting:(Array.make b.nstates true)

let rename_start b q =
  if q < 0 || q >= b.nstates then invalid_arg "Buchi.rename_start";
  { b with start = q }

let size_info b =
  let m =
    Array.fold_left
      (fun acc row -> Array.fold_left (fun a l -> a + List.length l) acc row)
      0 b.delta
  in
  Printf.sprintf "%d states, %d transitions" b.nstates m

let pp fmt b =
  Format.fprintf fmt "@[<v>buchi(%d states, start %d)@," b.nstates b.start;
  for q = 0 to b.nstates - 1 do
    Format.fprintf fmt "  %d%s:" q (if b.accepting.(q) then "*" else "");
    Array.iteri
      (fun s succs ->
        List.iter (fun q' -> Format.fprintf fmt " %d->%d" s q') succs)
      b.delta.(q);
    Format.fprintf fmt "@,"
  done;
  Format.fprintf fmt "@]"

let random ?(seed = 42) ~alphabet ~nstates ~density ~accepting_fraction () =
  let st = Random.State.make [| seed |] in
  let delta =
    (* Draw order matches the seed's [List.filter]-over-[List.init] cell
       generator, so seeded automata are unchanged; the direct loop just
       skips the intermediate candidate list. *)
    Array.init nstates (fun _ ->
        Array.init alphabet (fun _ ->
            let rec draw q' acc =
              if q' >= nstates then List.rev acc
              else if Random.State.float st 1.0 < density then
                draw (q' + 1) (q' :: acc)
              else draw (q' + 1) acc
            in
            draw 0 []))
  in
  let accepting =
    Array.init nstates (fun _ ->
        Random.State.float st 1.0 < accepting_fraction)
  in
  make ~alphabet ~nstates ~start:0 ~delta ~accepting
