module Lasso = Sl_word.Lasso
module Digraph = Sl_core.Digraph
module Asig = Sl_core.Automaton_sig

type t = {
  alphabet : int;
  nstates : int;
  start : int;
  delta : int list array array;
  accepting : bool array;
}

let make ~alphabet ~nstates ~start ~delta ~accepting =
  let name = "Buchi.make" in
  Asig.check_alphabet ~name alphabet;
  Asig.check_nstates ~name nstates;
  Asig.check_state ~name ~nstates start;
  Asig.check_flags ~name ~nstates accepting;
  Asig.check_delta ~name ~alphabet ~nstates delta;
  { alphabet; nstates; start; delta; accepting }

let of_edges ~alphabet ~nstates ~start ~edges ~accepting =
  let delta =
    Asig.delta_of_edges ~name:"Buchi.of_edges" ~alphabet ~nstates edges
  in
  make ~alphabet ~nstates ~start ~delta
    ~accepting:(Asig.flags_of_list ~nstates accepting)

let empty_language ~alphabet =
  make ~alphabet ~nstates:1 ~start:0
    ~delta:(Array.make_matrix 1 alphabet [])
    ~accepting:[| false |]

let universal ~alphabet =
  make ~alphabet ~nstates:1 ~start:0
    ~delta:(Array.init 1 (fun _ -> Array.make alphabet [ 0 ]))
    ~accepting:[| true |]

(* All graph analyses run on the shared CSR kernel: one packed
   [Digraph.t] per analysis, built straight from the transition table
   (duplicates and successor order preserved, so traversal results are
   identical to the historical list-walking code). *)

let graph b = Digraph.of_delta b.delta

let reachable b = Digraph.reachable (graph b) [ b.start ]

let sccs b =
  let r = Digraph.sccs (graph b) in
  (r.Digraph.comp, r.Digraph.comps)

let on_cycle_of (r : Digraph.scc) nstates =
  Array.init nstates (fun q -> r.Digraph.nontrivial.(r.Digraph.comp.(q)))

let on_cycle b = on_cycle_of (Digraph.sccs (graph b)) b.nstates

let live_states_of g b =
  (* Live: can reach an accepting state on a cycle — backward reachability
     (on the transposed CSR graph) from the accepting members of
     nontrivial SCCs. *)
  let cyc = on_cycle_of (Digraph.sccs g) b.nstates in
  Digraph.reachable_from (Digraph.reverse g)
    (Array.init b.nstates (fun q -> b.accepting.(q) && cyc.(q)))

let live_states b = live_states_of (graph b) b

let restrict b keep =
  if not keep.(b.start) then empty_language ~alphabet:b.alphabet
  else begin
    let remap = Array.make b.nstates (-1) in
    let count = ref 0 in
    Array.iteri
      (fun q k ->
        if k then begin
          remap.(q) <- !count;
          incr count
        end)
      keep;
    let nstates = !count in
    let delta = Array.make_matrix nstates b.alphabet [] in
    let accepting = Array.make nstates false in
    Array.iteri
      (fun q k ->
        if k then begin
          accepting.(remap.(q)) <- b.accepting.(q);
          Array.iteri
            (fun s succs ->
              delta.(remap.(q)).(s) <-
                List.filter_map
                  (fun q' -> if keep.(q') then Some remap.(q') else None)
                  succs)
            b.delta.(q)
        end)
      keep;
    make ~alphabet:b.alphabet ~nstates ~start:remap.(b.start) ~delta
      ~accepting
  end

let reach_and_live b =
  let g = graph b in
  (Digraph.reachable g [ b.start ], live_states_of g b)

let trim_live b =
  let reach, live = reach_and_live b in
  restrict b (Array.init b.nstates (fun q -> reach.(q) && live.(q)))

let is_empty b =
  let reach, live = reach_and_live b in
  not (reach.(b.start) && live.(b.start))

(* BFS shortest path in the labeled graph from [src] to any state in
   [targets]; returns the word and the state reached. [min_steps] forces at
   least that many transitions (used to find nonempty cycles). *)
let bfs_word b ~src ~targets ~min_steps =
  let g = graph b in
  let n = b.nstates in
  (* Layer 0 is src with 0 steps; track (state, steps>=min as flag). *)
  let seen = Array.make_matrix n 2 false in
  let parent = Hashtbl.create 16 in
  let queue = Queue.create () in
  let flag0 = if min_steps = 0 then 1 else 0 in
  seen.(src).(flag0) <- true;
  Queue.push (src, flag0) queue;
  let result = ref None in
  while !result = None && not (Queue.is_empty queue) do
    let q, f = Queue.pop queue in
    if f = 1 && targets q then result := Some q
    else
      (* After one or more steps the min-step obligation (0 or 1 here) is
         met, so successors always carry flag 1. *)
      for s = 0 to b.alphabet - 1 do
        Digraph.iter_succ_sym g q s (fun q' ->
            if not seen.(q').(1) then begin
              seen.(q').(1) <- true;
              Hashtbl.replace parent (q', 1) (q, f, s);
              Queue.push (q', 1) queue
            end)
      done
  done;
  Option.map
    (fun target ->
      let rec unwind node acc =
        match Hashtbl.find_opt parent node with
        | None -> acc
        | Some (p, pf, s) -> unwind (p, pf) (s :: acc)
      in
      (unwind (target, 1) [], target))
    !result

let nonempty_witness b =
  let reach = reachable b in
  let cyc = on_cycle b in
  let good q = reach.(q) && b.accepting.(q) && cyc.(q) in
  match bfs_word b ~src:b.start ~targets:good ~min_steps:0 with
  | None -> None
  | Some (spoke_word, f) -> (
      match bfs_word b ~src:f ~targets:(fun q -> q = f) ~min_steps:1 with
      | None -> None (* impossible: f is on a cycle *)
      | Some (cycle_word, _) ->
          Some (Lasso.make ~prefix:spoke_word ~cycle:cycle_word))

let accepts_lasso b w =
  let sp = Lasso.spoke w and pe = Lasso.period w in
  let total = sp + pe in
  let next p = if p + 1 < total then p + 1 else sp in
  (* Product graph over (state, position); find a reachable accepting
     product-cycle. A cycle in the product necessarily lives in the
     periodic positions, so the search is exactly the kernel's good-SCC
     query restricted to the reachable part. *)
  let n = b.nstates in
  let node q p = (q * total) + p in
  let succs =
    Array.init (n * total) (fun v ->
        let q = v / total and p = v mod total in
        List.map (fun q' -> node q' (next p)) b.delta.(q).(Lasso.at w p))
  in
  let g = Digraph.of_successors succs in
  let reach = Digraph.reachable g [ node b.start 0 ] in
  Digraph.has_good_scc g
    ~filter:(fun v -> reach.(v))
    ~predicates:[ (fun v -> b.accepting.(v / total)) ]

let to_prefix_nfa b =
  Sl_nfa.Nfa.make ~alphabet:b.alphabet ~nstates:b.nstates ~starts:[ b.start ]
    ~delta:(Array.map Array.copy b.delta)
    ~accepting:(Array.make b.nstates true)

let rename_start b q =
  if q < 0 || q >= b.nstates then invalid_arg "Buchi.rename_start";
  { b with start = q }

let size_info b =
  Printf.sprintf "%d states, %d transitions" b.nstates
    (Digraph.nedges (graph b))

let pp fmt b =
  Format.fprintf fmt "@[<v>buchi(%d states, start %d)@," b.nstates b.start;
  for q = 0 to b.nstates - 1 do
    Format.fprintf fmt "  %d%s:" q (if b.accepting.(q) then "*" else "");
    Array.iteri
      (fun s succs ->
        List.iter (fun q' -> Format.fprintf fmt " %d->%d" s q') succs)
      b.delta.(q);
    Format.fprintf fmt "@,"
  done;
  Format.fprintf fmt "@]"

(* Serialization: dimensions, start, acceptance bits, then one
   length-prefixed successor list per (state, symbol) cell in row-major
   order. Decoding funnels through [make], so every shape and range
   check a constructed automaton passes, a decoded one passes too —
   [Invalid_argument] from [make] is re-raised as [Wire.Corrupt] since
   on this path it means bad bytes, not a caller bug. *)
module Wire = Sl_core.Wire

let encode w b =
  Wire.put_int w b.alphabet;
  Wire.put_int w b.nstates;
  Wire.put_int w b.start;
  Wire.put_bool_array w b.accepting;
  Array.iter
    (fun row -> Array.iter (fun l -> Wire.put_int_array w (Array.of_list l)) row)
    b.delta

let decode r =
  let fail fmt = Printf.ksprintf (fun s -> raise (Wire.Corrupt s)) fmt in
  let alphabet = Wire.get_int r in
  let nstates = Wire.get_int r in
  let start = Wire.get_int r in
  if alphabet < 1 || alphabet > 0xffff then fail "buchi: bad alphabet %d" alphabet;
  let accepting = Wire.get_bool_array r in
  (* Every (state, symbol) cell carries at least its 8-byte length
     prefix, so the table bound below rejects forged state counts
     before [Array.init] tries to allocate them. *)
  if nstates < 1 || nstates > Wire.remaining r / 8 / alphabet then
    fail "buchi: bad state count %d" nstates;
  let delta =
    Array.init nstates (fun _ ->
        Array.init alphabet (fun _ -> Array.to_list (Wire.get_int_array r)))
  in
  match make ~alphabet ~nstates ~start ~delta ~accepting with
  | b -> b
  | exception Invalid_argument msg -> fail "buchi: %s" msg

let to_artifact b =
  let w = Wire.writer () in
  encode w b;
  Wire.to_artifact ~kind:Wire.kind_buchi w

let of_artifact s =
  match
    let r = Wire.of_artifact_kind ~kind:Wire.kind_buchi s in
    let b = decode r in
    Wire.expect_end r;
    b
  with
  | b -> Some b
  | exception Wire.Corrupt _ -> None

(* Compile-time witness: this module has the shared automaton shape. *)
module _ : Asig.S with type t = t = struct
  type nonrec t = t

  let alphabet b = b.alphabet
  let nstates b = b.nstates
  let graph = graph
end

let random ?(seed = 42) ~alphabet ~nstates ~density ~accepting_fraction () =
  let st = Random.State.make [| seed |] in
  let delta =
    (* Draw order matches the seed's [List.filter]-over-[List.init] cell
       generator, so seeded automata are unchanged; the direct loop just
       skips the intermediate candidate list. *)
    Array.init nstates (fun _ ->
        Array.init alphabet (fun _ ->
            let rec draw q' acc =
              if q' >= nstates then List.rev acc
              else if Random.State.float st 1.0 < density then
                draw (q' + 1) (q' :: acc)
              else draw (q' + 1) acc
            in
            draw 0 []))
  in
  let accepting =
    Array.init nstates (fun _ ->
        Random.State.float st 1.0 < accepting_fraction)
  in
  make ~alphabet ~nstates ~start:0 ~delta ~accepting
