module Lasso = Sl_word.Lasso

(** Generalized Büchi automata: acceptance is a {e list} of state sets,
    each to be visited infinitely often.

    The LTL tableau naturally produces one acceptance set per [Until];
    this module makes the intermediate object first-class, with a direct
    lasso-membership test (an SCC must meet {e every} set) and the
    standard counter degeneralization — tested against each other and
    against [Sl_ltl.Translate]'s inlined construction. *)

type t = {
  alphabet : int;
  nstates : int;
  start : int;
  delta : int list array array;
  acceptance : bool array list;  (** nonempty; each of length [nstates] *)
}

val make :
  alphabet:int -> nstates:int -> start:int -> delta:int list array array ->
  acceptance:bool array list -> t
(** An empty acceptance list is replaced by the single all-accepting set
    (every run accepts). *)

val of_buchi : Buchi.t -> t

val graph : t -> Sl_core.Digraph.t
(** The symbol-labeled transition graph as a CSR kernel graph. *)

val degeneralize : t -> Buchi.t
(** Counter construction: state [(q, i)] waits for the [i]-th set;
    accepting on [(q, 0)] with [q] in the first set. Language is
    preserved (checked per-lasso by the tests). *)

val accepts_lasso : t -> Lasso.t -> bool
(** Direct decision: a reachable nontrivial SCC of the lasso product that
    intersects every acceptance set. *)

val is_empty : t -> bool

val pp : Format.formatter -> t -> unit
