(* The observability kernel. Dark by default: every recording entry
   point checks the single global [on] flag first and falls through in a
   couple of instructions when collection is off, so the instrumented
   hot paths of the decision pipeline and the runtime engine pay one
   boolean load. See DESIGN.md §6.8 for the overhead budget.

   Domain-safety (§6.9): instrumented code now also runs inside
   Sl_core.Pool worker domains, so every recording cell is an [Atomic]
   — the flag, the metric cells, the clock's monotonicity clamp. The
   disabled path is still a single load ([Atomic.get] of the flag
   compiles to a plain read). Spans keep their single mutable stack and
   are recorded only on the domain that initialized the kernel (the
   main domain); [Span.enter] on a worker domain hands out the inert
   token, so worker-side spans are dropped rather than racing. *)

let on = Atomic.make false

let is_enabled () = Atomic.get on
let enable () = Atomic.set on true
let disable () = Atomic.set on false

(* The obs library is linked and initialized from the main domain;
   worker domains spawned later compare against this id. *)
let main_domain : int = (Domain.self () :> int)
let on_main_domain () = (Domain.self () :> int) = main_domain

(* ------------------------------------------------------------------ *)
(* Clock                                                               *)
(* ------------------------------------------------------------------ *)

module Clock = struct
  (* [Unix.gettimeofday] is a wall clock, not a monotonic one; spans
     must never see time run backwards, so readings are clamped to be
     non-decreasing. Tests install deterministic sources. The clamp and
     the epoch are atomics so worker-domain histogram timings can read
     the clock concurrently: the clamp advances by compare-and-set
     (retrying readers observe the value that beat them), the epoch is
     set once by whichever reading comes first. *)
  let default_source = Unix.gettimeofday

  let source = ref default_source
  let last = Atomic.make neg_infinity
  let epoch = Atomic.make nan

  let rec raw_now () =
    let t = !source () in
    let l = Atomic.get last in
    if t < l then l
    else if Atomic.compare_and_set last l t then t
    else raw_now ()

  let now_us () =
    let t = raw_now () in
    let e0 = Atomic.get epoch in
    (* CAS compares boxes physically, so the expected value must be the
       box just read, not a fresh [nan] literal. *)
    if Float.is_nan e0 then ignore (Atomic.compare_and_set epoch e0 t);
    let e = Atomic.get epoch in
    (t -. e) *. 1e6

  let set_source f =
    source := f;
    Atomic.set last neg_infinity;
    Atomic.set epoch nan

  let reset_source () = set_source default_source
end

let json_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)
(* ------------------------------------------------------------------ *)

module Metrics = struct
  type counter = int (* index into [cells] *)
  type gauge = int (* index into [cells] *)
  type histogram = int (* base offset into [hcells] *)

  type kind = Kcounter | Kgauge | Khistogram

  (* A family groups every sample sharing one metric name. Flat metrics
     are single-sample families with no labels; vecs carry a fixed label
     name list and grow one child per distinct label-value tuple. The
     child handles are the same plain ints as flat handles, so
     recording into a labeled series costs exactly a flat record. *)
  type family = {
    fname : string;
    fkind : kind;
    mutable fhelp : string;
    flabels : string list;
    mutable samples : (string list * int) list; (* reversed creation order *)
    children : (string, int) Hashtbl.t; (* joined label values -> index *)
  }

  type counter_vec = family
  type gauge_vec = family
  type histogram_vec = family

  (* Log-2 bucketing: bucket 0 holds samples <= 0, bucket i >= 1 holds
     [2^(i-1), 2^i - 1]. With 63-bit ints, [nbuckets - 1] = 62 already
     covers every positive value, so the top bucket doubles as the
     overflow bucket. Per-histogram layout in [hcells]: [nbuckets]
     bucket slots followed by one sum slot. *)
  let nbuckets = 63
  let hslots = nbuckets + 1

  (* Cells are individual [int Atomic.t]s so bumps from pool worker
     domains neither tear nor lose increments. Registration (which may
     swap the backing array) happens on the main domain outside any
     parallel region — module-initialization time for flat metrics and
     vec families, chunk epilogues / connection setup for vec children
     (regions are synchronous, so no worker is running then) — and the
     handles it returns are plain ints, so the arrays are only read
     behind them afterwards. *)
  let registry : (string, family) Hashtbl.t = Hashtbl.create 64
  let order : family list ref = ref [] (* reversed registration order *)
  let acell _ = Atomic.make 0
  let cells = ref (Array.init 64 acell)
  let ncells = ref 0
  let hcells = ref (Array.init (4 * hslots) acell)
  let nhist = ref 0

  let kind_name = function
    | Kcounter -> "counter"
    | Kgauge -> "gauge"
    | Khistogram -> "histogram"

  let grow a need =
    if need <= Array.length !a then ()
    else begin
      let len = Array.length !a in
      let fresh =
        Array.init (max need (2 * len)) (fun i ->
            if i < len then !a.(i) else acell i)
      in
      a := fresh
    end

  let alloc_index = function
    | Kcounter | Kgauge ->
        let i = !ncells in
        grow cells (i + 1);
        Atomic.set !cells.(i) 0;
        ncells := i + 1;
        i
    | Khistogram ->
        let base = !nhist * hslots in
        grow hcells (base + hslots);
        for i = base to base + hslots - 1 do
          Atomic.set !hcells.(i) 0
        done;
        incr nhist;
        base

  let family ?(help = "") ~labels name kind =
    match Hashtbl.find_opt registry name with
    | Some f ->
        if f.fkind <> kind then
          invalid_arg
            (Printf.sprintf "Obs.Metrics: %s already registered as a %s" name
               (kind_name f.fkind));
        if f.flabels <> labels then
          invalid_arg
            (Printf.sprintf
               "Obs.Metrics: %s already registered with labels (%s)" name
               (String.concat ", " f.flabels));
        if f.fhelp = "" then f.fhelp <- help;
        f
    | None ->
        let f =
          { fname = name; fkind = kind; fhelp = help; flabels = labels;
            samples = []; children = Hashtbl.create 4 }
        in
        Hashtbl.add registry name f;
        order := f :: !order;
        f

  let flat ?help name kind =
    let f = family ?help ~labels:[] name kind in
    match f.samples with
    | (_, i) :: _ -> i
    | [] ->
        let i = alloc_index kind in
        f.samples <- [ ([], i) ];
        i

  let counter ?help name : counter = flat ?help name Kcounter
  let gauge ?help name : gauge = flat ?help name Kgauge
  let histogram ?help name : histogram = flat ?help name Khistogram

  let vec ?help name ~labels kind =
    if labels = [] then
      invalid_arg ("Obs.Metrics: vec " ^ name ^ " needs at least one label");
    family ?help ~labels name kind

  let counter_vec ?help name ~labels : counter_vec =
    vec ?help name ~labels Kcounter

  let gauge_vec ?help name ~labels : gauge_vec = vec ?help name ~labels Kgauge

  let histogram_vec ?help name ~labels : histogram_vec =
    vec ?help name ~labels Khistogram

  (* Child interning: one cell block per distinct label-value tuple,
     created on first use (idempotent — the joined values are the key).
     Like registration, child creation belongs on the main domain
     outside parallel regions; the call sites (chunk epilogues,
     connection setup) satisfy that by construction. *)
  let child (f : family) values : int =
    if List.length values <> List.length f.flabels then
      invalid_arg
        (Printf.sprintf "Obs.Metrics: %s takes %d label values" f.fname
           (List.length f.flabels));
    let key = String.concat "\x00" values in
    match Hashtbl.find_opt f.children key with
    | Some i -> i
    | None ->
        let i = alloc_index f.fkind in
        Hashtbl.replace f.children key i;
        f.samples <- (values, i) :: f.samples;
        i

  let counter_child : counter_vec -> string list -> counter = child
  let gauge_child : gauge_vec -> string list -> gauge = child
  let histogram_child : histogram_vec -> string list -> histogram = child

  (* The recording fast path: one flag check, then one atomic
     read-modify-write on the cell (indices are valid by construction
     of the handles). Gauge sets race as last-write-wins, which is the
     right semantics for a level. *)
  let incr (c : counter) =
    if Atomic.get on then Atomic.incr (Array.unsafe_get !cells c)

  let add (c : counter) v =
    if Atomic.get on then
      ignore (Atomic.fetch_and_add (Array.unsafe_get !cells c) v)

  let set (g : gauge) v =
    if Atomic.get on then Atomic.set (Array.unsafe_get !cells g) v

  (* Always-on recording, skipping the enabled check: for counters that
     make telemetry loss itself observable (span-ring drops, pool
     scheduling) — a dark kernel would otherwise hide exactly the
     events one scrapes /metrics to find. Callers keep these off hot
     per-event paths; the cost is one atomic RMW per call. *)
  let incr_always (c : counter) = Atomic.incr (Array.unsafe_get !cells c)

  let add_always (c : counter) v =
    ignore (Atomic.fetch_and_add (Array.unsafe_get !cells c) v)

  let bucket_of v =
    if v <= 0 then 0
    else begin
      let b = ref 0 and v = ref v in
      while !v > 0 do
        b := !b + 1;
        v := !v lsr 1
      done;
      (* !b = floor(log2 v) + 1 <= 62 for 63-bit ints *)
      if !b > nbuckets - 1 then nbuckets - 1 else !b
    end

  let observe (h : histogram) v =
    if Atomic.get on then begin
      let cells = !hcells in
      Atomic.incr (Array.unsafe_get cells (h + bucket_of v));
      ignore (Atomic.fetch_and_add (Array.unsafe_get cells (h + nbuckets)) v)
    end

  let counter_value (c : counter) = Atomic.get !cells.(c)
  let gauge_value (g : gauge) = Atomic.get !cells.(g)

  let histogram_count (h : histogram) =
    let total = ref 0 in
    for i = h to h + nbuckets - 1 do
      total := !total + Atomic.get !hcells.(i)
    done;
    !total

  let histogram_sum (h : histogram) = Atomic.get !hcells.(h + nbuckets)

  let bucket_upper i = (1 lsl i) - 1 (* bucket 0 -> 0, bucket i -> 2^i - 1 *)

  let histogram_buckets (h : histogram) =
    let last_nonempty = ref (-1) in
    for i = 0 to nbuckets - 1 do
      if Atomic.get !hcells.(h + i) > 0 then last_nonempty := i
    done;
    let cum = ref 0 in
    let finite =
      List.init (!last_nonempty + 1) (fun i ->
          cum := !cum + Atomic.get !hcells.(h + i);
          (Some (bucket_upper i), !cum))
    in
    finite @ [ (None, !cum) ]

  (* Flat lookup by name: families with labels have no unlabeled
     sample, so they report [None] here (use the child handle). *)
  let find name kinds =
    match Hashtbl.find_opt registry name with
    | Some f when List.mem f.fkind kinds && f.flabels = [] -> (
        match f.samples with (_, i) :: _ -> Some i | [] -> None)
    | _ -> None

  let value name =
    Option.map (fun i -> Atomic.get !cells.(i)) (find name [ Kcounter; Kgauge ])

  let histogram_stats name =
    Option.map
      (fun i -> (histogram_count i, histogram_sum i))
      (find name [ Khistogram ])

  let registered () = List.rev !order

  let names () = List.map (fun f -> f.fname) (registered ())

  (* Text-format escaping per the Prometheus exposition spec: label
     values escape backslash, double-quote and newline; HELP text
     escapes backslash and newline only. *)
  let escape_label s =
    let buf = Buffer.create (String.length s) in
    String.iter
      (fun c ->
        match c with
        | '\\' -> Buffer.add_string buf "\\\\"
        | '"' -> Buffer.add_string buf "\\\""
        | '\n' -> Buffer.add_string buf "\\n"
        | c -> Buffer.add_char buf c)
      s;
    Buffer.contents buf

  let escape_help s =
    let buf = Buffer.create (String.length s) in
    String.iter
      (fun c ->
        match c with
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | c -> Buffer.add_char buf c)
      s;
    Buffer.contents buf

  (* Rendered label set: [{k="v",...}], or "" for flat samples. [extra]
     carries pre-rendered pairs (the histogram [le] bound). *)
  let labels_str lnames lvals extra =
    let pairs =
      List.map2 (fun k v -> k ^ "=\"" ^ escape_label v ^ "\"") lnames lvals
      @ extra
    in
    match pairs with
    | [] -> ""
    | ps -> "{" ^ String.concat "," ps ^ "}"

  let to_prometheus () =
    let buf = Buffer.create 1024 in
    let p fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
    List.iter
      (fun f ->
        let help = if f.fhelp = "" then f.fname else f.fhelp in
        p "# HELP %s %s\n" f.fname (escape_help help);
        p "# TYPE %s %s\n" f.fname (kind_name f.fkind);
        List.iter
          (fun (lvals, idx) ->
            let ls extra = labels_str f.flabels lvals extra in
            match f.fkind with
            | Kcounter | Kgauge ->
                p "%s%s %d\n" f.fname (ls []) (Atomic.get !cells.(idx))
            | Khistogram ->
                List.iter
                  (fun (ub, cum) ->
                    let le =
                      match ub with
                      | Some ub -> string_of_int ub
                      | None -> "+Inf"
                    in
                    p "%s_bucket%s %d\n" f.fname
                      (ls [ "le=\"" ^ le ^ "\"" ])
                      cum)
                  (histogram_buckets idx);
                p "%s_sum%s %d\n" f.fname (ls []) (histogram_sum idx);
                p "%s_count%s %d\n" f.fname (ls []) (histogram_count idx))
          (List.rev f.samples))
      (registered ());
    Buffer.contents buf

  let reset () =
    for i = 0 to !ncells - 1 do
      Atomic.set !cells.(i) 0
    done;
    for i = 0 to (!nhist * hslots) - 1 do
      Atomic.set !hcells.(i) 0
    done
end

(* ------------------------------------------------------------------ *)
(* Spans                                                               *)
(* ------------------------------------------------------------------ *)

module Span = struct
  type token = int (* generation number; 0 = none *)

  let none : token = 0

  type event = {
    name : string;
    ts_us : float;
    dur_us : float;
    depth : int;
    attrs : (string * int) list;
    minor_words : int;
    major_words : int;
    minor_collections : int;
    major_collections : int;
    heap_delta_words : int;
  }

  (* Open-span stack: frames are preallocated records mutated in place,
     so entering a span allocates nothing beyond the attrs list. *)
  type frame = {
    mutable gen : int;
    mutable fname : string;
    mutable start_us : float;
    mutable fattrs : (string * int) list;
    mutable mw0 : float;
    mutable maw0 : float;
    mutable mic0 : int;
    mutable mac0 : int;
    mutable hw0 : int;
  }

  let fresh_frame () =
    { gen = 0; fname = ""; start_us = 0.; fattrs = []; mw0 = 0.; maw0 = 0.;
      mic0 = 0; mac0 = 0; hw0 = 0 }

  let stack = ref (Array.init 16 (fun _ -> fresh_frame ()))
  let depth = ref 0
  let generation = ref 0
  let gc_probe = ref true

  let dummy_event =
    { name = ""; ts_us = 0.; dur_us = 0.; depth = 0; attrs = [];
      minor_words = 0; major_words = 0; minor_collections = 0;
      major_collections = 0; heap_delta_words = 0 }

  let ring = ref (Array.make 8192 dummy_event)
  let ring_start = ref 0
  let ring_len = ref 0
  let dropped_count = ref 0

  (* Always-on: a full ring silently forgetting spans is precisely the
     kind of loss an operator needs to see on /metrics. *)
  let m_dropped =
    Metrics.counter
      ~help:"Span events dropped because the ring buffer was full"
      "spans_dropped_total"

  type agg = { mutable count : int; mutable total_us : float }

  let aggs : (string, agg) Hashtbl.t = Hashtbl.create 64

  let set_ring_capacity n =
    if n <= 0 then invalid_arg "Obs.Span.set_ring_capacity";
    ring := Array.make n dummy_event;
    ring_start := 0;
    ring_len := 0;
    dropped_count := 0

  let ring_capacity () = Array.length !ring
  let dropped () = !dropped_count
  let set_gc_probe b = gc_probe := b

  let push_event ev =
    let cap = Array.length !ring in
    if !ring_len < cap then begin
      !ring.((!ring_start + !ring_len) mod cap) <- ev;
      incr ring_len
    end
    else begin
      !ring.(!ring_start) <- ev;
      ring_start := (!ring_start + 1) mod cap;
      incr dropped_count;
      Metrics.incr_always m_dropped
    end;
    (match Hashtbl.find_opt aggs ev.name with
    | Some a ->
        a.count <- a.count + 1;
        a.total_us <- a.total_us +. ev.dur_us
    | None -> Hashtbl.add aggs ev.name { count = 1; total_us = ev.dur_us })

  (* Spans keep one mutable stack + ring, owned by the main domain:
     [enter] from a pool worker returns the inert token (making the
     matching [attr]/[exit] no-ops), so worker-side spans are dropped
     rather than corrupting the stack. The disabled path stays a single
     flag load — the domain check runs only when collection is on. *)
  let enter name : token =
    if not (Atomic.get on) || not (on_main_domain ()) then none
    else begin
      let i = !depth in
      if i = Array.length !stack then begin
        let fresh =
          Array.init (2 * i) (fun j ->
              if j < i then !stack.(j) else fresh_frame ())
        in
        stack := fresh
      end;
      let f = !stack.(i) in
      incr generation;
      f.gen <- !generation;
      f.fname <- name;
      f.fattrs <- [];
      f.start_us <- Clock.now_us ();
      if !gc_probe then begin
        let s = Gc.quick_stat () in
        (* [quick_stat]'s [minor_words] omits words allocated since the
           last minor collection (OCaml 5), which zeroes out short
           spans; [Gc.minor_words] reads the allocation pointer too. *)
        f.mw0 <- Gc.minor_words ();
        f.maw0 <- s.Gc.major_words;
        f.mic0 <- s.Gc.minor_collections;
        f.mac0 <- s.Gc.major_collections;
        f.hw0 <- s.Gc.heap_words
      end;
      depth := i + 1;
      !generation
    end

  let find_frame tok =
    let rec scan i =
      if i < 0 then -1
      else if !stack.(i).gen = tok then i
      else scan (i - 1)
    in
    scan (!depth - 1)

  let attr tok key v =
    if tok <> none then begin
      let i = find_frame tok in
      if i >= 0 then begin
        let f = !stack.(i) in
        f.fattrs <- (key, v) :: f.fattrs
      end
    end

  let exit tok =
    if tok <> none then begin
      let target = find_frame tok in
      if target >= 0 then begin
        let now = Clock.now_us () in
        let stat =
          if !gc_probe then Some (Gc.quick_stat (), Gc.minor_words ())
          else None
        in
        (* Close still-open children innermost-first, at one timestamp. *)
        while !depth > target do
          let i = !depth - 1 in
          let f = !stack.(i) in
          let mw, maw, mic, mac, hd =
            match stat with
            | None -> (0, 0, 0, 0, 0)
            | Some (s, mwn) ->
                ( int_of_float (mwn -. f.mw0),
                  int_of_float (s.Gc.major_words -. f.maw0),
                  s.Gc.minor_collections - f.mic0,
                  s.Gc.major_collections - f.mac0,
                  s.Gc.heap_words - f.hw0 )
          in
          push_event
            { name = f.fname; ts_us = f.start_us;
              dur_us = now -. f.start_us; depth = i;
              attrs = List.rev f.fattrs; minor_words = mw; major_words = maw;
              minor_collections = mic; major_collections = mac;
              heap_delta_words = hd };
          f.gen <- 0;
          depth := i
        done
      end
    end

  let with_ name f =
    let tok = enter name in
    match f () with
    | v ->
        exit tok;
        v
    | exception e ->
        exit tok;
        raise e

  let events () =
    let cap = Array.length !ring in
    List.init !ring_len (fun i -> !ring.((!ring_start + i) mod cap))

  let aggregates () =
    Hashtbl.fold (fun name a acc -> (name, a.count, a.total_us) :: acc) aggs []
    |> List.sort compare

  let event_to_json ev =
    let buf = Buffer.create 160 in
    let p fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
    p "{\"name\": \"%s\", \"ph\": \"X\", \"pid\": 1, \"tid\": 1, \
       \"ts\": %.3f, \"dur\": %.3f, \"args\": {"
      (json_escape ev.name) ev.ts_us ev.dur_us;
    let sep = ref "" in
    let field k v =
      p "%s\"%s\": %d" !sep (json_escape k) v;
      sep := ", "
    in
    field "depth" ev.depth;
    List.iter (fun (k, v) -> field k v) ev.attrs;
    field "minor_words" ev.minor_words;
    field "major_words" ev.major_words;
    field "minor_gcs" ev.minor_collections;
    field "major_gcs" ev.major_collections;
    field "heap_delta_words" ev.heap_delta_words;
    p "}}";
    Buffer.contents buf

  let write_jsonl oc =
    List.iter
      (fun ev ->
        output_string oc (event_to_json ev);
        output_char oc '\n')
      (events ())

  let to_jsonl () =
    let buf = Buffer.create 1024 in
    List.iter
      (fun ev ->
        Buffer.add_string buf (event_to_json ev);
        Buffer.add_char buf '\n')
      (events ());
    Buffer.contents buf

  let reset () =
    depth := 0;
    ring_start := 0;
    ring_len := 0;
    dropped_count := 0;
    Hashtbl.reset aggs
end

let reset () =
  Metrics.reset ();
  Span.reset ()
