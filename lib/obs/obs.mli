(** The observability kernel: spans, metrics, and a GC/alloc probe.

    Zero external dependencies (the clock defaults to a monotonized
    [Unix.gettimeofday], part of the compiler distribution). The whole
    kernel is dark by default: every recording entry point performs a
    single global [enabled] check and returns immediately when the
    kernel is off, so instrumented code paths cost one boolean load —
    the property suite pins that disabled-mode runs are observably
    identical to uninstrumented ones.

    Three instruments:

    - {b Metrics} — counters, gauges and log-2-bucketed histograms with
      int-only flat-array storage: registering a metric allocates once,
      recording a sample is two array writes and never allocates.
      Exported in the Prometheus text exposition format.
    - {b Spans} — nestable monotonic-clock spans with int key/value
      attributes, buffered in a bounded ring and exported as JSON-lines
      trace events compatible with [chrome://tracing]'s trace-event
      format (one complete-event object per line).
    - {b GC probe} — minor/major words, collection counts and
      major-heap deltas recorded per span (togglable, on by default). *)

val enable : unit -> unit
(** Turn collection on. Registration is independent of this switch:
    metric handles created while disabled record normally once
    enabled. *)

val disable : unit -> unit
val is_enabled : unit -> bool

val reset : unit -> unit
(** Zero every metric, drop all buffered span events and aggregates,
    and abandon any open spans. Registered metric handles stay valid. *)

(** Monotonic time source. *)
module Clock : sig
  val now_us : unit -> float
  (** Microseconds since the first reading of the current source.
      Monotone non-decreasing by construction: readings that go
      backwards (NTP steps under the default wall-clock source) are
      clamped to the previous reading. *)

  val set_source : (unit -> float) -> unit
  (** Install a clock source (seconds, arbitrary epoch) and restart the
      epoch at its first reading. Tests install deterministic sources;
      the default is [Unix.gettimeofday]. *)

  val reset_source : unit -> unit
  (** Back to the default wall-clock source (fresh epoch). *)
end

module Metrics : sig
  type counter
  type gauge
  type histogram

  val counter : ?help:string -> string -> counter
  (** Register (or retrieve — registration is idempotent by name) a
      monotone counter. Names follow Prometheus conventions:
      [snake_case], [_total] suffix for counters. [help] becomes the
      [# HELP] line of the exposition (first non-empty registration
      wins; the name itself is the fallback).
      @raise Invalid_argument if the name is registered as another
      kind. *)

  val gauge : ?help:string -> string -> gauge
  val histogram : ?help:string -> string -> histogram

  (** {2 Labeled families}

      A vec is a metric family with a fixed list of label {e names};
      {!counter_child} etc. intern one child series per distinct label
      {e value} tuple. Child handles are ordinary {!counter} /
      {!gauge} / {!histogram} handles — recording into a labeled
      series costs exactly a flat record — and the family renders in
      the exposition as [name{label="value",...}] lines with values
      escaped per the text-format spec.

      Child creation (like registration) must happen on the main
      domain outside parallel regions: chunk epilogues and connection
      setup qualify, worker bodies do not. *)

  type counter_vec
  type gauge_vec
  type histogram_vec

  val counter_vec : ?help:string -> string -> labels:string list -> counter_vec
  (** @raise Invalid_argument on an empty label list, a kind clash, or
      a label-list clash with an earlier registration of the name. *)

  val gauge_vec : ?help:string -> string -> labels:string list -> gauge_vec
  val histogram_vec :
    ?help:string -> string -> labels:string list -> histogram_vec

  val counter_child : counter_vec -> string list -> counter
  (** The family's series for this label-value tuple, interned on
      first use (idempotent by values).
      @raise Invalid_argument if the value count differs from the
      family's label count. *)

  val gauge_child : gauge_vec -> string list -> gauge
  val histogram_child : histogram_vec -> string list -> histogram

  val incr : counter -> unit
  val add : counter -> int -> unit
  val set : gauge -> int -> unit

  val incr_always : counter -> unit
  (** Record even while the kernel is disabled — reserved for counters
      that make telemetry loss itself observable ([spans_dropped_total],
      pool scheduling). Never used on per-event hot paths. *)

  val add_always : counter -> int -> unit

  val observe : histogram -> int -> unit
  (** Record a sample into its log-2 bucket: bucket 0 holds samples
      [<= 0], bucket [i >= 1] holds samples in [[2^(i-1), 2^i - 1]]
      (upper bound [2^i - 1] is the bucket's [le] label), with one
      overflow bucket at the top. Allocation-free. *)

  val counter_value : counter -> int
  val gauge_value : gauge -> int

  val histogram_count : histogram -> int
  val histogram_sum : histogram -> int

  val histogram_buckets : histogram -> (int option * int) list
  (** Cumulative [(upper_bound, count)] pairs up to the last non-empty
      bucket, then the [+Inf] bucket as [(None, total)]. *)

  val value : string -> int option
  (** Current value of a registered counter or gauge, by name. *)

  val histogram_stats : string -> (int * int) option
  (** [(count, sum)] of a registered histogram, by name. *)

  val names : unit -> string list
  (** All registered metric names, in registration order. *)

  val to_prometheus : unit -> string
  (** Text exposition: [# HELP] and [# TYPE] comments then sample lines
      per family, histograms as cumulative [_bucket{le="..."}] /
      [_sum] / [_count] series, in registration order with labeled
      children in creation order. Label values and help text are
      escaped per the text-format spec (backslash, double quote and
      newline in labels; backslash and newline in help). *)
end

module Span : sig
  type token
  (** Handle for an open span; the disabled kernel hands out an inert
      token, so callers never branch on the enabled state themselves. *)

  val none : token

  val enter : string -> token
  (** Open a span. Nesting is by entry order: spans opened while this
      one is open are its children. When disabled, returns {!none}. *)

  val attr : token -> string -> int -> unit
  (** Attach an int key/value attribute to an open span (exported under
      ["args"] in the trace event). No-op on {!none} or closed
      tokens. *)

  val exit : token -> unit
  (** Close a span, recording its duration, attributes and GC deltas
      into the ring. Children still open are closed first (at the same
      timestamp), so events always appear innermost-first. No-op on
      {!none} and on already-closed tokens. *)

  val with_ : string -> (unit -> 'a) -> 'a
  (** [with_ name f] wraps [f ()] in a span, closing it on exceptions
      too. *)

  type event = {
    name : string;
    ts_us : float;  (** start, microseconds since the clock epoch *)
    dur_us : float;
    depth : int;  (** nesting depth at entry; 0 = root *)
    attrs : (string * int) list;  (** in attachment order *)
    minor_words : int;  (** minor allocations during the span, words *)
    major_words : int;
    minor_collections : int;
    major_collections : int;
    heap_delta_words : int;  (** major-heap size delta (may be < 0) *)
  }

  val events : unit -> event list
  (** Buffered completed spans, oldest first. The ring keeps the most
      recent {!ring_capacity} events; older ones are counted in
      {!dropped}. *)

  val dropped : unit -> int

  val set_ring_capacity : int -> unit
  (** Resize the ring (default 8192); drops buffered events. *)

  val ring_capacity : unit -> int

  val set_gc_probe : bool -> unit
  (** Toggle the per-span GC probe (default on). With the probe off the
      GC fields of new events are 0. *)

  val aggregates : unit -> (string * int * float) list
  (** Per-span-name [(name, count, total_us)] over every completed span
      since the last {!reset} — independent of the ring, so it sees
      spans the ring has dropped. Sorted by name. *)

  val write_jsonl : out_channel -> unit
  (** Write buffered events as trace-event JSON objects, one per line:
      [{"name":...,"ph":"X","pid":1,"tid":1,"ts":...,"dur":...,
      "args":{...}}] — loadable by [chrome://tracing]/Perfetto after
      wrapping the lines in a JSON array. *)

  val to_jsonl : unit -> string
end
