module Obs = Sl_obs.Obs

(* Kernel-level telemetry (dark unless Sl_obs is enabled): how many
   graph analyses ran and how large their working sets got. The peak
   trackers themselves are a couple of int ops per node — cheap enough
   to keep unconditional, so enabling metrics changes no traversal. *)
let m_scc_runs = Obs.Metrics.counter "digraph_scc_runs_total"
let h_scc_count = Obs.Metrics.histogram "digraph_scc_count"
let m_reach_runs = Obs.Metrics.counter "digraph_reach_runs_total"
let h_reach_frontier_peak = Obs.Metrics.histogram "digraph_reach_frontier_peak"

type t = {
  nodes : int;
  nsyms : int;
  off : int array;  (* length nodes * nsyms + 1; extent of (v, s) is
                       [off.(v * nsyms + s), off.(v * nsyms + s + 1)) *)
  succ : int array;
}

let nodes g = g.nodes
let nsyms g = g.nsyms
let nedges g = Array.length g.succ

let of_delta delta =
  let nodes = Array.length delta in
  let nsyms = if nodes = 0 then 1 else Array.length delta.(0) in
  if nodes > 0 && nsyms = 0 then invalid_arg "Digraph.of_delta: zero symbols";
  let off = Array.make ((nodes * nsyms) + 1) 0 in
  let m = ref 0 in
  Array.iteri
    (fun v row ->
      if Array.length row <> nsyms then
        invalid_arg "Digraph.of_delta: ragged rows";
      Array.iteri
        (fun s l ->
          m := !m + List.length l;
          off.((v * nsyms) + s + 1) <- !m)
        row)
    delta;
  let succ = Array.make !m 0 in
  let pos = ref 0 in
  Array.iter
    (Array.iter
       (List.iter (fun w ->
            if w < 0 || w >= nodes then
              invalid_arg "Digraph.of_delta: target out of range";
            succ.(!pos) <- w;
            incr pos)))
    delta;
  { nodes; nsyms; off; succ }

let of_successors rows = of_delta (Array.map (fun l -> [| l |]) rows)

let of_array_delta delta =
  of_delta (Array.map (Array.map (fun w -> [ w ])) delta)

let of_fn ~nodes f = of_successors (Array.init nodes f)

let iter_succ g v f =
  let lo = g.off.(v * g.nsyms) and hi = g.off.((v + 1) * g.nsyms) in
  for i = lo to hi - 1 do
    f g.succ.(i)
  done

let iter_succ_sym g v s f =
  let base = (v * g.nsyms) + s in
  for i = g.off.(base) to g.off.(base + 1) - 1 do
    f g.succ.(i)
  done

let sym_degree g v s =
  let base = (v * g.nsyms) + s in
  g.off.(base + 1) - g.off.(base)

let succs_sym g v s =
  let base = (v * g.nsyms) + s in
  let acc = ref [] in
  for i = g.off.(base + 1) - 1 downto g.off.(base) do
    acc := g.succ.(i) :: !acc
  done;
  !acc

let has_self_loop g v =
  let lo = g.off.(v * g.nsyms) and hi = g.off.((v + 1) * g.nsyms) in
  let rec scan i = i < hi && (g.succ.(i) = v || scan (i + 1)) in
  scan lo

let always _ = true

let reach_into g keep seen worklist =
  let len = ref (List.length !worklist) in
  let peak = ref !len in
  while !worklist <> [] do
    match !worklist with
    | [] -> ()
    | v :: rest ->
        worklist := rest;
        decr len;
        iter_succ g v (fun w ->
            if (not seen.(w)) && keep w then begin
              seen.(w) <- true;
              worklist := w :: !worklist;
              incr len;
              if !len > !peak then peak := !len
            end)
  done;
  Obs.Metrics.incr m_reach_runs;
  Obs.Metrics.observe h_reach_frontier_peak !peak

let reachable ?filter g sources =
  let keep = Option.value filter ~default:always in
  let seen = Array.make g.nodes false in
  let worklist = ref [] in
  List.iter
    (fun v ->
      if (not seen.(v)) && keep v then begin
        seen.(v) <- true;
        worklist := v :: !worklist
      end)
    sources;
  reach_into g keep seen worklist;
  seen

let reachable_from ?filter g seeds =
  let keep = Option.value filter ~default:always in
  let seen = Array.make g.nodes false in
  let worklist = ref [] in
  Array.iteri
    (fun v b ->
      if b && keep v then begin
        seen.(v) <- true;
        worklist := v :: !worklist
      end)
    seeds;
  reach_into g keep seen worklist;
  seen

let reverse g =
  let n = g.nodes in
  let off = Array.make (n + 1) 0 in
  Array.iter (fun w -> off.(w + 1) <- off.(w + 1) + 1) g.succ;
  for i = 1 to n do
    off.(i) <- off.(i) + off.(i - 1)
  done;
  let succ = Array.make (Array.length g.succ) 0 in
  let pos = Array.make n 0 in
  Array.blit off 0 pos 0 n;
  for v = 0 to n - 1 do
    iter_succ g v (fun w ->
        succ.(pos.(w)) <- v;
        pos.(w) <- pos.(w) + 1)
  done;
  { nodes = n; nsyms = 1; off; succ }

type scc = {
  comp : int array;
  count : int;
  comps : int list list;
  nontrivial : bool array;
}

(* Iterative Tarjan. Frames carry (node, next edge offset); a child's
   completion propagates its lowlink to the parent exactly where the
   recursive formulation would, so index assignment, component ids and
   member order all match the textbook recursion — only the call stack is
   explicit, so deep path-shaped graphs cannot overflow it. *)
let sccs ?filter g =
  let n = g.nodes in
  let keep = Option.value filter ~default:always in
  let index = Array.make n (-1) in
  let lowlink = Array.make n 0 in
  let on_stack = Array.make n false in
  let self_loop = Array.make n false in
  let stack = ref [] in
  let counter = ref 0 in
  let comp = Array.make n (-1) in
  let comps = ref [] in
  let nontrivial_rev = ref [] in
  let ncomp = ref 0 in
  let frame_node = ref (Array.make 64 0) in
  let frame_pos = ref (Array.make 64 0) in
  let depth = ref 0 in
  let push v =
    if !depth = Array.length !frame_node then begin
      let grow a =
        let b = Array.make (2 * Array.length a) 0 in
        Array.blit a 0 b 0 (Array.length a);
        b
      in
      frame_node := grow !frame_node;
      frame_pos := grow !frame_pos
    end;
    !frame_node.(!depth) <- v;
    !frame_pos.(!depth) <- g.off.(v * g.nsyms);
    incr depth;
    index.(v) <- !counter;
    lowlink.(v) <- !counter;
    incr counter;
    stack := v :: !stack;
    on_stack.(v) <- true
  in
  let close v =
    if lowlink.(v) = index.(v) then begin
      let members = ref [] in
      let size = ref 0 in
      let continue_ = ref true in
      while !continue_ do
        match !stack with
        | [] -> continue_ := false
        | w :: rest ->
            stack := rest;
            on_stack.(w) <- false;
            comp.(w) <- !ncomp;
            members := w :: !members;
            incr size;
            if w = v then continue_ := false
      done;
      comps := !members :: !comps;
      nontrivial_rev := (!size > 1 || self_loop.(v)) :: !nontrivial_rev;
      incr ncomp
    end
  in
  let run root =
    push root;
    while !depth > 0 do
      let v = !frame_node.(!depth - 1) in
      let pos = !frame_pos.(!depth - 1) in
      if pos < g.off.((v + 1) * g.nsyms) then begin
        !frame_pos.(!depth - 1) <- pos + 1;
        let w = g.succ.(pos) in
        if keep w then begin
          if w = v then self_loop.(v) <- true;
          if index.(w) = -1 then push w
          else if on_stack.(w) then lowlink.(v) <- min lowlink.(v) index.(w)
        end
      end
      else begin
        decr depth;
        close v;
        if !depth > 0 then begin
          let u = !frame_node.(!depth - 1) in
          lowlink.(u) <- min lowlink.(u) lowlink.(v)
        end
      end
    done
  in
  for v = 0 to n - 1 do
    if keep v && index.(v) = -1 then run v
  done;
  Obs.Metrics.incr m_scc_runs;
  Obs.Metrics.observe h_scc_count !ncomp;
  {
    comp;
    count = !ncomp;
    comps = !comps;
    nontrivial = Array.of_list (List.rev !nontrivial_rev);
  }

let condense g r =
  let nc = r.count in
  let mark = Array.make nc (-1) in
  let lists = Array.make nc [] in
  (* One source component at a time, so the stamp array dedups exactly. *)
  List.iter
    (fun members ->
      match members with
      | [] -> ()
      | hd :: _ ->
          let c = r.comp.(hd) in
          List.iter
            (fun v ->
              iter_succ g v (fun w ->
                  let cw = r.comp.(w) in
                  if cw >= 0 && cw <> c && mark.(cw) <> c then begin
                    mark.(cw) <- c;
                    lists.(c) <- cw :: lists.(c)
                  end))
            members)
    r.comps;
  of_successors (Array.map List.rev lists)

let good_comps ?filter g ~predicates =
  let r = sccs ?filter g in
  let good members =
    (match members with
    | [] -> false
    | hd :: _ -> r.nontrivial.(r.comp.(hd)))
    && List.for_all (fun p -> List.exists p members) predicates
  in
  (r, good)

let has_good_scc ?filter g ~predicates =
  let r, good = good_comps ?filter g ~predicates in
  List.exists good r.comps

(* Serialization: the CSR representation is already flat, so the
   payload is just the two dimensions and the two arrays. Decoding
   re-establishes every invariant [of_delta] would have enforced —
   anything a builder rejects, the decoder rejects as [Wire.Corrupt],
   so a cached artifact can never smuggle in a graph this module could
   not have produced. *)

let encode w g =
  Wire.put_int w g.nodes;
  Wire.put_int w g.nsyms;
  Wire.put_int_array w g.off;
  Wire.put_int_array w g.succ

let decode r =
  let fail fmt = Printf.ksprintf (fun s -> raise (Wire.Corrupt s)) fmt in
  let nodes = Wire.get_int r in
  let nsyms = Wire.get_int r in
  let off = Wire.get_int_array r in
  let succ = Wire.get_int_array r in
  if nodes < 0 then fail "digraph: negative node count %d" nodes;
  if nsyms < 1 then fail "digraph: bad symbol count %d" nsyms;
  if Array.length off <> (nodes * nsyms) + 1 then
    fail "digraph: offset array length %d for %d nodes x %d symbols"
      (Array.length off) nodes nsyms;
  if off.(0) <> 0 then fail "digraph: offsets do not start at 0";
  for i = 1 to Array.length off - 1 do
    if off.(i) < off.(i - 1) then fail "digraph: offsets not monotone at %d" i
  done;
  if off.(Array.length off - 1) <> Array.length succ then
    fail "digraph: offsets end at %d but %d edges stored"
      off.(Array.length off - 1)
      (Array.length succ);
  Array.iter
    (fun w -> if w < 0 || w >= nodes then fail "digraph: edge target %d" w)
    succ;
  { nodes; nsyms; off; succ }

let to_artifact g =
  let w = Wire.writer () in
  encode w g;
  Wire.to_artifact ~kind:Wire.kind_digraph w

let of_artifact s =
  match
    let r = Wire.of_artifact_kind ~kind:Wire.kind_digraph s in
    let g = decode r in
    Wire.expect_end r;
    g
  with
  | g -> Some g
  | exception Wire.Corrupt _ -> None

let good_scc_members ?filter g ~predicates =
  let r, good = good_comps ?filter g ~predicates in
  let marked = Array.make g.nodes false in
  List.iter
    (fun members ->
      if good members then List.iter (fun v -> marked.(v) <- true) members)
    r.comps;
  marked
