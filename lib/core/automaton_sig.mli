(** The shared shape of every finite-state layer in the repository, and
    the one implementation of the make/validate/of_edges input checking
    that the automaton modules ([Nfa], [Dfa], [Buchi], [Gnba],
    [Acceptance], [Rabin]) previously each re-implemented.

    Each automaton module provides a compile-time witness that it
    matches {!S}; the validators here raise [Invalid_argument] with the
    caller's [name] prefix, so error messages keep their per-module
    shape ("Buchi.make: bad start"). *)

(** What every automaton layer exposes: an integer alphabet, a dense
    state space, and its transition structure as a {!Digraph.t} — the
    handle all shared graph analyses run on. *)
module type S = sig
  type t

  val alphabet : t -> int
  val nstates : t -> int

  val graph : t -> Digraph.t
  (** The transition graph (symbol-labeled where the layer has symbols;
      tuple components flattened for tree automata). *)
end

(** {1 Validators} — all raise [Invalid_argument] prefixed by [name]. *)

val check_alphabet : name:string -> int -> unit
(** Requires at least one symbol. *)

val check_nstates : ?min:int -> name:string -> int -> unit
(** Requires [nstates >= min] (default [1]). *)

val check_state : name:string -> nstates:int -> int -> unit
(** Range check for a designated state (a start state). *)

val check_delta :
  name:string -> alphabet:int -> nstates:int -> int list array array -> unit
(** Shape check for a list-valued transition table: [nstates] rows of
    [alphabet] cells, all successors in range. *)

val check_flags : name:string -> nstates:int -> bool array -> unit
(** A per-state flag array must have exactly [nstates] entries. *)

(** {1 Constructors} *)

val delta_of_edges :
  name:string ->
  alphabet:int ->
  nstates:int ->
  (int * int * int) list ->
  int list array array
(** Transition table from [(source, symbol, target)] triples; each cell
    is sorted and deduplicated. Range-checks sources and symbols
    ([check_delta] still validates the result's targets). *)

val flags_of_list : nstates:int -> int list -> bool array
(** Flag array from a state list (out-of-range entries are the caller's
    [check_state] responsibility). *)
