module Lattice = Sl_lattice.Lattice
module Closure = Sl_lattice.Closure
module Named = Sl_lattice.Named

type report = (unit, string) result

let failf fmt = Format.kasprintf (fun s -> Error s) fmt

let as_complemented l : (module Theory.COMPLEMENTED with type t = Lattice.elt)
    =
  (module struct
    type t = Lattice.elt

    let equal = Int.equal
    let leq = Lattice.leq l
    let meet = Lattice.meet l
    let join = Lattice.join l
    let bot = Lattice.bot l
    let top = Lattice.top l
    let pp = Format.pp_print_int

    let complement a =
      match Lattice.complements l a with [] -> None | b :: _ -> Some b
  end)

let check_hypotheses_fresh ~need_distributive l =
  if not (Lattice.is_complemented l) then
    failf "lattice not complemented (elements %s lack complements)"
      (String.concat ","
         (List.map string_of_int (Lattice.uncomplemented l)))
  else if need_distributive && not (Lattice.is_distributive l) then
    (match Lattice.distributivity_violation l with
    | Some (a, b, c) -> failf "lattice not distributive at (%d,%d,%d)" a b c
    | None -> assert false)
  else if (not need_distributive) && not (Lattice.is_modular l) then
    (match Lattice.modularity_violation l with
    | Some (a, b, c) -> failf "lattice not modular at (%d,%d,%d)" a b c
    | None -> assert false)
  else Ok ()

(* Hypothesis verification is pure in the lattice but costs O(n^3); the
   exhaustive sweeps and benches re-verify the same lattice once per
   closure (resp. per pair), so verdicts are memoized by physical
   identity. Each memo is an immutable assoc list behind an [Atomic]:
   domains fanned out by [check_all_closures] race only to duplicate a
   pure computation, never to observe a torn table. The cap keeps
   throwaway lattices from property tests from growing it unboundedly. *)
let memo_cap = 16

let memo_find memo l =
  List.find_map
    (fun (l', r) -> if l' == l then Some r else None)
    (Atomic.get memo)

let rec memo_add memo l r =
  let old = Atomic.get memo in
  if List.exists (fun (l', _) -> l' == l) old then ()
  else begin
    let trimmed =
      if List.length old >= memo_cap then
        List.filteri (fun i _ -> i < memo_cap - 1) old
      else old
    in
    if not (Atomic.compare_and_set memo old ((l, r) :: trimmed)) then
      memo_add memo l r
  end

let modular_hypotheses_memo : (Lattice.t * report) list Atomic.t =
  Atomic.make []

let distributive_hypotheses_memo : (Lattice.t * report) list Atomic.t =
  Atomic.make []

let check_hypotheses ?(need_distributive = false) l =
  let memo =
    if need_distributive then distributive_hypotheses_memo
    else modular_hypotheses_memo
  in
  match memo_find memo l with
  | Some r -> r
  | None ->
      let r = check_hypotheses_fresh ~need_distributive l in
      memo_add memo l r;
      r

let check_theorem3 l ~cl1 ~cl2 =
  match check_hypotheses l with
  | Error _ as e -> e
  | Ok () ->
      if not (Closure.pointwise_leq cl1 cl2) then
        failf "cl1 not pointwise below cl2"
      else begin
        let module L = (val as_complemented l) in
        let module T = Theory.Make (L) in
        let f1 = Closure.apply cl1 and f2 = Closure.apply cl2 in
        let bad =
          List.find_map
            (fun a ->
              match T.decompose ~cl1:f1 ~cl2:f2 a with
              | None -> Some (a, [ ("no complement for cl2 a", f2 a) ])
              | Some d -> (
                  match T.verify ~cl1:f1 ~cl2:f2 d with
                  | [] -> None
                  | fails -> Some (a, fails)))
            (Lattice.elements l)
        in
        match bad with
        | None -> Ok ()
        | Some (a, fails) ->
            failf "element %d: %s" a
              (String.concat "; "
                 (List.map
                    (fun (claim, w) -> Printf.sprintf "%s (witness %d)" claim w)
                    fails))
      end

let check_theorem2 l cl = check_theorem3 l ~cl1:cl ~cl2:cl

let check_theorem5 l ~cl1 ~cl2 =
  let module L = (val as_complemented l) in
  let module T = Theory.Make (L) in
  let f1 = Closure.apply cl1 and f2 = Closure.apply cl2 in
  let elems = Lattice.elements l in
  let bad =
    List.find_map
      (fun a ->
        if not (T.theorem5_hypotheses ~cl1:f1 ~cl2:f2 a) then None
        else
          List.find_map
            (fun s ->
              List.find_map
                (fun lv ->
                  if T.theorem5_refutes ~cl1:f1 ~cl2:f2 ~a ~s ~l:lv then None
                  else Some (a, s, lv))
                elems)
            elems)
      elems
  in
  match bad with
  | None -> Ok ()
  | Some (a, s, lv) ->
      failf "theorem 5 violated: a=%d decomposes as s=%d, l=%d" a s lv

let check_theorem6 l ~cl1 ~cl2 =
  if not (Closure.pointwise_leq cl1 cl2) then
    failf "cl1 not pointwise below cl2"
  else begin
    let module L = (val as_complemented l) in
    let module T = Theory.Make (L) in
    let f1 = Closure.apply cl1 and f2 = Closure.apply cl2 in
    let elems = Lattice.elements l in
    let bad =
      List.find_map
        (fun s ->
          if not (T.is_safety f1 s || T.is_safety f2 s) then None
          else
            List.find_map
              (fun z ->
                let a = Lattice.meet l s z in
                if T.theorem6_bound ~cl1:f1 ~a ~s then None
                else Some (a, s, z))
              elems)
        elems
    in
    match bad with
    | None -> Ok ()
    | Some (a, s, z) ->
        failf "theorem 6 violated: a=%d = s(%d) ^ z(%d) but cl1 a > s" a s z
  end

let check_theorem7 l ~cl1 ~cl2 =
  match check_hypotheses ~need_distributive:true l with
  | Error _ as e -> e
  | Ok () ->
      if not (Closure.pointwise_leq cl1 cl2) then
        failf "cl1 not pointwise below cl2"
      else begin
        let module L = (val as_complemented l) in
        let module T = Theory.Make (L) in
        let f1 = Closure.apply cl1 and f2 = Closure.apply cl2 in
        let elems = Lattice.elements l in
        let bad =
          List.find_map
            (fun s ->
              if not (T.is_safety f1 s || T.is_safety f2 s) then None
              else
                List.find_map
                  (fun z ->
                    let a = Lattice.meet l s z in
                    List.find_map
                      (fun b ->
                        if T.theorem7_bound ~a ~b ~z then None
                        else Some (a, s, z, b))
                      (Lattice.complements l (f1 a)))
                  elems)
            elems
        in
        match bad with
        | None -> Ok ()
        | Some (a, s, z, b) ->
            failf
              "theorem 7 violated: a=%d = s(%d) ^ z(%d), b=%d in cmp(cl1 a) \
               but z </= a v b"
              a s z b
      end

let check_theorem8 l ~cl1 ~cl2 =
  match check_hypotheses ~need_distributive:true l with
  | Error _ as e -> e
  | Ok () ->
      if not (Closure.pointwise_leq cl1 cl2) then
        failf "cl1 not pointwise below cl2"
      else begin
        let module L = (val as_complemented l) in
        let module T = Theory.Make (L) in
        let f1 = Closure.apply cl1 and f2 = Closure.apply cl2 in
        let elems = Lattice.elements l in
        let bad =
          List.find_map
            (fun q ->
              if not (T.is_safety f1 q || T.is_safety f2 q) then None
              else
                List.find_map
                  (fun r ->
                    let p = Lattice.meet l q r in
                    if not (T.theorem6_bound ~cl1:f1 ~a:p ~s:q) then
                      Some (q, r, "cl1 p </= q")
                    else
                      List.find_map
                        (fun b ->
                          if T.theorem7_bound ~a:p ~b ~z:r then None
                          else Some (q, r, "r </= p v b"))
                        (Lattice.complements l (f1 p)))
                  elems)
            elems
        in
        match bad with
        | None -> Ok ()
        | Some (q, r, what) ->
            failf "theorem 8 violated at q=%d, r=%d: %s" q r what
      end

(* The exhaustive sweep quantifies over every closure operator (and
   every ordered pair of them) — independent pure checks, so they fan
   out across a domain pool: one order-preserving [map_reduce] over the
   closures, one over the pair index space. Each map returns that
   (closure | pair)'s failures in the sequential code's emission order
   and the reduce is list append folded in index order, so the report
   list is byte-identical at every [jobs]. *)
let check_all_closures ?jobs ?(threshold = 8) l =
  let pool = Pool.create ?jobs () in
  let closures = Array.of_list (Closure.all l) in
  let nc = Array.length closures in
  let distributive = Lattice.is_distributive l in
  let note label r = match r with Ok () -> [] | Error _ -> [ (label, r) ] in
  let single i =
    let cl = closures.(i) in
    List.concat
      [ note (Printf.sprintf "thm2[cl%d]" i) (check_theorem2 l cl);
        note (Printf.sprintf "thm6[cl%d]" i) (check_theorem6 l ~cl1:cl ~cl2:cl);
        (if distributive then
           note (Printf.sprintf "thm7[cl%d]" i) (check_theorem7 l ~cl1:cl ~cl2:cl)
         else []);
        (if distributive then
           note (Printf.sprintf "thm8[cl%d]" i) (check_theorem8 l ~cl1:cl ~cl2:cl)
         else []) ]
  in
  let pair k =
    let i = k / nc and j = k mod nc in
    let cl1 = closures.(i) and cl2 = closures.(j) in
    if not (Closure.pointwise_leq cl1 cl2) then []
    else
      note (Printf.sprintf "thm3[cl%d<=cl%d]" i j) (check_theorem3 l ~cl1 ~cl2)
      @ note (Printf.sprintf "thm5[cl%d<=cl%d]" i j) (check_theorem5 l ~cl1 ~cl2)
  in
  let failures =
    Pool.map_reduce ~threshold pool ~n:nc ~map:single ~reduce:( @ ) []
    @ Pool.map_reduce ~threshold pool ~n:(nc * nc) ~map:pair ~reduce:( @ ) []
  in
  match failures with [] -> [ ("all", Ok ()) ] | fs -> fs

(* The two figure checks are called in benchmark and test hot loops, so
   the first-class-module unpacking and [Theory.Make] functor
   application — pure setup over fixed named lattices — are hoisted out
   of the per-call closure; each call pays only for the exhaustive
   search itself. *)
let lemma6_fig1 =
  let l = Named.n5 in
  let cl = Closure.apply Sl_lattice.Closure.fig1 in
  let module L = (val as_complemented l) in
  let module T = Theory.Make (L) in
  fun () ->
  let a = Named.n5_a in
  let elems = Lattice.elements l in
  let decomposition_exists =
    List.exists
      (fun s ->
        List.exists
          (fun lv ->
            T.is_safety cl s && T.is_liveness cl lv
            && Lattice.meet l s lv = a)
          elems)
      elems
  in
  if decomposition_exists then
    failf "Figure 1: element a unexpectedly decomposes"
  else Ok ()

let fig2_theorem7_failure =
  let l = Named.m3 in
  let module L = (val as_complemented l) in
  let module T = Theory.Make (L) in
  fun () ->
  let a = Named.m3_a and s = Named.m3_s and z = Named.m3_z
  and b = Named.m3_b in
  match Sl_lattice.Closure.fig2_candidates with
  | [] -> failf "Figure 2: no closure maps a to s"
  | candidates ->
      let all_fail =
        List.for_all
          (fun cl ->
            let f = Closure.apply cl in
            (* Paper's setup: s is a safety element, a = s ^ z, b is a
               complement of cl a; conclusion z <= a v b must fail. *)
            T.is_safety f s
            && Lattice.meet l s z = a
            && List.mem b (Lattice.complements l (f a))
            && not (T.theorem7_bound ~a ~b ~z))
          candidates
      in
      if all_fail then Ok ()
      else failf "Figure 2: some closure satisfies Theorem 7's conclusion"

let modularity_is_needed () =
  match check_theorem2 Named.n5 Sl_lattice.Closure.fig1 with
  | Ok () -> failf "N5 unexpectedly satisfies Theorem 2"
  | Error _ ->
      (* The failure must be attributed to modularity: N5 is complemented,
         so the hypothesis check reports non-modularity. *)
      if Lattice.is_modular Named.n5 then failf "N5 unexpectedly modular"
      else Ok ()
