type t = { jobs : int }

(* Always-on scheduling counters: a multi-domain pool silently running
   everything sequentially (thresholds, tiny inputs) is invisible from
   timings alone, so the decision itself is recorded — even with the
   obs kernel dark. One atomic bump per region, never per element. *)
let m_tasks =
  Sl_obs.Obs.Metrics.counter ~help:"Parallel regions run on worker domains"
    "pool_tasks_total"

let m_seq_fallback =
  Sl_obs.Obs.Metrics.counter
    ~help:"Regions on a multi-domain pool that fell back to the \
           sequential loop (work-size threshold or degenerate size)"
    "pool_seq_fallback_total"

let parse_jobs s =
  match int_of_string_opt (String.trim s) with
  | Some j when j >= 1 -> Some j
  | _ -> None

let default =
  Atomic.make
    (match Option.bind (Sys.getenv_opt "SLC_JOBS") parse_jobs with
    | Some j -> j
    | None -> 1)

let default_jobs () = Atomic.get default

let set_default_jobs j =
  if j < 1 then invalid_arg "Pool.set_default_jobs: jobs must be >= 1";
  Atomic.set default j

let create ?jobs () =
  let jobs = match jobs with Some j -> j | None -> default_jobs () in
  if jobs < 1 then invalid_arg "Pool.create: jobs must be >= 1";
  { jobs }

let jobs pool = pool.jobs

(* One region at a time, process-wide: worker bodies that open another
   parallel region would deadlock a real work-stealing pool and
   silently oversubscribe this one, so they are rejected instead. The
   flag is only consulted on the parallel path — the [jobs = 1] loops
   below never touch it, which is what lets a sequential combinator run
   inside a parallel worker body. *)
let active = Atomic.make false

let enter_region () =
  if not (Atomic.compare_and_set active false true) then
    invalid_arg "Pool: nested parallel region"

let exit_region () = Atomic.set active false

(* Workers claim [chunk]-sized index ranges through [next] until the
   range is exhausted or some body has raised. The first exception in
   claim order is kept and re-raised on the caller's domain after all
   workers have joined; claiming stops early so a failed region winds
   down without running the remaining chunks. *)
let run_region ~jobs ~chunk ~n f =
  let nchunks = (n + chunk - 1) / chunk in
  let next = Atomic.make 0 in
  let error = Atomic.make None in
  let worker () =
    let continue = ref true in
    while !continue do
      let c = Atomic.fetch_and_add next 1 in
      if c >= nchunks || Atomic.get error <> None then continue := false
      else begin
        let lo = c * chunk in
        let hi = min n (lo + chunk) in
        try
          for i = lo to hi - 1 do
            f i
          done
        with e ->
          ignore (Atomic.compare_and_set error None (Some (c, e)))
      end
    done
  in
  enter_region ();
  let spawned =
    Array.init (min (jobs - 1) (nchunks - 1)) (fun _ -> Domain.spawn worker)
  in
  worker ();
  Array.iter Domain.join spawned;
  exit_region ();
  (* [error] holds the first *claimed* failing chunk, which with racing
     workers need not be the lowest-index one; keeping (chunk, exn)
     would let us prefer the lowest, but any body exception aborts the
     whole region, so first-claimed is as meaningful and cheaper. *)
  match Atomic.get error with Some (_, e) -> raise e | None -> ()

let default_chunk ~jobs n = max 1 ((n + (4 * jobs) - 1) / (4 * jobs))

(* Work-size threshold: a region smaller than [threshold] elements runs
   the exact jobs=1 sequential loop instead of spawning domains. The
   default (2) only short-circuits the degenerate n=1 region; call
   sites that know their per-element cost pass a calibrated cutoff so
   domain-spawn overhead is never paid on work that finishes faster
   than the spawn. *)
let check_threshold name = function
  | Some t when t < 0 ->
      invalid_arg (name ^ ": threshold must be >= 0")
  | Some t -> t
  | None -> 2

let parallel_for ?chunk ?threshold pool ~n f =
  (match chunk with
  | Some c when c < 1 -> invalid_arg "Pool.parallel_for: chunk must be >= 1"
  | _ -> ());
  let threshold = check_threshold "Pool.parallel_for" threshold in
  if n > 0 then begin
    if pool.jobs = 1 || n = 1 || n < threshold then begin
      if pool.jobs > 1 then Sl_obs.Obs.Metrics.incr_always m_seq_fallback;
      for i = 0 to n - 1 do
        f i
      done
    end
    else begin
      Sl_obs.Obs.Metrics.incr_always m_tasks;
      let chunk =
        match chunk with
        | Some c -> c
        | None -> default_chunk ~jobs:pool.jobs n
      in
      run_region ~jobs:pool.jobs ~chunk ~n f
    end
  end

let map_reduce ?chunk ?threshold pool ~n ~map ~reduce init =
  let threshold = check_threshold "Pool.map_reduce" threshold in
  if n <= 0 then init
  else if pool.jobs = 1 || n = 1 || n < threshold then begin
    if pool.jobs > 1 then Sl_obs.Obs.Metrics.incr_always m_seq_fallback;
    let acc = ref init in
    for i = 0 to n - 1 do
      acc := reduce !acc (map i)
    done;
    !acc
  end
  else begin
    let results = Array.make n None in
    parallel_for ?chunk pool ~n (fun i -> results.(i) <- Some (map i));
    let acc = ref init in
    for i = 0 to n - 1 do
      match results.(i) with
      | Some v -> acc := reduce !acc v
      | None -> assert false
    done;
    !acc
  end
