module Lattice = Sl_lattice.Lattice
module Closure = Sl_lattice.Closure

(** Exhaustive verification of the paper's theorems on finite lattices.

    Each [check_*] function quantifies over the whole (finite) carrier —
    and, where the theorem quantifies over closures, over every closure
    operator of the lattice — and returns [Ok ()] or a counterexample
    description. This is the executable counterpart of the paper's proofs:
    on lattices satisfying the hypotheses the checks must succeed, and on
    the counterexample lattices of Figures 1 and 2 the designated checks
    must fail in exactly the way the paper describes. *)

type report = (unit, string) result

val as_complemented : Lattice.t -> (module Theory.COMPLEMENTED with type t = Lattice.elt)
(** View a finite complemented lattice through the generic signature
    (picks the least-indexed complement; elements without complements map
    to [None]). *)

(** {1 Per-theorem exhaustive checks} *)

val check_theorem2 : Lattice.t -> Closure.t -> report
(** Every element decomposes into a cl-safety and cl-liveness element via
    the paper's construction. Hypotheses (modular + complemented) are
    checked first and reported if absent. *)

val check_theorem3 : Lattice.t -> cl1:Closure.t -> cl2:Closure.t -> report
(** Two-closure variant; also checks the pointwise [cl1 <= cl2]
    hypothesis. *)

val check_theorem5 : Lattice.t -> cl1:Closure.t -> cl2:Closure.t -> report
(** For every [a] with [cl2 a = 1 > cl1 a], verifies {e by exhaustion over
    all pairs} that no [cl2]-safety/[cl1]-liveness decomposition of [a]
    exists. *)

val check_theorem6 : Lattice.t -> cl1:Closure.t -> cl2:Closure.t -> report
(** For every decomposition [a = s ^ z] with [s] closed under either
    closure, [cl1 a <= s]. *)

val check_theorem7 : Lattice.t -> cl1:Closure.t -> cl2:Closure.t -> report
(** Distributive lattices only (checked): for every [a = s ^ z] with [s]
    closed and every complement [b] of [cl1 a], [z <= a v b]. *)

val check_theorem8 : Lattice.t -> cl1:Closure.t -> cl2:Closure.t -> report
(** Theorem 8 (the branching-time corollary of Theorems 6 and 7, stated
    here at the lattice level): on a distributive lattice, if [q] is
    [cl1]- or [cl2]-safe and [p = q ^ r], then [cl1 p <= q] and
    [r <= p v b] for every complement [b] of [cl1 p]. Exhaustive over all
    [(q, r)] pairs. *)

val check_all_closures :
  ?jobs:int -> ?threshold:int -> Lattice.t -> (string * report) list
(** Runs Theorems 2, 6 (and 7 when distributive) for {e every} closure
    operator of the lattice, and Theorems 3, 5 for every pointwise-ordered
    pair of closures. Returns one labeled report per (theorem, closure)
    combination that fails, or a single [("all", Ok ())]. Exponential —
    meant for {!Sl_lattice.Named.all_small}. The per-closure and per-pair
    checks (pure) fan out over a {!Pool} of [jobs] domains (default
    {!Pool.default_jobs}) with an order-preserving reduce, so the report
    list is identical at every [jobs]. [threshold] (default [8]) is the
    {!Pool.parallel_for} work-size cutoff: sweeps over fewer closures
    (resp. pairs) than that run sequentially even on a wide pool. *)

(** {1 The paper's counterexamples} *)

val lemma6_fig1 : unit -> report
(** Figure 1: on N5 with [cl a = b], element [a] admits {e no}
    decomposition into a cl-safety and a cl-liveness element — verified by
    exhausting all pairs. [Ok ()] means the counterexample behaves as the
    paper claims. *)

val fig2_theorem7_failure : unit -> report
(** Figure 2: on M3, for every closure mapping [a] to [s], exhibits the
    failure of Theorem 7's conclusion ([z <= a v b] is false), confirming
    distributivity is necessary. *)

val modularity_is_needed : unit -> report
(** N5 fails [check_theorem2] under the Figure 1 closure, while every
    modular complemented lattice in {!Sl_lattice.Named.all_small} passes —
    the executable form of the paper's "why we need modularity"
    discussion. *)
