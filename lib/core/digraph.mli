(** Packed CSR (compressed-sparse-row) directed graphs over integer
    nodes, with the one canonical implementation of the graph analyses
    every automaton layer needs: Tarjan strongly connected components
    (iterative — no call-stack overflow on deep automata), forward and
    backward reachability, condensation, and accepting-cycle / fair-SCC
    search parameterized by membership predicates.

    A graph stores its successors in one flat [int array]; per-node (and,
    for symbol-labeled graphs, per-(node, symbol)) extents live in an
    offset array. Iterating a node's successors is a contiguous array
    scan — no list traversal, no per-edge allocation, and no polymorphic
    [compare] — which is what the automata hot paths (emptiness, closure,
    classification) spend their time doing.

    Successor {e order} is preserved from the builder's input, and
    duplicate edges are kept: traversals visit nodes in exactly the order
    the list-based automata code did, so rewritten layers produce
    byte-identical results. *)

type t

val nodes : t -> int
(** Number of nodes; node ids are [0 .. nodes - 1]. *)

val nsyms : t -> int
(** Number of symbol labels ([1] for unlabeled graphs). *)

val nedges : t -> int
(** Total edge count, duplicates included. *)

(** {1 Builders} *)

val of_delta : int list array array -> t
(** [of_delta delta] reads an automaton transition table
    [delta.(node).(symbol) = successor list]. Rows must be uniform in
    width and targets in range.
    @raise Invalid_argument on ragged rows or out-of-range targets. *)

val of_successors : int list array -> t
(** Unlabeled graph from per-node successor lists ([nsyms = 1]). *)

val of_array_delta : int array array -> t
(** Deterministic transition table: [delta.(node).(symbol)] is the unique
    successor (a DFA's delta). *)

val of_fn : nodes:int -> (int -> int list) -> t
(** Materialize a successor function over [0 .. nodes - 1]
    ([nsyms = 1]). *)

(** {1 Access} *)

val iter_succ : t -> int -> (int -> unit) -> unit
(** All successors of a node, symbols erased, in storage order. *)

val iter_succ_sym : t -> int -> int -> (int -> unit) -> unit
(** [iter_succ_sym g v s f]: successors of [v] on symbol [s]. *)

val sym_degree : t -> int -> int -> int
(** Number of [s]-successors of [v] (duplicates included). *)

val succs_sym : t -> int -> int -> int list
(** The [s]-successor list of [v], in storage order (fresh list). *)

val has_self_loop : t -> int -> bool

(** {1 Reachability} *)

val reachable : ?filter:(int -> bool) -> t -> int list -> bool array
(** Nodes reachable from the sources (sources included), restricted to
    nodes satisfying [filter]. Iterative DFS. *)

val reachable_from : ?filter:(int -> bool) -> t -> bool array -> bool array
(** As {!reachable} with a seed set given as a flag array. To compute
    {e backward} reachability, pass the {!reverse} graph. *)

val reverse : t -> t
(** The transpose graph (symbols erased, [nsyms = 1]). *)

(** {1 Strongly connected components} *)

type scc = {
  comp : int array;
      (** node → component id, [-1] for nodes excluded by the filter *)
  count : int;  (** number of components *)
  comps : int list list;
      (** members per component, each ascending in DFS-discovery order;
          the head of the list is the last-completed component
          (id [count - 1]) *)
  nontrivial : bool array;
      (** per component id: more than one member, or a self-loop (within
          the filter) *)
}

val sccs : ?filter:(int -> bool) -> t -> scc
(** Tarjan on the subgraph induced by [filter] (default: all nodes).
    Iterative — an explicit frame stack replaces recursion, so
    path-shaped automata of any depth are safe. Component ids are
    assigned in completion order, identical to the textbook recursive
    formulation. *)

val condense : t -> scc -> t
(** The component DAG: one node per component, edges between distinct
    components, deduplicated. Node ids are component ids. *)

(** {1 Serialization}

    CSR graphs round-trip through the {!Wire} [sl-artifact/1] format.
    Decoding re-validates every builder invariant (offset monotonicity,
    edge-target range), so a decoded graph is indistinguishable from a
    freshly built one. *)

val encode : Wire.writer -> t -> unit
(** Append the graph's payload (no framing) to a writer — used when a
    graph is one field of a larger artifact. *)

val decode : Wire.reader -> t
(** Inverse of {!encode}.
    @raise Wire.Corrupt on any malformed or invariant-violating bytes. *)

val to_artifact : t -> string
(** The graph framed as a standalone [sl-artifact/1] blob
    (kind {!Wire.kind_digraph}). *)

val of_artifact : string -> t option
(** Decode a standalone artifact; [None] on {e any} corruption —
    callers treat that as a cache miss, never an error. *)

(** {1 Cycle search} *)

val has_good_scc : ?filter:(int -> bool) -> t -> predicates:(int -> bool) list -> bool
(** Is there a nontrivial SCC (within [filter]) containing, for every
    predicate, at least one satisfying member? With one predicate this is
    Büchi accepting-cycle search; with one per acceptance set it is
    generalized-Büchi emptiness; over a product graph it is lasso
    membership. *)

val good_scc_members : ?filter:(int -> bool) -> t -> predicates:(int -> bool) list -> bool array
(** The members of all such components — the seed set of fair-SCC
    computations ([E_fair G] in fair CTL). *)
