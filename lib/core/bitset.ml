(* Packed bitsets over a fixed universe [0, size), plus a hash-consing
   interner. This is the shared state-set kernel for the automaton hot
   paths: subset construction, on-the-fly products, rank-based
   complementation. Words carry [word_bits] bits each so every word stays
   an immediate OCaml int (no boxing). *)

let word_bits = Sys.int_size

type t = { size : int; words : int array }

let nwords size = (size + word_bits - 1) / word_bits

let create size =
  if size < 0 then invalid_arg "Bitset.create: negative universe";
  { size; words = Array.make (nwords size) 0 }

let capacity t = t.size

let copy t = { t with words = Array.copy t.words }

let check t i =
  if i < 0 || i >= t.size then invalid_arg "Bitset: element out of range"

let add t i =
  check t i;
  let w = i / word_bits in
  t.words.(w) <- t.words.(w) lor (1 lsl (i mod word_bits))

let remove t i =
  check t i;
  let w = i / word_bits in
  t.words.(w) <- t.words.(w) land lnot (1 lsl (i mod word_bits))

let mem t i =
  check t i;
  t.words.(i / word_bits) land (1 lsl (i mod word_bits)) <> 0

let unsafe_add t i =
  let w = i / word_bits in
  t.words.(w) <- t.words.(w) lor (1 lsl (i mod word_bits))

let unsafe_mem t i = t.words.(i / word_bits) land (1 lsl (i mod word_bits)) <> 0

let is_empty t = Array.for_all (fun w -> w = 0) t.words

let of_list size l =
  let t = create size in
  List.iter (fun i -> add t i) l;
  t

let singleton size i = of_list size [ i ]

let cardinal t =
  (* popcount per word; OCaml has no intrinsic, the SWAR loop is fine at
     this scale. *)
  let pop w =
    let c = ref 0 and x = ref w in
    while !x <> 0 do
      x := !x land (!x - 1);
      incr c
    done;
    !c
  in
  Array.fold_left (fun acc w -> acc + pop w) 0 t.words

let binop ~name f a b =
  if a.size <> b.size then invalid_arg ("Bitset." ^ name ^ ": size mismatch");
  { size = a.size; words = Array.init (Array.length a.words) (fun i ->
        f a.words.(i) b.words.(i)) }

let union a b = binop ~name:"union" ( lor ) a b
let inter a b = binop ~name:"inter" ( land ) a b
let diff a b = binop ~name:"diff" (fun x y -> x land lnot y) a b

let union_into ~into b =
  if into.size <> b.size then invalid_arg "Bitset.union_into: size mismatch";
  Array.iteri (fun i w -> into.words.(i) <- into.words.(i) lor w) b.words

let equal a b = a.size = b.size && a.words = b.words

let compare a b =
  let c = Stdlib.compare a.size b.size in
  if c <> 0 then c else Stdlib.compare a.words b.words

let subset a b =
  if a.size <> b.size then invalid_arg "Bitset.subset: size mismatch";
  let n = Array.length a.words in
  let rec go i = i >= n || (a.words.(i) land lnot b.words.(i) = 0 && go (i + 1))
  in
  go 0

(* FNV-1a-style mix over every word: unlike [Hashtbl.hash], which only
   inspects a bounded prefix of the structure, this hashes the whole set so
   large universes do not degenerate into collision chains. *)
let hash t =
  let h = ref 0x811c9dc5 in
  Array.iter
    (fun w ->
      (* fold the 63-bit word in two halves to keep the mix cheap *)
      h := (!h lxor (w land 0x3fffffff)) * 0x01000193;
      h := (!h lxor (w lsr 30)) * 0x01000193)
    t.words;
  !h land max_int

let iter f t =
  Array.iteri
    (fun wi w ->
      let x = ref w in
      while !x <> 0 do
        let b = !x land - !x in
        let rec log2 b acc = if b = 1 then acc else log2 (b lsr 1) (acc + 1) in
        f ((wi * word_bits) + log2 b 0);
        x := !x land (!x - 1)
      done)
    t.words

let fold f t acc =
  let acc = ref acc in
  iter (fun i -> acc := f i !acc) t;
  !acc

let to_list t = List.rev (fold (fun i acc -> i :: acc) t [])

let exists p t =
  try
    iter (fun i -> if p i then raise Exit) t;
    false
  with Exit -> true

let pp fmt t =
  Format.fprintf fmt "{%s}" (String.concat "," (List.map string_of_int
                                                  (to_list t)))

module H = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end)

(* Hash-consing interner: maps each distinct bitset to a dense id in
   insertion order. Interned sets must not be mutated afterwards (the
   table aliases them). *)
module Interner = struct
  type bitset = t

  type t = { table : int H.t; mutable sets : bitset array; mutable count : int }

  let create ?(expected = 64) () =
    { table = H.create expected; sets = [||]; count = 0 }

  let count t = t.count

  let grow t set =
    let cap = Array.length t.sets in
    if t.count >= cap then begin
      let sets = Array.make (max 8 (2 * cap)) set in
      Array.blit t.sets 0 sets 0 cap;
      t.sets <- sets
    end;
    t.sets.(t.count) <- set;
    t.count <- t.count + 1

  let intern t set =
    match H.find_opt t.table set with
    | Some i -> i
    | None ->
        let i = t.count in
        H.add t.table set i;
        grow t set;
        i

  let find_opt t set = H.find_opt t.table set

  let get t i =
    if i < 0 || i >= t.count then invalid_arg "Bitset.Interner.get";
    t.sets.(i)

  let iteri f t =
    for i = 0 to t.count - 1 do
      f i t.sets.(i)
    done
end
