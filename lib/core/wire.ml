exception Corrupt of string

let corrupt fmt = Printf.ksprintf (fun s -> raise (Corrupt s)) fmt

(* Header layout: 11 magic bytes, 1 version byte, 1 kind byte. The
   trailer is the 8-byte little-endian FNV-1a hash of everything before
   it (header included, so a kind or version flip also fails the
   checksum, not only its own field check). *)
let magic = "sl-artifact"
let format_version = 1
let header_len = String.length magic + 2
let trailer_len = 8

let kind_packed_dfa = 1
let kind_buchi = 2
let kind_digraph = 3
let kind_pack = 4
let kind_session = 5

(* FNV-1a, 64-bit. Int64 multiplication wraps, which is exactly the
   mod-2^64 arithmetic the hash is defined over. *)
let fnv64_sub s pos len =
  let h = ref 0xcbf29ce484222325L in
  for i = pos to pos + len - 1 do
    h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code s.[i])))
           0x100000001b3L
  done;
  !h

let fnv64 s = fnv64_sub s 0 (String.length s)
let fnv64_hex s = Printf.sprintf "%016Lx" (fnv64 s)

type writer = Buffer.t

let writer () = Buffer.create 256

let put_int w n = Buffer.add_int64_le w (Int64.of_int n)
let put_bool w b = Buffer.add_char w (if b then '\001' else '\000')

let put_string w s =
  put_int w (String.length s);
  Buffer.add_string w s

let put_int_array w a =
  put_int w (Array.length a);
  Array.iter (put_int w) a

let put_bool_array w a =
  put_int w (Array.length a);
  Array.iter (put_bool w) a

let to_artifact ~kind w =
  if kind < 0 || kind > 0xff then invalid_arg "Wire.to_artifact: bad kind";
  let b = Buffer.create (header_len + Buffer.length w + trailer_len) in
  Buffer.add_string b magic;
  Buffer.add_char b (Char.chr format_version);
  Buffer.add_char b (Char.chr kind);
  Buffer.add_buffer b w;
  let body = Buffer.contents b in
  Buffer.add_int64_le b (fnv64 body);
  Buffer.contents b

type reader = { s : string; mutable pos : int; stop : int }

let need r n =
  if r.stop - r.pos < n then
    corrupt "truncated payload at byte %d (need %d, have %d)" r.pos n
      (r.stop - r.pos)

let get_int r =
  need r 8;
  let v = Int64.to_int (String.get_int64_le r.s r.pos) in
  r.pos <- r.pos + 8;
  v

let get_bool r =
  need r 1;
  let c = r.s.[r.pos] in
  r.pos <- r.pos + 1;
  match c with
  | '\000' -> false
  | '\001' -> true
  | c -> corrupt "bad bool byte 0x%02x" (Char.code c)

let checked_len r what n =
  if n < 0 || n > r.stop - r.pos then corrupt "bad %s length %d" what n;
  n

let get_string r =
  let n = checked_len r "string" (get_int r) in
  let v = String.sub r.s r.pos n in
  r.pos <- r.pos + n;
  v

let get_int_array r =
  (* Each element is 8 bytes, so the length bound divides by 8 first —
     a huge forged length must fail here, not in [Array.make]. *)
  let n = get_int r in
  if n < 0 || n > (r.stop - r.pos) / 8 then corrupt "bad int array length %d" n;
  Array.init n (fun _ -> get_int r)

let get_bool_array r =
  let n = checked_len r "bool array" (get_int r) in
  Array.init n (fun _ -> get_bool r)

let remaining r = r.stop - r.pos

let expect_end r =
  if r.pos <> r.stop then
    corrupt "%d trailing bytes after payload" (r.stop - r.pos)

let of_artifact s =
  let len = String.length s in
  if len < header_len + trailer_len then corrupt "artifact too short (%d bytes)" len;
  if not (String.equal (String.sub s 0 (String.length magic)) magic) then
    corrupt "bad magic";
  let version = Char.code s.[String.length magic] in
  if version <> format_version then
    corrupt "format version %d (this build reads %d)" version format_version;
  let kind = Char.code s.[String.length magic + 1] in
  let body_len = len - trailer_len in
  let stored = String.get_int64_le s body_len in
  if not (Int64.equal stored (fnv64_sub s 0 body_len)) then
    corrupt "checksum mismatch";
  (kind, { s; pos = header_len; stop = body_len })

let of_artifact_kind ~kind s =
  let k, r = of_artifact s in
  if k <> kind then corrupt "payload kind %d where %d expected" k kind;
  r
