(** Packed integer bitsets over a fixed universe [0, size), and a
    hash-consing interner assigning dense ids to distinct sets.

    This is the shared state-set kernel for the automaton hot paths
    (subset construction, on-the-fly products, rank-based
    complementation): O(1) membership and insertion, word-parallel union
    and intersection, and a whole-set hash suitable for hashtable
    interning — unlike [Hashtbl.hash], which inspects only a bounded
    prefix of the structure. *)

type t

val create : int -> t
(** [create size] is the empty set over universe [0, size).
    @raise Invalid_argument if [size < 0]. *)

val capacity : t -> int
(** The universe size the set was created with. *)

val copy : t -> t

val add : t -> int -> unit
(** In-place insertion. @raise Invalid_argument out of range. *)

val remove : t -> int -> unit
val mem : t -> int -> bool

val unsafe_add : t -> int -> unit
(** [add] without the range check; the caller guarantees range. *)

val unsafe_mem : t -> int -> bool

val is_empty : t -> bool
val of_list : int -> int list -> t
val singleton : int -> int -> t
val cardinal : t -> int

val union : t -> t -> t
(** Fresh set; operands must share a universe. *)

val inter : t -> t -> t
val diff : t -> t -> t

val union_into : into:t -> t -> unit
(** In-place union accumulation. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val subset : t -> t -> bool

val hash : t -> int
(** Mixes every word of the set (FNV-style); stable across runs. *)

val iter : (int -> unit) -> t -> unit
(** Elements in increasing order. *)

val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a
val to_list : t -> int list
(** Sorted ascending. *)

val exists : (int -> bool) -> t -> bool
val pp : Format.formatter -> t -> unit

(** Hash-consed ids for bitsets, in insertion order. Interned sets are
    aliased by the table and must not be mutated afterwards. *)
module Interner : sig
  type bitset = t
  type t

  val create : ?expected:int -> unit -> t
  val count : t -> int

  val intern : t -> bitset -> int
  (** The id of the set, allocating the next dense id if unseen. *)

  val find_opt : t -> bitset -> int option
  val get : t -> int -> bitset
  val iteri : (int -> bitset -> unit) -> t -> unit
end
