module type S = sig
  type t

  val alphabet : t -> int
  val nstates : t -> int
  val graph : t -> Digraph.t
end

let fail name what = invalid_arg (name ^ ": " ^ what)

let check_alphabet ~name alphabet =
  if alphabet < 1 then fail name "empty alphabet"

let check_nstates ?(min = 1) ~name nstates =
  if nstates < min then
    fail name
      (if min <= 0 then "negative state count" else "need at least one state")

let check_state ~name ~nstates q =
  if q < 0 || q >= nstates then fail name "bad start"

let check_delta ~name ~alphabet ~nstates delta =
  if Array.length delta <> nstates then fail name "shape mismatch";
  Array.iter
    (fun row ->
      if Array.length row <> alphabet then fail name "row shape";
      Array.iter
        (List.iter (fun q ->
             if q < 0 || q >= nstates then fail name "successor out of range"))
        row)
    delta

let check_flags ~name ~nstates flags =
  if Array.length flags <> nstates then fail name "shape mismatch"

let delta_of_edges ~name ~alphabet ~nstates edges =
  let delta = Array.make_matrix nstates alphabet [] in
  List.iter
    (fun (q, s, q') ->
      if q < 0 || q >= nstates || s < 0 || s >= alphabet then
        fail name "edge out of range";
      delta.(q).(s) <- q' :: delta.(q).(s))
    edges;
  Array.iter
    (fun row -> Array.iteri (fun s l -> row.(s) <- List.sort_uniq compare l) row)
    delta;
  delta

let flags_of_list ~nstates states =
  let flags = Array.make nstates false in
  List.iter (fun q -> flags.(q) <- true) states;
  flags
