(** Endian-stable binary serialization for the [sl-artifact/1] format.

    Compiled monitors, Büchi automata and CSR digraphs are flat int
    arrays, so an artifact is a fixed header (magic, format version,
    payload kind), a payload of length-prefixed primitives, and an
    FNV-1a checksum trailer. Every multi-byte value is little-endian
    regardless of host, so artifacts written on one machine load on any
    other.

    The reading side is written for hostile bytes in the weak sense a
    warm-start cache needs: any truncation, bit flip, version skew or
    kind mismatch raises {!Corrupt}, which cache layers translate into
    a miss — never a crash, never a torn value. (Integrity is the
    checksum's job; artifacts are not authenticated.) *)

exception Corrupt of string
(** Raised by every decoding entry point on malformed input. *)

val format_version : int
(** The [sl-artifact] format version this build reads and writes
    (currently [1]). Decoding any other version raises {!Corrupt} —
    the cache treats that as a miss and recompiles. *)

(** {1 Payload kinds} *)

val kind_packed_dfa : int
val kind_buchi : int
val kind_digraph : int
val kind_pack : int
val kind_session : int

(** {1 Writing} *)

type writer

val writer : unit -> writer

val put_int : writer -> int -> unit
(** Full-width OCaml int, stored as 8 little-endian bytes. *)

val put_bool : writer -> bool -> unit
val put_string : writer -> string -> unit
val put_int_array : writer -> int array -> unit
val put_bool_array : writer -> bool array -> unit

val to_artifact : kind:int -> writer -> string
(** Frame the written payload as one [sl-artifact/1] blob:
    magic + version + kind, payload, checksum trailer. *)

(** {1 Reading} *)

type reader

val get_int : reader -> int
val get_bool : reader -> bool
val get_string : reader -> string
val get_int_array : reader -> int array
val get_bool_array : reader -> bool array

val remaining : reader -> int
(** Payload bytes not yet consumed. Decoders bound element counts by
    this {e before} allocating ([n] elements need at least [n] payload
    bytes), so a forged count fails as {!Corrupt} rather than as an
    attempted huge allocation. *)

val expect_end : reader -> unit
(** Trailing garbage after a payload is corruption too.
    @raise Corrupt if the reader has bytes left. *)

val of_artifact : string -> int * reader
(** Validate magic, version and checksum; returns the payload kind and
    a reader positioned at the payload start.
    @raise Corrupt on any mismatch. *)

val of_artifact_kind : kind:int -> string -> reader
(** {!of_artifact} that additionally pins the payload kind. *)

(** {1 Hashing} *)

val fnv64 : string -> int64
(** FNV-1a 64-bit hash of a string — the checksum primitive, also used
    by the compile cache to derive stable file names from source keys. *)

val fnv64_hex : string -> string
(** {!fnv64} rendered as 16 lowercase hex digits. *)
