(** A zero-dependency fixed-size domain pool (OCaml 5 [Domain] +
    [Atomic]; no domainslib).

    A pool is a parallelism budget: [jobs] domains cooperate on each
    parallel region, claiming contiguous index chunks through a shared
    atomic cursor. The degenerate pool ([jobs = 1]) compiles every
    combinator to the plain sequential loop — no atomics, no domains,
    no allocation beyond the caller's own — so sequential runs are
    bit-for-bit the code that ran before the pool existed. All
    parallel callers in the tree are written so their observable
    results are byte-identical at every [jobs] (see DESIGN.md §6.9 for
    the per-call-site determinism argument).

    Regions do not nest: a worker body that starts another parallel
    region raises (a [jobs = 1] region inside a worker is fine — it is
    just a loop). Exceptions raised by a worker body cancel the
    region's remaining chunks and are re-raised to the caller after
    every domain has joined (the first exception in chunk-claim order
    wins). *)

type t

val create : ?jobs:int -> unit -> t
(** A pool of [jobs] domains (the calling domain counts as one; [jobs
    - 1] are spawned per parallel region). Default: {!default_jobs}.
    @raise Invalid_argument if [jobs < 1]. *)

val jobs : t -> int

val default_jobs : unit -> int
(** The process-wide default parallelism, [1] unless overridden — at
    startup by the [SLC_JOBS] environment variable, later by
    {!set_default_jobs} (the CLI's [-j]). Every parallelized API in
    the tree defaults to a pool of this size. *)

val set_default_jobs : int -> unit
(** @raise Invalid_argument if [jobs < 1]. *)

val parallel_for :
  ?chunk:int -> ?threshold:int -> t -> n:int -> (int -> unit) -> unit
(** [parallel_for pool ~n f] runs [f i] for every [0 <= i < n], each
    index exactly once. Workers claim chunks of [chunk] consecutive
    indices (default: [n] split in about four chunks per domain) via
    an atomic cursor, so the assignment of indices to domains is
    load-balanced and non-deterministic — the body must not depend on
    it. With [jobs pool = 1] this is exactly
    [for i = 0 to n - 1 do f i done].

    [threshold] is the work-size cutoff: when [n < threshold] the
    region runs that same exact sequential loop even on a multi-domain
    pool, because spawning [jobs - 1] domains costs on the order of
    100µs and tiny regions lose more to the spawn than they gain from
    the split. Default [2] (only skips the degenerate single-element
    region); call sites pass cutoffs calibrated to their per-element
    cost. Since the sequential loop and the parallel region are
    observably equivalent by the determinism contract, [threshold]
    never changes results — only where the time goes.
    @raise Invalid_argument on [chunk < 1], [threshold < 0] or nested
    use. *)

val map_reduce :
  ?chunk:int -> ?threshold:int -> t -> n:int -> map:(int -> 'a) ->
  reduce:('a -> 'a -> 'a) -> 'a -> 'a
(** [map_reduce pool ~n ~map ~reduce init] is
    [init ⊕ map 0 ⊕ map 1 ⊕ ... ⊕ map (n-1)] with [⊕ = reduce] —
    order-preserving: the maps run in parallel, the fold is sequential
    in index order, so [reduce] need not be commutative and the result
    is identical at every [jobs]. With [jobs pool = 1] this is the
    plain left fold, mapping and reducing each index before the next
    (no intermediate results array). [threshold] as in
    {!parallel_for}: below the cutoff the plain left fold runs
    regardless of pool width. *)
