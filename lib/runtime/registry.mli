(** Compile-once monitor registry.

    Each property is parsed/translated/decomposed once and its safety
    part compiled to a {!Packed_dfa.t}; the canonical packed key
    hash-conses language-equal monitors, so properties whose safety
    parts coincide share one compiled table and the streaming engine
    steps it once per event regardless of how many properties ride on
    it. *)

type prop = {
  id : int;  (** dense property index, in insertion order *)
  name : string;  (** source text (or caller-supplied label) *)
  formula : Sl_ltl.Formula.t option;  (** [None] for automaton-sourced *)
  monitor : int;  (** index into {!monitors} *)
}

type t

val create :
  ?alphabet:int -> ?valuation:(int -> string -> bool) -> ?cache:Cache.t ->
  unit -> t
(** Defaults: alphabet 2 with symbol 0 meaning the proposition [a]
    holds — the convention of the CLI and the Section 2.3 examples.
    [cache] is the warm-start compile cache probed before every
    formula translation (automaton-sourced properties always compile);
    default {!Cache.default}, i.e. no caching unless [SLC_CACHE] or
    the CLI's [--cache] set a directory. *)

val add_formula : t -> ?name:string -> Sl_ltl.Formula.t -> int
(** Translate, decompose, compile, hash-cons; returns the property id. *)

val add_buchi : t -> name:string -> Sl_buchi.Buchi.t -> int
(** Register a property given directly as a Büchi automaton. *)

val compile_all :
  ?jobs:int -> ?threshold:int -> t ->
  (string option * Sl_ltl.Formula.t) list -> int list
(** Compile a batch of properties, returning their ids in input order.
    The per-property translate/minimize/pack phase (pure, and the bulk
    of the cost) runs across a domain pool of [jobs] domains (default
    {!Sl_core.Pool.default_jobs}); packed tables are then hash-consed
    and ids assigned in one sequential merge pass in input order, so
    the registry ends up byte-identical at every [jobs]. [None] names
    default to the formula's printed form, as in {!add_formula}.
    [threshold] (default [4]) is the work-size cutoff: batches smaller
    than that compile sequentially even on a wide pool. When the
    registry has a {!Cache.t}, each property probes it before
    translating and publishes on a miss — on the workers, so cache
    I/O parallelizes with the compiles. *)

val load_lines : t -> ?path:string -> ?jobs:int -> string list -> string list
(** Load a property file given as lines: one LTL formula per line, blank
    lines and ['#'] comments skipped. Returns human-readable
    ["path:line: parse error: ..."] messages for malformed lines, which
    are skipped rather than aborting the load. Well-formed lines are
    compiled through {!compile_all} with [jobs] domains. *)

val load_channel : t -> ?path:string -> ?jobs:int -> in_channel -> string list
(** {!load_lines} over a channel read to end-of-file. *)

val alphabet : t -> int
val nprops : t -> int
val nmonitors : t -> int
(** Distinct compiled monitors (≤ {!nprops}). *)

val hits : t -> int
(** Hash-cons hits: properties that reused an existing monitor. *)

type stats = {
  props : int;  (** total properties compiled into the registry *)
  distinct_monitors : int;  (** deduplicated compiled-monitor count *)
  hashcons_hits : int;
      (** [props - distinct_monitors]: compilations that reused an
          existing packed table — the hash-cons effectiveness, reported
          directly instead of being observable only as the difference *)
}

val stats : t -> stats
(** Total vs deduplicated compiled-monitor counts in one snapshot. *)

val fingerprint : t -> string
(** The registry's structural identity as 16 hex digits: alphabet,
    properties (name and monitor assignment, in order), and each
    distinct monitor's canonical BFS key. Two registries compiled from
    the same property list over the same alphabet — cold, warm-started
    from a cache, at any [jobs] — fingerprint identically; any change
    to a property, its order, or a compiled table changes it. Session
    snapshots embed this and refuse to restore against a registry whose
    fingerprint differs. *)

val prop : t -> int -> prop
val props : t -> prop list
val monitor_of_prop : t -> int -> int
val monitors : t -> Packed_dfa.t array
(** Snapshot of the compiled monitor table, for {!Engine.create}. *)
