(** Snapshotable monitoring sessions.

    A session bundles everything mutable about one monitoring run — the
    engine's per-trace packed state and counters, and the {!Ingest}
    trace-id interner — behind one unit that can be externalized as a
    [sl-artifact/1] blob (kind [session]) and restored in a fresh
    process. The compiled registry is referenced, not serialized: the
    snapshot embeds only the registry {!Registry.fingerprint}, and
    restore refuses a registry whose fingerprint differs, so a resumed
    run can never silently step different monitors than the run that
    was saved.

    The contract is byte-identical continuation: feeding a stream's
    first [k] events, snapshotting, restoring in another process (any
    [jobs], cold or cache-warmed registry), and feeding the rest yields
    exactly the verdicts, bad-prefix positions and counters of the
    uninterrupted run, for every [k]. *)

type t

type restore_error =
  | Fingerprint_mismatch of { snapshot : string; registry : string }
      (** The snapshot was taken against a structurally different
          registry — different properties, order, alphabet or compiled
          tables. Restoring would silently monitor the wrong thing, so
          it is refused. *)
  | Corrupt of string
      (** The blob failed decoding or validation: bad framing, forged
          counts, states outside a monitor's range, inconsistent
          counters, unreadable file. *)

val create : ?jobs:int -> ?threshold:int -> registry:Registry.t -> unit -> t
(** A fresh session over [registry]'s compiled monitors: empty interner,
    no traces, zero counters. [jobs]/[threshold] as in
    {!Engine.create}. *)

val registry : t -> Registry.t
val engine : t -> Engine.t
val ingest : t -> Ingest.t

val to_artifact : t -> string
(** Serialize the run state (never the registry) as one framed
    [sl-artifact/1] blob: fingerprint, interner table in first-seen
    order, engine counters, per-trace packed states. *)

val of_artifact :
  ?jobs:int -> ?threshold:int -> registry:Registry.t -> string ->
  (t, restore_error) result
(** Decode and validate a blob against [registry]. The restored engine
    is built fresh with [jobs]/[threshold] — parallelism is a property
    of the process, not of the snapshot, and verdicts are [jobs]-
    independent. Never raises: framing and validation failures (from
    hostile bytes through inconsistent trace state) come back as
    [Error (Corrupt _)]. *)

val save : t -> path:string -> unit
(** {!to_artifact} written atomically (temp file + rename in the
    destination directory), so a crash mid-write never leaves a torn
    snapshot at [path]. @raise Sys_error when the path is unwritable. *)

val load :
  ?jobs:int -> ?threshold:int -> registry:Registry.t -> path:string ->
  unit -> (t, restore_error) result
(** Read [path] and {!of_artifact} it; unreadable files come back as
    [Error (Corrupt _)] like any other bad blob. *)

val restore_error_to_string : restore_error -> string
(** Human-readable one-liner for CLI error reporting. *)
