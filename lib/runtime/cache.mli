(** Warm-start compile cache for packed monitors.

    Translating, decomposing and minimizing a property costs
    milliseconds; reading its compiled {!Packed_dfa.t} back from an
    [sl-artifact/1] blob costs microseconds. A cache is a directory of
    such blobs, keyed by the property's {e source identity} — alphabet,
    normalized formula text, and the valuation's bit table over the
    formula's propositions (see {!probe_key}) — so
    {!Registry.compile_all} can probe before translating anything.

    Invalidation rules (DESIGN.md §6.10): an entry is used only if its
    magic, format version, payload kind, checksum, embedded probe key
    and embedded canonical key all verify, and the decoded table passes
    the same shape/range validation compilation enforces. {e Any}
    failure is a miss that a later {!store} overwrites — a corrupt,
    truncated or version-skewed cache can cost a recompile, never an
    error, a crash, or a wrong monitor.

    Writes are atomic (temp file + rename in the same directory), so
    concurrent [-j] workers and concurrent processes sharing a cache
    directory never observe torn artifacts. *)

type t

val create : dir:string -> t
(** A cache rooted at [dir], created (with parents) if missing.
    @raise Sys_error if the directory cannot be created. *)

val dir : t -> string

(** {1 Process default}

    Mirrors [SLC_JOBS]: the [SLC_CACHE] environment variable seeds the
    process-wide default directory at startup, and the CLI's [--cache]
    overrides it via {!set_default_dir}. With no default set (the
    out-of-box state), {!default} is [None] and nothing is cached. *)

val default : unit -> t option
val set_default_dir : string option -> unit

(** {1 Probing} *)

val probe_key : alphabet:int -> valuation:(int -> string -> bool) -> Sl_ltl.Formula.t -> string
(** Everything the compile pipeline's output depends on, as one string:
    alphabet, the formula's printed form, and the valuation's value on
    each (proposition of the formula, alphabet symbol) pair — the only
    part of the (uncomparable) valuation function that can influence
    translation. *)

val find : t -> key:string -> Packed_dfa.t option
(** The cached monitor for a probe key, fully re-validated; [None] on
    absence or any corruption (counted as a miss either way). *)

val store : t -> key:string -> Packed_dfa.t -> unit
(** Atomically publish a compiled monitor under a probe key,
    overwriting (and thereby healing) any existing entry. Best-effort:
    I/O failure leaves the cache cold rather than raising. *)

(** {1 Counters}

    Process-wide across all cache handles and domain-safe (probes run
    on pool workers). The same three totals are exported as the
    [cache_hits_total] / [cache_misses_total] / [cache_stores_total]
    metrics while [Sl_obs] is enabled; these API counters are always
    on, for tests and benches that don't enable observability. *)

val hit_count : unit -> int
val miss_count : unit -> int
val store_count : unit -> int
val reset_counters : unit -> unit
