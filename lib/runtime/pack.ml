module Wire = Sl_core.Wire

type t = {
  alphabet : int;
  props : (string * int) array;
  monitors : Packed_dfa.t array;
}

let of_registry reg =
  {
    alphabet = Registry.alphabet reg;
    props =
      Array.of_list
        (List.map
           (fun p -> (p.Registry.name, p.Registry.monitor))
           (Registry.props reg));
    monitors = Registry.monitors reg;
  }

let encode w pk =
  Wire.put_int w pk.alphabet;
  Wire.put_int w (Array.length pk.props);
  Array.iter
    (fun (name, monitor) ->
      Wire.put_string w name;
      Wire.put_int w monitor)
    pk.props;
  Wire.put_int w (Array.length pk.monitors);
  Array.iter (fun pd -> Packed_dfa.encode w pd) pk.monitors

let decode r =
  let fail fmt = Printf.ksprintf (fun s -> raise (Wire.Corrupt s)) fmt in
  let alphabet = Wire.get_int r in
  if alphabet < 1 then fail "pack: bad alphabet %d" alphabet;
  let nprops = Wire.get_int r in
  (* A property needs at least 16 payload bytes (name length prefix +
     monitor index), so a forged count that outgrows the remaining
     payload fails here — before [Array.init] tries to allocate it. *)
  if nprops < 0 || nprops > Wire.remaining r / 16 then
    fail "pack: bad property count %d" nprops;
  let props =
    Array.init nprops (fun _ ->
        let name = Wire.get_string r in
        let monitor = Wire.get_int r in
        (name, monitor))
  in
  let nmonitors = Wire.get_int r in
  if nmonitors < 0 || nmonitors > Wire.remaining r / 8 then
    fail "pack: bad monitor count %d" nmonitors;
  let monitors = Array.init nmonitors (fun _ -> Packed_dfa.decode r) in
  Array.iter
    (fun pd ->
      if pd.Packed_dfa.alphabet <> alphabet then
        fail "pack: monitor alphabet %d in alphabet-%d pack"
          pd.Packed_dfa.alphabet alphabet)
    monitors;
  Array.iter
    (fun (name, monitor) ->
      if monitor < 0 || monitor >= nmonitors then
        fail "pack: property %S references monitor %d of %d" name monitor
          nmonitors)
    props;
  { alphabet; props; monitors }

let to_artifact pk =
  let w = Wire.writer () in
  encode w pk;
  Wire.to_artifact ~kind:Wire.kind_pack w

let of_artifact s =
  match
    let r = Wire.of_artifact_kind ~kind:Wire.kind_pack s in
    let pk = decode r in
    Wire.expect_end r;
    pk
  with
  | pk -> Ok pk
  | exception Wire.Corrupt msg -> Error msg

(* Same atomic-publish discipline as the cache: whole artifact to a
   temp file beside the target, then rename — a reader (the future
   daemon's hot-reload path) never sees a torn pack. *)
let write pk ~path =
  let blob = to_artifact pk in
  let dir = Filename.dirname path in
  let tmp = Filename.temp_file ~temp_dir:dir "sl-pack" ".tmp" in
  let oc = open_out_bin tmp in
  (try
     output_string oc blob;
     close_out oc
   with e ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Sys.rename tmp path

let read ~path =
  match open_in_bin path with
  | exception Sys_error msg -> Error msg
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          match really_input_string ic (in_channel_length ic) with
          | s -> of_artifact s
          | exception (Sys_error _ | End_of_file) ->
              Error (path ^ ": unreadable"))
