module Obs = Sl_obs.Obs

(* Engine telemetry. The per-event hot path ([step_trace]) stays
   untouched — metrics are recorded once per chunk/call from the [feed]
   and [step] epilogues as deltas of the engine's own counters, so the
   disabled-mode cost is one flag check per chunk, not per event.
   Counters aggregate across all engines of the process. *)
let m_events =
  Obs.Metrics.counter ~help:"Events stepped by the engine" "engine_events_total"

let m_chunks =
  Obs.Metrics.counter ~help:"Feed chunks processed" "engine_chunks_total"

let m_retired_tripped =
  Obs.Metrics.counter ~help:"Monitors retired on a violation"
    "engine_retired_tripped_total"

let m_retired_admissible =
  Obs.Metrics.counter ~help:"Monitors retired admissible-forever"
    "engine_retired_admissible_total"

let g_live =
  Obs.Metrics.gauge ~help:"Live (trace, monitor) pairs"
    "engine_live_monitors"

let h_chunk_latency =
  Obs.Metrics.histogram ~help:"Feed latency per chunk"
    "engine_chunk_latency_ns"

let h_chunk_events =
  Obs.Metrics.histogram ~help:"Events per feed chunk" "engine_chunk_events"

let m_minor_words =
  Obs.Metrics.counter ~help:"Minor-heap words allocated during feeds"
    "engine_minor_words_total"

let g_minor_words_per_event =
  Obs.Metrics.gauge ~help:"Minor-heap words per event, last chunk"
    "engine_minor_words_per_event"

(* Labeled telemetry (PR 9). Per-monitor series are labeled by the
   FNV-64 hash of the monitor's canonical key — stable across reloads
   and processes, unlike the distinct-monitor index — and per-shard
   series by [trace id mod jobs]. The hot loop only bumps plain int
   arrays at retirements; label lookup and the counter writes happen in
   the chunk epilogue, and only while collection is enabled. *)
let v_monitor_trips =
  Obs.Metrics.counter_vec
    ~help:"Violation retirements per distinct monitor (canonical-key hash)"
    "engine_monitor_trips_total" ~labels:[ "monitor" ]

let v_monitor_retires =
  Obs.Metrics.counter_vec
    ~help:"Admissible-forever retirements per distinct monitor \
           (canonical-key hash)"
    "engine_monitor_retires_total" ~labels:[ "monitor" ]

let v_shard_events =
  Obs.Metrics.counter_vec
    ~help:"Events stepped per trace shard (trace id mod jobs)"
    "engine_shard_events_total" ~labels:[ "shard" ]

let h_stage_feed =
  Obs.Metrics.histogram
    ~help:"Pipeline stage: engine feed latency per chunk"
    "stage_engine_feed_ns"

type verdict =
  | Vacuous
  | Admissible
  | Violation of { position : int }

type trace = {
  states : int array;
  live : int array;
  mutable nlive : int;
  mutable events : int;
  tripped_at : int array;
}

(* The immutable compiled plan: everything a run needs that is a pure
   function of the registry's compiled monitors. Separated from the
   mutable run state so the session layer can snapshot/restore runs
   against a plan recompiled in another process — the plan is identified
   by the registry fingerprint, never serialized itself. *)
type plan = {
  monitors : Packed_dfa.t array;
  alphabet : int;
  nvacuous : int;
  npretripped : int;
  (* Fused transition megatable (see [Packed_dfa.fuse]): all monitors'
     rows in one contiguous array, entries packing successor +
     can_trip/accepting bits, with per-monitor base offsets. The step
     loops walk only these two arrays; [monitors] stays the canonical
     per-monitor view (keys, state counts) for the session codec,
     reload carry-over and telemetry. *)
  mega : int array;
  mbase : int array;
}

type t = {
  plan : plan;
  jobs : int;
  threshold : int;
  mutable traces : trace option array;
  mutable ntraces : int;
  mutable events : int;
  mutable tripped : int;
  mutable retired_ok : int;
  mutable hook :
    (trace:int -> monitor:int -> position:int -> tripped:bool -> unit) option;
      (** incremental retirement callback; [None] (the default) keeps
          the hot path at one comparison per retirement *)
  (* Per-monitor retirement telemetry: cumulative since creation/reset,
     process-local (snapshots neither save nor restore it, like the
     engine_*_total metrics). Bumped unconditionally — one int store
     per retirement, never per event — so the chunk epilogue can flush
     deltas into the labeled counters without touching the hot loop. *)
  mtrips : int array;  (* violation retirements per distinct monitor *)
  mretires : int array;  (* admissible-forever retirements *)
  mtrips0 : int array;  (* epilogue scratch: values at chunk start *)
  mretires0 : int array;
  shard_scratch : int array array;  (* jobs x M, parallel-feed private *)
  shard_counts : int array;  (* epilogue scratch: events per shard *)
  mtrip_children : Obs.Metrics.counter array;  (* label handles, per M *)
  mretire_children : Obs.Metrics.counter array;
  shard_children : Obs.Metrics.counter array;  (* per shard *)
}

let plan_of_monitors monitors =
  let alphabet =
    match Array.length monitors with
    | 0 -> 1
    | _ ->
        let a = monitors.(0).Packed_dfa.alphabet in
        Array.iter
          (fun pd ->
            if pd.Packed_dfa.alphabet <> a then
              invalid_arg "Engine.plan_of_monitors: monitors over different \
                           alphabets")
          monitors;
        a
  in
  let nvacuous = ref 0 and npretripped = ref 0 in
  Array.iter
    (fun pd ->
      if pd.Packed_dfa.vacuous then incr nvacuous;
      if pd.Packed_dfa.pre_tripped then incr npretripped)
    monitors;
  let mega, mbase = Packed_dfa.fuse monitors in
  { monitors; alphabet; nvacuous = !nvacuous; npretripped = !npretripped;
    mega; mbase }

let of_plan ?jobs ?(threshold = 65536) plan =
  let jobs =
    match jobs with Some j -> j | None -> Sl_core.Pool.default_jobs ()
  in
  if jobs < 1 then invalid_arg "Engine.of_plan: jobs must be >= 1";
  if threshold < 0 then invalid_arg "Engine.of_plan: threshold must be >= 0";
  let m = Array.length plan.monitors in
  let mslots = max m 1 in
  (* Label handles are interned eagerly: engine creation is a cold
     main-domain path, and children are keyed by canonical-key hash, so
     engines over the same monitors share series. *)
  let mtrip_children =
    Array.map
      (fun pd ->
        Obs.Metrics.counter_child v_monitor_trips
          [ Sl_core.Wire.fnv64_hex pd.Packed_dfa.key ])
      plan.monitors
  and mretire_children =
    Array.map
      (fun pd ->
        Obs.Metrics.counter_child v_monitor_retires
          [ Sl_core.Wire.fnv64_hex pd.Packed_dfa.key ])
      plan.monitors
  and shard_children =
    Array.init jobs (fun s ->
        Obs.Metrics.counter_child v_shard_events [ string_of_int s ])
  in
  { plan; jobs; threshold; traces = Array.make 4 None; ntraces = 0;
    events = 0; tripped = 0; retired_ok = 0; hook = None;
    mtrips = Array.make mslots 0; mretires = Array.make mslots 0;
    mtrips0 = Array.make mslots 0; mretires0 = Array.make mslots 0;
    shard_scratch = Array.init jobs (fun _ -> Array.make (2 * mslots) 0);
    shard_counts = Array.make jobs 0; mtrip_children; mretire_children;
    shard_children }

let create ?jobs ?threshold ~monitors () =
  of_plan ?jobs ?threshold (plan_of_monitors monitors)

let plan eng = eng.plan
let plan_monitors plan = plan.monitors
let plan_alphabet plan = plan.alphabet

(* (Re)initialize a trace record in place: every non-vacuous monitor
   starts live in the packed start state, except pre-tripped (empty
   property) monitors, which are born violated at position 0. *)
let init_trace eng (tr : trace) =
  tr.nlive <- 0;
  tr.events <- 0;
  Array.iteri
    (fun m pd ->
      tr.states.(m) <- Packed_dfa.start;
      if pd.Packed_dfa.pre_tripped then begin
        tr.tripped_at.(m) <- 0;
        eng.tripped <- eng.tripped + 1
      end
      else begin
        tr.tripped_at.(m) <- -1;
        if not pd.Packed_dfa.vacuous then begin
          tr.live.(tr.nlive) <- m;
          tr.nlive <- tr.nlive + 1
        end
      end)
    eng.plan.monitors

let mk_trace eng =
  let m = Array.length eng.plan.monitors in
  let tr =
    { states = Array.make (max m 1) 0; live = Array.make (max m 1) 0;
      nlive = 0; events = 0; tripped_at = Array.make (max m 1) (-1) }
  in
  init_trace eng tr;
  tr

let get_trace eng id =
  if id < 0 then invalid_arg "Engine: negative trace id";
  if id >= Array.length eng.traces then begin
    let cap = max (2 * Array.length eng.traces) (id + 1) in
    let a = Array.make cap None in
    Array.blit eng.traces 0 a 0 (Array.length eng.traces);
    eng.traces <- a
  end;
  match eng.traces.(id) with
  | Some tr -> tr
  | None ->
      let tr = mk_trace eng in
      eng.traces.(id) <- Some tr;
      if id >= eng.ntraces then eng.ntraces <- id + 1;
      tr

(* The per-event hot path: step every live monitor of the trace through
   the fused megatable; trip (and retire) on a rejecting state, retire
   as admissible-forever when no rejecting state is reachable anymore.
   A megatable entry packs the successor with its accepting/can_trip
   bits, so the verdict decision is one array read per live monitor —
   no per-monitor record dereference. Retirement is a swap-remove on
   the compact live list — no allocation anywhere on this path ([fire]
   closes over nothing when the hook is [None]: one comparison per
   retirement, never per event). *)
let fire eng ~trace ~monitor ~position ~tripped =
  match eng.hook with
  | None -> ()
  | Some h -> h ~trace ~monitor ~position ~tripped

let step_trace eng ~id (tr : trace) symbol =
  tr.events <- tr.events + 1;
  eng.events <- eng.events + 1;
  let mega = eng.plan.mega in
  let mbase = eng.plan.mbase in
  let alphabet = eng.plan.alphabet in
  let i = ref 0 in
  while !i < tr.nlive do
    let m = Array.unsafe_get tr.live !i in
    let e =
      Array.unsafe_get mega
        (Array.unsafe_get mbase m
        + (Array.unsafe_get tr.states m * alphabet)
        + symbol)
    in
    if e land 1 = 0 then begin
      (* rejecting successor: trip *)
      Array.unsafe_set tr.tripped_at m tr.events;
      eng.tripped <- eng.tripped + 1;
      eng.mtrips.(m) <- eng.mtrips.(m) + 1;
      tr.nlive <- tr.nlive - 1;
      Array.unsafe_set tr.live !i (Array.unsafe_get tr.live tr.nlive);
      fire eng ~trace:id ~monitor:m ~position:tr.events ~tripped:true
    end
    else begin
      Array.unsafe_set tr.states m (e lsr 2);
      if e land 2 <> 0 then incr i
      else begin
        eng.retired_ok <- eng.retired_ok + 1;
        eng.mretires.(m) <- eng.mretires.(m) + 1;
        tr.nlive <- tr.nlive - 1;
        Array.unsafe_set tr.live !i (Array.unsafe_get tr.live tr.nlive);
        fire eng ~trace:id ~monitor:m ~position:tr.events ~tripped:false
      end
    end
  done

(* Per-shard retirement log for the parallel feed: worker domains must
   not call the hook (it belongs to the owning domain), so retirements
   are recorded as flat int quadruples (trace, monitor, position,
   tripped) and replayed after the join. Grows only at retirements,
   which are bounded by monitors x traces over a whole run. *)
type rvec = { mutable rbuf : int array; mutable rlen : int }

let rvec_create () = { rbuf = Array.make 64 0; rlen = 0 }

let rvec_push v ~trace ~monitor ~position ~tripped =
  if v.rlen + 4 > Array.length v.rbuf then begin
    let a = Array.make (2 * Array.length v.rbuf) 0 in
    Array.blit v.rbuf 0 a 0 v.rlen;
    v.rbuf <- a
  end;
  v.rbuf.(v.rlen) <- trace;
  v.rbuf.(v.rlen + 1) <- monitor;
  v.rbuf.(v.rlen + 2) <- position;
  v.rbuf.(v.rlen + 3) <- (if tripped then 1 else 0);
  v.rlen <- v.rlen + 4

(* The same per-event walk for the sharded parallel feed: engine-global
   counters go into per-shard refs (summed into the engine after the
   join) instead of the shared engine fields, which worker domains must
   not touch; retirements go into the shard's [rvec] (when a hook is
   installed) for post-join replay. Per-trace state needs no such care
   — each trace belongs to exactly one shard. *)
let step_trace_sharded plan ~id (tr : trace) symbol ~tripped ~retired
    ~mcounts ~nmon ~rvec =
  tr.events <- tr.events + 1;
  let mega = plan.mega in
  let mbase = plan.mbase in
  let alphabet = plan.alphabet in
  let i = ref 0 in
  while !i < tr.nlive do
    let m = Array.unsafe_get tr.live !i in
    let e =
      Array.unsafe_get mega
        (Array.unsafe_get mbase m
        + (Array.unsafe_get tr.states m * alphabet)
        + symbol)
    in
    if e land 1 = 0 then begin
      Array.unsafe_set tr.tripped_at m tr.events;
      incr tripped;
      mcounts.(m) <- mcounts.(m) + 1;
      tr.nlive <- tr.nlive - 1;
      Array.unsafe_set tr.live !i (Array.unsafe_get tr.live tr.nlive);
      (match rvec with
      | None -> ()
      | Some v ->
          rvec_push v ~trace:id ~monitor:m ~position:tr.events ~tripped:true)
    end
    else begin
      Array.unsafe_set tr.states m (e lsr 2);
      if e land 2 <> 0 then incr i
      else begin
        incr retired;
        mcounts.(nmon + m) <- mcounts.(nmon + m) + 1;
        tr.nlive <- tr.nlive - 1;
        Array.unsafe_set tr.live !i (Array.unsafe_get tr.live tr.nlive);
        match rvec with
        | None -> ()
        | Some v ->
            rvec_push v ~trace:id ~monitor:m ~position:tr.events
              ~tripped:false
      end
    end
  done

let check_symbol eng symbol =
  if symbol < 0 || symbol >= eng.plan.alphabet then
    invalid_arg
      (Printf.sprintf "Engine: symbol %d outside alphabet [0, %d)" symbol
         eng.plan.alphabet)

let live_count eng =
  let n = ref 0 in
  Array.iter (function Some tr -> n := !n + tr.nlive | None -> ()) eng.traces;
  !n

(* Snapshot the per-monitor cumulative arrays into the epilogue scratch
   (callers do this only when collection is enabled, before stepping). *)
let snapshot_monitors eng =
  let m = Array.length eng.plan.monitors in
  Array.blit eng.mtrips 0 eng.mtrips0 0 m;
  Array.blit eng.mretires 0 eng.mretires0 0 m

(* Record the chunk's telemetry from deltas of the engine's own
   counters. [n] events were just stepped; [t0_us]/[mw0] and the
   monitor snapshot were read before the loop (only when collection was
   already enabled). Label handles were interned at engine creation, so
   flushing a delta is one hashtable-free counter add per monitor. *)
let record_chunk eng ~n ~t0_us ~mw0 ~tripped0 ~retired0 =
  let dt_ns = int_of_float ((Obs.Clock.now_us () -. t0_us) *. 1e3) in
  let mw = int_of_float (Gc.minor_words () -. mw0) in
  Obs.Metrics.add m_events n;
  Obs.Metrics.incr m_chunks;
  Obs.Metrics.add m_retired_tripped (eng.tripped - tripped0);
  Obs.Metrics.add m_retired_admissible (eng.retired_ok - retired0);
  Obs.Metrics.set g_live (live_count eng);
  Obs.Metrics.observe h_chunk_latency dt_ns;
  Obs.Metrics.observe h_stage_feed dt_ns;
  Obs.Metrics.observe h_chunk_events n;
  Obs.Metrics.add m_minor_words mw;
  if n > 0 then Obs.Metrics.set g_minor_words_per_event (mw / n);
  for m = 0 to Array.length eng.plan.monitors - 1 do
    let dt = eng.mtrips.(m) - eng.mtrips0.(m)
    and dr = eng.mretires.(m) - eng.mretires0.(m) in
    if dt > 0 then Obs.Metrics.add eng.mtrip_children.(m) dt;
    if dr > 0 then Obs.Metrics.add eng.mretire_children.(m) dr
  done

(* Per-shard event counts for the chunk: an O(n) pass over the chunk's
   trace ids, run only in the enabled epilogue — the shard split is a
   pure function of the ids, so this stays out of the stepping loops. *)
let record_shard_events eng ~off ~n ~traces =
  let jobs = eng.jobs in
  Array.fill eng.shard_counts 0 jobs 0;
  for k = off to off + n - 1 do
    let s = Array.unsafe_get traces k mod jobs in
    eng.shard_counts.(s) <- eng.shard_counts.(s) + 1
  done;
  for s = 0 to jobs - 1 do
    if eng.shard_counts.(s) > 0 then
      Obs.Metrics.add eng.shard_children.(s) eng.shard_counts.(s)
  done

let step eng ~trace ~symbol =
  check_symbol eng symbol;
  if not (Obs.is_enabled ()) then
    step_trace eng ~id:trace (get_trace eng trace) symbol
  else begin
    let t0_us = Obs.Clock.now_us () in
    let mw0 = Gc.minor_words () in
    let tripped0 = eng.tripped and retired0 = eng.retired_ok in
    snapshot_monitors eng;
    step_trace eng ~id:trace (get_trace eng trace) symbol;
    record_chunk eng ~n:1 ~t0_us ~mw0 ~tripped0 ~retired0;
    Obs.Metrics.incr eng.shard_children.(trace mod eng.jobs)
  end

(* Sharded parallel feed. Traces are the independent unit — each owns
   its packed state block and its events arrive in chunk order — so
   shard [trace id mod jobs] assigns every trace to exactly one domain,
   which replays the whole chunk filtered to its own traces. Per-trace
   state evolves through the identical sequence of [step_trace] walks
   as the sequential loop, so states, live lists and bad-prefix
   positions are bit-identical at every [jobs]; the engine-global
   counters are per-shard sums merged after the join, and integer
   addition is commutative, so they match too.

   A sequential pre-pass validates symbols and materializes trace
   blocks first: trace allocation order (hence [ntraces] growth and
   array doubling) stays deterministic, and the parallel phase then
   never mutates the engine's trace table, only the per-trace blocks
   its shard owns. *)
let feed_parallel eng ~off ~n ~traces ~symbols =
  for k = off to off + n - 1 do
    check_symbol eng (Array.unsafe_get symbols k);
    ignore (get_trace eng (Array.unsafe_get traces k))
  done;
  let jobs = eng.jobs in
  let nmon = Array.length eng.plan.monitors in
  let tripped_by = Array.make jobs 0 and retired_by = Array.make jobs 0 in
  (* Per-shard monitor retirement counts live in the engine's reusable
     shard-private scratch rows ([trips.(m); retires.(m)] packed as one
     2M row per shard) — worker domains never write the shared
     cumulative arrays. *)
  for shard = 0 to jobs - 1 do
    Array.fill eng.shard_scratch.(shard) 0 (2 * max nmon 1) 0
  done;
  let rvecs =
    match eng.hook with
    | None -> [||]
    | Some _ -> Array.init jobs (fun _ -> rvec_create ())
  in
  let pool = Sl_core.Pool.create ~jobs () in
  Sl_core.Pool.parallel_for ~chunk:1 pool ~n:jobs (fun shard ->
      let tripped = ref 0 and retired = ref 0 in
      let mcounts = eng.shard_scratch.(shard) in
      let rvec =
        if Array.length rvecs = 0 then None else Some rvecs.(shard)
      in
      let engine_traces = eng.traces in
      for k = off to off + n - 1 do
        let id = Array.unsafe_get traces k in
        if id mod jobs = shard then
          match Array.unsafe_get engine_traces id with
          | Some tr ->
              step_trace_sharded eng.plan ~id tr
                (Array.unsafe_get symbols k) ~tripped ~retired ~mcounts ~nmon
                ~rvec
          | None -> ()
      done;
      tripped_by.(shard) <- !tripped;
      retired_by.(shard) <- !retired);
  eng.events <- eng.events + n;
  for shard = 0 to jobs - 1 do
    eng.tripped <- eng.tripped + tripped_by.(shard);
    eng.retired_ok <- eng.retired_ok + retired_by.(shard);
    let mcounts = eng.shard_scratch.(shard) in
    for m = 0 to nmon - 1 do
      eng.mtrips.(m) <- eng.mtrips.(m) + mcounts.(m);
      eng.mretires.(m) <- eng.mretires.(m) + mcounts.(nmon + m)
    done
  done;
  (* Replay the buffered retirements into the hook after the join, in
     shard order — deterministic for a given [jobs], chronological
     within each trace, and the engine's counters are already
     consistent when the hook observes them. *)
  match eng.hook with
  | None -> ()
  | Some h ->
      Array.iter
        (fun v ->
          let i = ref 0 in
          while !i < v.rlen do
            h ~trace:v.rbuf.(!i) ~monitor:v.rbuf.(!i + 1)
              ~position:v.rbuf.(!i + 2)
              ~tripped:(v.rbuf.(!i + 3) = 1);
            i := !i + 4
          done)
        rvecs

let feed eng ?(off = 0) ~n ~traces ~symbols () =
  if off < 0 || n < 0 || off + n > Array.length traces
     || off + n > Array.length symbols
  then invalid_arg "Engine.feed: bad chunk bounds";
  let run () =
    (* Work-size cutoff: stepping one event is ~tens of ns, so a chunk
       needs tens of thousands of events before the per-feed domain
       spawn pays for itself; smaller chunks take the sequential walk,
       which by the sharding argument below yields the same verdicts. *)
    if eng.jobs > 1 && n > 1 && n >= eng.threshold then
      feed_parallel eng ~off ~n ~traces ~symbols
    else
      for k = off to off + n - 1 do
        let symbol = Array.unsafe_get symbols k in
        check_symbol eng symbol;
        let id = Array.unsafe_get traces k in
        step_trace eng ~id (get_trace eng id) symbol
      done
  in
  if not (Obs.is_enabled ()) then run ()
  else begin
    let sp = Obs.Span.enter "engine.feed" in
    let t0_us = Obs.Clock.now_us () in
    let mw0 = Gc.minor_words () in
    let tripped0 = eng.tripped and retired0 = eng.retired_ok in
    snapshot_monitors eng;
    (match run () with
    | () -> ()
    | exception e ->
        Obs.Span.exit sp;
        raise e);
    record_chunk eng ~n ~t0_us ~mw0 ~tripped0 ~retired0;
    record_shard_events eng ~off ~n ~traces;
    Obs.Span.attr sp "events" n;
    Obs.Span.attr sp "tripped" (eng.tripped - tripped0);
    Obs.Span.attr sp "retired_admissible" (eng.retired_ok - retired0);
    Obs.Span.exit sp
  end

let reset eng =
  eng.events <- 0;
  eng.tripped <- 0;
  eng.retired_ok <- 0;
  Array.fill eng.mtrips 0 (Array.length eng.mtrips) 0;
  Array.fill eng.mretires 0 (Array.length eng.mretires) 0;
  Array.iter
    (function Some tr -> init_trace eng tr | None -> ())
    eng.traces

let set_retire_hook eng h = eng.hook <- h

let nmonitors eng = Array.length eng.plan.monitors
let jobs eng = eng.jobs
let ntraces eng = eng.ntraces
let events eng = eng.events
let tripped eng = eng.tripped
let retired_admissible eng = eng.retired_ok
let nvacuous eng = eng.plan.nvacuous

let live eng =
  let n = ref 0 in
  Array.iter (function Some tr -> n := !n + tr.nlive | None -> ()) eng.traces;
  !n

let trace_events eng id =
  if id < 0 || id >= Array.length eng.traces then 0
  else match eng.traces.(id) with Some tr -> tr.events | None -> 0

(* Exact per-monitor verdict census over the materialized traces —
   derived from the trace table itself, not the telemetry counters, so
   it matches the offline report exactly even after a resume (the
   cumulative counters are process-local). One O(N x M) pass. *)
type monitor_counts = {
  mc_live : int;
  mc_tripped : int;
  mc_retired : int;
}

let monitor_counts eng =
  let m = Array.length eng.plan.monitors in
  let live = Array.make (max m 1) 0 and tripped = Array.make (max m 1) 0 in
  let seen = ref 0 in
  Array.iter
    (function
      | None -> ()
      | Some tr ->
          incr seen;
          for i = 0 to tr.nlive - 1 do
            let mi = tr.live.(i) in
            live.(mi) <- live.(mi) + 1
          done;
          for mi = 0 to m - 1 do
            if tr.tripped_at.(mi) >= 0 then tripped.(mi) <- tripped.(mi) + 1
          done)
    eng.traces;
  Array.init m (fun mi ->
      if eng.plan.monitors.(mi).Packed_dfa.vacuous then
        { mc_live = 0; mc_tripped = 0; mc_retired = 0 }
      else
        { mc_live = live.(mi); mc_tripped = tripped.(mi);
          mc_retired = !seen - live.(mi) - tripped.(mi) })

(* Cheap per-trace census for /traces: (events, live, tripped) without
   copying the packed state the way [export_trace] does. *)
let trace_summary eng id =
  if id < 0 || id >= Array.length eng.traces then None
  else
    match eng.traces.(id) with
    | None -> None
    | Some tr ->
        let m = Array.length eng.plan.monitors in
        let ntripped = ref 0 in
        for mi = 0 to m - 1 do
          if tr.tripped_at.(mi) >= 0 then incr ntripped
        done;
        Some (tr.events, tr.nlive, !ntripped)

let verdict eng ~trace ~monitor =
  let pd = eng.plan.monitors.(monitor) in
  let fresh () =
    if pd.Packed_dfa.vacuous then Vacuous
    else if pd.Packed_dfa.pre_tripped then Violation { position = 0 }
    else Admissible
  in
  if trace < 0 || trace >= Array.length eng.traces then fresh ()
  else
    match eng.traces.(trace) with
    | None -> fresh ()
    | Some tr ->
        if pd.Packed_dfa.vacuous then Vacuous
        else if tr.tripped_at.(monitor) >= 0 then
          Violation { position = tr.tripped_at.(monitor) }
        else Admissible

(* Externalization: the packed per-trace state as plain arrays, so the
   session codec can serialize a run without reaching into the engine's
   representation. [ts_states] and [ts_tripped_at] are full M-length
   copies; [ts_live] is the compact live list in list order, so a
   restored trace retires monitors in the same order as the original
   run would — byte-identical continuation. *)
type trace_state = {
  ts_events : int;
  ts_states : int array;
  ts_live : int array;
  ts_tripped_at : int array;
}

let export_trace eng id =
  if id < 0 || id >= Array.length eng.traces then None
  else
    match eng.traces.(id) with
    | None -> None
    | Some tr ->
        let m = Array.length eng.plan.monitors in
        Some
          { ts_events = tr.events;
            ts_states = Array.sub tr.states 0 m;
            ts_live = Array.sub tr.live 0 tr.nlive;
            ts_tripped_at = Array.sub tr.tripped_at 0 m }

(* Restoring trusts nothing: a snapshot is bytes from disk, so every
   field is validated against the plan before it touches engine state.
   Raises [Invalid_argument] on any inconsistency — the session decoder
   wraps that into [Wire.Corrupt]. *)
let restore_trace eng id (ts : trace_state) =
  let monitors = eng.plan.monitors in
  let m = Array.length monitors in
  let fail fmt =
    Printf.ksprintf
      (fun s -> invalid_arg (Printf.sprintf "Engine.restore_trace: %s" s))
      fmt
  in
  if Array.length ts.ts_states <> m then
    fail "states length %d (have %d monitors)" (Array.length ts.ts_states) m;
  if Array.length ts.ts_tripped_at <> m then
    fail "tripped_at length %d (have %d monitors)"
      (Array.length ts.ts_tripped_at) m;
  if ts.ts_events < 0 then fail "negative event count %d" ts.ts_events;
  if Array.length ts.ts_live > m then
    fail "live list length %d (have %d monitors)" (Array.length ts.ts_live) m;
  for i = 0 to m - 1 do
    let s = ts.ts_states.(i) in
    if s < 0 || s >= monitors.(i).Packed_dfa.nstates then
      fail "monitor %d state %d outside [0, %d)" i s
        monitors.(i).Packed_dfa.nstates;
    let p = ts.ts_tripped_at.(i) in
    if p < -1 || p > ts.ts_events then
      fail "monitor %d trip position %d outside [-1, %d]" i p ts.ts_events
  done;
  let seen = Array.make (max m 1) false in
  Array.iter
    (fun mi ->
      if mi < 0 || mi >= m then fail "live monitor %d outside [0, %d)" mi m;
      if seen.(mi) then fail "monitor %d listed live twice" mi;
      seen.(mi) <- true;
      if ts.ts_tripped_at.(mi) >= 0 then
        fail "monitor %d both live and tripped" mi;
      if monitors.(mi).Packed_dfa.vacuous then
        fail "vacuous monitor %d listed live" mi)
    ts.ts_live;
  (* [get_trace] materializes (and init_trace-counts pre-tripped
     monitors into [eng.tripped]); the blits below overwrite the fresh
     state, and [set_counters] afterwards overwrites the counters. *)
  let tr = get_trace eng id in
  Array.blit ts.ts_states 0 tr.states 0 m;
  Array.blit ts.ts_tripped_at 0 tr.tripped_at 0 m;
  Array.blit ts.ts_live 0 tr.live 0 (Array.length ts.ts_live);
  tr.nlive <- Array.length ts.ts_live;
  tr.events <- ts.ts_events

let set_counters eng ~events ~tripped ~retired_admissible =
  if events < 0 || tripped < 0 || retired_admissible < 0 then
    invalid_arg "Engine.set_counters: negative counter";
  eng.events <- events;
  eng.tripped <- tripped;
  eng.retired_ok <- retired_admissible
