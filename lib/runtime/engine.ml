module Obs = Sl_obs.Obs

(* Engine telemetry. The per-event hot path ([step_trace]) stays
   untouched — metrics are recorded once per chunk/call from the [feed]
   and [step] epilogues as deltas of the engine's own counters, so the
   disabled-mode cost is one flag check per chunk, not per event.
   Counters aggregate across all engines of the process. *)
let m_events = Obs.Metrics.counter "engine_events_total"
let m_chunks = Obs.Metrics.counter "engine_chunks_total"
let m_retired_tripped = Obs.Metrics.counter "engine_retired_tripped_total"

let m_retired_admissible =
  Obs.Metrics.counter "engine_retired_admissible_total"

let g_live = Obs.Metrics.gauge "engine_live_monitors"
let h_chunk_latency = Obs.Metrics.histogram "engine_chunk_latency_ns"
let h_chunk_events = Obs.Metrics.histogram "engine_chunk_events"
let m_minor_words = Obs.Metrics.counter "engine_minor_words_total"
let g_minor_words_per_event = Obs.Metrics.gauge "engine_minor_words_per_event"

type verdict =
  | Vacuous
  | Admissible
  | Violation of { position : int }

type trace = {
  states : int array;
  live : int array;
  mutable nlive : int;
  mutable events : int;
  tripped_at : int array;
}

type t = {
  monitors : Packed_dfa.t array;
  alphabet : int;
  nvacuous : int;
  npretripped : int;
  jobs : int;
  threshold : int;
  mutable traces : trace option array;
  mutable ntraces : int;
  mutable events : int;
  mutable tripped : int;
  mutable retired_ok : int;
}

let create ?jobs ?(threshold = 65536) ~monitors () =
  let jobs =
    match jobs with Some j -> j | None -> Sl_core.Pool.default_jobs ()
  in
  if jobs < 1 then invalid_arg "Engine.create: jobs must be >= 1";
  if threshold < 0 then invalid_arg "Engine.create: threshold must be >= 0";
  let alphabet =
    match Array.length monitors with
    | 0 -> 1
    | _ ->
        let a = monitors.(0).Packed_dfa.alphabet in
        Array.iter
          (fun pd ->
            if pd.Packed_dfa.alphabet <> a then
              invalid_arg "Engine.create: monitors over different alphabets")
          monitors;
        a
  in
  let nvacuous = ref 0 and npretripped = ref 0 in
  Array.iter
    (fun pd ->
      if pd.Packed_dfa.vacuous then incr nvacuous;
      if pd.Packed_dfa.pre_tripped then incr npretripped)
    monitors;
  { monitors; alphabet; nvacuous = !nvacuous; npretripped = !npretripped;
    jobs; threshold; traces = Array.make 4 None; ntraces = 0; events = 0;
    tripped = 0; retired_ok = 0 }

(* (Re)initialize a trace record in place: every non-vacuous monitor
   starts live in the packed start state, except pre-tripped (empty
   property) monitors, which are born violated at position 0. *)
let init_trace eng (tr : trace) =
  tr.nlive <- 0;
  tr.events <- 0;
  Array.iteri
    (fun m pd ->
      tr.states.(m) <- Packed_dfa.start;
      if pd.Packed_dfa.pre_tripped then begin
        tr.tripped_at.(m) <- 0;
        eng.tripped <- eng.tripped + 1
      end
      else begin
        tr.tripped_at.(m) <- -1;
        if not pd.Packed_dfa.vacuous then begin
          tr.live.(tr.nlive) <- m;
          tr.nlive <- tr.nlive + 1
        end
      end)
    eng.monitors

let mk_trace eng =
  let m = Array.length eng.monitors in
  let tr =
    { states = Array.make (max m 1) 0; live = Array.make (max m 1) 0;
      nlive = 0; events = 0; tripped_at = Array.make (max m 1) (-1) }
  in
  init_trace eng tr;
  tr

let get_trace eng id =
  if id < 0 then invalid_arg "Engine: negative trace id";
  if id >= Array.length eng.traces then begin
    let cap = max (2 * Array.length eng.traces) (id + 1) in
    let a = Array.make cap None in
    Array.blit eng.traces 0 a 0 (Array.length eng.traces);
    eng.traces <- a
  end;
  match eng.traces.(id) with
  | Some tr -> tr
  | None ->
      let tr = mk_trace eng in
      eng.traces.(id) <- Some tr;
      if id >= eng.ntraces then eng.ntraces <- id + 1;
      tr

(* The per-event hot path: step every live monitor of the trace through
   the packed table; trip (and retire) on a rejecting state, retire as
   admissible-forever when no rejecting state is reachable anymore.
   Retirement is a swap-remove on the compact live list — no allocation
   anywhere on this path. *)
let step_trace eng (tr : trace) symbol =
  tr.events <- tr.events + 1;
  eng.events <- eng.events + 1;
  let i = ref 0 in
  while !i < tr.nlive do
    let m = Array.unsafe_get tr.live !i in
    let pd = Array.unsafe_get eng.monitors m in
    let s' =
      Array.unsafe_get pd.Packed_dfa.trans
        ((Array.unsafe_get tr.states m * pd.Packed_dfa.alphabet) + symbol)
    in
    if not (Array.unsafe_get pd.Packed_dfa.accepting s') then begin
      Array.unsafe_set tr.tripped_at m tr.events;
      eng.tripped <- eng.tripped + 1;
      tr.nlive <- tr.nlive - 1;
      Array.unsafe_set tr.live !i (Array.unsafe_get tr.live tr.nlive)
    end
    else begin
      Array.unsafe_set tr.states m s';
      if Array.unsafe_get pd.Packed_dfa.can_trip s' then incr i
      else begin
        eng.retired_ok <- eng.retired_ok + 1;
        tr.nlive <- tr.nlive - 1;
        Array.unsafe_set tr.live !i (Array.unsafe_get tr.live tr.nlive)
      end
    end
  done

(* The same per-event walk for the sharded parallel feed: engine-global
   counters go into per-shard refs (summed into the engine after the
   join) instead of the shared engine fields, which worker domains must
   not touch. Per-trace state needs no such care — each trace belongs
   to exactly one shard. *)
let step_trace_sharded monitors (tr : trace) symbol ~tripped ~retired =
  tr.events <- tr.events + 1;
  let i = ref 0 in
  while !i < tr.nlive do
    let m = Array.unsafe_get tr.live !i in
    let pd = Array.unsafe_get monitors m in
    let s' =
      Array.unsafe_get pd.Packed_dfa.trans
        ((Array.unsafe_get tr.states m * pd.Packed_dfa.alphabet) + symbol)
    in
    if not (Array.unsafe_get pd.Packed_dfa.accepting s') then begin
      Array.unsafe_set tr.tripped_at m tr.events;
      incr tripped;
      tr.nlive <- tr.nlive - 1;
      Array.unsafe_set tr.live !i (Array.unsafe_get tr.live tr.nlive)
    end
    else begin
      Array.unsafe_set tr.states m s';
      if Array.unsafe_get pd.Packed_dfa.can_trip s' then incr i
      else begin
        incr retired;
        tr.nlive <- tr.nlive - 1;
        Array.unsafe_set tr.live !i (Array.unsafe_get tr.live tr.nlive)
      end
    end
  done

let check_symbol eng symbol =
  if symbol < 0 || symbol >= eng.alphabet then
    invalid_arg
      (Printf.sprintf "Engine: symbol %d outside alphabet [0, %d)" symbol
         eng.alphabet)

let live_count eng =
  let n = ref 0 in
  Array.iter (function Some tr -> n := !n + tr.nlive | None -> ()) eng.traces;
  !n

(* Record the chunk's telemetry from deltas of the engine's own
   counters. [n] events were just stepped; [t0_us]/[mw0] were read
   before the loop (only when collection was already enabled). *)
let record_chunk eng ~n ~t0_us ~mw0 ~tripped0 ~retired0 =
  let dt_ns = int_of_float ((Obs.Clock.now_us () -. t0_us) *. 1e3) in
  let mw = int_of_float (Gc.minor_words () -. mw0) in
  Obs.Metrics.add m_events n;
  Obs.Metrics.incr m_chunks;
  Obs.Metrics.add m_retired_tripped (eng.tripped - tripped0);
  Obs.Metrics.add m_retired_admissible (eng.retired_ok - retired0);
  Obs.Metrics.set g_live (live_count eng);
  Obs.Metrics.observe h_chunk_latency dt_ns;
  Obs.Metrics.observe h_chunk_events n;
  Obs.Metrics.add m_minor_words mw;
  if n > 0 then Obs.Metrics.set g_minor_words_per_event (mw / n)

let step eng ~trace ~symbol =
  check_symbol eng symbol;
  if not (Obs.is_enabled ()) then
    step_trace eng (get_trace eng trace) symbol
  else begin
    let t0_us = Obs.Clock.now_us () in
    let mw0 = Gc.minor_words () in
    let tripped0 = eng.tripped and retired0 = eng.retired_ok in
    step_trace eng (get_trace eng trace) symbol;
    record_chunk eng ~n:1 ~t0_us ~mw0 ~tripped0 ~retired0
  end

(* Sharded parallel feed. Traces are the independent unit — each owns
   its packed state block and its events arrive in chunk order — so
   shard [trace id mod jobs] assigns every trace to exactly one domain,
   which replays the whole chunk filtered to its own traces. Per-trace
   state evolves through the identical sequence of [step_trace] walks
   as the sequential loop, so states, live lists and bad-prefix
   positions are bit-identical at every [jobs]; the engine-global
   counters are per-shard sums merged after the join, and integer
   addition is commutative, so they match too.

   A sequential pre-pass validates symbols and materializes trace
   blocks first: trace allocation order (hence [ntraces] growth and
   array doubling) stays deterministic, and the parallel phase then
   never mutates the engine's trace table, only the per-trace blocks
   its shard owns. *)
let feed_parallel eng ~off ~n ~traces ~symbols =
  for k = off to off + n - 1 do
    check_symbol eng (Array.unsafe_get symbols k);
    ignore (get_trace eng (Array.unsafe_get traces k))
  done;
  let jobs = eng.jobs in
  let tripped_by = Array.make jobs 0 and retired_by = Array.make jobs 0 in
  let pool = Sl_core.Pool.create ~jobs () in
  Sl_core.Pool.parallel_for ~chunk:1 pool ~n:jobs (fun shard ->
      let tripped = ref 0 and retired = ref 0 in
      let engine_traces = eng.traces in
      for k = off to off + n - 1 do
        let id = Array.unsafe_get traces k in
        if id mod jobs = shard then
          match Array.unsafe_get engine_traces id with
          | Some tr ->
              step_trace_sharded eng.monitors tr
                (Array.unsafe_get symbols k) ~tripped ~retired
          | None -> ()
      done;
      tripped_by.(shard) <- !tripped;
      retired_by.(shard) <- !retired);
  eng.events <- eng.events + n;
  for shard = 0 to jobs - 1 do
    eng.tripped <- eng.tripped + tripped_by.(shard);
    eng.retired_ok <- eng.retired_ok + retired_by.(shard)
  done

let feed eng ?(off = 0) ~n ~traces ~symbols () =
  if off < 0 || n < 0 || off + n > Array.length traces
     || off + n > Array.length symbols
  then invalid_arg "Engine.feed: bad chunk bounds";
  let run () =
    (* Work-size cutoff: stepping one event is ~tens of ns, so a chunk
       needs tens of thousands of events before the per-feed domain
       spawn pays for itself; smaller chunks take the sequential walk,
       which by the sharding argument below yields the same verdicts. *)
    if eng.jobs > 1 && n > 1 && n >= eng.threshold then
      feed_parallel eng ~off ~n ~traces ~symbols
    else
      for k = off to off + n - 1 do
        let symbol = Array.unsafe_get symbols k in
        check_symbol eng symbol;
        step_trace eng (get_trace eng (Array.unsafe_get traces k)) symbol
      done
  in
  if not (Obs.is_enabled ()) then run ()
  else begin
    let sp = Obs.Span.enter "engine.feed" in
    let t0_us = Obs.Clock.now_us () in
    let mw0 = Gc.minor_words () in
    let tripped0 = eng.tripped and retired0 = eng.retired_ok in
    (match run () with
    | () -> ()
    | exception e ->
        Obs.Span.exit sp;
        raise e);
    record_chunk eng ~n ~t0_us ~mw0 ~tripped0 ~retired0;
    Obs.Span.attr sp "events" n;
    Obs.Span.attr sp "tripped" (eng.tripped - tripped0);
    Obs.Span.attr sp "retired_admissible" (eng.retired_ok - retired0);
    Obs.Span.exit sp
  end

let reset eng =
  eng.events <- 0;
  eng.tripped <- 0;
  eng.retired_ok <- 0;
  Array.iter
    (function Some tr -> init_trace eng tr | None -> ())
    eng.traces

let nmonitors eng = Array.length eng.monitors
let jobs eng = eng.jobs
let ntraces eng = eng.ntraces
let events eng = eng.events
let tripped eng = eng.tripped
let retired_admissible eng = eng.retired_ok
let nvacuous eng = eng.nvacuous

let live eng =
  let n = ref 0 in
  Array.iter (function Some tr -> n := !n + tr.nlive | None -> ()) eng.traces;
  !n

let trace_events eng id =
  if id < 0 || id >= Array.length eng.traces then 0
  else match eng.traces.(id) with Some tr -> tr.events | None -> 0

let verdict eng ~trace ~monitor =
  let pd = eng.monitors.(monitor) in
  let fresh () =
    if pd.Packed_dfa.vacuous then Vacuous
    else if pd.Packed_dfa.pre_tripped then Violation { position = 0 }
    else Admissible
  in
  if trace < 0 || trace >= Array.length eng.traces then fresh ()
  else
    match eng.traces.(trace) with
    | None -> fresh ()
    | Some tr ->
        if pd.Packed_dfa.vacuous then Vacuous
        else if tr.tripped_at.(monitor) >= 0 then
          Violation { position = tr.tripped_at.(monitor) }
        else Admissible
