module Formula = Sl_ltl.Formula
module Translate = Sl_ltl.Translate
module Obs = Sl_obs.Obs

(* Registry telemetry (recorded only while Sl_obs is enabled): property
   compilations, hash-cons effectiveness, and per-property compile
   latency. Counters aggregate across all registries of the process. *)
let m_props = Obs.Metrics.counter "registry_props_total"
let m_monitors = Obs.Metrics.counter "registry_monitors_total"
let m_hashcons_hits = Obs.Metrics.counter "registry_hashcons_hits_total"
let h_compile_ns = Obs.Metrics.histogram "registry_compile_ns"

type prop = {
  id : int;
  name : string;
  formula : Formula.t option;
  monitor : int;
}

(* Declared before [t] so [t]'s own [props] field wins record-label
   disambiguation below. *)
type stats = {
  props : int;
  distinct_monitors : int;
  hashcons_hits : int;
}

type t = {
  alphabet : int;
  valuation : int -> string -> bool;
  cache : Cache.t option;
  mutable props : prop array;
  mutable nprops : int;
  mutable monitors : Packed_dfa.t array;
  mutable nmonitors : int;
  keys : (string, int) Hashtbl.t;
  mutable hits : int;
}

let default_valuation symbol p = String.equal p "a" && symbol = 0

let create ?(alphabet = 2) ?(valuation = default_valuation) ?cache () =
  if alphabet <= 0 then invalid_arg "Registry.create: alphabet must be > 0";
  let cache = match cache with Some _ as c -> c | None -> Cache.default () in
  { alphabet; valuation; cache; props = [||]; nprops = 0; monitors = [||];
    nmonitors = 0; keys = Hashtbl.create 64; hits = 0 }

let alphabet t = t.alphabet
let nprops t = t.nprops
let nmonitors t = t.nmonitors
let hits t = t.hits

let stats t =
  { props = t.nprops; distinct_monitors = t.nmonitors; hashcons_hits = t.hits }

(* The registry's structural identity, for snapshot compatibility: a
   session saved against one registry may only be restored against a
   registry with the same alphabet, the same properties in the same
   order, mapped to monitors with the same canonical BFS keys. The
   compile path (cold, cached, any [jobs]) is deterministic in all of
   these, so a cache-recompiled registry fingerprints identically.
   Fields are length-prefixed so no concatenation of distinct
   registries can collide textually. *)
let fingerprint t =
  let b = Buffer.create 256 in
  let field s =
    Buffer.add_string b (string_of_int (String.length s));
    Buffer.add_char b ':';
    Buffer.add_string b s
  in
  field "slc-registry/1";
  field (string_of_int t.alphabet);
  field (string_of_int t.nprops);
  for i = 0 to t.nprops - 1 do
    field t.props.(i).name;
    field (string_of_int t.props.(i).monitor)
  done;
  field (string_of_int t.nmonitors);
  for m = 0 to t.nmonitors - 1 do
    field (Packed_dfa.key t.monitors.(m))
  done;
  Sl_core.Wire.fnv64_hex (Buffer.contents b)
let prop t i = t.props.(i)
let monitor_of_prop t i = t.props.(i).monitor
let monitors t = Array.sub t.monitors 0 t.nmonitors
let props t = Array.to_list (Array.sub t.props 0 t.nprops)

let push_prop t p =
  if t.nprops = Array.length t.props then begin
    let cap = max 8 (2 * t.nprops) in
    let a = Array.make cap p in
    Array.blit t.props 0 a 0 t.nprops;
    t.props <- a
  end;
  t.props.(t.nprops) <- p;
  t.nprops <- t.nprops + 1

let intern_monitor t pd =
  match Hashtbl.find_opt t.keys (Packed_dfa.key pd) with
  | Some id ->
      t.hits <- t.hits + 1;
      Obs.Metrics.incr m_hashcons_hits;
      id
  | None ->
      Obs.Metrics.incr m_monitors;
      if t.nmonitors = Array.length t.monitors then begin
        let cap = max 8 (2 * t.nmonitors) in
        let a = Array.make cap pd in
        Array.blit t.monitors 0 a 0 t.nmonitors;
        t.monitors <- a
      end;
      let id = t.nmonitors in
      t.monitors.(id) <- pd;
      t.nmonitors <- id + 1;
      Hashtbl.add t.keys (Packed_dfa.key pd) id;
      id

(* The translate/decompose/minimize/pack pipeline for one formula, with
   the warm-start cache (when the registry has one) probed first: a hit
   skips the whole pipeline for a decode that is field-for-field the
   same monitor, a miss compiles and then publishes the artifact. Pure
   up to cache I/O and process-wide cache counters, so [compile_all]
   can run it on pool worker domains — stores are atomic-rename, so
   racing workers at worst publish identical bytes twice. *)
let pack_formula t f () =
  let fresh () =
    Packed_dfa.of_buchi
      (Translate.translate ~alphabet:t.alphabet ~valuation:t.valuation f)
  in
  match t.cache with
  | None -> fresh ()
  | Some c -> (
      let key = Cache.probe_key ~alphabet:t.alphabet ~valuation:t.valuation f in
      match Cache.find c ~key with
      | Some pd -> pd
      | None ->
          let pd = fresh () in
          Cache.store c ~key pd;
          pd)

(* Compile one property under a [registry.compile] span, recording the
   compile latency and whether the packed table was a hash-cons hit. *)
let compile_prop t ~name ~formula ~pack =
  let sp = Obs.Span.enter "registry.compile" in
  let t0 = if Obs.is_enabled () then Obs.Clock.now_us () else 0. in
  match
    let pd = pack () in
    let hits0 = t.hits in
    let monitor = intern_monitor t pd in
    (pd, monitor, t.hits > hits0)
  with
  | exception e ->
      Obs.Span.exit sp;
      raise e
  | pd, monitor, hit ->
      if Obs.is_enabled () then begin
        Obs.Metrics.observe h_compile_ns
          (int_of_float ((Obs.Clock.now_us () -. t0) *. 1e3));
        Obs.Span.attr sp "monitor" monitor;
        Obs.Span.attr sp "states" pd.Packed_dfa.nstates;
        Obs.Span.attr sp "hashcons_hit" (if hit then 1 else 0)
      end;
      Obs.Metrics.incr m_props;
      Obs.Span.exit sp;
      let id = t.nprops in
      push_prop t { id; name; formula; monitor };
      id

let add_buchi t ~name b =
  (* Automaton-sourced properties have no source identity to key a
     cache probe on, so they always compile. *)
  compile_prop t ~name ~formula:None ~pack:(fun () -> Packed_dfa.of_buchi b)

let add_formula t ?name f =
  let name = match name with Some n -> n | None -> Formula.to_string f in
  compile_prop t ~name ~formula:(Some f) ~pack:(pack_formula t f)

(* Batch compilation. The expensive per-property phase —
   translate/decompose/minimize/pack, all pure — fans out across a
   domain pool; the merge phase then hash-conses the packed tables and
   assigns property/monitor ids sequentially in input order, so the
   registry's structure (prop ids, monitor ids, hit counts, keys) is
   byte-identical at every [jobs]. With [jobs = 1] each property goes
   through the exact same [compile_prop] path as [add_formula]. *)
let compile_all ?jobs ?(threshold = 4) t named =
  let pool = Sl_core.Pool.create ?jobs () in
  let name_of name f =
    match name with Some n -> n | None -> Formula.to_string f
  in
  (* Work-size cutoff: compiling a property costs milliseconds, so a
     batch has to be at least a handful of properties before splitting
     it beats the ~100µs-per-domain spawn. Below [threshold] (or on a
     one-domain pool) each property takes the exact [add_formula]
     path. *)
  if Sl_core.Pool.jobs pool = 1 || List.length named < threshold then
    List.map (fun (name, f) -> add_formula t ?name f) named
  else begin
    let arr = Array.of_list named in
    let n = Array.length arr in
    let packed = Array.make n None in
    let sp = Obs.Span.enter "registry.compile_all" in
    match
      Sl_core.Pool.parallel_for pool ~n (fun i ->
          let _, f = arr.(i) in
          let t0 = if Obs.is_enabled () then Obs.Clock.now_us () else 0. in
          let pd = pack_formula t f () in
          let dt_ns =
            if Obs.is_enabled () then
              int_of_float ((Obs.Clock.now_us () -. t0) *. 1e3)
            else 0
          in
          packed.(i) <- Some (pd, dt_ns))
    with
    | exception e ->
        Obs.Span.exit sp;
        raise e
    | () ->
        let ids =
          Array.to_list
            (Array.mapi
               (fun i (name, f) ->
                 let pd, dt_ns =
                   match packed.(i) with Some r -> r | None -> assert false
                 in
                 let monitor = intern_monitor t pd in
                 Obs.Metrics.observe h_compile_ns dt_ns;
                 Obs.Metrics.incr m_props;
                 let id = t.nprops in
                 push_prop t
                   { id; name = name_of name f; formula = Some f; monitor };
                 id)
               arr)
        in
        Obs.Span.attr sp "props" n;
        Obs.Span.attr sp "distinct_monitors" t.nmonitors;
        Obs.Span.exit sp;
        ids
  end

(* Property-file loading. One LTL formula per line; blank lines and
   '#'-comments are skipped. A malformed line is reported with its
   file/line position and skipped — one bad property must not abort the
   whole monitoring run (the CLI turns a non-empty error list into a
   nonzero exit code). *)
let load_lines t ?(path = "<props>") ?jobs lines =
  let errors = ref [] in
  let items = ref [] in
  List.iteri
    (fun i raw ->
      let s = String.trim raw in
      if String.length s > 0 && s.[0] <> '#' then
        match Formula.parse s with
        | Ok f -> items := (Some s, f) :: !items
        | Error e ->
            errors :=
              Printf.sprintf "%s:%d: parse error: %s (line skipped)" path
                (i + 1) e
              :: !errors)
    lines;
  ignore (compile_all ?jobs t (List.rev !items));
  List.rev !errors

let load_channel t ?path ?jobs ic =
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> ());
  load_lines t ?path ?jobs (List.rev !lines)
