module Formula = Sl_ltl.Formula
module Wire = Sl_core.Wire
module Obs = Sl_obs.Obs

(* Cache telemetry. The Obs counters surface in the Prometheus
   exposition (only recording while Sl_obs is enabled, like every other
   metric); the Atomics beside them are the always-on API counters that
   tests and benches read without turning observability on. Both are
   process-wide across all cache handles, and atomic because
   [Registry.compile_all] probes and stores from pool worker domains. *)
let m_hits = Obs.Metrics.counter "cache_hits_total"
let m_misses = Obs.Metrics.counter "cache_misses_total"
let m_stores = Obs.Metrics.counter "cache_stores_total"

let a_hits = Atomic.make 0
let a_misses = Atomic.make 0
let a_stores = Atomic.make 0

let hit_count () = Atomic.get a_hits
let miss_count () = Atomic.get a_misses
let store_count () = Atomic.get a_stores

let reset_counters () =
  Atomic.set a_hits 0;
  Atomic.set a_misses 0;
  Atomic.set a_stores 0

type t = { dir : string }

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if String.length parent < String.length dir then mkdir_p parent;
    try Sys.mkdir dir 0o755
    with Sys_error _ when Sys.is_directory dir -> ()
  end

let create ~dir =
  mkdir_p dir;
  { dir }

let dir t = t.dir

(* Process default, [SLC_JOBS]-style: seeded from [SLC_CACHE] at
   startup, overridable by the CLI's [--cache]. [None] (the out-of-box
   state) disables caching entirely. *)
let default_dir =
  Atomic.make
    (match Sys.getenv_opt "SLC_CACHE" with
    | Some d when String.trim d <> "" -> Some (String.trim d)
    | _ -> None)

let set_default_dir d = Atomic.set default_dir d
let default () = Option.map (fun dir -> create ~dir) (Atomic.get default_dir)

(* The probe key is the property's *source* identity — everything the
   compile pipeline's output depends on: alphabet, the formula
   (normalized through its printer, so parses of equivalent
   concrete syntax agree), and the valuation's behaviour on exactly the
   propositions the formula mentions across exactly the alphabet's
   symbols. Valuations are functions and cannot be compared, but only
   their restriction to (propositions x symbols) can influence
   translation, so that bit table is a sound fingerprint. Fields are
   length-prefixed: no formula text can fake another key. *)
let probe_key ~alphabet ~valuation f =
  let buf = Buffer.create 128 in
  let field s =
    Buffer.add_string buf (string_of_int (String.length s));
    Buffer.add_char buf ':';
    Buffer.add_string buf s;
    Buffer.add_char buf '|'
  in
  field "slc-probe/1";
  field (string_of_int alphabet);
  field (Formula.to_string f);
  List.iter
    (fun p ->
      field p;
      for s = 0 to alphabet - 1 do
        Buffer.add_char buf (if valuation s p then '1' else '0')
      done;
      Buffer.add_char buf '|')
    (Formula.propositions f);
  Buffer.contents buf

let path t key = Filename.concat t.dir ("sl-" ^ Wire.fnv64_hex key ^ ".mon")

let read_file path =
  match open_in_bin path with
  | exception Sys_error _ -> None
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          match really_input_string ic (in_channel_length ic) with
          | s -> Some s
          | exception (Sys_error _ | End_of_file) -> None)

(* A cache entry is a [kind_packed_dfa] artifact whose payload leads
   with the probe key that produced it. File names are a 64-bit hash of
   that key, so the embedded copy is what rules out hash collisions
   (and mis-filed entries): key mismatch = miss, like every other
   defect. All decode failures funnel through [Wire.Corrupt] — a
   corrupt cache can cost a recompile, never an error. *)
let find t ~key =
  let result =
    match read_file (path t key) with
    | None -> None
    | Some s -> (
        match
          let r = Wire.of_artifact_kind ~kind:Wire.kind_packed_dfa s in
          let stored = Wire.get_string r in
          if not (String.equal stored key) then
            raise (Wire.Corrupt "probe key mismatch");
          let pd = Packed_dfa.decode r in
          Wire.expect_end r;
          pd
        with
        | pd -> Some pd
        | exception Wire.Corrupt _ -> None)
  in
  (match result with
  | Some _ ->
      Atomic.incr a_hits;
      Obs.Metrics.incr m_hits
  | None ->
      Atomic.incr a_misses;
      Obs.Metrics.incr m_misses);
  result

(* Atomic publish: write the whole artifact to a fresh temp file in the
   cache directory, then [rename] over the final name — concurrent
   readers (and concurrent writers, racing on the same property from
   [-j] workers or separate processes) see either the old complete file
   or the new complete file, never a torn one. Renaming over an
   existing entry also heals anything stale or corrupt. Storing is
   best-effort: a full disk or read-only directory degrades to an
   always-cold cache, it does not fail the compile. *)
let store t ~key pd =
  let w = Wire.writer () in
  Wire.put_string w key;
  Packed_dfa.encode w pd;
  let blob = Wire.to_artifact ~kind:Wire.kind_packed_dfa w in
  match
    let tmp = Filename.temp_file ~temp_dir:t.dir "sl-part" ".tmp" in
    let oc = open_out_bin tmp in
    (try
       output_string oc blob;
       close_out oc
     with e ->
       close_out_noerr oc;
       (try Sys.remove tmp with Sys_error _ -> ());
       raise e);
    Sys.rename tmp (path t key)
  with
  | () ->
      Atomic.incr a_stores;
      Obs.Metrics.incr m_stores
  | exception Sys_error _ -> ()
