(** Monitor packs: a whole compiled registry as one artifact.

    [slc pack] compiles a property file offline into a single
    [sl-artifact/1] blob (kind {!Sl_core.Wire.kind_pack}) holding the
    alphabet, every property (name + monitor index, hash-consing
    preserved) and every distinct packed monitor. A serve-phase process
    — [slc unpack] today, the ROADMAP's monitoring daemon tomorrow —
    loads it back in microseconds, with the same
    validate-or-reject-everything discipline as the compile cache:
    {!read} returns [Error] on any corruption, never a torn or
    half-valid pack. *)

type t = {
  alphabet : int;
  props : (string * int) array;
      (** property name and its index into [monitors], in registry
          (= source) order; hash-consed properties share an index *)
  monitors : Packed_dfa.t array;  (** distinct compiled monitors *)
}

val of_registry : Registry.t -> t
(** Snapshot a compiled registry (formula- and automaton-sourced
    properties alike — the pack stores compiled tables, not sources). *)

val encode : Sl_core.Wire.writer -> t -> unit
val decode : Sl_core.Wire.reader -> t
(** @raise Sl_core.Wire.Corrupt on malformed bytes, dangling monitor
    indices, or monitors whose alphabet differs from the pack's. *)

val to_artifact : t -> string
val of_artifact : string -> (t, string) result
(** [Error] carries the corruption reason, for CLI display. *)

val write : t -> path:string -> unit
(** Atomic publish: temp file beside [path], then rename — a
    concurrent reader sees the old pack or the new pack, never a torn
    one. @raise Sys_error on I/O failure. *)

val read : path:string -> (t, string) result
