(** The verdict/metrics layer: structured per-(trace, property) verdicts
    plus engine counters, renderable as text or JSON.

    Verdicts come in three flavours, mirroring the theory: a violation
    carries the shortest-bad-prefix position (safety refuted at a finite
    point); admissible means no bad prefix (yet, or provably ever);
    vacuous marks pure-liveness properties whose safety part is
    universal — Schneider's unmonitorable case. *)

type counters = {
  traces : int;
  events : int;  (** events ingested *)
  props : int;
  distinct_monitors : int;  (** after hash-consing *)
  vacuous_props : int;
  violations : int;  (** (trace, property) violation pairs *)
  live : int;  (** live monitor instances across traces *)
  tripped : int;  (** monitor instances retired by violation *)
  retired_admissible : int;  (** retired admissible-forever *)
  events_per_s : float option;  (** when an elapsed time was supplied *)
}

type prop_summary = {
  prop : Registry.prop;
  vacuous : bool;
  trips : int;  (** traces on which this property tripped *)
}

type row = {
  trace : string;
  trace_events : int;
  verdicts : (Registry.prop * Engine.verdict) list;
}

type report = {
  counters : counters;
  prop_summaries : prop_summary list;
  rows : row list;
}

val make :
  registry:Registry.t -> engine:Engine.t -> trace_name:(int -> string) ->
  ?elapsed_s:float -> unit -> report

val verdict_to_string : Engine.verdict -> string

val pp_text : Format.formatter -> report -> unit
(** Human-readable rendering; ends with a stable one-line
    [summary: traces=... events=...] record (CI greps it). *)

val to_json : report -> string
(** Schema [sl-monitor-report/1]; hand-rolled like the bench trajectory
    writer, no JSON dependency. *)
