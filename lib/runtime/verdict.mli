(** The verdict/metrics layer: structured per-(trace, property) verdicts
    plus engine counters, renderable as text or JSON.

    Verdicts come in three flavours, mirroring the theory: a violation
    carries the shortest-bad-prefix position (safety refuted at a finite
    point); admissible means no bad prefix (yet, or provably ever);
    vacuous marks pure-liveness properties whose safety part is
    universal — Schneider's unmonitorable case. *)

type counters = {
  traces : int;
  events : int;  (** events ingested *)
  props : int;
  distinct_monitors : int;  (** after hash-consing *)
  vacuous_props : int;
  violations : int;  (** (trace, property) violation pairs *)
  live : int;  (** live monitor instances across traces *)
  tripped : int;  (** monitor instances retired by violation *)
  retired_admissible : int;  (** retired admissible-forever *)
  events_per_s : float option;  (** when an elapsed time was supplied *)
}

type prop_summary = {
  prop : Registry.prop;
  vacuous : bool;
  trips : int;  (** traces on which this property tripped *)
}

type row = {
  trace : string;
  trace_events : int;
  verdicts : (Registry.prop * Engine.verdict) list;
}

type engine_metrics = {
  m_events : int;
  m_chunks : int;  (** [Engine.feed]/[step] calls observed *)
  m_retired_tripped : int;
  m_retired_admissible : int;
  m_live : int;
  m_vacuous : int;
  m_registry_props : int;
  m_distinct_monitors : int;
  m_hashcons_hits : int;
  m_chunk_latency_count : int;  (** chunk-latency histogram count *)
  m_chunk_latency_sum_ns : int;  (** chunk-latency histogram sum *)
  m_minor_words : int;  (** minor words allocated across observed chunks *)
}
(** Telemetry snapshot attached to a report when {!Sl_obs.Obs} was
    enabled during the run; surfaces in JSON as ["engine_metrics"]. *)

type report = {
  counters : counters;
  prop_summaries : prop_summary list;
  rows : row list;
  engine_metrics : engine_metrics option;
      (** [Some] iff observability was enabled when {!make} ran —
          absent otherwise so disabled-mode JSON is byte-identical to
          the pre-telemetry schema. *)
}

val make :
  registry:Registry.t -> engine:Engine.t -> trace_name:(int -> string) ->
  ?elapsed_s:float -> unit -> report

val of_session : ?elapsed_s:float -> Session.t -> unit -> report
(** {!make} over a session's registry, engine and interner — trace
    names come from {!Ingest.name}, so a restored session reports the
    original external trace ids. *)

val verdict_to_string : Engine.verdict -> string

val pp_text : Format.formatter -> report -> unit
(** Human-readable rendering; ends with a stable one-line
    [summary: traces=... events=...] record (CI greps it). *)

val to_json : report -> string
(** Schema [sl-monitor-report/1]; hand-rolled like the bench trajectory
    writer, no JSON dependency. *)
