type counters = {
  traces : int;
  events : int;
  props : int;
  distinct_monitors : int;
  vacuous_props : int;
  violations : int;
  live : int;
  tripped : int;
  retired_admissible : int;
  events_per_s : float option;
}

type prop_summary = {
  prop : Registry.prop;
  vacuous : bool;
  trips : int;
}

type row = {
  trace : string;
  trace_events : int;
  verdicts : (Registry.prop * Engine.verdict) list;
}

type engine_metrics = {
  m_events : int;
  m_chunks : int;
  m_retired_tripped : int;
  m_retired_admissible : int;
  m_live : int;
  m_vacuous : int;
  m_registry_props : int;
  m_distinct_monitors : int;
  m_hashcons_hits : int;
  m_chunk_latency_count : int;
  m_chunk_latency_sum_ns : int;
  m_minor_words : int;
}

type report = {
  counters : counters;
  prop_summaries : prop_summary list;
  rows : row list;
  engine_metrics : engine_metrics option;
}

(* Snapshot the Sl_obs engine/registry metrics into a report-attachable
   record. Engine/registry state supplies the structural numbers; the
   observability kernel supplies what only it can see (chunk latency,
   allocation). Meaningful only while Sl_obs is enabled — counters read 0
   otherwise, which is why [make] attaches this snapshot conditionally. *)
let engine_metrics_now ~registry ~engine =
  let module Obs = Sl_obs.Obs in
  let v name = Option.value ~default:0 (Obs.Metrics.value name) in
  let hcount, hsum =
    match Obs.Metrics.histogram_stats "engine_chunk_latency_ns" with
    | Some (c, s) -> (c, s)
    | None -> (0, 0)
  in
  let rs = Registry.stats registry in
  { m_events = Engine.events engine;
    m_chunks = v "engine_chunks_total";
    m_retired_tripped = Engine.tripped engine;
    m_retired_admissible = Engine.retired_admissible engine;
    m_live = Engine.live engine;
    m_vacuous = Engine.nvacuous engine;
    m_registry_props = rs.Registry.props;
    m_distinct_monitors = rs.Registry.distinct_monitors;
    m_hashcons_hits = rs.Registry.hashcons_hits;
    m_chunk_latency_count = hcount;
    m_chunk_latency_sum_ns = hsum;
    m_minor_words = v "engine_minor_words_total" }

let make ~registry ~engine ~trace_name ?elapsed_s () =
  let props = Registry.props registry in
  let ntr = Engine.ntraces engine in
  let rows =
    List.init ntr (fun tr ->
        { trace = trace_name tr;
          trace_events = Engine.trace_events engine tr;
          verdicts =
            List.map
              (fun (p : Registry.prop) ->
                (p, Engine.verdict engine ~trace:tr ~monitor:p.Registry.monitor))
              props })
  in
  let prop_summaries =
    List.map
      (fun (p : Registry.prop) ->
        let vacuous =
          (Registry.monitors registry).(p.Registry.monitor).Packed_dfa.vacuous
        in
        let trips =
          List.fold_left
            (fun acc row ->
              match List.assq p row.verdicts with
              | Engine.Violation _ -> acc + 1
              | _ -> acc)
            0 rows
        in
        { prop = p; vacuous; trips })
      props
  in
  let violations =
    List.fold_left (fun acc s -> acc + s.trips) 0 prop_summaries
  in
  let events = Engine.events engine in
  let counters =
    { traces = ntr; events; props = Registry.nprops registry;
      distinct_monitors = Registry.nmonitors registry;
      vacuous_props =
        List.length (List.filter (fun s -> s.vacuous) prop_summaries);
      violations; live = Engine.live engine; tripped = Engine.tripped engine;
      retired_admissible = Engine.retired_admissible engine;
      events_per_s =
        (match elapsed_s with
        | Some dt when dt > 0. -> Some (float_of_int events /. dt)
        | _ -> None) }
  in
  let engine_metrics =
    if Sl_obs.Obs.is_enabled () then Some (engine_metrics_now ~registry ~engine)
    else None
  in
  { counters; prop_summaries; rows; engine_metrics }

let of_session ?elapsed_s session () =
  let ingest = Session.ingest session in
  make ~registry:(Session.registry session) ~engine:(Session.engine session)
    ~trace_name:(Ingest.name ingest) ?elapsed_s ()

let verdict_to_string = function
  | Engine.Vacuous -> "vacuous"
  | Engine.Admissible -> "admissible"
  | Engine.Violation { position } ->
      Printf.sprintf "VIOLATION at event %d" position

let pp_text fmt r =
  let c = r.counters in
  Format.fprintf fmt "@[<v>props: %d loaded, %d distinct monitor(s), %d \
                      vacuous (pure liveness)@,"
    c.props c.distinct_monitors c.vacuous_props;
  List.iter
    (fun s ->
      if s.vacuous then
        Format.fprintf fmt "  unmonitorable (liveness): %s@,"
          s.prop.Registry.name)
    r.prop_summaries;
  List.iter
    (fun row ->
      let nviol =
        List.length
          (List.filter
             (fun (_, v) ->
               match v with Engine.Violation _ -> true | _ -> false)
             row.verdicts)
      in
      Format.fprintf fmt "trace %s: %d event(s), %d violation(s)@."
        row.trace row.trace_events nviol;
      List.iter
        (fun ((p : Registry.prop), v) ->
          match v with
          | Engine.Violation { position } ->
              Format.fprintf fmt "  VIOLATION %s at event %d@."
                p.Registry.name position
          | _ -> ())
        row.verdicts)
    r.rows;
  Format.fprintf fmt
    "summary: traces=%d events=%d props=%d monitors=%d violations=%d \
     vacuous=%d live=%d tripped=%d retired_admissible=%d%s@]@."
    c.traces c.events c.props c.distinct_monitors c.violations
    c.vacuous_props c.live c.tripped c.retired_admissible
    (match c.events_per_s with
    | Some r -> Printf.sprintf " events_per_s=%.0f" r
    | None -> "")

let json_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | ch when Char.code ch < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code ch))
      | ch -> Buffer.add_char buf ch)
    s;
  Buffer.contents buf

let verdict_json = function
  | Engine.Vacuous -> {|{"verdict": "vacuous"}|}
  | Engine.Admissible -> {|{"verdict": "admissible"}|}
  | Engine.Violation { position } ->
      Printf.sprintf {|{"verdict": "violation", "position": %d}|} position

let to_json r =
  let buf = Buffer.create 1024 in
  let p fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let c = r.counters in
  p "{\n";
  p "  \"schema\": \"sl-monitor-report/1\",\n";
  p "  \"counters\": {\"traces\": %d, \"events\": %d, \"props\": %d, \
     \"distinct_monitors\": %d, \"violations\": %d, \"vacuous\": %d, \
     \"live\": %d, \"tripped\": %d, \"retired_admissible\": %d%s},\n"
    c.traces c.events c.props c.distinct_monitors c.violations
    c.vacuous_props c.live c.tripped c.retired_admissible
    (match c.events_per_s with
    | Some r -> Printf.sprintf ", \"events_per_s\": %.1f" r
    | None -> "");
  (* Present only when the run had observability enabled, so disabled-mode
     output stays byte-identical to the pre-telemetry schema. *)
  (match r.engine_metrics with
  | None -> ()
  | Some m ->
      p "  \"engine_metrics\": {\"events\": %d, \"chunks\": %d, \
         \"retired_tripped\": %d, \"retired_admissible\": %d, \"live\": %d, \
         \"vacuous\": %d, \"registry_props\": %d, \"distinct_monitors\": %d, \
         \"hashcons_hits\": %d, \"chunk_latency_count\": %d, \
         \"chunk_latency_sum_ns\": %d, \"minor_words_total\": %d},\n"
        m.m_events m.m_chunks m.m_retired_tripped m.m_retired_admissible
        m.m_live m.m_vacuous m.m_registry_props m.m_distinct_monitors
        m.m_hashcons_hits m.m_chunk_latency_count m.m_chunk_latency_sum_ns
        m.m_minor_words);
  p "  \"props\": [\n";
  List.iteri
    (fun i s ->
      p "    {\"name\": \"%s\", \"monitor\": %d, \"vacuous\": %b, \
         \"trips\": %d}%s\n"
        (json_escape s.prop.Registry.name)
        s.prop.Registry.monitor s.vacuous s.trips
        (if i = List.length r.prop_summaries - 1 then "" else ","))
    r.prop_summaries;
  p "  ],\n";
  p "  \"traces\": [\n";
  List.iteri
    (fun i row ->
      p "    {\"name\": \"%s\", \"events\": %d, \"verdicts\": [%s]}%s\n"
        (json_escape row.trace) row.trace_events
        (String.concat ", "
           (List.map
              (fun ((pr : Registry.prop), v) ->
                Printf.sprintf {|{"prop": "%s", %s|}
                  (json_escape pr.Registry.name)
                  (* splice the verdict fields into the same object *)
                  (let s = verdict_json v in
                   String.sub s 1 (String.length s - 1)))
              row.verdicts))
        (if i = List.length r.rows - 1 then "" else ","))
    r.rows;
  p "  ]\n";
  p "}\n";
  Buffer.contents buf
