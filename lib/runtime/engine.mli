(** The streaming monitoring engine: M compiled monitors over N
    concurrent traces.

    Per-trace monitor state is packed in [int array]s (one current DFA
    state per distinct monitor, a compact live list, a trip-position
    array); the per-event step is a flat-array walk over the live
    monitors with no allocation. Monitors retire early — on trip
    (violation is irrevocable), and as admissible-forever once no
    rejecting state is reachable from their current state; vacuous
    (pure-liveness) monitors never enter the live list at all. *)

type verdict =
  | Vacuous
      (** the property's safety part is universal: no finite prefix can
          ever be rejected (unmonitorable liveness) *)
  | Admissible  (** no bad prefix seen (so far, or provably ever) *)
  | Violation of { position : int }
      (** tripped at the [position]-th event of the trace (1-based; [0]
          for the empty property, whose empty prefix is already bad) *)

type t

type plan
(** The immutable compiled plan: monitors, alphabet, the derived
    vacuous/pre-tripped census, and the fused transition megatable
    ({!Packed_dfa.fuse}) the step loops walk — one contiguous array
    with per-monitor base offsets, so the per-event inner loop reads a
    single cache-friendly table instead of chasing M monitor records.
    A pure function of the registry's compiled monitors — shareable
    across engines and never mutated by a run, which is what lets the
    session layer snapshot only the mutable run state and re-attach it
    to a plan recompiled elsewhere; per-trace states, the session
    codec, and reload carry-over keep indexing monitors by their
    unchanged canonical keys. *)

val plan_of_monitors : Packed_dfa.t array -> plan
(** All monitors must share an alphabet (the registry guarantees this).
    @raise Invalid_argument otherwise. *)

val of_plan : ?jobs:int -> ?threshold:int -> plan -> t
(** A fresh run (no traces, zero counters) over [plan]. [jobs] and
    [threshold] as in {!create}. *)

val plan : t -> plan
val plan_monitors : plan -> Packed_dfa.t array
val plan_alphabet : plan -> int

val create :
  ?jobs:int -> ?threshold:int -> monitors:Packed_dfa.t array -> unit -> t
(** [plan_of_monitors] composed with [of_plan].
    @raise Invalid_argument if the monitors disagree on alphabet.

    [jobs] (default {!Sl_core.Pool.default_jobs}) sets the engine's
    domain-pool width: {!feed} chunks shard their traces across [jobs]
    domains ([trace id mod jobs], so a trace's events never leave its
    shard) with per-shard counters merged deterministically after the
    join. Verdicts, bad-prefix positions and counters are byte-identical
    at every [jobs]; [jobs = 1] runs the exact sequential loop.

    [threshold] (default [65536]) is the work-size cutoff: a {!feed}
    chunk of fewer events than this steps sequentially even on a
    multi-domain engine, since stepping an event costs tens of
    nanoseconds and the per-feed domain spawn only amortizes over tens
    of thousands of them. Never changes verdicts or counters. *)

val step : t -> trace:int -> symbol:int -> unit
(** Feed one event. Trace ids are dense nonnegative ints (see
    [Ingest]); a fresh id allocates its packed state block on first
    use. @raise Invalid_argument if the symbol is outside the
    alphabet. *)

val feed :
  t -> ?off:int -> n:int -> traces:int array -> symbols:int array ->
  unit -> unit
(** Batched ingestion of [n] events from parallel arrays
    [traces.(off..)] / [symbols.(off..)] — the chunk shape produced by
    [Ingest]. Equivalent to [n] calls to {!step}, without per-event
    call/option overhead. *)

val verdict : t -> trace:int -> monitor:int -> verdict
(** Current verdict of a distinct monitor on a trace (never-seen traces
    report the fresh verdict). Property-level verdicts go through
    [Registry.monitor_of_prop]. *)

val reset : t -> unit
(** Reset all known traces to the initial state, in place (no
    allocation); counters restart from zero. *)

(** {1 Incremental verdict hook}

    The serving layer's window into the run: retirements surface as
    they happen instead of only in the EOF report. *)

val set_retire_hook :
  t ->
  (trace:int -> monitor:int -> position:int -> tripped:bool -> unit) option ->
  unit
(** Install (or clear) a callback fired once per (trace, distinct
    monitor) retirement: [tripped = true] for a violation ([position]
    is the 1-based shortest-bad-prefix position), [false] for
    admissible-forever ([position] is the event at which no rejecting
    state remained reachable). Each monitor instance retires at most
    once ever, so the hook fires at most [ntraces * nmonitors] times
    over a run. Pre-tripped (empty-property) monitors and vacuous
    monitors never pass through the hook — they retire at trace
    materialization, not at a step; callers see them in the plan.

    Ordering: the sequential path fires the hook in exact event order.
    The sharded parallel feed buffers retirements per shard during the
    run and replays them after the join, shard 0 first — deterministic
    for a given [jobs], chronological within each trace (a trace never
    leaves its shard). The hook must not call back into the engine's
    stepping API. Restoring a snapshot fires no hooks. *)

(** {1 Metrics counters} *)

val nmonitors : t -> int
val jobs : t -> int
(** The pool width this engine was created with. *)

val ntraces : t -> int
val events : t -> int
(** Events ingested since creation/reset. *)

val trace_events : t -> int -> int
val live : t -> int
(** Live (still undecided) monitor instances across all traces. *)

val tripped : t -> int
(** Monitor instances retired by violation. *)

val retired_admissible : t -> int
(** Monitor instances retired admissible-forever. *)

val nvacuous : t -> int
(** Vacuous monitors (per trace; they are never instantiated live). *)

(** {1 Introspection census}

    Exact counts derived from the trace table itself (not the
    process-local telemetry counters), so they square with the offline
    report even after a [--resume] — the serving layer's [/monitors]
    and [/traces] endpoints read these. *)

type monitor_counts = {
  mc_live : int;  (** traces where this monitor is still undecided *)
  mc_tripped : int;  (** traces where it retired by violation *)
  mc_retired : int;  (** traces where it retired admissible-forever *)
}

val monitor_counts : t -> monitor_counts array
(** One entry per distinct monitor, over every materialized trace.
    Vacuous monitors count all-zero (they are never instantiated).
    O(ntraces x nmonitors). *)

val trace_summary : t -> int -> (int * int * int) option
(** [(events, live, tripped)] for a materialized trace id, [None]
    otherwise. Allocation-light ([export_trace] copies state out;
    this only counts). *)

(** {1 Run-state externalization}

    The session codec's view of a run: per-trace packed state as plain
    arrays, plus the engine-global counters. Exporting copies out of the
    engine; restoring validates every field against the plan before
    touching engine state, so a corrupted snapshot can never leave the
    engine in a state the run loop couldn't have produced. *)

type trace_state = {
  ts_events : int;  (** events this trace has seen *)
  ts_states : int array;  (** current DFA state per monitor (length M) *)
  ts_live : int array;
      (** live monitor indices in live-list order — order matters for
          byte-identical continuation *)
  ts_tripped_at : int array;
      (** trip position per monitor, [-1] if not tripped (length M) *)
}

val export_trace : t -> int -> trace_state option
(** [None] for ids the engine has never materialized. *)

val restore_trace : t -> int -> trace_state -> unit
(** Materialize trace [id] and overwrite its state. Validates lengths
    against the monitor count, states against each monitor's state
    count, trip positions against the event count, and the live list
    for range/duplicates/consistency with [ts_tripped_at].
    @raise Invalid_argument on any inconsistency.

    Restore traces {e first}, then {!set_counters}: materializing a
    trace counts pre-tripped monitors into the engine's [tripped]
    counter, which [set_counters] then overwrites with the snapshot's
    totals. *)

val set_counters :
  t -> events:int -> tripped:int -> retired_admissible:int -> unit
(** Overwrite the engine-global counters with a snapshot's totals.
    @raise Invalid_argument if any is negative. *)
