(* Trace ingestion: the line protocol is one event per line,

     trace-id symbol

   where trace-id is any whitespace-free token and symbol a letter index
   in [0, alphabet). Blank lines and '#' comments are skipped. Trace ids
   are interned to the dense ints the engine indexes by. *)

module Obs = Sl_obs.Obs

(* Pipeline-stage timing: time spent splitting/validating lines between
   chunk flushes (the engine-feed stage is timed by [Engine.feed]
   itself). Recorded once per chunk — the per-line loop never reads the
   clock. The same family is recorded by [Sl_serve.Conn] for the
   socket path. *)
let h_stage_parse =
  Obs.Metrics.histogram
    ~help:"Pipeline stage: line parse/accumulate latency per chunk"
    "stage_ingest_parse_ns"

type t = {
  tbl : (string, int) Hashtbl.t;
  mutable names : string array;
  mutable n : int;
}

let create () = { tbl = Hashtbl.create 64; names = [||]; n = 0 }

let ntraces t = t.n

let name t id =
  if id < 0 || id >= t.n then invalid_arg "Ingest.name";
  t.names.(id)

let names t = Array.sub t.names 0 t.n

let intern t s =
  match Hashtbl.find_opt t.tbl s with
  | Some id -> id
  | None ->
      if t.n = Array.length t.names then begin
        let cap = max 8 (2 * t.n) in
        let a = Array.make cap s in
        Array.blit t.names 0 a 0 t.n;
        t.names <- a
      end;
      let id = t.n in
      t.names.(id) <- s;
      t.n <- id + 1;
      Hashtbl.add t.tbl s id;
      id

let is_space c = c = ' ' || c = '\t' || c = '\r'

let split_fields s =
  let n = String.length s in
  let fields = ref [] in
  let i = ref 0 in
  while !i < n do
    while !i < n && is_space s.[!i] do incr i done;
    if !i < n then begin
      let start = !i in
      while !i < n && not (is_space s.[!i]) do incr i done;
      fields := String.sub s start (!i - start) :: !fields
    end
  done;
  List.rev !fields

type error = {
  e_line : int;
  e_trace : string option;
  e_reason : string;
}

let error_to_string e =
  match e.e_trace with
  | Some t -> Printf.sprintf "line %d (trace %s): %s" e.e_line t e.e_reason
  | None -> Printf.sprintf "line %d: %s" e.e_line e.e_reason

let parse_line line =
  match split_fields line with
  | [] -> `Skip
  | field :: _ when String.length field > 0 && field.[0] = '#' -> `Skip
  | [ trace; sym ] -> (
      match int_of_string_opt sym with
      | Some symbol when symbol >= 0 -> `Event (trace, symbol)
      | Some _ -> `Malformed (Some trace, "negative symbol")
      | None ->
          `Malformed
            (Some trace, Printf.sprintf "symbol %S is not an integer" sym))
  | [ trace ] ->
      `Malformed (Some trace, "expected \"trace-id symbol\", got one field")
  | trace :: _ ->
      `Malformed (Some trace, "expected \"trace-id symbol\", got extra fields")

type chunk = {
  mutable len : int;
  trace_ids : int array;
  symbols : int array;
}

let create_chunk size =
  if size <= 0 then invalid_arg "Ingest.create_chunk";
  { len = 0; trace_ids = Array.make size 0; symbols = Array.make size 0 }

(* Pull-based core so tests can drive it from a list; [read_channel]
   wraps an [in_channel]. The single chunk buffer is reused across
   flushes — steady-state ingestion allocates only on new trace ids. *)
let read ?(chunk_size = 4096) ~alphabet t ~next_line ~on_chunk ~on_error =
  let chunk = create_chunk chunk_size in
  (* Parse-stage mark: set when a chunk starts filling under an enabled
     kernel, observed (as the chunk's accumulated parse time) at flush.
     NaN = no mark, so a kernel enabled mid-read just skips the first
     partial observation. *)
  let mark = ref (if Obs.is_enabled () then Obs.Clock.now_us () else nan) in
  let flush () =
    if chunk.len > 0 then begin
      if Obs.is_enabled () && not (Float.is_nan !mark) then
        Obs.Metrics.observe h_stage_parse
          (int_of_float ((Obs.Clock.now_us () -. !mark) *. 1e3));
      on_chunk chunk;
      chunk.len <- 0;
      mark := (if Obs.is_enabled () then Obs.Clock.now_us () else nan)
    end
  in
  let lineno = ref 0 in
  let continue = ref true in
  while !continue do
    match next_line () with
    | None -> continue := false
    | Some line -> (
        incr lineno;
        match parse_line line with
        | `Skip -> ()
        | `Malformed (trace, reason) ->
            on_error { e_line = !lineno; e_trace = trace; e_reason = reason }
        | `Event (trace, symbol) when symbol >= alphabet ->
            on_error
              { e_line = !lineno; e_trace = Some trace;
                e_reason =
                  Printf.sprintf "symbol %d outside alphabet [0, %d)" symbol
                    alphabet }
        | `Event (trace, symbol) ->
            chunk.trace_ids.(chunk.len) <- intern t trace;
            chunk.symbols.(chunk.len) <- symbol;
            chunk.len <- chunk.len + 1;
            if chunk.len = chunk_size then flush ())
  done;
  flush ()

let read_channel ?chunk_size ~alphabet t ic ~on_chunk ~on_error =
  read ?chunk_size ~alphabet t
    ~next_line:(fun () ->
      match input_line ic with
      | line -> Some line
      | exception End_of_file -> None)
    ~on_chunk ~on_error
