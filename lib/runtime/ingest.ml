(* Trace ingestion: the line protocol is one event per line,

     trace-id symbol

   where trace-id is any whitespace-free token and symbol a decimal
   letter index in [0, alphabet). Blank lines and '#' comments are
   skipped. Trace ids are interned to the dense ints the engine indexes
   by.

   Two parsers share these semantics. [parse_line]/[read] is the
   retained reference: it materializes a string per line and per field,
   which is simple and obviously correct but costs several minor-heap
   allocations per event. The zero-copy scanner ([scan_line] and the
   incremental [scanner]) walks the raw read buffer in place: token
   bounds are byte offsets, symbols parse with a strict decimal digit
   loop, and trace-id interning probes a hash computed over the byte
   slice — a string is materialized only on first sight of a new id (or
   on the cold error path). The QCheck pin in test_runtime holds the
   two byte-for-byte equal over hostile streams at every block
   boundary. *)

module Obs = Sl_obs.Obs

(* Pipeline-stage timing: time spent splitting/validating lines between
   chunk flushes (the engine-feed stage is timed by [Engine.feed]
   itself). Recorded once per chunk — the per-line loop never reads the
   clock. The same family is recorded by [Sl_serve.Conn] for the
   socket path. *)
let h_stage_parse =
  Obs.Metrics.histogram
    ~help:"Pipeline stage: line parse/accumulate latency per chunk"
    "stage_ingest_parse_ns"

(* --- Interner ---

   Open-addressed hash table over byte slices: [slots] holds id+1 (0 =
   empty) at positions probed from an FNV-1a hash of the id's bytes,
   resolved by content comparison against [names]. Lookups of known ids
   allocate nothing — the point of the zero-copy path — and [intern] on
   a whole string is the same probe. *)
type t = {
  mutable names : string array;  (* id -> name, dense in [0, n) *)
  mutable n : int;
  mutable slots : int array;  (* open addressing: 0 = empty, else id+1 *)
  mutable mask : int;  (* Array.length slots - 1, power of two minus 1 *)
  mutable r_sym : int;
      (* symbol of the last event [scan_event] accepted — an out-param
         cell so the hot path returns two ints without allocating *)
}

let create () =
  { names = [||]; n = 0; slots = Array.make 64 0; mask = 63; r_sym = 0 }

let ntraces t = t.n

let name t id =
  if id < 0 || id >= t.n then invalid_arg "Ingest.name";
  t.names.(id)

let names t = Array.sub t.names 0 t.n

(* FNV-1a over a byte slice, truncated to a nonnegative OCaml int. *)
let hash_slice s off len =
  let h = ref 0x811c9dc5 in
  for i = off to off + len - 1 do
    h := (!h lxor Char.code (String.unsafe_get s i)) * 0x01000193
  done;
  !h land max_int

let eq_slice name s off len =
  let i = ref 0 in
  while !i < len && String.unsafe_get name !i = String.unsafe_get s (off + !i)
  do
    incr i
  done;
  !i = len

(* Index of the slot holding the slice's id, or of the first empty slot
   of its probe sequence. The table is kept under half full, so the
   probe terminates. *)
let find_slot t s off len h =
  let mask = t.mask in
  let i = ref (h land mask) in
  let res = ref (-1) in
  while !res < 0 do
    let v = Array.unsafe_get t.slots !i in
    if v = 0 then res := !i
    else begin
      let nm = Array.unsafe_get t.names (v - 1) in
      if String.length nm = len && eq_slice nm s off len then res := !i
      else i := (!i + 1) land mask
    end
  done;
  !res

let rehash t =
  let ncap = 2 * (t.mask + 1) in
  let slots = Array.make ncap 0 in
  let mask = ncap - 1 in
  for id = 0 to t.n - 1 do
    let nm = t.names.(id) in
    let i = ref (hash_slice nm 0 (String.length nm) land mask) in
    while slots.(!i) <> 0 do
      i := (!i + 1) land mask
    done;
    slots.(!i) <- id + 1
  done;
  t.slots <- slots;
  t.mask <- mask

let intern_slice_h t s off len h =
  let slot = find_slot t s off len h in
  let v = t.slots.(slot) in
  if v <> 0 then v - 1
  else begin
    (* first sight: materialize the id exactly once *)
    let str = String.sub s off len in
    if t.n = Array.length t.names then begin
      let cap = max 8 (2 * t.n) in
      (* spare capacity holds a shared empty string — a placeholder
         like [str] would pin an arbitrary trace id alive for as long
         as the slot stays spare *)
      let a = Array.make cap "" in
      Array.blit t.names 0 a 0 t.n;
      t.names <- a
    end;
    let id = t.n in
    t.names.(id) <- str;
    t.n <- id + 1;
    t.slots.(slot) <- id + 1;
    if 2 * t.n >= t.mask + 1 then rehash t;
    id
  end

let intern_slice t s off len = intern_slice_h t s off len (hash_slice s off len)
let intern t s = intern_slice t s 0 (String.length s)

(* First '\n' in [s[off], s[stop])], or -1 — C memchr, word-at-a-time
   where the OCaml byte loop is not. The explicit [stop] bound makes it
   safe on a reusable read buffer whose bytes beyond the fill are
   stale. *)
external find_newline : string -> int -> int -> int = "sl_ingest_memchr_nl"
[@@noalloc]

(* One L1-resident load instead of three compare-branches — this test
   runs for every byte of every token walk. *)
let space_tbl =
  let b = Bytes.make 256 '\000' in
  Bytes.set b (Char.code ' ') '\001';
  Bytes.set b (Char.code '\t') '\001';
  Bytes.set b (Char.code '\r') '\001';
  Bytes.unsafe_to_string b

let is_space c = String.unsafe_get space_tbl (Char.code c) <> '\000'

let split_fields s =
  let n = String.length s in
  let fields = ref [] in
  let i = ref 0 in
  while !i < n do
    while !i < n && is_space s.[!i] do incr i done;
    if !i < n then begin
      let start = !i in
      while !i < n && not (is_space s.[!i]) do incr i done;
      fields := String.sub s start (!i - start) :: !fields
    end
  done;
  List.rev !fields

type error = {
  e_line : int;
  e_trace : string option;
  e_reason : string;
}

let error_to_string e =
  match e.e_trace with
  | Some t -> Printf.sprintf "line %d (trace %s): %s" e.e_line t e.e_reason
  | None -> Printf.sprintf "line %d: %s" e.e_line e.e_reason

(* Strict decimal symbol parse over a slice: an optional '-' followed by
   digits only. Unlike [int_of_string_opt] this rejects the 0x/0o/0b
   radix prefixes and '_' separators ("0x10", "0b1", "1_000" are
   protocol errors, not symbols), and a leading '+'. Returns the value,
   or distinguishes the negative case (a well-formed number the protocol
   forbids) from garbage; overflow reads as garbage, matching what
   [int_of_string_opt] reported before. *)
type symbol_parse = Sym of int | Sym_negative | Sym_garbage

(* v*10 + c overflows iff v > max_int/10, or v = max_int/10 and
   c > max_int mod 10 — both bounds are compile-time constants, so the
   digit loop is division-free. *)
let overflow_div = max_int / 10
let overflow_rem = max_int mod 10

(* Allocation-free core: the value, or [-1] for garbage (non-digits,
   empty, overflow), [-2] for a well-formed negative number. *)
let parse_symbol_raw s off len =
  let neg = len > 0 && String.unsafe_get s off = '-' in
  let start = if neg then off + 1 else off in
  let stop = off + len in
  if start >= stop then -1
  else begin
    let v = ref 0 in
    let ok = ref true in
    let i = ref start in
    while !ok && !i < stop do
      let c = Char.code (String.unsafe_get s !i) - Char.code '0' in
      if c < 0 || c > 9 then ok := false
      else if !v > overflow_div || (!v = overflow_div && c > overflow_rem)
      then ok := false  (* overflow *)
      else begin
        v := (!v * 10) + c;
        incr i
      end
    done;
    if not !ok then -1 else if neg then -2 else !v
  end

let parse_symbol s off len =
  match parse_symbol_raw s off len with
  | -1 -> Sym_garbage
  | -2 -> Sym_negative
  | v -> Sym v

let parse_line line =
  match split_fields line with
  | [] -> `Skip
  | field :: _ when String.length field > 0 && field.[0] = '#' -> `Skip
  | [ trace; sym ] -> (
      match parse_symbol sym 0 (String.length sym) with
      | Sym symbol -> `Event (trace, symbol)
      | Sym_negative -> `Malformed (Some trace, "negative symbol")
      | Sym_garbage ->
          `Malformed
            (Some trace, Printf.sprintf "symbol %S is not an integer" sym))
  | [ trace ] ->
      `Malformed (Some trace, "expected \"trace-id symbol\", got one field")
  | trace :: _ ->
      `Malformed (Some trace, "expected \"trace-id symbol\", got extra fields")

type chunk = {
  mutable len : int;
  trace_ids : int array;
  symbols : int array;
}

let create_chunk size =
  if size <= 0 then invalid_arg "Ingest.create_chunk";
  { len = 0; trace_ids = Array.make size 0; symbols = Array.make size 0 }

(* --- Zero-copy line scan ---

   One line as a byte slice [off, off+len) of [s]: find the two token
   bounds in place, parse the symbol with the strict digit loop, and
   only touch the allocator on the cold paths — a new trace id
   (interned once) or an error (the reported trace/symbol strings are
   materialized for the record). The alphabet check happens before the
   intern, so a rejected line never grows the interner — the reference
   [read] loop has the same property, which the byte-identity of
   session snapshots depends on. *)
let scan_line t ~alphabet s off len =
  let stop = off + len in
  let i = ref off in
  while !i < stop && is_space (String.unsafe_get s !i) do incr i done;
  if !i = stop then `Skip
  else begin
    let t0 = !i in
    while !i < stop && not (is_space (String.unsafe_get s !i)) do incr i done;
    let t1 = !i in
    if String.unsafe_get s t0 = '#' then `Skip
    else begin
      while !i < stop && is_space (String.unsafe_get s !i) do incr i done;
      if !i = stop then
        `Error
          ( Some (String.sub s t0 (t1 - t0)),
            "expected \"trace-id symbol\", got one field" )
      else begin
        let s0 = !i in
        while !i < stop && not (is_space (String.unsafe_get s !i)) do
          incr i
        done;
        let s1 = !i in
        while !i < stop && is_space (String.unsafe_get s !i) do incr i done;
        if !i < stop then
          `Error
            ( Some (String.sub s t0 (t1 - t0)),
              "expected \"trace-id symbol\", got extra fields" )
        else
          match parse_symbol_raw s s0 (s1 - s0) with
          | -2 -> `Error (Some (String.sub s t0 (t1 - t0)), "negative symbol")
          | -1 ->
              `Error
                ( Some (String.sub s t0 (t1 - t0)),
                  Printf.sprintf "symbol %S is not an integer"
                    (String.sub s s0 (s1 - s0)) )
          | symbol ->
              if symbol >= alphabet then
                `Error
                  ( Some (String.sub s t0 (t1 - t0)),
                    Printf.sprintf "symbol %d outside alphabet [0, %d)" symbol
                      alphabet )
              else `Event (intern_slice t s t0 (t1 - t0), symbol)
      end
    end
  end

(* The allocation-free fast path over the same slice: accept exactly the
   lines [scan_line] answers [`Event] for, returning the interned trace
   id with the symbol parked in [scanned_symbol] — two ints, no heap.
   Anything else (blank, comment, malformed, out-of-alphabet) is [-1]:
   the caller re-scans with [scan_line] for the exact skip/error result,
   a cold path that touches neither the interner nor the chunk.

   One fused pass over the bytes: the trace-id walk folds the FNV-1a
   interner hash in as it finds the token bound, and the symbol walk
   accumulates the decimal value instead of finding bounds first and
   parsing second — no byte is read twice. *)
let scan_event t ~alphabet s off len =
  let stop = off + len in
  let i = ref off in
  while !i < stop && is_space (String.unsafe_get s !i) do incr i done;
  if !i = stop then -1
  else begin
    let t0 = !i in
    let h = ref 0x811c9dc5 in
    while !i < stop && not (is_space (String.unsafe_get s !i)) do
      h := (!h lxor Char.code (String.unsafe_get s !i)) * 0x01000193;
      incr i
    done;
    let t1 = !i in
    if String.unsafe_get s t0 = '#' then -1
    else begin
      while !i < stop && is_space (String.unsafe_get s !i) do incr i done;
      if !i = stop then -1  (* one field *)
      else begin
        (* [t0 < stop] and [s.[!i]] is non-space, so the digit loop
           always examines at least one byte: [ok] with zero digits is
           impossible. A non-digit ('-', 'x', …) or overflow falls back
           for the exact error. *)
        let v = ref 0 in
        let ok = ref true in
        while !ok && !i < stop && not (is_space (String.unsafe_get s !i)) do
          let c = Char.code (String.unsafe_get s !i) - Char.code '0' in
          if c < 0 || c > 9 then ok := false
          else if
            !v > overflow_div || (!v = overflow_div && c > overflow_rem)
          then ok := false  (* overflow *)
          else begin
            v := (!v * 10) + c;
            incr i
          end
        done;
        if not !ok then -1
        else begin
          while !i < stop && is_space (String.unsafe_get s !i) do incr i done;
          if !i < stop then -1  (* extra fields *)
          else if !v >= alphabet then -1
          else begin
            t.r_sym <- !v;
            intern_slice_h t s t0 (t1 - t0) (!h land max_int)
          end
        end
      end
    end
  end

let scanned_symbol t = t.r_sym

(* --- Incremental scanner over raw read blocks ---

   Feeds arrive as arbitrary byte blocks; complete lines within a block
   are scanned in place, and only a line straddling a block boundary is
   buffered (in [carry]) and re-scanned from the materialized string —
   the cold path, at most once per block. Line numbers count completed
   lines, so errors cite the same 1-based positions as the reference
   reader no matter where the block boundaries fall. *)
type scanner = {
  s_ingest : t;
  s_alphabet : int;
  s_chunk : chunk;
  s_carry : Buffer.t;  (* head of a line split across blocks *)
  mutable s_lineno : int;
  s_on_chunk : chunk -> unit;
  s_on_error : error -> unit;
  mutable s_mark : float;  (* parse-stage mark; NaN = no mark *)
}

let scanner ?(chunk_size = 4096) ~alphabet t ~on_chunk ~on_error =
  {
    s_ingest = t;
    s_alphabet = alphabet;
    s_chunk = create_chunk chunk_size;
    s_carry = Buffer.create 256;
    s_lineno = 0;
    s_on_chunk = on_chunk;
    s_on_error = on_error;
    s_mark = (if Obs.is_enabled () then Obs.Clock.now_us () else nan);
  }

let scan_flush sc =
  let chunk = sc.s_chunk in
  if chunk.len > 0 then begin
    if Obs.is_enabled () && not (Float.is_nan sc.s_mark) then
      Obs.Metrics.observe h_stage_parse
        (int_of_float ((Obs.Clock.now_us () -. sc.s_mark) *. 1e3));
    sc.s_on_chunk chunk;
    chunk.len <- 0;
    sc.s_mark <- (if Obs.is_enabled () then Obs.Clock.now_us () else nan)
  end

let scan_handle sc s off len =
  sc.s_lineno <- sc.s_lineno + 1;
  let t = sc.s_ingest in
  let id = scan_event t ~alphabet:sc.s_alphabet s off len in
  if id >= 0 then begin
    let chunk = sc.s_chunk in
    Array.unsafe_set chunk.trace_ids chunk.len id;
    Array.unsafe_set chunk.symbols chunk.len t.r_sym;
    chunk.len <- chunk.len + 1;
    if chunk.len = Array.length chunk.trace_ids then scan_flush sc
  end
  else
    (* cold: blank/comment/malformed — re-scan for the exact result *)
    match scan_line t ~alphabet:sc.s_alphabet s off len with
    | `Skip -> ()
    | `Error (trace, reason) ->
        sc.s_on_error
          { e_line = sc.s_lineno; e_trace = trace; e_reason = reason }
    | `Event (id, symbol) ->
        (* unreachable: [scan_event] accepts every event line *)
        let chunk = sc.s_chunk in
        Array.unsafe_set chunk.trace_ids chunk.len id;
        Array.unsafe_set chunk.symbols chunk.len symbol;
        chunk.len <- chunk.len + 1;
        if chunk.len = Array.length chunk.trace_ids then scan_flush sc

let scan_string sc s off len =
  if off < 0 || len < 0 || off + len > String.length s then
    invalid_arg "Ingest.scan_string";
  let stop = off + len in
  let i = ref off in
  while !i < stop do
    let j = find_newline s !i stop in
    if j >= 0 then begin
      (if Buffer.length sc.s_carry = 0 then scan_handle sc s !i (j - !i)
       else begin
         (* boundary-straddling line: materialize once and re-scan *)
         Buffer.add_substring sc.s_carry s !i (j - !i);
         let line = Buffer.contents sc.s_carry in
         Buffer.clear sc.s_carry;
         scan_handle sc line 0 (String.length line)
       end);
      i := j + 1
    end
    else begin
      Buffer.add_substring sc.s_carry s !i (stop - !i);
      i := stop
    end
  done

(* The scanner never retains a reference into the block past the call
   ([intern_slice] and the error path copy what they keep), so reading
   into one reusable [Bytes.t] and scanning it in place is sound. *)
let scan_bytes sc b off len =
  if off < 0 || len < 0 || off + len > Bytes.length b then
    invalid_arg "Ingest.scan_bytes";
  scan_string sc (Bytes.unsafe_to_string b) off len

let scan_eof sc =
  if Buffer.length sc.s_carry > 0 then begin
    (* final line without a trailing newline *)
    let line = Buffer.contents sc.s_carry in
    Buffer.clear sc.s_carry;
    scan_handle sc line 0 (String.length line)
  end;
  scan_flush sc

let scan_channel ?chunk_size ?(buf_size = 65536) ~alphabet t ic ~on_chunk
    ~on_error =
  if buf_size <= 0 then invalid_arg "Ingest.scan_channel";
  let sc = scanner ?chunk_size ~alphabet t ~on_chunk ~on_error in
  let buf = Bytes.create buf_size in
  let continue = ref true in
  while !continue do
    let n = input ic buf 0 buf_size in
    if n = 0 then continue := false else scan_bytes sc buf 0 n
  done;
  scan_eof sc

(* --- Reference reader (retained) ---

   Pull-based core so tests can drive it from a list; [read_channel]
   wraps an [in_channel]. The single chunk buffer is reused across
   flushes — steady-state ingestion allocates only on new trace ids. *)
let read ?(chunk_size = 4096) ~alphabet t ~next_line ~on_chunk ~on_error =
  let chunk = create_chunk chunk_size in
  (* Parse-stage mark: set when a chunk starts filling under an enabled
     kernel, observed (as the chunk's accumulated parse time) at flush.
     NaN = no mark, so a kernel enabled mid-read just skips the first
     partial observation. *)
  let mark = ref (if Obs.is_enabled () then Obs.Clock.now_us () else nan) in
  let flush () =
    if chunk.len > 0 then begin
      if Obs.is_enabled () && not (Float.is_nan !mark) then
        Obs.Metrics.observe h_stage_parse
          (int_of_float ((Obs.Clock.now_us () -. !mark) *. 1e3));
      on_chunk chunk;
      chunk.len <- 0;
      mark := (if Obs.is_enabled () then Obs.Clock.now_us () else nan)
    end
  in
  let lineno = ref 0 in
  let continue = ref true in
  while !continue do
    match next_line () with
    | None -> continue := false
    | Some line -> (
        incr lineno;
        match parse_line line with
        | `Skip -> ()
        | `Malformed (trace, reason) ->
            on_error { e_line = !lineno; e_trace = trace; e_reason = reason }
        | `Event (trace, symbol) when symbol >= alphabet ->
            on_error
              { e_line = !lineno; e_trace = Some trace;
                e_reason =
                  Printf.sprintf "symbol %d outside alphabet [0, %d)" symbol
                    alphabet }
        | `Event (trace, symbol) ->
            chunk.trace_ids.(chunk.len) <- intern t trace;
            chunk.symbols.(chunk.len) <- symbol;
            chunk.len <- chunk.len + 1;
            if chunk.len = chunk_size then flush ())
  done;
  flush ()

let read_channel ?chunk_size ~alphabet t ic ~on_chunk ~on_error =
  read ?chunk_size ~alphabet t
    ~next_line:(fun () ->
      match input_line ic with
      | line -> Some line
      | exception End_of_file -> None)
    ~on_chunk ~on_error
