/* C stubs for the hot ingest scanner.
 *
 * sl_ingest_memchr_nl: index of the first '\n' in s[off, stop), or -1.
 * memchr is word-at-a-time (typically SIMD) where the OCaml
 * byte-at-a-time loop is not, and line splitting is the outermost pass
 * of the scan path — every ingested byte goes through it once.
 *
 * [@@noalloc] on the OCaml side: no allocation, no callbacks, no
 * exceptions — safe to call without the GC bracket.
 */

#include <caml/mlvalues.h>
#include <string.h>

CAMLprim value sl_ingest_memchr_nl(value vs, value voff, value vstop)
{
  long off = Long_val(voff);
  long stop = Long_val(vstop);
  const char *s = String_val(vs);
  const char *p;
  if (off >= stop) return Val_long(-1);
  p = (const char *)memchr(s + off, '\n', (size_t)(stop - off));
  return Val_long(p ? (long)(p - s) : -1);
}
