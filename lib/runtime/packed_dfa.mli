(** Compiled safety monitors in packed transition-table form.

    A monitor DFA (the subset automaton of the safety part's prefix
    language, see [Sl_buchi.Monitor]) is minimized, renumbered into the
    canonical BFS order, and flattened into a single [int array] indexed
    by [state * alphabet + symbol] — one array read per event, no
    per-step allocation. Because the minimal DFA is unique up to
    isomorphism and the BFS numbering fixes the isomorphism,
    language-equal monitors pack to {e identical} tables; {!key} exposes
    that identity so the registry can hash-cons monitors across
    properties. *)

type t = private {
  alphabet : int;
  nstates : int;
  trans : int array;  (** [trans.(q * alphabet + s)] is the successor *)
  accepting : bool array;
  can_trip : bool array;
      (** a rejecting state is reachable from here; once false the
          monitor is admissible forever and can be retired *)
  pre_tripped : bool;
      (** the empty prefix is already bad (the empty property) *)
  vacuous : bool;
      (** the monitor can never trip: the property's safety part is
          universal, i.e. the property is pure liveness *)
  key : string;  (** canonical identity for hash-consing *)
}

val start : int
(** Packed monitors always start in state [0]. *)

val of_buchi : Sl_buchi.Buchi.t -> t
(** Compile the monitor of a property automaton's safety part
    ([Monitor.create] then {!of_monitor}). *)

val of_monitor : Sl_buchi.Monitor.t -> t
(** Pack an already-compiled monitor's DFA. *)

val of_dfa : Sl_nfa.Dfa.t -> t
(** Pack an arbitrary prefix DFA (minimizes and canonicalizes first). *)

val step : t -> int -> int -> int
(** [step pd q s] is the packed successor lookup. *)

val is_accepting : t -> int -> bool
val can_trip : t -> int -> bool
val key : t -> string
val pp : Format.formatter -> t -> unit

val fuse : t array -> int array * int array
(** [fuse monitors] is [(mega, base)]: every monitor's transition rows
    concatenated into one contiguous array, with monitor [m]'s rows
    starting at [base.(m)]. The entry at [base.(m) + q * alphabet + s]
    is [(s' lsl 2) lor (can_trip lsl 1) lor accepting] for [s' = step
    monitors.(m) q s] — successor and verdict bits in one read, the
    layout the engine's inner loop walks. All monitors must share an
    alphabet. *)

(** {1 Serialization}

    Packed monitors round-trip through the [sl-artifact/1] format (see
    {!Sl_core.Wire}). Only the defining fields — canonical key,
    alphabet, state count, transition table, acceptance bits — are
    stored; the derived fields ([can_trip], [pre_tripped], [vacuous])
    are recomputed on decode exactly as compilation computes them, so a
    decoded monitor is field-for-field identical to a fresh compile of
    the same property. *)

val encode : Sl_core.Wire.writer -> t -> unit
(** Append the monitor's payload (no framing) to a writer — used when
    the monitor is one entry of a larger artifact (a monitor pack). *)

val decode : Sl_core.Wire.reader -> t
(** Inverse of {!encode}. Validates table shape, successor ranges and
    that the stored key is the canonical key of the stored table.
    @raise Sl_core.Wire.Corrupt on any malformed bytes. *)

val to_artifact : t -> string
(** The monitor framed as a standalone [sl-artifact/1] blob
    (kind {!Sl_core.Wire.kind_packed_dfa}). *)

val of_artifact : string -> t option
(** Decode a standalone artifact; [None] on {e any} corruption — cache
    layers treat that as a miss, never an error. *)
