(** Trace ingestion front end: the [trace-id symbol] line protocol.

    One event per line: a whitespace-free trace id followed by a strict
    decimal symbol (letter index). Blank lines and ['#'] comments are
    skipped; malformed lines are reported with their 1-based line number
    and skipped. Events are delivered to the engine in reusable batched
    chunks of parallel [int array]s.

    Two parsers share these semantics byte for byte. {!parse_line} and
    {!read} are the retained reference — a string per line and per
    field. The zero-copy path ({!scan_line}, {!scanner}) walks raw read
    blocks in place and allocates only on new trace ids and on the
    error path; it is what [slc monitor] and the serve daemon run. *)

type t
(** The trace-id interner: string ids to the dense ints the engine
    indexes traces by, in first-seen order. Internally an
    open-addressed hash table probed by a hash computed over the byte
    slice, so looking up a known id from the middle of a read buffer
    allocates nothing. *)

val create : unit -> t
val ntraces : t -> int
val name : t -> int -> string

val names : t -> string array
(** All interned trace ids in first-seen order ([names t].(id) is
    [name t id]) — the table the session codec externalizes. Re-interning
    the array in order into a fresh interner reproduces the id
    assignment exactly. *)

val intern : t -> string -> int

val intern_slice : t -> string -> int -> int -> int
(** [intern_slice t s off len] interns the byte slice [s.[off ..
    off+len-1]], materializing a string only on first sight of a new
    id. [intern t s] is [intern_slice t s 0 (String.length s)]. *)

type error = {
  e_line : int;  (** 1-based line number in the input stream *)
  e_trace : string option;
      (** the line's trace-id field when one could be recognized — a
          daemon echoes the error to the client with the trace it
          concerns, not just a line number *)
  e_reason : string;
}
(** A structured per-line ingestion defect: malformed syntax, a
    non-integer or negative symbol, or a symbol outside the alphabet.
    The offending line is skipped; the record carries everything a
    caller needs to report it (or echo it back over a socket). *)

val error_to_string : error -> string
(** ["line N (trace T): reason"] — the CLI's rendering. *)

val parse_line :
  string ->
  [ `Event of string * int  (** trace id, nonnegative symbol *)
  | `Skip  (** blank or comment *)
  | `Malformed of string option * string
    (** trace id (when recognizable) and reason *) ]
(** The reference parser. Symbols are strict decimal: digits only (an
    optional ['-'] is recognized just to report ["negative symbol"]) —
    [0x]/[0b] radix prefixes, ['_'] separators and a leading ['+'] are
    malformed, unlike [int_of_string_opt]. *)

type chunk = {
  mutable len : int;
  trace_ids : int array;
  symbols : int array;
}
(** Parallel arrays; entries [0 .. len-1] are valid. The same chunk
    value is reused across [on_chunk] calls — consume before
    returning. *)

val create_chunk : int -> chunk

(** {1 Zero-copy scanning} *)

val find_newline : string -> int -> int -> int
(** [find_newline s off stop] is the index of the first ['\n'] in
    [[off, stop)], or [-1] — C [memchr], word-at-a-time where an OCaml
    byte loop is not. The explicit [stop] bound makes it safe on a
    string view of a reusable read buffer whose bytes beyond the fill
    are stale. *)

val scan_line :
  t -> alphabet:int -> string -> int -> int ->
  [ `Event of int * int  (** interned trace id, in-alphabet symbol *)
  | `Skip
  | `Error of string option * string ]
(** Scan one line given as the byte slice [[off, off+len)] — no
    trailing newline — entirely in place: the hot path (a known trace
    id, a valid symbol) performs no allocation. Unlike {!parse_line}
    this folds in the alphabet check and the interning; the error cases
    are exactly the reference loop's, with the same reason strings, and
    a rejected line never touches the interner. *)

val scan_event : t -> alphabet:int -> string -> int -> int -> int
(** The allocation-free fast path over the same slice: accepts exactly
    the lines {!scan_line} answers [`Event] for, returning the interned
    trace id with the symbol parked in {!scanned_symbol} — two ints, no
    heap. Everything else (blank, comment, malformed, out-of-alphabet)
    is [-1], touching neither the interner nor {!scanned_symbol}; the
    caller re-scans with {!scan_line} for the exact skip/error result
    (the cold path). *)

val scanned_symbol : t -> int
(** The symbol of the last event {!scan_event} accepted. *)

type scanner
(** Incremental scanner over raw read blocks: complete lines are
    scanned in place; a line straddling a block boundary is carried
    over and re-scanned once materialized (the cold path). Line numbers
    count completed lines, independent of where the blocks split. *)

val scanner :
  ?chunk_size:int -> alphabet:int -> t ->
  on_chunk:(chunk -> unit) -> on_error:(error -> unit) -> scanner
(** Fresh scanner batching valid events into chunks of [chunk_size]
    (default 4096) flushed through [on_chunk], reporting malformed or
    out-of-alphabet lines to [on_error]. *)

val scan_string : scanner -> string -> int -> int -> unit
(** Feed the block [s.[off .. off+len-1]]. [on_chunk] fires whenever
    the chunk fills mid-block. *)

val scan_bytes : scanner -> bytes -> int -> int -> unit
(** {!scan_string} over a reusable read buffer, without copying it: the
    scanner retains nothing from the block past the call, so the caller
    may refill the buffer immediately after. *)

val scan_eof : scanner -> unit
(** End of stream: process any unterminated final line, then flush the
    remaining partial chunk. *)

val scan_channel :
  ?chunk_size:int -> ?buf_size:int -> alphabet:int -> t -> in_channel ->
  on_chunk:(chunk -> unit) -> on_error:(error -> unit) -> unit
(** Block-read the channel to EOF through a {!scanner} ([buf_size]
    bytes per read, default 65536) — the [slc monitor] ingest path.
    Event/error/interning behavior is byte-identical to {!read_channel}
    on the same stream. *)

(** {1 Reference reader} *)

val read :
  ?chunk_size:int -> alphabet:int -> t ->
  next_line:(unit -> string option) -> on_chunk:(chunk -> unit) ->
  on_error:(error -> unit) -> unit
(** Pull lines until [next_line] returns [None], batching valid events
    into chunks (default size 4096) and reporting malformed or
    out-of-alphabet lines to [on_error] as structured {!error}
    records. *)

val read_channel :
  ?chunk_size:int -> alphabet:int -> t -> in_channel ->
  on_chunk:(chunk -> unit) -> on_error:(error -> unit) ->
  unit
(** {!read} over a channel ([stdin] or an opened trace file). *)
