(** Trace ingestion front end: the [trace-id symbol] line protocol.

    One event per line: a whitespace-free trace id followed by a symbol
    (letter index). Blank lines and ['#'] comments are skipped;
    malformed lines are reported with their 1-based line number and
    skipped. Events are delivered to the engine in reusable batched
    chunks of parallel [int array]s. *)

type t
(** The trace-id interner: string ids to the dense ints the engine
    indexes traces by, in first-seen order. *)

val create : unit -> t
val ntraces : t -> int
val name : t -> int -> string

val names : t -> string array
(** All interned trace ids in first-seen order ([names t].(id) is
    [name t id]) — the table the session codec externalizes. Re-interning
    the array in order into a fresh interner reproduces the id
    assignment exactly. *)

val intern : t -> string -> int

type error = {
  e_line : int;  (** 1-based line number in the input stream *)
  e_trace : string option;
      (** the line's trace-id field when one could be recognized — a
          daemon echoes the error to the client with the trace it
          concerns, not just a line number *)
  e_reason : string;
}
(** A structured per-line ingestion defect: malformed syntax, a
    non-integer or negative symbol, or a symbol outside the alphabet.
    The offending line is skipped; the record carries everything a
    caller needs to report it (or echo it back over a socket). *)

val error_to_string : error -> string
(** ["line N (trace T): reason"] — the CLI's rendering. *)

val parse_line :
  string ->
  [ `Event of string * int  (** trace id, nonnegative symbol *)
  | `Skip  (** blank or comment *)
  | `Malformed of string option * string
    (** trace id (when recognizable) and reason *) ]

type chunk = {
  mutable len : int;
  trace_ids : int array;
  symbols : int array;
}
(** Parallel arrays; entries [0 .. len-1] are valid. The same chunk
    value is reused across [on_chunk] calls — consume before
    returning. *)

val create_chunk : int -> chunk

val read :
  ?chunk_size:int -> alphabet:int -> t ->
  next_line:(unit -> string option) -> on_chunk:(chunk -> unit) ->
  on_error:(error -> unit) -> unit
(** Pull lines until [next_line] returns [None], batching valid events
    into chunks (default size 4096) and reporting malformed or
    out-of-alphabet lines to [on_error] as structured {!error}
    records. *)

val read_channel :
  ?chunk_size:int -> alphabet:int -> t -> in_channel ->
  on_chunk:(chunk -> unit) -> on_error:(error -> unit) ->
  unit
(** {!read} over a channel ([stdin] or an opened trace file). *)
