module Wire = Sl_core.Wire
module Obs = Sl_obs.Obs

(* Session telemetry: snapshot/restore are rare, coarse operations, so
   they get spans plus whole-operation counters rather than anything on
   a hot path. *)
let m_snapshots = Obs.Metrics.counter "session_snapshots_total"
let m_restores = Obs.Metrics.counter "session_restores_total"
let h_snapshot_bytes = Obs.Metrics.histogram "session_snapshot_bytes"

(* A session owns everything mutable about one monitoring run: the
   engine's per-trace packed state and counters, and the ingest
   interner that maps external trace ids to the engine's dense ints.
   The registry is referenced, not owned — it is immutable once
   compiled, and the snapshot stores only its fingerprint. *)
type t = {
  registry : Registry.t;
  engine : Engine.t;
  ingest : Ingest.t;
}

type restore_error =
  | Fingerprint_mismatch of { snapshot : string; registry : string }
  | Corrupt of string

let create ?jobs ?threshold ~registry () =
  let plan = Engine.plan_of_monitors (Registry.monitors registry) in
  { registry;
    engine = Engine.of_plan ?jobs ?threshold plan;
    ingest = Ingest.create () }

let registry t = t.registry
let engine t = t.engine
let ingest t = t.ingest

(* Payload layout (kind_session):
     fingerprint        string    registry structural identity
     nnames             int       interner table size
     names              string*   trace ids in first-seen order
     events             int       engine-global counters
     tripped            int
     retired_admissible int
     ntraces            int       engine trace-table extent
     per trace id:      bool + (int, int array, int array, int array)
                                  present; events, states, live list
                                  (in list order), trip positions
   Re-interning [names] in order into a fresh interner reproduces the
   id assignment, so dense trace ids survive the round trip without
   being written per trace. *)
let to_artifact t =
  let w = Wire.writer () in
  Wire.put_string w (Registry.fingerprint t.registry);
  let names = Ingest.names t.ingest in
  Wire.put_int w (Array.length names);
  Array.iter (Wire.put_string w) names;
  Wire.put_int w (Engine.events t.engine);
  Wire.put_int w (Engine.tripped t.engine);
  Wire.put_int w (Engine.retired_admissible t.engine);
  let ntr = Engine.ntraces t.engine in
  Wire.put_int w ntr;
  for id = 0 to ntr - 1 do
    match Engine.export_trace t.engine id with
    | None -> Wire.put_bool w false
    | Some ts ->
        Wire.put_bool w true;
        Wire.put_int w ts.Engine.ts_events;
        Wire.put_int_array w ts.Engine.ts_states;
        Wire.put_int_array w ts.Engine.ts_live;
        Wire.put_int_array w ts.Engine.ts_tripped_at
  done;
  Wire.to_artifact ~kind:Wire.kind_session w

let of_artifact ?jobs ?threshold ~registry blob =
  match
    let r = Wire.of_artifact_kind ~kind:Wire.kind_session blob in
    let snap_fp = Wire.get_string r in
    let reg_fp = Registry.fingerprint registry in
    if not (String.equal snap_fp reg_fp) then
      Error (Fingerprint_mismatch { snapshot = snap_fp; registry = reg_fp })
    else begin
      let ingest = Ingest.create () in
      let nnames = Wire.get_int r in
      (* Each name costs at least its 8-byte length prefix. *)
      if nnames < 0 || nnames > Wire.remaining r / 8 then
        raise (Wire.Corrupt (Printf.sprintf "bad interner size %d" nnames));
      for i = 0 to nnames - 1 do
        let name = Wire.get_string r in
        if Ingest.intern ingest name <> i then
          raise
            (Wire.Corrupt
               (Printf.sprintf "interner table not in first-seen order at %d"
                  i))
      done;
      let events = Wire.get_int r in
      let tripped = Wire.get_int r in
      let retired = Wire.get_int r in
      let ntr = Wire.get_int r in
      (* Engine trace ids only ever come from the interner. *)
      if ntr < 0 || ntr > nnames then
        raise (Wire.Corrupt (Printf.sprintf "bad trace count %d" ntr));
      let plan = Engine.plan_of_monitors (Registry.monitors registry) in
      let engine = Engine.of_plan ?jobs ?threshold plan in
      let sum = ref 0 in
      for id = 0 to ntr - 1 do
        if Wire.get_bool r then begin
          let ts_events = Wire.get_int r in
          let ts_states = Wire.get_int_array r in
          let ts_live = Wire.get_int_array r in
          let ts_tripped_at = Wire.get_int_array r in
          Engine.restore_trace engine id
            { Engine.ts_events; ts_states; ts_live; ts_tripped_at };
          sum := !sum + ts_events
        end
      done;
      if events <> !sum then
        raise
          (Wire.Corrupt
             (Printf.sprintf
                "event counter %d disagrees with per-trace sum %d" events
                !sum));
      Engine.set_counters engine ~events ~tripped ~retired_admissible:retired;
      Wire.expect_end r;
      Ok { registry; engine; ingest }
    end
  with
  | result -> result
  | exception Wire.Corrupt msg -> Error (Corrupt msg)
  | exception Invalid_argument msg -> Error (Corrupt msg)

(* Snapshot to disk with the cache's publication discipline: write to a
   temp file in the destination directory, then atomically rename. A
   crash mid-write leaves at worst a stray temp file, never a torn
   snapshot at [path]. *)
let save t ~path =
  let sp = Obs.Span.enter "session.snapshot" in
  match
    let blob = to_artifact t in
    let dir = Filename.dirname path in
    let tmp = Filename.temp_file ~temp_dir:dir "sl-session" ".tmp" in
    (let oc = open_out_bin tmp in
     try
       output_string oc blob;
       close_out oc
     with e ->
       close_out_noerr oc;
       (try Sys.remove tmp with Sys_error _ -> ());
       raise e);
    Sys.rename tmp path;
    String.length blob
  with
  | exception e ->
      Obs.Span.exit sp;
      raise e
  | bytes ->
      Obs.Metrics.incr m_snapshots;
      Obs.Metrics.observe h_snapshot_bytes bytes;
      Obs.Span.attr sp "bytes" bytes;
      Obs.Span.attr sp "traces" (Engine.ntraces t.engine);
      Obs.Span.attr sp "events" (Engine.events t.engine);
      Obs.Span.exit sp

let load ?jobs ?threshold ~registry ~path () =
  let sp = Obs.Span.enter "session.restore" in
  let result =
    match
      let ic = open_in_bin path in
      let n = in_channel_length ic in
      let blob = really_input_string ic n in
      close_in ic;
      blob
    with
    | exception Sys_error msg ->
        Error (Corrupt (Printf.sprintf "cannot read snapshot: %s" msg))
    | exception End_of_file -> Error (Corrupt "snapshot truncated while reading")
    | blob -> of_artifact ?jobs ?threshold ~registry blob
  in
  (match result with
  | Ok t ->
      Obs.Metrics.incr m_restores;
      Obs.Span.attr sp "traces" (Engine.ntraces t.engine);
      Obs.Span.attr sp "events" (Engine.events t.engine)
  | Error _ -> ());
  Obs.Span.exit sp;
  result

let restore_error_to_string = function
  | Fingerprint_mismatch { snapshot; registry } ->
      Printf.sprintf
        "snapshot was taken against a different registry (snapshot %s, \
         registry %s)"
        snapshot registry
  | Corrupt msg -> Printf.sprintf "corrupt snapshot: %s" msg
