module Dfa = Sl_nfa.Dfa
module Digraph = Sl_core.Digraph
module Wire = Sl_core.Wire
module Monitor = Sl_buchi.Monitor

type t = {
  alphabet : int;
  nstates : int;
  trans : int array;
  accepting : bool array;
  can_trip : bool array;
  pre_tripped : bool;
  vacuous : bool;
  key : string;
}

let start = 0

(* BFS renumbering from the start, trying symbols in ascending order.
   On a minimal DFA (unique up to isomorphism, every state reachable)
   this yields the canonical state numbering: language-equal monitors
   compile to identical packed tables, which is what lets the registry
   hash-cons them by [key]. *)
let canonical_order (d : Dfa.t) =
  let order = Array.make d.Dfa.nstates (-1) in
  let queue = Queue.create () in
  let next = ref 0 in
  order.(d.Dfa.start) <- 0;
  incr next;
  Queue.push d.Dfa.start queue;
  while not (Queue.is_empty queue) do
    let q = Queue.pop queue in
    Array.iter
      (fun q' ->
        if order.(q') = -1 then begin
          order.(q') <- !next;
          incr next;
          Queue.push q' queue
        end)
      d.Dfa.delta.(q)
  done;
  order

let key_of ~alphabet ~trans ~accepting =
  let buf = Buffer.create (16 + (4 * Array.length trans)) in
  Buffer.add_string buf (string_of_int alphabet);
  Array.iter
    (fun q ->
      Buffer.add_char buf ' ';
      Buffer.add_string buf (string_of_int q))
    trans;
  Array.iter (fun a -> Buffer.add_char buf (if a then '*' else '.')) accepting;
  Buffer.contents buf

(* Everything beyond (alphabet, trans, accepting) is a pure function of
   those three fields. A monitor can still trip in state q iff some
   rejecting state is reachable from q (backward reachability on the
   packed graph); once that fails the monitor is admissible forever and
   the engine retires it. Vacuity (a pure-liveness property: the safety
   part is universal) is the special case at the start state. Sharing
   this derivation between [pack] and [decode] is what makes a decoded
   artifact field-for-field identical to a fresh compile. *)
let derive ~alphabet ~nstates ~trans ~accepting =
  let delta2 =
    Array.init nstates (fun q ->
        Array.init alphabet (fun s -> trans.((q * alphabet) + s)))
  in
  let g = Digraph.of_array_delta delta2 in
  let can_trip =
    Digraph.reachable_from (Digraph.reverse g) (Array.map not accepting)
  in
  let pre_tripped = not accepting.(0) in
  let vacuous = accepting.(0) && not can_trip.(0) in
  { alphabet; nstates; trans; accepting; can_trip; pre_tripped; vacuous;
    key = key_of ~alphabet ~trans ~accepting }

let pack (d : Dfa.t) =
  let d = Dfa.minimize d in
  (* [minimize] keeps exactly the reachable classes, so the BFS order is
     total over the states. *)
  let order = canonical_order d in
  let n = d.Dfa.nstates in
  let alphabet = d.Dfa.alphabet in
  let trans = Array.make (n * alphabet) 0 in
  let accepting = Array.make n false in
  Array.iteri
    (fun q nq ->
      accepting.(nq) <- d.Dfa.accepting.(q);
      Array.iteri
        (fun s q' -> trans.((nq * alphabet) + s) <- order.(q'))
        d.Dfa.delta.(q))
    order;
  derive ~alphabet ~nstates:n ~trans ~accepting

(* The empty property: even the empty prefix is bad. The prefix DFA the
   monitor pipeline produces is not meaningful in this corner
   ([Buchi.to_prefix_nfa] marks all states of the trimmed-empty automaton
   accepting), so all empty properties share one canonical one-state
   rejecting table. *)
let empty ~alphabet =
  let trans = Array.make alphabet 0 in
  let accepting = [| false |] in
  { alphabet; nstates = 1; trans; accepting; can_trip = [| true |];
    pre_tripped = true; vacuous = false;
    key = key_of ~alphabet ~trans ~accepting }

let of_monitor m =
  let dfa = Monitor.dfa m in
  if Monitor.empty_property m then empty ~alphabet:dfa.Dfa.alphabet
  else pack dfa

let of_buchi b = of_monitor (Monitor.create b)

let of_dfa = pack

let step pd q symbol = pd.trans.((q * pd.alphabet) + symbol)
let is_accepting pd q = pd.accepting.(q)
let can_trip pd q = pd.can_trip.(q)
let key pd = pd.key

(* Fused megatable: every monitor's transition rows concatenated into
   one contiguous array, each entry carrying the successor together
   with its verdict-relevant bits — [(s' lsl 2) lor (can_trip(s') lsl
   1) lor accepting(s')]. The engine's inner loop then decides
   trip/continue/retire from a single array read per live monitor
   instead of three reads through a per-monitor record. Callers must
   pass a uniform-alphabet array (the registry guarantees it). *)
let fuse_entry pd s' =
  (s' lsl 2)
  lor (if pd.can_trip.(s') then 2 else 0)
  lor (if pd.accepting.(s') then 1 else 0)

let fuse monitors =
  let base = Array.make (max (Array.length monitors) 1) 0 in
  let total = ref 0 in
  Array.iteri
    (fun m pd ->
      base.(m) <- !total;
      total := !total + Array.length pd.trans)
    monitors;
  let mega = Array.make (max !total 1) 0 in
  Array.iteri
    (fun m pd ->
      Array.iteri
        (fun k s' -> mega.(base.(m) + k) <- fuse_entry pd s')
        pd.trans)
    monitors;
  (mega, base)

(* Serialization: only the three defining fields (plus the canonical
   key, for cheap identity checks without decoding the arrays) go to
   disk; [can_trip]/[pre_tripped]/[vacuous] are rederived on decode, so
   stale bytes cannot desynchronize a monitor's retirement logic from
   its transition table. *)

let encode w pd =
  Wire.put_string w pd.key;
  Wire.put_int w pd.alphabet;
  Wire.put_int w pd.nstates;
  Wire.put_int_array w pd.trans;
  Wire.put_bool_array w pd.accepting

let decode r =
  let fail fmt = Printf.ksprintf (fun s -> raise (Wire.Corrupt s)) fmt in
  let key = Wire.get_string r in
  let alphabet = Wire.get_int r in
  let nstates = Wire.get_int r in
  let trans = Wire.get_int_array r in
  let accepting = Wire.get_bool_array r in
  if alphabet < 1 then fail "packed_dfa: bad alphabet %d" alphabet;
  if nstates < 1 then fail "packed_dfa: bad state count %d" nstates;
  if Array.length trans <> nstates * alphabet then
    fail "packed_dfa: %d transitions for %d states x %d symbols"
      (Array.length trans) nstates alphabet;
  Array.iter
    (fun q -> if q < 0 || q >= nstates then fail "packed_dfa: successor %d" q)
    trans;
  if Array.length accepting <> nstates then
    fail "packed_dfa: %d acceptance bits for %d states"
      (Array.length accepting) nstates;
  let pd = derive ~alphabet ~nstates ~trans ~accepting in
  (* The stored key must be the canonical key of the stored table —
     catches artifacts whose key and table were mixed up even when each
     half is well-formed on its own. *)
  if not (String.equal key pd.key) then fail "packed_dfa: key mismatch";
  pd

let to_artifact pd =
  let w = Wire.writer () in
  encode w pd;
  Wire.to_artifact ~kind:Wire.kind_packed_dfa w

let of_artifact s =
  match
    let r = Wire.of_artifact_kind ~kind:Wire.kind_packed_dfa s in
    let pd = decode r in
    Wire.expect_end r;
    pd
  with
  | pd -> Some pd
  | exception Wire.Corrupt _ -> None

let pp fmt pd =
  Format.fprintf fmt "packed-dfa(%d states, alphabet %d%s%s)" pd.nstates
    pd.alphabet
    (if pd.vacuous then ", vacuous" else "")
    (if pd.pre_tripped then ", pre-tripped" else "")
