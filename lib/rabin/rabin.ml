module Ftree = Sl_tree.Ftree
module Rtree = Sl_tree.Rtree
module Digraph = Sl_core.Digraph

type t = {
  alphabet : int;
  k : int;
  nstates : int;
  start : int;
  delta : int array list array array;
  pairs : (bool array * bool array) list;
}

let make ~alphabet ~k ~nstates ~start ~delta ~pairs =
  if alphabet < 1 then invalid_arg "Rabin.make: empty alphabet";
  if k < 1 then invalid_arg "Rabin.make: arity must be >= 1";
  if nstates < 1 then invalid_arg "Rabin.make: need a state";
  if start < 0 || start >= nstates then invalid_arg "Rabin.make: bad start";
  if Array.length delta <> nstates then invalid_arg "Rabin.make: delta shape";
  Array.iter
    (fun row ->
      if Array.length row <> alphabet then
        invalid_arg "Rabin.make: delta row shape";
      Array.iter
        (List.iter (fun tuple ->
             if Array.length tuple <> k then
               invalid_arg "Rabin.make: tuple arity";
             Array.iter
               (fun q ->
                 if q < 0 || q >= nstates then
                   invalid_arg "Rabin.make: tuple state out of range")
               tuple))
        row)
    delta;
  List.iter
    (fun (green, red) ->
      if Array.length green <> nstates || Array.length red <> nstates then
        invalid_arg "Rabin.make: pair shape")
    pairs;
  { alphabet; k; nstates; start; delta; pairs }

let graph b =
  (* Tuple components flattened: [q --s--> q'] whenever [q'] occurs in
     some successor tuple of [delta.(q).(s)]. *)
  Digraph.of_delta
    (Array.map
       (Array.map (List.concat_map Array.to_list))
       b.delta)

(* Compile-time witness: this module has the shared automaton shape. *)
module _ : Sl_core.Automaton_sig.S with type t = t = struct
  type nonrec t = t

  let alphabet b = b.alphabet
  let nstates b = b.nstates
  let graph = graph
end

let buchi_condition ~nstates ~accepting =
  let green = Array.make nstates false in
  List.iter (fun q -> green.(q) <- true) accepting;
  [ (green, Array.make nstates false) ]

let trivial_condition ~nstates =
  [ (Array.make nstates true, Array.make nstates false) ]

let is_buchi_shaped b =
  match b.pairs with
  | [ (_, red) ] -> not (Array.exists Fun.id red)
  | _ -> false

let buchi_accepting b =
  match b.pairs with
  | [ (green, red) ] when not (Array.exists Fun.id red) -> green
  | _ -> invalid_arg "Rabin.buchi_accepting: not Büchi-shaped"

(* Generic Büchi game solver: the automaton player picks a move (a set of
   successor positions, one per direction), the pathfinder picks the
   successor. Winning region of  νY. μX. [ Pre X ∪ (acc ∩ Pre Y) ]. *)
let solve_buchi ~npos ~moves ~accepting =
  (* Memoize the move lists: the fixpoint below re-queries every position
     per sweep, and the seed rebuilt each move list on every [pre] call. *)
  let moves = Array.init npos moves in
  let pre inside p =
    List.exists (fun m -> List.for_all (fun s -> inside.(s)) m) moves.(p)
  in
  let y = Array.make npos true in
  let stable = ref false in
  while not !stable do
    (* X := μX. Pre X ∪ (acc ∩ Pre Y) *)
    let x = Array.make npos false in
    let grew = ref true in
    while !grew do
      grew := false;
      for p = 0 to npos - 1 do
        if (not x.(p)) && (pre x p || (accepting p && pre y p)) then begin
          x.(p) <- true;
          grew := true
        end
      done
    done;
    if x = y then stable := true else Array.blit x 0 y 0 npos
  done;
  y

let nonempty_states b =
  if not (is_buchi_shaped b) then
    invalid_arg "Rabin.nonempty_states: not Büchi-shaped";
  let green = buchi_accepting b in
  let moves q =
    List.concat_map
      (fun s -> List.map Array.to_list b.delta.(q).(s))
      (List.init b.alphabet Fun.id)
  in
  solve_buchi ~npos:b.nstates ~moves ~accepting:(fun q -> green.(q))

let is_empty b = not (nonempty_states b).(b.start)

(* Witness extraction: rerun the inner μ-fixpoint against the final
   winning set Y and remember, for each state, the move that first put it
   in (its attractor rank decreases along the strategy, and accepting
   states restart the descent inside Y — the standard Büchi-game
   strategy). *)
let nonempty_witness b =
  if not (is_buchi_shaped b) then
    invalid_arg "Rabin.nonempty_witness: not Büchi-shaped";
  let w = nonempty_states b in
  if not w.(b.start) then None
  else begin
    let green = buchi_accepting b in
    let n = b.nstates in
    let choice = Array.make n None in
    let in_x = Array.make n false in
    let try_move ~target q =
      let found = ref None in
      for s = 0 to b.alphabet - 1 do
        List.iter
          (fun tuple ->
            if !found = None && Array.for_all (fun q' -> target q') tuple
            then found := Some (s, tuple))
          b.delta.(q).(s)
      done;
      !found
    in
    let grew = ref true in
    while !grew do
      grew := false;
      for q = 0 to n - 1 do
        if w.(q) && not in_x.(q) then begin
          let move =
            if green.(q) then try_move ~target:(fun q' -> w.(q')) q
            else try_move ~target:(fun q' -> in_x.(q')) q
          in
          match move with
          | Some m ->
              choice.(q) <- Some m;
              in_x.(q) <- true;
              grew := true
          | None -> ()
        end
      done
    done;
    (* Accepting states may have been given a move into W before the
       non-accepting attractor filled; every W-state now has a choice. *)
    let label = Array.make n 0 in
    let children = Array.make_matrix n b.k 0 in
    let ok = ref true in
    for q = 0 to n - 1 do
      if w.(q) then
        match choice.(q) with
        | Some (s, tuple) ->
            label.(q) <- s;
            Array.blit tuple 0 children.(q) 0 b.k
        | None -> ok := false
    done;
    if not !ok then None
    else
      (* Unchosen (dead) states self-loop harmlessly; they are
         unreachable from the start through chosen moves. *)
      Some
        (Rtree.make ~k:b.k ~nstates:n ~root:b.start ~label ~children)
  end

(* Product positions for membership: (automaton state, presentation
   state). *)
let product_moves b (t : Rtree.t) =
  let encode q v = (q * t.Rtree.nstates) + v in
  let moves p =
    let q = p / t.Rtree.nstates and v = p mod t.Rtree.nstates in
    if t.Rtree.k <> b.k then invalid_arg "Rabin.accepts: arity mismatch";
    let symbol = t.Rtree.label.(v) in
    if symbol >= b.alphabet then []
    else
      List.map
        (fun tuple ->
          List.init b.k (fun i ->
              encode tuple.(i) t.Rtree.children.(v).(i)))
        b.delta.(q).(symbol)
  in
  (encode, moves)

let accepts_buchi b t =
  let green = buchi_accepting b in
  let encode, moves = product_moves b t in
  let npos = b.nstates * t.Rtree.nstates in
  let w =
    solve_buchi ~npos ~moves
      ~accepting:(fun p -> green.(p / t.Rtree.nstates))
  in
  w.(encode b.start t.Rtree.root)

(* All paths of a run graph satisfy the Rabin condition iff no reachable
   "violating" strongly connected subgraph exists: a closed walk C with,
   for every pair, C ∩ green = ∅ or C ∩ red ≠ ∅. Classic recursive SCC
   peeling (the violating condition is a Streett condition), with the SCC
   decomposition of each induced subgraph delegated to the shared CSR
   kernel — the run graph is materialized once per strategy. *)
let run_graph_violates ~npos ~succ ~reachable ~state_of ~pairs =
  let g = Digraph.of_fn ~nodes:npos succ in
  let in_nodes = Array.make npos false in
  let sccs nodes =
    Array.fill in_nodes 0 npos false;
    List.iter (fun v -> in_nodes.(v) <- true) nodes;
    Digraph.sccs ~filter:(fun v -> in_nodes.(v)) g
  in
  let rec violating nodes =
    let r = sccs nodes in
    List.exists
      (fun comp ->
        let nontrivial =
          match comp with
          | [] -> false
          | hd :: _ -> r.Digraph.nontrivial.(r.Digraph.comp.(hd))
        in
        if not nontrivial then false
        else begin
          (* Pairs that could still be satisfied inside this component:
             green present, red absent. A violating walk must avoid their
             greens entirely. *)
          let states = List.map state_of comp in
          let live_pairs =
            List.filter
              (fun (green, red) ->
                List.exists (fun q -> green.(q)) states
                && not (List.exists (fun q -> red.(q)) states))
              pairs
          in
          if live_pairs = [] then true
          else begin
            let shrunk =
              List.filter
                (fun v ->
                  not
                    (List.exists (fun (green, _) -> green.(state_of v))
                       live_pairs))
                comp
            in
            if List.length shrunk = List.length comp then false
            else violating shrunk
          end
        end)
      r.Digraph.comps
  in
  violating (List.filter (fun v -> reachable.(v)) (List.init npos Fun.id))

let accepts_general ~max_product b t =
  let encode, moves = product_moves b t in
  let npos = b.nstates * t.Rtree.nstates in
  let choice_lists = Array.init npos moves in
  (* Count memoryless strategies over positions that have choices. *)
  let combos =
    Array.fold_left
      (fun acc l -> match l with [] | [ _ ] -> acc | l ->
          acc * List.length l)
      1 choice_lists
  in
  if combos > max_product then
    invalid_arg "Rabin.accepts: strategy enumeration exceeds guard";
  let start = encode b.start t.Rtree.root in
  (* Enumerate strategies: index into each position's choice list. *)
  let rec try_all assignment pos =
    if pos = npos then begin
      (* Evaluate this strategy: reachable positions must all have a move
         and no violating closed walk may be reachable. *)
      let succ v =
        match choice_lists.(v) with
        | [] -> []
        | l -> List.nth l assignment.(v)
      in
      let reachable = Array.make npos false in
      let dead = ref false in
      let rec visit v =
        if not reachable.(v) then begin
          reachable.(v) <- true;
          if choice_lists.(v) = [] then dead := true
          else List.iter visit (succ v)
        end
      in
      visit start;
      (not !dead)
      && not
           (run_graph_violates ~npos ~succ ~reachable
              ~state_of:(fun v -> v / t.Rtree.nstates)
              ~pairs:b.pairs)
    end
    else begin
      match choice_lists.(pos) with
      | [] | [ _ ] -> try_all assignment (pos + 1)
      | l ->
          let n = List.length l in
          let rec pick i =
            if i >= n then false
            else begin
              assignment.(pos) <- i;
              try_all assignment (pos + 1) || pick (i + 1)
            end
          in
          let r = pick 0 in
          assignment.(pos) <- 0;
          r
    end
  in
  try_all (Array.make npos 0) 0

let accepts ?(max_product = 4096) b t =
  if is_buchi_shaped b then accepts_buchi b t
  else accepts_general ~max_product b t

let extends b x =
  if not (is_buchi_shaped b) then
    invalid_arg "Rabin.extends: not Büchi-shaped";
  if Ftree.size x = 0 then not (is_empty b)
  else begin
    let nonempty = nonempty_states b in
    (* cover(node) = states from which the subtree at node can be read and
       completed to an accepted tree. *)
    let rec cover node =
      match Ftree.label x node with
      | None -> invalid_arg "Rabin.extends: node vanished"
      | Some symbol ->
          if symbol >= b.alphabet then Array.make b.nstates false
          else begin
            let child_cover =
              List.init b.k (fun i ->
                  let child = node @ [ i ] in
                  if Ftree.mem x child then Some (cover child) else None)
            in
            Array.init b.nstates (fun q ->
                List.exists
                  (fun tuple ->
                    List.for_all
                      (fun i ->
                        match List.nth child_cover i with
                        | Some c -> c.(tuple.(i))
                        | None -> nonempty.(tuple.(i)))
                      (List.init b.k Fun.id))
                  b.delta.(q).(symbol))
          end
    in
    (cover []).(b.start)
  end

let union a b =
  if a.alphabet <> b.alphabet || a.k <> b.k then
    invalid_arg "Rabin.union: incompatible automata";
  let shift_a = 1 and shift_b = 1 + a.nstates in
  let nstates = 1 + a.nstates + b.nstates in
  let remap shift tuple = Array.map (( + ) shift) tuple in
  let delta =
    Array.init nstates (fun q ->
        Array.init a.alphabet (fun s ->
            if q = 0 then
              List.map (remap shift_a) a.delta.(a.start).(s)
              @ List.map (remap shift_b) b.delta.(b.start).(s)
            else if q < shift_b then
              List.map (remap shift_a) a.delta.(q - shift_a).(s)
            else List.map (remap shift_b) b.delta.(q - shift_b).(s)))
  in
  let embed shift n (green, red) =
    let g = Array.make nstates false and r = Array.make nstates false in
    for q = 0 to n - 1 do
      g.(q + shift) <- green.(q);
      r.(q + shift) <- red.(q)
    done;
    (g, r)
  in
  let pairs =
    List.map (embed shift_a a.nstates) a.pairs
    @ List.map (embed shift_b b.nstates) b.pairs
  in
  make ~alphabet:a.alphabet ~k:a.k ~nstates ~start:0 ~delta ~pairs

let restrict b keep =
  if not keep.(b.start) then begin
    (* Empty-language automaton of the same shape. *)
    let delta =
      Array.init 1 (fun _ -> Array.make b.alphabet [])
    in
    make ~alphabet:b.alphabet ~k:b.k ~nstates:1 ~start:0 ~delta
      ~pairs:(buchi_condition ~nstates:1 ~accepting:[])
  end
  else begin
    let remap = Array.make b.nstates (-1) in
    let count = ref 0 in
    Array.iteri
      (fun q k ->
        if k then begin
          remap.(q) <- !count;
          incr count
        end)
      keep;
    let nstates = !count in
    let delta =
      Array.init nstates (fun _ -> Array.make b.alphabet [])
    in
    Array.iteri
      (fun q kq ->
        if kq then
          Array.iteri
            (fun s tuples ->
              delta.(remap.(q)).(s) <-
                List.filter_map
                  (fun tuple ->
                    if Array.for_all (fun q' -> keep.(q')) tuple then
                      Some (Array.map (fun q' -> remap.(q')) tuple)
                    else None)
                  tuples)
            b.delta.(q))
      keep;
    let pairs =
      List.map
        (fun (green, red) ->
          let g = Array.make nstates false and r = Array.make nstates false in
          Array.iteri
            (fun q kq ->
              if kq then begin
                g.(remap.(q)) <- green.(q);
                r.(remap.(q)) <- red.(q)
              end)
            keep;
          (g, r))
        b.pairs
    in
    make ~alphabet:b.alphabet ~k:b.k ~nstates ~start:remap.(b.start) ~delta
      ~pairs
  end

let pp fmt b =
  Format.fprintf fmt "@[<v>rabin(k=%d, %d states, %d pairs, start %d)@," b.k
    b.nstates (List.length b.pairs) b.start;
  for q = 0 to b.nstates - 1 do
    Format.fprintf fmt "  %d:" q;
    Array.iteri
      (fun s tuples ->
        List.iter
          (fun tuple ->
            Format.fprintf fmt " %d->(%s)" s
              (String.concat ","
                 (List.map string_of_int (Array.to_list tuple))))
          tuples)
      b.delta.(q);
    Format.fprintf fmt "@,"
  done;
  Format.fprintf fmt "@]"
