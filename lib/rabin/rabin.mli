module Ftree = Sl_tree.Ftree
module Rtree = Sl_tree.Rtree

(** Rabin tree automata on k-ary infinite trees (Section 4.4 of the
    paper).

    A Rabin automaton is [(Σ, Q, q0, δ, Φ)] with [δ : Q × Σ → P(Q^k)] and
    [Φ] a list of (green, red) pairs; a run is accepting iff every path
    satisfies some pair — greens recur, reds eventually stop.

    Decision procedures implemented here:

    - {!accepts} on {e regular} trees. For Büchi-shaped conditions (a
      single pair with an empty red set — this covers both genuine Büchi
      conditions and the trivial condition produced by {!Closure.rfcl})
      membership is a Büchi game on the automaton × presentation product,
      solved by the standard [νY.μX] fixpoint. For general conditions we
      enumerate memoryless product strategies (sound and complete by
      memoryless determinacy of Rabin games) under a size guard.
    - {!is_empty} / {!nonempty_states} via the same game against an
      unconstrained input tree.
    - {!extends} — can a finite k-branching prefix be extended to an
      accepted tree? Bottom-up dynamic programming with nonempty-language
      states at the frontier. This powers the sampled [fcl] oracle that
      cross-validates {!Closure.rfcl}.

    Full Rabin complementation (Rabin's theorem) is {e not} implemented —
    the paper itself only cites it; see DESIGN.md for how Theorem 9 is
    verified without it. *)

type t = {
  alphabet : int;
  k : int;
  nstates : int;
  start : int;
  delta : int array list array array;
      (** [delta.(q).(s)] lists the k-tuples available at state [q]
          reading symbol [s]. *)
  pairs : (bool array * bool array) list;  (** (green, red) pairs *)
}

val make :
  alphabet:int -> k:int -> nstates:int -> start:int ->
  delta:int array list array array -> pairs:(bool array * bool array) list ->
  t

val graph : t -> Sl_core.Digraph.t
(** The transition graph with successor-tuple components flattened:
    [q --s--> q'] whenever [q'] occurs in some tuple of
    [delta.(q).(s)]. *)

val buchi_condition : nstates:int -> accepting:int list -> (bool array * bool array) list
(** The single pair [(F, ∅)]: a Büchi acceptance condition. *)

val trivial_condition : nstates:int -> (bool array * bool array) list
(** The pair [(Q, ∅)]: every run is accepting (used by [rfcl]). *)

val is_buchi_shaped : t -> bool
(** Exactly one pair, with no red states. *)

val buchi_accepting : t -> bool array
(** The green set of a Büchi-shaped automaton.
    @raise Invalid_argument otherwise. *)

(** {1 Decision procedures} *)

val nonempty_states : t -> bool array
(** Per state [q]: [L(B(q)) ≠ ∅]. Büchi-shaped only
    (@raise Invalid_argument otherwise). *)

val is_empty : t -> bool

val nonempty_witness : t -> Rtree.t option
(** A regular tree in the language, extracted from the emptiness game: a
    memoryless winning strategy assigns each productive state a symbol
    and a transition tuple; reading the strategy as a pointed graph gives
    a regular tree together with its accepting run. Büchi-shaped only. *)

val accepts : ?max_product:int -> t -> Rtree.t -> bool
(** Membership of a regular tree. General Rabin conditions fall back to
    memoryless-strategy enumeration, guarded by [max_product] (default
    [4096] strategy candidates). @raise Invalid_argument when the
    fallback would exceed the guard. *)

val extends : t -> Ftree.t -> bool
(** Does some accepted tree extend the given finite k-branching prefix?
    (Interior nodes must have all [k] children.) Büchi-shaped only. *)

(** {1 Operations} *)

val union : t -> t -> t
(** Language union (fresh start state; runs commit to one component at the
    root). *)

val restrict : t -> bool array -> t
(** Keep only marked states and the tuples that stay inside them. If the
    start is dropped the result is an automaton with the empty language. *)

val pp : Format.formatter -> t -> unit
