(* Live introspection: the daemon's /status, /monitors, /traces and
   /healthz endpoints, answered on the same one-shot HTTP path as
   /metrics (Conn's [http] handler). JSON is hand-rolled like Records —
   no dependency, fixed field order (schema sl-status/1), strings
   escaped through Records.escape.

   Everything here is read-only over the daemon's live state: verdict
   counts come from Engine.monitor_counts / trace_summary (the trace
   table itself, not telemetry counters), so they match the offline
   report exactly, including after a --resume. *)

open Sl_runtime

let schema = "sl-status/1"

type conn_info = {
  ci_id : int;
  ci_listener : string;
  ci_mode : string;
  ci_lines : int;
  ci_events : int;
  ci_errors : int;
  ci_pending_out : int;
  ci_stalled : bool;
}

type reload_event = { re_at : float; re_ok : bool; re_detail : string }

let history_cap = 16
let traces_cap = 1000

type t = {
  daemon : Daemon.t;
  version : string;
  start_wall : float;
  resumed_from : string option;
  mutable snapshot_path : string option;
  mutable conns : unit -> conn_info list;
  mutable reloads : reload_event list;  (* newest first, capped *)
  mutable nreloads : int;
  mutable nreload_failures : int;
}

let create ?resumed_from ?snapshot_path ~version daemon =
  {
    daemon;
    version;
    start_wall = Unix.gettimeofday ();
    resumed_from;
    snapshot_path;
    conns = (fun () -> []);
    reloads = [];
    nreloads = 0;
    nreload_failures = 0;
  }

let conn_info_of_conn conn =
  {
    ci_id = Conn.id conn;
    ci_listener = Conn.listener conn;
    ci_mode = Conn.mode_name conn;
    ci_lines = Conn.lines conn;
    ci_events = Conn.events conn;
    ci_errors = Conn.errors conn;
    ci_pending_out = Conn.pending_output conn;
    ci_stalled = Conn.stalled conn;
  }

let set_conns t f = t.conns <- f

let note_reload t ~ok ~detail =
  if ok then t.nreloads <- t.nreloads + 1
  else t.nreload_failures <- t.nreload_failures + 1;
  let ev = { re_at = Unix.gettimeofday (); re_ok = ok; re_detail = detail } in
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | x :: tl -> x :: take (n - 1) tl
  in
  t.reloads <- ev :: take (history_cap - 1) t.reloads

let uptime_s t = Unix.gettimeofday () -. t.start_wall

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let esc = Records.escape

let opt_str buf = function
  | None -> Buffer.add_string buf "null"
  | Some s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (esc s);
      Buffer.add_char buf '"'

let bool_str b = if b then "true" else "false"

let render_healthz t =
  Printf.sprintf
    "{\"schema\": \"%s\", \"type\": \"healthz\", \"status\": \"ok\", \
     \"uptime_s\": %.3f}\n"
    schema (uptime_s t)

let render_status t =
  let d = t.daemon in
  let eng = Daemon.engine d in
  let registry = Daemon.registry d in
  let buf = Buffer.create 1024 in
  let p fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  p "{\"schema\": \"%s\", \"type\": \"status\", \"version\": \"%s\", " schema
    (esc t.version);
  p "\"uptime_s\": %.3f, " (uptime_s t);
  p "\"fingerprint\": \"%s\", " (esc (Registry.fingerprint registry));
  p "\"props\": %d, \"monitors\": %d, \"jobs\": %d, "
    (Registry.nprops registry)
    (Registry.nmonitors registry)
    (Engine.jobs eng);
  p "\"traces\": %d, \"events\": %d, \"live\": %d, \"tripped\": %d, \
     \"retired_admissible\": %d, "
    (Engine.ntraces eng) (Engine.events eng) (Engine.live eng)
    (Engine.tripped eng)
    (Engine.retired_admissible eng);
  (* connection table, id order *)
  let conns =
    List.sort (fun a b -> compare a.ci_id b.ci_id) (t.conns ())
  in
  p "\"connections\": [";
  List.iteri
    (fun i ci ->
      if i > 0 then p ", ";
      p
        "{\"id\": %d, \"listener\": \"%s\", \"mode\": \"%s\", \"lines\": %d, \
         \"events\": %d, \"errors\": %d, \"pending_out\": %d, \"stalled\": %s}"
        ci.ci_id (esc ci.ci_listener) (esc ci.ci_mode) ci.ci_lines ci.ci_events
        ci.ci_errors ci.ci_pending_out (bool_str ci.ci_stalled))
    conns;
  p "], ";
  p "\"reloads\": {\"count\": %d, \"failures\": %d, \"history\": [" t.nreloads
    t.nreload_failures;
  List.iteri
    (fun i ev ->
      if i > 0 then p ", ";
      p "{\"at\": %.3f, \"ok\": %s, \"detail\": \"%s\"}" ev.re_at
        (bool_str ev.re_ok) (esc ev.re_detail))
    (List.rev t.reloads);
  p "]}, ";
  p "\"resumed_from\": ";
  opt_str buf t.resumed_from;
  p ", \"snapshot_path\": ";
  opt_str buf t.snapshot_path;
  let hits = Cache.hit_count ()
  and misses = Cache.miss_count ()
  and stores = Cache.store_count () in
  let ratio =
    if hits + misses = 0 then 0. else float_of_int hits /. float_of_int (hits + misses)
  in
  p ", \"cache\": {\"hits\": %d, \"misses\": %d, \"stores\": %d, \
     \"hit_ratio\": %.4f}, "
    hits misses stores ratio;
  p "\"obs\": {\"enabled\": %s, \"spans_dropped\": %d}}\n"
    (bool_str (Sl_obs.Obs.is_enabled ()))
    (Sl_obs.Obs.Span.dropped ());
  Buffer.contents buf

let render_monitors t =
  let d = t.daemon in
  let eng = Daemon.engine d in
  let registry = Daemon.registry d in
  let monitors = Registry.monitors registry in
  let counts = Engine.monitor_counts eng in
  (* property names per distinct monitor, property-id order *)
  let props_of = Array.make (Array.length monitors) [] in
  List.iter
    (fun (pr : Registry.prop) ->
      props_of.(pr.monitor) <- pr.name :: props_of.(pr.monitor))
    (List.rev (Registry.props registry));
  let buf = Buffer.create 1024 in
  let p fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  p "{\"schema\": \"%s\", \"type\": \"monitors\", \"fingerprint\": \"%s\", \
     \"traces\": %d, \"monitors\": ["
    schema
    (esc (Registry.fingerprint registry))
    (Engine.ntraces eng);
  Array.iteri
    (fun i pd ->
      if i > 0 then p ", ";
      let c = counts.(i) in
      p "{\"index\": %d, \"key\": \"%s\", \"props\": [" i
        (Sl_core.Wire.fnv64_hex pd.Packed_dfa.key);
      List.iteri
        (fun j name ->
          if j > 0 then p ", ";
          p "\"%s\"" (esc name))
        props_of.(i);
      p "], \"vacuous\": %s, \"pre_tripped\": %s, \"live\": %d, \"tripped\": \
         %d, \"retired_admissible\": %d}"
        (bool_str pd.Packed_dfa.vacuous)
        (bool_str pd.Packed_dfa.pre_tripped)
        c.Engine.mc_live c.Engine.mc_tripped c.Engine.mc_retired)
    monitors;
  p "]}\n";
  Buffer.contents buf

let render_traces t =
  let d = t.daemon in
  let eng = Daemon.engine d in
  let ing = Daemon.ingest d in
  let total = Engine.ntraces eng in
  let shown = min total traces_cap in
  let buf = Buffer.create 1024 in
  let p fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  p "{\"schema\": \"%s\", \"type\": \"traces\", \"total\": %d, \
     \"truncated\": %s, \"traces\": ["
    schema total
    (bool_str (shown < total));
  let first = ref true in
  for id = 0 to shown - 1 do
    match Engine.trace_summary eng id with
    | None -> ()
    | Some (events, live, tripped) ->
        if not !first then p ", ";
        first := false;
        p "{\"id\": %d, \"name\": \"%s\", \"events\": %d, \"live\": %d, \
           \"tripped\": %d}"
          id
          (esc (Ingest.name ing id))
          events live tripped
  done;
  p "]}\n";
  Buffer.contents buf

let json body = Some ("200 OK", "application/json", body)

let handler t path =
  match path with
  | "/status" -> json (render_status t)
  | "/monitors" -> json (render_monitors t)
  | "/traces" -> json (render_traces t)
  | "/healthz" -> json (render_healthz t)
  | _ -> None
