(* NDJSON record rendering. Hand-rolled like Verdict.to_json — no JSON
   dependency; fixed field order keeps the bytes stable.

   The [add_*] functions append straight into a caller's buffer — the
   serving hot path renders a whole chunk's records into one reusable
   per-connection scratch buffer instead of allocating a string per
   record. The string renderers below are thin wrappers over them, so
   there is exactly one source of truth for every record's bytes. *)

let add_escape buf s =
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | ch when Char.code ch < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code ch))
      | ch -> Buffer.add_char buf ch)
    s

let escape s =
  let buf = Buffer.create (String.length s) in
  add_escape buf s;
  Buffer.contents buf

let add_int buf n = Buffer.add_string buf (string_of_int n)

let add_hello buf ~version ~props ~monitors ~fingerprint =
  Buffer.add_string buf
    "{\"type\": \"hello\", \"schema\": \"sl-monitor-report/1\", \
     \"version\": \"";
  add_escape buf version;
  Buffer.add_string buf "\", \"props\": ";
  add_int buf props;
  Buffer.add_string buf ", \"monitors\": ";
  add_int buf monitors;
  Buffer.add_string buf ", \"fingerprint\": \"";
  add_escape buf fingerprint;
  Buffer.add_string buf "\"}\n"

let add_verdict_head buf ~trace ~prop =
  Buffer.add_string buf "{\"type\": \"verdict\", \"trace\": \"";
  add_escape buf trace;
  Buffer.add_string buf "\", \"prop\": \"";
  add_escape buf prop;
  Buffer.add_string buf "\", \"verdict\": \""

let add_verdict_violation buf ~trace ~prop ~position ~cause =
  add_verdict_head buf ~trace ~prop;
  Buffer.add_string buf "violation\", \"position\": ";
  add_int buf position;
  Buffer.add_string buf ", \"cause\": \"";
  Buffer.add_string buf cause;
  Buffer.add_string buf "\"}\n"

let add_verdict_admissible buf ~trace ~prop ~cause =
  add_verdict_head buf ~trace ~prop;
  Buffer.add_string buf "admissible\", \"cause\": \"";
  Buffer.add_string buf cause;
  Buffer.add_string buf "\"}\n"

let add_verdict_vacuous buf ~trace ~prop =
  add_verdict_head buf ~trace ~prop;
  Buffer.add_string buf "vacuous\", \"cause\": \"eof\"}\n"

let add_error buf ~line ~trace ~reason =
  Buffer.add_string buf "{\"type\": \"error\", \"line\": ";
  add_int buf line;
  (match trace with
  | Some t ->
      Buffer.add_string buf ", \"trace\": \"";
      add_escape buf t;
      Buffer.add_string buf "\""
  | None -> ());
  Buffer.add_string buf ", \"reason\": \"";
  add_escape buf reason;
  Buffer.add_string buf "\"}\n"

let add_summary buf ~traces ~events ~props ~monitors ~tripped
    ~retired_admissible ~live ~conn_events ~conn_errors =
  Buffer.add_string buf "{\"type\": \"summary\", \"traces\": ";
  add_int buf traces;
  Buffer.add_string buf ", \"events\": ";
  add_int buf events;
  Buffer.add_string buf ", \"props\": ";
  add_int buf props;
  Buffer.add_string buf ", \"monitors\": ";
  add_int buf monitors;
  Buffer.add_string buf ", \"tripped\": ";
  add_int buf tripped;
  Buffer.add_string buf ", \"retired_admissible\": ";
  add_int buf retired_admissible;
  Buffer.add_string buf ", \"live\": ";
  add_int buf live;
  Buffer.add_string buf ", \"conn_events\": ";
  add_int buf conn_events;
  Buffer.add_string buf ", \"conn_errors\": ";
  add_int buf conn_errors;
  Buffer.add_string buf "}\n"

let render add =
  let buf = Buffer.create 128 in
  add buf;
  Buffer.contents buf

let hello ~version ~props ~monitors ~fingerprint =
  render (fun buf -> add_hello buf ~version ~props ~monitors ~fingerprint)

let verdict_violation ~trace ~prop ~position ~cause =
  render (fun buf -> add_verdict_violation buf ~trace ~prop ~position ~cause)

let verdict_admissible ~trace ~prop ~cause =
  render (fun buf -> add_verdict_admissible buf ~trace ~prop ~cause)

let verdict_vacuous ~trace ~prop =
  render (fun buf -> add_verdict_vacuous buf ~trace ~prop)

let error ~line ~trace ~reason =
  render (fun buf -> add_error buf ~line ~trace ~reason)

let summary ~traces ~events ~props ~monitors ~tripped ~retired_admissible
    ~live ~conn_events ~conn_errors =
  render (fun buf ->
      add_summary buf ~traces ~events ~props ~monitors ~tripped
        ~retired_admissible ~live ~conn_events ~conn_errors)
