(* NDJSON record rendering. Hand-rolled like Verdict.to_json — no JSON
   dependency; fixed field order keeps the bytes stable. *)

let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | ch when Char.code ch < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code ch))
      | ch -> Buffer.add_char buf ch)
    s;
  Buffer.contents buf

let hello ~version ~props ~monitors ~fingerprint =
  Printf.sprintf
    "{\"type\": \"hello\", \"schema\": \"sl-monitor-report/1\", \
     \"version\": \"%s\", \"props\": %d, \"monitors\": %d, \
     \"fingerprint\": \"%s\"}\n"
    (escape version) props monitors (escape fingerprint)

let verdict_violation ~trace ~prop ~position ~cause =
  Printf.sprintf
    "{\"type\": \"verdict\", \"trace\": \"%s\", \"prop\": \"%s\", \
     \"verdict\": \"violation\", \"position\": %d, \"cause\": \"%s\"}\n"
    (escape trace) (escape prop) position cause

let verdict_admissible ~trace ~prop ~cause =
  Printf.sprintf
    "{\"type\": \"verdict\", \"trace\": \"%s\", \"prop\": \"%s\", \
     \"verdict\": \"admissible\", \"cause\": \"%s\"}\n"
    (escape trace) (escape prop) cause

let verdict_vacuous ~trace ~prop =
  Printf.sprintf
    "{\"type\": \"verdict\", \"trace\": \"%s\", \"prop\": \"%s\", \
     \"verdict\": \"vacuous\", \"cause\": \"eof\"}\n"
    (escape trace) (escape prop)

let error ~line ~trace ~reason =
  match trace with
  | Some t ->
      Printf.sprintf
        "{\"type\": \"error\", \"line\": %d, \"trace\": \"%s\", \
         \"reason\": \"%s\"}\n"
        line (escape t) (escape reason)
  | None ->
      Printf.sprintf
        "{\"type\": \"error\", \"line\": %d, \"reason\": \"%s\"}\n" line
        (escape reason)

let summary ~traces ~events ~props ~monitors ~tripped ~retired_admissible
    ~live ~conn_events ~conn_errors =
  Printf.sprintf
    "{\"type\": \"summary\", \"traces\": %d, \"events\": %d, \"props\": \
     %d, \"monitors\": %d, \"tripped\": %d, \"retired_admissible\": %d, \
     \"live\": %d, \"conn_events\": %d, \"conn_errors\": %d}\n"
    traces events props monitors tripped retired_admissible live conn_events
    conn_errors
