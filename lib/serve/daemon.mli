(** The serving core: one monitoring {!Sl_runtime.Session} shared by
    every connection.

    All client streams multiplex onto a single engine whose traces are
    sharded across [jobs] domains by trace id (the PR 5 pool) — "which
    connection an event arrived on" is deliberately not part of the
    monitoring semantics, only trace ids are, so two clients feeding the
    same trace id interleave into one trace exactly as two files
    concatenated offline would.

    The daemon owns the {!Sl_runtime.Engine} retire hook and routes its
    firings to whichever sink is feeding right now: {!feed} installs the
    caller's sink for the duration of the engine feed, so incremental
    trip/retire records land on the connection that delivered the
    triggering chunk. Pre-tripped (empty-property) verdicts — which
    retire at trace materialization, below the hook — are announced by
    {!feed} for every newly materialized trace. The per-trace EOF
    {!dump} then re-states every property's current verdict, making each
    connection's total output a superset of the offline report rows for
    the traces it touched. *)

type t

val make : Sl_runtime.Session.t -> t
(** Wrap a session (fresh or restored) and install the retire hook on
    its engine. Traces already present (a [--resume]d snapshot) are
    treated as announced: their verdicts surface via {!dump}, not as
    spurious incremental records. *)

val session : t -> Sl_runtime.Session.t
val registry : t -> Sl_runtime.Registry.t
val engine : t -> Sl_runtime.Engine.t
val ingest : t -> Sl_runtime.Ingest.t
val alphabet : t -> int
val fingerprint : t -> string

val feed : t -> buf:Buffer.t -> Sl_runtime.Ingest.chunk -> unit
(** Feed one chunk through the engine, appending the NDJSON verdict
    records it causes (trips, admissible retirements, and pre-tripped
    announcements for traces materialized by this chunk) to [buf] — the
    caller's reusable scratch buffer, so a whole chunk's records
    coalesce into one output slab. The buffer is installed as the hook's
    target only for the duration of the call. *)

val dump : t -> buf:Buffer.t -> trace:int -> unit
(** Append the current verdict of every property on [trace] (cause
    ["eof"]) to [buf] — the connection-close dump that squares the
    served stream with the offline {!Sl_runtime.Verdict} report. *)

val add_summary : t -> Buffer.t -> conn_events:int -> conn_errors:int -> unit
(** Append the per-connection EOF summary record over the engine-global
    counters. *)

val swap_session : t -> Sl_runtime.Session.t -> unit
(** Hot-reload commit point: detach the hook from the old engine,
    adopt [s] and install the hook there. All monitor/property lookup
    tables are rebuilt from the new registry; traces present in [s]
    count as announced. *)
