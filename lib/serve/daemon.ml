open Sl_runtime
module Obs = Sl_obs.Obs

(* Pipeline-stage timing: time spent rendering verdict records (the
   retire hook plus pre-tripped announcements) during one feed.
   Retirements are rare — at most monitors x traces over a whole run —
   so the two clock reads per firing stay off the per-event path; the
   accumulated delta is observed once per chunk. *)
let h_stage_render =
  Obs.Metrics.histogram
    ~help:"Pipeline stage: verdict record render latency per chunk"
    "stage_verdict_render_ns"

type t = {
  mutable session : Session.t;
  mutable props_of_monitor : string list array;
      (* distinct monitor index -> property names riding on it, in
         property-id order *)
  mutable pretripped_props : string list;
  mutable announced : int;
      (* trace ids below this had their pre-tripped verdicts emitted
         (or predate the daemon and are covered by EOF dumps) *)
  mutable out : Buffer.t option;
      (* the feeding connection's scratch buffer, installed for the
         duration of a [feed] — the retire hook renders into it
         directly, so a chunk's records coalesce into one slab *)
  mutable render_us : float;  (* render time nested in the current feed *)
}

let props_by_monitor registry =
  let buckets = Array.make (Registry.nmonitors registry) [] in
  List.iter
    (fun (p : Registry.prop) ->
      buckets.(p.monitor) <- p.name :: buckets.(p.monitor))
    (List.rev (Registry.props registry));
  buckets

let pretripped_of registry =
  let monitors = Registry.monitors registry in
  List.filter_map
    (fun (p : Registry.prop) ->
      if monitors.(p.monitor).Packed_dfa.pre_tripped then Some p.name
      else None)
    (Registry.props registry)

let install_hook d =
  Engine.set_retire_hook (Session.engine d.session)
    (Some
       (fun ~trace ~monitor ~position ~tripped ->
         match d.out with
         | None -> ()
         | Some buf ->
             let t0 = if Obs.is_enabled () then Obs.Clock.now_us () else 0. in
             let tname = Ingest.name (Session.ingest d.session) trace in
             List.iter
               (fun prop ->
                 if tripped then
                   Records.add_verdict_violation buf ~trace:tname ~prop
                     ~position ~cause:"trip"
                 else
                   Records.add_verdict_admissible buf ~trace:tname ~prop
                     ~cause:"retire")
               d.props_of_monitor.(monitor);
             if t0 > 0. then
               d.render_us <- d.render_us +. (Obs.Clock.now_us () -. t0)))

let adopt d session =
  d.session <- session;
  let registry = Session.registry session in
  d.props_of_monitor <- props_by_monitor registry;
  d.pretripped_props <- pretripped_of registry;
  d.announced <- Engine.ntraces (Session.engine session);
  install_hook d

let make session =
  let d =
    {
      session;
      props_of_monitor = [||];
      pretripped_props = [];
      announced = 0;
      out = None;
      render_us = 0.;
    }
  in
  adopt d session;
  d

let session d = d.session
let registry d = Session.registry d.session
let engine d = Session.engine d.session
let ingest d = Session.ingest d.session
let alphabet d = Registry.alphabet (registry d)
let fingerprint d = Registry.fingerprint (registry d)

let feed d ~buf (chunk : Ingest.chunk) =
  let eng = Session.engine d.session in
  d.out <- Some buf;
  d.render_us <- 0.;
  Fun.protect
    ~finally:(fun () -> d.out <- None)
    (fun () ->
      Engine.feed eng ~n:chunk.Ingest.len ~traces:chunk.Ingest.trace_ids
        ~symbols:chunk.Ingest.symbols ());
  let after = Engine.ntraces eng in
  if after > d.announced then begin
    (if d.pretripped_props <> [] then begin
       let t0 = if Obs.is_enabled () then Obs.Clock.now_us () else 0. in
       let ing = Session.ingest d.session in
       for id = d.announced to after - 1 do
         let trace = Ingest.name ing id in
         List.iter
           (fun prop ->
             Records.add_verdict_violation buf ~trace ~prop ~position:0
               ~cause:"pretripped")
           d.pretripped_props
       done;
       if t0 > 0. then
         d.render_us <- d.render_us +. (Obs.Clock.now_us () -. t0)
     end);
    d.announced <- after
  end;
  if Obs.is_enabled () && d.render_us > 0. then
    Obs.Metrics.observe h_stage_render (int_of_float (d.render_us *. 1e3))

let dump d ~buf ~trace =
  let eng = Session.engine d.session in
  let ing = Session.ingest d.session in
  let tname = Ingest.name ing trace in
  List.iter
    (fun (p : Registry.prop) ->
      match Engine.verdict eng ~trace ~monitor:p.monitor with
      | Engine.Vacuous -> Records.add_verdict_vacuous buf ~trace:tname ~prop:p.name
      | Engine.Admissible ->
          Records.add_verdict_admissible buf ~trace:tname ~prop:p.name
            ~cause:"eof"
      | Engine.Violation { position } ->
          Records.add_verdict_violation buf ~trace:tname ~prop:p.name ~position
            ~cause:"eof")
    (Registry.props (registry d))

let add_summary d buf ~conn_events ~conn_errors =
  let eng = Session.engine d.session in
  Records.add_summary buf ~traces:(Engine.ntraces eng)
    ~events:(Engine.events eng)
    ~props:(Registry.nprops (registry d))
    ~monitors:(Engine.nmonitors eng) ~tripped:(Engine.tripped eng)
    ~retired_admissible:(Engine.retired_admissible eng)
    ~live:(Engine.live eng) ~conn_events ~conn_errors

let swap_session d session =
  Engine.set_retire_hook (Session.engine d.session) None;
  adopt d session
