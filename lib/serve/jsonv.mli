(** A minimal JSON value parser — enough for [slc top] and the tests to
    consume the daemon's [sl-status/1] and NDJSON output without an
    external JSON dependency. Numbers are floats; strings decode the
    standard escapes including [\uXXXX] (surrogate pairs) to UTF-8.
    Rendering stays hand-rolled in {!Records}/{!Introspect} so field
    order remains byte-stable. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list  (** members in document order *)

val parse : string -> (t, string) result
(** Whole-string parse; trailing non-whitespace bytes are an error. *)

val member : string -> t -> t option
(** Object member by key ([None] on non-objects and absent keys). *)

val str : t -> string option
val num : t -> float option

val int_ : t -> int option
(** Truncates; the daemon only emits integers where the schema says
    integer. *)

val bool_ : t -> bool option
val arr : t -> t list option
val obj : t -> (string * t) list option
