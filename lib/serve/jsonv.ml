(* A minimal JSON value parser — just enough for `slc top` and the
   test suite to consume the daemon's sl-status/1 and NDJSON output
   without an external JSON dependency (the render side stays
   hand-rolled in Records/Introspect for byte-stable field order). *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Bad of string

let fail fmt = Printf.ksprintf (fun s -> raise (Bad s)) fmt

type state = { s : string; mutable pos : int }

let peek st = if st.pos < String.length st.s then Some st.s.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let skip_ws st =
  let n = String.length st.s in
  while
    st.pos < n
    && (match st.s.[st.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
  do
    advance st
  done

let expect st c =
  match peek st with
  | Some c' when c' = c -> advance st
  | Some c' -> fail "expected '%c' at %d, got '%c'" c st.pos c'
  | None -> fail "expected '%c' at %d, got end of input" c st.pos

let literal st word v =
  let n = String.length word in
  if st.pos + n <= String.length st.s && String.sub st.s st.pos n = word then begin
    st.pos <- st.pos + n;
    v
  end
  else fail "bad literal at %d" st.pos

(* \uXXXX escapes decode to UTF-8 bytes; surrogate pairs combine. *)
let utf8_add buf cp =
  if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
  else if cp < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xc0 lor (cp lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3f)))
  end
  else if cp < 0x10000 then begin
    Buffer.add_char buf (Char.chr (0xe0 lor (cp lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3f)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3f)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xf0 lor (cp lsr 18)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3f)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3f)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3f)))
  end

let hex4 st =
  let v = ref 0 in
  for _ = 1 to 4 do
    (match peek st with
    | Some c ->
        let d =
          match c with
          | '0' .. '9' -> Char.code c - Char.code '0'
          | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
          | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
          | _ -> fail "bad \\u escape at %d" st.pos
        in
        v := (!v * 16) + d
    | None -> fail "bad \\u escape at %d" st.pos);
    advance st
  done;
  !v

let parse_string st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> fail "unterminated string at %d" st.pos
    | Some '"' -> advance st
    | Some '\\' -> (
        advance st;
        (match peek st with
        | Some '"' -> Buffer.add_char buf '"'; advance st
        | Some '\\' -> Buffer.add_char buf '\\'; advance st
        | Some '/' -> Buffer.add_char buf '/'; advance st
        | Some 'b' -> Buffer.add_char buf '\b'; advance st
        | Some 'f' -> Buffer.add_char buf '\012'; advance st
        | Some 'n' -> Buffer.add_char buf '\n'; advance st
        | Some 'r' -> Buffer.add_char buf '\r'; advance st
        | Some 't' -> Buffer.add_char buf '\t'; advance st
        | Some 'u' ->
            advance st;
            let cp = hex4 st in
            let cp =
              if cp >= 0xd800 && cp <= 0xdbff then begin
                (* high surrogate: require the low half *)
                expect st '\\';
                expect st 'u';
                let lo = hex4 st in
                if lo < 0xdc00 || lo > 0xdfff then
                  fail "lone surrogate at %d" st.pos;
                0x10000 + ((cp - 0xd800) lsl 10) + (lo - 0xdc00)
              end
              else cp
            in
            utf8_add buf cp
        | _ -> fail "bad escape at %d" st.pos);
        go ())
    | Some c -> Buffer.add_char buf c; advance st; go ()
  in
  go ();
  Buffer.contents buf

let parse_number st =
  let start = st.pos in
  let n = String.length st.s in
  let is_num_char c =
    match c with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while st.pos < n && is_num_char st.s.[st.pos] do
    advance st
  done;
  let tok = String.sub st.s start (st.pos - start) in
  match float_of_string_opt tok with
  | Some f -> Num f
  | None -> fail "bad number %S at %d" tok start

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> fail "unexpected end of input at %d" st.pos
  | Some '{' ->
      advance st;
      skip_ws st;
      if peek st = Some '}' then begin advance st; Obj [] end
      else begin
        let members = ref [] in
        let rec member () =
          skip_ws st;
          let k = parse_string st in
          skip_ws st;
          expect st ':';
          let v = parse_value st in
          members := (k, v) :: !members;
          skip_ws st;
          match peek st with
          | Some ',' -> advance st; member ()
          | Some '}' -> advance st
          | _ -> fail "expected ',' or '}' at %d" st.pos
        in
        member ();
        Obj (List.rev !members)
      end
  | Some '[' ->
      advance st;
      skip_ws st;
      if peek st = Some ']' then begin advance st; Arr [] end
      else begin
        let items = ref [] in
        let rec item () =
          let v = parse_value st in
          items := v :: !items;
          skip_ws st;
          match peek st with
          | Some ',' -> advance st; item ()
          | Some ']' -> advance st
          | _ -> fail "expected ',' or ']' at %d" st.pos
        in
        item ();
        Arr (List.rev !items)
      end
  | Some '"' -> Str (parse_string st)
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some 'n' -> literal st "null" Null
  | Some _ -> parse_number st

let parse s =
  let st = { s; pos = 0 } in
  match parse_value st with
  | v ->
      skip_ws st;
      if st.pos <> String.length s then
        Error (Printf.sprintf "trailing bytes at %d" st.pos)
      else Ok v
  | exception Bad msg -> Error msg

let member k = function
  | Obj kvs -> List.assoc_opt k kvs
  | _ -> None

let str = function Str s -> Some s | _ -> None
let num = function Num f -> Some f | _ -> None
let int_ = function Num f -> Some (int_of_float f) | _ -> None
let bool_ = function Bool b -> Some b | _ -> None
let arr = function Arr l -> Some l | _ -> None
let obj = function Obj kvs -> Some kvs | _ -> None
