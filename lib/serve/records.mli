(** NDJSON wire records of the serving layer.

    One self-contained JSON object per line, schema
    [sl-monitor-report/1] — the same verdict vocabulary as the offline
    {!Sl_runtime.Verdict} report ([violation]/[admissible]/[vacuous]
    with the same 1-based bad-prefix positions), emitted incrementally
    per trip/retire instead of only at EOF. Every renderer returns a
    complete line including the trailing newline; field order is fixed,
    so the output is byte-stable across runs and [jobs] values (modulo
    record order, which the parallel feed may permute across shards).

    Record types: [hello] (one per connection, on accept), [verdict]
    (per (trace, property), with a [cause] of [trip]/[retire]/
    [pretripped]/[eof]), [error] (a structured {!Sl_runtime.Ingest}
    per-line defect echoed to the offending client), and [summary]
    (one per connection, at client EOF). *)

val escape : string -> string
(** JSON string-body escaping (quotes, backslashes, control bytes). *)

(** {1 Buffer renderers}

    Each [add_*] appends the exact bytes its string counterpart returns
    into the caller's buffer — the serving hot path renders a whole
    chunk's records into one reusable scratch buffer and hands the
    output queue a single coalesced slab. The string renderers are
    wrappers over these, so the two can never diverge. *)

val add_escape : Buffer.t -> string -> unit

val add_hello :
  Buffer.t -> version:string -> props:int -> monitors:int ->
  fingerprint:string -> unit

val add_verdict_violation :
  Buffer.t -> trace:string -> prop:string -> position:int -> cause:string ->
  unit

val add_verdict_admissible :
  Buffer.t -> trace:string -> prop:string -> cause:string -> unit

val add_verdict_vacuous : Buffer.t -> trace:string -> prop:string -> unit

val add_error :
  Buffer.t -> line:int -> trace:string option -> reason:string -> unit

val add_summary :
  Buffer.t -> traces:int -> events:int -> props:int -> monitors:int ->
  tripped:int -> retired_admissible:int -> live:int -> conn_events:int ->
  conn_errors:int -> unit

val hello :
  version:string -> props:int -> monitors:int -> fingerprint:string ->
  string

val verdict_violation :
  trace:string -> prop:string -> position:int -> cause:string -> string

val verdict_admissible : trace:string -> prop:string -> cause:string -> string
val verdict_vacuous : trace:string -> prop:string -> string

val error : line:int -> trace:string option -> reason:string -> string
(** The daemon's echo of a malformed input line: the client that sent
    it gets the line number (its own stream's numbering), the trace id
    when one was recognizable, and the reason — the connection stays
    open and the line is skipped. *)

val summary :
  traces:int -> events:int -> props:int -> monitors:int -> tripped:int ->
  retired_admissible:int -> live:int -> conn_events:int ->
  conn_errors:int -> string
(** Engine-global counters plus this connection's own event/error
    tallies; sent once, after the final per-trace verdict dump. *)
