open Sl_runtime
module Obs = Sl_obs.Obs

type config = {
  props_file : string;
  unix_socket : string option;
  tcp_port : int option;
  jobs : int option;
  threshold : int option;
  snapshot : string option;
  resume : string option;
  max_line : int;
  hwm : int;
  quiet : bool;
}

let default_config ~props_file =
  {
    props_file;
    unix_socket = None;
    tcp_port = None;
    jobs = None;
    threshold = None;
    snapshot = None;
    resume = None;
    max_line = 65536;
    hwm = 262144;
    quiet = false;
  }

(* Metrics (registered eagerly; recording is Obs-gated as usual). *)
let m_conns_total = Obs.Metrics.counter "serve_connections_total"
let m_conns = Obs.Metrics.gauge "serve_connections"
let m_bytes_in = Obs.Metrics.counter "serve_bytes_in_total"
let m_bytes_out = Obs.Metrics.counter "serve_bytes_out_total"
let m_stalled = Obs.Metrics.gauge "serve_backpressure_stalled"
let m_reloads = Obs.Metrics.counter "serve_reloads_total"
let m_reload_failures = Obs.Metrics.counter "serve_reload_failures_total"
let m_conn_errors = Obs.Metrics.counter "serve_line_errors_total"

(* Pipeline-stage timing: one observation per write pump (a connection
   draining its queue to the socket), the last stage of the serving
   pipeline. *)
let h_stage_write =
  Obs.Metrics.histogram
    ~help:"Pipeline stage: socket write pump latency per round"
    "stage_socket_write_ns"

(* Signal flags: handlers only flip refs; the loop acts between
   rounds. *)
let hup = ref false
let term = ref false

let install_signals () =
  Sys.set_signal Sys.sighup (Sys.Signal_handle (fun _ -> hup := true));
  Sys.set_signal Sys.sigterm (Sys.Signal_handle (fun _ -> term := true));
  Sys.set_signal Sys.sigint (Sys.Signal_handle (fun _ -> term := true));
  (* a vanished client must surface as EPIPE on its own write, never
     kill the process *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore

let note cfg fmt =
  if cfg.quiet then Printf.ifprintf stderr fmt
  else Printf.fprintf stderr fmt

let build_registry cfg =
  let registry = Registry.create () in
  let ic =
    if cfg.props_file = "-" then stdin
    else
      try open_in cfg.props_file
      with Sys_error msg -> prerr_endline ("slc serve: " ^ msg); exit 2
  in
  let errs =
    Fun.protect
      ~finally:(fun () -> if ic != stdin then close_in_noerr ic)
      (fun () ->
        Registry.load_channel registry ~path:cfg.props_file
          ?jobs:cfg.jobs ic)
  in
  List.iter prerr_endline errs;
  if Registry.nprops registry = 0 then begin
    prerr_endline "slc serve: no well-formed properties; nothing to monitor";
    exit 2
  end;
  registry

let build_session cfg registry =
  match cfg.resume with
  | None -> Session.create ?jobs:cfg.jobs ?threshold:cfg.threshold ~registry ()
  | Some path -> (
      match
        Session.load ?jobs:cfg.jobs ?threshold:cfg.threshold ~registry ~path ()
      with
      | Ok s ->
          note cfg "slc serve: resumed %s (%d traces, %d events)\n%!" path
            (Engine.ntraces (Session.engine s))
            (Engine.events (Session.engine s));
          s
      | Error e ->
          prerr_endline
            ("slc serve: --resume " ^ path ^ ": "
           ^ Session.restore_error_to_string e);
          exit 2)

let listen_unix path =
  if Sys.file_exists path then Unix.unlink path;
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_UNIX path);
  Unix.listen fd 64;
  Unix.set_nonblock fd;
  fd

let listen_tcp port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  Unix.listen fd 64;
  Unix.set_nonblock fd;
  fd

type client = {
  fd : Unix.file_descr;
  conn : Conn.t;
  mutable dead : bool;  (* transport failed; close regardless of drain *)
}

let run cfg =
  (* The daemon exposes /metrics; a dark kernel would scrape as all
     zeros, so serving implies collection. *)
  Obs.enable ();
  let registry = build_registry cfg in
  let session = build_session cfg registry in
  let daemon = Daemon.make session in
  let introspect =
    Introspect.create ?resumed_from:cfg.resume ?snapshot_path:cfg.snapshot
      ~version:"1.0.0" daemon
  in
  let http = Introspect.handler introspect in
  install_signals ();
  hup := false;
  term := false;
  let listeners = ref [] in
  (match cfg.unix_socket with
  | Some path ->
      (try listeners := (listen_unix path, `Unix path) :: !listeners
       with Unix.Unix_error (e, _, _) ->
         prerr_endline
           (Printf.sprintf "slc serve: cannot bind %s: %s" path
              (Unix.error_message e));
         exit 2)
  | None -> ());
  (match cfg.tcp_port with
  | Some port ->
      (try listeners := (listen_tcp port, `Tcp port) :: !listeners
       with Unix.Unix_error (e, _, _) ->
         prerr_endline
           (Printf.sprintf "slc serve: cannot bind 127.0.0.1:%d: %s" port
              (Unix.error_message e));
         exit 2)
  | None -> ());
  if !listeners = [] then begin
    prerr_endline "slc serve: no listener (need --socket and/or --port)";
    exit 2
  end;
  List.iter
    (fun (_, where) ->
      match where with
      | `Unix path -> note cfg "slc serve: listening on %s\n%!" path
      | `Tcp port -> note cfg "slc serve: listening on 127.0.0.1:%d\n%!" port)
    !listeners;
  let clients = ref [] in
  Introspect.set_conns introspect (fun () ->
      List.filter_map
        (fun cl ->
          if cl.dead then None
          else Some (Introspect.conn_info_of_conn cl.conn))
        !clients);
  let rbuf = Bytes.create 65536 in
  let accept_all lfd ~listener =
    let continue = ref true in
    while !continue do
      match Unix.accept ~cloexec:true lfd with
      | fd, _ ->
          Unix.set_nonblock fd;
          let conn =
            Conn.create ~max_line:cfg.max_line ~hwm:cfg.hwm ~listener ~http
              daemon
          in
          clients := { fd; conn; dead = false } :: !clients;
          Obs.Metrics.incr m_conns_total
      | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) ->
          continue := false
      | exception Unix.Unix_error (EINTR, _, _) -> ()
    done
  in
  let read_client cl =
    match Unix.read cl.fd rbuf 0 (Bytes.length rbuf) with
    | 0 -> Conn.on_eof cl.conn
    | n ->
        Obs.Metrics.add m_bytes_in n;
        let errs0 = Conn.errors cl.conn in
        (* zero-copy: the connection scans [rbuf] in place and retains
           nothing, so the next read may reuse it *)
        Conn.on_bytes_raw cl.conn rbuf 0 n;
        Obs.Metrics.add m_conn_errors (Conn.errors cl.conn - errs0)
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
    | exception Unix.Unix_error ((ECONNRESET | EPIPE), _, _) -> cl.dead <- true
  in
  let write_client cl =
    let t0 =
      if Obs.is_enabled () && Conn.pending_output cl.conn > 0 then
        Obs.Clock.now_us ()
      else 0.
    in
    let continue = ref true in
    while !continue do
      match Conn.next_output cl.conn with
      | None -> continue := false
      | Some (s, off) -> (
          match Unix.write_substring cl.fd s off (String.length s - off) with
          | 0 -> continue := false
          | n ->
              Conn.consumed cl.conn n;
              Obs.Metrics.add m_bytes_out n
          | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) ->
              continue := false
          | exception Unix.Unix_error ((EPIPE | ECONNRESET), _, _) ->
              cl.dead <- true;
              continue := false)
    done;
    if t0 > 0. then
      Obs.Metrics.observe h_stage_write
        (int_of_float ((Obs.Clock.now_us () -. t0) *. 1e3))
  in
  let do_reload () =
    match
      Reload.from_props_file ~old_session:(Daemon.session daemon)
        ~props_file:cfg.props_file ?jobs:cfg.jobs ?threshold:cfg.threshold ()
    with
    | Ok (s, carried, errs) ->
        List.iter prerr_endline errs;
        Daemon.swap_session daemon s;
        Obs.Metrics.incr m_reloads;
        Introspect.note_reload introspect ~ok:true
          ~detail:
            (Printf.sprintf "%d props, %d/%d monitors carried, fingerprint %s"
               (Registry.nprops (Daemon.registry daemon))
               carried
               (Registry.nmonitors (Daemon.registry daemon))
               (Daemon.fingerprint daemon));
        note cfg
          "slc serve: reloaded %s (%d props, %d/%d monitors carried, \
           fingerprint %s)\n\
           %!"
          cfg.props_file
          (Registry.nprops (Daemon.registry daemon))
          carried
          (Registry.nmonitors (Daemon.registry daemon))
          (Daemon.fingerprint daemon)
    | Error e ->
        Obs.Metrics.incr m_reload_failures;
        Introspect.note_reload introspect ~ok:false ~detail:e;
        note cfg "slc serve: reload refused: %s\n%!" e
  in
  while not !term do
    if !hup then begin
      hup := false;
      do_reload ()
    end;
    let rfds =
      List.map fst !listeners
      @ List.filter_map
          (fun cl ->
            if (not cl.dead) && Conn.wants_read cl.conn then Some cl.fd
            else None)
          !clients
    and wfds =
      List.filter_map
        (fun cl ->
          if (not cl.dead) && Conn.pending_output cl.conn > 0 then Some cl.fd
          else None)
        !clients
    in
    (match Unix.select rfds wfds [] 0.5 with
    | exception Unix.Unix_error (EINTR, _, _) -> ()
    | readable, writable, _ ->
        List.iter
          (fun fd ->
            match List.assoc_opt fd !listeners with
            | Some (`Unix _) -> accept_all fd ~listener:"unix"
            | Some (`Tcp _) -> accept_all fd ~listener:"tcp"
            | None -> (
                match List.find_opt (fun cl -> cl.fd == fd) !clients with
                | Some cl -> read_client cl
                | None -> ()))
          readable;
        List.iter
          (fun fd ->
            match List.find_opt (fun cl -> cl.fd == fd) !clients with
            | Some cl -> write_client cl
            | None -> ())
          writable);
    let closing, alive =
      List.partition
        (fun cl -> cl.dead || Conn.should_close cl.conn)
        !clients
    in
    List.iter (fun cl -> try Unix.close cl.fd with Unix.Unix_error _ -> ())
      closing;
    clients := alive;
    Obs.Metrics.set m_conns (List.length alive);
    Obs.Metrics.set m_stalled
      (List.length
         (List.filter
            (fun cl ->
              (not cl.dead)
              && (not (Conn.wants_read cl.conn))
              && not (Conn.should_close cl.conn))
            alive))
  done;
  (* Graceful shutdown: stop accepting, snapshot, close. *)
  List.iter
    (fun (fd, where) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      match where with
      | `Unix path -> ( try Unix.unlink path with Unix.Unix_error _ | Sys_error _ -> ())
      | `Tcp _ -> ())
    !listeners;
  List.iter
    (fun cl -> try Unix.close cl.fd with Unix.Unix_error _ -> ())
    !clients;
  match cfg.snapshot with
  | None -> 0
  | Some path -> (
      try
        Session.save (Daemon.session daemon) ~path;
        note cfg "slc serve: snapshot written to %s (%d traces, %d events)\n%!"
          path
          (Engine.ntraces (Daemon.engine daemon))
          (Engine.events (Daemon.engine daemon));
        0
      with Sys_error msg ->
        prerr_endline ("slc serve: snapshot failed: " ^ msg);
        2)
