open Sl_runtime
module Obs = Sl_obs.Obs

(* Pipeline-stage timing (socket path): the parse stage is the time
   [on_bytes] spends splitting lines and batching events, minus the
   nested engine-feed time — observed once per [on_bytes] call, never
   per line. The same family is recorded by [Ingest] offline. *)
let h_stage_parse =
  Obs.Metrics.histogram
    ~help:"Pipeline stage: line parse/accumulate latency per chunk"
    "stage_ingest_parse_ns"

(* Per-listener labeled series. The label is the listener kind, not the
   connection id: ids are unbounded over a daemon's lifetime and would
   blow up the exposition's cardinality, so exact per-connection state
   lives in the /status connection table instead (see DESIGN.md
   par. 6.13). *)
let v_conn_events =
  Obs.Metrics.counter_vec ~help:"Events accepted from clients, per listener"
    "conn_events_total" ~labels:[ "listener" ]

let v_conn_errors =
  Obs.Metrics.counter_vec
    ~help:"Malformed or rejected client lines, per listener"
    "conn_errors_total" ~labels:[ "listener" ]

type mode =
  | Lines  (* streaming the Ingest line protocol *)
  | Http  (* one-shot GET answered, ignoring further input *)
  | Done  (* EOF seen, draining *)

(* Records rendered while processing one read accumulate in the
   connection's scratch buffer and reach the output queue as a single
   coalesced slab — one queue entry and one string per read (or per
   [slab_cap] bytes within a pathological read) instead of one per
   record. The scratch is always empty at the public API boundary, so
   [pending_output]/[should_close]/[stalled] see every rendered byte. *)
let slab_cap = 65536

type t = {
  id : int;  (* process-unique, for the /status connection table *)
  daemon : Daemon.t;
  max_line : int;
  hwm : int;
  listener : string;  (* "unix" | "tcp" | "local" (tests) *)
  http_handler : (string -> (string * string * string) option) option;
  buf : Buffer.t;  (* at most one partial line *)
  scratch : Buffer.t;  (* records of the read being processed *)
  mutable oversized : bool;  (* discarding until the next newline *)
  mutable nlines : int;
  mutable mode : mode;
  outq : string Queue.t;
  mutable out_off : int;  (* written bytes of the queue head *)
  mutable out_bytes : int;
  chunk : Ingest.chunk;
  touched : (int, unit) Hashtbl.t;
  mutable greeted : bool;  (* hello queued (deferred past GET detection) *)
  mutable conn_events : int;
  mutable conn_errors : int;
  mutable draining : bool;
  mutable feed_us : float;  (* engine time nested in the current on_bytes *)
  ev_child : Obs.Metrics.counter;
  err_child : Obs.Metrics.counter;
}

let enqueue c s =
  Queue.push s c.outq;
  c.out_bytes <- c.out_bytes + String.length s

let flush_slab c =
  if Buffer.length c.scratch > 0 then begin
    enqueue c (Buffer.contents c.scratch);
    Buffer.clear c.scratch
  end

let next_id = ref 0

let create ?(max_line = 65536) ?(hwm = 262144) ?(listener = "local") ?http
    daemon =
  let id = !next_id in
  incr next_id;
  let c =
    {
      id;
      daemon;
      max_line;
      hwm;
      listener;
      http_handler = http;
      buf = Buffer.create 256;
      scratch = Buffer.create 4096;
      oversized = false;
      nlines = 0;
      mode = Lines;
      outq = Queue.create ();
      out_off = 0;
      out_bytes = 0;
      chunk = Ingest.create_chunk 4096;
      touched = Hashtbl.create 16;
      greeted = false;
      conn_events = 0;
      conn_errors = 0;
      draining = false;
      feed_us = 0.;
      ev_child = Obs.Metrics.counter_child v_conn_events [ listener ];
      err_child = Obs.Metrics.counter_child v_conn_errors [ listener ];
    }
  in
  c

(* The greeting opens every NDJSON stream, but only once the first line
   has ruled out HTTP mode — a Prometheus scraper must see the status
   line first, not a stray JSON record. *)
let greet c =
  if not c.greeted then begin
    c.greeted <- true;
    let registry = Daemon.registry c.daemon in
    Records.add_hello c.scratch ~version:"1.0.0"
      ~props:(Registry.nprops registry)
      ~monitors:(Registry.nmonitors registry)
      ~fingerprint:(Registry.fingerprint registry)
  end

let report c ~trace reason =
  c.conn_errors <- c.conn_errors + 1;
  Obs.Metrics.incr c.err_child;
  Records.add_error c.scratch ~line:c.nlines ~trace ~reason

let flush_chunk c =
  if c.chunk.Ingest.len > 0 then begin
    (if Obs.is_enabled () then begin
       let t0 = Obs.Clock.now_us () in
       Daemon.feed c.daemon ~buf:c.scratch c.chunk;
       c.feed_us <- c.feed_us +. (Obs.Clock.now_us () -. t0);
       Obs.Metrics.add c.ev_child c.chunk.Ingest.len
     end
     else Daemon.feed c.daemon ~buf:c.scratch c.chunk);
    c.chunk.Ingest.len <- 0
  end

let http c line =
  (* records already rendered (the EOF-path greeting) must reach the
     queue before the HTTP reply, which bypasses the scratch *)
  flush_slab c;
  c.mode <- Http;
  c.draining <- true;
  let path =
    match String.split_on_char ' ' line with
    | _ :: path :: _ -> path
    | _ -> "/"
  in
  let status, ctype, body =
    if path = "/metrics" then
      ("200 OK", "text/plain; version=0.0.4", Sl_obs.Obs.Metrics.to_prometheus ())
    else
      match Option.bind c.http_handler (fun h -> h path) with
      | Some reply -> reply
      | None -> ("404 Not Found", "text/plain", "not found\n")
  in
  enqueue c
    (Printf.sprintf
       "HTTP/1.0 %s\r\nContent-Type: %s\r\nContent-Length: %d\r\nConnection: \
        close\r\n\r\n%s"
       status ctype (String.length body) body)

(* One complete protocol line as a slice of the transport block —
   scanned in place by [Ingest.scan_event] (the allocation-free fast
   path); blank/comment/malformed lines fall back to [Ingest.scan_line]
   for the exact skip/error result. *)
let process_slice c s off len =
  if
    c.nlines = 1 && len >= 4
    && String.unsafe_get s off = 'G'
    && String.unsafe_get s (off + 1) = 'E'
    && String.unsafe_get s (off + 2) = 'T'
    && String.unsafe_get s (off + 3) = ' '
  then http c (String.sub s off len)
  else begin
    greet c;
    let ingest = Daemon.ingest c.daemon in
    let alphabet = Daemon.alphabet c.daemon in
    let push id symbol =
      Hashtbl.replace c.touched id ();
      c.chunk.Ingest.trace_ids.(c.chunk.Ingest.len) <- id;
      c.chunk.Ingest.symbols.(c.chunk.Ingest.len) <- symbol;
      c.chunk.Ingest.len <- c.chunk.Ingest.len + 1;
      c.conn_events <- c.conn_events + 1;
      if c.chunk.Ingest.len = Array.length c.chunk.Ingest.trace_ids then begin
        flush_chunk c;
        if Buffer.length c.scratch >= slab_cap then flush_slab c
      end
    in
    let id = Ingest.scan_event ingest ~alphabet s off len in
    if id >= 0 then push id (Ingest.scanned_symbol ingest)
    else
      match Ingest.scan_line ingest ~alphabet s off len with
      | `Skip -> ()
      | `Error (trace, reason) -> report c ~trace reason
      | `Event (id, symbol) ->
          (* unreachable: [scan_event] accepts every event line *)
          push id symbol
  end

(* A complete line arrived: the partial buffer plus the slice. *)
let complete_slice c s off len =
  c.nlines <- c.nlines + 1;
  if c.oversized then begin
    (* tail of a line already reported over-length — resynchronize *)
    c.oversized <- false;
    Buffer.clear c.buf
  end
  else if Buffer.length c.buf + len > c.max_line then begin
    Buffer.clear c.buf;
    report c ~trace:None
      (Printf.sprintf "line exceeds %d bytes (skipped)" c.max_line)
  end
  else if Buffer.length c.buf = 0 then process_slice c s off len
  else begin
    (* line split across reads: materialize once and re-scan *)
    Buffer.add_substring c.buf s off len;
    let line = Buffer.contents c.buf in
    Buffer.clear c.buf;
    process_slice c line 0 (String.length line)
  end

(* A partial line (no newline yet): buffer, or tip over the cap. *)
let partial_slice c s off len =
  if not c.oversized then begin
    if Buffer.length c.buf + len > c.max_line then begin
      c.oversized <- true;
      Buffer.clear c.buf;
      c.nlines <- c.nlines + 1;
      report c ~trace:None
        (Printf.sprintf "line exceeds %d bytes (skipped)" c.max_line);
      (* the count stays on this line while we discard its tail *)
      c.nlines <- c.nlines - 1
    end
    else Buffer.add_substring c.buf s off len
  end

(* The core loop over one transport block [s.[off, off+len)]. The
   newline scan is [Ingest.find_newline] (C memchr) bounded by [stop] —
   the block may be a view of a reusable read buffer whose bytes beyond
   [len] are stale, where [String.index_from_opt] could find a newline
   from a previous read. *)
let on_bytes_str c s off len =
  if c.mode = Lines then begin
    let enabled = Obs.is_enabled () in
    let t0 = if enabled then Obs.Clock.now_us () else 0. in
    c.feed_us <- 0.;
    let stop = off + len in
    let i = ref off in
    while !i < stop && c.mode = Lines do
      let j = Ingest.find_newline s !i stop in
      if j >= 0 then begin
        complete_slice c s !i (j - !i);
        i := j + 1
      end
      else begin
        partial_slice c s !i (stop - !i);
        i := stop
      end
    done;
    flush_chunk c;
    if enabled && c.mode = Lines then begin
      let parse_us = Obs.Clock.now_us () -. t0 -. c.feed_us in
      if parse_us >= 0. then
        Obs.Metrics.observe h_stage_parse (int_of_float (parse_us *. 1e3))
    end;
    flush_slab c
  end

let on_bytes c s = on_bytes_str c s 0 (String.length s)

(* Reading into one reusable [Bytes.t] and scanning it in place is
   sound: nothing past this call retains a reference into the block —
   [Ingest.scan_line] copies what it keeps, and so do the partial-line
   buffer and the error records. *)
let on_bytes_raw c b off len =
  if off < 0 || len < 0 || off + len > Bytes.length b then
    invalid_arg "Conn.on_bytes_raw";
  on_bytes_str c (Bytes.unsafe_to_string b) off len

let on_eof c =
  (match c.mode with
  | Lines ->
      greet c;
      flush_chunk c;
      if (not c.oversized) && Buffer.length c.buf > 0 then begin
        (* final line without a newline *)
        let line = Buffer.contents c.buf in
        Buffer.clear c.buf;
        c.nlines <- c.nlines + 1;
        process_slice c line 0 (String.length line);
        flush_chunk c
      end;
      let ids =
        Hashtbl.fold (fun id () acc -> id :: acc) c.touched []
        |> List.sort compare
      in
      List.iter
        (fun id ->
          Daemon.dump c.daemon ~buf:c.scratch ~trace:id;
          if Buffer.length c.scratch >= slab_cap then flush_slab c)
        ids;
      Daemon.add_summary c.daemon c.scratch ~conn_events:c.conn_events
        ~conn_errors:c.conn_errors
  | Http | Done -> ());
  c.mode <- Done;
  c.draining <- true;
  flush_slab c

let wants_read c =
  (match c.mode with Lines -> true | Http | Done -> false)
  && (not c.draining)
  && c.out_bytes < c.hwm

let next_output c =
  match Queue.peek_opt c.outq with
  | None -> None
  | Some s -> Some (s, c.out_off)

let consumed c n =
  (match Queue.peek_opt c.outq with
  | None -> invalid_arg "Conn.consumed: no pending output"
  | Some s ->
      let off = c.out_off + n in
      if off > String.length s then invalid_arg "Conn.consumed: past the head";
      if off = String.length s then begin
        ignore (Queue.pop c.outq);
        c.out_off <- 0
      end
      else c.out_off <- off);
  c.out_bytes <- c.out_bytes - n

let pending_output c = c.out_bytes

let should_close c = c.draining && c.out_bytes = 0

let drain_output c =
  let buf = Buffer.create (c.out_bytes + 16) in
  Queue.iter
    (fun s ->
      if Buffer.length buf = 0 && c.out_off > 0 then
        Buffer.add_substring buf s c.out_off (String.length s - c.out_off)
      else Buffer.add_string buf s)
    c.outq;
  Queue.clear c.outq;
  c.out_off <- 0;
  c.out_bytes <- 0;
  Buffer.contents buf

let touched c =
  Hashtbl.fold (fun id () acc -> id :: acc) c.touched [] |> List.sort compare

let events c = c.conn_events
let errors c = c.conn_errors
let id c = c.id
let lines c = c.nlines
let listener c = c.listener

let mode_name c =
  match c.mode with Lines -> "lines" | Http -> "http" | Done -> "done"

(* Back-pressured: still streaming but over the high-water mark, so the
   loop has stopped selecting the socket for reads. *)
let stalled c = c.mode = Lines && (not c.draining) && c.out_bytes >= c.hwm
