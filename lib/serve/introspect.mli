(** Live introspection: JSON status endpoints ([sl-status/1]) served on
    the daemon's one-shot HTTP path next to [/metrics].

    Four routes, all read-only over the shared {!Daemon}:

    - [GET /healthz] — liveness: [status] and [uptime_s].
    - [GET /status] — uptime, registry identity, engine counters, the
      connection table (buffer/back-pressure state per live
      connection), reload counts with a bounded history, resume/
      snapshot configuration, compile-cache hit ratios, and obs-kernel
      state.
    - [GET /monitors] — one row per distinct monitor: canonical-key
      hash, the property names riding on it, and its exact verdict
      census (live / tripped / retired-admissible trace counts) from
      {!Sl_runtime.Engine.monitor_counts} — the trace table itself,
      not telemetry counters, so the numbers square with the offline
      report even after a [--resume].
    - [GET /traces] — per-trace [(name, events, live, tripped)] rows,
      capped at 1000 with a [truncated] flag.

    Responses are hand-rolled JSON with fixed field order (like
    {!Records}), one trailing newline, content type
    [application/json]. *)

type t

val create :
  ?resumed_from:string -> ?snapshot_path:string -> version:string ->
  Daemon.t -> t
(** Uptime starts now. [resumed_from]/[snapshot_path] surface the
    daemon's session-artifact configuration in [/status]. *)

type conn_info = {
  ci_id : int;
  ci_listener : string;
  ci_mode : string;
  ci_lines : int;
  ci_events : int;
  ci_errors : int;
  ci_pending_out : int;
  ci_stalled : bool;
}

val conn_info_of_conn : Conn.t -> conn_info

val set_conns : t -> (unit -> conn_info list) -> unit
(** Install the connection-table source (the loop closes over its live
    client list). Default: empty. *)

val note_reload : t -> ok:bool -> detail:string -> unit
(** Record a SIGHUP reload attempt (bounded history, newest first). *)

val handler : t -> string -> (string * string * string) option
(** The {!Conn.create}[ ?http] handler: [Some (status, content_type,
    body)] for the four routes above, [None] otherwise. *)
