open Sl_runtime

(* Build the new-engine state of one trace from the old one: carried
   monitors keep state/trip/liveness, fresh monitors start at the start
   state (pre-tripped ones trip at position 0, like any
   materialization). Live order: carried monitors in the old live-list
   order, then fresh lives ascending — [Engine.restore_trace] validates
   the result like any snapshot. *)
let carry_trace ~new_monitors ~(map : int option array)
    ~(inv : int option array) (ts : Engine.trace_state) =
  let m' = Array.length map in
  let states = Array.make m' Packed_dfa.start in
  let tripped_at = Array.make m' (-1) in
  let fresh_live = ref [] in
  for j = m' - 1 downto 0 do
    let pd : Packed_dfa.t = new_monitors.(j) in
    match map.(j) with
    | Some i ->
        states.(j) <- ts.Engine.ts_states.(i);
        tripped_at.(j) <- ts.Engine.ts_tripped_at.(i)
    | None ->
        if pd.Packed_dfa.pre_tripped then tripped_at.(j) <- 0
        else if not pd.Packed_dfa.vacuous then fresh_live := j :: !fresh_live
  done;
  let carried_live =
    Array.to_list ts.Engine.ts_live
    |> List.filter_map (fun i -> inv.(i))
  in
  {
    Engine.ts_events = ts.Engine.ts_events;
    ts_states = states;
    ts_live = Array.of_list (carried_live @ !fresh_live);
    ts_tripped_at = tripped_at;
  }

let carry_over ~old_session ~registry ?jobs ?threshold () =
  let old_registry = Session.registry old_session in
  let old_engine = Session.engine old_session in
  let jobs = match jobs with Some j -> j | None -> Engine.jobs old_engine in
  if Registry.fingerprint old_registry = Registry.fingerprint registry then
    (* structurally identical: exact continuation via the snapshot codec *)
    match
      Session.of_artifact ~jobs ?threshold ~registry
        (Session.to_artifact old_session)
    with
    | Ok s -> Ok (s, Registry.nmonitors registry)
    | Error e -> Error (Session.restore_error_to_string e)
  else if Registry.alphabet old_registry <> Registry.alphabet registry then
    Error
      (Printf.sprintf
         "alphabet changed (%d -> %d): in-flight traces cannot be carried over"
         (Registry.alphabet old_registry)
         (Registry.alphabet registry))
  else begin
    let old_monitors = Engine.plan_monitors (Engine.plan old_engine) in
    let new_monitors = Registry.monitors registry in
    let by_key = Hashtbl.create 16 in
    Array.iteri
      (fun i (pd : Packed_dfa.t) -> Hashtbl.replace by_key pd.Packed_dfa.key i)
      old_monitors;
    (* new monitor index -> old monitor index, and its inverse *)
    let map =
      Array.map
        (fun (pd : Packed_dfa.t) -> Hashtbl.find_opt by_key pd.Packed_dfa.key)
        new_monitors
    in
    let inv = Array.make (Array.length old_monitors) None in
    Array.iteri
      (fun j oi -> match oi with Some i -> inv.(i) <- Some j | None -> ())
      map;
    let fresh = Session.create ~jobs ?threshold ~registry () in
    let new_ingest = Session.ingest fresh in
    Array.iter
      (fun name -> ignore (Ingest.intern new_ingest name))
      (Ingest.names (Session.ingest old_session));
    let new_engine = Session.engine fresh in
    let tripped = ref 0 and retired = ref 0 in
    for id = 0 to Engine.ntraces old_engine - 1 do
      match Engine.export_trace old_engine id with
      | None -> ()
      | Some ts ->
          let ts' = carry_trace ~new_monitors ~map ~inv ts in
          Engine.restore_trace new_engine id ts';
          let in_live = Array.make (Array.length new_monitors) false in
          Array.iter (fun j -> in_live.(j) <- true) ts'.Engine.ts_live;
          Array.iteri
            (fun j (pd : Packed_dfa.t) ->
              if ts'.Engine.ts_tripped_at.(j) >= 0 then incr tripped
              else if (not pd.Packed_dfa.vacuous) && not in_live.(j) then
                incr retired)
            new_monitors
    done;
    Engine.set_counters new_engine ~events:(Engine.events old_engine)
      ~tripped:!tripped ~retired_admissible:!retired;
    let carried =
      Array.fold_left
        (fun acc oi -> match oi with Some _ -> acc + 1 | None -> acc)
        0 map
    in
    Ok (fresh, carried)
  end

let from_props_file ~old_session ~props_file ?jobs ?threshold () =
  let old_registry = Session.registry old_session in
  match open_in props_file with
  | exception Sys_error msg -> Error msg
  | ic ->
      let registry =
        Registry.create ~alphabet:(Registry.alphabet old_registry) ()
      in
      let errs =
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> Registry.load_channel registry ~path:props_file ic)
      in
      if Registry.nprops registry = 0 then
        Error
          (Printf.sprintf "%s: no well-formed properties; reload refused"
             props_file)
      else begin
        match carry_over ~old_session ~registry ?jobs ?threshold () with
        | Ok (s, carried) -> Ok (s, carried, errs)
        | Error e -> Error e
      end
