(** Hot registry reload without dropping in-flight traces.

    SIGHUP rebuilds the property registry off to the side (warm-started
    from the compile cache like any registry build) and then carries the
    running session over to it:

    - {b identical registry} (equal {!Sl_runtime.Registry.fingerprint}):
      the session round-trips through its own [sl-artifact/1] snapshot —
      exact continuation, byte-identical to not reloading at all.
    - {b changed alphabet}: refused. A trace's past events have no
      meaning over a different alphabet, so its monitor states cannot be
      carried; the daemon keeps serving the old registry.
    - {b changed properties, same alphabet}: per-monitor carry-over.
      Compiled monitors are identified by their canonical
      {!Sl_runtime.Packed_dfa.key} (the same identity the registry uses
      to hash-cons); a new monitor whose key matches an old one inherits
      each trace's exact state — current DFA state, trip position,
      liveness — because language-equal monitors have identical packed
      tables. Monitors new to the registry start fresh at the start
      state on every existing trace (their verdict history begins at the
      reload; events before it are unjudged, which is the honest
      semantics for a property that did not exist then). Counters are
      recomputed from the carried states; the trace-id interner carries
      over wholesale. *)

val carry_over :
  old_session:Sl_runtime.Session.t ->
  registry:Sl_runtime.Registry.t ->
  ?jobs:int ->
  ?threshold:int ->
  unit ->
  (Sl_runtime.Session.t * int, string) result
(** Build a session over [registry] continuing [old_session]'s run.
    Returns the new session and the number of new-registry monitors
    that inherited state ([= nmonitors] on the identical path).
    [jobs] defaults to the old engine's pool width. [Error] refuses the
    reload (alphabet change, or a corrupt round-trip) — the old session
    is never touched either way. *)

val from_props_file :
  old_session:Sl_runtime.Session.t ->
  props_file:string ->
  ?jobs:int ->
  ?threshold:int ->
  unit ->
  (Sl_runtime.Session.t * int * string list, string) result
(** The SIGHUP entry point: re-read [props_file] into a fresh registry
    (same alphabet and compile cache defaults as startup) and
    {!carry_over}. Returns the session, carried-monitor count, and the
    per-line parse errors of the property file (skipped lines, reload
    not refused). A file with no well-formed properties refuses the
    reload. *)
