(** The daemon event loop: a single-threaded [Unix.select] reactor.

    One process, one {!Daemon} (so one engine — parallelism lives inside
    the engine's domain pool, sharded by trace id, not in the I/O
    layer), many connections. The loop owns all syscalls and signals;
    protocol logic lives in {!Conn}, monitoring in {!Daemon}.

    Per round: commit any pending SIGHUP reload (between rounds every
    connection's chunk is flushed, so no event straddles the registry
    swap), then select readable listeners plus connections that
    {!Conn.wants_read} (back-pressured connections are simply not
    selected — the kernel socket buffer and the client's TCP window
    absorb the stall) and writable connections with pending output.
    Reads are capped per round; writes pump until [EAGAIN]. Connections
    report EOF/reset to {!Conn.on_eof} and close once drained.

    SIGTERM/SIGINT initiate graceful shutdown: stop accepting, write the
    [--snapshot] session artifact (if configured), close everything,
    exit 0 — restarting with [--resume] on that artifact continues the
    run byte-identically. *)

type config = {
  props_file : string;
  unix_socket : string option;
  tcp_port : int option;  (** bound on loopback *)
  jobs : int option;  (** engine pool width; default [Pool.default_jobs] *)
  threshold : int option;  (** engine work-size cutoff *)
  snapshot : string option;  (** written on graceful shutdown *)
  resume : string option;  (** session artifact to restore at startup *)
  max_line : int;
  hwm : int;
  quiet : bool;  (** suppress the per-lifecycle stderr notes *)
}

val default_config : props_file:string -> config
(** No listeners configured (callers set at least one), default
    buffer bounds, no snapshot/resume. *)

val run : config -> int
(** Run until SIGTERM/SIGINT. Returns the process exit code: [0] after
    a graceful shutdown (including a clean snapshot write), [2] on
    startup errors (bad property file, unbindable socket, failed
    resume) or a failed shutdown snapshot. Never exits on connection
    errors — a hostile or vanished client only loses its own
    connection. *)
