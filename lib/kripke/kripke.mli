(** Kripke structures: finite transition systems with atomic-proposition
    labels.

    These are the finite presentations of the infinite computation trees of
    the paper's branching-time framework (Section 4): unwinding a Kripke
    structure from a state yields a total tree, and CTL properties of that
    tree are decided by model checking the structure ([Sl_ctl]). Every
    state must have at least one successor so unwindings are total. *)

type t = {
  nstates : int;
  initial : int;
  successors : int list array;  (** nonempty per state, sorted *)
  ap : string array;  (** atomic proposition names *)
  labels : bool array array;  (** [labels.(state).(ap_index)] *)
}

val make :
  nstates:int -> initial:int -> successors:int list array ->
  ap:string array -> labels:bool array array -> t
(** Validates totality (every state has a successor), ranges and shapes. *)

val holds : t -> int -> string -> bool
(** [holds k q p] — does proposition [p] hold at state [q]?
    Unknown propositions are false. *)

val ap_index : t -> string -> int option

val graph : t -> Sl_core.Digraph.t
(** The transition graph as a CSR kernel graph (unlabeled). *)

val reachable : t -> bool array
val restrict_reachable : t -> t
(** Drop unreachable states (renumbering). *)

val branching_degree : t -> int
(** Maximum successor count. *)

val is_k_ary : t -> int -> bool
(** Every state has exactly [k] successors. *)

val pp : Format.formatter -> t -> unit

(** {1 Paths}

    Lasso-shaped paths are state sequences [q_0 … q_{s-1} (q_s … q_e)^ω]
    following the transition relation; they are the branching-time
    analogue of {!Sl_word.Lasso} and witness existential CTL facts. *)

val lasso_paths : t -> from:int -> max_len:int -> (int list * int list) list
(** All lasso paths [(spoke, cycle)] from a state with
    [|spoke| + |cycle| <= max_len]; cycles nonempty. *)

val path_labels : t -> int list -> string -> bool list
(** Truth of one proposition along a state sequence. *)

(** {1 Generators} *)

val mutex : unit -> t
(** Two-process mutual exclusion (Peterson-flavoured abstraction):
    propositions [n1, t1, c1, n2, t2, c2] (non-critical / trying /
    critical). The standard CTL benchmarking structure: safety
    [AG !(c1 & c2)] holds, liveness [AG (t1 -> AF c1)] holds under the
    built-in scheduler. *)

val token_ring : int -> t
(** [n]-station token ring; proposition [tok_i] marks the token at station
    [i]; the token moves one station per step. *)

val peterson : unit -> t
(** The genuine Peterson mutual-exclusion algorithm: program counters
    (idle / setting-flag / setting-turn / waiting / critical), two flag
    bits and the turn bit, interleaved moves, idling allowed in the idle
    section. Propositions: [idle1], [wait1], [c1] (and [..2]), [turn1],
    [turn2]. Mutual exclusion holds structurally; entry is guaranteed
    only under scheduling fairness — exactly the safety/liveness split. *)

val bounded_buffer : capacity:int -> t
(** Producer/consumer over a buffer of the given capacity; state =
    current fill level. Propositions: [empty], [full]. *)

val dining_philosophers : int -> t
(** [n] philosophers (2 to 5 recommended; state space [3^n] pruned to
    consistent fork assignments). Proposition [eat_i] marks philosopher
    [i] eating. Deadlock-free by asymmetric fork order. *)

val random : ?seed:int -> nstates:int -> ap:string array -> density:float -> unit -> t
(** Random total structure, deterministic in [seed]. *)
