type t = {
  nstates : int;
  initial : int;
  successors : int list array;
  ap : string array;
  labels : bool array array;
}

let make ~nstates ~initial ~successors ~ap ~labels =
  if nstates < 1 then invalid_arg "Kripke.make: need at least one state";
  if initial < 0 || initial >= nstates then
    invalid_arg "Kripke.make: bad initial state";
  if Array.length successors <> nstates || Array.length labels <> nstates
  then invalid_arg "Kripke.make: shape mismatch";
  let nap = Array.length ap in
  Array.iter
    (fun row ->
      if Array.length row <> nap then invalid_arg "Kripke.make: label shape")
    labels;
  let successors =
    Array.map
      (fun succs ->
        if succs = [] then
          invalid_arg "Kripke.make: state without successor (not total)";
        List.iter
          (fun q ->
            if q < 0 || q >= nstates then
              invalid_arg "Kripke.make: successor out of range")
          succs;
        List.sort_uniq compare succs)
      successors
  in
  { nstates; initial; successors; ap; labels }

let ap_index k p =
  let found = ref None in
  Array.iteri (fun i q -> if String.equal q p then found := Some i) k.ap;
  !found

let holds k q p =
  match ap_index k p with Some i -> k.labels.(q).(i) | None -> false

let graph k = Sl_core.Digraph.of_successors k.successors

let reachable k = Sl_core.Digraph.reachable (graph k) [ k.initial ]

let restrict_reachable k =
  let reach = reachable k in
  let remap = Array.make k.nstates (-1) in
  let count = ref 0 in
  Array.iteri
    (fun q r ->
      if r then begin
        remap.(q) <- !count;
        incr count
      end)
    reach;
  let nstates = !count in
  let successors = Array.make nstates [] in
  let labels = Array.make nstates [||] in
  Array.iteri
    (fun q r ->
      if r then begin
        successors.(remap.(q)) <- List.map (fun q' -> remap.(q'))
            k.successors.(q);
        labels.(remap.(q)) <- Array.copy k.labels.(q)
      end)
    reach;
  make ~nstates ~initial:remap.(k.initial) ~successors ~ap:k.ap ~labels

let branching_degree k =
  Array.fold_left (fun m succs -> max m (List.length succs)) 0 k.successors

let is_k_ary k arity =
  Array.for_all (fun succs -> List.length succs = arity) k.successors

let pp fmt k =
  Format.fprintf fmt "@[<v>kripke(%d states, initial %d)@," k.nstates
    k.initial;
  for q = 0 to k.nstates - 1 do
    let props =
      List.filteri (fun i _ -> k.labels.(q).(i)) (Array.to_list k.ap)
    in
    Format.fprintf fmt "  %d{%s}:" q (String.concat "," props);
    List.iter (fun q' -> Format.fprintf fmt " ->%d" q') k.successors.(q);
    Format.fprintf fmt "@,"
  done;
  Format.fprintf fmt "@]"

let lasso_paths k ~from ~max_len =
  (* Depth-first enumeration of simple-ish paths; a lasso closes when the
     next state already occurs in the current path. *)
  let results = ref [] in
  let rec extend path =
    (* path is reversed: head is the last state. *)
    let current = List.hd path in
    if List.length path < max_len then
      List.iter
        (fun q ->
          (match List.mapi (fun i s -> (i, s)) (List.rev path) with
          | indexed ->
              (match List.find_opt (fun (_, s) -> s = q) indexed with
              | Some (i, _) ->
                  let forward = List.rev path in
                  let spoke = List.filteri (fun j _ -> j < i) forward in
                  let cycle = List.filteri (fun j _ -> j >= i) forward in
                  results := (spoke, cycle) :: !results
              | None -> ()));
          if not (List.mem q path) then extend (q :: path))
        k.successors.(current)
  in
  extend [ from ];
  List.sort_uniq compare !results

let path_labels k states p = List.map (fun q -> holds k q p) states

(* --- Generators --- *)

(* Two processes with program counters N(0) -> T(1) -> C(2) -> N and a
   strict-alternation scheduler; a process may dawdle in N. *)
let mutex () =
  let encode pc1 pc2 turn = (((pc1 * 3) + pc2) * 2) + turn in
  let nstates = 18 in
  let successors = Array.make nstates [] in
  for pc1 = 0 to 2 do
    for pc2 = 0 to 2 do
      for turn = 0 to 1 do
        let moves =
          if turn = 0 then begin
            match pc1 with
            | 0 -> [ encode 0 pc2 1; encode 1 pc2 1 ] (* stay or try *)
            | 1 ->
                if pc2 = 2 then [ encode 1 pc2 1 ] (* blocked *)
                else [ encode 2 pc2 1 ]
            | _ -> [ encode 0 pc2 1 ]
          end
          else begin
            match pc2 with
            | 0 -> [ encode pc1 0 0; encode pc1 1 0 ]
            | 1 -> if pc1 = 2 then [ encode pc1 1 0 ] else [ encode pc1 2 0 ]
            | _ -> [ encode pc1 0 0 ]
          end
        in
        successors.(encode pc1 pc2 turn) <- moves
      done
    done
  done;
  let ap = [| "n1"; "t1"; "c1"; "n2"; "t2"; "c2" |] in
  let labels =
    Array.init nstates (fun q ->
        let pc2 = q / 2 mod 3 and pc1 = q / 6 in
        [| pc1 = 0; pc1 = 1; pc1 = 2; pc2 = 0; pc2 = 1; pc2 = 2 |])
  in
  restrict_reachable
    (make ~nstates ~initial:(encode 0 0 0) ~successors ~ap ~labels)

(* Peterson's algorithm. Process state: 0 idle, 1 about to set flag,
   2 about to set turn, 3 waiting, 4 critical. The flag of process i is
   implied by pc_i >= 2... NOT exactly: flags are set at the 1->2 step and
   cleared on exit, so flag_i = (pc_i >= 2). Turn is explicit. *)
let peterson () =
  let encode pc1 pc2 turn = (((pc1 * 5) + pc2) * 2) + turn in
  let nstates = 5 * 5 * 2 in
  let flag pc = pc >= 2 in
  let moves_of pc ~other_flag ~turn ~me =
    (* Returns (new_pc, new_turn option) choices for one process. *)
    match pc with
    | 0 -> [ (0, None) (* dawdle *); (1, None) ]
    | 1 -> [ (2, None) (* flag := true *) ]
    | 2 -> [ (3, Some (1 - me)) (* turn := other *) ]
    | 3 ->
        if (not other_flag) || turn = me then [ (4, None) ]
        else [ (3, None) (* busy-wait *) ]
    | _ -> [ (0, None) (* leave, clearing the flag *) ]
  in
  let successors = Array.make nstates [] in
  for pc1 = 0 to 4 do
    for pc2 = 0 to 4 do
      for turn = 0 to 1 do
        let p1_moves =
          List.map
            (fun (pc1', t') ->
              encode pc1' pc2 (Option.value t' ~default:turn))
            (moves_of pc1 ~other_flag:(flag pc2) ~turn ~me:0)
        in
        let p2_moves =
          List.map
            (fun (pc2', t') ->
              encode pc1 pc2' (Option.value t' ~default:turn))
            (moves_of pc2 ~other_flag:(flag pc1) ~turn ~me:1)
        in
        successors.(encode pc1 pc2 turn) <-
          List.sort_uniq compare (p1_moves @ p2_moves)
      done
    done
  done;
  let ap = [| "idle1"; "wait1"; "c1"; "idle2"; "wait2"; "c2"; "turn1";
              "turn2" |] in
  let labels =
    Array.init nstates (fun s ->
        let turn = s mod 2 in
        let pc2 = s / 2 mod 5 in
        let pc1 = s / 10 in
        [| pc1 = 0; pc1 = 3; pc1 = 4; pc2 = 0; pc2 = 3; pc2 = 4;
           turn = 0; turn = 1 |])
  in
  restrict_reachable
    (make ~nstates ~initial:(encode 0 0 0) ~successors ~ap ~labels)

let bounded_buffer ~capacity =
  if capacity < 1 then invalid_arg "Kripke.bounded_buffer: capacity >= 1";
  let nstates = capacity + 1 in
  let successors =
    Array.init nstates (fun level ->
        let produce = if level < capacity then [ level + 1 ] else [] in
        let consume = if level > 0 then [ level - 1 ] else [] in
        produce @ consume)
  in
  let ap = [| "empty"; "full" |] in
  let labels =
    Array.init nstates (fun level -> [| level = 0; level = capacity |])
  in
  make ~nstates ~initial:0 ~successors ~ap ~labels

let token_ring n =
  if n < 2 then invalid_arg "Kripke.token_ring: need n >= 2";
  let successors = Array.init n (fun i -> [ (i + 1) mod n ]) in
  let ap = Array.init n (Printf.sprintf "tok%d") in
  let labels = Array.init n (fun q -> Array.init n (fun i -> i = q)) in
  make ~nstates:n ~initial:0 ~successors ~ap ~labels

(* Philosopher phases: 0 think, 1 hungry, 2 eat. Configurations with
   adjacent eaters are unreachable and excluded. *)
let dining_philosophers n =
  if n < 2 || n > 6 then
    invalid_arg "Kripke.dining_philosophers: supported n is 2..6";
  let nconf = int_of_float (3. ** float_of_int n) in
  let phase conf i = conf / int_of_float (3. ** float_of_int i) mod 3 in
  let consistent conf =
    let bad = ref false in
    for i = 0 to n - 1 do
      if phase conf i = 2 && phase conf ((i + 1) mod n) = 2 then bad := true
    done;
    not !bad
  in
  let configs =
    List.filter consistent (List.init nconf Fun.id) |> Array.of_list
  in
  let index = Hashtbl.create 64 in
  Array.iteri (fun i c -> Hashtbl.replace index c i) configs;
  let set_phase conf i ph =
    let p = int_of_float (3. ** float_of_int i) in
    conf - (phase conf i * p) + (ph * p)
  in
  let successors =
    Array.map
      (fun conf ->
        let moves = ref [] in
        for i = 0 to n - 1 do
          (match phase conf i with
          | 0 -> moves := set_phase conf i 1 :: !moves
          | 1 ->
              if
                phase conf ((i + 1) mod n) <> 2
                && phase conf ((i + n - 1) mod n) <> 2
              then moves := set_phase conf i 2 :: !moves
          | _ -> moves := set_phase conf i 0 :: !moves)
        done;
        List.filter_map (fun c -> Hashtbl.find_opt index c) !moves)
      configs
  in
  let ap =
    Array.concat
      [ Array.init n (Printf.sprintf "eat%d");
        Array.init n (Printf.sprintf "hungry%d") ]
  in
  let labels =
    Array.map
      (fun conf ->
        Array.init (2 * n) (fun j ->
            if j < n then phase conf j = 2 else phase conf (j - n) = 1))
      configs
  in
  restrict_reachable
    (make ~nstates:(Array.length configs)
       ~initial:(Hashtbl.find index 0)
       ~successors ~ap ~labels)

let random ?(seed = 7) ~nstates ~ap ~density () =
  let st = Random.State.make [| seed |] in
  let successors =
    Array.init nstates (fun _ ->
        let succs =
          List.filter (fun _ -> Random.State.float st 1.0 < density)
            (List.init nstates Fun.id)
        in
        if succs = [] then [ Random.State.int st nstates ] else succs)
  in
  let labels =
    Array.init nstates (fun _ ->
        Array.init (Array.length ap) (fun _ -> Random.State.bool st))
  in
  make ~nstates ~initial:0 ~successors ~ap ~labels
