module Lasso = Sl_word.Lasso

(** ω-regular expressions: finite unions [⋃ U_i · (V_i)^ω].

    Büchi's normal form — every ω-regular language has this shape, so this
    module closes the triangle of presentations used by the tests:
    ω-regex ↔ Büchi automata ↔ LTL, all probed on the lasso grid. *)

type t = (Regex.t * Regex.t) list
(** Each pair [(u, v)] denotes [L(u) · (L(v) \ {ε})^ω]; the union of the
    pairs denotes the language. An empty list is ∅. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string

val parse : string -> (t, string) result
(** Concrete syntax: [u(v)^w + u'(v')^w + …]; [u] may be omitted (then
    [u = ε]). Example: ["(a|b)*(b)^w + a(a)^w"]. *)

val parse_exn : string -> t

val to_buchi : alphabet:int -> t -> Sl_buchi.Buchi.t
(** The classical construction: for each pair, the NFA of [u] is spliced
    onto a loop automaton for [v^ω] whose restart state is the unique
    accepting state; pairs are joined by Büchi union. *)

val accepts_lasso : alphabet:int -> t -> Lasso.t -> bool
(** Through {!to_buchi}. *)

val rem_examples : (string * t) list
(** Rem's p0–p6 written as ω-regexes over [{a, b}] — tested language-equal
    to the hand-built automata and the LTL translations. *)
