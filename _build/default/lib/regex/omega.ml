module Lasso = Sl_word.Lasso
module Nfa = Sl_nfa.Nfa
module Buchi = Sl_buchi.Buchi

type t = (Regex.t * Regex.t) list

let pp fmt pairs =
  match pairs with
  | [] -> Format.pp_print_string fmt "_0^w"
  | _ ->
      Format.pp_print_list
        ~pp_sep:(fun fmt () -> Format.pp_print_string fmt " + ")
        (fun fmt (u, v) ->
          Format.fprintf fmt "%a(%a)^w" Regex.pp_tight u Regex.pp v)
        fmt pairs

let to_string o = Format.asprintf "%a" pp o

let parse input =
  (* Split on '+' at depth 0, then each summand on the final "(...)^w". *)
  let split_top input =
    let parts = ref [] in
    let depth = ref 0 in
    let start = ref 0 in
    String.iteri
      (fun i c ->
        match c with
        | '(' -> incr depth
        | ')' -> decr depth
        | '+' when !depth = 0 ->
            parts := String.sub input !start (i - !start) :: !parts;
            start := i + 1
        | _ -> ())
      input;
    List.rev (String.sub input !start (String.length input - !start)
              :: !parts)
  in
  let parse_pair part =
    let part = String.trim part in
    let n = String.length part in
    if n < 4 || String.sub part (n - 2) 2 <> "^w" then
      Error "summand must end in (...)^w"
    else begin
      (* Find the '(' matching the ')' just before "^w". *)
      let close = n - 3 in
      if close < 0 || part.[close] <> ')' then
        Error "summand must end in (...)^w"
      else begin
        let depth = ref 0 in
        let open_pos = ref (-1) in
        (try
           for i = close downto 0 do
             (match part.[i] with
             | ')' -> incr depth
             | '(' ->
                 decr depth;
                 if !depth = 0 then begin
                   open_pos := i;
                   raise Exit
                 end
             | _ -> ())
           done
         with Exit -> ());
        if !open_pos < 0 then Error "unbalanced parentheses"
        else begin
          let u_src = String.trim (String.sub part 0 !open_pos) in
          let v_src = String.sub part (!open_pos + 1) (close - !open_pos - 1) in
          let u_result =
            if u_src = "" then Ok Regex.Eps else Regex.parse u_src
          in
          match (u_result, Regex.parse v_src) with
          | Ok u, Ok v -> Ok (u, v)
          | Error e, _ | _, Error e -> Error e
        end
      end
    end
  in
  let rec collect = function
    | [] -> Ok []
    | part :: rest -> (
        match (parse_pair part, collect rest) with
        | Ok p, Ok ps -> Ok (p :: ps)
        | (Error e, _ | _, Error e) -> Error e)
  in
  collect (split_top input)

let parse_exn input =
  match parse input with
  | Ok o -> o
  | Error msg -> invalid_arg ("Omega.parse_exn: " ^ msg)

(* v^ω over an NFA for L(v) \ {ε}: a fresh restart state 0 (the unique
   accepting state) carries v's initial transitions; every transition
   that completes a v-segment also returns to 0. *)
let omega_power ~alphabet v =
  let n = Regex.to_nfa ~alphabet (Regex.strip_eps v) in
  if Nfa.is_empty n then Buchi.empty_language ~alphabet
  else begin
    let shift = 1 in
    let nstates = n.Nfa.nstates + 1 in
    let initial s = List.map (( + ) shift) (Nfa.successors n n.Nfa.starts s) in
    let returns_to_start q' = n.Nfa.accepting.(q') in
    let with_restart own =
      (* A transition completing a v-segment (landing on an accepting
         state of the segment NFA) may instead restart at 0. *)
      let back =
        if
          List.exists
            (fun q -> q >= shift && returns_to_start (q - shift))
            own
        then [ 0 ]
        else []
      in
      List.sort_uniq compare (own @ back)
    in
    let delta =
      Array.init nstates (fun q ->
          Array.init alphabet (fun s ->
              if q = 0 then with_restart (initial s)
              else
                with_restart
                  (List.map (( + ) shift) n.Nfa.delta.(q - shift).(s))))
    in
    let accepting = Array.init nstates (fun q -> q = 0) in
    Buchi.make ~alphabet ~nstates ~start:0 ~delta ~accepting
  end

(* u · B for an NFA u and a Büchi automaton B: fresh start; u-accepting
   states acquire B's start transitions. *)
let concat_nfa_buchi ~alphabet u (b : Buchi.t) =
  let m = Regex.to_nfa ~alphabet u in
  if m.Nfa.nstates = 0 then Buchi.empty_language ~alphabet
  else begin
    (* Layout: 0 fresh start | u states (1..) | b states. *)
    let u_shift = 1 in
    let b_shift = 1 + m.Nfa.nstates in
    let nstates = 1 + m.Nfa.nstates + b.Buchi.nstates in
    let b_start_row s =
      List.map (( + ) b_shift) b.Buchi.delta.(b.Buchi.start).(s)
    in
    let u_row q s =
      let own = List.map (( + ) u_shift) m.Nfa.delta.(q).(s) in
      if m.Nfa.accepting.(q) then
        List.sort_uniq compare (own @ b_start_row s)
      else own
    in
    let u_has_eps = List.exists (fun q -> m.Nfa.accepting.(q)) m.Nfa.starts in
    let delta =
      Array.init nstates (fun q ->
          Array.init alphabet (fun s ->
              if q = 0 then begin
                let into_u =
                  List.concat_map (fun q0 -> u_row q0 s) m.Nfa.starts
                in
                let into_b = if u_has_eps then b_start_row s else [] in
                List.sort_uniq compare (into_u @ into_b)
              end
              else if q < b_shift then u_row (q - u_shift) s
              else
                List.map (( + ) b_shift) b.Buchi.delta.(q - b_shift).(s)))
    in
    let accepting =
      Array.init nstates (fun q ->
          q >= b_shift && b.Buchi.accepting.(q - b_shift))
    in
    Buchi.make ~alphabet ~nstates ~start:0 ~delta ~accepting
  end

let to_buchi ~alphabet pairs =
  let parts =
    List.map
      (fun (u, v) -> concat_nfa_buchi ~alphabet u (omega_power ~alphabet v))
      pairs
  in
  Sl_buchi.Ops.union_list ~alphabet parts

let accepts_lasso ~alphabet o w = Buchi.accepts_lasso (to_buchi ~alphabet o) w

let rem_examples =
  [ ("p0", []);
    ("p1", [ (Regex.parse_exn "a", Regex.parse_exn "a|b") ]);
    ("p2", [ (Regex.parse_exn "b", Regex.parse_exn "a|b") ]);
    ("p3", [ (Regex.parse_exn "aa*b", Regex.parse_exn "a|b") ]);
    ("p4", [ (Regex.parse_exn "(a|b)*", Regex.parse_exn "b") ]);
    ("p5", [ (Regex.Eps, Regex.parse_exn "b*a") ]);
    ("p6", [ (Regex.Eps, Regex.parse_exn "a|b") ]) ]
