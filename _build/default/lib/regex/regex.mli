(** Regular expressions over finite words, compiled to epsilon-free NFAs.

    The substrate for {!Omega}: Büchi's theorem presents every ω-regular
    language as a finite union [⋃ U_i · V_i^ω] of regular-expression
    pairs, so finite regexes are the third (besides automata and LTL)
    presentation of the paper's linear-time properties. Symbols are
    written [a b c …] (mapped to 0, 1, 2, …). *)

type t =
  | Empty  (** ∅ *)
  | Eps  (** ε *)
  | Sym of int
  | Alt of t * t
  | Seq of t * t
  | Star of t

val pp : Format.formatter -> t -> unit

val pp_tight : Format.formatter -> t -> unit
(** Like {!pp} but parenthesizing alternations and sequences — for use as
    a sub-term printer (the ω-regex printer uses it). *)

val to_string : t -> string

val parse : string -> (t, string) result
(** Concrete syntax: juxtaposition for concatenation, [|] for
    alternation, [*] postfix, parentheses, [_0] for ∅, [_1] for ε,
    letters [a]–[j] for symbols 0–9. *)

val parse_exn : string -> t

val accepts_eps : t -> bool
(** ε ∈ L(r), syntactically. *)

val strip_eps : t -> t
(** A regex for [L(r) \ {ε}] (used by the ω-power, which must iterate
    nonempty segments). *)

val to_nfa : alphabet:int -> t -> Sl_nfa.Nfa.t
(** Epsilon-free structural construction (Glushkov-flavoured: sequencing
    and starring splice successor transitions through accepting states).
    @raise Invalid_argument if a symbol is outside the alphabet. *)

val matches : alphabet:int -> t -> int list -> bool
(** Direct matcher through {!to_nfa}; the tests also compare against a
    naive denotational matcher. *)
