module Nfa = Sl_nfa.Nfa

type t =
  | Empty
  | Eps
  | Sym of int
  | Alt of t * t
  | Seq of t * t
  | Star of t

let rec pp fmt = function
  | Empty -> Format.pp_print_string fmt "_0"
  | Eps -> Format.pp_print_string fmt "_1"
  | Sym s ->
      if s < 10 then Format.fprintf fmt "%c" (Char.chr (Char.code 'a' + s))
      else Format.fprintf fmt "<%d>" s
  | Alt (a, b) -> Format.fprintf fmt "%a|%a" pp a pp b
  | Seq (a, b) -> Format.fprintf fmt "%a%a" pp_tight a pp_tight b
  | Star a -> Format.fprintf fmt "%a*" pp_tight a

and pp_tight fmt f =
  match f with
  | Alt _ | Seq _ -> Format.fprintf fmt "(%a)" pp f
  | _ -> pp fmt f

let to_string r = Format.asprintf "%a" pp r

(* --- Parser --- *)

exception Syntax of string

let parse input =
  try
    let n = String.length input in
    let pos = ref 0 in
    let peek () = if !pos < n then Some input.[!pos] else None in
    let advance () = incr pos in
    let rec skip_ws () =
      match peek () with
      | Some (' ' | '\t') -> advance (); skip_ws ()
      | _ -> ()
    in
    let rec alt () =
      let lhs = ref (seq ()) in
      skip_ws ();
      while peek () = Some '|' do
        advance ();
        lhs := Alt (!lhs, seq ());
        skip_ws ()
      done;
      !lhs
    and seq () =
      let item = postfix () in
      let acc = ref item in
      let continue_ = ref true in
      while !continue_ do
        skip_ws ();
        match peek () with
        | Some c
          when (c >= 'a' && c <= 'j') || c = '(' || c = '_' ->
            acc := Seq (!acc, postfix ())
        | _ -> continue_ := false
      done;
      !acc
    and postfix () =
      let a = ref (atom ()) in
      let continue_ = ref true in
      while !continue_ do
        skip_ws ();
        if peek () = Some '*' then begin
          advance ();
          a := Star !a
        end
        else continue_ := false
      done;
      !a
    and atom () =
      skip_ws ();
      match peek () with
      | Some c when c >= 'a' && c <= 'j' ->
          advance ();
          Sym (Char.code c - Char.code 'a')
      | Some '_' -> (
          advance ();
          match peek () with
          | Some '0' -> advance (); Empty
          | Some '1' -> advance (); Eps
          | _ -> raise (Syntax "expected _0 or _1"))
      | Some '(' ->
          advance ();
          let r = alt () in
          skip_ws ();
          if peek () = Some ')' then begin
            advance ();
            r
          end
          else raise (Syntax "expected ')'")
      | _ -> raise (Syntax "expected an atom")
    in
    let r = alt () in
    skip_ws ();
    if !pos <> n then raise (Syntax "trailing input");
    Ok r
  with Syntax msg -> Error msg

let parse_exn input =
  match parse input with
  | Ok r -> r
  | Error msg -> invalid_arg ("Regex.parse_exn: " ^ msg)

let rec accepts_eps = function
  | Empty | Sym _ -> false
  | Eps | Star _ -> true
  | Alt (a, b) -> accepts_eps a || accepts_eps b
  | Seq (a, b) -> accepts_eps a && accepts_eps b

let rec strip_eps r =
  match r with
  | Empty | Sym _ -> r
  | Eps -> Empty
  | Alt (a, b) -> Alt (strip_eps a, strip_eps b)
  | Seq (a, b) ->
      if not (accepts_eps r) then r
      else Alt (Seq (strip_eps a, b), strip_eps b)
  | Star a -> Seq (strip_eps a, Star a)

(* Epsilon-free structural construction. Sequencing splices the right
   automaton's initial transitions onto the left's accepting states;
   starring loops them back. *)
let to_nfa ~alphabet r =
  let open Nfa in
  let initial_row (m : Nfa.t) shift =
    Array.init alphabet (fun s ->
        List.map (( + ) shift) (Nfa.successors m m.starts s))
  in
  let rec go = function
    | Empty -> Nfa.empty ~alphabet
    | Eps ->
        make ~alphabet ~nstates:1 ~starts:[ 0 ]
          ~delta:[| Array.make alphabet [] |]
          ~accepting:[| true |]
    | Sym s ->
        if s < 0 || s >= alphabet then
          invalid_arg "Regex.to_nfa: symbol outside alphabet";
        let delta = Array.make_matrix 2 alphabet [] in
        delta.(0).(s) <- [ 1 ];
        make ~alphabet ~nstates:2 ~starts:[ 0 ] ~delta
          ~accepting:[| false; true |]
    | Alt (a, b) -> Nfa.union (go a) (go b)
    | Seq (a, b) ->
        let ma = go a and mb = go b in
        let shift = ma.nstates in
        let nstates = ma.nstates + mb.nstates in
        let b_initial = initial_row mb shift in
        let delta =
          Array.init nstates (fun q ->
              Array.init alphabet (fun s ->
                  if q < shift then begin
                    let own = ma.delta.(q).(s) in
                    if ma.accepting.(q) then
                      List.sort_uniq compare (own @ b_initial.(s))
                    else own
                  end
                  else List.map (( + ) shift) mb.delta.(q - shift).(s)))
        in
        let b_has_eps = List.exists (fun q -> mb.accepting.(q)) mb.starts in
        let accepting =
          Array.init nstates (fun q ->
              if q < shift then b_has_eps && ma.accepting.(q)
              else mb.accepting.(q - shift))
        in
        let starts =
          ma.starts
          @
          if List.exists (fun q -> ma.accepting.(q)) ma.starts then
            List.map (( + ) shift) mb.starts
          else []
        in
        make ~alphabet ~nstates ~starts ~delta ~accepting
    | Star a ->
        let ma = go a in
        (* Fresh accepting start 0; body shifted by 1. *)
        let shift = 1 in
        let nstates = ma.nstates + 1 in
        let a_initial = initial_row ma shift in
        let delta =
          Array.init nstates (fun q ->
              Array.init alphabet (fun s ->
                  if q = 0 then a_initial.(s)
                  else begin
                    let own =
                      List.map (( + ) shift) ma.delta.(q - shift).(s)
                    in
                    if ma.accepting.(q - shift) then
                      List.sort_uniq compare (own @ a_initial.(s))
                    else own
                  end))
        in
        let accepting =
          Array.init nstates (fun q ->
              q = 0 || ma.accepting.(q - shift))
        in
        make ~alphabet ~nstates ~starts:[ 0 ] ~delta ~accepting
  in
  go r

let matches ~alphabet r word = Nfa.accepts (to_nfa ~alphabet r) word
