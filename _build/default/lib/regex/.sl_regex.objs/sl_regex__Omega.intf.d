lib/regex/omega.mli: Format Regex Sl_buchi Sl_word
