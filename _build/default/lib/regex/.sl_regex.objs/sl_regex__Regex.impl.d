lib/regex/regex.ml: Array Char Format List Sl_nfa String
