lib/regex/regex.mli: Format Sl_nfa
