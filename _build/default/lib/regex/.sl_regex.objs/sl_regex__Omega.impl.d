lib/regex/omega.ml: Array Format List Regex Sl_buchi Sl_nfa Sl_word String
