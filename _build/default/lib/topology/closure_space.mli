(** Finite closure spaces: the Kuratowski axioms as executable checks.

    Section 2.2 of the paper defines a {e topological-closure operator} by
    four axioms — [cl ∅ = ∅], extensivity, idempotence, and distribution
    over binary unions — and recalls that such an operator defines a
    topology whose closed sets are the fixpoints. The paper's contribution
    3 is that its lattice framework {e drops} the union axiom; this module
    makes the gap measurable: {!is_topological} vs
    {!is_lattice_closure}.

    Carriers are finite (points [0 .. size-1]); subsets are bitmasks. *)

type t = {
  size : int;  (** number of points; at most 20 *)
  cl : int -> int;  (** on subset bitmasks *)
}

val make : size:int -> cl:(int -> int) -> t

(** {1 Axiom checks} *)

type verdict = (unit, string * int list) result
(** [Error (axiom, witness_masks)] names the failed axiom. *)

val preserves_empty : t -> verdict
val is_extensive : t -> verdict
val is_idempotent : t -> verdict
val is_monotone : t -> verdict
val preserves_union : t -> verdict

val is_lattice_closure : t -> verdict
(** Extensive + idempotent + monotone: the paper's (and Section 3's)
    notion. *)

val is_topological : t -> verdict
(** All four Kuratowski axioms. Implies {!is_lattice_closure}
    (monotonicity follows from the union axiom). *)

val closed_sets : t -> int list
(** Fixpoint subsets, sorted. For a topological closure these are closed
    under finite unions and intersections and form the closed sets of a
    topology. *)

val closed_under_union : t -> bool
val closed_under_intersection : t -> bool

(** {1 Stock spaces} *)

val discrete : int -> t
(** Every set closed ([cl = id]). *)

val indiscrete : int -> t
(** Only [∅] and the whole carrier closed. *)

val from_closed_sets : size:int -> closed:int list -> t
(** The coarsest closure whose closed sets include the given masks and the
    full carrier: [cl s] is the intersection of the closed supersets of
    [s]. A lattice closure by construction; topological iff the closed
    family is union-closed and contains [∅]. *)

val lcl_on_lassos :
  max_prefix:int -> max_cycle:int -> alphabet:int -> t * Sl_word.Lasso.t array
(** The linear-time closure [lcl], sampled: the carrier is the canonical
    lasso grid, and [cl S] keeps a lasso iff each of its finite prefixes
    (up to the grid's horizon) is a prefix of some member of [S]. Returns
    the space and the lasso denoted by each point. The test suite checks
    that this space is {e topological} — the executable shadow of "lcl is
    a topological-closure operator on Σ^ω". *)
