lib/topology/closure_space.ml: Array Fun List Result Sl_word
