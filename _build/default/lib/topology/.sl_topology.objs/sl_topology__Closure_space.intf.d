lib/topology/closure_space.mli: Sl_word
