module Lasso = Sl_word.Lasso

type t = {
  size : int;
  cl : int -> int;
}

let make ~size ~cl =
  if size < 0 || size > 20 then
    invalid_arg "Closure_space.make: size out of range";
  { size; cl }

type verdict = (unit, string * int list) result

let all_masks space = List.init (1 lsl space.size) Fun.id


let find_mask space pred =
  List.find_opt pred (all_masks space)

let preserves_empty space =
  if space.cl 0 = 0 then Ok () else Error ("cl empty <> empty", [ space.cl 0 ])

let is_extensive space =
  match find_mask space (fun s -> s land space.cl s <> s) with
  | None -> Ok ()
  | Some s -> Error ("not extensive", [ s ])

let is_idempotent space =
  match find_mask space (fun s -> space.cl (space.cl s) <> space.cl s) with
  | None -> Ok ()
  | Some s -> Error ("not idempotent", [ s ])

let is_monotone space =
  let bad = ref None in
  List.iter
    (fun s ->
      List.iter
        (fun u ->
          if
            !bad = None
            && s land u = s
            && space.cl s land space.cl u <> space.cl s
          then bad := Some (s, u))
        (all_masks space))
    (all_masks space);
  match !bad with
  | None -> Ok ()
  | Some (s, u) -> Error ("not monotone", [ s; u ])

let preserves_union space =
  let bad = ref None in
  List.iter
    (fun s ->
      List.iter
        (fun u ->
          if !bad = None && space.cl (s lor u) <> space.cl s lor space.cl u
          then bad := Some (s, u))
        (all_masks space))
    (all_masks space);
  match !bad with
  | None -> Ok ()
  | Some (s, u) -> Error ("does not preserve union", [ s; u ])

let first_error = List.find_opt Result.is_error

let is_lattice_closure space =
  match
    first_error [ is_extensive space; is_idempotent space; is_monotone space ]
  with
  | Some e -> e
  | None -> Ok ()

let is_topological space =
  match
    first_error
      [ preserves_empty space; is_extensive space; is_idempotent space;
        preserves_union space ]
  with
  | Some e -> e
  | None -> Ok ()

let closed_sets space =
  List.filter (fun s -> space.cl s = s) (all_masks space)

let closed_under_union space =
  let closed = closed_sets space in
  List.for_all
    (fun s -> List.for_all (fun u -> space.cl (s lor u) = s lor u) closed)
    closed

let closed_under_intersection space =
  let closed = closed_sets space in
  List.for_all
    (fun s -> List.for_all (fun u -> space.cl (s land u) = s land u) closed)
    closed

let discrete size = make ~size ~cl:Fun.id

let indiscrete size =
  make ~size ~cl:(fun s -> if s = 0 then 0 else (1 lsl size) - 1)

let from_closed_sets ~size ~closed =
  let space_full = (1 lsl size) - 1 in
  (* Intersect all closed supersets (including the full carrier). *)
  let cl s =
    List.fold_left
      (fun acc c -> if s land c = s then acc land c else acc)
      space_full closed
  in
  make ~size ~cl

let lcl_on_lassos ~max_prefix ~max_cycle ~alphabet =
  let lassos =
    Array.of_list (Lasso.enumerate ~alphabet ~max_prefix ~max_cycle)
  in
  let n = Array.length lassos in
  if n > 20 then
    invalid_arg "Closure_space.lcl_on_lassos: grid too large for bitmasks";
  (* Observation horizon: the longest spoke-plus-period in the grid.
     Lassos agreeing on this window are identified — the bounded-
     observation shadow of the limit closure (a full-discrimination
     horizon would make the finite space discrete). *)
  let horizon =
    Array.fold_left (fun acc w -> max acc (Lasso.total_length w)) 1 lassos
  in
  let prefixes = Array.map (fun w -> Lasso.first_n w horizon) lassos in
  let cl s =
    let result = ref 0 in
    for i = 0 to n - 1 do
      (* w_i enters cl S iff some member of S shares its entire horizon
         prefix; nested shorter prefixes are then matched by the same
         member. *)
      let matched = ref false in
      for j = 0 to n - 1 do
        if s land (1 lsl j) <> 0 && prefixes.(i) = prefixes.(j) then
          matched := true
      done;
      if !matched then result := !result lor (1 lsl i)
    done;
    !result
  in
  (make ~size:n ~cl, lassos)
