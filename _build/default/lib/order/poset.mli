(** Finite partially ordered sets.

    A poset is represented over the carrier [{0, ..., size - 1}] by its full
    order relation (a reflexive, antisymmetric, transitive boolean matrix).
    All constructors validate the poset axioms; a value of type {!t} is
    therefore always a genuine partial order.

    This module is the foundation for {!Sl_lattice}: the paper's Hasse
    diagrams (Figures 1 and 2) are built here, and lattice structure (meets
    and joins) is computed from the order relation. *)

type t
(** A finite poset. Immutable. *)

type elt = int
(** Elements are indices in [0 .. size - 1]. *)

exception Invalid_order of string
(** Raised by constructors when the input fails a poset axiom. The payload
    names the axiom and a witness. *)

(** {1 Construction} *)

val make : size:int -> leq:(elt -> elt -> bool) -> t
(** [make ~size ~leq] builds the poset on [{0..size-1}] with order [leq].
    @raise Invalid_order if [leq] is not reflexive, antisymmetric and
    transitive, or if [size < 0]. *)

val of_covers : size:int -> covers:(elt * elt) list -> t
(** [of_covers ~size ~covers] builds the poset whose order is the reflexive
    transitive closure of the cover relation [covers]; [(x, y)] means
    [x] is covered by [y] ([x < y] with nothing strictly between — though
    redundant, non-covering pairs are accepted and absorbed).
    @raise Invalid_order if the closure is not antisymmetric (a cycle). *)

val chain : int -> t
(** [chain n] is the total order [0 < 1 < ... < n-1]. *)

val antichain : int -> t
(** [antichain n] is the discrete order on [n] elements. *)

val powerset : int -> t
(** [powerset n] is the poset of subsets of an [n]-element set ordered by
    inclusion; element [i] denotes the subset with characteristic bits [i].
    Size is [2^n]. *)

val divisors : int -> t * int array
(** [divisors n] is the divisibility order on the divisors of [n] (which must
    be positive). Returns the poset together with the array mapping each
    element index to the divisor it denotes (in increasing order). *)

val product : t -> t -> t
(** Componentwise (coordinatewise) order on the cartesian product. Element
    [i * size q + j] of [product p q] denotes the pair [(i, j)]. *)

val dual : t -> t
(** Order-reversed poset on the same carrier. *)

val opposite : t -> t
(** Alias for {!dual}. *)

(** {1 Basic observations} *)

val size : t -> int
val elements : t -> elt list
val leq : t -> elt -> elt -> bool
val lt : t -> elt -> elt -> bool
val comparable : t -> elt -> elt -> bool
val equal : t -> t -> bool
(** Equality of posets on the same carrier (same size and same relation). *)

(** {1 Hasse diagram} *)

val covers : t -> (elt * elt) list
(** The cover (Hasse) relation: [(x, y)] with [x < y] and no [z] with
    [x < z < y]. This is the transitive reduction of the strict order. *)

val covers_of : t -> elt -> elt list
(** [covers_of p x] lists the elements covering [x] (immediately above). *)

val covered_by : t -> elt -> elt list
(** [covered_by p x] lists the elements covered by [x] (immediately below). *)

(** {1 Extremal elements and bounds} *)

val minimal : t -> elt list
val maximal : t -> elt list
val bottom : t -> elt option
(** The least element, if one exists. *)

val top : t -> elt option
(** The greatest element, if one exists. *)

val upper_bounds : t -> elt -> elt -> elt list
val lower_bounds : t -> elt -> elt -> elt list

val join_opt : t -> elt -> elt -> elt option
(** Least upper bound of two elements, if it exists. *)

val meet_opt : t -> elt -> elt -> elt option
(** Greatest lower bound of two elements, if it exists. *)

val join_set_opt : t -> elt list -> elt option
(** Least upper bound of a finite set (the empty set yields the bottom
    element if any). *)

val meet_set_opt : t -> elt list -> elt option

(** {1 Up-sets, down-sets, chains, antichains} *)

val up_set : t -> elt -> elt list
(** [up_set p x] is [{ y | x <= y }], sorted. *)

val down_set : t -> elt -> elt list
(** [down_set p x] is [{ y | y <= x }], sorted. *)

val is_down_set : t -> elt list -> bool
val is_up_set : t -> elt list -> bool
val down_closure : t -> elt list -> elt list
(** Least down-set containing the given elements, sorted. *)

val is_chain : t -> elt list -> bool
val is_antichain : t -> elt list -> bool

val height : t -> int
(** Number of elements in a longest chain (0 for the empty poset). *)

val width : t -> int
(** Size of a largest antichain, computed via Dilworth's theorem as a
    minimum chain cover using bipartite matching (Hopcroft–Karp style
    augmenting paths on the comparability DAG). *)

val minimum_chain_cover : t -> elt list list
(** A partition of the carrier into the minimum number of chains (each
    listed bottom-up). By Dilworth's theorem the number of chains equals
    {!width}; extracted from the same maximum bipartite matching. *)

val all_down_sets : t -> elt list list
(** Every down-set, each sorted; the list of down-sets ordered by inclusion
    forms the free distributive lattice over this poset (Birkhoff duality).
    Exponential; intended for small posets. *)

val linear_extension : t -> elt list
(** A topological order of the elements (least first). *)

(** {1 Morphisms} *)

val is_monotone : t -> t -> (elt -> elt) -> bool
(** [is_monotone p q f] checks that [f] is order-preserving from [p] to
    [q]. *)

val is_order_embedding : t -> t -> (elt -> elt) -> bool
(** [x <= y] iff [f x <= f y]. *)

val isomorphic : t -> t -> (elt -> elt) option
(** Search for an order isomorphism (backtracking; intended for small
    posets). Returns a witness if one exists. *)

(** {1 Output} *)

val pp : Format.formatter -> t -> unit
(** Prints the cover relation. *)

val to_dot : ?label:(elt -> string) -> t -> string
(** GraphViz rendering of the Hasse diagram (bottom-up). *)
