type elt = int

type t = {
  size : int;
  rel : bool array array; (* rel.(x).(y) <=> x <= y *)
}

exception Invalid_order of string

let invalid fmt = Format.kasprintf (fun s -> raise (Invalid_order s)) fmt

let validate size rel =
  if size < 0 then invalid "negative size %d" size;
  for x = 0 to size - 1 do
    if not rel.(x).(x) then invalid "not reflexive at %d" x;
    for y = 0 to size - 1 do
      if x <> y && rel.(x).(y) && rel.(y).(x) then
        invalid "not antisymmetric at (%d, %d)" x y;
      if rel.(x).(y) then
        for z = 0 to size - 1 do
          if rel.(y).(z) && not rel.(x).(z) then
            invalid "not transitive at (%d, %d, %d)" x y z
        done
    done
  done

let make ~size ~leq =
  let rel = Array.init size (fun x -> Array.init size (fun y -> leq x y)) in
  validate size rel;
  { size; rel }

let transitive_reflexive_closure size pairs =
  let rel = Array.make_matrix size size false in
  for x = 0 to size - 1 do
    rel.(x).(x) <- true
  done;
  List.iter
    (fun (x, y) ->
      if x < 0 || x >= size || y < 0 || y >= size then
        invalid "cover (%d, %d) out of range" x y;
      rel.(x).(y) <- true)
    pairs;
  (* Floyd–Warshall style closure. *)
  for k = 0 to size - 1 do
    for x = 0 to size - 1 do
      if rel.(x).(k) then
        for y = 0 to size - 1 do
          if rel.(k).(y) then rel.(x).(y) <- true
        done
    done
  done;
  rel

let of_covers ~size ~covers =
  let rel = transitive_reflexive_closure size covers in
  validate size rel;
  { size; rel }

let chain n = make ~size:n ~leq:(fun x y -> x <= y)
let antichain n = make ~size:n ~leq:(fun x y -> x = y)

let powerset n =
  if n < 0 || n > 20 then invalid "powerset size %d out of range" n;
  make ~size:(1 lsl n) ~leq:(fun x y -> x land y = x)

let divisors n =
  if n <= 0 then invalid "divisors of non-positive %d" n;
  let ds = ref [] in
  for d = n downto 1 do
    if n mod d = 0 then ds := d :: !ds
  done;
  let ds = Array.of_list !ds in
  let p =
    make ~size:(Array.length ds) ~leq:(fun x y -> ds.(y) mod ds.(x) = 0)
  in
  (p, ds)

let size p = p.size
let elements p = List.init p.size Fun.id
let leq p x y = p.rel.(x).(y)
let lt p x y = x <> y && p.rel.(x).(y)
let comparable p x y = p.rel.(x).(y) || p.rel.(y).(x)
let equal p q = p.size = q.size && p.rel = q.rel

let product p q =
  let n = p.size * q.size in
  let split i = (i / q.size, i mod q.size) in
  make ~size:n ~leq:(fun i j ->
      let xi, yi = split i and xj, yj = split j in
      leq p xi xj && leq q yi yj)

let dual p = make ~size:p.size ~leq:(fun x y -> p.rel.(y).(x))
let opposite = dual

let covers p =
  let acc = ref [] in
  for y = p.size - 1 downto 0 do
    for x = p.size - 1 downto 0 do
      if lt p x y then begin
        let between = ref false in
        for z = 0 to p.size - 1 do
          if lt p x z && lt p z y then between := true
        done;
        if not !between then acc := (x, y) :: !acc
      end
    done
  done;
  !acc

let covers_of p x =
  List.filter_map (fun (a, b) -> if a = x then Some b else None) (covers p)

let covered_by p x =
  List.filter_map (fun (a, b) -> if b = x then Some a else None) (covers p)

let minimal p =
  List.filter
    (fun x -> not (List.exists (fun y -> lt p y x) (elements p)))
    (elements p)

let maximal p =
  List.filter
    (fun x -> not (List.exists (fun y -> lt p x y) (elements p)))
    (elements p)

let bottom p =
  List.find_opt (fun b -> List.for_all (fun x -> leq p b x) (elements p))
    (elements p)

let top p =
  List.find_opt (fun t -> List.for_all (fun x -> leq p x t) (elements p))
    (elements p)

let upper_bounds p x y =
  List.filter (fun u -> leq p x u && leq p y u) (elements p)

let lower_bounds p x y =
  List.filter (fun l -> leq p l x && leq p l y) (elements p)

let least p candidates =
  List.find_opt (fun m -> List.for_all (fun u -> leq p m u) candidates)
    candidates

let greatest p candidates =
  List.find_opt (fun m -> List.for_all (fun u -> leq p u m) candidates)
    candidates

let join_opt p x y = least p (upper_bounds p x y)
let meet_opt p x y = greatest p (lower_bounds p x y)

let bounds_of_set p ~above xs =
  List.filter
    (fun u ->
      List.for_all (fun x -> if above then leq p x u else leq p u x) xs)
    (elements p)

let join_set_opt p xs = least p (bounds_of_set p ~above:true xs)
let meet_set_opt p xs = greatest p (bounds_of_set p ~above:false xs)

let up_set p x = List.filter (fun y -> leq p x y) (elements p)
let down_set p x = List.filter (fun y -> leq p y x) (elements p)

let is_down_set p xs =
  List.for_all
    (fun x -> List.for_all (fun y -> not (leq p y x) || List.mem y xs)
        (elements p))
    xs

let is_up_set p xs =
  List.for_all
    (fun x -> List.for_all (fun y -> not (leq p x y) || List.mem y xs)
        (elements p))
    xs

let down_closure p xs =
  List.filter (fun y -> List.exists (fun x -> leq p y x) xs) (elements p)

let rec pairwise pred = function
  | [] -> true
  | x :: rest -> List.for_all (pred x) rest && pairwise pred rest

let is_chain p xs = pairwise (comparable p) xs
let is_antichain p xs = pairwise (fun x y -> not (comparable p x y)) xs

let height p =
  (* Longest chain by dynamic programming over a linear extension. *)
  if p.size = 0 then 0
  else begin
    let best = Array.make p.size 1 in
    let order =
      List.sort
        (fun x y ->
          if lt p x y then -1 else if lt p y x then 1 else compare x y)
        (elements p)
    in
    List.iter
      (fun y ->
        List.iter
          (fun x -> if lt p x y && best.(x) + 1 > best.(y) then
              best.(y) <- best.(x) + 1)
          order)
      order;
    Array.fold_left max 0 best
  end

(* Dilworth: width = size - (maximum matching in the bipartite graph with an
   edge (x, y) whenever x < y). Classic Kőnig/Fulkerson argument. *)
let width p =
  let n = p.size in
  if n = 0 then 0
  else begin
    let match_right = Array.make n (-1) in
    let match_left = Array.make n (-1) in
    let rec try_augment seen x =
      let found = ref false in
      let y = ref 0 in
      while (not !found) && !y < n do
        if lt p x !y && not seen.(!y) then begin
          seen.(!y) <- true;
          if match_right.(!y) = -1 || try_augment seen match_right.(!y) then begin
            match_right.(!y) <- x;
            match_left.(x) <- !y;
            found := true
          end
        end;
        incr y
      done;
      !found
    in
    let matching = ref 0 in
    for x = 0 to n - 1 do
      if try_augment (Array.make n false) x then incr matching
    done;
    n - !matching
  end

let minimum_chain_cover p =
  let n = p.size in
  if n = 0 then []
  else begin
    (* Same matching as [width]; keep the pointers this time. *)
    let match_right = Array.make n (-1) in
    let match_left = Array.make n (-1) in
    let rec try_augment seen x =
      let found = ref false in
      let y = ref 0 in
      while (not !found) && !y < n do
        if lt p x !y && not seen.(!y) then begin
          seen.(!y) <- true;
          if match_right.(!y) = -1 || try_augment seen match_right.(!y)
          then begin
            match_right.(!y) <- x;
            match_left.(x) <- !y;
            found := true
          end
        end;
        incr y
      done;
      !found
    in
    for x = 0 to n - 1 do
      ignore (try_augment (Array.make n false) x)
    done;
    (* Chains start at elements that are nobody's matched successor. *)
    let chains = ref [] in
    for x = 0 to n - 1 do
      if match_right.(x) = -1 then begin
        let rec follow acc y =
          let acc = y :: acc in
          if match_left.(y) = -1 then List.rev acc
          else follow acc match_left.(y)
        in
        chains := follow [] x :: !chains
      end
    done;
    List.rev !chains
  end

let all_down_sets p =
  (* Enumerate antichains' down-closures; equivalently filter all subsets of
     the carrier for down-closedness, but do it incrementally over a linear
     extension to avoid 2^n subset checks where cheap pruning helps. *)
  let ext = ref [ [] ] in
  let order =
    List.sort
      (fun x y ->
        if lt p x y then -1 else if lt p y x then 1 else compare x y)
      (elements p)
  in
  List.iter
    (fun x ->
      let lower = down_set p x in
      let extended =
        List.filter_map
          (fun ds ->
            (* x may be added only if all its strict predecessors are in. *)
            if List.for_all (fun y -> y = x || List.mem y ds) lower then
              Some (List.sort compare (x :: ds))
            else None)
          !ext
      in
      ext := !ext @ extended)
    order;
  List.sort_uniq compare !ext

let linear_extension p =
  List.sort
    (fun x y -> if lt p x y then -1 else if lt p y x then 1 else compare x y)
    (elements p)

let is_monotone p q f =
  List.for_all
    (fun x ->
      List.for_all (fun y -> not (leq p x y) || leq q (f x) (f y))
        (elements p))
    (elements p)

let is_order_embedding p q f =
  List.for_all
    (fun x ->
      List.for_all (fun y -> leq p x y = leq q (f x) (f y)) (elements p))
    (elements p)

let isomorphic p q =
  if p.size <> q.size then None
  else begin
    let n = p.size in
    let image = Array.make n (-1) in
    let used = Array.make n false in
    let consistent x y =
      (* Mapping x -> y must agree with all already placed elements. *)
      let ok = ref true in
      for z = 0 to x - 1 do
        let yz = image.(z) in
        if leq p z x <> leq q yz y then ok := false;
        if leq p x z <> leq q y yz then ok := false
      done;
      !ok
    in
    let rec search x =
      if x = n then true
      else begin
        let found = ref false in
        let y = ref 0 in
        while (not !found) && !y < n do
          if (not used.(!y)) && consistent x !y then begin
            image.(x) <- !y;
            used.(!y) <- true;
            if search (x + 1) then found := true
            else begin
              used.(!y) <- false;
              image.(x) <- -1
            end
          end;
          incr y
        done;
        !found
      end
    in
    if search 0 then Some (fun x -> image.(x)) else None
  end

let pp fmt p =
  Format.fprintf fmt "@[<hov 2>poset(%d){" p.size;
  List.iter (fun (x, y) -> Format.fprintf fmt "@ %d<%d" x y) (covers p);
  Format.fprintf fmt "@ }@]"

let to_dot ?(label = string_of_int) p =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "digraph poset {\n  rankdir=BT;\n";
  List.iter
    (fun x -> Buffer.add_string buf
        (Printf.sprintf "  n%d [label=\"%s\"];\n" x (label x)))
    (elements p);
  List.iter
    (fun (x, y) ->
      Buffer.add_string buf (Printf.sprintf "  n%d -> n%d;\n" x y))
    (covers p);
  Buffer.add_string buf "}\n";
  Buffer.contents buf
