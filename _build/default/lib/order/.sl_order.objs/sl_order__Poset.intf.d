lib/order/poset.mli: Format
