lib/order/poset.ml: Array Buffer Format Fun List Printf
