module Kripke = Sl_kripke.Kripke

type path = { spoke : int list; cycle : int list }

let pp_path fmt p =
  Format.fprintf fmt "%s(%s)^w"
    (String.concat " " (List.map string_of_int p.spoke))
    (String.concat " " (List.map string_of_int p.cycle))

let check_path (k : Kripke.t) p =
  p.cycle <> []
  &&
  let states = p.spoke @ p.cycle @ [ List.hd p.cycle ] in
  let rec ok = function
    | a :: (b :: _ as rest) ->
        List.mem b k.successors.(a) && ok rest
    | _ -> true
  in
  ok states

let states_of_path p i =
  let ns = List.length p.spoke and nc = List.length p.cycle in
  if i < ns then List.nth p.spoke i else List.nth p.cycle ((i - ns) mod nc)

(* BFS path from [src] to a state satisfying [target]; intermediate
   states must satisfy [keep], the endpoint only [target]. Returns the
   state list src..target. *)
let bfs_path (k : Kripke.t) ~keep ~src ~target =
  if not (keep src || target src) then None
  else begin
    let parent = Array.make k.nstates (-2) in
    parent.(src) <- -1;
    let queue = Queue.create () in
    Queue.push src queue;
    let found = ref None in
    while !found = None && not (Queue.is_empty queue) do
      let q = Queue.pop queue in
      if target q then found := Some q
      else
        List.iter
          (fun q' ->
            if (keep q' || target q') && parent.(q') = -2 then begin
              parent.(q') <- q;
              Queue.push q' queue
            end)
          k.successors.(q)
    done;
    Option.map
      (fun dest ->
        let rec unwind q acc =
          if parent.(q) = -1 then q :: acc else unwind parent.(q) (q :: acc)
        in
        unwind dest [])
      !found
  end

(* A cycle through states satisfying [keep], starting and ending at [src]
   (one or more steps); returns the cycle without the repeated endpoint. *)
let cycle_from (k : Kripke.t) ~keep ~src =
  let step_back = List.filter keep k.successors.(src) in
  List.find_map
    (fun first ->
      Option.map
        (fun back ->
          src :: List.filteri (fun i _ -> i < List.length back - 1) back)
        (bfs_path k ~keep ~src:first ~target:(fun q -> q = src)))
    step_back

(* Any lasso continuation from a state (keep = everything). *)
let any_continuation k ~src =
  (* Walk forward until a state repeats. *)
  let seen = Array.make k.Kripke.nstates (-1) in
  let rec go q acc i =
    if seen.(q) >= 0 then begin
      let fwd = List.rev acc in
      let cut = seen.(q) in
      let spoke = List.filteri (fun j _ -> j < cut) fwd in
      let cycle = List.filteri (fun j _ -> j >= cut) fwd in
      { spoke; cycle }
    end
    else begin
      seen.(q) <- i;
      go (List.hd k.Kripke.successors.(q)) (q :: acc) (i + 1)
    end
  in
  go src [] 0

let witness (k : Kripke.t) formula q =
  let sat f = Ctl.sat k f in
  let prepend prefix p =
    (* prefix ends where p starts. *)
    { p with spoke = prefix @ p.spoke }
  in
  match (formula : Ctl.t) with
  | EX g ->
      let vg = sat g in
      List.find_map
        (fun q' ->
          if vg.(q') then Some (prepend [ q ] (any_continuation k ~src:q'))
          else None)
        k.successors.(q)
  | EF g ->
      let vg = sat g in
      Option.map
        (fun path ->
          match List.rev path with
          | last :: _ ->
              prepend
                (List.filteri (fun i _ -> i < List.length path - 1) path)
                (any_continuation k ~src:last)
          | [] -> assert false)
        (bfs_path k ~keep:(fun _ -> true) ~src:q ~target:(fun s -> vg.(s)))
  | EU (g, h) ->
      let vg = sat g and vh = sat h in
      (* A g-path to an h-state: intermediates within g, endpoint h. *)
      Option.map
        (fun path ->
          match List.rev path with
          | last :: _ ->
              prepend
                (List.filteri (fun i _ -> i < List.length path - 1) path)
                (any_continuation k ~src:last)
          | [] -> assert false)
        (bfs_path k ~keep:(fun s -> vg.(s)) ~src:q
           ~target:(fun s -> vh.(s)))
  | EG g ->
      let vg = sat g in
      if not (Ctl.sat k (Ctl.EG g)).(q) then None
      else begin
        (* Within g-states: reach a state on a g-cycle. *)
        let on_g_cycle s =
          vg.(s) && cycle_from k ~keep:(fun x -> vg.(x)) ~src:s <> None
        in
        Option.bind
          (bfs_path k ~keep:(fun s -> vg.(s)) ~src:q ~target:on_g_cycle)
          (fun path ->
            match List.rev path with
            | last :: _ ->
                Option.map
                  (fun cyc ->
                    { spoke =
                        List.filteri (fun i _ -> i < List.length path - 1)
                          path;
                      cycle = cyc })
                  (cycle_from k ~keep:(fun x -> vg.(x)) ~src:last)
            | [] -> None)
      end
  | _ -> None

let counterexample (k : Kripke.t) formula q =
  match (formula : Ctl.t) with
  | AX g -> witness k (Ctl.EX (Ctl.Not g)) q
  | AF g -> witness k (Ctl.EG (Ctl.Not g)) q
  | AG g -> witness k (Ctl.EF (Ctl.Not g)) q
  | AU (g, h) ->
      (* ¬A(g U h) = E(¬h U (¬g ∧ ¬h)) ∨ EG ¬h. *)
      let nh = Ctl.Not h in
      (match witness k (Ctl.EU (nh, Ctl.And (Ctl.Not g, nh))) q with
      | Some p -> Some p
      | None -> witness k (Ctl.EG nh) q)
  | _ -> None
