module Kripke = Sl_kripke.Kripke

(** CTL under fairness constraints.

    A (generalized Büchi style) fairness assumption is a list of state
    sets, each of which a {e fair} path must visit infinitely often. The
    path quantifiers of CTL are then relativized to fair paths — the
    classical Clarke–Grumberg–Peled treatment, and the standard way the
    liveness half of a specification is made true of schedulers that the
    plain structure does not force (the paper's "existence of a fair
    computation cannot be so determined" remark lives in exactly this
    setting).

    With an empty constraint list everything degenerates to plain CTL;
    the test suite checks that degeneration and the textbook examples. *)

type constraints = bool array list
(** Each array has one flag per structure state. *)

val fair_states : Kripke.t -> constraints -> bool array
(** States from which some fair path starts ([E_fair G true]). *)

val eg : Kripke.t -> constraints -> bool array -> bool array
(** [E_fair G f]: an [f]-confined path visiting every constraint
    infinitely often — computed by SCC analysis of the [f]-restricted
    graph. *)

val sat : Kripke.t -> constraints -> Ctl.t -> bool array
(** Full fair-CTL labeling: existential modalities are relativized by
    conjoining {!fair_states} at the appropriate points; universal ones
    come out by duality. *)

val holds : Kripke.t -> constraints -> Ctl.t -> bool

val constraint_of_prop : Kripke.t -> string -> bool array
(** The state set where a proposition holds — convenience for building
    constraints like "the scheduler picks process 1 infinitely often". *)
