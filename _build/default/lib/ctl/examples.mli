(** The paper's Section 4.3 examples q0–q6: Rem's properties recast over
    binary infinite trees, with the closure facts and the ES/US/EL/UL
    classifications machine-checked on regular trees.

    Trees branch arbitrarily with at most two children per node, over the
    alphabet [{a = 0, b = 1}] (the paper's Section 4.3 works over the full
    space [A_tot], sequences included); membership of a total tree is
    decided by CTL model checking (q0–q3b, q6) or by the CTL* limit
    modalities ({!Ctlstar}; q4a–q5b) on the presentation graph;
    extendability of partial prefixes is decided by the documented
    cycle-analysis oracles. *)

module Tclosure = Sl_tree.Tclosure
module Ptree = Sl_tree.Ptree

val q0 : Tclosure.property (** [false] *)

val q1 : Tclosure.property (** root labeled [a] *)

val q2 : Tclosure.property (** root not labeled [a] *)

val q3a : Tclosure.property (** [a ∧ AF ¬a] *)

val q3b : Tclosure.property (** [a ∧ EF ¬a] *)

val q4a : Tclosure.property (** [A FG ¬a] *)

val q4b : Tclosure.property (** [E FG ¬a] *)

val q5a : Tclosure.property (** [A GF a] *)

val q5b : Tclosure.property (** [E GF a] *)

val q6 : Tclosure.property (** [true] *)

val all : Tclosure.property list

val sample : Ptree.t list
(** The sample of total trees used by the table: every total presentation
    with at most 2 states and at most binary branching over [{a, b}] —
    including the unary "sequences" the paper's Section 4.3 arguments
    rely on. *)

type row = {
  property : Tclosure.property;
  classification : Tclosure.classification;
}

val table : ?max_depth:int -> unit -> row list
(** The Section 4.3 table, recomputed on {!sample}. *)

val pp_table : Format.formatter -> row list -> unit
