module Tclosure = Sl_tree.Tclosure
module Rtree = Sl_tree.Rtree
module Ptree = Sl_tree.Ptree

(* Letter 0 is "a"; anything else is "b". *)
let prop_of_label l = if l = 0 then "a" else "b"
let state_is_a (t : Ptree.t) q = t.Ptree.label.(q) = 0
let root_is_a (t : Ptree.t) = state_is_a t t.Ptree.root

let check_ctl formula t =
  Ctl.holds (Ptree.to_kripke t ~prop_of_label) (Ctl.parse_exn formula)

let checkstar star pred (t : Ptree.t) =
  let k = Ptree.to_kripke t ~prop_of_label in
  let v = star k ~pred:(fun q -> pred t q) in
  v.(t.Ptree.root)

let q0 : Tclosure.property =
  { name = "q0"; mem = (fun _ -> false); extends = (fun _ -> false) }

let q1 : Tclosure.property =
  (* Any prefix with an a-labeled root extends (fill holes arbitrarily). *)
  { name = "q1"; mem = root_is_a; extends = root_is_a }

let q2 : Tclosure.property =
  { name = "q2";
    mem = (fun t -> not (root_is_a t));
    extends = (fun x -> not (root_is_a x)) }

let q3a : Tclosure.property =
  (* a ∧ AF ¬a. A prefix extends iff its root is a and it contains no
     infinite all-a path from the root: such a path would survive into
     any extension and violate AF ¬a; conversely, fill every hole with the
     all-b tree. *)
  { name = "q3a";
    mem = check_ctl "a & AF b";
    extends =
      (fun x ->
        root_is_a x
        && not (Ptree.has_cycle_within x ~keep:(state_is_a x))) }

let q3b : Tclosure.property =
  (* a ∧ EF ¬a. A prefix with a hole always extends (attach b below it);
     a hole-free (total) prefix is its own only extension. *)
  { name = "q3b";
    mem = check_ctl "a & EF b";
    extends =
      (fun x ->
        root_is_a x
        && (Ptree.has_hole x
           || begin
                let reach = Ptree.reachable x in
                let non_a = ref false in
                Array.iteri
                  (fun q r -> if r && not (state_is_a x q) then non_a := true)
                  reach;
                !non_a
              end)) }

let q4a : Tclosure.property =
  (* A FG ¬a: along every path, finitely many a. A prefix extends iff no
     infinite path in it visits a infinitely often (no reachable cycle
     through an a-state); holes are filled with all-b. *)
  { name = "q4a";
    mem = checkstar Ctlstar.a_fg (fun t q -> not (state_is_a t q));
    extends =
      (fun x ->
        not (Ptree.has_reachable_cycle_through x ~pred:(state_is_a x))) }

let q4b : Tclosure.property =
  (* E FG ¬a: some path with finitely many a. Any prefix with a hole
     extends (attach b^ω); a total one must already contain a reachable
     all-b cycle. *)
  { name = "q4b";
    mem = checkstar Ctlstar.e_fg (fun t q -> not (state_is_a t q));
    extends =
      (fun x ->
        Ptree.has_hole x
        || Ptree.has_reachable_cycle_inside x
             ~pred:(fun q -> not (state_is_a x q))) }

let q5a : Tclosure.property =
  (* A GF a: along every path, infinitely many a. A prefix extends iff no
     infinite path in it is eventually all-b (no reachable all-b cycle);
     holes are filled with a^ω. *)
  { name = "q5a";
    mem = checkstar Ctlstar.a_gf state_is_a;
    extends =
      (fun x ->
        not
          (Ptree.has_reachable_cycle_inside x
             ~pred:(fun q -> not (state_is_a x q)))) }

let q5b : Tclosure.property =
  (* E GF a: some path with infinitely many a. *)
  { name = "q5b";
    mem = checkstar Ctlstar.e_gf state_is_a;
    extends =
      (fun x ->
        Ptree.has_hole x
        || Ptree.has_reachable_cycle_through x ~pred:(state_is_a x)) }

let q6 : Tclosure.property =
  { name = "q6"; mem = (fun _ -> true); extends = (fun _ -> true) }

let all = [ q0; q1; q2; q3a; q3b; q4a; q4b; q5a; q5b; q6 ]

(* Total presentations with up to two states and up to binary branching:
   this includes the unary "sequence" trees that drive the paper's ncl
   facts (Section 4.3 works over arbitrary-branching A_tot). *)
let sample = Ptree.enumerate_total ~alphabet:2 ~k:2 ~max_states:2

type row = {
  property : Tclosure.property;
  classification : Tclosure.classification;
}

let table ?(max_depth = 3) () =
  List.map
    (fun p ->
      { property = p;
        classification = Tclosure.classify p ~sample ~max_depth })
    all

let pp_table fmt rows =
  Format.fprintf fmt "@[<v>%-5s  %s@," "id" "classification (ES/US/EL/UL)";
  Format.fprintf fmt "%s@," (String.make 40 '-');
  List.iter
    (fun r ->
      Format.fprintf fmt "%-5s  %a@," r.property.Tclosure.name
        Tclosure.pp_classification r.classification)
    rows;
  Format.fprintf fmt "@]"
