module Kripke = Sl_kripke.Kripke

type constraints = bool array list

(* SCCs of the subgraph induced by [keep]. *)
let sccs_within (k : Kripke.t) keep =
  let n = k.nstates in
  let index = Array.make n (-1) in
  let lowlink = Array.make n 0 in
  let on_stack = Array.make n false in
  let stack = ref [] in
  let counter = ref 0 in
  let comps = ref [] in
  let succs q = List.filter (fun q' -> keep.(q')) k.successors.(q) in
  let rec strongconnect v =
    index.(v) <- !counter;
    lowlink.(v) <- !counter;
    incr counter;
    stack := v :: !stack;
    on_stack.(v) <- true;
    List.iter
      (fun w ->
        if index.(w) = -1 then begin
          strongconnect w;
          lowlink.(v) <- min lowlink.(v) lowlink.(w)
        end
        else if on_stack.(w) then lowlink.(v) <- min lowlink.(v) index.(w))
      (succs v);
    if lowlink.(v) = index.(v) then begin
      let members = ref [] in
      let brk = ref false in
      while not !brk do
        match !stack with
        | [] -> brk := true
        | w :: rest ->
            stack := rest;
            on_stack.(w) <- false;
            members := w :: !members;
            if w = v then brk := true
      done;
      comps := !members :: !comps
    end
  in
  for v = 0 to n - 1 do
    if keep.(v) && index.(v) = -1 then strongconnect v
  done;
  !comps

(* E_fair G f: f-states that reach (within f) a nontrivial f-SCC meeting
   every fairness set. *)
let eg (k : Kripke.t) constraints f =
  let n = k.nstates in
  let seeds = Array.make n false in
  List.iter
    (fun comp ->
      let nontrivial =
        match comp with
        | [ v ] -> List.mem v (List.filter (fun w -> f.(w)) k.successors.(v))
        | _ -> true
      in
      if
        nontrivial
        && List.for_all
             (fun set -> List.exists (fun q -> set.(q)) comp)
             constraints
      then List.iter (fun q -> seeds.(q) <- true) comp)
    (sccs_within k f);
  (* Backwards reachability within f. *)
  let v = seeds in
  let changed = ref true in
  while !changed do
    changed := false;
    for q = 0 to n - 1 do
      if
        f.(q) && (not v.(q))
        && List.exists (fun q' -> v.(q')) k.successors.(q)
      then begin
        v.(q) <- true;
        changed := true
      end
    done
  done;
  v

let fair_states k constraints =
  eg k constraints (Array.make k.Kripke.nstates true)

let sat (k : Kripke.t) constraints formula =
  let n = k.nstates in
  let fair = fair_states k constraints in
  let ex set =
    Array.init n (fun q -> List.exists (fun q' -> set.(q')) k.successors.(q))
  in
  let conj a b = Array.init n (fun q -> a.(q) && b.(q)) in
  let nota = Array.map not in
  let eu a b =
    let v = Array.copy b in
    let changed = ref true in
    while !changed do
      changed := false;
      for q = 0 to n - 1 do
        if
          (not v.(q)) && a.(q)
          && List.exists (fun q' -> v.(q')) k.successors.(q)
        then begin
          v.(q) <- true;
          changed := true
        end
      done
    done;
    v
  in
  let fair_ex set = ex (conj set fair) in
  let fair_eu a b = eu a (conj b fair) in
  let fair_eg = eg k constraints in
  let rec go : Ctl.t -> bool array = function
    | True -> Array.make n true
    | False -> Array.make n false
    | Prop p -> Array.init n (fun q -> Kripke.holds k q p)
    | Not f -> nota (go f)
    | And (a, b) -> conj (go a) (go b)
    | Or (a, b) ->
        let va = go a and vb = go b in
        Array.init n (fun q -> va.(q) || vb.(q))
    | Implies (a, b) ->
        let va = go a and vb = go b in
        Array.init n (fun q -> (not va.(q)) || vb.(q))
    | EX f -> fair_ex (go f)
    | AX f -> nota (fair_ex (nota (go f)))
    | EF f -> fair_eu (Array.make n true) (go f)
    | AF f -> nota (fair_eg (nota (go f)))
    | EG f -> fair_eg (go f)
    | AG f -> nota (fair_eu (Array.make n true) (nota (go f)))
    | EU (a, b) -> fair_eu (go a) (go b)
    | AU (a, b) ->
        let va = go a and vb = go b in
        let nb = nota vb in
        let bad = fair_eu nb (conj (nota va) nb) in
        let eg_nb = fair_eg nb in
        Array.init n (fun q -> (not bad.(q)) && not eg_nb.(q))
  in
  go formula

let holds (k : Kripke.t) constraints formula =
  (sat k constraints formula).(k.initial)

let constraint_of_prop (k : Kripke.t) p =
  Array.init k.nstates (fun q -> Kripke.holds k q p)
