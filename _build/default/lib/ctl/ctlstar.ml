module Kripke = Sl_kripke.Kripke

(* States from which a target set is reachable (in >= 0 steps). *)
let can_reach (k : Kripke.t) target =
  let v = Array.copy target in
  let changed = ref true in
  while !changed do
    changed := false;
    for q = 0 to k.nstates - 1 do
      if (not v.(q)) && List.exists (fun q' -> v.(q')) k.successors.(q)
      then begin
        v.(q) <- true;
        changed := true
      end
    done
  done;
  v

(* Is [q] on a cycle all of whose states satisfy [inside]? *)
let on_cycle_inside (k : Kripke.t) inside q =
  if not (inside q) then false
  else begin
    let seen = Array.make k.nstates false in
    let found = ref false in
    let rec visit s =
      if inside s && not seen.(s) then begin
        seen.(s) <- true;
        if s = q then found := true;
        List.iter visit k.successors.(s)
      end
      else if inside s && s = q then found := true
    in
    List.iter visit k.successors.(q);
    !found
  end

let e_gf (k : Kripke.t) ~pred =
  (* Reach a pred-state lying on any cycle. *)
  let target =
    Array.init k.nstates (fun q ->
        pred q && on_cycle_inside k (fun _ -> true) q)
  in
  can_reach k target

let e_fg (k : Kripke.t) ~pred =
  (* Reach a pred-state lying on an all-pred cycle. *)
  let target =
    Array.init k.nstates (fun q -> pred q && on_cycle_inside k pred q)
  in
  can_reach k target

let a_gf k ~pred = Array.map not (e_fg k ~pred:(fun q -> not (pred q)))
let a_fg k ~pred = Array.map not (e_gf k ~pred:(fun q -> not (pred q)))

let prop_pred k p q = Kripke.holds k q p
