(** The four CTL* limit modalities used by the paper's Section 4.3
    examples (q4a/q4b/q5a/q5b), which lie outside CTL proper:
    [E GF p], [E FG p], [A GF p], [A FG p].

    On finite Kripke structures these reduce to cycle analysis: a path
    with infinitely many [p]-states exists iff a reachable cycle contains
    a [p]-state; a path with eventually only [p]-states exists iff a
    reachable cycle lies entirely inside [p]-states. The [A] forms are the
    negations of the dual [E] forms. *)

val e_gf : Sl_kripke.Kripke.t -> pred:(int -> bool) -> bool array
(** Per state: some path from it visits [pred]-states infinitely often. *)

val e_fg : Sl_kripke.Kripke.t -> pred:(int -> bool) -> bool array
(** Per state: some path from it is eventually confined to
    [pred]-states. *)

val a_gf : Sl_kripke.Kripke.t -> pred:(int -> bool) -> bool array
(** [A GF p = ¬ E FG ¬p]. *)

val a_fg : Sl_kripke.Kripke.t -> pred:(int -> bool) -> bool array
(** [A FG p = ¬ E GF ¬p]. *)

val prop_pred : Sl_kripke.Kripke.t -> string -> int -> bool
(** Convenience: the predicate of an atomic proposition. *)
