module Kripke = Sl_kripke.Kripke

(** Witness and counterexample paths for CTL model checking.

    A positive answer to an existential query ([EX]/[EF]/[EG]/[EU]) is
    backed by a lasso-shaped path of the structure; a negative answer to a
    universal query ([AX]/[AF]/[AG]/[AU]) is refuted by a witness for its
    existential dual. The extracted paths are replayed against the
    independent path-semantics checker in the tests. *)

type path = { spoke : int list; cycle : int list }
(** [spoke] then [cycle] repeated forever; both lists of states, [cycle]
    nonempty, consecutive states connected, and the cycle closing back to
    its head. *)

val pp_path : Format.formatter -> path -> unit

val check_path : Kripke.t -> path -> bool
(** Structural validity of a path in the structure. *)

val states_of_path : path -> int -> int
(** [states_of_path p i] — the [i]-th state along the path. *)

val witness : Kripke.t -> Ctl.t -> int -> path option
(** [witness k f q] — a path from [q] demonstrating [f], for [f] of the
    existential shapes [EX g], [EF g], [EG g], [E (g U h)] (with [g], [h]
    arbitrary CTL state formulas, decided by {!Ctl.sat}). Returns [None]
    when [f] does not hold at [q] or has no path-witnessable shape. For
    [EX]/[EF]/[EU] the continuation beyond the demonstrating prefix is an
    arbitrary cycle. *)

val counterexample : Kripke.t -> Ctl.t -> int -> path option
(** [counterexample k f q] — a path refuting [f] at [q], for [f] of the
    universal shapes [AX g], [AF g], [AG g], [A (g U h)], via the
    existential dual. [None] if [f] holds or has no handled shape. *)
