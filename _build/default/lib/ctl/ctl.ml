module Kripke = Sl_kripke.Kripke

type t =
  | True
  | False
  | Prop of string
  | Not of t
  | And of t * t
  | Or of t * t
  | Implies of t * t
  | EX of t
  | AX of t
  | EF of t
  | AF of t
  | EG of t
  | AG of t
  | EU of t * t
  | AU of t * t

let rec pp fmt = function
  | True -> Format.pp_print_string fmt "true"
  | False -> Format.pp_print_string fmt "false"
  | Prop p -> Format.pp_print_string fmt p
  | Not f -> Format.fprintf fmt "!%a" pp_atom f
  | And (a, b) -> Format.fprintf fmt "%a & %a" pp_atom a pp_atom b
  | Or (a, b) -> Format.fprintf fmt "%a | %a" pp_atom a pp_atom b
  | Implies (a, b) -> Format.fprintf fmt "%a -> %a" pp_atom a pp_atom b
  | EX f -> Format.fprintf fmt "EX %a" pp_atom f
  | AX f -> Format.fprintf fmt "AX %a" pp_atom f
  | EF f -> Format.fprintf fmt "EF %a" pp_atom f
  | AF f -> Format.fprintf fmt "AF %a" pp_atom f
  | EG f -> Format.fprintf fmt "EG %a" pp_atom f
  | AG f -> Format.fprintf fmt "AG %a" pp_atom f
  | EU (a, b) -> Format.fprintf fmt "E (%a U %a)" pp a pp b
  | AU (a, b) -> Format.fprintf fmt "A (%a U %a)" pp a pp b

and pp_atom fmt f =
  match f with
  | True | False | Prop _ | Not _ | EX _ | AX _ | EF _ | AF _ | EG _
  | AG _ ->
      pp fmt f
  | _ -> Format.fprintf fmt "(%a)" pp f

let to_string f = Format.asprintf "%a" pp f

let rec size = function
  | True | False | Prop _ -> 1
  | Not f | EX f | AX f | EF f | AF f | EG f | AG f -> 1 + size f
  | And (a, b) | Or (a, b) | Implies (a, b) | EU (a, b) | AU (a, b) ->
      1 + size a + size b

let propositions f =
  let rec go acc = function
    | True | False -> acc
    | Prop p -> p :: acc
    | Not f | EX f | AX f | EF f | AF f | EG f | AG f -> go acc f
    | And (a, b) | Or (a, b) | Implies (a, b) | EU (a, b) | AU (a, b) ->
        go (go acc a) b
  in
  List.sort_uniq String.compare (go [] f)

(* --- Parser --- *)

type token =
  | TTrue | TFalse | TIdent of string
  | TNot | TAnd | TOr | TImplies
  | TEX | TAX | TEF | TAF | TEG | TAG | TE | TA | TU
  | TLparen | TRparen | TEnd

exception Syntax of string

let tokenize input =
  let n = String.length input in
  let is_ident_char c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
    || (c >= '0' && c <= '9') || c = '_'
  in
  let rec go i acc =
    if i >= n then List.rev (TEnd :: acc)
    else
      match input.[i] with
      | ' ' | '\t' | '\n' | '\r' -> go (i + 1) acc
      | '(' -> go (i + 1) (TLparen :: acc)
      | ')' -> go (i + 1) (TRparen :: acc)
      | '!' -> go (i + 1) (TNot :: acc)
      | '&' -> go (i + 1) (TAnd :: acc)
      | '|' -> go (i + 1) (TOr :: acc)
      | '-' ->
          if i + 1 < n && input.[i + 1] = '>' then go (i + 2) (TImplies :: acc)
          else raise (Syntax (Printf.sprintf "stray '-' at %d" i))
      | c when is_ident_char c ->
          let j = ref i in
          while !j < n && is_ident_char input.[!j] do
            incr j
          done;
          let word = String.sub input i (!j - i) in
          let tok =
            match word with
            | "true" -> TTrue
            | "false" -> TFalse
            | "EX" -> TEX
            | "AX" -> TAX
            | "EF" -> TEF
            | "AF" -> TAF
            | "EG" -> TEG
            | "AG" -> TAG
            | "E" -> TE
            | "A" -> TA
            | "U" -> TU
            | _ -> TIdent word
          in
          go !j (tok :: acc)
      | c -> raise (Syntax (Printf.sprintf "unexpected '%c' at %d" c i))
  in
  go 0 []

let parse input =
  try
    let tokens = ref (tokenize input) in
    let peek () = match !tokens with [] -> TEnd | t :: _ -> t in
    let advance () =
      match !tokens with [] -> () | _ :: rest -> tokens := rest
    in
    let expect t what =
      if peek () = t then advance () else raise (Syntax ("expected " ^ what))
    in
    let rec implies () =
      let lhs = or_ () in
      if peek () = TImplies then begin
        advance ();
        Implies (lhs, implies ())
      end
      else lhs
    and or_ () =
      let lhs = ref (and_ ()) in
      while peek () = TOr do
        advance ();
        lhs := Or (!lhs, and_ ())
      done;
      !lhs
    and and_ () =
      let lhs = ref (unary ()) in
      while peek () = TAnd do
        advance ();
        lhs := And (!lhs, unary ())
      done;
      !lhs
    and unary () =
      match peek () with
      | TNot -> advance (); Not (unary ())
      | TEX -> advance (); EX (unary ())
      | TAX -> advance (); AX (unary ())
      | TEF -> advance (); EF (unary ())
      | TAF -> advance (); AF (unary ())
      | TEG -> advance (); EG (unary ())
      | TAG -> advance (); AG (unary ())
      | TE -> advance (); quantified_until (fun a b -> EU (a, b))
      | TA -> advance (); quantified_until (fun a b -> AU (a, b))
      | _ -> atom ()
    and quantified_until build =
      expect TLparen "'(' after path quantifier";
      let a = implies () in
      expect TU "'U'";
      let b = implies () in
      expect TRparen "')'";
      build a b
    and atom () =
      match peek () with
      | TTrue -> advance (); True
      | TFalse -> advance (); False
      | TIdent p -> advance (); Prop p
      | TLparen ->
          advance ();
          let f = implies () in
          expect TRparen "')'";
          f
      | _ -> raise (Syntax "expected a formula")
    in
    let f = implies () in
    expect TEnd "end of input";
    Ok f
  with Syntax msg -> Error msg

let parse_exn input =
  match parse input with
  | Ok f -> f
  | Error msg -> invalid_arg ("Ctl.parse_exn: " ^ msg)

(* --- Model checking --- *)

let sat (k : Kripke.t) formula =
  let n = k.nstates in
  let ex set =
    Array.init n (fun q -> List.exists (fun q' -> set.(q')) k.successors.(q))
  in
  (* Least fixpoint of  b v (a ^ EX Z). *)
  let eu a b =
    let v = Array.copy b in
    let changed = ref true in
    while !changed do
      changed := false;
      for q = 0 to n - 1 do
        if
          (not v.(q)) && a.(q)
          && List.exists (fun q' -> v.(q')) k.successors.(q)
        then begin
          v.(q) <- true;
          changed := true
        end
      done
    done;
    v
  in
  (* Greatest fixpoint of  a ^ EX Z. *)
  let eg a =
    let v = Array.copy a in
    let changed = ref true in
    while !changed do
      changed := false;
      for q = 0 to n - 1 do
        if v.(q) && not (List.exists (fun q' -> v.(q')) k.successors.(q))
        then begin
          v.(q) <- false;
          changed := true
        end
      done
    done;
    v
  in
  let nota = Array.map not in
  let conj a b = Array.init n (fun q -> a.(q) && b.(q)) in
  let rec go = function
    | True -> Array.make n true
    | False -> Array.make n false
    | Prop p -> Array.init n (fun q -> Kripke.holds k q p)
    | Not f -> nota (go f)
    | And (a, b) -> conj (go a) (go b)
    | Or (a, b) ->
        let va = go a and vb = go b in
        Array.init n (fun q -> va.(q) || vb.(q))
    | Implies (a, b) ->
        let va = go a and vb = go b in
        Array.init n (fun q -> (not va.(q)) || vb.(q))
    | EX f -> ex (go f)
    | AX f -> nota (ex (nota (go f)))
    | EF f -> eu (Array.make n true) (go f)
    | AF f -> nota (eg (nota (go f)))
    | EG f -> eg (go f)
    | AG f -> nota (eu (Array.make n true) (nota (go f)))
    | EU (a, b) -> eu (go a) (go b)
    | AU (a, b) ->
        (* A(a U b) = !E(!b U (!a & !b)) & !EG !b *)
        let va = go a and vb = go b in
        let nb = nota vb in
        let bad = eu nb (conj (nota va) nb) in
        let eg_nb = eg nb in
        Array.init n (fun q -> (not bad.(q)) && not eg_nb.(q))
  in
  go formula

let holds_at k f q = (sat k f).(q)
let holds (k : Kripke.t) f = holds_at k f k.initial

let witnesses k f =
  let v = sat k f in
  List.filter (fun q -> v.(q)) (List.init (Array.length v) Fun.id)
