(** Computation Tree Logic: syntax and the standard labeling model checker.

    CTL is the paper's carrier logic for the branching-time examples of
    Section 4.3 (q0–q6). Formulas are interpreted over the total trees
    obtained by unwinding Kripke structures; by the classical fact that
    CTL cannot distinguish a structure from its unwinding, model checking
    the structure decides membership of the unwinding tree in the
    property. *)

type t =
  | True
  | False
  | Prop of string
  | Not of t
  | And of t * t
  | Or of t * t
  | Implies of t * t
  | EX of t
  | AX of t
  | EF of t
  | AF of t
  | EG of t
  | AG of t
  | EU of t * t
  | AU of t * t

val pp : Format.formatter -> t -> unit
val to_string : t -> string

val parse : string -> (t, string) result
(** Concrete syntax: [EX f], [AX f], [EF f], [AF f], [EG f], [AG f],
    [E (f U g)], [A (f U g)], booleans as in LTL. *)

val parse_exn : string -> t

val size : t -> int
val propositions : t -> string list

(** {1 Model checking} *)

val sat : Sl_kripke.Kripke.t -> t -> bool array
(** The labeling algorithm: [sat k f] marks the states whose unwinding
    satisfies [f]. Core modalities [EX], [EU], [EG] are computed by
    fixpoints ([EU] least, [EG] greatest via successor-pruning); the rest
    reduce by the standard dualities. Linear passes per subformula. *)

val holds : Sl_kripke.Kripke.t -> t -> bool
(** Truth at the initial state. *)

val holds_at : Sl_kripke.Kripke.t -> t -> int -> bool

val witnesses : Sl_kripke.Kripke.t -> t -> int list
(** States satisfying the formula, sorted. *)
