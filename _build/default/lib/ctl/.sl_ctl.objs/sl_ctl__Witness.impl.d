lib/ctl/witness.ml: Array Ctl Format List Option Queue Sl_kripke String
