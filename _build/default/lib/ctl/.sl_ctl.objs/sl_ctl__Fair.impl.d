lib/ctl/fair.ml: Array Ctl List Sl_kripke
