lib/ctl/ctlstar.mli: Sl_kripke
