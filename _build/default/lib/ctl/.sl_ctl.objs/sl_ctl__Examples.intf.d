lib/ctl/examples.mli: Format Sl_tree
