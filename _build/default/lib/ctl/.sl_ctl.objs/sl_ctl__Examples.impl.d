lib/ctl/examples.ml: Array Ctl Ctlstar Format List Sl_tree String
