lib/ctl/ctl.ml: Array Format Fun List Printf Sl_kripke String
