lib/ctl/witness.mli: Ctl Format Sl_kripke
