lib/ctl/ctlstar.ml: Array List Sl_kripke
