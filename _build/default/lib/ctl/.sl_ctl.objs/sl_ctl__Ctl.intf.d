lib/ctl/ctl.mli: Format Sl_kripke
