lib/ctl/fair.mli: Ctl Sl_kripke
