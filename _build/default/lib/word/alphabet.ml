type t = { names : string array }

let make names =
  if Array.length names = 0 then invalid_arg "Alphabet.make: empty";
  { names = Array.copy names }

let of_size n =
  if n < 1 then invalid_arg "Alphabet.of_size: need n >= 1";
  make (Array.init n (Printf.sprintf "s%d"))

let binary = make [| "a"; "b" |]

let of_subsets props =
  let props = Array.of_list props in
  let n = Array.length props in
  if n > 16 then invalid_arg "Alphabet.of_subsets: too many propositions";
  let name i =
    let members =
      List.filteri (fun _ _ -> true) (Array.to_list props)
      |> List.mapi (fun j p -> (j, p))
      |> List.filter_map (fun (j, p) ->
             if i land (1 lsl j) <> 0 then Some p else None)
    in
    "{" ^ String.concat "," members ^ "}"
  in
  make (Array.init (1 lsl n) name)

let size a = Array.length a.names
let label a i = a.names.(i)
let symbols a = List.init (size a) Fun.id
let mem a i = i >= 0 && i < size a
let pp_symbol a fmt i = Format.pp_print_string fmt (label a i)
let equal a b = a.names = b.names
