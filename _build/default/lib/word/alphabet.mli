(** Finite alphabets.

    Symbols are integers [0 .. size - 1]; an alphabet attaches print names.
    The paper fixes a nonempty alphabet [Σ] throughout; we thread this value
    through automata so that languages over different alphabets cannot be
    confused. *)

type t

val make : string array -> t
(** [make names] is the alphabet whose symbol [i] prints as [names.(i)].
    @raise Invalid_argument on an empty array. *)

val of_size : int -> t
(** Anonymous alphabet of [n >= 1] symbols named ["s0"], ["s1"], … *)

val binary : t
(** The two-symbol alphabet [{a, b}] used by all of Rem's examples: symbol
    [0] is ["a"], symbol [1] is ["b"] (standing for "anything other than
    a"). *)

val of_subsets : string list -> t
(** The alphabet [2^AP] of valuations over atomic propositions, as used by
    LTL semantics: symbol [i] denotes the set of propositions whose bit is
    set in [i], printed like ["{p,q}"]. Proposition [j] is bit [1 lsl j]. *)

val size : t -> int
val label : t -> int -> string
val symbols : t -> int list
val mem : t -> int -> bool
val pp_symbol : t -> Format.formatter -> int -> unit
val equal : t -> t -> bool
