type t = { prefix : int array; cycle : int array }

(* Smallest period of the array: the least d dividing n with v.(i) =
   v.(i mod d) for all i. *)
let primitive_root v =
  let n = Array.length v in
  let divides d = n mod d = 0 in
  let is_period d =
    let ok = ref true in
    for i = 0 to n - 1 do
      if v.(i) <> v.(i mod d) then ok := false
    done;
    !ok
  in
  let rec find d = if divides d && is_period d then d else find (d + 1) in
  Array.sub v 0 (find 1)

let rotate_right v =
  let n = Array.length v in
  Array.init n (fun i -> v.((i + n - 1) mod n))

(* Canonical form: primitive cycle, then peel matching last letters from the
   prefix into cycle rotations: u'x (v'x)^ω = u' (xv')^ω. *)
let canonize prefix cycle =
  let cycle = ref (primitive_root cycle) in
  let prefix = ref prefix in
  let continue_ = ref true in
  while !continue_ do
    let np = Array.length !prefix and c = !cycle in
    let nc = Array.length c in
    if np > 0 && !prefix.(np - 1) = c.(nc - 1) then begin
      prefix := Array.sub !prefix 0 (np - 1);
      cycle := rotate_right c
    end
    else continue_ := false
  done;
  { prefix = !prefix; cycle = !cycle }

let make ~prefix ~cycle =
  if cycle = [] then invalid_arg "Lasso.make: empty cycle";
  if List.exists (fun s -> s < 0) prefix || List.exists (fun s -> s < 0) cycle
  then invalid_arg "Lasso.make: negative symbol";
  canonize (Array.of_list prefix) (Array.of_list cycle)

let constant s = make ~prefix:[] ~cycle:[ s ]
let prefix w = Array.to_list w.prefix
let cycle w = Array.to_list w.cycle

let at w i =
  let np = Array.length w.prefix in
  if i < np then w.prefix.(i) else w.cycle.((i - np) mod Array.length w.cycle)

let period w = Array.length w.cycle
let spoke w = Array.length w.prefix
let total_length w = spoke w + period w
let equal a b = a = b
let compare = Stdlib.compare
let first_n w n = List.init n (at w)

let shift w k =
  let np = Array.length w.prefix in
  if k <= np then
    canonize (Array.sub w.prefix k (np - k)) w.cycle
  else begin
    let r = (k - np) mod Array.length w.cycle in
    let nc = Array.length w.cycle in
    canonize [||] (Array.init nc (fun i -> w.cycle.((i + r) mod nc)))
  end

let append_prefix u w =
  canonize (Array.of_list (u @ Array.to_list w.prefix)) w.cycle

let map f w = canonize (Array.map f w.prefix) (Array.map f w.cycle)

let enumerate ~alphabet ~max_prefix ~max_cycle =
  if alphabet < 1 then invalid_arg "Lasso.enumerate: empty alphabet";
  let rec words len =
    if len = 0 then [ [] ]
    else
      let shorter = words (len - 1) in
      List.concat_map
        (fun w -> List.init alphabet (fun s -> s :: w))
        shorter
  in
  let all_of_length len = words len in
  let prefixes =
    List.concat_map all_of_length (List.init (max_prefix + 1) Fun.id)
  in
  let cycles =
    List.concat_map all_of_length
      (List.filter (fun c -> c >= 1) (List.init (max_cycle + 1) Fun.id))
  in
  List.concat_map
    (fun p -> List.map (fun c -> make ~prefix:p ~cycle:c) cycles)
    prefixes
  |> List.sort_uniq compare

let count_letter w s =
  if Array.exists (fun x -> x = s) w.cycle then `Infinitely
  else
    `Finitely
      (Array.fold_left (fun n x -> if x = s then n + 1 else n) 0 w.prefix)

let pp ?alphabet () fmt w =
  let sym s =
    match alphabet with
    | Some a when Alphabet.mem a s -> Alphabet.label a s
    | _ -> string_of_int s
  in
  let render v = String.concat "" (List.map sym (Array.to_list v)) in
  Format.fprintf fmt "%s(%s)^w" (render w.prefix) (render w.cycle)

let to_string ?alphabet w = Format.asprintf "%a" (pp ?alphabet ()) w
