(** Ultimately periodic infinite words ("lassos").

    A lasso [(u, v)] denotes the infinite word [u · v^ω]. Lassos are the
    computable probe into [Σ^ω]: two ω-regular languages are equal iff they
    contain the same lassos, and every nonempty ω-regular language contains
    one — which is why the test suite and the language-lattice backend use
    systematic lasso enumeration as a second, independent oracle next to
    automata-theoretic constructions (see DESIGN.md §2). *)

type t
(** A lasso in canonical form: the cycle is primitive (not a power of a
    shorter word) and the prefix is shortest (its last letter differs from
    the corresponding cycle letter). Canonicity makes structural equality
    coincide with equality of the denoted infinite words. *)

val make : prefix:int list -> cycle:int list -> t
(** @raise Invalid_argument if the cycle is empty or any symbol is
    negative. *)

val constant : int -> t
(** [constant s] is [s^ω]. *)

val prefix : t -> int list
val cycle : t -> int list

val at : t -> int -> int
(** [at w i] is the [i]-th letter (0-based) of the denoted word. *)

val period : t -> int
(** Length of the canonical cycle. *)

val spoke : t -> int
(** Length of the canonical prefix. *)

val total_length : t -> int
(** [spoke + period]: the number of distinct positions that matter. *)

val equal : t -> t -> bool
(** Equality of denoted infinite words (structural equality of canonical
    forms). *)

val compare : t -> t -> int

val first_n : t -> int -> int list
(** The finite prefix of length [n]. *)

val shift : t -> int -> t
(** [shift w k] drops the first [k] letters (the suffix word). *)

val append_prefix : int list -> t -> t
(** [append_prefix u w] denotes [u ·  w]. *)

val map : (int -> int) -> t -> t
(** Letter-to-letter renaming (re-canonicalized). *)

val enumerate : alphabet:int -> max_prefix:int -> max_cycle:int -> t list
(** All canonical lassos with spoke length [<= max_prefix] and period
    [<= max_cycle] over symbols [0 .. alphabet-1], without duplicates.
    This is the systematic sampling grid used to compare languages. *)

val count_letter : t -> int -> [ `Finitely of int | `Infinitely ]
(** How often a letter occurs in the denoted word — decidable because the
    word is ultimately periodic; used to cross-check Rem's p4/p5. *)

val pp : ?alphabet:Alphabet.t -> unit -> Format.formatter -> t -> unit
val to_string : ?alphabet:Alphabet.t -> t -> string
