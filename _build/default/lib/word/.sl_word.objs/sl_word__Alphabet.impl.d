lib/word/alphabet.ml: Array Format Fun List Printf String
