lib/word/lasso.mli: Alphabet Format
