lib/word/lasso.ml: Alphabet Array Format Fun List Stdlib String
