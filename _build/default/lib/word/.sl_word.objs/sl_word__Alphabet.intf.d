lib/word/alphabet.mli: Format
