lib/kripke/kripke.ml: Array Format Fun Hashtbl List Option Printf Random String
