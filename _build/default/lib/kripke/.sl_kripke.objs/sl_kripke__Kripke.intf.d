lib/kripke/kripke.mli: Format
