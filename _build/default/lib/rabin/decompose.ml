module Rtree = Sl_tree.Rtree
module Ftree = Sl_tree.Ftree

type t = {
  original : Rabin.t;
  safe : Rabin.t;
  live_mem : Rtree.t -> bool;
}

let decompose b =
  let safe = Closure.rfcl b in
  { original = b; safe;
    live_mem = (fun t -> Rabin.accepts b t || not (Rabin.accepts safe t)) }

let fcl_mem b ~max_depth t =
  List.for_all
    (fun d -> Rabin.extends b (Rtree.unfold t ~depth:d))
    (List.init (max_depth + 1) Fun.id)

let verify_sampled ?(max_depth = 3) ~trees d =
  let failures = ref [] in
  let record claim diag = failures := (claim, diag) :: !failures in
  List.iter
    (fun y ->
      let in_safe = Rabin.accepts d.safe y in
      let in_fcl = fcl_mem d.original ~max_depth y in
      if in_safe <> in_fcl then
        record "L(rfcl B) <> fcl L(B)"
          (Format.asprintf "tree %a: automaton %b, oracle %b" Rtree.pp y
             in_safe in_fcl);
      (* Safety part closed: fcl of the safe language agrees with it. *)
      if fcl_mem d.safe ~max_depth y <> in_safe then
        record "safety part not fcl-closed"
          (Format.asprintf "tree %a" Rtree.pp y);
      (* Meet recovers the original language. *)
      let lhs = Rabin.accepts d.original y in
      let rhs = in_safe && d.live_mem y in
      if lhs <> rhs then
        record "L(B) <> L(B_safe) /\\ live"
          (Format.asprintf "tree %a: %b vs %b" Rtree.pp y lhs rhs);
      (* Liveness density evidence: a truncation not extendable into L(B)
         expels every extension from L(B_safe) = fcl L(B). *)
      List.iter
        (fun depth ->
          let x = Rtree.unfold y ~depth in
          if not (Rabin.extends d.original x) && in_safe then
            record "liveness part not dense"
              (Format.asprintf "prefix of %a at depth %d" Rtree.pp y depth))
        (List.init (max_depth + 1) Fun.id))
    trees;
  List.rev !failures

let is_safe_language ?(max_depth = 3) ~trees b =
  List.for_all
    (fun y -> Rabin.accepts b y = fcl_mem b ~max_depth y)
    trees

(* Enumerate full k-branching prefixes of the given depth (all nodes at
   depth < n have exactly k children) over the automaton's alphabet. *)
let k_branching_prefixes ~alphabet ~k ~depth =
  let rec shapes d =
    if d = 0 then List.init alphabet Ftree.singleton
    else begin
      let sub = shapes (d - 1) in
      let rec kids i =
        if i = 0 then [ [] ]
        else
          List.concat_map (fun tail -> List.map (fun t -> t :: tail) sub)
            (kids (i - 1))
      in
      List.concat_map
        (fun lbl -> List.map (Ftree.of_children lbl) (kids k))
        (List.init alphabet Fun.id)
    end
  in
  shapes depth

let is_live_language ?(max_depth = 2) (b : Rabin.t) =
  List.for_all
    (fun d ->
      List.for_all (Rabin.extends b)
        (k_branching_prefixes ~alphabet:b.Rabin.alphabet ~k:b.Rabin.k
           ~depth:d))
    (List.init (max_depth + 1) Fun.id)
