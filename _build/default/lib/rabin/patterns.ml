(* Symbol 0 is a, symbol 1 is b; delta rows are indexed by symbol. *)
let tuples l = List.map (fun (x, y) -> [| x; y |]) l

(* States: 0 = waiting for b on this path, 1 = satisfied sink. *)
let af_b =
  let delta =
    [| [| tuples [ (0, 0) ]; tuples [ (1, 1) ] |];
       [| tuples [ (1, 1) ]; tuples [ (1, 1) ] |] |]
  in
  Rabin.make ~alphabet:2 ~k:2 ~nstates:2 ~start:0 ~delta
    ~pairs:(Rabin.buchi_condition ~nstates:2 ~accepting:[ 1 ])

let ag_a =
  let delta = [| [| tuples [ (0, 0) ]; [] |] |] in
  Rabin.make ~alphabet:2 ~k:2 ~nstates:1 ~start:0 ~delta
    ~pairs:(Rabin.buchi_condition ~nstates:1 ~accepting:[ 0 ])

(* States: 0 = searcher (owes a b on its path), 1 = universal sink
   accepting anything. *)
let ef_b =
  let delta =
    [| [| tuples [ (0, 1); (1, 0) ]; tuples [ (1, 1) ] |];
       [| tuples [ (1, 1) ]; tuples [ (1, 1) ] |] |]
  in
  Rabin.make ~alphabet:2 ~k:2 ~nstates:2 ~start:0 ~delta
    ~pairs:(Rabin.buchi_condition ~nstates:2 ~accepting:[ 1 ])

(* States: 0 = rider of the all-a path, 1 = universal sink. The rider can
   only read a. *)
let eg_a =
  let delta =
    [| [| tuples [ (0, 1); (1, 0) ]; [] |];
       [| tuples [ (1, 1) ]; tuples [ (1, 1) ] |] |]
  in
  Rabin.make ~alphabet:2 ~k:2 ~nstates:2 ~start:0 ~delta
    ~pairs:(Rabin.buchi_condition ~nstates:2 ~accepting:[ 0; 1 ])

(* States: 0 = root check (must read a), 1 = waiting for b, 2 = sink. *)
let q3a =
  let delta =
    [| [| tuples [ (1, 1) ]; [] |];
       [| tuples [ (1, 1) ]; tuples [ (2, 2) ] |];
       [| tuples [ (2, 2) ]; tuples [ (2, 2) ] |] |]
  in
  Rabin.make ~alphabet:2 ~k:2 ~nstates:3 ~start:0 ~delta
    ~pairs:(Rabin.buchi_condition ~nstates:3 ~accepting:[ 2 ])

let all =
  [ ("AF b", af_b); ("AG a", ag_a); ("EF b", ef_b); ("EG a", eg_a);
    ("q3a", q3a) ]

let sample_trees = Sl_tree.Rtree.enumerate ~alphabet:2 ~k:2 ~max_states:2
