let rfcl (b : Rabin.t) =
  if Rabin.is_empty b then b
  else begin
    let keep = Rabin.nonempty_states b in
    let pruned = Rabin.restrict b keep in
    { pruned with
      Rabin.pairs = Rabin.trivial_condition ~nstates:pruned.Rabin.nstates }
  end

let is_closure_shaped (b : Rabin.t) =
  match b.Rabin.pairs with
  | [ (green, red) ] ->
      Array.for_all Fun.id green
      && (not (Array.exists Fun.id red))
      && Array.for_all Fun.id (Rabin.nonempty_states b)
  | _ -> false
