lib/rabin/patterns.ml: List Rabin Sl_tree
