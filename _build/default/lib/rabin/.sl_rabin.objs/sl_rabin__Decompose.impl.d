lib/rabin/decompose.ml: Closure Format Fun List Rabin Sl_tree
