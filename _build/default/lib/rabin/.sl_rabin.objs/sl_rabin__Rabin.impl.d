lib/rabin/rabin.ml: Array Format Fun Hashtbl List Sl_tree String
