lib/rabin/patterns.mli: Rabin Sl_tree
