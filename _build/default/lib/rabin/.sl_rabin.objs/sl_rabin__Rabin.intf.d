lib/rabin/rabin.mli: Format Sl_tree
