lib/rabin/closure.mli: Rabin
