lib/rabin/decompose.mli: Rabin Sl_tree
