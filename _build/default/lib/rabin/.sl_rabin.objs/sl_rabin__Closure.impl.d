lib/rabin/closure.ml: Array Fun Rabin
