(** The finite-depth closure of a Rabin tree automaton (Section 4.4).

    "We define the finite depth closure, rfcl, of an automaton as follows:
    if L.B = ∅, rfcl.B = B; otherwise rfcl.B = (Σ, Q', q0, δ', Φ') where
    Φ' … holds along all paths and is generated from {(Q, ∅)}" — with Q'
    the states of nonempty language and δ' the restriction. [14] proves
    [L (rfcl B) = fcl (L B)]; here that equation is validated by the test
    suite against the independent {!Rabin.extends} oracle on sampled
    regular trees. *)

val rfcl : Rabin.t -> Rabin.t
(** Büchi-shaped automata only (the per-state emptiness test needs it;
    every automaton this library constructs, including [rfcl] outputs, is
    Büchi-shaped). @raise Invalid_argument otherwise. *)

val is_closure_shaped : Rabin.t -> bool
(** Trivial acceptance condition and every state nonempty — the invariant
    [rfcl] establishes on nonempty automata. *)
