(** Named Büchi-shaped tree automata on binary trees over [{a = 0, b = 1}]
    — the branching-time analogues of [Sl_buchi.Patterns], used to
    exercise Theorem 9. *)

val af_b : Rabin.t
(** "along every path, eventually [b]" ([AF b]); the closure of the
    paper's AFp discussion. *)

val ag_a : Rabin.t
(** "every node is [a]" ([AG a]) — a safety language. *)

val ef_b : Rabin.t
(** "some path hits [b]" ([EF b]): a searcher token is routed down one
    branch. *)

val eg_a : Rabin.t
(** "some path is all-[a]" ([EG a]). *)

val q3a : Rabin.t
(** the paper's q3a: root labeled [a] and along every path eventually
    [¬a]. *)

val all : (string * Rabin.t) list

val sample_trees : Sl_tree.Rtree.t list
(** Binary regular trees with at most 2 presentation states — the sample
    Theorem 9's checks run over. *)
