module Rtree = Sl_tree.Rtree

(** Theorem 9 of the paper: every Rabin-recognizable tree language is the
    intersection of a safe and a live Rabin-recognizable language.

    The safety part is constructed explicitly ([B_safe = rfcl B]); the
    liveness part's {e automaton} would require Rabin complementation
    (which the paper obtains from Rabin's theorem and we do not
    implement — see DESIGN.md), so it is represented by its {e membership
    predicate} [t ∈ L(B) ∨ t ∉ L(B_safe)], which is decidable with the
    machinery at hand. {!verify_sampled} then machine-checks, on sampled
    regular trees and finite prefixes, the three claims of the theorem
    plus the characterization [L (rfcl B) = fcl (L B)] from [14]. *)

type t = {
  original : Rabin.t;
  safe : Rabin.t;  (** [rfcl original] *)
  live_mem : Rtree.t -> bool;  (** membership in the liveness part *)
}

val decompose : Rabin.t -> t
(** Büchi-shaped automata only (inherited from {!Closure.rfcl}). *)

val verify_sampled :
  ?max_depth:int -> trees:Rtree.t list -> t -> (string * string) list
(** Checks, returning the failing claims (empty = verified):
    - [L(safe) = fcl (L original)] on the sampled trees, with the
      right-hand side computed independently via {!Rabin.extends} on
      truncations;
    - the safety part is fcl-closed on the sample;
    - [L(original) = L(safe) ∩ live] pointwise on the sample;
    - the liveness part is universally live: every sampled truncation
      either extends into [L(original)] or condemns all its extensions to
      lie outside [L(safe)] (hence inside the liveness part). *)

val is_safe_language : ?max_depth:int -> trees:Rtree.t list -> Rabin.t -> bool
(** Sampled test for [L(B) = fcl (L B)]. *)

val is_live_language : ?max_depth:int -> Rabin.t -> bool
(** [fcl (L B) = A_{k,tot}], tested exactly: every finite k-branching
    prefix up to [max_depth] over the alphabet extends into [L(B)] —
    equivalently [rfcl B] accepts every tree, which holds iff its
    transition structure is total on the nonempty states; we check the
    prefix formulation on enumerated small prefixes. *)
