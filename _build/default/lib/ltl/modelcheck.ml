module Kripke = Sl_kripke.Kripke
module Lasso = Sl_word.Lasso
module Buchi = Sl_buchi.Buchi

let to_buchi (k : Kripke.t) ~valuation ~alphabet =
  let compatible q s =
    Array.for_all
      (fun p -> valuation s p = Kripke.holds k q p)
      k.Kripke.ap
  in
  let delta =
    Array.init k.Kripke.nstates (fun q ->
        Array.init alphabet (fun s ->
            if compatible q s then k.Kripke.successors.(q) else []))
  in
  Buchi.make ~alphabet ~nstates:k.Kripke.nstates ~start:k.Kripke.initial
    ~delta
    ~accepting:(Array.make k.Kripke.nstates true)

type verdict = Holds | Fails of Lasso.t

let refute product =
  match Buchi.nonempty_witness product with
  | None -> Holds
  | Some w -> Fails w

let check k ~alphabet ~valuation formula =
  let system = to_buchi k ~valuation ~alphabet in
  let negated =
    Translate.translate ~alphabet ~valuation (Formula.Not formula)
  in
  refute (Sl_buchi.Ops.intersect system negated)

type split_verdict = {
  safety_verdict : verdict;
  liveness_verdict : verdict;
}

let check_split k ~alphabet ~valuation formula =
  let system = to_buchi k ~valuation ~alphabet in
  let spec = Translate.translate ~alphabet ~valuation formula in
  let d = Sl_buchi.Decompose.decompose spec in
  (* Safety side: L(K) ∩ ¬L(B_S) with the cheap closed-complement. *)
  let safety_verdict =
    refute
      (Sl_buchi.Ops.intersect system
         (Sl_buchi.Complement.complement_closed d.Sl_buchi.Decompose.safety))
  in
  (* Liveness side: ¬L(B_L) = L(¬φ) ∩ L(B_S) by the decomposition's
     construction, so no general complementation is needed. *)
  let negated =
    Translate.translate ~alphabet ~valuation (Formula.Not formula)
  in
  let liveness_verdict =
    refute
      (Sl_buchi.Ops.intersect system
         (Sl_buchi.Ops.intersect negated d.Sl_buchi.Decompose.safety))
  in
  { safety_verdict; liveness_verdict }
