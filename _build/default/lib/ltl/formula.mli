(** Linear Temporal Logic formulas.

    Syntax used by the paper's Section 2.3 examples: next-time [X],
    eventually [F], always [G], until [U], release [R], plus the Boolean
    connectives. Propositions are named. *)

type t =
  | True
  | False
  | Prop of string
  | Not of t
  | And of t * t
  | Or of t * t
  | Implies of t * t
  | Next of t
  | Until of t * t
  | Release of t * t
  | Eventually of t
  | Always of t

(** {1 Convenience constructors} *)

val prop : string -> t
val neg : t -> t
val ( &&& ) : t -> t -> t
val ( ||| ) : t -> t -> t
val ( ==> ) : t -> t -> t
val x : t -> t
val f : t -> t
val g : t -> t
val u : t -> t -> t
val r : t -> t -> t

(** {1 Structure} *)

val equal : t -> t -> bool
val compare : t -> t -> int
val size : t -> int
(** Number of AST nodes. *)

val propositions : t -> string list
(** Sorted, deduplicated proposition names. *)

val subformulas : t -> t list
(** All distinct subformulas, including the formula itself. *)

(** {1 Core form}

    The translation and the semantics work on a reduced core: [True],
    [Prop], [Not], [And], [Next], [Until]. Everything else is defined
    notation ([F f = true U f], [G f = ¬F¬f], [f R g = ¬(¬f U ¬g)], …),
    exactly as in the paper's references. *)

type core = private
  | CTrue
  | CProp of string
  | CNot of core
  | CAnd of core * core
  | CNext of core
  | CUntil of core * core

val to_core : t -> core
val core_equal : core -> core -> bool
val core_compare : core -> core -> int
val core_subformulas : core -> core list
(** Distinct subformulas of the core form (the positive closure). *)

val pp_core : Format.formatter -> core -> unit

(** {1 Syntax} *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string

val parse : string -> (t, string) result
(** Concrete syntax: [true], [false], identifiers, [! f], [X f], [F f],
    [G f], [f & g], [f | g], [f -> g], [f U g], [f R g], parentheses.
    Precedence (loosest first): [->] (right), [|], [&], [U]/[R] (right),
    prefix operators. *)

val parse_exn : string -> t
(** @raise Invalid_argument on a syntax error. *)
