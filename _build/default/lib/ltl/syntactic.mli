(** Syntactic safety and co-safety fragments of LTL.

    A formula whose negation normal form contains no [U]/[F] ("until-free
    NNF": literals, [∧], [∨], [X], [R], [G]) denotes a {e safety} property;
    dually, an NNF without [R]/[G] denotes a {e co-safety} property (its
    negation is safety). These are the classical sound-but-incomplete
    syntactic approximations of the semantic classes decided in
    [Sl_buchi.Decompose] — Sistla's characterization, which the paper
    cites as [21]. The test suite checks soundness against the semantic
    classifier on a corpus and on random formulas, and exhibits the
    incompleteness witnesses (semantically safe formulas outside the
    fragment, e.g. [F false]). *)

type nnf = private
  | Lit of string * bool  (** proposition, positive? *)
  | NTrue
  | NFalse
  | NAnd of nnf * nnf
  | NOr of nnf * nnf
  | NNext of nnf
  | NUntil of nnf * nnf
  | NRelease of nnf * nnf

val nnf : Formula.t -> nnf
(** Negation normal form: negations pushed to literals, [F]/[G]/[->]
    expanded, double negations cancelled. Linear in the formula. *)

val of_nnf : nnf -> Formula.t
(** Back to formula syntax (the tests check semantic equivalence of the
    round trip on lassos). *)

val is_syntactically_safe : Formula.t -> bool
(** The NNF contains no [U]. Sound: implies the semantic safety of the
    property (including the degenerate "both" case Σ^ω). *)

val is_syntactically_cosafe : Formula.t -> bool
(** The NNF contains no [R]. The negation of a syntactically co-safe
    formula is syntactically safe. *)

val pp_nnf : Format.formatter -> nnf -> unit
