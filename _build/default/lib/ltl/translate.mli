(** LTL to Büchi translation.

    The classical declarative tableau construction: states of the
    generalized Büchi automaton are {e elementary} (maximal, locally
    consistent) subsets of the formula's closure; transitions enforce the
    [X]-step and the [Until] expansion law
    [a U b  ≡  b ∨ (a ∧ X (a U b))]; one acceptance set per [Until]
    forbids postponing [b] forever. The generalized automaton is then
    degeneralized with a counter track.

    Correctness is established in the test suite by checking agreement
    with the fixpoint evaluator {!Semantics.eval} on every canonical lasso
    up to a size bound, for a corpus of formulas including all of Rem's
    examples. *)

val translate :
  alphabet:int -> valuation:Semantics.valuation -> Formula.t -> Sl_buchi.Buchi.t
(** [translate ~alphabet ~valuation f] builds a Büchi automaton over
    symbols [0 .. alphabet-1] accepting exactly the words satisfying [f]
    (atomic propositions read through [valuation]). *)

val gnba_stats :
  alphabet:int -> valuation:Semantics.valuation -> Formula.t ->
  int * int * int
(** [(elementary_states, acceptance_sets, final_states)] — the sizes of
    the intermediate generalized automaton and the degeneralized result;
    used by the benches to report translation growth. *)
