type t =
  | True
  | False
  | Prop of string
  | Not of t
  | And of t * t
  | Or of t * t
  | Implies of t * t
  | Next of t
  | Until of t * t
  | Release of t * t
  | Eventually of t
  | Always of t

let prop p = Prop p
let neg f = Not f
let ( &&& ) a b = And (a, b)
let ( ||| ) a b = Or (a, b)
let ( ==> ) a b = Implies (a, b)
let x f = Next f
let f f' = Eventually f'
let g f' = Always f'
let u a b = Until (a, b)
let r a b = Release (a, b)

let equal = ( = )
let compare = Stdlib.compare

let rec size = function
  | True | False | Prop _ -> 1
  | Not f | Next f | Eventually f | Always f -> 1 + size f
  | And (a, b) | Or (a, b) | Implies (a, b) | Until (a, b) | Release (a, b)
    -> 1 + size a + size b

let propositions f =
  let rec go acc = function
    | True | False -> acc
    | Prop p -> p :: acc
    | Not f | Next f | Eventually f | Always f -> go acc f
    | And (a, b) | Or (a, b) | Implies (a, b) | Until (a, b)
    | Release (a, b) -> go (go acc a) b
  in
  List.sort_uniq String.compare (go [] f)

let subformulas f =
  let rec go acc f =
    let acc = if List.mem f acc then acc else f :: acc in
    match f with
    | True | False | Prop _ -> acc
    | Not g | Next g | Eventually g | Always g -> go acc g
    | And (a, b) | Or (a, b) | Implies (a, b) | Until (a, b)
    | Release (a, b) -> go (go acc a) b
  in
  List.rev (go [] f)

type core =
  | CTrue
  | CProp of string
  | CNot of core
  | CAnd of core * core
  | CNext of core
  | CUntil of core * core

(* Smart negation collapses double negations so that the closure stays
   small and "¬ψ ∈ B" can be represented as "ψ ∉ B". *)
let cnot = function CNot f -> f | f -> CNot f
let cand a b = CAnd (a, b)
let cor a b = cnot (CAnd (cnot a, cnot b))

let rec to_core = function
  | True -> CTrue
  | False -> CNot CTrue
  | Prop p -> CProp p
  | Not f -> cnot (to_core f)
  | And (a, b) -> cand (to_core a) (to_core b)
  | Or (a, b) -> cor (to_core a) (to_core b)
  | Implies (a, b) -> cor (cnot (to_core a)) (to_core b)
  | Next f -> CNext (to_core f)
  | Until (a, b) -> CUntil (to_core a, to_core b)
  | Release (a, b) -> cnot (CUntil (cnot (to_core a), cnot (to_core b)))
  | Eventually f -> CUntil (CTrue, to_core f)
  | Always f -> cnot (CUntil (CTrue, cnot (to_core f)))

let core_equal = ( = )
let core_compare = Stdlib.compare

let core_subformulas f =
  let rec go acc f =
    let acc = if List.mem f acc then acc else f :: acc in
    match f with
    | CTrue | CProp _ -> acc
    | CNot g | CNext g -> go acc g
    | CAnd (a, b) | CUntil (a, b) -> go (go acc a) b
  in
  List.rev (go [] f)

let rec pp_core fmt = function
  | CTrue -> Format.pp_print_string fmt "true"
  | CProp p -> Format.pp_print_string fmt p
  | CNot f -> Format.fprintf fmt "!%a" pp_core_atom f
  | CAnd (a, b) ->
      Format.fprintf fmt "(%a & %a)" pp_core a pp_core b
  | CNext f -> Format.fprintf fmt "X %a" pp_core_atom f
  | CUntil (a, b) -> Format.fprintf fmt "(%a U %a)" pp_core a pp_core b

and pp_core_atom fmt f =
  match f with
  | CTrue | CProp _ -> pp_core fmt f
  | _ -> Format.fprintf fmt "(%a)" pp_core f

let rec pp fmt = function
  | True -> Format.pp_print_string fmt "true"
  | False -> Format.pp_print_string fmt "false"
  | Prop p -> Format.pp_print_string fmt p
  | Not f -> Format.fprintf fmt "!%a" pp_atom f
  | And (a, b) -> Format.fprintf fmt "%a & %a" pp_atom a pp_atom b
  | Or (a, b) -> Format.fprintf fmt "%a | %a" pp_atom a pp_atom b
  | Implies (a, b) -> Format.fprintf fmt "%a -> %a" pp_atom a pp_atom b
  | Next f -> Format.fprintf fmt "X %a" pp_atom f
  | Until (a, b) -> Format.fprintf fmt "%a U %a" pp_atom a pp_atom b
  | Release (a, b) -> Format.fprintf fmt "%a R %a" pp_atom a pp_atom b
  | Eventually f -> Format.fprintf fmt "F %a" pp_atom f
  | Always f -> Format.fprintf fmt "G %a" pp_atom f

and pp_atom fmt f =
  match f with
  | True | False | Prop _ -> pp fmt f
  | Not _ | Next _ | Eventually _ | Always _ -> pp fmt f
  | _ -> Format.fprintf fmt "(%a)" pp f

let to_string f = Format.asprintf "%a" pp f

(* --- Parser: hand-written recursive descent. --- *)

type token =
  | TTrue | TFalse | TIdent of string
  | TNot | TAnd | TOr | TImplies
  | TNext | TEventually | TAlways | TUntil | TRelease
  | TLparen | TRparen | TEnd

exception Syntax of string

let tokenize input =
  let n = String.length input in
  let is_ident_char c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
    || (c >= '0' && c <= '9') || c = '_'
  in
  let rec go i acc =
    if i >= n then List.rev (TEnd :: acc)
    else
      match input.[i] with
      | ' ' | '\t' | '\n' | '\r' -> go (i + 1) acc
      | '(' -> go (i + 1) (TLparen :: acc)
      | ')' -> go (i + 1) (TRparen :: acc)
      | '!' -> go (i + 1) (TNot :: acc)
      | '&' -> go (i + 1) (TAnd :: acc)
      | '|' -> go (i + 1) (TOr :: acc)
      | '-' ->
          if i + 1 < n && input.[i + 1] = '>' then go (i + 2) (TImplies :: acc)
          else raise (Syntax (Printf.sprintf "stray '-' at %d" i))
      | c when is_ident_char c ->
          let j = ref i in
          while !j < n && is_ident_char input.[!j] do
            incr j
          done;
          let word = String.sub input i (!j - i) in
          let tok =
            match word with
            | "true" -> TTrue
            | "false" -> TFalse
            | "X" -> TNext
            | "F" -> TEventually
            | "G" -> TAlways
            | "U" -> TUntil
            | "R" -> TRelease
            | _ -> TIdent word
          in
          go !j (tok :: acc)
      | c -> raise (Syntax (Printf.sprintf "unexpected '%c' at %d" c i))
  in
  go 0 []

(* Grammar, loosest binding first:
     implies := or ('->' implies)?
     or      := and ('|' and)*
     and     := until ('&' until)*
     until   := unary (('U' | 'R') until)?
     unary   := ('!' | 'X' | 'F' | 'G') unary | atom
     atom    := 'true' | 'false' | ident | '(' implies ')'         *)
let parse input =
  try
    let tokens = ref (tokenize input) in
    let peek () = match !tokens with [] -> TEnd | t :: _ -> t in
    let advance () =
      match !tokens with [] -> () | _ :: rest -> tokens := rest
    in
    let expect t what =
      if peek () = t then advance ()
      else raise (Syntax ("expected " ^ what))
    in
    let rec implies () =
      let lhs = or_ () in
      if peek () = TImplies then begin
        advance ();
        Implies (lhs, implies ())
      end
      else lhs
    and or_ () =
      let lhs = ref (and_ ()) in
      while peek () = TOr do
        advance ();
        lhs := Or (!lhs, and_ ())
      done;
      !lhs
    and and_ () =
      let lhs = ref (until ()) in
      while peek () = TAnd do
        advance ();
        lhs := And (!lhs, until ())
      done;
      !lhs
    and until () =
      let lhs = unary () in
      match peek () with
      | TUntil ->
          advance ();
          Until (lhs, until ())
      | TRelease ->
          advance ();
          Release (lhs, until ())
      | _ -> lhs
    and unary () =
      match peek () with
      | TNot -> advance (); Not (unary ())
      | TNext -> advance (); Next (unary ())
      | TEventually -> advance (); Eventually (unary ())
      | TAlways -> advance (); Always (unary ())
      | _ -> atom ()
    and atom () =
      match peek () with
      | TTrue -> advance (); True
      | TFalse -> advance (); False
      | TIdent p -> advance (); Prop p
      | TLparen ->
          advance ();
          let f = implies () in
          expect TRparen "')'";
          f
      | _ -> raise (Syntax "expected a formula")
    in
    let f = implies () in
    expect TEnd "end of input";
    Ok f
  with Syntax msg -> Error msg

let parse_exn input =
  match parse input with
  | Ok f -> f
  | Error msg -> invalid_arg ("Formula.parse_exn: " ^ msg)
