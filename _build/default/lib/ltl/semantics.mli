(** Reference semantics of LTL on ultimately periodic words.

    The evaluator computes truth by fixpoint iteration over the finitely
    many distinct positions of a lasso ([Until] as a least, [Release]/[G]
    as a greatest fixpoint), making it an {e independent} oracle against
    which the automata-theoretic translation ({!Translate}) is tested. *)

type valuation = int -> string -> bool
(** [valuation symbol prop] tells whether atomic proposition [prop] holds
    when the letter [symbol] is read. *)

val subset_valuation : string list -> valuation
(** The valuation of the alphabet [2^AP] built by
    {!Sl_word.Alphabet.of_subsets}: proposition [j] of the list is bit
    [1 lsl j] of the symbol. *)

val letter_valuation : Sl_word.Alphabet.t -> valuation
(** Propositions are the letter names themselves: [p] holds iff the
    current symbol is labeled [p] (the natural reading for Rem's binary
    alphabet, where ["a"] holds exactly on the letter [a]). *)

val eval : valuation -> Formula.t -> Sl_word.Lasso.t -> bool
(** [eval v f w] iff [w, 0 ⊨ f]. *)

val eval_at : valuation -> Formula.t -> Sl_word.Lasso.t -> int -> bool
(** Truth at an arbitrary position (positions beyond the spoke wrap into
    the cycle). *)
