(** Rem's example properties (Section 2.3 of the paper) as LTL formulas,
    plus the machinery that regenerates the paper's classification table
    from first principles: parse → translate → compute the Büchi closure →
    classify.

    All formulas are over the single proposition ["a"], read over the
    binary alphabet of {!Sl_buchi.Patterns.sigma} (letter 0 is [a], letter
    1 is "anything else"). *)

val valuation : Semantics.valuation
(** ["a"] holds exactly on letter 0. *)

val p0 : Formula.t (** [false] *)

val p1 : Formula.t (** [a] *)

val p2 : Formula.t (** [!a] *)

val p3 : Formula.t (** [a & F !a] *)

val p4 : Formula.t (** [F G !a] *)

val p5 : Formula.t (** [G F a] *)

val p6 : Formula.t (** [true] *)

val all : (string * Formula.t) list

val automaton : Formula.t -> Sl_buchi.Buchi.t
(** Translation over the binary alphabet with {!valuation}. *)

val classify : Formula.t -> Sl_buchi.Decompose.classification
(** Safety/liveness classification of an arbitrary formula over ["a"],
    decided through the automaton (closure + complementation), exactly the
    paper's Section 2.4 route. *)

type row = {
  name : string;
  formula : Formula.t;
  classification : Sl_buchi.Decompose.classification;
  closure_of : string option;
      (** Name of the property the closure coincides with, when it is one
          of the table's entries (e.g. the closure of p3 is p1). *)
}

val table : unit -> row list
(** The full Section 2.3 table, recomputed (not hard-coded). *)

val pp_table : Format.formatter -> row list -> unit
