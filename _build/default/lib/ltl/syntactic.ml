type nnf =
  | Lit of string * bool
  | NTrue
  | NFalse
  | NAnd of nnf * nnf
  | NOr of nnf * nnf
  | NNext of nnf
  | NUntil of nnf * nnf
  | NRelease of nnf * nnf

(* Two mutually recursive passes: positive and negated translation. *)
let rec pos (f : Formula.t) =
  match f with
  | True -> NTrue
  | False -> NFalse
  | Prop p -> Lit (p, true)
  | Not g -> neg g
  | And (a, b) -> NAnd (pos a, pos b)
  | Or (a, b) -> NOr (pos a, pos b)
  | Implies (a, b) -> NOr (neg a, pos b)
  | Next g -> NNext (pos g)
  | Until (a, b) -> NUntil (pos a, pos b)
  | Release (a, b) -> NRelease (pos a, pos b)
  | Eventually g -> NUntil (NTrue, pos g)
  | Always g -> NRelease (NFalse, pos g)

and neg (f : Formula.t) =
  match f with
  | True -> NFalse
  | False -> NTrue
  | Prop p -> Lit (p, false)
  | Not g -> pos g
  | And (a, b) -> NOr (neg a, neg b)
  | Or (a, b) -> NAnd (neg a, neg b)
  | Implies (a, b) -> NAnd (pos a, neg b)
  | Next g -> NNext (neg g)
  | Until (a, b) -> NRelease (neg a, neg b)
  | Release (a, b) -> NUntil (neg a, neg b)
  | Eventually g -> NRelease (NFalse, neg g)
  | Always g -> NUntil (NTrue, neg g)

let nnf = pos

let rec of_nnf = function
  | Lit (p, true) -> Formula.Prop p
  | Lit (p, false) -> Formula.Not (Formula.Prop p)
  | NTrue -> Formula.True
  | NFalse -> Formula.False
  | NAnd (a, b) -> Formula.And (of_nnf a, of_nnf b)
  | NOr (a, b) -> Formula.Or (of_nnf a, of_nnf b)
  | NNext a -> Formula.Next (of_nnf a)
  | NUntil (a, b) -> Formula.Until (of_nnf a, of_nnf b)
  | NRelease (a, b) -> Formula.Release (of_nnf a, of_nnf b)

let rec until_free = function
  | Lit _ | NTrue | NFalse -> true
  | NNext a -> until_free a
  | NAnd (a, b) | NOr (a, b) | NRelease (a, b) ->
      until_free a && until_free b
  | NUntil _ -> false

let rec release_free = function
  | Lit _ | NTrue | NFalse -> true
  | NNext a -> release_free a
  | NAnd (a, b) | NOr (a, b) | NUntil (a, b) ->
      release_free a && release_free b
  | NRelease _ -> false

let is_syntactically_safe f = until_free (nnf f)
let is_syntactically_cosafe f = release_free (nnf f)

let rec pp_nnf fmt = function
  | Lit (p, true) -> Format.pp_print_string fmt p
  | Lit (p, false) -> Format.fprintf fmt "!%s" p
  | NTrue -> Format.pp_print_string fmt "true"
  | NFalse -> Format.pp_print_string fmt "false"
  | NAnd (a, b) -> Format.fprintf fmt "(%a & %a)" pp_nnf a pp_nnf b
  | NOr (a, b) -> Format.fprintf fmt "(%a | %a)" pp_nnf a pp_nnf b
  | NNext a -> Format.fprintf fmt "X %a" pp_nnf a
  | NUntil (a, b) -> Format.fprintf fmt "(%a U %a)" pp_nnf a pp_nnf b
  | NRelease (a, b) -> Format.fprintf fmt "(%a R %a)" pp_nnf a pp_nnf b
