lib/ltl/modelcheck.mli: Formula Semantics Sl_buchi Sl_kripke Sl_word
