lib/ltl/syntactic.ml: Format Formula
