lib/ltl/examples.mli: Format Formula Semantics Sl_buchi
