lib/ltl/translate.ml: Array Formula Fun Hashtbl List Sl_buchi
