lib/ltl/examples.ml: Format Formula List Sl_buchi String Translate
