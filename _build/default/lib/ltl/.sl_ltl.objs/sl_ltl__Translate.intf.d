lib/ltl/translate.mli: Formula Semantics Sl_buchi
