lib/ltl/semantics.mli: Formula Sl_word
