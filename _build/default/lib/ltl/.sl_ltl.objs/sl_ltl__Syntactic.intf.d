lib/ltl/syntactic.mli: Format Formula
