lib/ltl/semantics.ml: Array Formula Hashtbl Sl_word String
