lib/ltl/modelcheck.ml: Array Formula Sl_buchi Sl_kripke Sl_word Translate
