lib/ltl/formula.ml: Format List Printf Stdlib String
