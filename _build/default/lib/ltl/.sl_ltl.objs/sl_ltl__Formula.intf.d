lib/ltl/formula.mli: Format
