module Lasso = Sl_word.Lasso

type valuation = int -> string -> bool

let subset_valuation props =
  let index p =
    let rec find i = function
      | [] -> None
      | q :: rest -> if String.equal p q then Some i else find (i + 1) rest
    in
    find 0 props
  in
  fun symbol p ->
    match index p with
    | Some i -> symbol land (1 lsl i) <> 0
    | None -> false

let letter_valuation alphabet symbol p =
  Sl_word.Alphabet.mem alphabet symbol
  && String.equal (Sl_word.Alphabet.label alphabet symbol) p

(* Truth tables per core subformula over the lasso's positions. Until is a
   least fixpoint (start false, grow), its negation-free dual handled via
   CNot. Iteration count is bounded by the number of positions. *)
let core_tables valuation core w =
  let total = Lasso.total_length w in
  let spoke = Lasso.spoke w in
  let next p = if p + 1 < total then p + 1 else spoke in
  let cache : (Formula.core, bool array) Hashtbl.t = Hashtbl.create 16 in
  let rec table (f : Formula.core) =
    match Hashtbl.find_opt cache f with
    | Some t -> t
    | None ->
        let t =
          match f with
          | CTrue -> Array.make total true
          | CProp p ->
              Array.init total (fun i -> valuation (Lasso.at w i) p)
          | CNot g -> Array.map not (table g)
          | CAnd (a, b) ->
              let ta = table a and tb = table b in
              Array.init total (fun i -> ta.(i) && tb.(i))
          | CNext g ->
              let tg = table g in
              Array.init total (fun i -> tg.(next i))
          | CUntil (a, b) ->
              let ta = table a and tb = table b in
              let v = Array.make total false in
              let changed = ref true in
              while !changed do
                changed := false;
                for i = total - 1 downto 0 do
                  let v' = tb.(i) || (ta.(i) && v.(next i)) in
                  if v' && not v.(i) then begin
                    v.(i) <- true;
                    changed := true
                  end
                done
              done;
              v
        in
        Hashtbl.add cache f t;
        t
  in
  table core

let eval_at valuation f w pos =
  let total = Lasso.total_length w in
  let spoke = Lasso.spoke w in
  let pos = if pos < total then pos
    else spoke + ((pos - spoke) mod Lasso.period w) in
  (core_tables valuation (Formula.to_core f) w).(pos)

let eval valuation f w = eval_at valuation f w 0
