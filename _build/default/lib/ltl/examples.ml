module Buchi = Sl_buchi.Buchi
module Decompose = Sl_buchi.Decompose

let valuation symbol p = String.equal p "a" && symbol = 0

let p0 = Formula.False
let p1 = Formula.parse_exn "a"
let p2 = Formula.parse_exn "!a"
let p3 = Formula.parse_exn "a & F !a"
let p4 = Formula.parse_exn "F G !a"
let p5 = Formula.parse_exn "G F a"
let p6 = Formula.True

let all =
  [ ("p0", p0); ("p1", p1); ("p2", p2); ("p3", p3); ("p4", p4);
    ("p5", p5); ("p6", p6) ]

let automaton f = Translate.translate ~alphabet:2 ~valuation f

let classify f =
  Decompose.classify_via_negation (automaton f)
    ~negation:(automaton (Formula.Not f))

type row = {
  name : string;
  formula : Formula.t;
  classification : Sl_buchi.Decompose.classification;
  closure_of : string option;
}

let table () =
  let automata = List.map (fun (name, f) -> (name, f, automaton f)) all in
  List.map
    (fun (name, f, b) ->
      let closure = Sl_buchi.Closure.bcl b in
      (* Sampled language comparison; the exact equalities behind this
         column (lcl p3 = p1, lcl p4 = lcl p5 = Sigma^omega) are verified
         with full complementation in the test suite. *)
      let closure_of =
        List.find_map
          (fun (name', _, b') ->
            if
              Sl_buchi.Lang.sampled_equal ~max_prefix:3 ~max_cycle:3 closure
                b'
            then Some name'
            else None)
          automata
      in
      { name; formula = f;
        classification =
          Decompose.classify_via_negation b
            ~negation:(automaton (Formula.Not f));
        closure_of })
    automata

let pp_table fmt rows =
  Format.fprintf fmt "@[<v>%-4s  %-12s  %-18s  %s@,"
    "id" "LTL" "classification" "closure";
  Format.fprintf fmt "%s@," (String.make 56 '-');
  List.iter
    (fun r ->
      Format.fprintf fmt "%-4s  %-12s  %-18s  %s@," r.name
        (Formula.to_string r.formula)
        (Decompose.classification_to_string r.classification)
        (match r.closure_of with
        | Some n -> "lcl = " ^ n
        | None -> "lcl not in table"))
    rows;
  Format.fprintf fmt "@]"
