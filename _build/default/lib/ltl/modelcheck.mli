module Kripke = Sl_kripke.Kripke
module Lasso = Sl_word.Lasso

(** Automata-theoretic LTL model checking, with the safety/liveness split
    the paper motivates.

    [K ⊨ φ] iff [L(K) ⊆ L(φ)] iff [L(K) ∩ L(¬φ) = ∅] — translate the
    negation, product with the structure, search for an accepting lasso.
    Counterexamples come out as lasso-shaped runs.

    {!check_split} performs the same verification through the
    decomposition: the safety part of [¬φ]'s complement is checked by
    plain reachability on finite prefixes ("induction on the transition
    relation"), the liveness part by accepting-cycle search ("construction
    of well-founded/fair arguments") — the methodological distinction the
    paper's introduction draws. *)

val to_buchi : Kripke.t -> valuation:Semantics.valuation -> alphabet:int -> Sl_buchi.Buchi.t
(** The language of a structure: all infinite runs, read through the
    symbols compatible with each state's labeling. A symbol [s] can be
    emitted at state [q] iff [valuation s p = holds k q p] for every
    atomic proposition [p] of the structure. All states accepting. *)

type verdict = Holds | Fails of Lasso.t
(** A failing verdict carries a lasso word of the structure violating the
    property. *)

val check :
  Kripke.t -> alphabet:int -> valuation:Semantics.valuation -> Formula.t ->
  verdict
(** [check k ~alphabet ~valuation φ] — the standard product construction
    with the automaton of [¬φ]. *)

type split_verdict = {
  safety_verdict : verdict;  (** against the safety part of [φ] *)
  liveness_verdict : verdict;  (** against the liveness part of [φ] *)
}

val check_split :
  Kripke.t -> alphabet:int -> valuation:Semantics.valuation -> Formula.t ->
  split_verdict
(** Verify the two parts of [φ]'s decomposition separately. [φ] holds iff
    both verdicts are [Holds] (Theorem 1 / Theorem 3); a safety
    counterexample always embeds a finite bad prefix, a liveness one
    never does. *)
