(** The paper's lattice-theoretic characterization of safety and liveness,
    stated generically (Section 3).

    Everything here is parameterized by an abstract lattice signature so the
    same code runs over

    - the finite lattices of [Sl_lattice] (exhaustively checkable),
    - the Boolean algebra of ω-regular languages backed by Büchi automata
      ([Sl_buchi.Language_lattice]),
    - the Boolean algebra of ω-regular tree languages backed by Rabin
      automata.

    The modularity/Boolean hypotheses are the {e caller's} obligation (the
    signatures cannot express them); the [Laws] functor provides sampled
    checks, and [Sl_lattice] provides exhaustive ones for finite lattices. *)

(** Algebraic view of a lattice (the paper sticks to the algebraic view):
    a carrier with meet and join satisfying the lattice laws, plus 0 and 1.
    [leq] must agree with [meet]: [leq a b <=> equal (meet a b) a]. *)
module type LATTICE = sig
  type t

  val equal : t -> t -> bool
  val leq : t -> t -> bool
  val meet : t -> t -> t
  val join : t -> t -> t
  val bot : t
  val top : t
  val pp : Format.formatter -> t -> unit
end

(** A lattice in which complements can be computed. [complement a] returns
    {e some} [b] with [a ^ b = 0] and [a v b = 1], or [None] when [a] has no
    complement. (In a distributive lattice the complement is unique; the
    paper's Theorem 3 only needs one complement of [cl2 a].) *)
module type COMPLEMENTED = sig
  include LATTICE

  val complement : t -> t option
end

(** A safety/liveness decomposition of an element [a]: [a = safety ^
    liveness] where [safety] is [cl1]-closed and [liveness] is [cl2]-dense
    (Theorem 3 orientation: safety from [cl1], liveness from [cl2]). *)
type 'a decomposition = { element : 'a; safety : 'a; liveness : 'a }

module Make (L : COMPLEMENTED) : sig
  type closure = L.t -> L.t
  (** Closure operators are passed as plain functions; validity (extensive,
      idempotent, monotone) is the caller's obligation, checkable with
      {!closure_violation} on a sample. *)

  (** {1 Safety and liveness elements} *)

  val is_safety : closure -> L.t -> bool
  (** [a = cl a] — a {e cl-safety element} (closed). *)

  val is_liveness : closure -> L.t -> bool
  (** [cl a = 1] — a {e cl-liveness element} (dense). *)

  (** {1 The decomposition (Theorems 2 and 3)} *)

  val decompose : ?cl1:closure -> cl2:closure -> L.t -> L.t decomposition option
  (** [decompose ~cl1 ~cl2 a] is the paper's construction:
      [safety = cl1 a] and [liveness = a v b] for [b] a complement of
      [cl2 a]. With [cl1] omitted, [cl1 = cl2] (Theorem 2). Returns [None]
      when [cl2 a] has no complement — exactly the hypothesis the paper
      needs complementedness for. The meet identity
      [a = safety ^ liveness] is guaranteed by Theorem 3 {e provided} the
      lattice is modular and [cl1 x <= cl2 x] pointwise; {!verify} checks
      it. *)

  val verify : cl1:closure -> cl2:closure -> L.t decomposition -> (string * L.t) list
  (** Check the three claims of Theorem 3 on a decomposition: the meet
      recovers the element, the safety part is [cl1]-closed, the liveness
      part is [cl2]-dense. Returns the failing claims (empty = verified). *)

  (** {1 Lemmas of Section 3} *)

  val lemma3_holds : closure -> L.t -> L.t -> bool
  (** [cl (a ^ b) <= cl a ^ cl b]. *)

  val lemma4_holds : cl:closure -> a:L.t -> b:L.t -> bool
  (** If [b] is a complement of [cl a] then [a v b] is a cl-liveness
      element. (Checks the conclusion; the caller supplies a genuine
      complement.) *)

  val lemma5_holds : L.t -> L.t -> L.t -> bool
  (** [c] a complement of [b] and [a <= b] imply [a ^ c = 0]. *)

  (** {1 Extremal theorems (Theorems 6 and 7)} *)

  val theorem6_bound : cl1:closure -> a:L.t -> s:L.t -> bool
  (** Hypotheses: [s = cl1 s] or [s = cl2 s] with [cl1 <= cl2] pointwise,
      and [a = s ^ z] for some [z]. Conclusion checked here: [cl1 a <= s] —
      [cl1 a] is the {e strongest} safety element usable in any
      decomposition of [a]. *)

  val theorem7_bound : a:L.t -> b:L.t -> z:L.t -> bool
  (** Hypotheses (distributive lattice): [a = s ^ z] with [s] a safety
      element and [b] a complement of [cl1 a]. Conclusion checked:
      [z <= a v b] — [a v b] is the {e weakest} liveness element usable. *)

  val is_machine_closed : cl:closure -> spec:L.t -> safety:L.t -> bool
  (** The Abadi–Lamport connection the paper draws after Theorem 6: a pair
      (safety, spec) is machine closed when [safety = cl spec] — the safety
      part specifies no more safety than the spec itself. *)

  (** {1 Theorem 5 (impossibility)} *)

  val theorem5_hypotheses : cl1:closure -> cl2:closure -> L.t -> bool
  (** [cl2 a = 1] and [cl1 a < 1]: under these, no decomposition of [a]
      into a [cl2]-safety and [cl1]-liveness element exists. The exhaustive
      refutation for finite lattices lives in {!Finite_check}. *)

  val theorem5_refutes : cl1:closure -> cl2:closure -> a:L.t -> s:L.t -> l:L.t -> bool
  (** [true] iff the candidate pair [(s, l)] fails to be a counterexample
      to Theorem 5 — i.e. it is {e not} simultaneously [cl2]-safe, [cl1]-live
      and meeting back to [a]. A proof-by-exhaustion driver calls this on
      every pair. *)

  (** {1 Diagnostics} *)

  val closure_violation : closure -> sample:L.t list -> (string * L.t list) option
  (** Sampled check that a function is a lattice closure (extensive,
      idempotent, monotone on all pairs drawn from [sample]). *)

  val gumm_join_preservation_violation : closure -> sample:L.t list -> (L.t * L.t) option
  (** Gumm's framework additionally requires [cl (a v b) = cl a v cl b].
      The paper's point (contribution 3) is that this is {e not} needed;
      this probe finds sample pairs where it fails, demonstrating
      closures covered by the paper but not by Gumm/topology. *)
end
