module type LATTICE = sig
  type t

  val equal : t -> t -> bool
  val leq : t -> t -> bool
  val meet : t -> t -> t
  val join : t -> t -> t
  val bot : t
  val top : t
  val pp : Format.formatter -> t -> unit
end

module type COMPLEMENTED = sig
  include LATTICE

  val complement : t -> t option
end

type 'a decomposition = { element : 'a; safety : 'a; liveness : 'a }

module Make (L : COMPLEMENTED) = struct
  type closure = L.t -> L.t

  let is_safety cl a = L.equal a (cl a)
  let is_liveness cl a = L.equal (cl a) L.top

  let decompose ?cl1 ~cl2 a =
    let cl1 = Option.value cl1 ~default:cl2 in
    match L.complement (cl2 a) with
    | None -> None
    | Some b ->
        Some { element = a; safety = cl1 a; liveness = L.join a b }

  let verify ~cl1 ~cl2 d =
    let failures = ref [] in
    let record claim witness = failures := (claim, witness) :: !failures in
    if not (L.equal (L.meet d.safety d.liveness) d.element) then
      record "meet does not recover element" (L.meet d.safety d.liveness);
    if not (is_safety cl1 d.safety) then
      record "safety part not cl1-closed" (cl1 d.safety);
    if not (is_liveness cl2 d.liveness) then
      record "liveness part not cl2-dense" (cl2 d.liveness);
    List.rev !failures

  let lemma3_holds cl a b = L.leq (cl (L.meet a b)) (L.meet (cl a) (cl b))

  let lemma4_holds ~cl ~a ~b = is_liveness cl (L.join a b)

  let lemma5_holds a b c =
    (* a <= b and c in cmp b imply a ^ c = 0. *)
    (not (L.leq a b && L.equal (L.meet b c) L.bot && L.equal (L.join b c) L.top))
    || L.equal (L.meet a c) L.bot

  let theorem6_bound ~cl1 ~a ~s = L.leq (cl1 a) s

  let theorem7_bound ~a ~b ~z = L.leq z (L.join a b)

  let is_machine_closed ~cl ~spec ~safety = L.equal safety (cl spec)

  let theorem5_hypotheses ~cl1 ~cl2 a =
    L.equal (cl2 a) L.top && not (L.equal (cl1 a) L.top)

  let theorem5_refutes ~cl1 ~cl2 ~a ~s ~l =
    not
      (is_safety cl2 s && is_liveness cl1 l && L.equal (L.meet s l) a)

  let closure_violation cl ~sample =
    let bad = ref None in
    let record law ws = if !bad = None then bad := Some (law, ws) in
    List.iter
      (fun x ->
        if not (L.leq x (cl x)) then record "extensive" [ x ];
        if not (L.equal (cl (cl x)) (cl x)) then record "idempotent" [ x ];
        List.iter
          (fun y ->
            if L.leq x y && not (L.leq (cl x) (cl y)) then
              record "monotone" [ x; y ])
          sample)
      sample;
    !bad

  let gumm_join_preservation_violation cl ~sample =
    let bad = ref None in
    List.iter
      (fun a ->
        List.iter
          (fun b ->
            if
              !bad = None
              && not (L.equal (cl (L.join a b)) (L.join (cl a) (cl b)))
            then bad := Some (a, b))
          sample)
      sample;
    !bad
end
