lib/core/finite_check.ml: Format Int List Printf Sl_lattice String Theory
