lib/core/finite_check.mli: Sl_lattice Theory
