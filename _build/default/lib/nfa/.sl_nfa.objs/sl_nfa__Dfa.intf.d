lib/nfa/dfa.mli: Format
