lib/nfa/nfa.ml: Array Dfa Format Fun Hashtbl List String
