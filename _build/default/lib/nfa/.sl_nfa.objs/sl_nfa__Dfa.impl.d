lib/nfa/dfa.ml: Array Format Hashtbl List Option Queue
