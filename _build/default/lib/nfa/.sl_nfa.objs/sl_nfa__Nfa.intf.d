lib/nfa/nfa.mli: Dfa Format
