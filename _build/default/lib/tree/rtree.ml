type t = {
  k : int;
  nstates : int;
  root : int;
  label : int array;
  children : int array array;
}

let make ~k ~nstates ~root ~label ~children =
  if k < 1 then invalid_arg "Rtree.make: branching degree must be >= 1";
  if nstates < 1 then invalid_arg "Rtree.make: need a state";
  if root < 0 || root >= nstates then invalid_arg "Rtree.make: bad root";
  if Array.length label <> nstates || Array.length children <> nstates then
    invalid_arg "Rtree.make: shape mismatch";
  Array.iter
    (fun row ->
      if Array.length row <> k then invalid_arg "Rtree.make: arity mismatch";
      Array.iter
        (fun q ->
          if q < 0 || q >= nstates then
            invalid_arg "Rtree.make: child out of range")
        row)
    children;
  { k; nstates; root; label; children }

let constant ~k s =
  make ~k ~nstates:1 ~root:0 ~label:[| s |]
    ~children:[| Array.make k 0 |]

let node_state t node =
  let rec go state = function
    | [] -> Some state
    | i :: rest ->
        if i < 0 || i >= t.k then None
        else go t.children.(state).(i) rest
  in
  go t.root node

let label_at t node = Option.map (fun q -> t.label.(q)) (node_state t node)

let unfold t ~depth =
  let assoc = ref [] in
  let rec go state node d =
    assoc := (List.rev node, t.label.(state)) :: !assoc;
    if d < depth then
      Array.iteri (fun i q -> go q (i :: node) (d + 1)) t.children.(state)
  in
  go t.root [] 0;
  Ftree.make !assoc

let to_kripke t ~prop_of_label =
  let props =
    Array.to_list t.label
    |> List.map prop_of_label
    |> List.sort_uniq String.compare
    |> Array.of_list
  in
  let labels =
    Array.init t.nstates (fun q ->
        Array.map
          (fun p -> String.equal p (prop_of_label t.label.(q)))
          props)
  in
  Sl_kripke.Kripke.make ~nstates:t.nstates ~initial:t.root
    ~successors:(Array.map Array.to_list t.children)
    ~ap:props ~labels

let enumerate ~alphabet ~k ~max_states =
  if max_states > 3 || k > 3 || alphabet > 3 then
    invalid_arg "Rtree.enumerate: bounds too large";
  let trees = ref [] in
  for nstates = 1 to max_states do
    (* Every state: a label (alphabet choices) and k children (nstates
       choices each). Enumerate by mixed-radix counting. *)
    let per_state = alphabet * int_of_float
        (float_of_int nstates ** float_of_int k) in
    let total = int_of_float
        (float_of_int per_state ** float_of_int nstates) in
    for code = 0 to total - 1 do
      let label = Array.make nstates 0 in
      let children = Array.make_matrix nstates k 0 in
      let c = ref code in
      for q = 0 to nstates - 1 do
        let mine = !c mod per_state in
        c := !c / per_state;
        label.(q) <- mine mod alphabet;
        let rest = ref (mine / alphabet) in
        for i = 0 to k - 1 do
          children.(q).(i) <- !rest mod nstates;
          rest := !rest / nstates
        done
      done;
      trees := make ~k ~nstates ~root:0 ~label ~children :: !trees
    done
  done;
  List.rev !trees

let equal_presentation = ( = )

let pp fmt t =
  Format.fprintf fmt "@[<v>rtree(k=%d, %d states, root %d)@," t.k t.nstates
    t.root;
  for q = 0 to t.nstates - 1 do
    Format.fprintf fmt "  %d[%d]:" q t.label.(q);
    Array.iter (fun q' -> Format.fprintf fmt " %d" q') t.children.(q);
    Format.fprintf fmt "@,"
  done;
  Format.fprintf fmt "@]"
