(** Finite Σ-labeled trees, literally as in Section 4.1 of the paper.

    An (unlabeled) tree is a prefix-closed subset of ℕ*; a tree is a pair
    of an unlabeled tree and a labeling function. This module implements
    Definitions 1–4 verbatim: raw concatenation [w ⋄ x] (Def 1), leaves
    (Def 2), proper concatenation [wx] (Def 3) that only extends [w] at
    its leaves, and the prefix order (Def 4, [x ≤ y iff ∃z. xz = y]).

    Nodes are sequences of child indices; the root is []. Finite trees are
    exactly the paper's finite-depth, non-total trees (plus the empty
    tree). *)

type node = int list

type t
(** A finite labeled tree; structurally canonical (two equal trees are
    structurally equal). *)

val empty : t
(** The empty tree (∅ is prefix-closed). *)

val make : (node * int) list -> t
(** Build from a node→label association list.
    @raise Invalid_argument if the node set is not prefix-closed, a node
    is repeated with conflicting labels, or an index is negative. *)

val of_children : int -> t list -> t
(** [of_children label kids] is the tree with a [label]-led root whose
    [i]-th subtree is [kids.(i)] (empty subtrees make the slot absent). *)

val singleton : int -> t

val nodes : t -> node list
(** Sorted (length-lexicographic). *)

val mem : t -> node -> bool
val label : t -> node -> int option
val size : t -> int
val depth : t -> int
(** Length of the longest node (0 for a root-only or empty tree). *)

val is_leaf : t -> node -> bool
(** Definition 2: [z] is in the tree and has no strict extension in it. *)

val leaves : t -> node list

val is_k_branching_prefix : t -> int -> bool
(** Every non-leaf node has exactly children [0 .. k-1] — the finite
    shadow of Section 4.4's k-branching trees. *)

val raw_concat : t -> t -> t
(** Definition 1, [w ⋄ x]: union of node sets, [w]'s labels winning on the
    overlap. (The paper immediately points out this is {e not} the right
    notion: it can extend [w] at non-leaf nodes.) *)

val concat : t -> t -> t
(** Definition 3, [wx]: like [w ⋄ x] but keeping only the [x]-nodes lying
    inside [w] or extending one of [w]'s leaves. *)

val prefix : t -> t -> bool
(** Definition 4: [prefix x y] iff there exists [z] with [xz = y]. For
    finite trees this is equivalent to: [x]'s nodes are [y]-nodes with the
    same labels, and every [y]-node outside [x] strictly extends a leaf of
    [x] (the witness [z] can be taken to be [y] itself); the equivalence is
    exercised by the test suite against a brute-force search for [z]. *)

val subtree : t -> node -> t option
(** The subtree rooted at a node (its nodes re-rooted at []). *)

val enumerate : alphabet:int -> max_arity:int -> max_depth:int -> t list
(** All nonempty trees with node labels in [0..alphabet-1], child indices
    in [0..max_arity-1] and depth at most [max_depth]. Exponential: meant
    for tiny bounds. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
