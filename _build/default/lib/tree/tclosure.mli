(** Sampled semantics of the paper's two branching-time closures
    (Definitions 5 and 6).

    A branching-time property is handled through two oracles: membership
    of (regular presentations of) total trees, and {e extendability} — does
    some member of the property extend a given non-total prefix? With
    these,

    - [y ∈ fcl p] iff every finite-depth prefix of [y] is extendable;
      every finite-depth prefix lies below some full truncation, and
      extendability is antitone along ≤, so it suffices to check the
      truncations ({!fcl_mem});
    - [y ∈ ncl p] iff every non-total prefix is extendable; we check the
      truncations and the single-cut partial prefixes ({!ncl_mem}), which
      are exactly the shapes of the paper's Section 4.3 counterexamples.

    Both checks are exact "up to depth": a [false] answer is definitive
    (a non-extendable prefix was found); a [true] answer is sampled
    evidence, pinned down in the tests by the paper's stated equalities. *)

type property = {
  name : string;
  mem : Ptree.t -> bool;  (** defined on total presentations *)
  extends : Ptree.t -> bool;  (** defined on arbitrary (partial) ones *)
}

val union : property -> property -> property
(** The union of two properties. Extendability into a union is the
    disjunction of extendabilities, so the oracles compose exactly. This
    is what exhibits the paper's Section 4.2 observation: [fcl]
    distributes over unions (it defines a topology) while [ncl] does not
    — the witness lives in the test suite. *)

val fcl_mem : property -> max_depth:int -> Ptree.t -> bool
val ncl_mem : property -> max_depth:int -> Ptree.t -> bool

type classification = {
  existentially_safe : bool;  (** [p = ncl p] on the sample *)
  universally_safe : bool;  (** [p = fcl p] on the sample *)
  existentially_live : bool;  (** [ncl p = A_tot] on the sample *)
  universally_live : bool;  (** [fcl p = A_tot] on the sample *)
}

val classify :
  property -> sample:Ptree.t list -> max_depth:int -> classification
(** Since [ncl p ⊆ fcl p ⊆ p ⊆ …] pointwise, the four flags are computed
    from the two closure membership tests over the sample. *)

val pp_classification : Format.formatter -> classification -> unit
