(** Partial regular trees: finitely-presented {e non-total} prefixes.

    The paper's [ncl] closure quantifies over non-total prefixes — trees
    where some node lacks successors. A partial regular tree is a pointed
    graph like {!Rtree.t} except that child slots may be {e holes}
    (absent); a tree with a reachable hole is non-total. This is exactly
    the shape of the paper's Section 4.3 counterexample prefixes ("a tree
    with at least two paths such that along one of the paths [a] always
    holds" — cut the siblings of the all-[a] path and you get a partial
    regular tree that no member of the property extends). *)

type t = {
  k : int;
  nstates : int;
  root : int;
  label : int array;
  children : int option array array;  (** [None] is a hole *)
}

val make :
  k:int -> nstates:int -> root:int -> label:int array ->
  children:int option array array -> t

val of_rtree : Rtree.t -> t
(** A total tree viewed as a (degenerate, hole-free) partial tree. *)

val reachable : t -> bool array

val has_hole : t -> bool
(** Some reachable state is a leaf (no present children): the presented
    tree is non-total. Note that a state with {e some} absent slots next
    to present ones is not a hole — in the arbitrary-branching reading it
    simply has fewer children, and extensions cannot add children
    there. *)

val restricted_reachable : t -> keep:(int -> bool) -> bool array
(** States reachable from the root through states satisfying [keep]
    (all-false if the root fails [keep]). *)

val has_cycle_within : t -> keep:(int -> bool) -> bool
(** Is there an infinite path from the root staying inside [keep]-states?
    (Equivalently a lasso: reachable-within cycle.) *)

val has_reachable_cycle_through : t -> pred:(int -> bool) -> bool
(** Is there an infinite path from the root on which [pred]-states recur?
    (A reachable cycle containing a [pred]-state.) *)

val has_reachable_cycle_inside : t -> pred:(int -> bool) -> bool
(** Is there an infinite path from the root that is eventually confined to
    [pred]-states? (A reachable cycle lying entirely inside [pred];
    the prefix leading to it is unconstrained.) *)

val is_total : t -> bool
(** Every reachable state has at least one present child: the presented
    tree is total in the paper's sense (arbitrary branching up to [k]).
    Strictly k-ary trees ({!Rtree.t}) are the special case with no holes
    at all. *)

val to_kripke : t -> prop_of_label:(int -> string) -> Sl_kripke.Kripke.t
(** Read a {e total} presentation as a Kripke structure (present children
    are the successors). @raise Invalid_argument if not total. *)

val truncation : t -> depth:int -> t
(** The cut at a depth: every node of depth [< depth] keeps its children,
    the frontier consists of holes — the canonical finite-depth prefix. *)

val cut_variants : t -> depth:int -> t list
(** Non-total prefixes obtained by unfolding the top [depth] levels
    explicitly and turning one explicit node into a leaf (removing its
    whole subtree) while keeping the regular continuation elsewhere.
    These are exactly the shapes of the paper's Section 4.3
    counterexamples ("a tree with at least two paths, one all-[a]": cut
    below a node on the other path and the all-[a] path survives into
    every extension). Cutting a single sibling would {e not} be a prefix
    in the sense of Definition 4. *)

val enumerate_total : alphabet:int -> k:int -> max_states:int -> t list
(** All total partial-tree presentations (child slots present or absent,
    at least one present per state, all states reachable not enforced)
    with at most [max_states] states — the arbitrary-branching analogue of
    {!Rtree.enumerate}; includes unary presentations (sequences), which is
    what distinguishes the paper's Section 4.3 [ncl] facts from their
    k-ary restrictions. *)

val unfold : t -> depth:int -> Ftree.t
(** Finite prefix of the presented (possibly non-total) tree. *)

val pp : Format.formatter -> t -> unit
