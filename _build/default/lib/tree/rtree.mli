(** Regular infinite trees: finitely-presented total k-branching trees.

    A regular tree is the unwinding of a pointed labeled graph in which
    every state has exactly [k] ordered successors; it is total by
    construction. These are the computable sample points of the paper's
    space [A_{k,tot}] (Section 4.4), playing the role lasso words play in
    the linear-time framework. *)

type t = {
  k : int;  (** branching degree *)
  nstates : int;
  root : int;
  label : int array;
  children : int array array;  (** [children.(q).(i)], each in range *)
}

val make :
  k:int -> nstates:int -> root:int -> label:int array ->
  children:int array array -> t

val constant : k:int -> int -> t
(** The all-[s] tree. *)

val unfold : t -> depth:int -> Ftree.t
(** The finite k-branching prefix containing every node up to the given
    depth (a tree in the paper's [A_{k,f}] family once its frontier is
    leaves). *)

val node_state : t -> Ftree.node -> int option
(** The graph state reached by following a path of child indices (None if
    an index is [>= k]). *)

val label_at : t -> Ftree.node -> int option

val to_kripke : t -> prop_of_label:(int -> string) -> Sl_kripke.Kripke.t
(** Read the presentation as a Kripke structure whose states carry the
    proposition [prop_of_label label]; CTL model checking on it decides
    CTL membership of the unwinding (CTL is insensitive to unwinding). *)

val enumerate : alphabet:int -> k:int -> max_states:int -> t list
(** All regular trees with at most [max_states] graph states (exponential;
    intended for [max_states <= 2] with small alphabets). Includes every
    constant tree. *)

val equal_presentation : t -> t -> bool
(** Structural equality of presentations (a sound but incomplete proxy for
    equality of denoted trees; the tests compare unfoldings instead). *)

val pp : Format.formatter -> t -> unit
