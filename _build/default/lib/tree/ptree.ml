type t = {
  k : int;
  nstates : int;
  root : int;
  label : int array;
  children : int option array array;
}

let make ~k ~nstates ~root ~label ~children =
  if k < 1 then invalid_arg "Ptree.make: branching degree must be >= 1";
  if nstates < 1 then invalid_arg "Ptree.make: need a state";
  if root < 0 || root >= nstates then invalid_arg "Ptree.make: bad root";
  if Array.length label <> nstates || Array.length children <> nstates then
    invalid_arg "Ptree.make: shape mismatch";
  Array.iter
    (fun row ->
      if Array.length row <> k then invalid_arg "Ptree.make: arity mismatch";
      Array.iter
        (function
          | Some q when q < 0 || q >= nstates ->
              invalid_arg "Ptree.make: child out of range"
          | _ -> ())
        row)
    children;
  { k; nstates; root; label; children }

let of_rtree (r : Rtree.t) =
  make ~k:r.k ~nstates:r.nstates ~root:r.root ~label:(Array.copy r.label)
    ~children:(Array.map (Array.map Option.some) r.children)

let successors t q =
  Array.to_list t.children.(q) |> List.filter_map Fun.id

let reachable t =
  let seen = Array.make t.nstates false in
  let rec visit q =
    if not seen.(q) then begin
      seen.(q) <- true;
      List.iter visit (successors t q)
    end
  in
  visit t.root;
  seen

let has_hole t =
  (* A reachable leaf: a state with no present children. In the paper's
     arbitrary-branching reading, an absent slot next to a present one is
     not a deficiency (the node simply has fewer children); only a
     childless node marks the tree as non-total / extendable-there. *)
  let reach = reachable t in
  let found = ref false in
  Array.iteri
    (fun q r ->
      if r && not (Array.exists Option.is_some t.children.(q)) then
        found := true)
    reach;
  !found

let restricted_reachable t ~keep =
  let seen = Array.make t.nstates false in
  let rec visit q =
    if keep q && not seen.(q) then begin
      seen.(q) <- true;
      List.iter visit (successors t q)
    end
  in
  visit t.root;
  seen

let has_cycle_within t ~keep =
  let inside = restricted_reachable t ~keep in
  (* A cycle within the restricted reachable subgraph: some state in it
     reaches itself in >= 1 step without leaving. *)
  let reaches_self src =
    let seen = Array.make t.nstates false in
    let found = ref false in
    let rec visit q =
      if inside.(q) && not seen.(q) then begin
        seen.(q) <- true;
        if q = src then found := true;
        List.iter visit (successors t q)
      end
      else if inside.(q) && q = src then found := true
    in
    List.iter (fun q -> if inside.(q) then visit q) (successors t src);
    !found
  in
  let result = ref false in
  Array.iteri (fun q r -> if r && reaches_self q then result := true) inside;
  !result

let has_reachable_cycle_through t ~pred =
  let reach = reachable t in
  (* A pred-state on a reachable cycle. *)
  let on_cycle src =
    let seen = Array.make t.nstates false in
    let found = ref false in
    let rec visit q =
      if not seen.(q) then begin
        seen.(q) <- true;
        if q = src then found := true;
        List.iter visit (successors t q)
      end
      else if q = src then found := true
    in
    List.iter visit (successors t src);
    !found
  in
  let result = ref false in
  Array.iteri
    (fun q r -> if r && pred q && on_cycle q then result := true)
    reach;
  !result

let has_reachable_cycle_inside t ~pred =
  let reach = reachable t in
  (* A pred-state, reachable from the root by any path, that returns to
     itself through pred-states only. *)
  let self_loop_inside src =
    let seen = Array.make t.nstates false in
    let found = ref false in
    let rec visit q =
      if pred q && not seen.(q) then begin
        seen.(q) <- true;
        if q = src then found := true;
        List.iter visit (successors t q)
      end
      else if pred q && q = src then found := true
    in
    List.iter visit (successors t src);
    !found
  in
  let result = ref false in
  Array.iteri
    (fun q r -> if r && pred q && self_loop_inside q then result := true)
    reach;
  !result

let is_total t =
  let reach = reachable t in
  let ok = ref true in
  Array.iteri
    (fun q r ->
      if r && not (Array.exists Option.is_some t.children.(q)) then
        ok := false)
    reach;
  !ok

let to_kripke t ~prop_of_label =
  if not (is_total t) then
    invalid_arg "Ptree.to_kripke: presentation is not total";
  let props =
    Array.to_list t.label
    |> List.map prop_of_label
    |> List.sort_uniq String.compare
    |> Array.of_list
  in
  let labels =
    Array.init t.nstates (fun q ->
        Array.map (fun p -> String.equal p (prop_of_label t.label.(q))) props)
  in
  (* Unreachable states may be childless; give them a self-loop so the
     Kripke constructor's totality check passes (they are inert). *)
  let successors =
    Array.init t.nstates (fun q ->
        match successors t q with [] -> [ q ] | succs -> succs)
  in
  Sl_kripke.Kripke.make ~nstates:t.nstates ~initial:t.root ~successors
    ~ap:props ~labels

(* Positions of the explicit top region: all nodes of depth < depth, in
   BFS order; frontier (depth = depth) becomes holes (truncation) or
   regular continuations (cut_variants). *)
let explicit_positions (t : t) ~depth =
  let positions = ref [] in
  let rec go state node d =
    positions := (List.rev node, state, d) :: !positions;
    if d < depth - 1 then
      Array.iteri
        (fun i q ->
          match q with Some q -> go q (i :: node) (d + 1) | None -> ())
        t.children.(state)
  in
  if depth >= 1 then go t.root [] 0;
  List.rev !positions

let truncation (t : t) ~depth =
  if depth < 1 then
    make ~k:t.k ~nstates:1 ~root:0 ~label:[| t.label.(t.root) |]
      ~children:[| Array.make t.k None |]
  else begin
    let pos = explicit_positions t ~depth:(depth + 1) in
    let index = Hashtbl.create 64 in
    List.iteri (fun i (node, _, _) -> Hashtbl.replace index node i) pos;
    let n = List.length pos in
    let label = Array.make n 0 in
    let children = Array.init n (fun _ -> Array.make t.k None) in
    List.iteri
      (fun i (node, state, d) ->
        label.(i) <- t.label.(state);
        if d < depth then
          Array.iteri
            (fun j q ->
              match q with
              | Some _ ->
                  children.(i).(j) <- Hashtbl.find_opt index (node @ [ j ])
              | None -> ())
            t.children.(state))
      pos;
    make ~k:t.k ~nstates:n ~root:0 ~label ~children
  end

let cut_variants (t : t) ~depth =
  let pos = explicit_positions t ~depth in
  let n = List.length pos in
  if n = 0 then []
  else begin
    let index = Hashtbl.create 64 in
    List.iteri (fun i (node, _, _) -> Hashtbl.replace index node i) pos;
    (* Base presentation: explicit states 0..n-1, then the original states
       shifted by n. Children of explicit nodes at the last explicit level
       point into the original part. *)
    let total = n + t.nstates in
    let label = Array.make total 0 in
    let children = Array.init total (fun _ -> Array.make t.k None) in
    List.iteri
      (fun i (node, state, d) ->
        label.(i) <- t.label.(state);
        Array.iteri
          (fun j q ->
            match q with
            | Some q ->
                children.(i).(j) <-
                  (if d < depth - 1 then Hashtbl.find_opt index (node @ [ j ])
                   else Some (n + q))
            | None -> ())
          t.children.(state))
      pos;
    Array.iteri
      (fun q lbl ->
        label.(n + q) <- lbl;
        Array.iteri
          (fun j q' ->
            children.(n + q).(j) <- Option.map (fun q' -> n + q') q')
          t.children.(q);
        ignore lbl)
      t.label;
    Array.iteri (fun q lbl -> label.(n + q) <- lbl) t.label;
    (* One variant per explicit position: all its children are removed,
       making it a leaf. Cutting a single sibling is NOT a tree prefix in
       the sense of Definition 4 (concatenation can only re-extend at
       leaves), so whole-node cuts are the only shapes needed. *)
    List.map
      (fun (node, _, _) ->
        let i = Hashtbl.find index node in
        let children' = Array.map Array.copy children in
        children'.(i) <- Array.make t.k None;
        make ~k:t.k ~nstates:total ~root:0 ~label:(Array.copy label)
          ~children:children')
      pos
  end

let enumerate_total ~alphabet ~k ~max_states =
  if max_states > 3 || k > 3 || alphabet > 3 then
    invalid_arg "Ptree.enumerate_total: bounds too large";
  let trees = ref [] in
  for nstates = 1 to max_states do
    (* Child slot: absent or one of nstates targets. *)
    let slot_choices = nstates + 1 in
    let per_state =
      alphabet * int_of_float (float_of_int slot_choices ** float_of_int k)
    in
    let total =
      int_of_float (float_of_int per_state ** float_of_int nstates)
    in
    for code = 0 to total - 1 do
      let label = Array.make nstates 0 in
      let children = Array.init nstates (fun _ -> Array.make k None) in
      let c = ref code in
      let ok = ref true in
      for q = 0 to nstates - 1 do
        let mine = !c mod per_state in
        c := !c / per_state;
        label.(q) <- mine mod alphabet;
        let rest = ref (mine / alphabet) in
        for i = 0 to k - 1 do
          let choice = !rest mod slot_choices in
          rest := !rest / slot_choices;
          children.(q).(i) <- (if choice = 0 then None else Some (choice - 1))
        done;
        if not (Array.exists Option.is_some children.(q)) then ok := false
      done;
      if !ok then
        trees := make ~k ~nstates ~root:0 ~label ~children :: !trees
    done
  done;
  List.rev !trees

let unfold t ~depth =
  let assoc = ref [] in
  let rec go state node d =
    assoc := (List.rev node, t.label.(state)) :: !assoc;
    if d < depth then
      Array.iteri
        (fun i q -> match q with
          | Some q -> go q (i :: node) (d + 1)
          | None -> ())
        t.children.(state)
  in
  go t.root [] 0;
  Ftree.make !assoc

let pp fmt t =
  Format.fprintf fmt "@[<v>ptree(k=%d, %d states, root %d)@," t.k t.nstates
    t.root;
  for q = 0 to t.nstates - 1 do
    Format.fprintf fmt "  %d[%d]:" q t.label.(q);
    Array.iter
      (function
        | Some q' -> Format.fprintf fmt " %d" q'
        | None -> Format.fprintf fmt " _")
      t.children.(q);
    Format.fprintf fmt "@,"
  done;
  Format.fprintf fmt "@]"
