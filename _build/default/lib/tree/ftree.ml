type node = int list

module Node_map = Map.Make (struct
  type t = node

  let compare = Stdlib.compare
end)

type t = int Node_map.t
(* Invariant: the key set is prefix-closed. *)

let empty = Node_map.empty

let is_strict_prefix a b =
  let rec go a b =
    match (a, b) with
    | [], [] -> false
    | [], _ -> true
    | _, [] -> false
    | x :: a', y :: b' -> x = y && go a' b'
  in
  go a b

let parent = function
  | [] -> None
  | node -> Some (List.filteri (fun i _ -> i < List.length node - 1) node)

let make assoc =
  let tree =
    List.fold_left
      (fun acc (node, lbl) ->
        if List.exists (fun i -> i < 0) node then
          invalid_arg "Ftree.make: negative child index";
        (match Node_map.find_opt node acc with
        | Some l when l <> lbl ->
            invalid_arg "Ftree.make: conflicting labels"
        | _ -> ());
        Node_map.add node lbl acc)
      Node_map.empty assoc
  in
  Node_map.iter
    (fun node _ ->
      match parent node with
      | None -> ()
      | Some p ->
          if not (Node_map.mem p tree) then
            invalid_arg "Ftree.make: node set not prefix-closed")
    tree;
  tree

let singleton lbl = Node_map.singleton [] lbl

let of_children lbl kids =
  let shifted =
    List.concat
      (List.mapi
         (fun i kid ->
           Node_map.fold (fun node l acc -> ((i :: node), l) :: acc) kid [])
         kids)
  in
  make (([], lbl) :: shifted)

let nodes t =
  Node_map.bindings t |> List.map fst
  |> List.sort (fun a b ->
         compare (List.length a, a) (List.length b, b))

let mem t node = Node_map.mem node t
let label t node = Node_map.find_opt node t
let size t = Node_map.cardinal t

let depth t =
  Node_map.fold (fun node _ acc -> max acc (List.length node)) t 0

let is_leaf t node =
  Node_map.mem node t
  && not (Node_map.exists (fun other _ -> is_strict_prefix node other) t)

let leaves t = List.filter (is_leaf t) (nodes t)

let is_k_branching_prefix t k =
  List.for_all
    (fun node ->
      is_leaf t node
      || List.for_all (fun i -> Node_map.mem (node @ [ i ]) t)
           (List.init k Fun.id)
         && not (Node_map.mem (node @ [ k ]) t))
    (nodes t)

(* Definition 1: labels of w win on W; x contributes labels on X \ W. *)
let raw_concat w x =
  Node_map.union (fun _ lw _ -> Some lw) w x

(* Definition 3: keep x-nodes that lie in W or extend a leaf of w. *)
let concat w x =
  let lvs = leaves w in
  let x' =
    Node_map.filter
      (fun node _ ->
        Node_map.mem node w
        || List.exists (fun leaf -> is_strict_prefix leaf node) lvs)
      x
  in
  raw_concat w x'

let prefix x y =
  (* Definition 3 with w = ∅ gives ∅z = ∅ (no leaves to extend), so the
     empty tree is a prefix only of itself. *)
  if Node_map.is_empty x then Node_map.is_empty y
  else
    Node_map.for_all
      (fun node lbl ->
        match Node_map.find_opt node y with
        | Some l -> l = lbl
        | None -> false)
      x
    && Node_map.for_all
         (fun node _ ->
           Node_map.mem node x
           || List.exists (fun leaf -> is_strict_prefix leaf node) (leaves x))
         y

let subtree t node =
  if not (Node_map.mem node t) then None
  else begin
    let n = List.length node in
    let re_rooted =
      Node_map.fold
        (fun other lbl acc ->
          if other = node || is_strict_prefix node other then
            (List.filteri (fun i _ -> i >= n) other, lbl) :: acc
          else acc)
        t []
    in
    Some (make re_rooted)
  end

let enumerate ~alphabet ~max_arity ~max_depth =
  let rec trees d =
    if d = 0 then List.init alphabet singleton
    else begin
      let shallower = trees (d - 1) in
      (* Children tuples: each of the max_arity slots empty or a tree. *)
      let rec slots i =
        if i = 0 then [ [] ]
        else
          let rest = slots (i - 1) in
          List.concat_map
            (fun tail ->
              (empty :: shallower) |> List.map (fun t -> t :: tail))
            rest
      in
      List.concat_map
        (fun lbl -> List.map (of_children lbl) (slots max_arity))
        (List.init alphabet Fun.id)
    end
  in
  List.sort_uniq Stdlib.compare (trees max_depth)

let equal = Node_map.equal Int.equal
let compare = Node_map.compare Int.compare

let pp fmt t =
  Format.fprintf fmt "@[<hov 2>tree{";
  List.iter
    (fun node ->
      Format.fprintf fmt "@ %s:%d"
        ("[" ^ String.concat "." (List.map string_of_int node) ^ "]")
        (Node_map.find node t))
    (nodes t);
  Format.fprintf fmt "@ }@]"
