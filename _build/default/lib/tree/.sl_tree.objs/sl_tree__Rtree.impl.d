lib/tree/rtree.ml: Array Format Ftree List Option Sl_kripke String
