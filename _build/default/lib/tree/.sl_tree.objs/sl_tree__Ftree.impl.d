lib/tree/ftree.ml: Format Fun Int List Map Stdlib String
