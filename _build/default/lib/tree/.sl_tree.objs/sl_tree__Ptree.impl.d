lib/tree/ptree.ml: Array Format Ftree Fun Hashtbl List Option Rtree Sl_kripke String
