lib/tree/rtree.mli: Format Ftree Sl_kripke
