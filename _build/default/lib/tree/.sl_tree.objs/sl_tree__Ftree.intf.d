lib/tree/ftree.mli: Format
