lib/tree/ptree.mli: Format Ftree Rtree Sl_kripke
