lib/tree/tclosure.ml: Format Fun List Ptree String
