lib/tree/tclosure.mli: Format Ptree
