type property = {
  name : string;
  mem : Ptree.t -> bool;
  extends : Ptree.t -> bool;
}

let union p q =
  {
    name = p.name ^ "|" ^ q.name;
    mem = (fun y -> p.mem y || q.mem y);
    extends = (fun x -> p.extends x || q.extends x);
  }

let fcl_mem p ~max_depth y =
  List.for_all
    (fun d -> p.extends (Ptree.truncation y ~depth:d))
    (List.init (max_depth + 1) Fun.id)

let ncl_mem p ~max_depth y =
  fcl_mem p ~max_depth y
  && List.for_all
       (fun d -> List.for_all p.extends (Ptree.cut_variants y ~depth:d))
       (List.init max_depth (fun d -> d + 1))

type classification = {
  existentially_safe : bool;
  universally_safe : bool;
  existentially_live : bool;
  universally_live : bool;
}

let classify p ~sample ~max_depth =
  let closed_under in_cl =
    List.for_all (fun y -> (not (in_cl y)) || p.mem y) sample
  in
  let dense in_cl = List.for_all in_cl sample in
  let in_fcl = fcl_mem p ~max_depth and in_ncl = ncl_mem p ~max_depth in
  {
    existentially_safe = closed_under in_ncl;
    universally_safe = closed_under in_fcl;
    existentially_live = dense in_ncl;
    universally_live = dense in_fcl;
  }

let pp_classification fmt c =
  let flag name b = if b then [ name ] else [] in
  let tags =
    flag "ES" c.existentially_safe @ flag "US" c.universally_safe
    @ flag "EL" c.existentially_live @ flag "UL" c.universally_live
  in
  Format.pp_print_string fmt
    (match tags with [] -> "neither" | _ -> String.concat "+" tags)
