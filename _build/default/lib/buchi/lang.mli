module Lasso = Sl_word.Lasso

(** Language-level queries on Büchi automata.

    Two independent decision strategies are provided and cross-checked by
    the test suite:

    - {e exact}: complementation + product + emptiness. Complete but
      exponential (rank-based complementation).
    - {e sampled}: agreement on all canonical lassos up to a size bound.
      Sound for refutation; complete in the limit (two ω-regular languages
      are equal iff they agree on all lassos). *)

val subset : ?max_states:int -> Buchi.t -> Buchi.t -> bool
(** [subset a b] decides [L(a) ⊆ L(b)] exactly, via
    [L(a) ∩ ¬L(b) = ∅]. Uses {!Complement.complement_closed} when [b] is
    closure-shaped (or empty), falling back to {!Complement.rank_based}.
    @raise Complement.Too_large if the fallback exceeds its budget. *)

val equal : ?max_states:int -> Buchi.t -> Buchi.t -> bool
(** Exact language equality (two subset tests). *)

val is_universal : ?max_states:int -> Buchi.t -> bool
(** [L(B) = Σ^ω]. *)

val separating_lasso :
  max_prefix:int -> max_cycle:int -> Buchi.t -> Buchi.t -> Lasso.t option
(** First canonical lasso (within the bound) on which the two automata
    disagree, if any — the sampled refutation oracle. *)

val sampled_equal : max_prefix:int -> max_cycle:int -> Buchi.t -> Buchi.t -> bool
val sampled_subset : max_prefix:int -> max_cycle:int -> Buchi.t -> Buchi.t -> bool

val accepted_sample : max_prefix:int -> max_cycle:int -> Buchi.t -> Lasso.t list
(** All canonical lassos within the bound that the automaton accepts —
    used by examples and EXPERIMENTS.md tables. *)
