(** The paper's closure operator on Büchi automata (Section 2.4).

    "The operator first removes states that cannot reach an accepting state
    and then makes every remaining state an accepting state. In this way,
    the fairness condition is made trivial. It can then be shown that
    applying this operator to [B] results in an automaton whose language is
    the [lcl] of the language of [B]."

    Precisely, the pruning removes states [q] with [L(B(q)) = ∅] (those
    that cannot reach an accepting state {e lying on a cycle}); on the
    pruned automaton every finite run extends to an accepting one, so
    trivializing acceptance yields exactly the limit closure
    [lcl L(B) = { t | every finite prefix of t is a prefix of some word of
    L(B) }]. *)

val bcl : Buchi.t -> Buchi.t
(** The closure automaton: reachable live states only, all accepting.
    [L (bcl B) = lcl (L B)]. Idempotent up to language equality;
    [bcl] of an empty-language automaton has the empty language. *)

val is_closure_shaped : Buchi.t -> bool
(** Structural test: every state is accepting, reachable, and live — the
    invariant [bcl] establishes and that {!Complement.complement_closed}
    requires. *)

val naive_prune : Buchi.t -> Buchi.t
(** The {e ablation} variant that reads the paper's phrasing literally:
    removes states that cannot reach {e any} accepting state (ignoring
    whether the accepting state lies on a cycle), then accepts everywhere.
    On automata with accepting dead-ends this yields a strictly larger
    language than [lcl L(B)]; the test suite exhibits the difference,
    pinning [bcl] as the correct reading. *)
