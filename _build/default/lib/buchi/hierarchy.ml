let is_terminal (b : Buchi.t) =
  let reach = Buchi.reachable b in
  let ok = ref true in
  for q = 0 to b.nstates - 1 do
    if reach.(q) && b.accepting.(q) then
      Array.iter
        (fun succs ->
          (* Complete within acceptance: a run that has reached the
             accepting region can neither die nor leave it, so reaching
             it IS a good prefix. *)
          if succs = [] then ok := false;
          List.iter
            (fun q' -> if not b.accepting.(q') then ok := false)
            succs)
        b.delta.(q)
  done;
  !ok

let is_weak (b : Buchi.t) =
  let reach = Buchi.reachable b in
  let comp, comps = Buchi.sccs b in
  ignore comp;
  List.for_all
    (fun members ->
      let reachable_members = List.filter (fun q -> reach.(q)) members in
      match reachable_members with
      | [] -> true
      | q0 :: rest ->
          List.for_all (fun q -> b.accepting.(q) = b.accepting.(q0)) rest)
    comps

let is_safety_shaped = Closure.is_closure_shaped

let classify_structural b =
  if is_safety_shaped b then "safety-shaped"
  else if is_terminal b then "terminal"
  else if is_weak b then "weak"
  else "general"
