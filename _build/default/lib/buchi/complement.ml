exception Too_large of string

let complement_closed (b : Buchi.t) =
  if Buchi.is_empty b then Buchi.universal ~alphabet:b.alphabet
  else if not (Closure.is_closure_shaped b) then
    invalid_arg "Complement.complement_closed: automaton is not closure-shaped"
  else begin
    (* The prefix language P of a closure automaton is prefix-closed and
       its complement is extension-closed, so in the subset DFA the empty
       set is the unique rejecting sink: a word is outside the closed
       ω-language iff its run eventually falls into that sink. *)
    let dfa = Sl_nfa.Nfa.determinize (Buchi.to_prefix_nfa b) in
    let delta = Array.map (fun row -> Array.map (fun q -> [ q ]) row)
        dfa.Sl_nfa.Dfa.delta in
    let accepting = Array.map not dfa.Sl_nfa.Dfa.accepting in
    if not (Array.exists Fun.id accepting) then
      Buchi.empty_language ~alphabet:b.alphabet
    else
      Buchi.make ~alphabet:b.alphabet ~nstates:dfa.Sl_nfa.Dfa.nstates
        ~start:dfa.Sl_nfa.Dfa.start ~delta ~accepting
  end

(* Kupferman–Vardi rank-based complementation. Complement states are pairs
   (g, O): g a level ranking (rank per tracked state of B, -1 for absent;
   accepting states even) and O the subset of even-ranked states currently
   "owing" a rank decrease. Acceptance: O = empty. *)
module Ranking = struct
  type t = { g : int array; o : int list }

  let compare = Stdlib.compare
end

let rank_based ?(max_states = 200_000) (b : Buchi.t) =
  let n = b.nstates in
  let reach = Buchi.reachable b in
  let reachable_non_accepting = ref 0 in
  Array.iteri
    (fun q r -> if r && not b.accepting.(q) then incr reachable_non_accepting)
    reach;
  let max_rank = max 2 (2 * !reachable_non_accepting) in
  let module S = Map.Make (Ranking) in
  let interned = ref S.empty in
  let states = ref [] in
  let count = ref 0 in
  let intern st =
    match S.find_opt st !interned with
    | Some i -> i
    | None ->
        let i = !count in
        if i >= max_states then
          raise
            (Too_large
               (Printf.sprintf "rank-based complement exceeds %d states"
                  max_states));
        incr count;
        interned := S.add st i !interned;
        states := st :: !states;
        i
  in
  let initial =
    let g = Array.make n (-1) in
    g.(b.start) <- max_rank;
    { Ranking.g; o = [] }
  in
  let successors (st : Ranking.t) s =
    let dom = ref [] in
    Array.iteri (fun q r -> if r >= 0 then dom := q :: !dom) st.g;
    let dom = !dom in
    (* Upper bound on each successor's rank: min over predecessors. *)
    let bound = Array.make n max_int in
    List.iter
      (fun q ->
        List.iter
          (fun q' -> bound.(q') <- min bound.(q') st.g.(q))
          b.delta.(q).(s))
      dom;
    let succ_states =
      List.filter (fun q' -> bound.(q') < max_int) (List.init n Fun.id)
    in
    (* Enumerate all legal rankings g' over succ_states. *)
    let rec assign acc = function
      | [] -> [ List.rev acc ]
      | q' :: rest ->
          let ranks =
            List.filter
              (fun r -> (not b.accepting.(q')) || r mod 2 = 0)
              (List.init (bound.(q') + 1) Fun.id)
          in
          List.concat_map (fun r -> assign ((q', r) :: acc) rest) ranks
    in
    let rankings = assign [] succ_states in
    List.map
      (fun assoc ->
        let g' = Array.make n (-1) in
        List.iter (fun (q', r) -> g'.(q') <- r) assoc;
        let even q' = g'.(q') >= 0 && g'.(q') mod 2 = 0 in
        let o' =
          if st.o = [] then List.filter even succ_states
          else begin
            let o_succ =
              List.concat_map (fun q -> b.delta.(q).(s)) st.o
              |> List.sort_uniq Stdlib.compare
            in
            List.filter even o_succ
          end
        in
        { Ranking.g = g'; o = o' })
      rankings
  in
  (* Breadth-first construction. *)
  let transitions = Hashtbl.create 256 in
  let queue = Queue.create () in
  let start = intern initial in
  Queue.push initial queue;
  while not (Queue.is_empty queue) do
    let st = Queue.pop queue in
    let i = S.find st !interned in
    if not (Hashtbl.mem transitions i) then begin
      let row =
        Array.init b.alphabet (fun s ->
            List.map
              (fun st' ->
                let fresh = not (S.mem st' !interned) in
                let j = intern st' in
                if fresh then Queue.push st' queue;
                j)
              (successors st s)
            |> List.sort_uniq Stdlib.compare)
      in
      Hashtbl.replace transitions i row
    end
  done;
  let nstates = !count in
  let all_states = Array.make nstates initial in
  List.iter
    (fun st -> all_states.(S.find st !interned) <- st)
    !states;
  let delta =
    Array.init nstates (fun i ->
        match Hashtbl.find_opt transitions i with
        | Some row -> row
        | None -> Array.make b.alphabet [])
  in
  let accepting = Array.init nstates (fun i -> all_states.(i).Ranking.o = []) in
  Buchi.make ~alphabet:b.alphabet ~nstates ~start ~delta ~accepting
