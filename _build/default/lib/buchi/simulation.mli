(** Direct-simulation reduction of Büchi automata.

    State [p] {e directly simulates} [q] when every move of [q] can be
    matched by [p] on the same symbol into simulating states, and [p] is
    accepting whenever [q] is. Quotienting by mutual direct simulation
    preserves the language (direct simulation is a congruence for Büchi
    acceptance); merging shrinks the automata produced by union and
    degeneralization — the liveness parts [B ∪ ¬bcl B] in particular.

    The relation is computed as a greatest fixpoint on state pairs. *)

val direct_simulation : Buchi.t -> bool array array
(** [r.(p).(q)] iff [p] direct-simulates [q]. Reflexive, transitive. *)

val quotient : Buchi.t -> Buchi.t
(** Quotient by mutual simulation ([p ~ q] iff each simulates the other),
    dropping unreachable classes. Language-preserving. *)

val reduce : Buchi.t -> Buchi.t
(** {!quotient} plus little-brother pruning: a transition into [q] is
    dropped when a transition from the same state on the same symbol
    reaches a strict simulator of [q]. Language-preserving and never
    larger than the input. *)
