module Lasso = Sl_word.Lasso

let negate ?max_states (b : Buchi.t) =
  if Buchi.is_empty b then Buchi.universal ~alphabet:b.alphabet
  else if Closure.is_closure_shaped b then Complement.complement_closed b
  else Complement.rank_based ?max_states b

let subset ?max_states a b =
  Buchi.is_empty (Ops.intersect a (negate ?max_states b))

let equal ?max_states a b = subset ?max_states a b && subset ?max_states b a

let is_universal ?max_states (b : Buchi.t) =
  subset ?max_states (Buchi.universal ~alphabet:b.alphabet) b

let separating_lasso ~max_prefix ~max_cycle (a : Buchi.t) (b : Buchi.t) =
  List.find_opt
    (fun w -> Buchi.accepts_lasso a w <> Buchi.accepts_lasso b w)
    (Lasso.enumerate ~alphabet:a.alphabet ~max_prefix ~max_cycle)

let sampled_equal ~max_prefix ~max_cycle a b =
  separating_lasso ~max_prefix ~max_cycle a b = None

let sampled_subset ~max_prefix ~max_cycle (a : Buchi.t) (b : Buchi.t) =
  List.for_all
    (fun w -> (not (Buchi.accepts_lasso a w)) || Buchi.accepts_lasso b w)
    (Lasso.enumerate ~alphabet:a.alphabet ~max_prefix ~max_cycle)

let accepted_sample ~max_prefix ~max_cycle (b : Buchi.t) =
  List.filter (Buchi.accepts_lasso b)
    (Lasso.enumerate ~alphabet:b.alphabet ~max_prefix ~max_cycle)
