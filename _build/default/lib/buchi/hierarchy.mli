(** Structural classes of Büchi automata and their relation to the
    safety/liveness landscape (the Manna–Pnueli hierarchy's automata
    side).

    - {e terminal} ("guarantee"): once an accepting state is reached the
      automaton can never leave acceptance — the language is determined by
      the existence of a good prefix (co-safety). The complement of a
      safety language is recognized by a terminal automaton
      ({!Sl_buchi.Complement.complement_closed} outputs one).
    - {e weak}: every SCC is homogeneous (all accepting or all rejecting);
      Büchi and co-Büchi semantics coincide on weak automata.
    - {e closure-shaped} safety automata ({!Closure.is_closure_shaped})
      are the all-accepting weak case.

    The predicates are structural (linear-time checks); the semantic
    consequences — terminal ⇒ complement is safety, safety ∧ co-safety ⇒
    weak-definable "obligation" behaviour — are exercised in the tests on
    the pattern corpus. *)

val is_terminal : Buchi.t -> bool
(** The reachable accepting region is a complete trap: from an accepting
    state, every symbol has at least one successor and all successors are
    accepting. Reaching it is then a good prefix, hence the co-safety
    reading. (Without completeness the implication fails: the FG¬a
    automaton has an accepting-closed but incomplete region, and FG¬a is
    no co-safety language — the tests pin this distinction.) *)

val is_weak : Buchi.t -> bool
(** Every SCC of the reachable part is acceptance-homogeneous. *)

val is_safety_shaped : Buchi.t -> bool
(** Alias of {!Closure.is_closure_shaped}: reachable, live, all
    accepting. *)

val classify_structural : Buchi.t -> string
(** A human-readable tag: ["safety-shaped"], ["terminal"], ["weak"] or
    ["general"] (the finest applicable). *)
