type t = {
  original : Buchi.t;
  safety : Buchi.t;
  liveness : Buchi.t;
}

let lcl = Closure.bcl

let decompose b =
  let safety = Closure.bcl b in
  let liveness = Ops.union b (Complement.complement_closed safety) in
  { original = b; safety; liveness }

let check_claims ~intersection_ok d =
  let failures = ref [] in
  let record claim diag = failures := (claim, diag) :: !failures in
  if not (Lang.equal d.safety (Closure.bcl d.safety)) then
    record "safety part not closed" "L(B_S) <> lcl L(B_S)";
  if not (Buchi.is_empty (Complement.complement_closed (Closure.bcl d.liveness)))
  then record "liveness part not dense" "lcl L(B_L) <> universal";
  (match intersection_ok () with
  | None -> ()
  | Some diag -> record "intersection does not recover L(B)" diag);
  List.rev !failures

let verify_exact ?max_states d =
  check_claims d ~intersection_ok:(fun () ->
      (* Exact equality L(B_S) ∩ L(B_L) = L(B) without ever complementing
         the (large) liveness automaton. Complement only the original:
         since decompose builds B_L = B ∪ ¬B_S with ¬B_S deterministic,
         ¬L(B_L) = ¬L(B) ∩ L(B_S), so

         - meet ⊆ B       reduces to  meet ∩ ¬B = ∅;
         - B ⊆ B_S        is a subset test against a closed language;
         - B ⊆ B_L        reduces to  B ∩ ¬B ∩ B_S = ∅ (trivial once ¬B is
           correct, but checked anyway to keep the claim honest). *)
      let not_original =
        if Buchi.is_empty d.original then
          Buchi.universal ~alphabet:d.original.alphabet
        else if Closure.is_closure_shaped d.original then
          Complement.complement_closed d.original
        else Complement.rank_based ?max_states d.original
      in
      let meet = Ops.intersect d.safety d.liveness in
      if not (Buchi.is_empty (Ops.intersect meet not_original)) then
        Some "L(B_S) /\\ L(B_L) not included in L(B)"
      else if not (Lang.subset d.original d.safety) then
        Some "L(B) not included in L(B_S)"
      else if
        not
          (Buchi.is_empty
             (Ops.intersect d.original (Ops.intersect not_original d.safety)))
      then Some "L(B) not included in L(B_L)"
      else None)

let verify_sampled ~max_prefix ~max_cycle d =
  check_claims d ~intersection_ok:(fun () ->
      let meet = Ops.intersect d.safety d.liveness in
      match Lang.separating_lasso ~max_prefix ~max_cycle meet d.original with
      | None -> None
      | Some w ->
          Some
            (Printf.sprintf "disagree on %s" (Sl_word.Lasso.to_string w)))

type classification = Safety | Liveness | Both | Neither

let classification_to_string = function
  | Safety -> "safety"
  | Liveness -> "liveness"
  | Both -> "both (Sigma^omega)"
  | Neither -> "neither"

let is_liveness b =
  Buchi.is_empty (Complement.complement_closed (Closure.bcl b))

let is_safety ?max_states b =
  (* L(B) ⊆ lcl L(B) always; safety iff the converse. *)
  Lang.subset ?max_states (Closure.bcl b) b

let classify ?max_states b =
  match (is_safety ?max_states b, is_liveness b) with
  | true, true -> Both
  | true, false -> Safety
  | false, true -> Liveness
  | false, false -> Neither

let classify_via_negation b ~negation =
  (* Sanity: a genuine complement is disjoint from the automaton. (The
     converse inclusion cannot be checked cheaply; the caller vouches.) *)
  if not (Buchi.is_empty (Ops.intersect b negation)) then
    invalid_arg "Decompose.classify_via_negation: negation overlaps language";
  let safety = Buchi.is_empty (Ops.intersect (Closure.bcl b) negation) in
  match (safety, is_liveness b) with
  | true, true -> Both
  | true, false -> Safety
  | false, true -> Liveness
  | false, false -> Neither

let language_lattice ~alphabet ?max_states () :
    (module Sl_core.Theory.COMPLEMENTED with type t = Buchi.t) =
  (module struct
    type nonrec t = Buchi.t

    let equal a b = Lang.equal ?max_states a b
    let leq a b = Lang.subset ?max_states a b
    let meet = Ops.intersect
    let join = Ops.union
    let bot = Buchi.empty_language ~alphabet
    let top = Buchi.universal ~alphabet

    let pp fmt b =
      Format.fprintf fmt "<buchi %s>" (Buchi.size_info b)

    let complement b =
      if Buchi.is_empty b then Some top
      else if Closure.is_closure_shaped b then
        Some (Complement.complement_closed b)
      else
        match Complement.rank_based ?max_states b with
        | c -> Some c
        | exception Complement.Too_large _ -> None
  end)
