module Alphabet = Sl_word.Alphabet

let sigma = Alphabet.binary

let a = 0
let b = 1

let p0 = Buchi.empty_language ~alphabet:2

let p1 =
  Buchi.of_edges ~alphabet:2 ~nstates:2 ~start:0
    ~edges:[ (0, a, 1); (1, a, 1); (1, b, 1) ]
    ~accepting:[ 1 ]

let p2 =
  Buchi.of_edges ~alphabet:2 ~nstates:2 ~start:0
    ~edges:[ (0, b, 1); (1, a, 1); (1, b, 1) ]
    ~accepting:[ 1 ]

let p3 =
  (* 0 --a--> 1 (waiting for a non-a), 1 --b--> 2 (satisfied, loop). *)
  Buchi.of_edges ~alphabet:2 ~nstates:3 ~start:0
    ~edges:[ (0, a, 1); (1, a, 1); (1, b, 2); (2, a, 2); (2, b, 2) ]
    ~accepting:[ 2 ]

let p4 =
  (* Guess the point after which only b occurs. *)
  Buchi.of_edges ~alphabet:2 ~nstates:2 ~start:0
    ~edges:[ (0, a, 0); (0, b, 0); (0, b, 1); (1, b, 1) ]
    ~accepting:[ 1 ]

let p5 =
  (* Deterministic: accepting state entered on each a. *)
  Buchi.of_edges ~alphabet:2 ~nstates:2 ~start:0
    ~edges:[ (0, b, 0); (0, a, 1); (1, a, 1); (1, b, 0) ]
    ~accepting:[ 1 ]

let p6 = Buchi.universal ~alphabet:2

let rem_examples =
  [ ("p0", "false", p0);
    ("p1", "a", p1);
    ("p2", "!a", p2);
    ("p3", "a & F !a", p3);
    ("p4", "F G !a", p4);
    ("p5", "G F a", p5);
    ("p6", "true", p6) ]

(* Protocol alphabet: bit 0 = req, bit 1 = grant. *)
let ap_alphabet = Alphabet.of_subsets [ "req"; "grant" ]

let has_req s = s land 1 <> 0
let has_grant s = s land 2 <> 0

let request_response =
  let edges = ref [] in
  for s = 0 to 3 do
    (* State 0: no pending request; state 1: a request awaits a grant. *)
    let from0 = if has_req s && not (has_grant s) then 1 else 0 in
    let from1 = if has_grant s then 0 else 1 in
    edges := (0, s, from0) :: (1, s, from1) :: !edges
  done;
  Buchi.of_edges ~alphabet:4 ~nstates:2 ~start:0 ~edges:!edges
    ~accepting:[ 0 ]

let no_grant_without_request =
  let edges = ref [] in
  for s = 0 to 3 do
    (* State 0: no request seen yet; a bare grant kills the run. *)
    if has_req s then edges := (0, s, 1) :: !edges
    else if not (has_grant s) then edges := (0, s, 0) :: !edges;
    edges := (1, s, 1) :: !edges
  done;
  Buchi.of_edges ~alphabet:4 ~nstates:2 ~start:0 ~edges:!edges
    ~accepting:[ 0; 1 ]

let always_eventually_grant =
  let edges = ref [] in
  for s = 0 to 3 do
    let from0 = if has_grant s then 1 else 0 in
    edges := (0, s, from0) :: (1, s, from0) :: !edges
  done;
  Buchi.of_edges ~alphabet:4 ~nstates:2 ~start:0 ~edges:!edges
    ~accepting:[ 1 ]
