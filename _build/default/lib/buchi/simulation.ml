(* Greatest fixpoint: start from the acceptance-compatible full relation
   and remove pairs where some move of q cannot be matched by p. *)
let direct_simulation (b : Buchi.t) =
  let n = b.nstates in
  let r =
    Array.init n (fun p ->
        Array.init n (fun q -> b.accepting.(p) || not b.accepting.(q)))
  in
  let changed = ref true in
  while !changed do
    changed := false;
    for p = 0 to n - 1 do
      for q = 0 to n - 1 do
        if r.(p).(q) then begin
          let matched =
            List.for_all
              (fun s ->
                List.for_all
                  (fun q' ->
                    List.exists (fun p' -> r.(p').(q')) b.delta.(p).(s))
                  b.delta.(q).(s))
              (List.init b.alphabet Fun.id)
          in
          if not matched then begin
            r.(p).(q) <- false;
            changed := true
          end
        end
      done
    done
  done;
  r

let quotient (b : Buchi.t) =
  let r = direct_simulation b in
  let n = b.nstates in
  let class_of = Array.make n (-1) in
  let count = ref 0 in
  for q = 0 to n - 1 do
    if class_of.(q) = -1 then begin
      class_of.(q) <- !count;
      for q' = q + 1 to n - 1 do
        if class_of.(q') = -1 && r.(q).(q') && r.(q').(q) then
          class_of.(q') <- !count
      done;
      incr count
    end
  done;
  let nstates = !count in
  let delta = Array.make_matrix nstates b.alphabet [] in
  let accepting = Array.make nstates false in
  for q = 0 to n - 1 do
    let c = class_of.(q) in
    if b.accepting.(q) then accepting.(c) <- true;
    Array.iteri
      (fun s succs ->
        delta.(c).(s) <-
          List.sort_uniq compare
            (List.map (fun q' -> class_of.(q')) succs @ delta.(c).(s)))
      b.delta.(q)
  done;
  let merged =
    Buchi.make ~alphabet:b.alphabet ~nstates ~start:class_of.(b.start)
      ~delta ~accepting
  in
  Buchi.restrict merged (Buchi.reachable merged)

let reduce b =
  let q = quotient b in
  let r = direct_simulation q in
  (* Little brothers: drop q' from delta.(p).(s) if some other q'' in the
     same successor list strictly simulates it. *)
  let delta =
    Array.mapi
      (fun _ row ->
        Array.map
          (fun succs ->
            List.filter
              (fun q' ->
                not
                  (List.exists
                     (fun q'' ->
                       q'' <> q' && r.(q'').(q') && not r.(q').(q''))
                     succs))
              succs)
          row)
      q.Buchi.delta
  in
  let pruned = { q with Buchi.delta = delta } in
  Buchi.restrict pruned (Buchi.reachable pruned)
