(** The Alpern–Schneider decomposition for Büchi automata (Section 2.4 of
    the paper), derived — as the paper stresses — from Theorem 3
    instantiated at the Boolean algebra of ω-regular languages.

    [B_S = bcl B] recognizes a safety property, [B_L = B ∪ ¬(bcl B)] a
    liveness property, and [L(B) = L(B_S) ∩ L(B_L)]. *)

type t = {
  original : Buchi.t;
  safety : Buchi.t;  (** [bcl B]: the strongest safety part (Theorem 6). *)
  liveness : Buchi.t;  (** [B ∪ ¬(bcl B)]: the weakest liveness part
                           (Theorem 7 — the language lattice is
                           distributive). *)
}

val decompose : Buchi.t -> t
(** Always succeeds: only safety-complementation is needed. *)

val verify_exact : ?max_states:int -> t -> (string * string) list
(** Exact checks of the three claims (safety part closed, liveness part
    dense, intersection recovers the language); returns failing claims
    with diagnostics. Exploits the decomposition's structure
    ([B_L = B ∪ ¬B_S] with [¬B_S] deterministic) so that only the
    {e original} automaton is ever complemented with the rank-based
    construction (@raise Complement.Too_large if even that exceeds the
    budget). *)

val verify_sampled : max_prefix:int -> max_cycle:int -> t -> (string * string) list
(** Lasso-sampled version of the intersection claim plus exact
    closed/dense checks (those are cheap). *)

(** {1 Classification} *)

type classification = Safety | Liveness | Both | Neither

val classification_to_string : classification -> string

val classify : ?max_states:int -> Buchi.t -> classification
(** - [Safety]: [L(B) = lcl L(B)] (closed);
    - [Liveness]: [lcl L(B) = Σ^ω] (dense);
    - [Both]: only [Σ^ω] itself;
    - [Neither]: e.g. Rem's p3.
    The safety test needs general complementation of [B]
    (@raise Complement.Too_large on big inputs); the liveness test is
    always cheap. *)

val is_safety : ?max_states:int -> Buchi.t -> bool
val is_liveness : Buchi.t -> bool

val classify_via_negation : Buchi.t -> negation:Buchi.t -> classification
(** Like {!classify}, but takes a caller-supplied automaton for the
    complement language instead of complementing — the standard trick for
    LTL-derived automata, where [¬L(B_φ) = L(B_{¬φ})] comes from
    translating the negated formula. Polynomial given the negation.
    @raise Invalid_argument if the claimed negation visibly overlaps
    [L(B)]. *)

(** {1 The language lattice}

    The Boolean algebra of ω-regular languages over a fixed alphabet,
    packaged for [Sl_core.Theory.Make]. Elements are automata; equality is
    language equality. This is the lattice the paper notes is {e not}
    [-]-complete, hence outside Gumm's framework, yet inside ours. *)

val language_lattice :
  alphabet:int -> ?max_states:int -> unit ->
  (module Sl_core.Theory.COMPLEMENTED with type t = Buchi.t)

val lcl : Buchi.t -> Buchi.t
(** The closure operator on the language lattice: {!Closure.bcl}. *)
