lib/buchi/closure.mli: Buchi
