lib/buchi/complement.ml: Array Buchi Closure Fun Hashtbl List Map Printf Queue Sl_nfa Stdlib
