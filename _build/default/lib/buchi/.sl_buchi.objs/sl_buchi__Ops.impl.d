lib/buchi/ops.ml: Array Buchi List
