lib/buchi/gnba.mli: Buchi Format Sl_word
