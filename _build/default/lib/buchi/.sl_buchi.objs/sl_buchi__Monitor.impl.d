lib/buchi/monitor.ml: Array Buchi Closure List Sl_nfa
