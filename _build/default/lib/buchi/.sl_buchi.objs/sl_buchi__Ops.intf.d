lib/buchi/ops.mli: Buchi
