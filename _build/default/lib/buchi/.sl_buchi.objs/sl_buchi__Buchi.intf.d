lib/buchi/buchi.mli: Format Sl_nfa Sl_word
