lib/buchi/lang.mli: Buchi Sl_word
