lib/buchi/acceptance.mli: Buchi Format Sl_word
