lib/buchi/complement.mli: Buchi
