lib/buchi/closure.ml: Array Buchi List
