lib/buchi/simulation.ml: Array Buchi Fun List
