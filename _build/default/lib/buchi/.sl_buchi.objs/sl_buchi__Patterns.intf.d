lib/buchi/patterns.mli: Buchi Sl_word
