lib/buchi/hierarchy.mli: Buchi
