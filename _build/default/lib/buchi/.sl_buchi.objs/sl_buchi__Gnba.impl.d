lib/buchi/gnba.ml: Array Buchi Format List Sl_word String
