lib/buchi/buchi.ml: Array Format Fun Hashtbl List Option Printf Queue Random Sl_nfa Sl_word
