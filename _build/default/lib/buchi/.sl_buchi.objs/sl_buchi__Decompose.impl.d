lib/buchi/decompose.ml: Buchi Closure Complement Format Lang List Ops Printf Sl_core Sl_word
