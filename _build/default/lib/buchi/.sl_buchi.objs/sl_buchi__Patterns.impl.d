lib/buchi/patterns.ml: Buchi Sl_word
