lib/buchi/hierarchy.ml: Array Buchi Closure List
