lib/buchi/simulation.mli: Buchi
