lib/buchi/monitor.mli: Buchi
