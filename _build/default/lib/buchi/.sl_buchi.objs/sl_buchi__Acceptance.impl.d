lib/buchi/acceptance.ml: Array Buchi Format Fun List Ops Printf Sl_word
