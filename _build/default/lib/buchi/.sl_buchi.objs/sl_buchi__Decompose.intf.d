lib/buchi/decompose.mli: Buchi Sl_core
