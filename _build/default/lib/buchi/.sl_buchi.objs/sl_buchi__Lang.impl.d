lib/buchi/lang.ml: Buchi Closure Complement List Ops Sl_word
