let bcl b =
  let t = Buchi.trim_live b in
  if Buchi.is_empty t then t
  else { t with accepting = Array.make t.nstates true }

let is_closure_shaped (b : Buchi.t) =
  let reach = Buchi.reachable b and live = Buchi.live_states b in
  let all = ref true in
  for q = 0 to b.nstates - 1 do
    if not (b.accepting.(q) && reach.(q) && live.(q)) then all := false
  done;
  !all

let naive_prune (b : Buchi.t) =
  (* Keep states that reach an accepting state at all (cycle or not). *)
  let can = Array.copy b.accepting in
  let changed = ref true in
  while !changed do
    changed := false;
    for q = 0 to b.nstates - 1 do
      if not can.(q) then
        Array.iter
          (List.iter (fun q' -> if can.(q') && not can.(q) then begin
               can.(q) <- true;
               changed := true
             end))
          b.delta.(q)
    done
  done;
  let reach = Buchi.reachable b in
  let keep = Array.init b.nstates (fun q -> reach.(q) && can.(q)) in
  let t = Buchi.restrict b keep in
  (* Even when the start is dropped, marking the lone sink accepting keeps
     the language empty: it has no outgoing transitions. *)
  { t with accepting = Array.make t.nstates true }
