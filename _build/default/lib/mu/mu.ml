module Kripke = Sl_kripke.Kripke

type t =
  | True
  | False
  | Prop of string
  | Var of string
  | Not of t
  | And of t * t
  | Or of t * t
  | Diamond of t
  | Box of t
  | Mu of string * t
  | Nu of string * t

let rec pp fmt = function
  | True -> Format.pp_print_string fmt "true"
  | False -> Format.pp_print_string fmt "false"
  | Prop p -> Format.pp_print_string fmt p
  | Var x -> Format.pp_print_string fmt x
  | Not f -> Format.fprintf fmt "!%a" pp_atom f
  | And (a, b) -> Format.fprintf fmt "%a & %a" pp_atom a pp_atom b
  | Or (a, b) -> Format.fprintf fmt "%a | %a" pp_atom a pp_atom b
  | Diamond f -> Format.fprintf fmt "<> %a" pp_atom f
  | Box f -> Format.fprintf fmt "[] %a" pp_atom f
  | Mu (x, f) -> Format.fprintf fmt "mu %s . %a" x pp f
  | Nu (x, f) -> Format.fprintf fmt "nu %s . %a" x pp f

and pp_atom fmt f =
  match f with
  | True | False | Prop _ | Var _ | Not _ | Diamond _ | Box _ -> pp fmt f
  | _ -> Format.fprintf fmt "(%a)" pp f

let to_string f = Format.asprintf "%a" pp f

(* --- Parser --- *)

type token =
  | TTrue | TFalse | TIdent of string | TVar of string
  | TNot | TAnd | TOr | TImplies
  | TDiamond | TBox | TMu | TNu | TDot
  | TLparen | TRparen | TEnd

exception Syntax of string

let tokenize input =
  let n = String.length input in
  let is_ident_char c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
    || (c >= '0' && c <= '9') || c = '_'
  in
  let rec go i acc =
    if i >= n then List.rev (TEnd :: acc)
    else
      match input.[i] with
      | ' ' | '\t' | '\n' | '\r' -> go (i + 1) acc
      | '(' -> go (i + 1) (TLparen :: acc)
      | ')' -> go (i + 1) (TRparen :: acc)
      | '.' -> go (i + 1) (TDot :: acc)
      | '!' -> go (i + 1) (TNot :: acc)
      | '&' -> go (i + 1) (TAnd :: acc)
      | '|' -> go (i + 1) (TOr :: acc)
      | '<' ->
          if i + 1 < n && input.[i + 1] = '>' then go (i + 2) (TDiamond :: acc)
          else raise (Syntax "stray '<'")
      | '[' ->
          if i + 1 < n && input.[i + 1] = ']' then go (i + 2) (TBox :: acc)
          else raise (Syntax "stray '['")
      | '-' ->
          if i + 1 < n && input.[i + 1] = '>' then go (i + 2) (TImplies :: acc)
          else raise (Syntax "stray '-'")
      | c when is_ident_char c ->
          let j = ref i in
          while !j < n && is_ident_char input.[!j] do
            incr j
          done;
          let word = String.sub input i (!j - i) in
          let tok =
            match word with
            | "true" -> TTrue
            | "false" -> TFalse
            | "mu" -> TMu
            | "nu" -> TNu
            | _ ->
                if word.[0] >= 'A' && word.[0] <= 'Z' then TVar word
                else TIdent word
          in
          go !j (tok :: acc)
      | c -> raise (Syntax (Printf.sprintf "unexpected '%c'" c))
  in
  go 0 []

let parse input =
  try
    let tokens = ref (tokenize input) in
    let peek () = match !tokens with [] -> TEnd | t :: _ -> t in
    let advance () =
      match !tokens with [] -> () | _ :: rest -> tokens := rest
    in
    let expect t what =
      if peek () = t then advance () else raise (Syntax ("expected " ^ what))
    in
    let rec implies () =
      let lhs = or_ () in
      if peek () = TImplies then begin
        advance ();
        (* f -> g is !f | g. *)
        Or (Not lhs, implies ())
      end
      else lhs
    and or_ () =
      let lhs = ref (and_ ()) in
      while peek () = TOr do
        advance ();
        lhs := Or (!lhs, and_ ())
      done;
      !lhs
    and and_ () =
      let lhs = ref (unary ()) in
      while peek () = TAnd do
        advance ();
        lhs := And (!lhs, unary ())
      done;
      !lhs
    and unary () =
      match peek () with
      | TNot -> advance (); Not (unary ())
      | TDiamond -> advance (); Diamond (unary ())
      | TBox -> advance (); Box (unary ())
      | TMu -> advance (); binder (fun x f -> Mu (x, f))
      | TNu -> advance (); binder (fun x f -> Nu (x, f))
      | _ -> atom ()
    and binder build =
      match peek () with
      | TVar x ->
          advance ();
          expect TDot "'.'";
          build x (implies ())
      | _ -> raise (Syntax "expected a fixpoint variable")
    and atom () =
      match peek () with
      | TTrue -> advance (); True
      | TFalse -> advance (); False
      | TIdent p -> advance (); Prop p
      | TVar x -> advance (); Var x
      | TLparen ->
          advance ();
          let f = implies () in
          expect TRparen "')'";
          f
      | _ -> raise (Syntax "expected a formula")
    in
    let f = implies () in
    expect TEnd "end of input";
    Ok f
  with Syntax msg -> Error msg

let parse_exn input =
  match parse input with
  | Ok f -> f
  | Error msg -> invalid_arg ("Mu.parse_exn: " ^ msg)

(* --- Static checks --- *)

let well_named f =
  let ok = ref true in
  let rec go bound = function
    | True | False | Prop _ -> ()
    | Var _ -> ()
    | Not g | Diamond g | Box g -> go bound g
    | And (a, b) | Or (a, b) -> go bound a; go bound b
    | Mu (x, g) | Nu (x, g) ->
        if List.mem x bound then ok := false else go (x :: bound) g
  in
  go [] f;
  !ok

(* Bound variables must sit under an even number of negations. *)
let positive f =
  let ok = ref true in
  let rec go polarity bound = function
    | True | False | Prop _ -> ()
    | Var x -> if List.mem x bound && not polarity then ok := false
    | Not g -> go (not polarity) bound g
    | And (a, b) | Or (a, b) -> go polarity bound a; go polarity bound b
    | Diamond g | Box g -> go polarity bound g
    | Mu (x, g) | Nu (x, g) -> go polarity (x :: bound) g
  in
  go true [] f;
  !ok

let free_variables f =
  let rec go bound acc = function
    | True | False | Prop _ -> acc
    | Var x -> if List.mem x bound then acc else x :: acc
    | Not g | Diamond g | Box g -> go bound acc g
    | And (a, b) | Or (a, b) -> go bound (go bound acc a) b
    | Mu (x, g) | Nu (x, g) -> go (x :: bound) acc g
  in
  List.sort_uniq String.compare (go [] [] f)

(* --- Model checking --- *)

let sat (k : Kripke.t) formula =
  if not (well_named formula) then Error "variable bound twice"
  else if not (positive formula) then
    Error "bound variable under an odd number of negations"
  else if free_variables formula <> [] then
    Error
      ("free variables: " ^ String.concat ", " (free_variables formula))
  else begin
    let n = k.nstates in
    let rec eval env = function
      | True -> Array.make n true
      | False -> Array.make n false
      | Prop p -> Array.init n (fun q -> Kripke.holds k q p)
      | Var x -> List.assoc x env
      | Not f -> Array.map not (eval env f)
      | And (a, b) ->
          let va = eval env a and vb = eval env b in
          Array.init n (fun q -> va.(q) && vb.(q))
      | Or (a, b) ->
          let va = eval env a and vb = eval env b in
          Array.init n (fun q -> va.(q) || vb.(q))
      | Diamond f ->
          let v = eval env f in
          Array.init n (fun q ->
              List.exists (fun q' -> v.(q')) k.successors.(q))
      | Box f ->
          let v = eval env f in
          Array.init n (fun q ->
              List.for_all (fun q' -> v.(q')) k.successors.(q))
      | Mu (x, f) -> fixpoint env x f (Array.make n false)
      | Nu (x, f) -> fixpoint env x f (Array.make n true)
    and fixpoint env x f start =
      (* Knaster–Tarski iteration; converges within n+1 rounds on a
         monotone body. *)
      let current = ref start in
      let continue_ = ref true in
      while !continue_ do
        let next = eval ((x, !current) :: env) f in
        if next = !current then continue_ := false else current := next
      done;
      !current
    in
    Ok (eval [] formula)
  end

let holds k formula =
  Result.map (fun v -> v.(k.Kripke.initial)) (sat k formula)

(* --- CTL embedding --- *)

let fresh =
  let counter = ref 0 in
  fun () ->
    incr counter;
    Printf.sprintf "Z%d" !counter

let rec of_ctl : Sl_ctl.Ctl.t -> t = function
  | True -> True
  | False -> False
  | Prop p -> Prop p
  | Not f -> Not (of_ctl f)
  | And (a, b) -> And (of_ctl a, of_ctl b)
  | Or (a, b) -> Or (of_ctl a, of_ctl b)
  | Implies (a, b) -> Or (Not (of_ctl a), of_ctl b)
  | EX f -> Diamond (of_ctl f)
  | AX f -> Box (of_ctl f)
  | EF f ->
      let x = fresh () in
      Mu (x, Or (of_ctl f, Diamond (Var x)))
  | AF f ->
      let x = fresh () in
      Mu (x, Or (of_ctl f, Box (Var x)))
  | EG f ->
      let x = fresh () in
      Nu (x, And (of_ctl f, Diamond (Var x)))
  | AG f ->
      let x = fresh () in
      Nu (x, And (of_ctl f, Box (Var x)))
  | EU (a, b) ->
      let x = fresh () in
      Mu (x, Or (of_ctl b, And (of_ctl a, Diamond (Var x))))
  | AU (a, b) ->
      let x = fresh () in
      Mu (x, Or (of_ctl b, And (of_ctl a, Box (Var x))))
