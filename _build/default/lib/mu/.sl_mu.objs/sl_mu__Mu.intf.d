lib/mu/mu.mli: Format Sl_ctl Sl_kripke
