lib/mu/mu.ml: Array Format List Printf Result Sl_ctl Sl_kripke String
