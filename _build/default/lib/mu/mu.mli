module Kripke = Sl_kripke.Kripke

(** The propositional modal µ-calculus over Kripke structures.

    The paper lists the µ-calculus (Kozen, its reference [11]) among the
    branching-time formalisms its framework covers; this module provides
    it as a substrate: syntax with fixpoint binders, the standard
    fixpoint-iteration model checker (naive semantics, sound for all
    formulas in {e positive normal form} — every bound variable under an
    even number of negations, enforced at {!check} time), and the
    classical embedding of CTL, which the tests replay against the direct
    CTL model checker.

    Closures and fixpoints meet here too: for a monotone [f], the least
    fixpoint computed by {!sat} is the least [cl]-closed point above ⊥ —
    the same Knaster–Tarski engine as [Sl_lattice.Closure]. *)

type t =
  | True
  | False
  | Prop of string
  | Var of string
  | Not of t
  | And of t * t
  | Or of t * t
  | Diamond of t  (** ◇f: some successor satisfies f (EX) *)
  | Box of t  (** □f: every successor satisfies f (AX) *)
  | Mu of string * t  (** least fixpoint µX. f *)
  | Nu of string * t  (** greatest fixpoint νX. f *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string

val parse : string -> (t, string) result
(** Syntax: [mu X . f], [nu X . f], [<> f], [[] f], booleans as in LTL;
    variables are capitalized identifiers. *)

val parse_exn : string -> t

val well_named : t -> bool
(** No variable is bound twice or used free-and-bound. *)

val positive : t -> bool
(** Every bound variable occurs under an even number of negations inside
    its binder — the monotonicity condition that makes the fixpoints
    exist (Knaster–Tarski). *)

val sat : Kripke.t -> t -> (bool array, string) result
(** Fixpoint-iteration model checking. [Error] on non-positive or
    ill-named formulas, or free variables. *)

val holds : Kripke.t -> t -> (bool, string) result

(** {1 CTL embedding} *)

val of_ctl : Sl_ctl.Ctl.t -> t
(** The textbook translation: [EX f = ◇f], [EG f = νX. f ∧ ◇X],
    [E(f U g) = µX. g ∨ (f ∧ ◇X)], universal modalities via □, the rest
    by duality. The tests check [sat (of_ctl f) = Ctl.sat f] on the
    structure corpus. *)
