module Poset = Sl_order.Poset
(** Finite lattices.

    A finite lattice is a finite poset in which every pair of elements has a
    meet and a join; since the poset is finite and bounded this extends to
    arbitrary finite subsets. The paper's core results (Section 3) are
    stated over modular complemented lattices; this module provides the law
    checkers ({!is_modular}, {!is_distributive}, {!is_complemented}, …) used
    both to validate the counterexample lattices of Figures 1 and 2 and to
    drive the exhaustive theorem checks in [Sl_core]. *)

type t
(** A finite lattice: a poset plus precomputed meet and join tables. *)

type elt = Poset.elt

exception Not_a_lattice of string
(** Raised by {!of_poset} when some pair lacks a meet or a join. *)

(** {1 Construction} *)

val of_poset : Poset.t -> t
(** Interpret a finite poset as a lattice.
    @raise Not_a_lattice if some pair of elements has no least upper bound
    or no greatest lower bound. The empty poset is not a lattice. *)

val of_poset_opt : Poset.t -> t option

val of_covers : size:int -> covers:(elt * elt) list -> t
(** Convenience: {!Poset.of_covers} followed by {!of_poset}. *)

val product : t -> t -> t
val dual : t -> t

val interval : t -> elt -> elt -> t option
(** [interval l a b] is the sublattice [{ x | a <= x <= b }] (with elements
    renumbered; see {!interval_elements}), or [None] if [not (a <= b)]. *)

val interval_elements : t -> elt -> elt -> elt list
(** The elements of [l] lying in [[a, b]], in the order used by
    {!interval}. *)

(** {1 Observations} *)

val poset : t -> Poset.t
val size : t -> int
val elements : t -> elt list
val leq : t -> elt -> elt -> bool
val lt : t -> elt -> elt -> bool
val meet : t -> elt -> elt -> elt
val join : t -> elt -> elt -> elt
val meet_set : t -> elt list -> elt
(** Meet of a finite set; the empty meet is {!top}. *)

val join_set : t -> elt list -> elt
(** Join of a finite set; the empty join is {!bot}. *)

val bot : t -> elt
val top : t -> elt

(** {1 Laws}

    All checkers are exhaustive over the (finite) carrier and return a
    counterexample witness when the law fails. *)

val check_lattice_laws : t -> (string * elt list) option
(** Re-verifies associativity, commutativity, idempotency and absorption of
    the meet/join tables (they hold by construction; this is the executable
    form of the paper's algebraic axioms in Section 3). Returns
    [Some (law, witness)] on failure. *)

val modularity_violation : t -> (elt * elt * elt) option
(** A triple [(a, b, c)] with [a <= c] but
    [a v (b ^ c) <> (a v b) ^ (a v c)], if any.  (Here [v] is join and [^]
    is meet; the paper states modularity as
    [a <= c  =>  a v (b ^ c) = (a v b) ^ c].) *)

val is_modular : t -> bool

val distributivity_violation : t -> (elt * elt * elt) option
(** A triple where [a ^ (b v c) <> (a ^ b) v (a ^ c)], if any. *)

val is_distributive : t -> bool

val complements : t -> elt -> elt list
(** [complements l a] is the set [cmp a = { b | a ^ b = 0 and a v b = 1 }].
    The paper stresses that complements need not be unique outside
    distributive lattices. *)

val is_complemented : t -> bool
(** Every element has at least one complement. *)

val uncomplemented : t -> elt list
(** Elements with no complement. *)

val is_boolean : t -> bool
(** Distributive and complemented: a (finite) Boolean algebra. *)

val has_unique_complements : t -> bool

(** {1 Structure} *)

val atoms : t -> elt list
(** Elements covering bottom. *)

val coatoms : t -> elt list

val join_irreducibles : t -> elt list
(** Elements [x <> 0] that are not the join of two strictly smaller
    elements; the basis of Birkhoff duality (see {!Birkhoff}). *)

val meet_irreducibles : t -> elt list

val sublattice_closure : t -> elt list -> elt list
(** Least subset containing the given elements and closed under meet and
    join (not necessarily containing 0 and 1). *)

val contains_pentagon : t -> (elt * elt * elt * elt * elt) option
(** A sublattice isomorphic to N5 [(0', a, b, c, 1')] with
    [0' < a < b < 1'], [0' < c < 1'], [c] incomparable to both [a] and [b],
    [a ^ c = b ^ c = 0'], [a v c = b v c = 1'] — the Dedekind witness that
    the lattice is not modular. Returns [None] iff the lattice is
    modular. *)

val contains_diamond : t -> (elt * elt * elt * elt * elt) option
(** A sublattice isomorphic to M3 [(0', x, y, z, 1')] — together with
    {!contains_pentagon} this characterizes non-distributivity
    (Birkhoff's M3/N5 theorem). *)

val isomorphic : t -> t -> (elt -> elt) option

(** {1 Output} *)

val pp : Format.formatter -> t -> unit
val to_dot : ?label:(elt -> string) -> t -> string
