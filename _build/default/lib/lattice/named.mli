(** The lattices used throughout the paper, pre-built with stable element
    names.

    Element indices are fixed and documented per lattice so that tests and
    benches can refer to the paper's labels ([a], [b], [c], [s], [z], …)
    directly. *)

(** {1 Figure 1 — the pentagon N5}

    The Hasse diagram of Figure 1: [bot < a < b < top], [bot < c < top],
    with [c] incomparable to [a] and [b]. It is the minimal non-modular
    lattice; Lemma 6 shows element [a] admits no safety/liveness
    decomposition under the closure mapping [a] to [b]. *)

val n5 : Lattice.t
val n5_bot : Lattice.elt
val n5_a : Lattice.elt
val n5_b : Lattice.elt
val n5_c : Lattice.elt
val n5_top : Lattice.elt

val n5_label : Lattice.elt -> string
(** Paper labels: ["0"], ["a"], ["b"], ["c"], ["1"]. *)

(** {1 Figure 2 — the diamond M3}

    The Hasse diagram of Figure 2: bottom element [a], three pairwise
    incomparable atoms [s], [b], [z], and a top. Modular but not
    distributive; the paper uses it to show Theorem 7 needs
    distributivity. *)

val m3 : Lattice.t
val m3_a : Lattice.elt (** bottom; the paper's element [a]. *)

val m3_s : Lattice.elt (** the paper's [s = cl.a]. *)

val m3_b : Lattice.elt
val m3_z : Lattice.elt
val m3_top : Lattice.elt

val m3_label : Lattice.elt -> string
(** Paper labels: ["a"], ["s"], ["b"], ["z"], ["1"]. *)

(** {1 Stock lattices} *)

val chain : int -> Lattice.t
(** Total order on [n >= 1] elements. Distributive; complemented only for
    [n <= 2]. *)

val boolean : int -> Lattice.t
(** Powerset of an [n]-element set: the prototypical Boolean algebra;
    subsets are encoded as bit masks. *)

val diamond : int -> Lattice.t
(** [M_k]: bottom, [k] pairwise-incomparable atoms, top. [diamond 3 = M3]
    up to labels. Modular for all [k]; distributive iff [k <= 1]...
    (for [k = 2] this is the Boolean square). *)

val divisor : int -> Lattice.t * int array
(** Divisors of [n] under divisibility with gcd/lcm as meet/join; returns
    the divisor denoted by each element. Distributive; Boolean iff [n] is
    squarefree. *)

val partition : int -> Lattice.t
(** Partition lattice of an [n]-element set ([n <= 5] recommended: Bell
    numbers grow fast), ordered by refinement. Complemented but not modular
    for [n >= 4] — a natural "big" test subject for the paper's
    hypotheses. *)

val subgroup_z : int -> Lattice.t * int array
(** Subgroups of the cyclic group Z_n (isomorphic to the divisor lattice);
    returns generators. Included as a second arithmetic family for
    property tests. *)

val all_small : (string * Lattice.t) list
(** A corpus of named lattices used by the exhaustive theorem checks:
    chains, Booleans, N5, M3, diamonds, divisor lattices, small partition
    lattices, and a few products. *)
