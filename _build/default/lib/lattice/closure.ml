type t = { lattice : Lattice.t; map : Lattice.elt array }

exception Invalid_closure of string

let validate l f =
  let elems = Lattice.elements l in
  let bad = ref None in
  let record law ws = if !bad = None then bad := Some (law, ws) in
  List.iter
    (fun x ->
      if not (Lattice.leq l x (f x)) then record "extensive" [ x ];
      if f (f x) <> f x then record "idempotent" [ x ];
      List.iter
        (fun y ->
          if Lattice.leq l x y && not (Lattice.leq l (f x) (f y)) then
            record "monotone" [ x; y ])
        elems)
    elems;
  !bad

let make l f =
  (match validate l f with
  | Some (law, ws) ->
      raise
        (Invalid_closure
           (Printf.sprintf "not %s at (%s)" law
              (String.concat ", " (List.map string_of_int ws))))
  | None -> ());
  { lattice = l; map = Array.init (Lattice.size l) f }

let identity l = make l Fun.id
let to_top l = make l (fun _ -> Lattice.top l)

let of_closed_set l closed =
  let closed = Lattice.top l :: closed in
  let cl x =
    let above = List.filter (fun c -> Lattice.leq l x c) closed in
    (* The meet of all closed elements above x is itself closed (finite
       lattice) and is the least one above x. *)
    Lattice.meet_set l above
  in
  make l cl

(* Closure operators on a finite lattice are in bijection with meet-closed
   subsets containing top. We enumerate subsets of the non-top carrier. *)
let all l =
  let n = Lattice.size l in
  let non_top = List.filter (fun x -> x <> Lattice.top l) (Lattice.elements l) in
  if n > 20 then invalid_arg "Closure.all: lattice too large";
  let rec subsets = function
    | [] -> [ [] ]
    | x :: rest ->
        let s = subsets rest in
        s @ List.map (fun sub -> x :: sub) s
  in
  let meet_closed sub =
    let set = Lattice.top l :: sub in
    List.for_all
      (fun a -> List.for_all (fun b -> List.mem (Lattice.meet l a b) set) set)
      set
  in
  subsets non_top
  |> List.filter meet_closed
  |> List.map (of_closed_set l)

let fig1 =
  let l = Named.n5 in
  make l (fun x -> if x = Named.n5_a then Named.n5_b else x)

let fig2_candidates =
  List.filter
    (fun cl -> cl.map.(Named.m3_a) = Named.m3_s)
    (all Named.m3)

let lattice cl = cl.lattice
let apply cl x = cl.map.(x)

let closed_elements cl =
  List.filter (fun x -> cl.map.(x) = x) (Lattice.elements cl.lattice)

let is_closed cl x = cl.map.(x) = x

let pointwise_leq cl1 cl2 =
  List.for_all
    (fun x -> Lattice.leq cl1.lattice cl1.map.(x) cl2.map.(x))
    (Lattice.elements cl1.lattice)

let pp fmt cl =
  Format.fprintf fmt "@[<hov 2>closure{";
  Array.iteri
    (fun x y -> if x <> y then Format.fprintf fmt "@ %d=>%d" x y)
    cl.map;
  Format.fprintf fmt "@ }@]"
