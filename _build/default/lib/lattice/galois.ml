module Poset = Sl_order.Poset

type t = {
  left : Poset.t;
  right : Poset.t;
  lower : Poset.elt -> Poset.elt;
  upper : Poset.elt -> Poset.elt;
}

let validate c =
  let bad = ref None in
  let record law ws = if !bad = None then bad := Some (law, ws) in
  if not (Poset.is_monotone c.left c.right c.lower) then
    record "lower not monotone" [];
  if not (Poset.is_monotone c.right c.left c.upper) then
    record "upper not monotone" [];
  List.iter
    (fun x ->
      List.iter
        (fun y ->
          if Poset.leq c.right (c.lower x) y <> Poset.leq c.left x (c.upper y)
          then record "adjunction law" [ x; y ])
        (Poset.elements c.right))
    (Poset.elements c.left);
  !bad

let is_connection c = validate c = None
let closure_of c x = c.upper (c.lower x)
let kernel_of c y = c.lower (c.upper y)

let of_closure l cl =
  let closed = Array.of_list (Closure.closed_elements cl) in
  let right =
    Poset.make ~size:(Array.length closed) ~leq:(fun i j ->
        Lattice.leq l closed.(i) closed.(j))
  in
  let index_of e =
    let found = ref (-1) in
    Array.iteri (fun i c -> if c = e then found := i) closed;
    assert (!found >= 0);
    !found
  in
  {
    left = Lattice.poset l;
    right;
    lower = (fun x -> index_of (Closure.apply cl x));
    upper = (fun i -> closed.(i));
  }

let right_adjoint_of p q f =
  let candidates y = List.filter (fun x -> Poset.leq q (f x) y)
      (Poset.elements p) in
  let table =
    List.map
      (fun y ->
        let cands = candidates y in
        List.find_opt
          (fun m -> List.for_all (fun x -> Poset.leq p x m) cands)
          cands)
      (Poset.elements q)
  in
  if List.for_all Option.is_some table then begin
    let arr = Array.of_list (List.map Option.get table) in
    Some (fun y -> arr.(y))
  end
  else None

let lcl_connection ~max_len ~alphabet =
  let rec words len =
    if len = 0 then [ [] ]
    else
      List.concat_map
        (fun w -> List.init alphabet (fun s -> s :: w))
        (words (len - 1))
  in
  let observations = Array.of_list (words max_len) in
  let prefixes =
    Array.of_list
      (List.concat_map words (List.init (max_len + 1) Fun.id))
  in
  let nobs = Array.length observations and npre = Array.length prefixes in
  if nobs > 4 || npre > 8 then
    invalid_arg "Galois.lcl_connection: universe too large";
  let prefix_index w =
    let found = ref (-1) in
    Array.iteri (fun i p -> if p = w then found := i) prefixes;
    !found
  in
  let prefixes_of w =
    List.init (List.length w + 1) (fun k ->
        List.filteri (fun i _ -> i < k) w)
  in
  let obs_prefix_mask =
    Array.map
      (fun w ->
        List.fold_left
          (fun acc p -> acc lor (1 lsl prefix_index p))
          0 (prefixes_of w))
      observations
  in
  let left = Poset.powerset nobs and right = Poset.powerset npre in
  let lower s =
    let mask = ref 0 in
    Array.iteri
      (fun i pm -> if s land (1 lsl i) <> 0 then mask := !mask lor pm)
      obs_prefix_mask;
    !mask
  in
  let upper t =
    let mask = ref 0 in
    Array.iteri
      (fun i pm -> if pm land t = pm then mask := !mask lor (1 lsl i))
      obs_prefix_mask;
    !mask
  in
  { left; right; lower; upper }
