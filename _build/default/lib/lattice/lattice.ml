module Poset = Sl_order.Poset
type elt = Poset.elt

type t = {
  poset : Poset.t;
  meet : elt array array;
  join : elt array array;
  bot : elt;
  top : elt;
}

exception Not_a_lattice of string

let fail fmt = Format.kasprintf (fun s -> raise (Not_a_lattice s)) fmt

let of_poset poset =
  let n = Poset.size poset in
  if n = 0 then fail "empty poset";
  let meet = Array.make_matrix n n 0 and join = Array.make_matrix n n 0 in
  for x = 0 to n - 1 do
    for y = 0 to n - 1 do
      (match Poset.meet_opt poset x y with
      | Some m -> meet.(x).(y) <- m
      | None -> fail "no meet for (%d, %d)" x y);
      match Poset.join_opt poset x y with
      | Some j -> join.(x).(y) <- j
      | None -> fail "no join for (%d, %d)" x y
    done
  done;
  let bot =
    match Poset.bottom poset with
    | Some b -> b
    | None -> fail "no bottom element"
  in
  let top =
    match Poset.top poset with
    | Some t -> t
    | None -> fail "no top element"
  in
  { poset; meet; join; bot; top }

let of_poset_opt p = try Some (of_poset p) with Not_a_lattice _ -> None

let of_covers ~size ~covers = of_poset (Poset.of_covers ~size ~covers)

let poset l = l.poset
let size l = Poset.size l.poset
let elements l = Poset.elements l.poset
let leq l = Poset.leq l.poset
let lt l = Poset.lt l.poset
let meet l x y = l.meet.(x).(y)
let join l x y = l.join.(x).(y)
let bot l = l.bot
let top l = l.top
let meet_set l xs = List.fold_left (meet l) l.top xs
let join_set l xs = List.fold_left (join l) l.bot xs

let product a b = of_poset (Poset.product a.poset b.poset)
let dual a = of_poset (Poset.dual a.poset)

let interval_elements l a b =
  List.filter (fun x -> leq l a x && leq l x b) (elements l)

let interval l a b =
  if not (leq l a b) then None
  else begin
    let elems = Array.of_list (interval_elements l a b) in
    let p =
      Poset.make ~size:(Array.length elems) ~leq:(fun i j ->
          leq l elems.(i) elems.(j))
    in
    Some (of_poset p)
  end

let for_all_elts l pred = List.for_all pred (elements l)

let find_triple l pred =
  let found = ref None in
  let elems = elements l in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          List.iter
            (fun c ->
              if !found = None && pred a b c then found := Some (a, b, c))
            elems)
        elems)
    elems;
  !found

let check_lattice_laws l =
  let elems = elements l in
  let bad = ref None in
  let record law ws = if !bad = None then bad := Some (law, ws) in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          if meet l a b <> meet l b a then record "meet-commutative" [ a; b ];
          if join l a b <> join l b a then record "join-commutative" [ a; b ];
          if meet l a (join l a b) <> a then record "absorption" [ a; b ];
          if join l a (meet l a b) <> a then record "absorption-dual" [ a; b ];
          List.iter
            (fun c ->
              if meet l (meet l a b) c <> meet l a (meet l b c) then
                record "meet-associative" [ a; b; c ];
              if join l (join l a b) c <> join l a (join l b c) then
                record "join-associative" [ a; b; c ])
            elems)
        elems;
      if meet l a a <> a then record "meet-idempotent" [ a ];
      if join l a a <> a then record "join-idempotent" [ a ])
    elems;
  !bad

let modularity_violation l =
  find_triple l (fun a b c ->
      leq l a c && join l a (meet l b c) <> meet l (join l a b) (join l a c))

let is_modular l = modularity_violation l = None

let distributivity_violation l =
  find_triple l (fun a b c ->
      meet l a (join l b c) <> join l (meet l a b) (meet l a c))

let is_distributive l = distributivity_violation l = None

let complements l a =
  List.filter (fun b -> meet l a b = l.bot && join l a b = l.top) (elements l)

let uncomplemented l = List.filter (fun a -> complements l a = []) (elements l)
let is_complemented l = uncomplemented l = []
let is_boolean l = is_distributive l && is_complemented l

let has_unique_complements l =
  for_all_elts l (fun a -> List.length (complements l a) = 1)

let atoms l = Poset.covers_of l.poset l.bot
let coatoms l = Poset.covered_by l.poset l.top

let join_irreducibles l =
  List.filter
    (fun x ->
      x <> l.bot
      && not
           (List.exists
              (fun a ->
                List.exists
                  (fun b -> lt l a x && lt l b x && join l a b = x)
                  (elements l))
              (elements l)))
    (elements l)

let meet_irreducibles l =
  List.filter
    (fun x ->
      x <> l.top
      && not
           (List.exists
              (fun a ->
                List.exists
                  (fun b -> lt l x a && lt l x b && meet l a b = x)
                  (elements l))
              (elements l)))
    (elements l)

let sublattice_closure l seed =
  let current = ref (List.sort_uniq compare seed) in
  let changed = ref true in
  while !changed do
    changed := false;
    let add x =
      if not (List.mem x !current) then begin
        current := x :: !current;
        changed := true
      end
    in
    List.iter
      (fun a ->
        List.iter
          (fun b ->
            add (meet l a b);
            add (join l a b))
          !current)
      !current
  done;
  List.sort compare !current

(* A pentagon is five elements z < a < b < o, z < c < o with c incomparable
   to a and b, and the meets/joins landing on z and o within the quintuple. *)
let contains_pentagon l =
  let elems = elements l in
  let result = ref None in
  let try_quintuple z a b c o =
    if
      lt l z a && lt l a b && lt l b o && lt l z c && lt l c o
      && (not (Poset.comparable l.poset a c))
      && (not (Poset.comparable l.poset b c))
      && meet l a c = z && meet l b c = z
      && join l a c = o && join l b c = o
    then result := Some (z, a, b, c, o)
  in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          if lt l a b then
            List.iter
              (fun c ->
                if !result = None then begin
                  let z = meet l b c and o = join l a c in
                  try_quintuple z a b c o
                end)
              elems)
        elems)
    elems;
  !result

let contains_diamond l =
  let elems = elements l in
  let result = ref None in
  List.iter
    (fun x ->
      List.iter
        (fun y ->
          if x < y && not (Poset.comparable l.poset x y) then
            List.iter
              (fun z ->
                if !result = None && y < z
                   && (not (Poset.comparable l.poset x z))
                   && not (Poset.comparable l.poset y z)
                then begin
                  let m = meet l x y and j = join l x y in
                  if
                    meet l x z = m && meet l y z = m && join l x z = j
                    && join l y z = j
                  then result := Some (m, x, y, z, j)
                end)
              elems)
        elems)
    elems;
  !result

let isomorphic a b = Poset.isomorphic a.poset b.poset

let pp fmt l =
  Format.fprintf fmt "@[<hov 2>lattice(%d, bot=%d, top=%d)@ %a@]" (size l)
    l.bot l.top Poset.pp l.poset

let to_dot ?label l = Poset.to_dot ?label l.poset
