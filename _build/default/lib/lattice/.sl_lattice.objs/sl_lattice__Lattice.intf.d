lib/lattice/lattice.mli: Format Sl_order
