lib/lattice/birkhoff.mli: Lattice Sl_order
