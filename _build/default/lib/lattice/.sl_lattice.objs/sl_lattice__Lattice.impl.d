lib/lattice/lattice.ml: Array Format List Sl_order
