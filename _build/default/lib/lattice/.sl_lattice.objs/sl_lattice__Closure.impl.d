lib/lattice/closure.ml: Array Format Fun Lattice List Named Printf String
