lib/lattice/closure.mli: Format Lattice
