lib/lattice/named.ml: Array Fun Hashtbl Lattice List Sl_order
