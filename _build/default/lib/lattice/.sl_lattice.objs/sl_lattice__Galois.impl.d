lib/lattice/galois.ml: Array Closure Fun Lattice List Option Sl_order
