lib/lattice/named.mli: Lattice
