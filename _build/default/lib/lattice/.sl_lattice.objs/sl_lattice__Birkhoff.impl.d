lib/lattice/birkhoff.ml: Array Fun Lattice List Option Sl_order
