lib/lattice/galois.mli: Closure Lattice Sl_order
