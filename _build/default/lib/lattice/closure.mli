(** Lattice-closure operators on finite lattices.

    Section 3 of the paper: a lattice-closure on [L] is a function
    [cl : L -> L] that is extensive ([a <= cl a]), idempotent
    ([cl (cl a) = cl a]) and monotone ([a <= b => cl a <= cl b]). On a
    finite lattice these are in bijection with {e closure systems}: subsets
    of closed elements that contain top and are closed under meets
    ({!of_closed_set}, {!all}). *)

type t
(** A validated closure operator on a specific finite lattice. *)

exception Invalid_closure of string

(** {1 Construction} *)

val make : Lattice.t -> (Lattice.elt -> Lattice.elt) -> t
(** @raise Invalid_closure if the function is not extensive, idempotent and
    monotone on the carrier. *)

val identity : Lattice.t -> t
(** The finest closure: every element is closed. *)

val to_top : Lattice.t -> t
(** The coarsest closure: [cl x = 1] for all [x]; only top is closed. *)

val of_closed_set : Lattice.t -> Lattice.elt list -> t
(** [of_closed_set l closed] is the closure whose closed elements are the
    meet-closure of [closed ∪ {top}]: [cl x] is the least listed element
    above [x]. Always well-defined on a finite lattice. *)

val all : Lattice.t -> t list
(** Every closure operator on the lattice, enumerated via meet-closed
    subsets containing top. Exponential; intended for the small lattices of
    {!Named.all_small}. *)

val fig1 : t
(** The closure of Figure 1 on {!Named.n5}: [cl a = b], identity
    elsewhere. *)

val fig2_candidates : t list
(** All closures on {!Named.m3} mapping the paper's [a] to [s]
    ("consider any lattice closure cl that maps a to s"). *)

(** {1 Observations} *)

val lattice : t -> Lattice.t
val apply : t -> Lattice.elt -> Lattice.elt
val closed_elements : t -> Lattice.elt list
val is_closed : t -> Lattice.elt -> bool

val pointwise_leq : t -> t -> bool
(** [pointwise_leq cl1 cl2] iff [cl1 x <= cl2 x] for all [x] — the
    hypothesis of Theorem 3 relating the two closures. *)

val validate : Lattice.t -> (Lattice.elt -> Lattice.elt) -> (string * Lattice.elt list) option
(** Diagnostic form of {!make}: returns the violated axiom and a witness
    instead of raising, or [None] when the function is a closure. *)

val pp : Format.formatter -> t -> unit
