module Poset = Sl_order.Poset

(** Galois connections between finite posets.

    A (antitone-free, i.e. monotone/covariant) Galois connection
    [(f, g)] between posets [P] and [Q] is a pair
    [f : P -> Q], [g : Q -> P] with [f x <= y  iff  x <= g y].
    The composite [g ∘ f] is then a lattice closure on [P] — this is
    {e the} canonical source of closure operators, and conversely every
    closure operator arises this way (from the connection onto its image
    poset). The paper's [lcl] fits the pattern: abstraction to the set of
    finite prefixes, concretization to the limit.

    These functions make the correspondence executable; the test suite
    checks both directions on the lattice corpus. *)

type t = {
  left : Poset.t;  (** the "concrete" side P *)
  right : Poset.t;  (** the "abstract" side Q *)
  lower : Poset.elt -> Poset.elt;  (** f, the left adjoint *)
  upper : Poset.elt -> Poset.elt;  (** g, the right adjoint *)
}

val validate : t -> (string * Poset.elt list) option
(** [None] iff [(lower, upper)] is a genuine Galois connection: both maps
    are monotone and the adjunction law [f x <= y iff x <= g y] holds for
    all pairs. Returns the violated condition and a witness otherwise. *)

val is_connection : t -> bool

val closure_of : t -> Poset.elt -> Poset.elt
(** The induced closure [g ∘ f] on the left poset. Guaranteed to be a
    lattice closure when {!is_connection} holds. *)

val kernel_of : t -> Poset.elt -> Poset.elt
(** The induced kernel (interior) [f ∘ g] on the right poset:
    contractive, idempotent, monotone — the dual notion. *)

val of_closure : Lattice.t -> Closure.t -> t
(** The converse direction: a closure operator [cl] on a lattice [L]
    yields the connection between [L] and the sub-poset of cl-closed
    elements, with [lower = cl] (corestricted) and [upper] the inclusion.
    The right poset's element [i] denotes the [i]-th closed element; the
    induced closure is [cl] again ({!closure_of} ∘ {!of_closure} = apply),
    which is how the tests certify the correspondence. *)

val right_adjoint_of : Poset.t -> Poset.t -> (Poset.elt -> Poset.elt) -> (Poset.elt -> Poset.elt) option
(** Given a monotone [f : P -> Q] that preserves all existing joins,
    compute its right adjoint [g y = max { x | f x <= y }] if every such
    maximum exists; [None] otherwise. *)

val lcl_connection : max_len:int -> alphabet:int -> t
(** A finite instance of the prefix/limit connection behind [lcl]: the
    left poset is the powerset of all words of length exactly [max_len]
    (ordered by inclusion, encoding ω-languages by their length-[max_len]
    observations); the right poset is the powerset of all words of length
    [<= max_len] (prefix sets); [lower] maps a set of observations to its
    downward prefix closure, [upper] maps a prefix set to the
    observations all of whose prefixes it contains. The induced closure
    is the bounded-horizon [lcl]. Sizes are tiny ([alphabet^max_len <= 8]
    enforced). *)
