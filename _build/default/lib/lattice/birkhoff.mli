module Poset = Sl_order.Poset
(** Birkhoff duality for finite distributive lattices.

    Every finite distributive lattice is isomorphic to the lattice of
    down-sets of its poset of join-irreducible elements. The paper's
    distributive hypotheses (Theorem 7, unique complements) live exactly in
    this class, so we use the duality both as a test oracle and to generate
    distributive lattices from random posets. *)

val irreducible_poset : Lattice.t -> Poset.t * Lattice.elt array
(** The poset of join-irreducibles of a lattice (order inherited); also
    returns the array mapping new indices to original lattice elements. *)

val downset_lattice : Poset.t -> Lattice.t * Poset.elt list array
(** The lattice of down-sets of a poset ordered by inclusion (meet =
    intersection, join = union); also returns the down-set denoted by each
    lattice element. Always distributive. *)

val representation : Lattice.t -> (Lattice.elt -> Lattice.elt) option
(** For a distributive lattice [l], the isomorphism from [l] onto the
    down-set lattice of its join-irreducibles ([x] maps to the element
    denoting [{ j irreducible | j <= x }]). Returns [None] when [l] is not
    distributive (the map is then not injective or not surjective). *)

val check_representation : Lattice.t -> bool
(** [true] iff {!representation} returns an order isomorphism — i.e.
    Birkhoff's theorem holds for this lattice; by the theorem this is
    equivalent to distributivity, which is exactly how the test suite uses
    it. *)
