module Poset = Sl_order.Poset
let irreducible_poset l =
  let irr = Array.of_list (Lattice.join_irreducibles l) in
  let poset =
    Poset.make ~size:(Array.length irr) ~leq:(fun i j ->
        Lattice.leq l irr.(i) irr.(j))
  in
  (poset, irr)

let downset_lattice poset =
  let downs = Array.of_list (Poset.all_down_sets poset) in
  let subset a b = List.for_all (fun x -> List.mem x b) a in
  let p =
    Poset.make ~size:(Array.length downs) ~leq:(fun i j ->
        subset downs.(i) downs.(j))
  in
  (Lattice.of_poset p, downs)

let representation l =
  if not (Lattice.is_distributive l) then None
  else begin
    let poset, irr = irreducible_poset l in
    let _, downs = downset_lattice poset in
    let irr_below x =
      (* Indices (in the irreducible poset) of irreducibles below x. *)
      List.filteri (fun _ _ -> true) (List.init (Poset.size poset) Fun.id)
      |> List.filter (fun i -> Lattice.leq l irr.(i) x)
      |> List.sort compare
    in
    let index_of ds =
      let rec find i =
        if i >= Array.length downs then None
        else if List.sort compare downs.(i) = ds then Some i
        else find (i + 1)
      in
      find 0
    in
    let table =
      List.map (fun x -> index_of (irr_below x)) (Lattice.elements l)
    in
    if List.for_all Option.is_some table then begin
      let arr = Array.of_list (List.map Option.get table) in
      Some (fun x -> arr.(x))
    end
    else None
  end

let check_representation l =
  match representation l with
  | None -> false
  | Some f ->
      let poset, _ = irreducible_poset l in
      let target, _ = downset_lattice poset in
      Lattice.size l = Lattice.size target
      && Poset.is_order_embedding (Lattice.poset l) (Lattice.poset target) f
