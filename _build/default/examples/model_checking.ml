(* Automata-theoretic model checking through the decomposition.

   The paper's introduction motivates the safety/liveness distinction by
   the different proof methods the two classes admit. This example makes
   that concrete on two systems:

   - verification of LTL specs by the product construction, with
     counterexample lassos;
   - the same verification SPLIT through the decomposition: the safety
     part is refuted by a finite bad prefix, the liveness part only ever
     by a lasso;
   - fairness: a liveness property that fails outright but holds for fair
     schedulers (fair CTL).

   Run with:  dune exec examples/model_checking.exe *)

module Kripke = Sl_kripke.Kripke
module Formula = Sl_ltl.Formula
module Semantics = Sl_ltl.Semantics
module Modelcheck = Sl_ltl.Modelcheck
module Lasso = Sl_word.Lasso
module Ctl = Sl_ctl.Ctl
module Fair = Sl_ctl.Fair

let verdict_to_string alphabet = function
  | Modelcheck.Holds -> "holds"
  | Modelcheck.Fails w ->
      Format.asprintf "fails, counterexample %a"
        (Lasso.pp ~alphabet ()) w

let () =
  (* --- Token ring --- *)
  let k = Kripke.token_ring 3 in
  let props = [ "tok0"; "tok1"; "tok2" ] in
  let v = Semantics.subset_valuation props in
  let sigma = Sl_word.Alphabet.of_subsets props in
  Format.printf "== token ring (3 stations) ==@.";
  List.iter
    (fun s ->
      let f = Formula.parse_exn s in
      Format.printf "  %-22s %s@." s
        (verdict_to_string sigma (Modelcheck.check k ~alphabet:8 ~valuation:v f)))
    [ "G F tok0"; "F G tok0"; "G !(tok0 & tok1)"; "G (tok0 -> X tok1)" ];

  Format.printf "@.split verification (safety part vs liveness part):@.";
  Format.printf
    "  (a safety failure always has a finite bad prefix; a liveness@.\
    \   failure is refutable only by an infinite lasso)@.";
  List.iter
    (fun s ->
      let f = Formula.parse_exn s in
      let r = Modelcheck.check_split k ~alphabet:8 ~valuation:v f in
      Format.printf "  %-22s safety: %-8s liveness: %s@." s
        (match r.Modelcheck.safety_verdict with
        | Modelcheck.Holds -> "holds"
        | Modelcheck.Fails _ -> "FAILS")
        (match r.Modelcheck.liveness_verdict with
        | Modelcheck.Holds -> "holds"
        | Modelcheck.Fails _ -> "FAILS"))
    [ "G F tok0" (* pure liveness: safety side trivial *);
      "G tok0" (* pure safety: fails on the safety side *);
      "F G tok0" (* fails, and only the liveness side can say so *) ];

  (* --- Mutex with fairness --- *)
  Format.printf "@.== mutual exclusion ==@.";
  let m = Kripke.mutex () in
  Format.printf "  %-28s %b@." "AG !(c1 & c2) (CTL)"
    (Ctl.holds m (Ctl.parse_exn "AG !(c1 & c2)"));
  Format.printf "  %-28s %b@." "AF c1 (may idle: fails)"
    (Ctl.holds m (Ctl.parse_exn "AF c1"));
  let fair_try =
    [ Array.init m.Kripke.nstates (fun q ->
          Kripke.holds m q "t1" || Kripke.holds m q "c1") ]
  in
  Format.printf "  %-28s %b@."
    "AF c1 under fairness (GF t1|c1)"
    (Fair.holds m fair_try (Ctl.parse_exn "AF c1"));
  Format.printf
    "@.Fairness turns the failing liveness obligation into a theorem — \
     the@.constraint plays the role of the liveness part the raw \
     structure lacks.@."
