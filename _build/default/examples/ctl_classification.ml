(* Regenerates the paper's Section 4.3 classification of the branching
   time examples q0-q6 under the two closures ncl (existential) and fcl
   (universal), over arbitrary-branching total trees.

   Run with:  dune exec examples/ctl_classification.exe *)

module Examples = Sl_ctl.Examples
module Tclosure = Sl_tree.Tclosure
module Ptree = Sl_tree.Ptree

let () =
  Format.printf
    "Section 4.3 — branching-time examples over binary-bounded trees@.";
  Format.printf "(sample: %d total trees with <= 2 presentation states)@.@."
    (List.length Examples.sample);
  Examples.pp_table Format.std_formatter (Examples.table ());
  Format.printf
    "@.Reading the table against the paper:@.\
     - q0, q1, q2, q6 are universally (hence existentially) safe;@.\
     - q3a/q3b are neither safe nor live (their fcl is q1);@.\
     - q4a, q5a are universally but NOT existentially live — the@.\
    \  hypothesis of Theorem 5: they cannot be decomposed into a@.\
    \  universally safe and an existentially live part;@.\
     - q4b, q5b are existentially (hence universally) live.@.";
  (* The paper's two-path witness for ncl.q3a <> q1. *)
  let witness =
    (* root a; left all-a spine; right all-b spine. *)
    Ptree.make ~k:2 ~nstates:3 ~root:0 ~label:[| 0; 0; 1 |]
      ~children:
        [| [| Some 1; Some 2 |]; [| Some 1; None |]; [| Some 2; None |] |]
  in
  Format.printf
    "@.The paper's witness (two paths, one all-a): in q1 %b, in ncl q3a %b@."
    (Examples.q1.Tclosure.mem witness)
    (Tclosure.ncl_mem Examples.q3a ~max_depth:4 witness)
