(* Quickstart: the paper's results in five minutes.

   Run with:  dune exec examples/quickstart.exe

   1. Build the two counterexample lattices of Figures 1 and 2 and check
      their laws.
   2. Decompose an element of a Boolean algebra into safety and liveness
      parts (Theorem 2).
   3. Classify an LTL property and decompose its Büchi automaton
      (Section 2.4). *)

module Lattice = Sl_lattice.Lattice
module Named = Sl_lattice.Named
module Closure = Sl_lattice.Closure
module Finite_check = Sl_core.Finite_check
module Formula = Sl_ltl.Formula
module Examples = Sl_ltl.Examples
module Decompose = Sl_buchi.Decompose

let section title = Format.printf "@.== %s ==@." title

let () =
  section "Figure 1: the pentagon N5";
  Format.printf "modular: %b, complemented: %b@."
    (Lattice.is_modular Named.n5)
    (Lattice.is_complemented Named.n5);
  (match Lattice.contains_pentagon Named.n5 with
  | Some (z, a, b, c, o) ->
      Format.printf "pentagon witness: %s < %s < %s, %s, top %s@."
        (Named.n5_label z) (Named.n5_label a) (Named.n5_label b)
        (Named.n5_label c) (Named.n5_label o)
  | None -> assert false);
  (match Finite_check.lemma6_fig1 () with
  | Ok () ->
      Format.printf
        "Lemma 6 verified: element a of N5 admits no safety/liveness \
         decomposition under cl(a) = b@."
  | Error e -> Format.printf "unexpected: %s@." e);

  section "Figure 2: the diamond M3";
  Format.printf "modular: %b, distributive: %b@."
    (Lattice.is_modular Named.m3)
    (Lattice.is_distributive Named.m3);
  (match Finite_check.fig2_theorem7_failure () with
  | Ok () ->
      Format.printf
        "Theorem 7's conclusion fails on M3 for every closure with \
         cl(a) = s — distributivity is necessary@."
  | Error e -> Format.printf "unexpected: %s@." e);

  section "Theorem 2 on the Boolean algebra 2^3";
  let l = Named.boolean 3 in
  let cl = Closure.of_closed_set l [ 0b000; 0b001; 0b010 ] in
  (match Finite_check.check_theorem2 l cl with
  | Ok () ->
      Format.printf
        "every element of 2^3 = safety ∧ liveness under a non-topological \
         closure (cl does not preserve joins)@."
  | Error e -> Format.printf "unexpected: %s@." e);

  section "The linear-time framework (Section 2)";
  let f = Formula.parse_exn "a & F !a" in
  Format.printf "property p3 = %s@." (Formula.to_string f);
  Format.printf "classification: %s@."
    (Decompose.classification_to_string (Examples.classify f));
  let d = Decompose.decompose (Examples.automaton f) in
  Format.printf "safety part (bcl): %s@."
    (Sl_buchi.Buchi.size_info d.Decompose.safety);
  Format.printf "liveness part (B ∪ ¬bcl B): %s@."
    (Sl_buchi.Buchi.size_info d.Decompose.liveness);
  Format.printf "decomposition verified: %b@."
    (Decompose.verify_exact d = []);
  Format.printf "@.Run the other examples for the full paper tables:@.";
  List.iter (Format.printf "  dune exec examples/%s.exe@.")
    [ "ltl_classification"; "buchi_decomposition"; "ctl_classification";
      "security_monitor" ]
