examples/buchi_decomposition.ml: Format List Sl_buchi Sl_word
