examples/ctl_classification.mli:
