examples/security_monitor.ml: Array Format List Sl_buchi Sl_nfa Sl_word
