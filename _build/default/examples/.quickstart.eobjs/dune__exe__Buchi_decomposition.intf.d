examples/buchi_decomposition.mli:
