examples/model_checking.ml: Array Format List Sl_ctl Sl_kripke Sl_ltl Sl_word
