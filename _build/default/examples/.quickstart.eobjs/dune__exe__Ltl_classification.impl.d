examples/ltl_classification.ml: Format List Sl_buchi Sl_ltl Sl_word
