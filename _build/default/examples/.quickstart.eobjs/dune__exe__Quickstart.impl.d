examples/quickstart.ml: Format List Sl_buchi Sl_core Sl_lattice Sl_ltl
