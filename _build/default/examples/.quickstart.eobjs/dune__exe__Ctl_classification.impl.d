examples/ctl_classification.ml: Format List Sl_ctl Sl_tree
