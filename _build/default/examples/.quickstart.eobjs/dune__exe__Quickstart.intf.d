examples/quickstart.mli:
