examples/ltl_classification.mli:
