(* Schneider's connection (Section 1 of the paper): "enforceable security
   properties correspond to safety properties and security automata ...
   correspond to Büchi automata that accept safe languages."

   A runtime execution monitor can only ever see a finite prefix, so it
   can enforce a policy exactly when the policy is safety: reject as soon
   as the prefix leaves the prefix language of the (closed) property.
   This example builds the monitor from the safety part B_S of a policy's
   decomposition and shows that:

   - for the pure-safety policy "no grant before the first request" the
     monitor catches every violation at a finite point;
   - for request/response (a pure liveness property) the safety part is
     trivial: NO finite prefix is ever rejected — the policy is not
     enforceable by execution monitoring, matching Schneider's theorem.

   Run with:  dune exec examples/security_monitor.exe *)

module Buchi = Sl_buchi.Buchi
module Patterns = Sl_buchi.Patterns
module Decompose = Sl_buchi.Decompose
module Nfa = Sl_nfa.Nfa
module Dfa = Sl_nfa.Dfa
module Alphabet = Sl_word.Alphabet

(* An execution monitor: the subset DFA of the safety automaton's prefix
   NFA; state None (the empty subset) means "violation detected". *)
type monitor = { dfa : Dfa.t; mutable state : int; mutable tripped : bool }

let monitor_of_policy policy =
  let d = Decompose.decompose policy in
  let dfa = Nfa.determinize (Buchi.to_prefix_nfa d.Decompose.safety) in
  { dfa; state = dfa.Dfa.start; tripped = false }

let step m symbol =
  if not m.tripped then begin
    m.state <- Dfa.step m.dfa m.state symbol;
    (* The prefix language is prefix-closed: acceptance can only be lost
       once, at the violation point. *)
    if not m.dfa.Dfa.accepting.(m.state) then m.tripped <- true
  end;
  not m.tripped

let run_trace policy_name policy trace =
  let m = monitor_of_policy policy in
  Format.printf "@.policy %-32s trace:" policy_name;
  List.iteri
    (fun i symbol ->
      let ok = step m symbol in
      Format.printf " %s%s"
        (Alphabet.label Patterns.ap_alphabet symbol)
        (if (not ok) && i >= 0 && m.tripped then "!" else ""))
    trace;
  Format.printf "@.  verdict: %s@."
    (if m.tripped then "VIOLATION detected at a finite point"
     else "prefix admissible (monitor cannot and need not decide liveness)")

let () =
  let quiet = 0 and req = 1 and grant = 2 in
  let traces =
    [ [ quiet; req; grant; quiet ];
      [ grant; quiet; quiet ] (* unsolicited grant *);
      [ req; quiet; quiet; quiet ] (* request never granted *) ]
  in
  Format.printf
    "Execution monitoring demo over the alphabet 2^{req, grant}@.";
  List.iter (run_trace "no-grant-without-request"
      Patterns.no_grant_without_request) traces;
  List.iter (run_trace "G (req -> F grant)" Patterns.request_response)
    traces;
  Format.printf
    "@.The liveness violation (request never granted) is invisible to \
     both monitors:@.no finite prefix refutes it — exactly why \
     enforceable policies = safety.@.";
  (* Quantify it: the request/response safety part is the universal
     property. *)
  let d = Decompose.decompose Patterns.request_response in
  Format.printf
    "request/response safety part is universal: %b (its monitor never \
     trips)@."
    (Sl_buchi.Lang.is_universal d.Decompose.safety)
