(* The Section 2.4 decomposition on protocol specifications.

   Takes the request/grant specifications of Sl_buchi.Patterns, splits
   each Büchi automaton B into B_S = bcl B (safety) and
   B_L = B ∪ ¬(bcl B) (liveness), verifies L(B) = L(B_S) ∩ L(B_L), and
   demonstrates the split on concrete executions.

   Run with:  dune exec examples/buchi_decomposition.exe *)

module Buchi = Sl_buchi.Buchi
module Patterns = Sl_buchi.Patterns
module Decompose = Sl_buchi.Decompose
module Lasso = Sl_word.Lasso
module Alphabet = Sl_word.Alphabet

let specs =
  [ ("G (req -> F grant)", Patterns.request_response);
    ("no grant before the first req", Patterns.no_grant_without_request);
    ("G F grant", Patterns.always_eventually_grant) ]

let demo_words =
  (* (description, word) over 2^{req, grant}: symbol bits req=1 grant=2 *)
  [ ("quiet forever", Lasso.constant 0);
    ("req then silence", Lasso.make ~prefix:[ 1 ] ~cycle:[ 0 ]);
    ("req then grant, repeating", Lasso.make ~prefix:[] ~cycle:[ 1; 2 ]);
    ("unsolicited grant first", Lasso.make ~prefix:[ 2 ] ~cycle:[ 0 ]);
    ("grants forever", Lasso.constant 2) ]

let () =
  List.iter
    (fun (name, b) ->
      Format.printf "@.== %s ==@." name;
      let d = Decompose.decompose b in
      Format.printf "B: %s | B_S: %s | B_L: %s@." (Buchi.size_info b)
        (Buchi.size_info d.Decompose.safety)
        (Buchi.size_info d.Decompose.liveness);
      Format.printf "classification: %s@."
        (Decompose.classification_to_string (Decompose.classify b));
      (match Decompose.verify_exact d with
      | [] -> Format.printf "L(B) = L(B_S) ∩ L(B_L): verified exactly@."
      | fails ->
          List.iter
            (fun (c, diag) -> Format.printf "FAILED %s (%s)@." c diag)
            fails);
      Format.printf "%-28s %5s %5s %5s@." "execution" "B" "B_S" "B_L";
      List.iter
        (fun (what, w) ->
          Format.printf "%-28s %5b %5b %5b@." what (Buchi.accepts_lasso b w)
            (Buchi.accepts_lasso d.Decompose.safety w)
            (Buchi.accepts_lasso d.Decompose.liveness w))
        demo_words)
    specs;
  Format.printf
    "@.Note how violations split: 'req then silence' passes every safety \
     part@.(nothing bad ever happens) and fails the liveness part of \
     request/response,@.while 'unsolicited grant' is caught by the safety \
     part of the no-grant spec.@."
