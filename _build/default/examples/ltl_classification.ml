(* Regenerates the paper's Section 2.3 table: Martin Rem's properties
   p0-p6, classified as safety / liveness / neither, together with the
   closure column.

   Everything is recomputed from first principles: parse the LTL, build
   the Büchi automaton by the tableau translation, compute the paper's
   closure operator on it, and decide closedness/density via the safety
   complement and the negated-formula automaton.

   Run with:  dune exec examples/ltl_classification.exe *)

module Examples = Sl_ltl.Examples
module Formula = Sl_ltl.Formula
module Translate = Sl_ltl.Translate
module Lasso = Sl_word.Lasso
module Buchi = Sl_buchi.Buchi

let () =
  Format.printf "Section 2.3 — Rem's examples over Sigma = {a, b}@.@.";
  Examples.pp_table Format.std_formatter (Examples.table ());
  (* Show a few witness words for the "neither" case. *)
  let p3 = Examples.automaton Examples.p3 in
  let bcl = Sl_buchi.Closure.bcl p3 in
  let sigma = Sl_buchi.Patterns.sigma in
  Format.printf
    "@.p3 = a & F !a is neither: it is not closed (its closure is p1)@.";
  let in_closure_not_in_p3 =
    List.filter
      (fun w -> Buchi.accepts_lasso bcl w && not (Buchi.accepts_lasso p3 w))
      (Lasso.enumerate ~alphabet:2 ~max_prefix:2 ~max_cycle:2)
  in
  Format.printf "words in lcl(p3) \\ p3:";
  List.iter
    (fun w -> Format.printf " %s" (Lasso.to_string ~alphabet:sigma w))
    in_closure_not_in_p3;
  Format.printf "@.";
  (* Growth of the translation, for the record. *)
  Format.printf "@.translation sizes (elementary sets, acceptance sets, states):@.";
  List.iter
    (fun (name, f) ->
      let e, k, n =
        Translate.gnba_stats ~alphabet:2 ~valuation:Examples.valuation f
      in
      Format.printf "  %-3s %-10s -> (%d, %d, %d)@." name
        (Formula.to_string f) e k n)
    Examples.all
