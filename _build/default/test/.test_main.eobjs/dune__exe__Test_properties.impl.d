test/test_properties.ml: Alcotest Array Fun Gen List QCheck QCheck_alcotest Random Sl_buchi Sl_lattice Sl_order Sl_tree Sl_word
