test/test_kripke.ml: Alcotest Array Fun List Printf Sl_kripke
