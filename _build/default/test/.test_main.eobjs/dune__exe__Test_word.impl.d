test/test_word.ml: Alcotest Format Gen List QCheck QCheck_alcotest Sl_word
