test/test_ltl.ml: Alcotest Array Format List Printf QCheck QCheck_alcotest Sl_buchi Sl_kripke Sl_ltl Sl_word
