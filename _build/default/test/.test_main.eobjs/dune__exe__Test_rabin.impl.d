test/test_rabin.ml: Alcotest Array List Printf Sl_ctl Sl_kripke Sl_rabin Sl_tree
