test/test_lattice.ml: Alcotest Array Fun List Sl_lattice Sl_order
