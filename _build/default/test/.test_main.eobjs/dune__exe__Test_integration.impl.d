test/test_integration.ml: Alcotest Array Fmt List Printf QCheck QCheck_alcotest Random Sl_buchi Sl_core Sl_ctl Sl_kripke Sl_lattice Sl_ltl Sl_order Sl_tree Sl_word
