test/test_buchi.ml: Alcotest List Printf QCheck QCheck_alcotest Sl_buchi Sl_core Sl_nfa Sl_word String
