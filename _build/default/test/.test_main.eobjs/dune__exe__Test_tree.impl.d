test/test_tree.ml: Alcotest Array List Printf Sl_tree
