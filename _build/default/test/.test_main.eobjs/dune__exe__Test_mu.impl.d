test/test_mu.ml: Alcotest List Printf Result Sl_ctl Sl_kripke Sl_mu
