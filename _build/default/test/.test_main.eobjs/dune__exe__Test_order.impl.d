test/test_order.ml: Alcotest List Option Sl_order String
