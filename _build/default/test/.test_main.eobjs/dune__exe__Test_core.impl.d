test/test_core.ml: Alcotest Format List Printf Sl_core Sl_lattice String
