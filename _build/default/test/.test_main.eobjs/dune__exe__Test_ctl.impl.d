test/test_ctl.ml: Alcotest Array List QCheck QCheck_alcotest Result Sl_ctl Sl_kripke Sl_tree
