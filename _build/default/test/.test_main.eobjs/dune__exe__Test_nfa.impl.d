test/test_nfa.ml: Alcotest Array Fun List QCheck QCheck_alcotest Random Sl_nfa
