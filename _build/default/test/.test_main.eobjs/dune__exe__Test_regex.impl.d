test/test_regex.ml: Alcotest Fun List Printf QCheck QCheck_alcotest Result Sl_buchi Sl_nfa Sl_regex Sl_word String
