test/test_topology.ml: Alcotest Array List Printf Sl_ctl Sl_topology Sl_tree
