test/test_acceptance.ml: Alcotest Array Fun List QCheck QCheck_alcotest Random Sl_buchi Sl_word
