module Alphabet = Sl_word.Alphabet
module Lasso = Sl_word.Lasso

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let lasso = Alcotest.testable (fun fmt w ->
    Format.pp_print_string fmt (Lasso.to_string w)) Lasso.equal

let test_alphabet () =
  let s = Alphabet.binary in
  check_int "size" 2 (Alphabet.size s);
  Alcotest.(check string) "label" "a" (Alphabet.label s 0);
  let ap = Alphabet.of_subsets [ "p"; "q" ] in
  check_int "subsets size" 4 (Alphabet.size ap);
  Alcotest.(check string) "empty set" "{}" (Alphabet.label ap 0);
  Alcotest.(check string) "both" "{p,q}" (Alphabet.label ap 3);
  check "mem" true (Alphabet.mem ap 3);
  check "not mem" false (Alphabet.mem ap 4)

let test_canonical_form () =
  (* a (ba)^w = (ab)^w *)
  Alcotest.check lasso "rotation absorbed"
    (Lasso.make ~prefix:[] ~cycle:[ 0; 1 ])
    (Lasso.make ~prefix:[ 0 ] ~cycle:[ 1; 0 ]);
  (* (abab)^w = (ab)^w *)
  Alcotest.check lasso "primitive root"
    (Lasso.make ~prefix:[] ~cycle:[ 0; 1 ])
    (Lasso.make ~prefix:[] ~cycle:[ 0; 1; 0; 1 ]);
  (* aaa(a)^w = (a)^w *)
  Alcotest.check lasso "constant absorbs prefix" (Lasso.constant 0)
    (Lasso.make ~prefix:[ 0; 0; 0 ] ~cycle:[ 0 ]);
  (* ab(b)^w keeps its prefix a *)
  let w = Lasso.make ~prefix:[ 0; 1 ] ~cycle:[ 1 ] in
  check_int "spoke" 1 (Lasso.spoke w);
  check_int "period" 1 (Lasso.period w)

let test_at_and_prefix () =
  let w = Lasso.make ~prefix:[ 0; 1 ] ~cycle:[ 2; 3 ] in
  Alcotest.(check (list int)) "first 7" [ 0; 1; 2; 3; 2; 3; 2 ]
    (Lasso.first_n w 7);
  check_int "at 0" 0 (Lasso.at w 0);
  check_int "at 5" 3 (Lasso.at w 5)

let test_shift () =
  let w = Lasso.make ~prefix:[ 0; 1 ] ~cycle:[ 2; 3 ] in
  Alcotest.check lasso "shift 1"
    (Lasso.make ~prefix:[ 1 ] ~cycle:[ 2; 3 ])
    (Lasso.shift w 1);
  Alcotest.check lasso "shift into cycle"
    (Lasso.make ~prefix:[] ~cycle:[ 3; 2 ])
    (Lasso.shift w 3);
  (* Shifting never changes the denoted suffix letters. *)
  let s = Lasso.shift w 5 in
  Alcotest.(check (list int)) "letters align" (List.init 6 (fun i ->
      Lasso.at w (5 + i)))
    (Lasso.first_n s 6)

let test_append_prefix () =
  let w = Lasso.constant 1 in
  let v = Lasso.append_prefix [ 0; 0 ] w in
  Alcotest.(check (list int)) "letters" [ 0; 0; 1; 1 ] (Lasso.first_n v 4)

let test_enumerate () =
  (* Over 1 letter only (a)^w exists regardless of bounds. *)
  check_int "unary" 1
    (List.length (Lasso.enumerate ~alphabet:1 ~max_prefix:3 ~max_cycle:3));
  (* Binary, cycle <= 1, prefix 0: two constants. *)
  check_int "constants" 2
    (List.length (Lasso.enumerate ~alphabet:2 ~max_prefix:0 ~max_cycle:1));
  (* All enumerated lassos are canonical and pairwise distinct. *)
  let ws = Lasso.enumerate ~alphabet:2 ~max_prefix:2 ~max_cycle:3 in
  let distinct = List.sort_uniq Lasso.compare ws in
  check_int "no duplicates" (List.length ws) (List.length distinct);
  List.iter
    (fun w ->
      Alcotest.check lasso "canonical"
        w
        (Lasso.make ~prefix:(Lasso.prefix w) ~cycle:(Lasso.cycle w)))
    ws

let test_count_letter () =
  let w = Lasso.make ~prefix:[ 0; 0; 1 ] ~cycle:[ 1 ] in
  (match Lasso.count_letter w 0 with
  | `Finitely 2 -> ()
  | _ -> Alcotest.fail "expected finitely 2 a's");
  (match Lasso.count_letter w 1 with
  | `Infinitely -> ()
  | _ -> Alcotest.fail "expected infinitely many b's")

let test_rejects_bad_input () =
  check "empty cycle" true
    (try
       ignore (Lasso.make ~prefix:[] ~cycle:[]);
       false
     with Invalid_argument _ -> true)

let prop_equal_words_equal_letters =
  QCheck.Test.make ~name:"canonical equality = letterwise equality"
    ~count:500
    QCheck.(
      pair
        (pair (list_of_size Gen.(0 -- 4) (int_bound 1))
           (list_of_size Gen.(1 -- 4) (int_bound 1)))
        (pair (list_of_size Gen.(0 -- 4) (int_bound 1))
           (list_of_size Gen.(1 -- 4) (int_bound 1))))
    (fun ((p1, c1), (p2, c2)) ->
      let w1 = Lasso.make ~prefix:p1 ~cycle:c1 in
      let w2 = Lasso.make ~prefix:p2 ~cycle:c2 in
      (* Compare enough letters to cover both lassos' periods. *)
      let n = 2 * (Lasso.total_length w1 + Lasso.total_length w2) in
      Lasso.equal w1 w2 = (Lasso.first_n w1 n = Lasso.first_n w2 n))

let prop_shift_consistent =
  QCheck.Test.make ~name:"shift agrees with letter indexing" ~count:300
    QCheck.(
      triple
        (list_of_size Gen.(0 -- 3) (int_bound 2))
        (list_of_size Gen.(1 -- 3) (int_bound 2))
        (int_bound 8))
    (fun (p, c, k) ->
      let w = Lasso.make ~prefix:p ~cycle:c in
      let s = Lasso.shift w k in
      List.init 8 (fun i -> Lasso.at s i)
      = List.init 8 (fun i -> Lasso.at w (k + i)))

let test_pp_with_alphabet () =
  let w = Lasso.make ~prefix:[ 0 ] ~cycle:[ 1 ] in
  Alcotest.(check string) "named letters" "a(b)^w"
    (Lasso.to_string ~alphabet:Alphabet.binary w);
  Alcotest.(check string) "numeric fallback" "0(1)^w" (Lasso.to_string w)

let tests =
  [ Alcotest.test_case "alphabets" `Quick test_alphabet;
    Alcotest.test_case "canonical form" `Quick test_canonical_form;
    Alcotest.test_case "indexing and prefixes" `Quick test_at_and_prefix;
    Alcotest.test_case "shift" `Quick test_shift;
    Alcotest.test_case "append prefix" `Quick test_append_prefix;
    Alcotest.test_case "enumeration" `Quick test_enumerate;
    Alcotest.test_case "letter counting" `Quick test_count_letter;
    Alcotest.test_case "input validation" `Quick test_rejects_bad_input;
    Alcotest.test_case "pretty printing" `Quick test_pp_with_alphabet;
    QCheck_alcotest.to_alcotest prop_equal_words_equal_letters;
    QCheck_alcotest.to_alcotest prop_shift_consistent ]
